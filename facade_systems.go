package repro

import (
	"io"

	"repro/internal/async"
	"repro/internal/client"
	"repro/internal/dist"
	"repro/internal/faultnet"
	"repro/internal/journal"
	"repro/internal/server"
	"repro/internal/trust"
)

// This file re-exports the substrate systems — the asynchronous model of
// [1], the networked billboard service, the durable journal, and the
// EigenTrust-style trust computation — so that downstream users of the
// module can reach them through the supported public API. It is organized
// in sections:
//
//   - Asynchronous model: the prior-work model the paper argues against.
//   - Networked billboard service: server, client, distributed runs.
//   - Fault injection: deterministic transport chaos for tests.
//   - Durability: the append-only billboard journal.
//   - Trust: the EigenTrust-style reputation comparison (X5).
//
// The preferred client entry point is Dial (dial.go) with functional
// options; the observability layer (metrics, traces, observers) lives in
// observability.go.

// ---------------------------------------------------------------------------
// Asynchronous model (§1.2; the model of the authors' prior work [1]).
type (
	// AsyncConfig describes one asynchronous run.
	AsyncConfig = async.Config
	// AsyncResult reports per-player probe counts and completion.
	AsyncResult = async.Result
	// AsyncStrategy is a per-step policy in the asynchronous model.
	AsyncStrategy = async.Strategy
	// AsyncSchedule decides which player steps next (adversary-controlled).
	AsyncSchedule = async.Schedule
)

// RunAsync executes one asynchronous-model simulation.
func RunAsync(cfg AsyncConfig) (*AsyncResult, error) { return async.Run(cfg) }

// NewExploreFollow returns the algorithm of [1]: explore or follow a random
// vote, with equal probability.
func NewExploreFollow(n, m int) AsyncStrategy { return async.NewExploreFollow(n, m) }

// NewSoloStrategy returns the billboard-oblivious asynchronous strategy.
func NewSoloStrategy(m int) AsyncStrategy { return async.NewSolo(m) }

// Asynchronous schedules.
var (
	// ScheduleRoundRobin cycles fairly through active players.
	ScheduleRoundRobin AsyncSchedule = async.RoundRobin{}
	// ScheduleUniformRandom picks a uniformly random active player.
	ScheduleUniformRandom AsyncSchedule = async.UniformRandom{}
)

// ScheduleStarve runs the given victim exclusively until it halts — the
// §1.2 schedule that forces Θ(1/β) individual cost.
func ScheduleStarve(victim int) AsyncSchedule { return async.Starve{Victim: victim} }

// ---------------------------------------------------------------------------
// Networked billboard service.

type (
	// BillboardServerConfig configures the billboard service.
	BillboardServerConfig = server.Config
	// BillboardServer is a running billboard service.
	BillboardServer = server.Server
	// BillboardClient is one player's authenticated connection.
	BillboardClient = client.Client
	// BatchPost is one entry of BillboardClient.PostBatch — a whole round's
	// posts plus the barrier in a single protocol-v3 frame.
	BatchPost = client.BatchPost
	// CachedReader is a per-round read cache over a BillboardClient.
	CachedReader = client.Cached
)

// NewBillboardServer builds a billboard service (call Start to listen).
func NewBillboardServer(cfg BillboardServerConfig) (*BillboardServer, error) {
	return server.New(cfg)
}

// ServerMode selects how the billboard service paces rounds
// (BillboardServerConfig.Mode / ClusterConfig.Mode).
type ServerMode = server.Mode

const (
	// ModeSync is the classic synchronous operation: every round closes
	// through the global barrier, which waits for all registered players.
	ModeSync ServerMode = server.ModeSync
	// ModeEpoch runs without the global round barrier: posts bind to
	// timestamped epochs that seal on lamport closure (every active player
	// has stamped past them) or, with an EpochTick armed, on a wall clock
	// that never waits for stragglers. Under quiescence an epoch run
	// converges to the sync run's billboard byte for byte.
	ModeEpoch ServerMode = server.ModeEpoch
)

// ClientOptions tunes a billboard client's fault tolerance: reconnect
// retries, backoff, per-call deadlines, the transport dialer, and the
// metrics registry. Usually built implicitly via Dial's options.
type ClientOptions = client.Options

// NewCachedReader wraps a client with a per-round read cache; call
// Invalidate after each Barrier.
func NewCachedReader(c *BillboardClient) *CachedReader { return client.NewCached(c) }

// Distributed runs.
type (
	// ClusterConfig describes a full distributed run on localhost: world
	// and fleet sizes flat, the service shape under Topology, the fault
	// machinery under Chaos, and the fleet driver under Drive.
	ClusterConfig = dist.ClusterConfig
	// ClusterTopology shapes the service (shards, replica group).
	ClusterTopology = dist.Topology
	// ClusterChaos schedules fault injection and kill/restart hooks.
	ClusterChaos = dist.Chaos
	// ClusterDrive selects the honest-fleet driver: per-player goroutines
	// (zero value) or the swarm scheduler (Swarm: true).
	ClusterDrive = dist.Drive
	// FlatClusterConfig is the historical flat flag-bag shape; its Cluster
	// method folds it into the structured ClusterConfig.
	//
	// Deprecated: build ClusterConfig directly with its Topology, Chaos,
	// and Drive sub-structs — the flat shape cannot express the newer
	// knobs (Mode, EpochTick, Drive.*) and will not grow new fields.
	FlatClusterConfig = dist.FlatClusterConfig
	// ClusterResult aggregates a distributed run.
	ClusterResult = dist.ClusterResult
)

// RunDistributedCluster starts a billboard server and runs every player as
// a concurrent TCP client. ClusterOption and its constructors (WithMode,
// WithEpochTick, WithMetrics, WithLogf, WithClientOptions) live in
// options.go with the rest of the unified option layer.
func RunDistributedCluster(cfg ClusterConfig, opts ...ClusterOption) (*ClusterResult, error) {
	for _, opt := range opts {
		opt.applyCluster(&cfg)
	}
	return dist.RunCluster(cfg)
}

// ---------------------------------------------------------------------------
// Deterministic transport fault injection (chaos testing).

type (
	// FaultConfig sets seed-derived per-operation fault probabilities
	// (drops, delays, torn writes, one-way partitions).
	FaultConfig = faultnet.Config
	// FaultInjector wraps dialers and listeners with fault injection.
	FaultInjector = faultnet.Injector
)

// NewFaultInjector validates cfg and builds a fault injector; plug its
// Dialer into ClientOptions.Dialer or ClusterConfig.Chaos.Fault for chaos runs.
func NewFaultInjector(cfg FaultConfig) (*FaultInjector, error) {
	return faultnet.New(cfg)
}

// ---------------------------------------------------------------------------
// Durable journal for the append-only billboard.

type (
	// JournalWriter appends billboard events to a stream.
	JournalWriter = journal.Writer
)

// NewJournalWriter wraps w as a billboard journal sink.
func NewJournalWriter(w io.Writer) *JournalWriter { return journal.NewWriter(w) }

// ---------------------------------------------------------------------------
// EigenTrust-style reputation (the §1.3 critique, experiment X5).

type (
	// TrustReport is one (player, object, value) rating.
	TrustReport = trust.Report
	// TrustConfig tunes the trust computation.
	TrustConfig = trust.Config
)

// TrustScores computes agreement-popularity global trust per player.
func TrustScores(reports []TrustReport, cfg TrustConfig) ([]float64, error) {
	return trust.Scores(reports, cfg)
}

// TrustRecommend ranks objects by trust-weighted positive ratings.
func TrustRecommend(reports []TrustReport, scores []float64, threshold float64) (object int, score float64, ok bool) {
	return trust.Recommend(reports, scores, threshold)
}
