package repro

import (
	"context"

	"repro/internal/swarm"
)

// This file is the options-based entry point to the swarm driver:
//
//	res, err := repro.RunSwarm(ctx, repro.SwarmConfig{
//		Addr: addr, From: 0, To: 1_000_000, Token: token,
//	},
//		repro.WithSwarmGroups(8),
//		repro.WithSwarmMetrics(reg))
//
// A swarm drives a block of players over a handful of pipelined
// connections — an event-loop scheduler over plain player state instead of
// a goroutine and TCP connection per player — and is bit-compatible with
// the per-player client fleet: same player streams, same per-round
// ordering, same committed billboard digest.

// SwarmConfig describes one swarm: a contiguous player block [From, To)
// driven against one billboard service. Addr, From/To, and Token (the
// server's SwarmToken credential) are required; everything else defaults.
type SwarmConfig = swarm.Config

// SwarmResult is a completed swarm run.
type SwarmResult = swarm.Result

// SwarmPlayerResult is one swarm player's outcome.
type SwarmPlayerResult = swarm.PlayerResult

// SwarmOption customizes one RunSwarm call. Options apply in order over
// the config; unset knobs keep the documented defaults.
type SwarmOption func(*SwarmConfig)

// WithSwarmGroups sets the number of connection groups; each group owns a
// contiguous sub-block of players and its own pipelined connection
// (default 4, clamped to the player count).
func WithSwarmGroups(n int) SwarmOption {
	return func(c *SwarmConfig) { c.Groups = n }
}

// WithSwarmChunk caps probes/posts/dones per frame (default 4096).
func WithSwarmChunk(n int) SwarmOption {
	return func(c *SwarmConfig) { c.Chunk = n }
}

// WithSwarmWindow caps pipelined in-flight frames per connection
// (default 8).
func WithSwarmWindow(n int) SwarmOption {
	return func(c *SwarmConfig) { c.Window = n }
}

// WithSwarmFallbacks appends fallback addresses — the rest of a replicated
// coordinator group's client ring. Not-leader redirects steer every swarm
// connection to whichever member leads.
func WithSwarmFallbacks(addrs ...string) SwarmOption {
	return func(c *SwarmConfig) { c.Fallbacks = append(c.Fallbacks, addrs...) }
}

// WithSwarmClientOptions sets the transport knobs (dialer, retries,
// backoff, timeouts) — the same ClientOptions the per-player client takes,
// including the fault-injection dialer hook.
func WithSwarmClientOptions(opt ClientOptions) SwarmOption {
	return func(c *SwarmConfig) { c.Client = opt }
}

// WithSwarmMetrics records the swarm_* metric family (scheduler depth,
// round and barrier latency, transport health) into reg.
func WithSwarmMetrics(reg *Metrics) SwarmOption {
	return func(c *SwarmConfig) { c.Metrics = reg }
}

// WithSwarmObserver attaches an Observer: it receives a RoundStats
// snapshot after every committed swarm round. Combine sinks with
// MultiObserver.
func WithSwarmObserver(o Observer) SwarmOption {
	return func(c *SwarmConfig) { c.Observer = o }
}

// WithSwarmLogf directs per-round progress lines to logf.
func WithSwarmLogf(logf func(format string, args ...any)) SwarmOption {
	return func(c *SwarmConfig) { c.Logf = logf }
}

// RunSwarm drives the configured player block to completion: every player
// either finds a good object or times out at the round bound. The context
// cancels the run, including mid-backoff and mid-barrier. The server must
// have been configured with a SwarmToken matching cfg.Token.
func RunSwarm(ctx context.Context, cfg SwarmConfig, opts ...SwarmOption) (*SwarmResult, error) {
	for _, opt := range opts {
		opt(&cfg)
	}
	return swarm.Run(ctx, cfg)
}
