package repro

import (
	"context"

	"repro/internal/swarm"
)

// This file is the options-based entry point to the swarm driver:
//
//	res, err := repro.RunSwarm(ctx, repro.SwarmConfig{
//		Addr: addr, From: 0, To: 1_000_000, Token: token,
//	},
//		repro.WithSwarmGroups(8),
//		repro.WithMetrics(reg))
//
// A swarm drives a block of players over a handful of pipelined
// connections — an event-loop scheduler over plain player state instead of
// a goroutine and TCP connection per player — and is bit-compatible with
// the per-player client fleet: same player streams, same per-round
// ordering, same committed billboard digest.

// SwarmConfig describes one swarm: a contiguous player block [From, To)
// driven against one billboard service. Addr, From/To, and Token (the
// server's SwarmToken credential) are required; everything else defaults.
type SwarmConfig = swarm.Config

// SwarmResult is a completed swarm run.
type SwarmResult = swarm.Result

// SwarmPlayerResult is one swarm player's outcome.
type SwarmPlayerResult = swarm.PlayerResult

// RunSwarm drives the configured player block to completion: every player
// either finds a good object or times out at the round bound. The context
// cancels the run, including mid-backoff and mid-barrier. The server must
// have been configured with a SwarmToken matching cfg.Token.
//
// SwarmOption and its constructors live in options.go with the rest of the
// unified option layer: the layout knobs (WithSwarmGroups, WithSwarmChunk,
// WithSwarmWindow, WithSwarmFallbacks) plus the shared WithMetrics,
// WithObserver, WithLogf, and WithClientOptions.
func RunSwarm(ctx context.Context, cfg SwarmConfig, opts ...SwarmOption) (*SwarmResult, error) {
	for _, opt := range opts {
		opt.applySwarm(&cfg)
	}
	return swarm.Run(ctx, cfg)
}
