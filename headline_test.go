package repro_test

import (
	"testing"

	"repro"
	"repro/internal/stats"
)

// collectProbes gathers per-replication mean honest probes for an algorithm
// under the spam adversary.
func collectProbes(t *testing.T, algorithm string, n, reps int, alpha float64) []float64 {
	t.Helper()
	out := make([]float64, 0, reps)
	for r := 0; r < reps; r++ {
		res, err := repro.Run(repro.SearchConfig{
			Players: n, Objects: n, Alpha: alpha,
			Algorithm: algorithm, Adversary: "spam-distinct",
			Seed: uint64(7000 + r), MaxRounds: 1 << 16,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllHonestSatisfied() {
			t.Fatalf("%s replication %d did not finish", algorithm, r)
		}
		out = append(out, res.MeanHonestProbes())
	}
	return out
}

// TestHeadlineDistillBeatsAsyncSignificantly pins the paper's headline
// comparison with a rank-sum test rather than a bare mean comparison:
// at large n and high α, DISTILL's individual cost is stochastically below
// the asynchronous baseline's at the 1% level.
func TestHeadlineDistillBeatsAsyncSignificantly(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	const n, reps, alpha = 4096, 12, 0.9
	distill := collectProbes(t, "distill", n, reps, alpha)
	async := collectProbes(t, "async-round-robin", n, reps, alpha)
	_, p := stats.MannWhitney(distill, async)
	t.Logf("distill mean %.2f vs async mean %.2f (two-sided p = %.2g)",
		stats.Mean(distill), stats.Mean(async), p)
	if !stats.SignificantlyLess(distill, async, 0.01) {
		t.Fatalf("DISTILL (%v) not significantly below async (%v), p=%v",
			stats.Mean(distill), stats.Mean(async), p)
	}
}

// TestHeadlineFlatInN pins Corollary 5's shape with a significance guard in
// the other direction: quadrupling n at α = 1 − n^{-1/2} must NOT produce a
// significant cost increase beyond 1.8x (log-shape tolerance).
func TestHeadlineFlatInN(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	const reps = 12
	small := collectProbes(t, "distill", 1024, reps, 1-1.0/32) // α = 1 - n^{-0.5}
	large := collectProbes(t, "distill", 4096, reps, 1-1.0/64)
	ratio := stats.Mean(large) / stats.Mean(small)
	t.Logf("n=1024: %.2f probes; n=4096: %.2f probes (ratio %.2f)",
		stats.Mean(small), stats.Mean(large), ratio)
	if ratio > 1.8 {
		t.Fatalf("cost grew %vx over a 4x n increase; Corollary 5 shape violated", ratio)
	}
}

// TestHeadlineTrivialScalesLinearly pins the other end of E1: the
// billboard-oblivious baseline must grow essentially linearly in 1/β.
func TestHeadlineTrivialScalesLinearly(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	small := collectProbes(t, "trivial-random", 256, 8, 0.9)
	large := collectProbes(t, "trivial-random", 1024, 8, 0.9)
	ratio := stats.Mean(large) / stats.Mean(small)
	if ratio < 2.5 || ratio > 6.5 {
		t.Fatalf("trivial baseline ratio %v over a 4x n (=1/β) increase; want ≈ 4", ratio)
	}
}
