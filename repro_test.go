package repro

import (
	"strings"
	"testing"
)

func TestRunQuickstart(t *testing.T) {
	res, err := Run(SearchConfig{
		Players: 256, Objects: 256, Alpha: 0.9,
		Adversary: "spam-distinct", Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllHonestSatisfied() {
		t.Fatal("quickstart search did not finish")
	}
	if res.MeanHonestProbes() <= 0 {
		t.Fatal("no probes recorded")
	}
}

func TestRunEveryAlgorithm(t *testing.T) {
	for _, name := range ProtocolNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			res, err := Run(SearchConfig{
				Players: 128, Objects: 128, Alpha: 0.75,
				Algorithm: name, Seed: 7, MaxRounds: 1 << 16,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.SuccessFraction() == 0 {
				t.Fatalf("%s: nobody succeeded", name)
			}
		})
	}
}

func TestRunEveryAdversary(t *testing.T) {
	for _, name := range Adversaries() {
		name := name
		t.Run(name, func(t *testing.T) {
			res, err := Run(SearchConfig{
				Players: 128, Objects: 128, Alpha: 0.6,
				Adversary: name, Seed: 11, MaxRounds: 1 << 16,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.AllHonestSatisfied() {
				t.Fatalf("%s defeated DISTILL", name)
			}
		})
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(SearchConfig{Players: 8, Objects: 8, Alpha: 0.5, Algorithm: "nope"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := Run(SearchConfig{Players: 8, Objects: 8, Alpha: 0.5, Adversary: "nope"}); err == nil {
		t.Fatal("unknown adversary accepted")
	}
	if _, err := NewAdversary("nope"); err == nil || !strings.Contains(err.Error(), "valid") {
		t.Fatal("NewAdversary error should list valid names")
	}
}

func TestExperimentRegistryExposed(t *testing.T) {
	if len(Experiments()) != 13 {
		t.Fatalf("got %d experiments", len(Experiments()))
	}
	e, err := ExperimentByID("E12")
	if err != nil || e.ID != "E12" {
		t.Fatalf("ExperimentByID: %v %v", e.ID, err)
	}
}

func TestDeterministicFacade(t *testing.T) {
	run := func() float64 {
		res, err := Run(SearchConfig{
			Players: 64, Objects: 64, Alpha: 0.8, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanHonestProbes()
	}
	if run() != run() {
		t.Fatal("facade runs are not deterministic")
	}
}

func TestReplicatorThroughFacade(t *testing.T) {
	results, err := Replicator{
		Reps:     4,
		BaseSeed: 3,
		Build: func(seed uint64) (*Engine, error) {
			u, err := NewPlantedUniverse(Planted{M: 64, Good: 1}, NewRNG(seed))
			if err != nil {
				return nil, err
			}
			return NewEngine(EngineConfig{
				Universe: u, Protocol: NewDistill(DistillParams{}),
				N: 64, Alpha: 1, Seed: seed,
			})
		},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	agg := AggregateResults(results)
	if agg.SuccessRate != 1 {
		t.Fatalf("success rate %v", agg.SuccessRate)
	}
}
