package repro_test

import (
	"testing"

	"repro"
)

// TestGoldenMetrics pins exact end-to-end metric values for fixed seeds.
// Every number below is a pure function of the seed and the code; a change
// here means the simulation semantics changed (intentionally or not), not
// just noise. Update the constants deliberately when the algorithm change
// is intended, and say so in the commit.
func TestGoldenMetrics(t *testing.T) {
	cases := []struct {
		name       string
		cfg        repro.SearchConfig
		wantRounds int
		wantProbes float64 // mean honest probes, exact
	}{
		{
			name: "distill-silent",
			cfg: repro.SearchConfig{
				Players: 256, Objects: 256, Alpha: 0.9, Seed: 42,
			},
		},
		{
			name: "distill-spam",
			cfg: repro.SearchConfig{
				Players: 256, Objects: 256, Alpha: 0.5,
				Adversary: "spam-distinct", Seed: 42,
			},
		},
		{
			name: "async-baseline",
			cfg: repro.SearchConfig{
				Players: 256, Objects: 256, Alpha: 0.9,
				Algorithm: "async-round-robin", Seed: 42,
			},
		},
		{
			name: "three-phase",
			cfg: repro.SearchConfig{
				Players: 256, Objects: 256, Alpha: 0.9,
				Algorithm: "three-phase", Seed: 42,
			},
		},
		{
			name: "distill-hp",
			cfg: repro.SearchConfig{
				Players: 256, Objects: 256, Alpha: 0.5,
				Algorithm: "distill-hp", Adversary: "collude", Seed: 42,
			},
		},
		{
			name: "alphaguess",
			cfg: repro.SearchConfig{
				Players: 256, Objects: 256, Alpha: 0.5,
				Algorithm: "distill-alphaguess", Seed: 42,
			},
		},
		{
			name: "multivote-errors",
			cfg: repro.SearchConfig{
				Players: 256, Objects: 256, Alpha: 0.75,
				Adversary: "random-liar", VotesPerPlayer: 4,
				HonestErrorRate: 0.1, Seed: 42,
			},
		},
	}
	// First run establishes the values; the assertions below were captured
	// from it and are checked on every subsequent run.
	golden := map[string][2]float64{
		"distill-silent":   {7, 3.9391304347826086},
		"distill-spam":     {80, 47.859375},
		"async-baseline":   {25, 7.178260869565217},
		"three-phase":      {7, 5},
		"distill-hp":       {42, 23.1328125},
		"alphaguess":       {17, 8.3984375},
		"multivote-errors": {33, 15.401041666666666},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			res, err := repro.Run(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			want, ok := golden[tc.name]
			if !ok {
				t.Fatalf("no golden entry; measured rounds=%d probes=%v",
					res.Rounds, res.MeanHonestProbes())
			}
			if float64(res.Rounds) != want[0] || res.MeanHonestProbes() != want[1] {
				t.Fatalf("golden drift: rounds=%d probes=%v, want rounds=%v probes=%v",
					res.Rounds, res.MeanHonestProbes(), want[0], want[1])
			}
		})
	}
}

// TestLaptopScale runs DISTILL at n = 65536 — the upper end of the paper's
// "eBay-scale" motivation — as a guard that the engine stays comfortably
// laptop-sized (a few million probe events).
func TestLaptopScale(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	res, err := repro.Run(repro.SearchConfig{
		Players: 65536, Objects: 65536, Alpha: 0.9,
		Adversary: "spam-distinct", Seed: 1, MaxRounds: 1 << 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllHonestSatisfied() {
		t.Fatal("n=65536 run did not finish")
	}
	if res.MeanHonestProbes() > 40 {
		t.Fatalf("n=65536 mean probes %.1f; the sublogarithmic shape is gone",
			res.MeanHonestProbes())
	}
	t.Logf("n=65536: %.1f probes/player in %d rounds", res.MeanHonestProbes(), res.Rounds)
}
