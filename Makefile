# Developer entry points. `make check` is the gate for networking changes:
# vet plus the race detector over the concurrent packages (server, client,
# dist — including the chaos tests).

GO ?= go

.PHONY: build test check fuzz bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

check: build
	$(GO) vet ./...
	$(GO) test -race ./internal/server/... ./internal/client/... ./internal/dist/...

# Short fuzz passes over the byte-level decoders (wire frames, journal).
fuzz:
	$(GO) test ./internal/wire -run xxx -fuzz FuzzDecodeRequest -fuzztime 30s
	$(GO) test ./internal/wire -run xxx -fuzz FuzzDecodeResponse -fuzztime 30s
	$(GO) test ./internal/journal -run xxx -fuzz FuzzReplay -fuzztime 30s

bench:
	$(GO) test ./internal/server -bench . -benchtime 1x
