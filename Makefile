# Developer entry points. `make check` is the gate for hot-path and
# networking changes: vet, the race detector over the concurrent packages
# (server, client, dist — including the chaos, kill/restart recovery, and
# lease-timer lifecycle tests), the durability layer (journal store,
# snapshot rotation), the packages the perf pass touched (billboard, wire),
# the metrics registry and its scrape-under-load tests (obs, server
# metrics), the shard chaos + scatter-gather suite (sharded digests,
# single-shard kill/restart, lane data plane) doubled under -race, the
# parallel-commit suite (the serial-vs-parallel determinism golden and the
# seal-race shard-bounce stress) doubled under -race, the
# replicated-coordinator election + failover suite (quorum commit, leader
# kill, isolation step-down, failover chaos digests) doubled under -race,
# the epoch-mode suite (stamp closure, tick seals, sync-vs-epoch digest
# convergence under chaos, close-during-commit seal audit, stale-replay
# dedupe) doubled under -race, the scenario-replay golden (same file + seed
# → byte-identical digest) doubled under -race plus the open-world swarm
# dynamics suite and a `cmd/experiments -scenario` smoke test, and a
# 1-iteration bench smoke so a broken benchmark cannot land silently.

GO ?= go

.PHONY: build test check fuzz bench bench-diff

build:
	$(GO) build ./...

test:
	$(GO) test ./...

check: build
	$(GO) vet ./...
	$(GO) test -race ./internal/obs/... ./internal/billboard/... ./internal/wire/... ./internal/journal/... ./internal/server/... ./internal/client/... ./internal/dist/...
	$(GO) test -race -run 'TestChaosServerKillRestart|TestPersist|TestCloseStopsLeaseTimers|TestResumeStopsLeaseTimer' -count=2 ./internal/server ./internal/dist
	$(GO) test -race -run 'TestChaosShard|TestSharded|TestKillRestartShard' -count=2 ./internal/server ./internal/dist
	$(GO) test -race -run 'TestShardCommitDeterminismGolden|TestSealRaceShardBounce' -count=2 ./internal/server
	$(GO) test -race -run 'TestReplica|TestLeader|TestChaosReplica|TestChaosLeader' -count=2 ./internal/server ./internal/dist
	$(GO) test -race -run 'TestSwarm|TestFlatClusterConfig' -count=2 ./internal/swarm ./internal/dist
	$(GO) test -race -run 'TestEpoch|TestStale|TestCloseDuringCommit' -count=2 ./internal/server ./internal/swarm ./internal/dist
	$(GO) test -race -run 'TestGoldenScenarioReplay' -count=2 .
	$(GO) test -race -run 'TestSwarmDynamics|TestEngineReplayDeterministic|TestClusterReplayDeterministic' -count=2 ./internal/dist ./internal/scenario
	$(GO) test -race -run 'TestScenario' ./cmd/experiments
	$(GO) test -run xxx -bench . -benchtime 1x . ./internal/server > /dev/null

# Short fuzz passes over the byte-level decoders (wire frames, journal).
fuzz:
	$(GO) test ./internal/wire -run xxx -fuzz FuzzDecodeRequest -fuzztime 30s
	$(GO) test ./internal/wire -run xxx -fuzz FuzzDecodeResponse -fuzztime 30s
	$(GO) test ./internal/journal -run xxx -fuzz FuzzReplay -fuzztime 30s

# Regenerate the recorded benchmark baseline (BENCH_PR2.json). Two passes:
# a 1-iteration sweep over every benchmark (the experiment benches run a full
# scaled experiment per iteration, so once is enough for their wall time),
# then a timed pass over the substrate micro-benchmarks whose ns/op needs
# real iteration counts. benchjson merges the passes; the later pass wins on
# name collisions.
bench:
	( $(GO) test -run xxx -bench . -benchmem -benchtime 1x . ./internal/server && \
	  $(GO) test -run xxx -bench 'BenchmarkEngineRoundDistill|BenchmarkBillboard' -benchmem . ) \
	  | $(GO) run ./cmd/benchjson -o BENCH_PR2.json
	@echo "wrote BENCH_PR2.json"

# Gate the hot paths against the recorded baseline: re-time the substrate
# micro-benchmarks and fail when any ns/op grew more than 5% past
# BENCH_PR2.json. Run after touching billboard, wire, or engine internals
# (the observability layer's overhead budget is enforced here too). The
# allocating WindowCountMap variant is deliberately left out: its time is
# dominated by map allocation, which drifts well past 5% run to run on the
# same commit. Alongside the gate, the sharded service benchmarks are
# re-timed and recorded as BENCH_PR7.json (1/4/16-shard post-round and
# scatter-gather window-query points; BENCH_PR5.json stays committed as the
# pre-parallel-commit record), and the replicated coordinator's post-round
# commit latency is recorded as BENCH_PR6.json: the replicas-1 point is the
# repLog bookkeeping with a quorum of self, the replicas-3 point adds one
# follower's durable ack per round — the replication tax, priced, not gated.
#
# The sharded recording doubles as a scaling gate on a multi-core box:
# shards-16 must finish a post round in fewer ns/op than shards-1, i.e. the
# parallel lane commit must actually buy throughput. At GOMAXPROCS=1 the 16
# lanes' frames cannot overlap (the round is 16x the RPCs with no CPU to
# run them on), so the gate arms only when at least 4 CPUs are available.
NPROC := $(shell nproc 2>/dev/null || echo 1)
MULTICORE := $(shell [ $(NPROC) -ge 4 ] && echo y)
SCALING_GATE := $(if $(MULTICORE),-faster 'BenchmarkShardedPostBatch/shards-16<BenchmarkShardedPostBatch/shards-1',)

# The swarm recording (BENCH_PR8.json) gates the event-loop driver against
# the goroutine-per-player fleet at matched player counts: the swarm must
# cost fewer ns/player. The 10k pair needs ~20k file descriptors for the
# goroutine side (two per player), so the gate compares at 10k only when
# the descriptor budget allows and falls back to the 2k pair otherwise;
# the swarm-side 10k/100k/1M scale points record regardless.
FDS := $(shell sh -c 'ulimit -n' 2>/dev/null || echo 1024)
BIGFLEET := $(shell [ $(FDS) -ge 20100 ] && echo y)
SWARM_GATE := $(if $(BIGFLEET),-faster 'BenchmarkClusterFleet/swarm-10k<BenchmarkClusterFleet/goroutine-10k',-faster 'BenchmarkClusterFleet/swarm-2k<BenchmarkClusterFleet/goroutine-2k')

bench-diff:
	$(GO) test -run xxx -bench 'BenchmarkEngineRoundDistill$$|BenchmarkBillboardPostCommit$$|BenchmarkBillboardWindowCount$$' -benchmem . \
	  | $(GO) run ./cmd/benchjson -baseline BENCH_PR2.json -max-regress 5
	$(GO) test -run xxx -bench 'BenchmarkSharded' -benchmem ./internal/server \
	  | $(GO) run ./cmd/benchjson -o BENCH_PR7.json $(SCALING_GATE)
	@echo "wrote BENCH_PR7.json (scaling gate: $(if $(MULTICORE),armed,skipped — $(NPROC) CPU(s)))"
	$(GO) test -run xxx -bench 'BenchmarkReplicated' -benchmem ./internal/server \
	  | $(GO) run ./cmd/benchjson -o BENCH_PR6.json
	@echo "wrote BENCH_PR6.json"
	$(GO) test -run xxx -bench 'BenchmarkClusterFleet|BenchmarkSwarmScale' -benchmem -benchtime 1x -timeout 30m ./internal/dist \
	  | $(GO) run ./cmd/benchjson -o BENCH_PR8.json $(SWARM_GATE)
	@echo "wrote BENCH_PR8.json (fleet gate at $(if $(BIGFLEET),10k,2k) players; $(FDS) fds)"
	$(GO) test -run xxx -bench 'BenchmarkEpochPostRound' -benchmem ./internal/server \
	  | $(GO) run ./cmd/benchjson -o BENCH_PR9.json
	@echo "wrote BENCH_PR9.json (sync-vs-epoch posting round; recorded, not gated)"
