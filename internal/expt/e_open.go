package expt

import (
	"repro/internal/adversary"
	"repro/internal/async"
	"repro/internal/core"
	"repro/internal/object"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Extensions returns the experiments X1…X8 exploring the open problems of
// the paper's §6 (and the §1.2 asynchronous-model motivation). They go
// beyond the paper's claims, so they live outside the E registry. X7 and
// X8 run through the declarative scenario layer (internal/scenario): the
// populations that used to be hard-coded here are now named builtin specs.
func Extensions() []Experiment {
	return []Experiment{x1(), x2(), x3(), x4(), x5(), x6(), x7(), x8()}
}

// x1: the §1.2 motivation — in the asynchronous model of [1], the schedule
// adversary controls individual cost; synchrony is what makes individual
// bounds possible.
func x1() Experiment {
	return Experiment{
		ID:    "X1",
		Title: "Async schedules: why the paper moved to the synchronous model",
		Claim: "§1.2: under the asynchronous model of [1], a schedule that runs a single player by itself forces that player to find a good object alone (Θ(1/β) probes), while fair schedules share the work.",
		Run: func(o Options) (*stats.Table, error) {
			const n, m, good = 16, 800, 4 // 1/β = 200
			reps := o.reps(20)
			tab := stats.NewTable("X1 victim's probes in the asynchronous model (n=16, 1/β=200)",
				"strategy", "schedule", "victim probes", "population mean", "1/beta")
			type cell struct {
				strategy func() async.Strategy
				schedule async.Schedule
			}
			cells := []cell{
				{func() async.Strategy { return async.NewExploreFollow(n, m) }, async.RoundRobin{}},
				{func() async.Strategy { return async.NewExploreFollow(n, m) }, async.UniformRandom{}},
				{func() async.Strategy { return async.NewExploreFollow(n, m) }, async.Starve{Victim: 0}},
				{func() async.Strategy { return async.NewSolo(m) }, async.Starve{Victim: 0}},
			}
			for i, c := range cells {
				var victim, popMean []float64
				var name string
				for r := 0; r < reps; r++ {
					seed := o.seed(uint64(3100+i*100) + uint64(r))
					u, err := object.NewPlanted(object.Planted{M: m, Good: good}, rng.New(seed))
					if err != nil {
						return nil, err
					}
					strat := c.strategy()
					name = strat.Name()
					res, err := async.Run(async.Config{
						Universe: u, Strategy: strat, Schedule: c.schedule,
						N: n, Seed: seed,
					})
					if err != nil {
						return nil, err
					}
					victim = append(victim, float64(res.Probes[0]))
					popMean = append(popMean, stats.MeanInts(res.Probes))
				}
				tab.AddRow(name, c.schedule.Name(),
					stats.Mean(victim), stats.Mean(popMean), float64(m)/float64(good))
			}
			return tab, nil
		},
	}
}

// x2: the §6 question "is slander useless?" — give DISTILL a
// negative-report veto and measure both sides.
func x2() Experiment {
	return Experiment{
		ID:    "X2",
		Title: "§6: can bad recommendations be used? (negative-report veto)",
		Claim: "§6 open problem: DISTILL ignores negative reports. A veto on objects with many negative reports prunes bad candidates when negatives are truthful — and hands Byzantine slanderers a weapon against the good object.",
		Run: func(o Options) (*stats.Table, error) {
			const n = 1024
			const alpha = 0.5
			reps := o.reps(12)
			tab := stats.NewTable("X2 DISTILL with and without a negative-report veto (n=m=1024, α=0.5)",
				"variant", "adversary", "mean probes", "mean rounds", "success")
			type cell struct {
				variant string
				veto    int
				adv     string
			}
			cells := []cell{
				{"paper (ignore negatives)", 0, "spam-distinct"},
				{"veto >= 3 negatives", 3, "spam-distinct"},
				{"paper (ignore negatives)", 0, "slander"},
				{"veto >= 3 negatives", 3, "slander"},
			}
			for i, c := range cells {
				c := c
				agg, err := run(runConfig{
					n: n, m: n, good: 1, alpha: alpha, reps: reps,
					seed: o.seed(uint64(3200 + i)), workers: o.Workers,
					maxRounds: 20000,
					protocol: func() sim.Protocol {
						return core.NewDistill(core.Params{NegativeVeto: c.veto})
					},
					adversary: func() sim.Adversary { return adversary.ByName(c.adv) },
				})
				if err != nil {
					return nil, err
				}
				tab.AddRow(c.variant, c.adv, agg.MeanIndividualProbes,
					agg.MeanRounds, agg.SuccessRate)
			}
			return tab, nil
		},
	}
}

// x3: the §6 question "what is the effect of associating each object with
// a player?" — sellers shill their own listings; an ownership-aware vote
// rule neutralizes them.
func x3() Experiment {
	return Experiment{
		ID:    "X3",
		Title: "§6: objects owned by players (shilling and the own-vote rule)",
		Claim: "§6 open problem: with objects owned by players, dishonest owners shill their own bad objects; discarding votes for the voter's own objects removes their entire vote budget.",
		Run: func(o Options) (*stats.Table, error) {
			const n = 1024
			reps := o.reps(12)
			owner := func(obj int) int { return obj % n }
			tab := stats.NewTable("X3 owner-shill attack vs the own-vote admission rule (n=m=1024)",
				"alpha", "no rule probes", "own-vote rule probes", "silent baseline")
			for i, alpha := range []float64{0.75, 0.5, 0.25} {
				seed := o.seed(uint64(3300 + i))
				point := func(ownVoteRule, shill bool) (sim.Aggregate, error) {
					var filter func(player, object int) bool
					if ownVoteRule {
						filter = func(player, object int) bool { return owner(object) != player }
					}
					results, err := sim.Replicator{
						Reps:     reps,
						Workers:  o.Workers,
						BaseSeed: seed,
						Build: func(s uint64) (*sim.Engine, error) {
							u, err := planted(n, 1, s)
							if err != nil {
								return nil, err
							}
							cfg := sim.Config{
								Universe: u, Protocol: core.NewDistill(core.Params{}),
								N: n, Alpha: alpha, Seed: s, MaxRounds: 20000,
								VoteFilter: filter,
							}
							if shill {
								cfg.Adversary = adversary.NewOwnerShill(owner)
							}
							return sim.NewEngine(cfg)
						},
					}.Run()
					if err != nil {
						return sim.Aggregate{}, err
					}
					return sim.AggregateResults(results), nil
				}
				unprotected, err := point(false, true)
				if err != nil {
					return nil, err
				}
				protected, err := point(true, true)
				if err != nil {
					return nil, err
				}
				silent, err := point(false, false)
				if err != nil {
					return nil, err
				}
				tab.AddRow(alpha, unprotected.MeanIndividualProbes,
					protected.MeanIndividualProbes, silent.MeanIndividualProbes)
			}
			return tab, nil
		},
	}
}
