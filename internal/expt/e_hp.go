package expt

import (
	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

// e7: Theorem 11 — DISTILL^HP last-player termination O(log n / α) w.h.p.
func e7() Experiment {
	return Experiment{
		ID:    "E7",
		Title: "Theorem 11: DISTILL^HP last-player termination",
		Claim: "Thm 11: DISTILL^HP terminates (all honest players) in O(log n/(αβn) + log n/α) rounds with probability 1 − n^{−Ω(1)}.",
		Run: func(o Options) (*stats.Table, error) {
			ns := []int{256, 1024, 4096}
			const alpha = 0.5
			reps := o.reps(20)
			tab := stats.NewTable("E7 last-player round of DISTILL^HP (α=0.5, β=1/n)",
				"n", "mean last", "p95 last", "max last", "logn/alpha", "frac > 8·logn/alpha")
			for i, n := range ns {
				rounds, err := lastRounds(runConfig{
					n: n, m: n, good: 1, alpha: alpha, reps: reps,
					seed: o.seed(uint64(700 + i)), workers: o.Workers,
					protocol:  func() sim.Protocol { return core.NewDistillHP(core.Params{}) },
					adversary: func() sim.Adversary { return adversary.SpamDistinct{} },
				})
				if err != nil {
					return nil, err
				}
				ref := logN(n) / alpha
				tail := 0
				for _, r := range rounds {
					if r > 8*ref {
						tail++
					}
				}
				tab.AddRow(n, stats.Mean(rounds), stats.Quantile(rounds, 0.95),
					stats.Max(rounds), ref, float64(tail)/float64(len(rounds)))
			}
			return tab, nil
		},
	}
}

// e8: §5.1 — guessing α by halving costs at most a constant factor over
// knowing it.
func e8() Experiment {
	return Experiment{
		ID:    "E8",
		Title: "§5.1: guessing α by halving",
		Claim: "§5.1: running DISTILL^HP with α halved per phase terminates in O(log n/(α₀βn) + log n/α₀) rounds — at most ~2× the final phase — without knowing α₀.",
		Run: func(o Options) (*stats.Table, error) {
			const n = 1024
			alphas := []float64{0.5, 0.25, 0.125, 0.0625}
			reps := o.reps(10)
			tab := stats.NewTable("E8 known-α DISTILL^HP vs AlphaGuess (n=m=1024)",
				"true alpha", "known-α rounds", "alphaguess rounds", "overhead", "final phase i")
			for i, alpha := range alphas {
				seed := o.seed(uint64(800 + i))
				known, err := run(runConfig{
					n: n, m: n, good: 1, alpha: alpha, reps: reps,
					seed: seed, workers: o.Workers,
					protocol:  func() sim.Protocol { return core.NewDistillHP(core.Params{}) },
					adversary: func() sim.Adversary { return adversary.SpamDistinct{} },
				})
				if err != nil {
					return nil, err
				}
				// AlphaGuess runs serially so the final phase index can be
				// read back from the protocol instance.
				var rounds []float64
				finalPhase := 0
				for r := 0; r < reps; r++ {
					g := core.NewAlphaGuess(core.Params{}, 0)
					u, err := planted(n, 1, seed+uint64(r))
					if err != nil {
						return nil, err
					}
					engine, err := sim.NewEngine(sim.Config{
						Universe: u, Protocol: g,
						Adversary:    adversary.SpamDistinct{},
						N:            n,
						Alpha:        alpha,
						AssumedAlpha: 1, // deliberately wrong; must be ignored
						Seed:         seed + uint64(r), MaxRounds: 1 << 16,
					})
					if err != nil {
						return nil, err
					}
					res, err := engine.Run()
					if err != nil {
						return nil, err
					}
					rounds = append(rounds, float64(res.Rounds))
					if g.Phase() > finalPhase {
						finalPhase = g.Phase()
					}
				}
				guessRounds := stats.Mean(rounds)
				tab.AddRow(alpha, known.MeanRounds, guessRounds,
					guessRounds/known.MeanRounds, finalPhase)
			}
			return tab, nil
		},
	}
}
