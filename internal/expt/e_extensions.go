package expt

import (
	"math"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/object"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

// e9: Theorem 12 — cost classes keep the total spend near the cheapest good
// object's cost times m log n/(αn).
func e9() Experiment {
	return Experiment{
		ID:    "E9",
		Title: "Theorem 12: multiple costs via cost classes",
		Claim: "Thm 12: each honest player finds a good object w.h.p. while paying only O(q₀·m·log n/(αn)), q₀ the cheapest good object's cost.",
		Run: func(o Options) (*stats.Table, error) {
			const n, m = 256, 512
			const alpha = 0.75
			reps := o.reps(10)
			tab := stats.NewTable("E9 mean cost per player with cost classes (n=256, m=512)",
				"cost model", "q0", "bound shape", "costclasses", "plain distill", "success")
			type workload struct {
				name     string
				universe func(seed uint64) (*object.Universe, error)
			}
			workloads := []workload{
				{"two-tier(1,64)", func(seed uint64) (*object.Universe, error) {
					src := rng.New(seed)
					values := make([]float64, m)
					costs := make([]float64, m)
					for i := range costs {
						costs[i] = 64
					}
					for i := 0; i < m/4; i++ {
						costs[i] = 1
					}
					values[src.Intn(m/4)] = 1     // cheap good object, q0 = 1
					values[m/4+src.Intn(m/2)] = 1 // an expensive good one too
					return object.NewUniverse(object.Config{
						Values: values, Costs: costs, LocalTesting: true, Threshold: 0.5,
					})
				}},
				{"pareto(1.3)", func(seed uint64) (*object.Universe, error) {
					src := rng.New(seed)
					costs := object.ParetoCosts(m, 1.3, src)
					values := make([]float64, m)
					for i := 0; i < 4; i++ {
						values[src.Intn(m)] = 1
					}
					values[src.Intn(m)] = 1
					return object.NewUniverse(object.Config{
						Values: values, Costs: costs, LocalTesting: true, Threshold: 0.5,
					})
				}},
			}
			for i, w := range workloads {
				seed := o.seed(uint64(900 + i))
				// Measure q0 from a sample universe.
				sample, err := w.universe(seed)
				if err != nil {
					return nil, err
				}
				q0 := sample.CheapestGoodCost()
				bound := q0 * float64(m) * logN(n) / (alpha * float64(n))

				classes, err := run(runConfig{
					n: n, alpha: alpha, reps: reps, seed: seed, workers: o.Workers,
					universe: w.universe,
					protocol: func() sim.Protocol { return core.NewCostClasses(core.Params{}, 0) },
				})
				if err != nil {
					return nil, err
				}
				plain, err := run(runConfig{
					n: n, alpha: alpha, reps: reps, seed: seed, workers: o.Workers,
					universe: w.universe,
					protocol: func() sim.Protocol { return core.NewDistill(core.Params{}) },
				})
				if err != nil {
					return nil, err
				}
				tab.AddRow(w.name, q0, bound,
					classes.MeanIndividualCost, plain.MeanIndividualCost,
					classes.SuccessRate)
			}
			return tab, nil
		},
	}
}

// e10: Theorem 13 — search without local testing.
func e10() Experiment {
	return Experiment{
		ID:    "E10",
		Title: "Theorem 13: search without local testing",
		Claim: "Thm 13: without local testing, each honest player finds a top-β object with probability 1 − n^{−Ω(1)} in O(log n/(αβn) + log n/α) rounds.",
		Run: func(o Options) (*stats.Table, error) {
			const n, m = 512, 512
			const alpha = 0.8
			betas := []float64{1.0 / m, 0.01, 0.05, 0.1}
			reps := o.reps(12)
			tab := stats.NewTable("E10 no-local-testing success (n=m=512, α=0.8)",
				"beta", "rounds", "success rate", "logn shape")
			for i, beta := range betas {
				beta := beta
				agg, err := run(runConfig{
					n: n, alpha: alpha, reps: reps,
					seed: o.seed(uint64(1000 + i)), workers: o.Workers,
					universe: func(seed uint64) (*object.Universe, error) {
						return object.NewTopBeta(m, beta, rng.New(seed))
					},
					protocol:  func() sim.Protocol { return core.NewNoLocalTesting(core.Params{}, 0) },
					adversary: func() sim.Adversary { return adversary.SpamDistinct{} },
				})
				if err != nil {
					return nil, err
				}
				shape := logN(n)/(alpha*beta*float64(n)) + logN(n)/alpha
				tab.AddRow(beta, agg.MeanRounds, agg.SuccessRate, shape)
			}
			return tab, nil
		},
	}
}

// e11: §4.1 — multiple and erroneous votes.
func e11() Experiment {
	return Experiment{
		ID:    "E11",
		Title: "§4.1: multiple votes and erroneous votes",
		Claim: "§4.1: with up to f votes per player and erroneous honest votes, Theorem 4 is unchanged so long as f = o(1/(1−α)).",
		Run: func(o Options) (*stats.Table, error) {
			const n = 1024
			const alpha = 0.75 // 1/(1-α) = 4
			fs := []int{1, 2, 4, 8, 16}
			reps := o.reps(12)
			tab := stats.NewTable("E11 DISTILL with f votes/player, honest error rate 0.1 (n=m=1024, α=0.75)",
				"f", "f·(1-alpha)", "mean probes", "mean rounds", "success")
			for i, f := range fs {
				f := f
				agg, err := run(runConfig{
					n: n, m: n, good: 1, alpha: alpha, reps: reps,
					seed: o.seed(uint64(1100 + i)), workers: o.Workers,
					votesPer: f, errorRate: 0.1,
					protocol:  func() sim.Protocol { return core.NewDistill(core.Params{}) },
					adversary: func() sim.Adversary { return &adversary.RandomLiar{Rate: 0.5} },
				})
				if err != nil {
					return nil, err
				}
				tab.AddRow(f, float64(f)*(1-alpha),
					agg.MeanIndividualProbes, agg.MeanRounds, agg.SuccessRate)
			}
			return tab, nil
		},
	}
}

// e12: the §1.2 three-phase illustration with √n dishonest players.
func e12() Experiment {
	return Experiment{
		ID:    "E12",
		Title: "§1.2 example: three-phase algorithm, √n dishonest",
		Claim: "§1.2: with m=n and √n dishonest players, the three-phase algorithm finds the good object in O(1) rounds with constant probability.",
		Run: func(o Options) (*stats.Table, error) {
			ns := []int{256, 1024, 4096}
			reps := o.reps(30)
			tab := stats.NewTable("E12 three-phase success (m=n, √n dishonest, 7 prescribed rounds)",
				"n", "dishonest", "success rate", "rounds")
			for i, n := range ns {
				n := n
				dishonest := int(math.Sqrt(float64(n)))
				agg, err := run(runConfig{
					n: n, m: n, good: 1, reps: reps,
					seed: o.seed(uint64(1200 + i)), workers: o.Workers,
					honest: func(seed uint64) []int {
						honest := make([]int, 0, n-dishonest)
						for p := dishonest; p < n; p++ {
							honest = append(honest, p)
						}
						return honest
					},
					protocol:  func() sim.Protocol { return core.NewThreePhase() },
					adversary: func() sim.Adversary { return adversary.SpamDistinct{} },
				})
				if err != nil {
					return nil, err
				}
				tab.AddRow(n, dishonest, agg.SuccessRate, agg.MeanRounds)
			}
			return tab, nil
		},
	}
}
