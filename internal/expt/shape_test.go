package expt

import (
	"math"
	"testing"

	"repro/internal/adversary"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/lowerbound"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Shape checks: the EXPERIMENTS.md verdicts as executable assertions, run
// at moderate scale so regressions in the algorithms (not just crashes)
// fail CI. Each check mirrors one recorded claim.

// TestShapeE5BoundRespected asserts the Theorem 2 bound empirically: on the
// partition distribution every algorithm averages at least B/2 player-0
// probes (with a 25% statistical slack at this scale).
func TestShapeE5BoundRespected(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := lowerbound.Theorem2Config{N: 32, M: 32, Alpha: 0.125, Beta: 0.125}
	bound := lowerbound.Theorem2Bound(cfg.Alpha, cfg.Beta)
	for _, tc := range []struct {
		name    string
		factory func() sim.Protocol
	}{
		{"distill", func() sim.Protocol { return core.NewDistill(core.Params{}) }},
		{"async", func() sim.Protocol { return baseline.NewAsyncRoundRobin() }},
		{"trivial", func() sim.Protocol { return baseline.NewTrivialRandom() }},
	} {
		probes, err := cfg.Player0Probes(tc.factory, 8, 4242)
		if err != nil {
			t.Fatal(err)
		}
		if mean := stats.Mean(probes); mean < 0.75*bound {
			t.Fatalf("%s: mean %.2f below 0.75·bound %.2f — the hard instance is leaking information",
				tc.name, mean, bound)
		}
	}
}

// TestShapeE8OverheadSmall asserts the §5.1 claim: guessing α costs at most
// ~2x knowing it (allowing 2.5x for noise at this scale).
func TestShapeE8OverheadSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	const n, reps = 512, 8
	const alpha = 0.25
	point := func(proto func() sim.Protocol, assumed float64) float64 {
		agg, err := run(runConfig{
			n: n, m: n, good: 1, alpha: alpha, reps: reps, seed: 777,
			maxRounds: 1 << 15,
			protocol:  proto,
			adversary: func() sim.Adversary { return adversary.SpamDistinct{} },
		})
		if err != nil {
			t.Fatal(err)
		}
		_ = assumed
		return agg.MeanRounds
	}
	known := point(func() sim.Protocol { return core.NewDistillHP(core.Params{}) }, alpha)
	guessed := point(func() sim.Protocol { return core.NewAlphaGuess(core.Params{}, 0) }, 1)
	if guessed > 2.5*known {
		t.Fatalf("alpha-guessing overhead %.2fx exceeds the §5.1 bound (~2x)", guessed/known)
	}
}

// TestShapeE13IterationsSublogarithmic asserts Lemma 7: mean while-loop
// iterations stay within 2x of log n / Δ.
func TestShapeE13IterationsSublogarithmic(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	const n = 1024
	const alpha = 0.25
	var iters []float64
	for r := 0; r < 10; r++ {
		d := core.NewDistill(core.Params{K1: 0.5, K2: 4})
		u, err := planted(n, 1, uint64(900+r))
		if err != nil {
			t.Fatal(err)
		}
		engine, err := sim.NewEngine(sim.Config{
			Universe: u, Protocol: d, Adversary: adversary.NewThresholdRide(),
			N: n, Alpha: alpha, Seed: uint64(900 + r), MaxRounds: 1 << 15,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := engine.Run(); err != nil {
			t.Fatal(err)
		}
		for _, c := range d.IterationCounts() {
			iters = append(iters, float64(c))
		}
	}
	ref := math.Log2(n) / delta(alpha, n)
	if mean := stats.Mean(iters); mean > 2*ref {
		t.Fatalf("mean iterations %.2f exceed 2·(log n/Δ) = %.2f", mean, 2*ref)
	}
}

// TestShapeA1AdviceMatters asserts the A1 ablation: removing advice slows
// DISTILL by at least 30%.
func TestShapeA1AdviceMatters(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	const n, reps = 512, 10
	point := func(disable bool) float64 {
		agg, err := run(runConfig{
			n: n, m: n, good: 1, alpha: 0.5, reps: reps, seed: 888,
			maxRounds: 1 << 15,
			protocol: func() sim.Protocol {
				return core.NewDistill(core.Params{DisableAdvice: disable})
			},
			adversary: func() sim.Adversary { return adversary.SpamDistinct{} },
		})
		if err != nil {
			t.Fatal(err)
		}
		return agg.MeanIndividualProbes
	}
	with, without := point(false), point(true)
	if without < 1.3*with {
		t.Fatalf("advice ablation slowdown only %.2fx; Lemma 6 mechanism not visible", without/with)
	}
}

// TestShapeX4PopularityHerded asserts the §1.3 claim: popularity-following
// costs at least 3x DISTILL under spam at α = 0.75.
func TestShapeX4PopularityHerded(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	const n, reps = 512, 8
	point := func(proto func() sim.Protocol) float64 {
		agg, err := run(runConfig{
			n: n, m: n, good: 1, alpha: 0.75, reps: reps, seed: 999,
			maxRounds: 1 << 15,
			protocol:  proto,
			adversary: func() sim.Adversary { return adversary.SpamDistinct{} },
		})
		if err != nil {
			t.Fatal(err)
		}
		return agg.MeanIndividualProbes
	}
	pop := point(func() sim.Protocol { return baseline.NewPopularity() })
	distill := point(func() sim.Protocol { return core.NewDistill(core.Params{}) })
	if pop < 3*distill {
		t.Fatalf("popularity (%.1f) should cost ≥3x DISTILL (%.1f) under spam", pop, distill)
	}
}
