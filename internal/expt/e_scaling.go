package expt

import (
	"math"

	"repro/internal/adversary"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

// delta computes Δ = log2(1/(1-α) + log2 n) (Notation 3). For α = 1 the
// first term is taken as n (no dishonest players at all), which saturates
// the bound.
func delta(alpha float64, n int) float64 {
	inv := float64(n)
	if alpha < 1 {
		inv = 1 / (1 - alpha)
	}
	d := math.Log2(inv + math.Log2(float64(n)))
	if d < 1 {
		d = 1
	}
	return d
}

// theorem4Prediction is the Theorem 4 shape 1/(αβn) + (1/α)·log2(n)/Δ
// (no leading constant; it is a shape reference, not an absolute bound).
func theorem4Prediction(alpha, beta float64, n int) float64 {
	return 1/(alpha*beta*float64(n)) + math.Log2(float64(n))/(alpha*delta(alpha, n))
}

// e1: individual cost vs n at high α — DISTILL flat, async baseline grows
// like log n, trivial grows like 1/β = n.
func e1() Experiment {
	return Experiment{
		ID:    "E1",
		Title: "Individual cost vs n (α=0.9, β=1/n, m=n)",
		Claim: "§1.2/Cor.5: DISTILL has O(1) individual cost when most players are honest, vs Θ(log n) for the asynchronous algorithm of [1] and Θ(1/β)=Θ(n) for billboard-oblivious probing.",
		Run: func(o Options) (*stats.Table, error) {
			ns := []int{256, 512, 1024, 2048, 4096}
			if o.scale() >= 1 {
				ns = append(ns, 8192)
			}
			reps := o.reps(20)
			tab := stats.NewTable("E1 individual probes vs n (mean over honest players)",
				"n", "distill", "async[1]", "trivial", "distill p95")
			for i, n := range ns {
				seed := o.seed(uint64(100 + i))
				point := func(proto func() sim.Protocol) (sim.Aggregate, error) {
					return run(runConfig{
						n: n, m: n, good: 1, alpha: 0.9, reps: reps,
						seed: seed, workers: o.Workers, protocol: proto,
						adversary: func() sim.Adversary { return adversary.SpamDistinct{} },
					})
				}
				distill, err := point(func() sim.Protocol { return core.NewDistill(core.Params{}) })
				if err != nil {
					return nil, err
				}
				async, err := point(func() sim.Protocol { return baseline.NewAsyncRoundRobin() })
				if err != nil {
					return nil, err
				}
				trivial, err := point(func() sim.Protocol { return baseline.NewTrivialRandom() })
				if err != nil {
					return nil, err
				}
				tab.AddRow(n,
					distill.MeanIndividualProbes,
					async.MeanIndividualProbes,
					trivial.MeanIndividualProbes,
					stats.Quantile(distill.PerPlayerProbes, 0.95))
			}
			return tab, nil
		},
	}
}

// e2: individual cost vs α — the (1/α)·log n/Δ dependence of Theorem 4.
func e2() Experiment {
	return Experiment{
		ID:    "E2",
		Title: "Individual cost vs α (n=m=2048, β=1/n)",
		Claim: "Thm 4: expected termination time O(1/(αβn) + (1/α)·log n/Δ) against an adaptive Byzantine adversary.",
		Run: func(o Options) (*stats.Table, error) {
			const n = 2048
			alphas := []float64{0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0}
			reps := o.reps(15)
			tab := stats.NewTable("E2 individual probes vs α",
				"alpha", "distill", "async[1]", "thm4 shape", "ratio")
			for i, alpha := range alphas {
				seed := o.seed(uint64(200 + i))
				distill, err := run(runConfig{
					n: n, m: n, good: 1, alpha: alpha, reps: reps,
					seed: seed, workers: o.Workers,
					protocol:  func() sim.Protocol { return core.NewDistill(core.Params{}) },
					adversary: func() sim.Adversary { return adversary.NewThresholdRide() },
				})
				if err != nil {
					return nil, err
				}
				async, err := run(runConfig{
					n: n, m: n, good: 1, alpha: alpha, reps: reps,
					seed: seed, workers: o.Workers,
					protocol:  func() sim.Protocol { return baseline.NewAsyncRoundRobin() },
					adversary: func() sim.Adversary { return adversary.NewThresholdRide() },
				})
				if err != nil {
					return nil, err
				}
				pred := theorem4Prediction(alpha, 1/float64(n), n)
				tab.AddRow(alpha,
					distill.MeanIndividualProbes,
					async.MeanIndividualProbes,
					pred,
					distill.MeanIndividualProbes/pred)
			}
			return tab, nil
		},
	}
}

// e3: Corollary 5 — α = 1 - n^{-ε} gives cost O(1/ε), independent of n.
func e3() Experiment {
	return Experiment{
		ID:    "E3",
		Title: "Corollary 5: cost O(1/ε) when α = 1 − n^{−ε}",
		Claim: "Cor. 5: if m=n and α ≥ 1 − 1/n^ε then the expected termination time is O(1/ε), independent of n.",
		Run: func(o Options) (*stats.Table, error) {
			ns := []int{1024, 4096}
			if o.scale() >= 1 {
				ns = append(ns, 16384)
			}
			epsilons := []float64{0.25, 0.5, 0.75, 1.0}
			reps := o.reps(15)
			tab := stats.NewTable("E3 mean probes for α = 1 − n^{−ε}",
				"epsilon", "n", "alpha", "distill probes", "1/eps")
			for i, eps := range epsilons {
				for j, n := range ns {
					alpha := 1 - math.Pow(float64(n), -eps)
					dishonest := int(math.Pow(float64(n), 1-eps))
					seed := o.seed(uint64(300 + i*10 + j))
					agg, err := run(runConfig{
						n: n, m: n, good: 1, alpha: alpha, reps: reps,
						seed: seed, workers: o.Workers,
						protocol:  func() sim.Protocol { return core.NewDistill(core.Params{}) },
						adversary: func() sim.Adversary { return adversary.SpamDistinct{} },
					})
					if err != nil {
						return nil, err
					}
					_ = dishonest
					tab.AddRow(eps, n, alpha, agg.MeanIndividualProbes, 1/eps)
				}
			}
			return tab, nil
		},
	}
}
