package expt

import (
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/lowerbound"
	"repro/internal/sim"
	"repro/internal/stats"
)

// e4: Theorem 1 — the collective-work bound Ω(1/(αβn)), realized by the
// full-cooperation oracle and respected by everything else.
func e4() Experiment {
	return Experiment{
		ID:    "E4",
		Title: "Theorem 1: collective-work lower bound Ω(1/(αβn))",
		Claim: "Thm 1: any algorithm has an instance where the expected number of probes per player is Ω(1/(αβn)).",
		Run: func(o Options) (*stats.Table, error) {
			reps := o.reps(30)
			tab := stats.NewTable("E4 measured probes vs the Ω(1/(αβn)) bound",
				"n", "m", "beta", "alpha", "bound", "oracle", "distill")
			cases := []struct {
				n, m, good int
				alpha      float64
			}{
				{16, 320, 4, 1},
				{16, 1024, 4, 1},
				{32, 1024, 4, 0.75},
				{64, 4096, 16, 0.5},
			}
			for i, tc := range cases {
				beta := float64(tc.good) / float64(tc.m)
				bound := lowerbound.Theorem1Bound(tc.alpha, beta, tc.n, tc.m)
				seed := o.seed(uint64(400 + i))
				oracle, err := lowerbound.Theorem1Probes(func() sim.Protocol {
					return baseline.NewOracleCoop()
				}, tc.n, tc.m, tc.good, reps, tc.alpha, seed)
				if err != nil {
					return nil, err
				}
				distill, err := lowerbound.Theorem1Probes(func() sim.Protocol {
					return core.NewDistill(core.Params{})
				}, tc.n, tc.m, tc.good, reps, tc.alpha, seed+1)
				if err != nil {
					return nil, err
				}
				tab.AddRow(tc.n, tc.m, beta, tc.alpha, bound,
					stats.Mean(oracle), stats.Mean(distill))
			}
			return tab, nil
		},
	}
}

// e5: Theorem 2 — the symmetry bound Ω(min(1/α, 1/β)) on the partition
// instance distribution, evaluated for DISTILL and the async baseline.
func e5() Experiment {
	return Experiment{
		ID:    "E5",
		Title: "Theorem 2: symmetry lower bound Ω(min(1/α, 1/β))",
		Claim: "Thm 2: on the partition distribution (player groups P_k endorsing object groups O_k) any algorithm pays expected Ω(min(1/α, 1/β)) probes.",
		Run: func(o Options) (*stats.Table, error) {
			reps := o.reps(6)
			tab := stats.NewTable("E5 player-0 probes on the Theorem 2 distribution",
				"1/alpha", "1/beta", "B/2 bound", "distill", "async[1]", "trivial")
			cases := []lowerbound.Theorem2Config{
				{N: 16, M: 16, Alpha: 0.25, Beta: 0.25},
				{N: 32, M: 32, Alpha: 0.125, Beta: 0.125},
				{N: 64, M: 64, Alpha: 0.0625, Beta: 0.0625},
				{N: 64, M: 64, Alpha: 0.0625, Beta: 0.25},
			}
			for i, c := range cases {
				seed := o.seed(uint64(500 + i))
				measure := func(factory func() sim.Protocol) (float64, error) {
					probes, err := c.Player0Probes(factory, reps, seed)
					if err != nil {
						return 0, err
					}
					return stats.Mean(probes), nil
				}
				distill, err := measure(func() sim.Protocol { return core.NewDistill(core.Params{}) })
				if err != nil {
					return nil, err
				}
				async, err := measure(func() sim.Protocol { return baseline.NewAsyncRoundRobin() })
				if err != nil {
					return nil, err
				}
				trivial, err := measure(func() sim.Protocol { return baseline.NewTrivialRandom() })
				if err != nil {
					return nil, err
				}
				tab.AddRow(1/c.Alpha, 1/c.Beta,
					lowerbound.Theorem2Bound(c.Alpha, c.Beta),
					distill, async, trivial)
			}
			return tab, nil
		},
	}
}
