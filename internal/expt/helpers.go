package expt

import (
	"math"

	"repro/internal/object"
	"repro/internal/rng"
	"repro/internal/sim"
)

// planted builds a standard planted universe.
func planted(m, good int, seed uint64) (*object.Universe, error) {
	return object.NewPlanted(object.Planted{M: m, Good: good}, rng.New(seed))
}

// logN returns log2(n) floored at 1.
func logN(n int) float64 {
	l := math.Log2(float64(n))
	if l < 1 {
		l = 1
	}
	return l
}

// runConfig describes one aggregate measurement point.
type runConfig struct {
	n, m, good   int
	alpha        float64
	assumedAlpha float64
	reps         int
	seed         uint64
	workers      int
	maxRounds    int
	votesPer     int
	errorRate    float64
	protocol     func() sim.Protocol
	adversary    func() sim.Adversary // nil = silent
	honest       func(seed uint64) []int
	universe     func(seed uint64) (*object.Universe, error)
}

// run executes the replications for one measurement point.
func run(c runConfig) (sim.Aggregate, error) {
	if c.maxRounds == 0 {
		c.maxRounds = 1 << 16
	}
	makeUniverse := c.universe
	if makeUniverse == nil {
		makeUniverse = func(seed uint64) (*object.Universe, error) {
			return object.NewPlanted(object.Planted{M: c.m, Good: c.good}, rng.New(seed))
		}
	}
	results, err := sim.Replicator{
		Reps:     c.reps,
		Workers:  c.workers,
		BaseSeed: c.seed,
		Build: func(seed uint64) (*sim.Engine, error) {
			u, err := makeUniverse(seed)
			if err != nil {
				return nil, err
			}
			cfg := sim.Config{
				Universe:        u,
				Protocol:        c.protocol(),
				N:               c.n,
				Alpha:           c.alpha,
				AssumedAlpha:    c.assumedAlpha,
				Seed:            seed,
				MaxRounds:       c.maxRounds,
				VotesPerPlayer:  c.votesPer,
				HonestErrorRate: c.errorRate,
			}
			if c.adversary != nil {
				cfg.Adversary = c.adversary()
			}
			if c.honest != nil {
				cfg.Honest = c.honest(seed)
			}
			return sim.NewEngine(cfg)
		},
	}.Run()
	if err != nil {
		return sim.Aggregate{}, err
	}
	return sim.AggregateResults(results), nil
}

// lastRounds executes replications and returns the last-satisfied round of
// each (for tail analysis, Theorem 11).
func lastRounds(c runConfig) ([]float64, error) {
	if c.maxRounds == 0 {
		c.maxRounds = 1 << 16
	}
	makeUniverse := c.universe
	if makeUniverse == nil {
		makeUniverse = func(seed uint64) (*object.Universe, error) {
			return object.NewPlanted(object.Planted{M: c.m, Good: c.good}, rng.New(seed))
		}
	}
	results, err := sim.Replicator{
		Reps:     c.reps,
		Workers:  c.workers,
		BaseSeed: c.seed,
		Build: func(seed uint64) (*sim.Engine, error) {
			u, err := makeUniverse(seed)
			if err != nil {
				return nil, err
			}
			cfg := sim.Config{
				Universe:  u,
				Protocol:  c.protocol(),
				N:         c.n,
				Alpha:     c.alpha,
				Seed:      seed,
				MaxRounds: c.maxRounds,
			}
			if c.adversary != nil {
				cfg.Adversary = c.adversary()
			}
			return sim.NewEngine(cfg)
		},
	}.Run()
	if err != nil {
		return nil, err
	}
	out := make([]float64, 0, len(results))
	for _, res := range results {
		out = append(out, float64(res.LastSatisfiedRound()))
	}
	return out, nil
}
