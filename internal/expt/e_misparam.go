package expt

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

// a5: mis-parameterization — DISTILL's schedule is built from an ASSUMED α
// (the paper concedes in §1.3 that requiring knowledge of α is a
// limitation; §5.1's halving wrapper removes it). How wrong can the guess
// be before the cost shape breaks?
func a5() Experiment {
	return Experiment{
		ID:    "A5",
		Title: "Ablation: mis-guessed α",
		Claim: "§1.3/§5.1: DISTILL hardwires α. Underestimating it stretches every step by the assumed 1/α (pure overhead); overestimating shortens the vote-concentration windows below what Lemmas 8/10 need, costing attempts. The diagonal is optimal; AlphaGuess matches it without the knowledge.",
		Run: func(o Options) (*stats.Table, error) {
			const n = 1024
			reps := o.reps(12)
			trueAlphas := []float64{0.75, 0.25}
			assumed := []float64{1.0, 0.75, 0.5, 0.25, 0.0625}
			header := []string{"true α \\ assumed α"}
			for _, a := range assumed {
				header = append(header, trim(a))
			}
			header = append(header, "alphaguess")
			tab := stats.NewTable("A5 DISTILL mean probes by assumed α (n=m=1024, spam adversary)", header...)
			for i, trueAlpha := range trueAlphas {
				row := []any{trim(trueAlpha)}
				for j, guess := range assumed {
					guess := guess
					agg, err := run(runConfig{
						n: n, m: n, good: 1, alpha: trueAlpha, reps: reps,
						seed: o.seed(uint64(2500 + i*100 + j)), workers: o.Workers,
						maxRounds:    1 << 15,
						protocol:     func() sim.Protocol { return core.NewDistill(core.Params{}) },
						adversary:    func() sim.Adversary { return adversary.SpamDistinct{} },
						assumedAlpha: guess,
					})
					if err != nil {
						return nil, err
					}
					row = append(row, agg.MeanIndividualProbes)
				}
				guessAgg, err := run(runConfig{
					n: n, m: n, good: 1, alpha: trueAlpha, reps: reps,
					seed: o.seed(uint64(2500 + i*100 + 50)), workers: o.Workers,
					maxRounds:    1 << 15,
					protocol:     func() sim.Protocol { return core.NewAlphaGuess(core.Params{}, 0) },
					adversary:    func() sim.Adversary { return adversary.SpamDistinct{} },
					assumedAlpha: 1, // deliberately wrong; the wrapper ignores it
				})
				if err != nil {
					return nil, err
				}
				row = append(row, guessAgg.MeanIndividualProbes)
				tab.AddRow(row...)
			}
			return tab, nil
		},
	}
}

// trim renders an α compactly.
func trim(a float64) string {
	switch a {
	case 1:
		return "1"
	case 0.75:
		return "3/4"
	case 0.5:
		return "1/2"
	case 0.25:
		return "1/4"
	case 0.0625:
		return "1/16"
	default:
		return fmt.Sprintf("%g", a)
	}
}
