// Package expt defines the reproduction experiments E1…E13, one per
// quantitative claim of the paper (see DESIGN.md §5 for the index). Each
// experiment knows its workload, runs its replications, and renders the
// table the claim predicts the shape of. The cmd/experiments binary and the
// root bench suite both drive this registry.
package expt

import (
	"fmt"
	"sort"

	"repro/internal/stats"
)

// Options tune how heavy an experiment run is.
type Options struct {
	// Scale multiplies replication counts and caps sweep sizes; 1 is the
	// full EXPERIMENTS.md configuration, smaller values run faster.
	// 0 defaults to 1.
	Scale float64
	// BaseSeed offsets all random seeds (default 0 means seed family 1).
	BaseSeed uint64
	// Workers bounds replication parallelism (0 = GOMAXPROCS).
	Workers int
}

func (o Options) scale() float64 {
	if o.Scale <= 0 {
		return 1
	}
	return o.Scale
}

// reps scales a replication count, with a floor of 3.
func (o Options) reps(full int) int {
	r := int(float64(full) * o.scale())
	if r < 3 {
		r = 3
	}
	return r
}

func (o Options) seed(offset uint64) uint64 {
	base := o.BaseSeed
	if base == 0 {
		base = 1
	}
	return base*1_000_003 + offset
}

// Experiment is one reproducible claim.
type Experiment struct {
	// ID is the experiment identifier (E1…E13).
	ID string
	// Title is a short human-readable name.
	Title string
	// Claim quotes the paper statement being reproduced.
	Claim string
	// Run executes the experiment and renders its table.
	Run func(o Options) (*stats.Table, error)
}

// All returns the experiments in index order.
func All() []Experiment {
	return []Experiment{
		e1(), e2(), e3(), e4(), e5(), e6(), e7(),
		e8(), e9(), e10(), e11(), e12(), e13(),
	}
}

// Everything returns the paper experiments E1…E13, the ablations A1…A5,
// and the open-problem extensions X1…X8, in that order.
func Everything() []Experiment {
	return append(AllWithAblations(), Extensions()...)
}

// ByID returns the experiment, ablation, or extension with the given ID
// (case-sensitive), or an error listing the valid IDs.
func ByID(id string) (Experiment, error) {
	var ids []string
	for _, e := range Everything() {
		if e.ID == id {
			return e, nil
		}
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("expt: unknown experiment %q (valid: %v)", id, ids)
}
