package expt

import (
	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Ablations returns the design-choice ablation studies A1…A5 called out in
// DESIGN.md §6. They are separate from the paper-claim registry E1…E13:
// each removes or distorts one mechanism of DISTILL and measures the
// damage, justifying the design.
func Ablations() []Experiment {
	return []Experiment{a1(), a2(), a3(), a4(), a5()}
}

// AllWithAblations returns E1…E13 followed by the ablations.
func AllWithAblations() []Experiment {
	return append(All(), Ablations()...)
}

// a1: remove the advice half of PROBE&SEEKADVICE.
func a1() Experiment {
	return Experiment{
		ID:    "A1",
		Title: "Ablation: PROBE&SEEKADVICE without the advice half",
		Claim: "Lemma 6's termination argument needs every second probe to follow a random player's vote; pure exploration must be slower once the candidate work is done.",
		Run: func(o Options) (*stats.Table, error) {
			const n = 1024
			reps := o.reps(15)
			tab := stats.NewTable("A1 DISTILL with vs without advice probes (n=m=1024, spam adversary)",
				"alpha", "with advice", "explore only", "slowdown")
			for i, alpha := range []float64{0.9, 0.5, 0.25} {
				seed := o.seed(uint64(2100 + i))
				point := func(disable bool) (sim.Aggregate, error) {
					return run(runConfig{
						n: n, m: n, good: 1, alpha: alpha, reps: reps,
						seed: seed, workers: o.Workers,
						protocol: func() sim.Protocol {
							return core.NewDistill(core.Params{DisableAdvice: disable})
						},
						adversary: func() sim.Adversary { return adversary.SpamDistinct{} },
					})
				}
				with, err := point(false)
				if err != nil {
					return nil, err
				}
				without, err := point(true)
				if err != nil {
					return nil, err
				}
				tab.AddRow(alpha, with.MeanIndividualProbes, without.MeanIndividualProbes,
					without.MeanIndividualProbes/with.MeanIndividualProbes)
			}
			return tab, nil
		},
	}
}

// a2: lift the one-vote cap.
func a2() Experiment {
	return Experiment{
		ID:    "A2",
		Title: "Ablation: the one-vote rule",
		Claim: "Each player having a single vote bounds Byzantine influence to (1-α)n votes total (Equation 1); lifting the cap lets a flooding adversary keep bad candidates alive indefinitely.",
		Run: func(o Options) (*stats.Table, error) {
			// The one-vote rule is what keeps the recommended pool S small
			// when m >> n: spam can add at most (1-α)n bad objects to S.
			// Lift the cap and a flooding adversary dilutes S toward the
			// whole object space, destroying the concentration that makes
			// Step 1.3 probes productive.
			const n, m, good = 256, 4096, 4
			const alpha = 0.5
			reps := o.reps(10)
			tab := stats.NewTable("A2 DISTILL vs flood-liar with growing vote caps (n=256, m=4096, α=0.5)",
				"votes/player f", "mean |S|", "mean |C0|", "mean probes", "mean rounds")
			for i, f := range []int{1, 4, 64, 1024} {
				var sSizes, c0Sizes, probes, rounds []float64
				for r := 0; r < reps; r++ {
					seed := o.seed(uint64(2200+i*100) + uint64(r))
					d := core.NewDistill(core.Params{})
					u, err := planted(m, good, seed)
					if err != nil {
						return nil, err
					}
					engine, err := sim.NewEngine(sim.Config{
						Universe: u, Protocol: d, Adversary: adversary.FloodLiar{},
						N: n, Alpha: alpha, Seed: seed,
						VotesPerPlayer: f, MaxRounds: 20000,
					})
					if err != nil {
						return nil, err
					}
					res, err := engine.Run()
					if err != nil {
						return nil, err
					}
					s, c0, _ := d.PoolSizes()
					for _, v := range s {
						sSizes = append(sSizes, float64(v))
					}
					for _, v := range c0 {
						c0Sizes = append(c0Sizes, float64(v))
					}
					probes = append(probes, res.MeanHonestProbes())
					rounds = append(rounds, float64(res.Rounds))
				}
				c0Cell := any("never reached")
				if len(c0Sizes) > 0 {
					c0Cell = stats.Mean(c0Sizes)
				}
				tab.AddRow(f, stats.Mean(sSizes), c0Cell,
					stats.Mean(probes), stats.Mean(rounds))
			}
			return tab, nil
		},
	}
}

// a3: scale the survival thresholds.
func a3() Experiment {
	return Experiment{
		ID:    "A3",
		Title: "Ablation: survival-threshold scale",
		Claim: "The k2/4 and n/(4c_t) thresholds balance Lemma 8/10 (don't drop the good object: threshold ≤ half its expected votes) against Lemma 7 (don't admit cheap bad candidates).",
		Run: func(o Options) (*stats.Table, error) {
			const n = 1024
			const alpha = 0.25
			reps := o.reps(12)
			// End-to-end cost is largely threshold-insensitive at m = n
			// (Lemma 6's advice spread dominates termination); what the
			// threshold governs is candidate-set *quality*: too strict and
			// the good object misses C₀ (attempts restart, Lemma 8); too
			// lax and bad candidates linger (iterations grow, Lemma 7).
			tab := stats.NewTable("A3 DISTILL threshold scaling (n=m=1024, α=0.25, k1=0.5, k2=4, threshold-ride)",
				"scale", "mean probes", "mean rounds", "mean attempts", "mean iters/attempt")
			for i, scale := range []float64{0.125, 0.5, 1, 4, 16} {
				var probes, rounds, attempts, iters []float64
				for r := 0; r < reps; r++ {
					seed := o.seed(uint64(2300+i*100) + uint64(r))
					// Short prepare/refine (as in E13) so the candidate
					// machinery engages before advice finishes the search.
					d := core.NewDistill(core.Params{K1: 0.5, K2: 4, ThresholdScale: scale})
					u, err := planted(n, 1, seed)
					if err != nil {
						return nil, err
					}
					engine, err := sim.NewEngine(sim.Config{
						Universe: u, Protocol: d,
						Adversary: adversary.NewThresholdRide(),
						N:         n, Alpha: alpha, Seed: seed, MaxRounds: 8192,
					})
					if err != nil {
						return nil, err
					}
					res, err := engine.Run()
					if err != nil {
						return nil, err
					}
					probes = append(probes, res.MeanHonestProbes())
					rounds = append(rounds, float64(res.Rounds))
					attempts = append(attempts, float64(d.Attempts()))
					for _, c := range d.IterationCounts() {
						iters = append(iters, float64(c))
					}
				}
				tab.AddRow(scale, stats.Mean(probes), stats.Mean(rounds),
					stats.Mean(attempts), stats.Mean(iters))
			}
			return tab, nil
		},
	}
}

// a4: per-window vote counts vs cumulative totals.
func a4() Experiment {
	return Experiment{
		ID:    "A4",
		Title: "Ablation: per-iteration ℓ_t windows vs cumulative vote counts",
		Claim: "Counting votes per iteration charges each Byzantine vote against the budget exactly once (Equation 1); cumulative counting lets old votes keep bad candidates alive in every iteration.",
		Run: func(o Options) (*stats.Table, error) {
			// Short prepare/refine (as in E13) so the distillation loop is
			// what finishes the search; the threshold-ride adversary's
			// window votes are charged once under ℓ_t counting but keep
			// counting forever under cumulative totals.
			const n, m, good = 1024, 1024, 1
			const alpha = 0.25
			reps := o.reps(12)
			tab := stats.NewTable("A4 window vs cumulative candidate filtering (n=m=1024, α=0.25, k1=0.5, k2=4, threshold-ride)",
				"mode", "mean c_t", "mean iters/attempt", "mean probes", "mean rounds")
			for _, cumulative := range []bool{false, true} {
				var cts, iters, probes, rounds []float64
				for r := 0; r < reps; r++ {
					seed := o.seed(uint64(2400) + uint64(r))
					d := core.NewDistill(core.Params{K1: 0.5, K2: 4, CumulativeCounts: cumulative})
					u, err := planted(m, good, seed)
					if err != nil {
						return nil, err
					}
					engine, err := sim.NewEngine(sim.Config{
						Universe: u, Protocol: d,
						Adversary: adversary.NewThresholdRide(),
						N:         n, Alpha: alpha, Seed: seed, MaxRounds: 20000,
					})
					if err != nil {
						return nil, err
					}
					res, err := engine.Run()
					if err != nil {
						return nil, err
					}
					_, _, ct := d.PoolSizes()
					for _, v := range ct {
						cts = append(cts, float64(v))
					}
					for _, v := range d.IterationCounts() {
						iters = append(iters, float64(v))
					}
					probes = append(probes, res.MeanHonestProbes())
					rounds = append(rounds, float64(res.Rounds))
				}
				mode := "window (paper)"
				if cumulative {
					mode = "cumulative"
				}
				tab.AddRow(mode, stats.Mean(cts), stats.Mean(iters),
					stats.Mean(probes), stats.Mean(rounds))
			}
			return tab, nil
		},
	}
}
