package expt

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 13 {
		t.Fatalf("registry has %d experiments, want 13", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Fatalf("experiment %q incompletely defined", e.ID)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
	}
	for i := 1; i <= 13; i++ {
		id := "E" + itoa(i)
		if !seen[id] {
			t.Fatalf("missing experiment %s", id)
		}
	}
}

func itoa(i int) string {
	if i >= 10 {
		return string(rune('0'+i/10)) + string(rune('0'+i%10))
	}
	return string(rune('0' + i))
}

func TestByID(t *testing.T) {
	for _, id := range []string{"E3", "A2", "X1"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		if e.ID != id {
			t.Fatalf("got %q, want %q", e.ID, id)
		}
	}
	if _, err := ByID("E99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestAblationAndExtensionRegistries(t *testing.T) {
	if got := len(Ablations()); got != 5 {
		t.Fatalf("ablations = %d, want 5", got)
	}
	if got := len(Extensions()); got != 8 {
		t.Fatalf("extensions = %d, want 8", got)
	}
	if got := len(Everything()); got != 26 {
		t.Fatalf("everything = %d, want 26", got)
	}
	seen := map[string]bool{}
	for _, e := range Everything() {
		if e.ID == "" || e.Run == nil || seen[e.ID] {
			t.Fatalf("bad or duplicate experiment %q", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestOptionsScaling(t *testing.T) {
	if (Options{}).reps(20) != 20 {
		t.Fatal("default scale should keep reps")
	}
	if (Options{Scale: 0.1}).reps(20) != 3 {
		t.Fatal("reps floor of 3 violated")
	}
	if (Options{Scale: 0.5}).reps(20) != 10 {
		t.Fatal("half scale should halve reps")
	}
	a := Options{}.seed(5)
	b := Options{BaseSeed: 2}.seed(5)
	if a == b {
		t.Fatal("base seed has no effect")
	}
}

// TestEveryExperimentRunsAtTinyScale is the integration smoke test for the
// whole harness: every experiment, ablation, and extension must produce a
// non-empty table without errors at the smallest scale.
func TestEveryExperimentRunsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	for _, e := range Everything() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tab, err := e.Run(Options{Scale: 0.15, Workers: 2})
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if tab.NumRows() == 0 {
				t.Fatalf("%s produced an empty table", e.ID)
			}
			out := tab.String()
			if !strings.Contains(out, "##") {
				t.Fatalf("%s table has no title:\n%s", e.ID, out)
			}
			t.Logf("\n%s", out)
		})
	}
}
