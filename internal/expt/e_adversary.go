package expt

import (
	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

// e6: Theorem 4 robustness — DISTILL against the full adversary suite.
func e6() Experiment {
	return Experiment{
		ID:    "E6",
		Title: "Adversary suite: DISTILL vs every Byzantine strategy",
		Claim: "Thm 4 holds for any adaptive Byzantine adversary: the worst suite member must stay within the O(1/(αβn) + (1/α)·log n/Δ) shape.",
		Run: func(o Options) (*stats.Table, error) {
			const n = 1024
			alphas := []float64{0.75, 0.5, 0.25}
			reps := o.reps(12)
			tab := stats.NewTable("E6 DISTILL mean probes by adversary (n=m=1024, β=1/n)",
				append([]string{"alpha"}, append(adversary.Names(), "worst", "thm4 shape")...)...)
			for i, alpha := range alphas {
				row := make([]any, 0, len(adversary.Names())+3)
				row = append(row, alpha)
				worst := 0.0
				for j, name := range adversary.Names() {
					name := name
					agg, err := run(runConfig{
						n: n, m: n, good: 1, alpha: alpha, reps: reps,
						seed: o.seed(uint64(600 + i*100 + j)), workers: o.Workers,
						protocol:  func() sim.Protocol { return core.NewDistill(core.Params{}) },
						adversary: func() sim.Adversary { return adversary.ByName(name) },
					})
					if err != nil {
						return nil, err
					}
					row = append(row, agg.MeanIndividualProbes)
					if agg.MeanIndividualProbes > worst {
						worst = agg.MeanIndividualProbes
					}
				}
				row = append(row, worst, theorem4Prediction(alpha, 1.0/n, n))
				tab.AddRow(row...)
			}
			return tab, nil
		},
	}
}

// e13: Lemma 7 — the number of while-loop iterations is O(log n / Δ).
func e13() Experiment {
	return Experiment{
		ID:    "E13",
		Title: "Lemma 7: distillation iterations per attempt",
		Claim: "Lemma 7: each invocation of ATTEMPT contains O(log n / Δ) expected iterations of the while loop.",
		Run: func(o Options) (*stats.Table, error) {
			type point struct {
				n     int
				alpha float64
			}
			points := []point{
				{256, 0.75}, {1024, 0.75}, {4096, 0.75},
				{256, 0.25}, {1024, 0.25}, {4096, 0.25},
				{1024, 0.0625}, {4096, 0.0625},
			}
			reps := o.reps(10)
			tab := stats.NewTable("E13 while-loop iterations per attempt (threshold-ride adversary)",
				"n", "alpha", "mean iters", "max iters", "logn/delta")
			for i, pt := range points {
				var iters []float64
				for r := 0; r < reps; r++ {
					seed := o.seed(uint64(1300+i*100) + uint64(r))
					d := core.NewDistill(core.Params{K1: 0.5, K2: 4})
					u, err := planted(pt.n, 1, seed)
					if err != nil {
						return nil, err
					}
					engine, err := sim.NewEngine(sim.Config{
						Universe: u, Protocol: d,
						Adversary: adversary.NewThresholdRide(),
						N:         pt.n, Alpha: pt.alpha, Seed: seed, MaxRounds: 1 << 16,
					})
					if err != nil {
						return nil, err
					}
					if _, err := engine.Run(); err != nil {
						return nil, err
					}
					// IterationCounts includes the in-progress attempt.
					for _, c := range d.IterationCounts() {
						iters = append(iters, float64(c))
					}
				}
				tab.AddRow(pt.n, pt.alpha, stats.Mean(iters), stats.Max(iters),
					logN(pt.n)/delta(pt.alpha, pt.n))
			}
			return tab, nil
		},
	}
}
