package expt

import (
	"context"

	"repro/internal/scenario"
	"repro/internal/stats"
)

// x7: the declarative scenario engine over open-world populations — the
// builtin workloads that used to be hard-coded experiment loops, now specs.
// Churn is not free: players arriving late search a board already rich in
// votes (cheap), players departing early waste their spent votes.
func x7() Experiment {
	return Experiment{
		ID:    "X7",
		Title: "Open-world scenarios: arrival/departure processes as declarative specs",
		Claim: "Beyond the paper: under Poisson and flash-crowd arrival processes the per-player probe cost stays near the closed-world cost — late arrivals read a vote-rich board — while departures strand their votes; the whole workload replays bit-for-bit from (scenario, seed).",
		Run: func(o Options) (*stats.Table, error) {
			reps := o.reps(8)
			tab := stats.NewTable("X7 builtin open-world scenarios (engine backend)",
				"scenario", "mean rounds", "found", "departed", "timed out", "mean probes")
			for i, name := range []string{"open-world", "flash-crowd"} {
				sc, err := scenario.Builtin(name)
				if err != nil {
					return nil, err
				}
				var rounds, found, departed, timedOut, probes []float64
				for r := 0; r < reps; r++ {
					res, err := scenario.Run(context.Background(), sc,
						scenario.Options{Seed: o.seed(uint64(3700+i*100) + uint64(r))})
					if err != nil {
						return nil, err
					}
					rounds = append(rounds, float64(res.Rounds))
					found = append(found, float64(res.Found))
					departed = append(departed, float64(res.Departed))
					timedOut = append(timedOut, float64(res.TimedOut))
					probes = append(probes, res.MeanProbes)
				}
				tab.AddRow(name, stats.Mean(rounds), stats.Mean(found),
					stats.Mean(departed), stats.Mean(timedOut), stats.Mean(probes))
			}
			return tab, nil
		},
	}
}

// x8: popularity drift as a scenario — the X6 churn fragility measured
// through the declarative layer, with the good set re-planted at
// Zipf-popular ids on the popularity stream instead of a hand-rolled loop.
func x8() Experiment {
	return Experiment{
		ID:    "X8",
		Title: "Popularity drift scenarios: Zipf re-planting against spent votes",
		Claim: "Beyond the paper: periodically re-planting the good set at Zipf-popular objects (interest drift) raises the mean probe cost over the same scenario with drift disabled — stale votes keep pointing at de-planted objects, the X6 fragility under a continuous drift process.",
		Run: func(o Options) (*stats.Table, error) {
			reps := o.reps(8)
			tab := stats.NewTable("X8 drift vs frozen-popularity control (engine backend)",
				"scenario", "drift probes", "frozen probes", "drift/frozen", "drift found", "frozen found")
			for i, name := range []string{"popularity-drift", "two-epoch-churn"} {
				point := func(drift bool) (meanProbes, meanFound float64, err error) {
					var probes, found []float64
					for r := 0; r < reps; r++ {
						sc, err := scenario.Builtin(name)
						if err != nil {
							return 0, 0, err
						}
						if !drift {
							sc.Drift = nil
						}
						res, err := scenario.Run(context.Background(), sc,
							scenario.Options{Seed: o.seed(uint64(3800+i*100) + uint64(r))})
						if err != nil {
							return 0, 0, err
						}
						probes = append(probes, res.MeanProbes)
						found = append(found, float64(res.Found))
					}
					return stats.Mean(probes), stats.Mean(found), nil
				}
				dProbes, dFound, err := point(true)
				if err != nil {
					return nil, err
				}
				fProbes, fFound, err := point(false)
				if err != nil {
					return nil, err
				}
				tab.AddRow(name, dProbes, fProbes, dProbes/fProbes, dFound, fFound)
			}
			return tab, nil
		},
	}
}
