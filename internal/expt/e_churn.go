package expt

import (
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

// x6: churn — the "changing interests" setting of the prior work [1]. The
// workload shape is also available declaratively as the "two-epoch-churn"
// builtin scenario (internal/scenario); X8 measures the same fragility
// through that layer as a continuous drift process. This experiment keeps
// its hand-rolled two-epoch loop because it reuses the stale board across
// engine runs — a cross-run coupling a single scenario cannot express.
// one-vote rule that powers Theorem 4 assumes a static good set: after the
// good object moves, honest players have already spent their votes, so a
// second search over the same billboard cannot distill (stale votes point
// at the old, now-bad object and no fresh votes are admissible). The §4.1
// f-vote extension buys exactly f-1 churn events of headroom.
func x6() Experiment {
	return Experiment{
		ID:    "X6",
		Title: "Churn: a moved good set against spent vote budgets",
		Claim: "Beyond the paper: the one-vote discipline is churn-fragile — epoch 2 on the same billboard costs far more than on a fresh one, and f votes per player (§4.1) buy f−1 churn events of headroom.",
		Run: func(o Options) (*stats.Table, error) {
			const n = 512
			const alpha = 0.75
			reps := o.reps(10)
			tab := stats.NewTable("X6 second-epoch cost after the good object moves (n=m=512, α=0.75)",
				"votes/player f", "epoch-1 probes", "epoch-2 stale board", "epoch-2 fresh board", "stale/fresh")
			for i, f := range []int{1, 2, 4} {
				var e1, e2Stale, e2Fresh []float64
				for r := 0; r < reps; r++ {
					seed := o.seed(uint64(3600+i*100) + uint64(r))
					u, err := planted(n, 1, seed)
					if err != nil {
						return nil, err
					}
					oldGood := u.GoodObjects()[0]

					// Epoch 1: normal search, keep the board.
					eng1, err := sim.NewEngine(sim.Config{
						Universe: u, Protocol: core.NewDistill(core.Params{}),
						N: n, Alpha: alpha, Seed: seed,
						VotesPerPlayer: f, MaxRounds: 1 << 15,
					})
					if err != nil {
						return nil, err
					}
					res1, err := eng1.Run()
					if err != nil {
						return nil, err
					}
					e1 = append(e1, res1.MeanHonestProbes())

					// Interests change: the good object moves.
					newGood := (oldGood + n/2) % n
					if err := u.Churn([]int{newGood}); err != nil {
						return nil, err
					}

					// Epoch 2a: same billboard (stale votes, spent budgets).
					eng2, err := sim.NewEngine(sim.Config{
						Universe: u, Protocol: core.NewDistill(core.Params{}),
						N: n, Alpha: alpha, Seed: seed + 1,
						Honest:    res1.Honest, // same population
						Board:     eng1.Board(),
						MaxRounds: 1 << 15,
					})
					if err != nil {
						return nil, err
					}
					res2, err := eng2.Run()
					if err != nil {
						return nil, err
					}
					e2Stale = append(e2Stale, res2.MeanHonestProbes())

					// Epoch 2b: fresh billboard (the control).
					eng3, err := sim.NewEngine(sim.Config{
						Universe: u, Protocol: core.NewDistill(core.Params{}),
						N: n, Alpha: alpha, Seed: seed + 1,
						Honest:         res1.Honest,
						VotesPerPlayer: f,
						MaxRounds:      1 << 15,
					})
					if err != nil {
						return nil, err
					}
					res3, err := eng3.Run()
					if err != nil {
						return nil, err
					}
					e2Fresh = append(e2Fresh, res3.MeanHonestProbes())
				}
				stale, fresh := stats.Mean(e2Stale), stats.Mean(e2Fresh)
				tab.AddRow(f, stats.Mean(e1), stale, fresh, stale/fresh)
			}
			return tab, nil
		},
	}
}
