package expt

import (
	"repro/internal/adversary"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trust"
)

// x4: §1.3 — popularity-style search hands control to the Byzantine
// minority; DISTILL's one-vote + window discipline does not. The
// popularity-drift side of this theme lives declaratively in the
// "popularity-drift" builtin scenario (internal/scenario), measured by X8.
func x4() Experiment {
	return Experiment{
		ID:    "X4",
		Title: "§1.3: popularity-following vs DISTILL under vote manipulation",
		Claim: "§1.3: \"popularity-style algorithms actually enhance the power of malicious users\" — a probe-the-most-voted-object strategy wastes Θ((1−α)n) probes on the adversary's stuffed ranking, while DISTILL stays on its Theorem 4 shape.",
		Run: func(o Options) (*stats.Table, error) {
			const n = 1024
			reps := o.reps(12)
			tab := stats.NewTable("X4 mean probes: popularity vs DISTILL (n=m=1024, spam adversary)",
				"alpha", "popularity", "distill", "popularity/distill", "dishonest count")
			for i, alpha := range []float64{0.9, 0.75, 0.5} {
				seed := o.seed(uint64(3400 + i))
				pop, err := run(runConfig{
					n: n, m: n, good: 1, alpha: alpha, reps: reps,
					seed: seed, workers: o.Workers, maxRounds: 1 << 15,
					protocol:  func() sim.Protocol { return baseline.NewPopularity() },
					adversary: func() sim.Adversary { return adversary.SpamDistinct{} },
				})
				if err != nil {
					return nil, err
				}
				distill, err := run(runConfig{
					n: n, m: n, good: 1, alpha: alpha, reps: reps,
					seed: seed, workers: o.Workers, maxRounds: 1 << 15,
					protocol:  func() sim.Protocol { return core.NewDistill(core.Params{}) },
					adversary: func() sim.Adversary { return adversary.SpamDistinct{} },
				})
				if err != nil {
					return nil, err
				}
				tab.AddRow(alpha, pop.MeanIndividualProbes, distill.MeanIndividualProbes,
					pop.MeanIndividualProbes/distill.MeanIndividualProbes,
					int(float64(n)*(1-alpha)))
			}
			return tab, nil
		},
	}
}

// x5: §1.3 — the EigenTrust critique: a malicious collective boosts its own
// trust when trust is agreement-popularity without pre-trusted peers.
func x5() Experiment {
	return Experiment{
		ID:    "X5",
		Title: "§1.3: malicious collectives under EigenTrust-style reputation",
		Claim: "§1.3 (quoting Kamvar et al.): without a-priori trusted peers, \"forming a malicious collective in fact heavily boosts the trust values of malicious nodes\" — and can steer the trust-weighted recommendation to a bad object.",
		Run: func(o Options) (*stats.Table, error) {
			const honest, dishonest, m, goodCount = 150, 50, 400, 15
			n := honest + dishonest
			reps := o.reps(10)
			tab := stats.NewTable("X5 trust mass and top recommendation by liar strategy (150 honest, 50 liars)",
				"liar strategy", "dishonest mean trust", "honest mean trust", "ratio", "top pick bad rate")
			type scenario struct {
				name string
				lie  func(src *rng.Source, goodSet map[int]bool, emit func(p int, obj int, v float64))
			}
			scenarios := []scenario{
				{"independent noise", func(src *rng.Source, goodSet map[int]bool, emit func(int, int, float64)) {
					for p := honest; p < n; p++ {
						for k := 0; k < 20; k++ {
							emit(p, src.Intn(m), src.Float64())
						}
					}
				}},
				{"collective (same fakes)", func(src *rng.Source, goodSet map[int]bool, emit func(int, int, float64)) {
					fakes := fakeObjects(goodSet, m, 20)
					for p := honest; p < n; p++ {
						for _, obj := range fakes {
							emit(p, obj, 1)
						}
					}
				}},
				{"parasitic collective", func(src *rng.Source, goodSet map[int]bool, emit func(int, int, float64)) {
					// Echo the truth on a visible slice of the catalog to
					// siphon honest agreement, then push the same fakes.
					fakes := fakeObjects(goodSet, m, 20)
					for p := honest; p < n; p++ {
						for obj := 0; obj < 40; obj++ {
							v := 0.0
							if goodSet[obj] {
								v = 1
							}
							emit(p, obj, v)
						}
						for _, obj := range fakes {
							emit(p, obj, 1)
						}
					}
				}},
			}
			for i, sc := range scenarios {
				var dMeans, hMeans, badPicks []float64
				for r := 0; r < reps; r++ {
					src := rng.New(o.seed(uint64(3500+i*100) + uint64(r)))
					goodSet := map[int]bool{}
					for len(goodSet) < goodCount {
						goodSet[src.Intn(m)] = true
					}
					var reports []trust.Report
					emit := func(p, obj int, v float64) {
						reports = append(reports, trust.Report{Player: p, Object: obj, Value: v})
					}
					// Honest raters sample the catalog truthfully.
					for p := 0; p < honest; p++ {
						for k := 0; k < 20; k++ {
							obj := src.Intn(m)
							v := 0.0
							if goodSet[obj] {
								v = 1
							}
							emit(p, obj, v)
						}
					}
					sc.lie(src, goodSet, emit)

					scores, err := trust.Scores(reports, trust.Config{Players: n})
					if err != nil {
						return nil, err
					}
					d, h := trust.GroupMeans(scores, func(p int) bool { return p >= honest })
					dMeans = append(dMeans, d)
					hMeans = append(hMeans, h)
					if obj, _, ok := trust.Recommend(reports, scores, 0.5); ok && !goodSet[obj] {
						badPicks = append(badPicks, 1)
					} else {
						badPicks = append(badPicks, 0)
					}
				}
				d, h := stats.Mean(dMeans), stats.Mean(hMeans)
				tab.AddRow(sc.name, d, h, d/h, stats.Mean(badPicks))
			}
			return tab, nil
		},
	}
}

// fakeObjects returns count bad objects in increasing index order.
func fakeObjects(goodSet map[int]bool, m, count int) []int {
	out := make([]int, 0, count)
	for obj := 0; obj < m && len(out) < count; obj++ {
		if !goodSet[obj] {
			out = append(out, obj)
		}
	}
	return out
}
