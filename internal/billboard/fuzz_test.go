package billboard

import "testing"

// FuzzBoardInvariants drives a board with an arbitrary post/commit script
// and checks the global accounting invariants after every commit:
//
//   - Σ VoteCount == TotalVotes == Σ per-player votes
//   - NumVotedObjects == #objects with positive count
//   - per-player vote counts never exceed the cap f
//   - vote counts never decrease in FirstPositive mode
func FuzzBoardInvariants(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 0, 5, 6, 0}, uint8(1), false)
	f.Add([]byte{9, 9, 9, 9}, uint8(3), true)
	f.Fuzz(func(t *testing.T, script []byte, fRaw uint8, bestValue bool) {
		const players, objects = 6, 10
		votesPer := int(fRaw%4) + 1
		mode := FirstPositive
		if bestValue {
			mode = BestValue
		}
		b, err := New(Config{
			Players: players, Objects: objects,
			Mode: mode, VotesPerPlayer: votesPer,
		})
		if err != nil {
			t.Fatal(err)
		}
		prevTotal := 0
		for i, op := range script {
			if op == 0 {
				b.EndRound()
				// Invariant checks at every commit point.
				sum, voted := 0, 0
				for obj := 0; obj < objects; obj++ {
					c := b.VoteCount(obj)
					if c < 0 {
						t.Fatalf("negative vote count on %d", obj)
					}
					sum += c
					if c > 0 {
						voted++
					}
				}
				perPlayer := 0
				for p := 0; p < players; p++ {
					votes := b.Votes(p)
					limit := votesPer
					if mode == BestValue {
						limit = 1
					}
					if len(votes) > limit {
						t.Fatalf("player %d holds %d votes, cap %d", p, len(votes), limit)
					}
					perPlayer += len(votes)
				}
				if sum != b.TotalVotes() || sum != perPlayer {
					t.Fatalf("vote accounting split: counts %d total %d perPlayer %d",
						sum, b.TotalVotes(), perPlayer)
				}
				if voted != b.NumVotedObjects() {
					t.Fatalf("voted objects %d != %d", voted, b.NumVotedObjects())
				}
				if mode == FirstPositive && sum < prevTotal {
					t.Fatalf("votes disappeared: %d -> %d", prevTotal, sum)
				}
				prevTotal = sum
				continue
			}
			post := Post{
				Player:   int(op) % players,
				Object:   int(op>>2) % objects,
				Value:    float64(op%7) / 7,
				Positive: op%2 == 1,
			}
			if err := b.Post(post); err != nil {
				t.Fatalf("in-range post rejected: %v", err)
			}
			_ = i
		}
	})
}

// FuzzWindowCounts checks that window queries partition correctly: counts
// over [0, r) equal the sum of counts over [0, k) and [k, r) for any split.
func FuzzWindowCounts(f *testing.F) {
	f.Add([]byte{1, 0, 2, 0, 3, 0}, uint8(1))
	f.Fuzz(func(t *testing.T, script []byte, splitRaw uint8) {
		b, err := New(Config{Players: 8, Objects: 8})
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range script {
			if op == 0 {
				b.EndRound()
				continue
			}
			_ = b.Post(Post{
				Player:   int(op) % 8,
				Object:   int(op>>3) % 8,
				Value:    1,
				Positive: true,
			})
		}
		b.EndRound()
		r := b.Round()
		split := int(splitRaw) % (r + 1)
		full := b.CountVotesInWindow(0, r)
		left := b.CountVotesInWindow(0, split)
		right := b.CountVotesInWindow(split, r)
		for obj, want := range full {
			if left[obj]+right[obj] != want {
				t.Fatalf("window split broken at %d for object %d: %d + %d != %d",
					split, obj, left[obj], right[obj], want)
			}
		}
		for obj, c := range left {
			if c > full[obj] {
				t.Fatalf("left window exceeds full for object %d", obj)
			}
		}
	})
}
