// Package billboard implements the shared public billboard of the paper's
// model (§2.1): an append-only log of probe reports, each reliably tagged
// with the posting player's identity and a timestamp (the round number).
//
// The billboard also implements the vote discipline DISTILL relies on
// (§4): each player's *votes* are derived from its positive reports under
// one of two rules —
//
//   - FirstPositive (local testing): a player's votes are its first f
//     positive reports on distinct objects; all later positive reports are
//     ignored. The paper uses f = 1; §4.1 generalizes to f votes.
//   - BestValue (no local testing, §5.3): a player's single vote is the
//     highest-value object it has reported so far, and may change as the
//     execution progresses.
//
// Synchrony: posts made during a round are buffered and only become visible
// after EndRound, so all players observing the board within one round see
// the same state, matching the synchronous model of §2.1. Adaptive
// adversaries may inspect the uncommitted buffer via Pending.
package billboard

import (
	"fmt"

	"repro/internal/obs"
)

// Reader is the read-only view of a billboard that honest protocols
// consume. *Board implements it locally; the network client in
// internal/client implements it against a remote billboard server, so the
// same protocol code runs in-process and distributed.
type Reader interface {
	// Round returns the current round number.
	Round() int
	// Votes returns player p's current committed votes.
	Votes(player int) []Vote
	// HasVote reports whether player p has at least one committed vote.
	HasVote(player int) bool
	// VoteCount returns the number of current committed votes on object i.
	VoteCount(object int) int
	// NegativeCount returns the number of committed negative reports on
	// object i.
	NegativeCount(object int) int
	// VotedObjects returns the distinct objects holding votes, ascending.
	VotedObjects() []int
	// NumVotedObjects returns the number of distinct objects with votes.
	NumVotedObjects() int
	// CountVotesInWindow counts vote events per object with round in
	// [fromRound, toRound).
	CountVotesInWindow(fromRound, toRound int) map[int]int
}

// VoteMode selects how votes are derived from posts.
type VoteMode int

const (
	// FirstPositive derives votes from the first f positive reports of each
	// player (the §4 local-testing rule).
	FirstPositive VoteMode = iota + 1
	// BestValue derives each player's single vote as its highest-value
	// report so far (the §5.3 no-local-testing rule).
	BestValue
)

// String returns the mode name.
func (m VoteMode) String() string {
	switch m {
	case FirstPositive:
		return "first-positive"
	case BestValue:
		return "best-value"
	default:
		return fmt.Sprintf("VoteMode(%d)", int(m))
	}
}

// Post is one report on the billboard: player reports the value it observed
// probing an object. Positive marks the report as a recommendation ("this
// object is good"); it is meaningful only in FirstPositive mode. Round is
// assigned by the board at commit time.
type Post struct {
	Player   int
	Object   int
	Value    float64
	Positive bool
	Round    int
}

// Vote is a player's current recommendation of an object.
type Vote struct {
	Player int
	Object int
	Round  int // round the vote was (last) cast
	Value  float64
}

// VoteEvent records that a player's vote landed on an object at a given
// round. In FirstPositive mode each vote produces exactly one event (votes
// never move); in BestValue mode a player produces an event whenever its
// vote improves or is re-affirmed by probing its current best object again.
// Events are what the per-iteration vote counts ℓ_t(i) of Figure 1 count.
type VoteEvent struct {
	Player int
	Object int
	Round  int
}

// Config parameterizes a Board.
type Config struct {
	Players int // number of players n (required, > 0)
	Objects int // number of objects m (required, > 0)
	// Mode selects the vote rule; defaults to FirstPositive.
	Mode VoteMode
	// VotesPerPlayer is the cap f on positive votes per player in
	// FirstPositive mode; defaults to 1 (the paper's base rule). Ignored in
	// BestValue mode (always exactly one, movable).
	VotesPerPlayer int
	// KeepLog retains every post verbatim (including negative reports).
	// Costs memory proportional to the total number of probes; only the
	// vote structures are needed by the algorithms, so this defaults off.
	KeepLog bool
	// VoteFilter, when non-nil, vetoes vote derivation: a positive report
	// by player p on object o only becomes a vote if VoteFilter(p, o) is
	// true. Models honest-side vote-admission rules such as the §6
	// object-ownership extension ("ignore votes for objects the voter
	// owns"); the report itself is still posted.
	VoteFilter func(player, object int) bool
}

// Board is the shared billboard. It is not safe for concurrent use; the
// engine serializes access within a round.
type Board struct {
	cfg   Config
	round int

	pending []Post

	log []Post // full post log if cfg.KeepLog

	// votesByPlayer[p] holds player p's committed votes (<= f entries in
	// FirstPositive mode; <= 1 entry in BestValue mode).
	votesByPlayer [][]Vote
	// voteCount[i] is the number of current committed votes on object i.
	voteCount []int
	// negCount[i] is the number of committed negative reports on object i
	// (FirstPositive mode only; the base algorithm ignores it, the §6
	// negative-recommendation extension consumes it).
	negCount []int
	// votedObjects is the number of objects with voteCount > 0.
	votedObjects int

	// events is the append-ordered vote event log; rounds are
	// non-decreasing, so window queries slice it via eventIndex.
	events []VoteEvent
	// eventIndex[r] is the number of events committed in rounds < r, for
	// r in [0, round]. Maintained at EndRound, so a window query is two
	// O(1) lookups instead of a binary search; derived state, excluded
	// from Snapshot and Digest.
	eventIndex []int
	// pendingScratch backs Pending's returned copy, reused across calls.
	pendingScratch []Post

	// indexRebuilds counts full eventIndex reconstructions (Restore); kept
	// unconditionally so SetMetrics can backfill a counter attached after a
	// recovery.
	indexRebuilds int64

	// Metric handles (nil — single-branch no-ops — until SetMetrics).
	mPosts         *obs.Counter
	mWindowQueries *obs.Counter
	mIndexRebuilds *obs.Counter
}

// SetMetrics registers the board's metrics in reg (nil is a no-op) and
// starts recording: billboard_posts_total (accepted posts, committed or
// still pending), billboard_window_queries_total (CountVotesInWindow and
// the allocation-free Into variant), and billboard_index_rebuilds_total
// (full event-offset-index reconstructions, i.e. snapshot/journal
// recoveries — already-performed rebuilds are backfilled). Recording is
// one nil check plus one atomic add per event, so the hot paths stay
// within the committed benchmark budget.
func (b *Board) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	b.mPosts = reg.Counter("billboard_posts_total", "reports accepted by the billboard")
	b.mWindowQueries = reg.Counter("billboard_window_queries_total", "vote-window queries served")
	b.mIndexRebuilds = reg.Counter("billboard_index_rebuilds_total", "full event-index reconstructions (recoveries)")
	b.mIndexRebuilds.Add(b.indexRebuilds)
}

// New validates cfg and returns an empty board at round 0.
func New(cfg Config) (*Board, error) {
	if cfg.Players <= 0 {
		return nil, fmt.Errorf("billboard: Players must be > 0, got %d", cfg.Players)
	}
	if cfg.Objects <= 0 {
		return nil, fmt.Errorf("billboard: Objects must be > 0, got %d", cfg.Objects)
	}
	if cfg.Mode == 0 {
		cfg.Mode = FirstPositive
	}
	if cfg.Mode != FirstPositive && cfg.Mode != BestValue {
		return nil, fmt.Errorf("billboard: unknown vote mode %d", cfg.Mode)
	}
	if cfg.VotesPerPlayer == 0 {
		cfg.VotesPerPlayer = 1
	}
	if cfg.VotesPerPlayer < 0 {
		return nil, fmt.Errorf("billboard: VotesPerPlayer must be >= 0, got %d", cfg.VotesPerPlayer)
	}
	return &Board{
		cfg:           cfg,
		votesByPlayer: make([][]Vote, cfg.Players),
		voteCount:     make([]int, cfg.Objects),
		negCount:      make([]int, cfg.Objects),
		eventIndex:    []int{0},
	}, nil
}

// Round returns the current round number (the number of EndRound calls).
func (b *Board) Round() int { return b.round }

// Mode returns the vote rule in effect.
func (b *Board) Mode() VoteMode { return b.cfg.Mode }

// Post buffers a report; it becomes visible after EndRound. Posts with an
// out-of-range player or object are rejected with an error (the billboard
// reliably tags identity, so a Byzantine player cannot spoof another id —
// the engine passes the authenticated player id).
func (b *Board) Post(p Post) error {
	if p.Player < 0 || p.Player >= b.cfg.Players {
		return fmt.Errorf("billboard: player %d out of range [0, %d)", p.Player, b.cfg.Players)
	}
	if p.Object < 0 || p.Object >= b.cfg.Objects {
		return fmt.Errorf("billboard: object %d out of range [0, %d)", p.Object, b.cfg.Objects)
	}
	p.Round = b.round
	b.pending = append(b.pending, p)
	b.mPosts.Inc()
	return nil
}

// Pending returns the posts buffered in the current round, in posting
// order. This is the adaptive adversary's view of in-flight honest actions;
// honest protocol code must not use it. The returned slice is backed by a
// scratch buffer owned by the board (adversaries call this every round):
// it is valid until the next Pending call and must not be mutated. Callers
// that need to retain it across calls must copy.
func (b *Board) Pending() []Post {
	b.pendingScratch = append(b.pendingScratch[:0], b.pending...)
	return b.pendingScratch
}

// PendingView returns the pending posts without any copy. The slice aliases
// the board's buffer: it is invalidated by the next Post or EndRound and
// must not be mutated. The copy-free variant for per-round hot loops.
func (b *Board) PendingView() []Post { return b.pending }

// EndRound commits the round's buffered posts in posting order and
// advances the round counter.
func (b *Board) EndRound() {
	for _, p := range b.pending {
		b.commit(p)
	}
	b.pending = b.pending[:0]
	b.round++
	b.eventIndex = append(b.eventIndex, len(b.events))
}

func (b *Board) commit(p Post) {
	if b.cfg.KeepLog {
		b.log = append(b.log, p)
	}
	switch b.cfg.Mode {
	case FirstPositive:
		if !p.Positive {
			b.negCount[p.Object]++
			return
		}
		if b.cfg.VoteFilter != nil && !b.cfg.VoteFilter(p.Player, p.Object) {
			return // vetoed by the vote-admission rule; report only
		}
		votes := b.votesByPlayer[p.Player]
		if len(votes) >= b.cfg.VotesPerPlayer {
			return // vote budget exhausted; report ignored
		}
		for _, v := range votes {
			if v.Object == p.Object {
				return // duplicate vote for the same object; ignored
			}
		}
		v := Vote{Player: p.Player, Object: p.Object, Round: p.Round, Value: p.Value}
		b.votesByPlayer[p.Player] = append(votes, v)
		b.bumpObject(p.Object)
		b.events = append(b.events, VoteEvent{Player: p.Player, Object: p.Object, Round: p.Round})
	case BestValue:
		votes := b.votesByPlayer[p.Player]
		switch {
		case len(votes) == 0:
			v := Vote{Player: p.Player, Object: p.Object, Round: p.Round, Value: p.Value}
			b.votesByPlayer[p.Player] = []Vote{v}
			b.bumpObject(p.Object)
			b.events = append(b.events, VoteEvent{Player: p.Player, Object: p.Object, Round: p.Round})
		case p.Value > votes[0].Value:
			// Vote moves to the strictly better object.
			old := votes[0].Object
			if old != p.Object {
				b.dropObject(old)
				b.bumpObject(p.Object)
			}
			votes[0] = Vote{Player: p.Player, Object: p.Object, Round: p.Round, Value: p.Value}
			b.events = append(b.events, VoteEvent{Player: p.Player, Object: p.Object, Round: p.Round})
		case p.Object == votes[0].Object:
			// Re-affirmation: the player probed its current best again.
			// State is unchanged but the event counts toward this window's
			// ℓ_t so that sustained support is visible per iteration.
			votes[0].Round = p.Round
			b.events = append(b.events, VoteEvent{Player: p.Player, Object: p.Object, Round: p.Round})
		}
	}
}

func (b *Board) bumpObject(obj int) {
	if b.voteCount[obj] == 0 {
		b.votedObjects++
	}
	b.voteCount[obj]++
}

func (b *Board) dropObject(obj int) {
	b.voteCount[obj]--
	if b.voteCount[obj] == 0 {
		b.votedObjects--
	}
}

// Votes returns player p's current committed votes. The returned slice is
// a copy.
func (b *Board) Votes(player int) []Vote {
	votes := b.votesByPlayer[player]
	if len(votes) == 0 {
		return nil
	}
	out := make([]Vote, len(votes))
	copy(out, votes)
	return out
}

// VotesView returns player p's committed votes without copying. The slice
// aliases board state: it is valid until the next EndRound and must not be
// mutated. The copy-free variant for per-probe hot loops (advice probes
// call it once per player per round).
func (b *Board) VotesView(player int) []Vote { return b.votesByPlayer[player] }

// HasVote reports whether player p has at least one committed vote.
func (b *Board) HasVote(player int) bool {
	return len(b.votesByPlayer[player]) > 0
}

// VoteCount returns the number of current committed votes on object i.
func (b *Board) VoteCount(object int) int { return b.voteCount[object] }

// NegativeCount returns the number of committed negative reports on object
// i (FirstPositive mode).
func (b *Board) NegativeCount(object int) int { return b.negCount[object] }

// VotedObjects returns the distinct objects with at least one committed
// vote, in increasing object order. This is the set S of Step 1.2.
func (b *Board) VotedObjects() []int {
	out := make([]int, 0, b.votedObjects)
	for i, c := range b.voteCount {
		if c > 0 {
			out = append(out, i)
		}
	}
	return out
}

// NumVotedObjects returns the number of distinct objects holding votes.
func (b *Board) NumVotedObjects() int { return b.votedObjects }

// TotalVotes returns the total number of committed current votes.
func (b *Board) TotalVotes() int {
	total := 0
	for _, votes := range b.votesByPlayer {
		total += len(votes)
	}
	return total
}

// eventOffset returns the number of committed events with round < r, via
// the per-round offset index (O(1); no scan, no binary search).
func (b *Board) eventOffset(r int) int {
	switch {
	case r <= 0:
		return 0
	case r >= len(b.eventIndex):
		// All committed events have round < b.round.
		return len(b.events)
	default:
		return b.eventIndex[r]
	}
}

// CountVotesInWindow returns, for each object, the number of vote events
// with round in [fromRound, toRound). This realizes the shared variable
// ℓ_t(i) of Figure 1: votes an object received during iteration t. The
// returned map is freshly allocated; hot loops should prefer
// CountVotesInWindowInto with a reused WindowCounts buffer.
func (b *Board) CountVotesInWindow(fromRound, toRound int) map[int]int {
	b.mWindowQueries.Inc()
	lo, hi := b.eventOffset(fromRound), b.eventOffset(toRound)
	if hi < lo {
		hi = lo
	}
	counts := make(map[int]int, hi-lo)
	for _, e := range b.events[lo:hi] {
		counts[e.Object]++
	}
	return counts
}

// CountVotesInWindowInto fills wc with the per-object vote-event counts of
// [fromRound, toRound), reusing wc's buffers (zero allocations once warm).
// The allocation-free variant of CountVotesInWindow for the engine hot loop.
func (b *Board) CountVotesInWindowInto(fromRound, toRound int, wc *WindowCounts) {
	b.mWindowQueries.Inc()
	wc.Reset(b.cfg.Objects)
	lo, hi := b.eventOffset(fromRound), b.eventOffset(toRound)
	for i := lo; i < hi; i++ {
		wc.Add(b.events[i].Object, 1)
	}
}

// WindowEvents returns the vote events with round in [fromRound, toRound)
// without copying. The slice aliases the event log: it is stable under
// appends but must not be mutated; copy to retain past further commits.
func (b *Board) WindowEvents(fromRound, toRound int) []VoteEvent {
	lo, hi := b.eventOffset(fromRound), b.eventOffset(toRound)
	if hi < lo {
		hi = lo
	}
	return b.events[lo:hi]
}

// EventsInWindow returns the vote events with round in [fromRound, toRound).
// The returned slice is a copy.
func (b *Board) EventsInWindow(fromRound, toRound int) []VoteEvent {
	view := b.WindowEvents(fromRound, toRound)
	out := make([]VoteEvent, len(view))
	copy(out, view)
	return out
}

// Log returns the full post log if KeepLog was enabled, else nil. The
// returned slice is a copy.
func (b *Board) Log() []Post {
	if !b.cfg.KeepLog {
		return nil
	}
	out := make([]Post, len(b.log))
	copy(out, b.log)
	return out
}

var _ Reader = (*Board)(nil)
