package billboard

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
)

// snapshotState is the serialized form of a Board's committed state.
// Pending (uncommitted) posts are deliberately excluded: per the synchrony
// contract they were never visible, so a snapshot always lands on a round
// boundary.
type snapshotState struct {
	Players        int
	Objects        int
	Mode           VoteMode
	VotesPerPlayer int
	Round          int
	VotesByPlayer  [][]Vote
	NegCount       []int
	Events         []VoteEvent
	Log            []Post
	KeepLog        bool
}

// Snapshot serializes the board's committed state (votes, vote events with
// their round timestamps, negative counts, the optional full log, and the
// round counter). Together with a journal of the rounds that follow, it
// reconstructs the exact board — the compaction story for long-running
// billboard services.
func (b *Board) Snapshot() ([]byte, error) {
	if len(b.pending) != 0 {
		return nil, fmt.Errorf("billboard: snapshot with %d uncommitted posts; call EndRound first", len(b.pending))
	}
	st := snapshotState{
		Players:        b.cfg.Players,
		Objects:        b.cfg.Objects,
		Mode:           b.cfg.Mode,
		VotesPerPlayer: b.cfg.VotesPerPlayer,
		Round:          b.round,
		VotesByPlayer:  b.votesByPlayer,
		NegCount:       b.negCount,
		Events:         b.events,
		Log:            b.log,
		KeepLog:        b.cfg.KeepLog,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
		return nil, fmt.Errorf("billboard: snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// Digest returns a canonical serialization of the committed state: two
// boards holding the same votes, negative counts, and vote events produce
// byte-identical digests regardless of the order in which posts arrived
// within rounds. (Snapshot, by contrast, preserves arrival order, which
// varies with client interleaving in a networked run.) Uncommitted pending
// posts are excluded, as in Snapshot. The chaos tests in internal/dist use
// this to assert a faulty run converged to exactly the fault-free state.
func (b *Board) Digest() []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "round %d mode %d f %d\n", b.round, b.cfg.Mode, b.cfg.VotesPerPlayer)
	for p, votes := range b.votesByPlayer {
		sorted := append([]Vote(nil), votes...)
		sort.Slice(sorted, func(i, j int) bool {
			if sorted[i].Round != sorted[j].Round {
				return sorted[i].Round < sorted[j].Round
			}
			return sorted[i].Object < sorted[j].Object
		})
		for _, v := range sorted {
			fmt.Fprintf(&buf, "vote p%d o%d r%d v%g\n", p, v.Object, v.Round, v.Value)
		}
	}
	for obj, n := range b.negCount {
		if n != 0 {
			fmt.Fprintf(&buf, "neg o%d %d\n", obj, n)
		}
	}
	events := append([]VoteEvent(nil), b.events...)
	sort.Slice(events, func(i, j int) bool {
		a, c := events[i], events[j]
		if a.Round != c.Round {
			return a.Round < c.Round
		}
		if a.Player != c.Player {
			return a.Player < c.Player
		}
		return a.Object < c.Object
	})
	for _, e := range events {
		fmt.Fprintf(&buf, "event p%d o%d r%d\n", e.Player, e.Object, e.Round)
	}
	return buf.Bytes()
}

// MergeDigest returns the canonical digest of the union of several boards
// that partition one object space: every board is configured with the full
// (Players, Objects) dimensions, agrees on mode, vote budget, and round,
// and holds the committed state of a disjoint subset of objects. This is
// how a sharded billboard service digests itself — the output is
// byte-identical to Digest on the single board an unsharded server would
// hold, because Digest's canonical ordering (votes by (round, object) per
// player, negative counts by object, events by (round, player, object))
// never depends on which lane a record lived in. MergeDigest of one board
// is exactly that board's Digest.
func MergeDigest(boards ...*Board) []byte {
	if len(boards) == 0 {
		return nil
	}
	if len(boards) == 1 {
		return boards[0].Digest()
	}
	b0 := boards[0]
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "round %d mode %d f %d\n", b0.round, b0.cfg.Mode, b0.cfg.VotesPerPlayer)
	for p := 0; p < b0.cfg.Players; p++ {
		var sorted []Vote
		for _, b := range boards {
			sorted = append(sorted, b.votesByPlayer[p]...)
		}
		sort.Slice(sorted, func(i, j int) bool {
			if sorted[i].Round != sorted[j].Round {
				return sorted[i].Round < sorted[j].Round
			}
			return sorted[i].Object < sorted[j].Object
		})
		for _, v := range sorted {
			fmt.Fprintf(&buf, "vote p%d o%d r%d v%g\n", p, v.Object, v.Round, v.Value)
		}
	}
	for obj := 0; obj < b0.cfg.Objects; obj++ {
		n := 0
		for _, b := range boards {
			n += b.negCount[obj]
		}
		if n != 0 {
			fmt.Fprintf(&buf, "neg o%d %d\n", obj, n)
		}
	}
	var events []VoteEvent
	for _, b := range boards {
		events = append(events, b.events...)
	}
	sort.Slice(events, func(i, j int) bool {
		a, c := events[i], events[j]
		if a.Round != c.Round {
			return a.Round < c.Round
		}
		if a.Player != c.Player {
			return a.Player < c.Player
		}
		return a.Object < c.Object
	})
	for _, e := range events {
		fmt.Fprintf(&buf, "event p%d o%d r%d\n", e.Player, e.Object, e.Round)
	}
	return buf.Bytes()
}

// Restore rebuilds a board from a Snapshot. The VoteFilter (a function,
// not serializable) must be re-supplied via filter; pass nil when none was
// in use.
func Restore(data []byte, filter func(player, object int) bool) (*Board, error) {
	var st snapshotState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return nil, fmt.Errorf("billboard: restore: %w", err)
	}
	b, err := New(Config{
		Players:        st.Players,
		Objects:        st.Objects,
		Mode:           st.Mode,
		VotesPerPlayer: st.VotesPerPlayer,
		KeepLog:        st.KeepLog,
		VoteFilter:     filter,
	})
	if err != nil {
		return nil, fmt.Errorf("billboard: restore: %w", err)
	}
	b.round = st.Round
	b.votesByPlayer = st.VotesByPlayer
	if b.votesByPlayer == nil {
		b.votesByPlayer = make([][]Vote, st.Players)
	}
	if st.NegCount != nil {
		b.negCount = st.NegCount
	}
	b.events = st.Events
	b.log = st.Log
	// Rebuild the derived per-object counters from the vote state.
	for _, votes := range b.votesByPlayer {
		for _, v := range votes {
			b.bumpObject(v.Object)
		}
	}
	// Rebuild the derived per-round event-offset index (events carry
	// non-decreasing rounds, all < b.round).
	b.eventIndex = make([]int, b.round+1)
	idx := 0
	for r := 1; r <= b.round; r++ {
		for idx < len(b.events) && b.events[idx].Round < r {
			idx++
		}
		b.eventIndex[r] = idx
	}
	b.indexRebuilds++
	return b, nil
}
