package billboard

import (
	"reflect"
	"testing"
)

func populatedBoard(t *testing.T) *Board {
	t.Helper()
	b := mustBoard(t, Config{Players: 4, Objects: 8, VotesPerPlayer: 2, KeepLog: true})
	posts := []Post{
		{Player: 0, Object: 3, Value: 1, Positive: true},
		{Player: 1, Object: 3, Value: 1, Positive: true},
		{Player: 2, Object: 5, Value: 0, Positive: false},
	}
	for _, p := range posts {
		if err := b.Post(p); err != nil {
			t.Fatal(err)
		}
	}
	b.EndRound()
	if err := b.Post(Post{Player: 2, Object: 6, Value: 1, Positive: true}); err != nil {
		t.Fatal(err)
	}
	b.EndRound()
	return b
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	original := populatedBoard(t)
	data, err := original.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Round() != original.Round() {
		t.Fatalf("round %d != %d", restored.Round(), original.Round())
	}
	for p := 0; p < 4; p++ {
		if !reflect.DeepEqual(restored.Votes(p), original.Votes(p)) {
			t.Fatalf("player %d votes differ", p)
		}
	}
	if !reflect.DeepEqual(restored.VotedObjects(), original.VotedObjects()) {
		t.Fatal("voted objects differ")
	}
	if restored.NegativeCount(5) != 1 {
		t.Fatal("negative count lost")
	}
	if !reflect.DeepEqual(restored.CountVotesInWindow(0, 2), original.CountVotesInWindow(0, 2)) {
		t.Fatal("vote-event windows differ")
	}
	if len(restored.Log()) != len(original.Log()) {
		t.Fatal("log lost")
	}
	// The restored board is live: new posts commit with continuing rounds
	// and the vote cap still binds (player 0 has one slot left of f=2).
	if err := restored.Post(Post{Player: 0, Object: 7, Value: 1, Positive: true}); err != nil {
		t.Fatal(err)
	}
	if err := restored.Post(Post{Player: 0, Object: 1, Value: 1, Positive: true}); err != nil {
		t.Fatal(err)
	}
	restored.EndRound()
	if got := len(restored.Votes(0)); got != 2 {
		t.Fatalf("restored vote cap broken: %d votes", got)
	}
	events := restored.EventsInWindow(2, 3)
	if len(events) != 1 || events[0].Round != 2 {
		t.Fatalf("continuing rounds broken: %+v", events)
	}
}

func TestSnapshotRejectsPending(t *testing.T) {
	b := mustBoard(t, Config{Players: 1, Objects: 1})
	if err := b.Post(Post{Player: 0, Object: 0, Value: 1, Positive: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Snapshot(); err == nil {
		t.Fatal("snapshot with pending posts accepted")
	}
}

func TestRestoreGarbage(t *testing.T) {
	if _, err := Restore([]byte("junk"), nil); err == nil {
		t.Fatal("garbage restore accepted")
	}
}

func TestRestoreReappliesVoteFilter(t *testing.T) {
	b := mustBoard(t, Config{Players: 2, Objects: 4})
	b.EndRound()
	data, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(data, func(player, object int) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Post(Post{Player: 0, Object: 1, Value: 1, Positive: true}); err != nil {
		t.Fatal(err)
	}
	restored.EndRound()
	if restored.TotalVotes() != 0 {
		t.Fatal("re-supplied vote filter not applied")
	}
}

func TestSnapshotEmptyBoard(t *testing.T) {
	b := mustBoard(t, Config{Players: 2, Objects: 2})
	data, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Round() != 0 || restored.TotalVotes() != 0 {
		t.Fatal("empty board round trip broken")
	}
}
