package billboard

import "sort"

// WindowCounts is a reusable dense per-object counter for window queries:
// a counts array indexed by object plus the list of touched objects, so
// resetting costs O(objects touched), not O(objects). One buffer serves
// every window query of a run — the allocation-free alternative to the
// map returned by CountVotesInWindow.
type WindowCounts struct {
	counts   []int
	touched  []int
	unsorted bool
}

// Reset prepares the buffer for a universe of the given object count,
// clearing any previous counts. Only previously touched entries are
// zeroed; the backing array is reallocated only when objects grows.
func (wc *WindowCounts) Reset(objects int) {
	if len(wc.counts) < objects {
		wc.counts = make([]int, objects)
		wc.touched = wc.touched[:0]
		wc.unsorted = false
		return
	}
	for _, obj := range wc.touched {
		wc.counts[obj] = 0
	}
	wc.touched = wc.touched[:0]
	wc.unsorted = false
}

// Add adds delta to an object's count. Objects outside the Reset range are
// the caller's bug and will panic like any slice bounds error.
func (wc *WindowCounts) Add(object, delta int) {
	if wc.counts[object] == 0 && delta != 0 {
		wc.touched = append(wc.touched, object)
		wc.unsorted = true
	}
	wc.counts[object] += delta
}

// Count returns an object's count (zero if untouched).
func (wc *WindowCounts) Count(object int) int { return wc.counts[object] }

// Objects returns the objects with nonzero counts in increasing object
// order (sorted lazily, so repeated reads after one fill are O(1)). The
// slice aliases the buffer: valid until the next Reset, do not mutate.
func (wc *WindowCounts) Objects() []int {
	if wc.unsorted {
		sort.Ints(wc.touched)
		wc.unsorted = false
	}
	return wc.touched
}

// Len returns the number of objects with nonzero counts.
func (wc *WindowCounts) Len() int { return len(wc.touched) }

// WindowCounter is implemented by billboard readers that can serve window
// counts into a caller-reusable buffer instead of allocating a map per
// query. *Board implements it; hot loops type-assert and fall back to
// Reader.CountVotesInWindow otherwise.
type WindowCounter interface {
	CountVotesInWindowInto(fromRound, toRound int, wc *WindowCounts)
}

// VotesViewer is implemented by readers that can expose a player's votes
// without copying. The returned slice must be treated as read-only and is
// only valid until the next round commit.
type VotesViewer interface {
	VotesView(player int) []Vote
}

var (
	_ WindowCounter = (*Board)(nil)
	_ VotesViewer   = (*Board)(nil)
)
