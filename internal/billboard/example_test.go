package billboard_test

import (
	"fmt"

	"repro/internal/billboard"
)

// Example shows the synchronous commit discipline: posts become visible
// only at round boundaries, and only the first positive report of a player
// becomes its vote.
func Example() {
	board, err := billboard.New(billboard.Config{Players: 3, Objects: 5})
	if err != nil {
		panic(err)
	}
	// Round 0: players 0 and 1 recommend object 2; player 0 later tries to
	// recommend object 4 too.
	_ = board.Post(billboard.Post{Player: 0, Object: 2, Value: 1, Positive: true})
	_ = board.Post(billboard.Post{Player: 1, Object: 2, Value: 1, Positive: true})
	_ = board.Post(billboard.Post{Player: 0, Object: 4, Value: 1, Positive: true})

	fmt.Println("before commit:", board.VoteCount(2), "votes on object 2")
	board.EndRound()
	fmt.Println("after commit: ", board.VoteCount(2), "votes on object 2")
	fmt.Println("player 0 votes:", len(board.Votes(0)), "(one-vote rule)")
	// Output:
	// before commit: 0 votes on object 2
	// after commit:  2 votes on object 2
	// player 0 votes: 1 (one-vote rule)
}

// ExampleBoard_CountVotesInWindow shows the per-iteration vote counting
// ℓ_t(i) that DISTILL's candidate filtering uses.
func ExampleBoard_CountVotesInWindow() {
	board, err := billboard.New(billboard.Config{Players: 4, Objects: 3})
	if err != nil {
		panic(err)
	}
	_ = board.Post(billboard.Post{Player: 0, Object: 1, Value: 1, Positive: true})
	board.EndRound() // round 0
	_ = board.Post(billboard.Post{Player: 1, Object: 1, Value: 1, Positive: true})
	_ = board.Post(billboard.Post{Player: 2, Object: 1, Value: 1, Positive: true})
	board.EndRound() // round 1

	fmt.Println("votes for object 1 in [0,1):", board.CountVotesInWindow(0, 1)[1])
	fmt.Println("votes for object 1 in [1,2):", board.CountVotesInWindow(1, 2)[1])
	// Output:
	// votes for object 1 in [0,1): 1
	// votes for object 1 in [1,2): 2
}
