package billboard

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustBoard(t *testing.T, cfg Config) *Board {
	t.Helper()
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewValidation(t *testing.T) {
	cases := []Config{
		{Players: 0, Objects: 1},
		{Players: 1, Objects: 0},
		{Players: 1, Objects: 1, Mode: VoteMode(99)},
		{Players: 1, Objects: 1, VotesPerPlayer: -1},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestDefaults(t *testing.T) {
	b := mustBoard(t, Config{Players: 2, Objects: 3})
	if b.Mode() != FirstPositive {
		t.Fatalf("default mode = %v", b.Mode())
	}
	if b.Round() != 0 {
		t.Fatalf("initial round = %d", b.Round())
	}
}

func TestPostVisibilityIsSynchronous(t *testing.T) {
	b := mustBoard(t, Config{Players: 2, Objects: 2})
	if err := b.Post(Post{Player: 0, Object: 1, Value: 1, Positive: true}); err != nil {
		t.Fatal(err)
	}
	// Not yet committed: invisible to same-round readers.
	if b.HasVote(0) || b.VoteCount(1) != 0 {
		t.Fatal("post visible before EndRound")
	}
	// But visible to the adaptive adversary via Pending.
	if got := b.Pending(); len(got) != 1 || got[0].Object != 1 {
		t.Fatalf("Pending = %+v", got)
	}
	b.EndRound()
	if !b.HasVote(0) || b.VoteCount(1) != 1 {
		t.Fatal("post not visible after EndRound")
	}
	if len(b.Pending()) != 0 {
		t.Fatal("pending not cleared after EndRound")
	}
	if b.Round() != 1 {
		t.Fatalf("round = %d", b.Round())
	}
}

func TestPostRejectsOutOfRange(t *testing.T) {
	b := mustBoard(t, Config{Players: 2, Objects: 2})
	if err := b.Post(Post{Player: 2, Object: 0}); err == nil {
		t.Fatal("player out of range accepted")
	}
	if err := b.Post(Post{Player: -1, Object: 0}); err == nil {
		t.Fatal("negative player accepted")
	}
	if err := b.Post(Post{Player: 0, Object: 2}); err == nil {
		t.Fatal("object out of range accepted")
	}
}

func TestFirstPositiveOneVote(t *testing.T) {
	b := mustBoard(t, Config{Players: 1, Objects: 5})
	for obj := 0; obj < 5; obj++ {
		if err := b.Post(Post{Player: 0, Object: obj, Value: 1, Positive: true}); err != nil {
			t.Fatal(err)
		}
		b.EndRound()
	}
	votes := b.Votes(0)
	if len(votes) != 1 || votes[0].Object != 0 {
		t.Fatalf("votes = %+v, want only first", votes)
	}
	if b.TotalVotes() != 1 {
		t.Fatalf("TotalVotes = %d", b.TotalVotes())
	}
	// Only the first positive report generated a vote event.
	if got := b.EventsInWindow(0, 100); len(got) != 1 {
		t.Fatalf("events = %+v", got)
	}
}

func TestFirstPositiveNegativeReportsIgnored(t *testing.T) {
	b := mustBoard(t, Config{Players: 1, Objects: 2})
	if err := b.Post(Post{Player: 0, Object: 0, Value: 0, Positive: false}); err != nil {
		t.Fatal(err)
	}
	b.EndRound()
	if b.HasVote(0) {
		t.Fatal("negative report created a vote")
	}
	if b.NumVotedObjects() != 0 {
		t.Fatal("negative report counted as voted object")
	}
}

func TestFirstPositiveFVotes(t *testing.T) {
	b := mustBoard(t, Config{Players: 1, Objects: 10, VotesPerPlayer: 3})
	for obj := 0; obj < 6; obj++ {
		if err := b.Post(Post{Player: 0, Object: obj, Value: 1, Positive: true}); err != nil {
			t.Fatal(err)
		}
	}
	b.EndRound()
	votes := b.Votes(0)
	if len(votes) != 3 {
		t.Fatalf("got %d votes with f=3", len(votes))
	}
	for i, v := range votes {
		if v.Object != i {
			t.Fatalf("vote %d on object %d, want first three objects", i, v.Object)
		}
	}
}

func TestFirstPositiveDuplicateObjectIgnored(t *testing.T) {
	b := mustBoard(t, Config{Players: 1, Objects: 5, VotesPerPlayer: 2})
	for i := 0; i < 3; i++ {
		if err := b.Post(Post{Player: 0, Object: 1, Value: 1, Positive: true}); err != nil {
			t.Fatal(err)
		}
	}
	b.EndRound()
	if n := len(b.Votes(0)); n != 1 {
		t.Fatalf("duplicate votes recorded: %d", n)
	}
	if b.VoteCount(1) != 1 {
		t.Fatalf("VoteCount = %d", b.VoteCount(1))
	}
	// The player still has one vote slot left for a different object.
	if err := b.Post(Post{Player: 0, Object: 2, Value: 1, Positive: true}); err != nil {
		t.Fatal(err)
	}
	b.EndRound()
	if n := len(b.Votes(0)); n != 2 {
		t.Fatalf("second slot unusable: %d votes", n)
	}
}

func TestVotedObjectsSet(t *testing.T) {
	b := mustBoard(t, Config{Players: 3, Objects: 10})
	posts := []Post{
		{Player: 0, Object: 7, Value: 1, Positive: true},
		{Player: 1, Object: 2, Value: 1, Positive: true},
		{Player: 2, Object: 7, Value: 1, Positive: true},
	}
	for _, p := range posts {
		if err := b.Post(p); err != nil {
			t.Fatal(err)
		}
	}
	b.EndRound()
	got := b.VotedObjects()
	if len(got) != 2 || got[0] != 2 || got[1] != 7 {
		t.Fatalf("VotedObjects = %v", got)
	}
	if b.NumVotedObjects() != 2 {
		t.Fatalf("NumVotedObjects = %d", b.NumVotedObjects())
	}
	if b.VoteCount(7) != 2 {
		t.Fatalf("VoteCount(7) = %d", b.VoteCount(7))
	}
}

func TestCountVotesInWindow(t *testing.T) {
	b := mustBoard(t, Config{Players: 5, Objects: 3})
	// Round 0: players 0, 1 vote object 0.
	for p := 0; p < 2; p++ {
		if err := b.Post(Post{Player: p, Object: 0, Value: 1, Positive: true}); err != nil {
			t.Fatal(err)
		}
	}
	b.EndRound()
	// Round 1: nothing.
	b.EndRound()
	// Round 2: players 2, 3, 4 vote object 1.
	for p := 2; p < 5; p++ {
		if err := b.Post(Post{Player: p, Object: 1, Value: 1, Positive: true}); err != nil {
			t.Fatal(err)
		}
	}
	b.EndRound()

	counts := b.CountVotesInWindow(0, 1)
	if counts[0] != 2 || counts[1] != 0 {
		t.Fatalf("window [0,1) = %v", counts)
	}
	counts = b.CountVotesInWindow(2, 3)
	if counts[1] != 3 || counts[0] != 0 {
		t.Fatalf("window [2,3) = %v", counts)
	}
	counts = b.CountVotesInWindow(0, 3)
	if counts[0] != 2 || counts[1] != 3 {
		t.Fatalf("window [0,3) = %v", counts)
	}
	if got := b.CountVotesInWindow(1, 2); len(got) != 0 {
		t.Fatalf("empty window = %v", got)
	}
}

func TestBestValueVoteMoves(t *testing.T) {
	b := mustBoard(t, Config{Players: 1, Objects: 5, Mode: BestValue})
	steps := []struct {
		obj      int
		val      float64
		wantVote int
	}{
		{2, 0.3, 2}, // first report
		{1, 0.1, 2}, // worse: vote stays
		{4, 0.9, 4}, // better: vote moves
		{3, 0.5, 4}, // worse than current best
	}
	for i, s := range steps {
		if err := b.Post(Post{Player: 0, Object: s.obj, Value: s.val}); err != nil {
			t.Fatal(err)
		}
		b.EndRound()
		votes := b.Votes(0)
		if len(votes) != 1 || votes[0].Object != s.wantVote {
			t.Fatalf("step %d: votes = %+v, want object %d", i, votes, s.wantVote)
		}
	}
	// Vote counts followed the moves.
	if b.VoteCount(2) != 0 || b.VoteCount(4) != 1 {
		t.Fatalf("counts: obj2=%d obj4=%d", b.VoteCount(2), b.VoteCount(4))
	}
	if b.NumVotedObjects() != 1 {
		t.Fatalf("NumVotedObjects = %d", b.NumVotedObjects())
	}
}

func TestBestValueReaffirmationCountsInWindow(t *testing.T) {
	b := mustBoard(t, Config{Players: 1, Objects: 3, Mode: BestValue})
	if err := b.Post(Post{Player: 0, Object: 1, Value: 0.8}); err != nil {
		t.Fatal(err)
	}
	b.EndRound() // round 0: initial vote event
	if err := b.Post(Post{Player: 0, Object: 1, Value: 0.8}); err != nil {
		t.Fatal(err)
	}
	b.EndRound() // round 1: re-affirmation event
	if got := b.CountVotesInWindow(1, 2); got[1] != 1 {
		t.Fatalf("re-affirmation not counted: %v", got)
	}
	// State unchanged: still exactly one vote on object 1.
	if b.VoteCount(1) != 1 || b.TotalVotes() != 1 {
		t.Fatal("re-affirmation changed vote state")
	}
}

func TestBestValueWorseReportNoEvent(t *testing.T) {
	b := mustBoard(t, Config{Players: 1, Objects: 3, Mode: BestValue})
	if err := b.Post(Post{Player: 0, Object: 1, Value: 0.8}); err != nil {
		t.Fatal(err)
	}
	b.EndRound()
	if err := b.Post(Post{Player: 0, Object: 2, Value: 0.1}); err != nil {
		t.Fatal(err)
	}
	b.EndRound()
	if got := b.EventsInWindow(1, 2); len(got) != 0 {
		t.Fatalf("worse report produced events: %+v", got)
	}
}

func TestKeepLog(t *testing.T) {
	b := mustBoard(t, Config{Players: 1, Objects: 2, KeepLog: true})
	if err := b.Post(Post{Player: 0, Object: 0, Value: 0, Positive: false}); err != nil {
		t.Fatal(err)
	}
	if err := b.Post(Post{Player: 0, Object: 1, Value: 1, Positive: true}); err != nil {
		t.Fatal(err)
	}
	b.EndRound()
	log := b.Log()
	if len(log) != 2 {
		t.Fatalf("log length = %d", len(log))
	}
	if log[0].Positive || !log[1].Positive {
		t.Fatal("log order or content wrong")
	}
	if log[0].Round != 0 {
		t.Fatalf("log round = %d", log[0].Round)
	}
	// Without KeepLog, Log returns nil.
	b2 := mustBoard(t, Config{Players: 1, Objects: 1})
	if b2.Log() != nil {
		t.Fatal("Log without KeepLog should be nil")
	}
}

func TestVotesReturnsCopy(t *testing.T) {
	b := mustBoard(t, Config{Players: 1, Objects: 2})
	if err := b.Post(Post{Player: 0, Object: 1, Value: 1, Positive: true}); err != nil {
		t.Fatal(err)
	}
	b.EndRound()
	v := b.Votes(0)
	v[0].Object = 0
	if b.Votes(0)[0].Object != 1 {
		t.Fatal("Votes exposed internal state")
	}
}

func TestAppendOnlyInvariant(t *testing.T) {
	// Property: in FirstPositive mode, committed votes never disappear and
	// never change object, no matter what posts follow.
	f := func(posts []struct {
		Player uint8
		Object uint8
		Pos    bool
	}) bool {
		b, err := New(Config{Players: 8, Objects: 8, VotesPerPlayer: 2})
		if err != nil {
			return false
		}
		type key struct{ player, object int }
		seen := make(map[key]bool)
		for _, p := range posts {
			post := Post{
				Player:   int(p.Player % 8),
				Object:   int(p.Object % 8),
				Value:    1,
				Positive: p.Pos,
			}
			if err := b.Post(post); err != nil {
				return false
			}
			b.EndRound()
			// All previously seen votes must still be present.
			current := make(map[key]bool)
			for player := 0; player < 8; player++ {
				for _, v := range b.Votes(player) {
					current[key{player, v.Object}] = true
				}
			}
			for k := range seen {
				if !current[k] {
					return false
				}
			}
			seen = current
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVoteCountConsistencyProperty(t *testing.T) {
	// Property: sum over objects of VoteCount equals TotalVotes, and
	// NumVotedObjects equals the number of objects with positive count —
	// in both modes, under arbitrary post sequences.
	f := func(posts []struct {
		Player uint8
		Object uint8
		Val    float64
	}, best bool) bool {
		mode := FirstPositive
		if best {
			mode = BestValue
		}
		b, err := New(Config{Players: 4, Objects: 6, Mode: mode})
		if err != nil {
			return false
		}
		for _, p := range posts {
			val := p.Val
			if val < 0 {
				val = -val
			}
			post := Post{
				Player:   int(p.Player % 4),
				Object:   int(p.Object % 6),
				Value:    val,
				Positive: true,
			}
			if err := b.Post(post); err != nil {
				return false
			}
		}
		b.EndRound()
		sum, voted := 0, 0
		for obj := 0; obj < 6; obj++ {
			c := b.VoteCount(obj)
			if c < 0 {
				return false
			}
			sum += c
			if c > 0 {
				voted++
			}
		}
		return sum == b.TotalVotes() && voted == b.NumVotedObjects()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestVoteModeString(t *testing.T) {
	if FirstPositive.String() != "first-positive" || BestValue.String() != "best-value" {
		t.Fatal("mode names wrong")
	}
	if !strings.Contains(VoteMode(9).String(), "9") {
		t.Fatal("unknown mode string should include the number")
	}
}
