package billboard

import (
	"math/rand"
	"sort"
	"testing"
)

// TestWindowCountsMatchNaiveScan is the property test for the event-offset
// index: after an arbitrary interleaving of posts and round boundaries, the
// indexed window queries (map and buffered variants) must agree with a naive
// scan that filters the full event log by each event's Round tag — for every
// window, including empty, inverted, and out-of-range ones, in both vote
// modes.
func TestWindowCountsMatchNaiveScan(t *testing.T) {
	for _, mode := range []VoteMode{FirstPositive, BestValue} {
		t.Run(mode.String(), func(t *testing.T) {
			for seed := int64(0); seed < 8; seed++ {
				r := rand.New(rand.NewSource(seed))
				players := 1 + r.Intn(12)
				objects := 1 + r.Intn(16)
				b, err := New(Config{
					Players:        players,
					Objects:        objects,
					Mode:           mode,
					VotesPerPlayer: 1 + r.Intn(3),
				})
				if err != nil {
					t.Fatal(err)
				}
				rounds := 5 + r.Intn(30)
				var wc WindowCounts
				for round := 0; round < rounds; round++ {
					for k := r.Intn(10); k > 0; k-- {
						err := b.Post(Post{
							Player:   r.Intn(players),
							Object:   r.Intn(objects),
							Value:    r.Float64(),
							Positive: r.Intn(3) > 0,
						})
						if err != nil {
							t.Fatal(err)
						}
					}
					b.EndRound()

					// The full log via the boundary-only offsets; the
					// reference filters it by each event's Round tag, never
					// touching the interior index.
					all := b.WindowEvents(-1, b.Round()+1)
					for trial := 0; trial < 6; trial++ {
						from := r.Intn(b.Round()+5) - 2
						to := r.Intn(b.Round()+5) - 2
						want := make(map[int]int)
						for _, e := range all {
							if e.Round >= from && e.Round < to {
								want[e.Object]++
							}
						}
						checkWindow(t, b, from, to, &wc, want)
					}
				}
			}
		})
	}
}

func checkWindow(t *testing.T, b *Board, from, to int, wc *WindowCounts, want map[int]int) {
	t.Helper()
	got := b.CountVotesInWindow(from, to)
	if len(got) != len(want) {
		t.Fatalf("window [%d,%d): map has %d objects, want %d", from, to, len(got), len(want))
	}
	for obj, n := range want {
		if got[obj] != n {
			t.Fatalf("window [%d,%d): map[%d] = %d, want %d", from, to, obj, got[obj], n)
		}
	}

	b.CountVotesInWindowInto(from, to, wc)
	if wc.Len() != len(want) {
		t.Fatalf("window [%d,%d): WindowCounts has %d objects, want %d", from, to, wc.Len(), len(want))
	}
	objs := wc.Objects()
	if !sort.IntsAreSorted(objs) {
		t.Fatalf("window [%d,%d): Objects() not ascending: %v", from, to, objs)
	}
	for _, obj := range objs {
		if wc.Count(obj) != want[obj] {
			t.Fatalf("window [%d,%d): Count(%d) = %d, want %d", from, to, obj, wc.Count(obj), want[obj])
		}
	}
}

// TestWindowCountsSurviveSnapshotRestore pins that the derived index is
// rebuilt on Restore: a restored board must answer every window query the
// same as the original.
func TestWindowCountsSurviveSnapshotRestore(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	b, err := New(Config{Players: 6, Objects: 8})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 12; round++ {
		for k := r.Intn(4); k > 0; k-- {
			_ = b.Post(Post{Player: r.Intn(6), Object: r.Intn(8), Value: 1, Positive: true})
		}
		b.EndRound()
	}
	snap, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(snap, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wc WindowCounts
	for from := -1; from <= b.Round()+1; from++ {
		for to := from; to <= b.Round()+1; to++ {
			want := b.CountVotesInWindow(from, to)
			checkWindow(t, restored, from, to, &wc, want)
		}
	}
}
