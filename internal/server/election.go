package server

// Leader election for the replicated coordinator (see replica.go for the
// protocol overview). The loop is deliberately small: a follower that has
// heard no leader for its staggered timeout bumps its term and asks every
// peer for a vote, carrying its per-stream positions; a majority of grants
// (itself included) makes it leader, anything else drops it back to
// follower. Because a vote is granted only to a candidate whose positions
// dominate the voter's, and because both vote and ack quorums are
// majorities, the winner provably holds every byte any committed round
// waited on. A candidate denied on log length fetches the missing suffixes
// from the most advanced denier before its next attempt, so incomparable
// position vectors (each node ahead on a different stream) converge instead
// of deadlocking the election.

import (
	"time"

	"repro/internal/wire"
)

// timeout is this node's effective election timeout: the base bound plus an
// id-proportional stagger so replicas time out in a fixed order and
// simultaneous candidacies stay rare.
func (n *ReplicaNode) timeout() time.Duration {
	return n.cfg.ElectionTimeout + time.Duration(n.cfg.ID)*n.cfg.ElectionTimeout/2
}

// electionLoop watches for leader silence and campaigns when it sees it.
func (n *ReplicaNode) electionLoop() {
	defer n.wg.Done()
	tick := time.NewTicker(n.cfg.HeartbeatEvery)
	defer tick.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-tick.C:
		}
		n.mu.Lock()
		if n.closed || n.role == roleLeader || time.Since(n.lastHeard) < n.timeout() {
			n.mu.Unlock()
			continue
		}
		n.term++
		term := n.term
		n.votedFor = n.cfg.ID
		n.role = roleCandidate
		n.lastHeard = time.Now() // restart the clock for this attempt
		offsets := n.log.positions()
		n.mu.Unlock()
		n.mElections.Inc()
		n.logf("replica %d: leader silent; campaigning in term %d", n.cfg.ID, term)
		n.campaign(term, offsets)
	}
}

// voteResult is one peer's answer (or its absence).
type voteResult struct {
	peer int
	ack  *wire.RepAck
}

// campaign runs one election attempt in term: parallel vote requests, then
// either leadership (majority granted) or a drop back to follower with a
// best-effort catch-up from the most advanced denier.
func (n *ReplicaNode) campaign(term uint64, offsets []int64) {
	results := make(chan voteResult, len(n.cfg.Peers))
	asked := 0
	for p := range n.cfg.Peers {
		if p == n.cfg.ID {
			continue
		}
		asked++
		go func(peer int) {
			ack := n.requestVote(peer, term, offsets)
			results <- voteResult{peer: peer, ack: ack}
		}(p)
	}
	granted := 1 // self
	maxTerm := term
	var denials []voteResult
	for i := 0; i < asked; i++ {
		var r voteResult
		select {
		case r = <-results:
		case <-n.stop:
			return
		case <-time.After(n.cfg.ElectionTimeout):
			i = asked // unreachable peers count as denials with no hint
		}
		if r.ack == nil {
			continue
		}
		if r.ack.Term > maxTerm {
			maxTerm = r.ack.Term
		}
		if r.ack.OK {
			granted++
		} else {
			denials = append(denials, r)
		}
	}
	majority := len(n.cfg.Peers)/2 + 1
	n.mu.Lock()
	if n.closed || n.role != roleCandidate || n.term != term {
		// A heartbeat from a real leader (or a newer candidate) superseded
		// this attempt while the votes were in flight.
		n.mu.Unlock()
		return
	}
	if granted >= majority {
		if err := n.becomeLeaderLocked(term, false); err != nil {
			n.logf("replica %d: promotion in term %d failed: %v", n.cfg.ID, term, err)
			n.role = roleFollower
			n.lastHeard = time.Now()
		}
		n.mu.Unlock()
		return
	}
	n.role = roleFollower
	if maxTerm > n.term {
		n.term = maxTerm
		n.votedFor = -1
	}
	n.lastHeard = time.Now()
	n.mu.Unlock()
	n.logf("replica %d: term %d election lost (%d/%d grants)", n.cfg.ID, term, granted, majority)
	n.catchUp(denials)
}

// requestVote performs one vote RPC; nil on any transport failure.
func (n *ReplicaNode) requestVote(peer int, term uint64, offsets []int64) *wire.RepAck {
	conn, err := n.cfg.Dial(n.cfg.Peers[peer])
	if err != nil {
		return nil
	}
	defer conn.Close()
	ack, err := n.roundTrip(conn, &wire.RepMsg{
		Type: wire.RepVoteReq, Term: term, From: n.cfg.ID, Offsets: offsets,
	})
	if err != nil {
		return nil
	}
	return ack
}

// catchUp fetches, from the most advanced denier, the stream suffixes this
// node is missing, so its next candidacy can dominate the group. Best
// effort: any failure just leaves the next election to whoever is ahead.
func (n *ReplicaNode) catchUp(denials []voteResult) {
	var best *voteResult
	var bestSum int64
	for i := range denials {
		var sum int64
		for _, o := range denials[i].ack.Offsets {
			sum += o
		}
		if best == nil || sum > bestSum {
			best, bestSum = &denials[i], sum
		}
	}
	if best == nil || len(best.ack.Offsets) == 0 {
		return
	}
	mine := n.log.positions()
	var wanted []int
	for i, p := range mine {
		if i < len(best.ack.Offsets) && best.ack.Offsets[i] > p {
			wanted = append(wanted, i)
		}
	}
	if len(wanted) == 0 {
		return
	}
	conn, err := n.cfg.Dial(n.cfg.Peers[best.peer])
	if err != nil {
		return
	}
	defer conn.Close()
	for _, stream := range wanted {
		for {
			v := n.log.view(stream)
			ack, err := n.roundTrip(conn, &wire.RepMsg{
				Type: wire.RepFetch, Term: n.Term(), From: n.cfg.ID,
				Stream: stream, Offset: v.pos,
			})
			if err != nil || !ack.OK {
				return
			}
			if !n.applyFetch(stream, v, ack) {
				return
			}
			if len(ack.Data) == 0 && !ack.Reset {
				break // fully caught up on this stream
			}
			if next := n.log.view(stream); next.pos == v.pos && !ack.Reset {
				break // no progress; stop rather than spin
			}
		}
	}
}

// applyFetch applies one fetch reply to the follower store and repLog —
// either a reset to the responder's segment (snapshot + bytes) or a plain
// suffix append. Returns false on any inconsistency.
func (n *ReplicaNode) applyFetch(stream int, v streamView, ack *wire.RepAck) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed || n.role != roleFollower || stream >= len(n.fstores) || n.fstores[stream] == nil {
		return false
	}
	cur := n.log.view(stream)
	if cur.pos != v.pos || cur.epoch != v.epoch {
		return false // the stream moved under us (a leader appeared); stop
	}
	st := n.fstores[stream]
	if ack.Reset {
		if err := st.Rotate(ack.Snapshot); err != nil {
			return false
		}
		n.log.resetStream(stream, ack.Offset, ack.Snapshot)
		if len(ack.Data) > 0 {
			if _, err := st.Write(ack.Data); err != nil {
				return false
			}
			n.log.extend(stream, ack.Data)
		}
		return st.Sync() == nil
	}
	if ack.Offset != cur.pos {
		return false
	}
	if len(ack.Data) == 0 {
		return true
	}
	if _, err := st.Write(ack.Data); err != nil {
		return false
	}
	n.log.extend(stream, ack.Data)
	return st.Sync() == nil
}
