package server_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/object"
	"repro/internal/rng"
	"repro/internal/server"
)

// benchModeCluster mirrors benchShardCluster for the operation-mode pair:
// same universe, same fleet, only the pacing machinery differs. The epoch
// clients poll on a tight schedule so the recorded point prices the epoch
// frames, not the default poll sleep.
func benchModeCluster(b *testing.B, mode server.Mode, players int) []*client.Client {
	b.Helper()
	u, err := object.NewPlanted(object.Planted{M: 1024, Good: 1}, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	tokens := make([]string, players)
	for i := range tokens {
		tokens[i] = fmt.Sprintf("t%d", i)
	}
	srv, err := server.New(server.Config{
		Universe: u, Tokens: tokens, Alpha: 1, Beta: u.Beta(),
		Mode: mode,
	})
	if err != nil {
		b.Fatal(err)
	}
	addr, err := srv.Start("")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	clients := make([]*client.Client, players)
	for p := range clients {
		c, err := client.DialOptions(addr, p, tokens[p], client.Options{
			EpochPoll: 50 * time.Microsecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { c.Close() })
		clients[p] = c
	}
	return clients
}

// BenchmarkEpochPostRound prices one full posting round per iteration in
// both operation modes: eight players concurrently post a 128-report batch
// and close the round — through the global barrier in sync mode, through
// lamport stamps plus epoch polls in epoch mode. The pair is the cost of
// running without the barrier on the same workload; make bench-diff records
// it as BENCH_PR9.json.
func BenchmarkEpochPostRound(b *testing.B) {
	const players, perPlayer = 8, 128
	for _, mc := range []struct {
		name string
		mode server.Mode
	}{
		{"mode-sync", server.ModeSync},
		{"mode-epoch", server.ModeEpoch},
	} {
		b.Run(mc.name, func(b *testing.B) {
			clients := benchModeCluster(b, mc.mode, players)
			batches := make([][]client.BatchPost, players)
			for p := range batches {
				batch := make([]client.BatchPost, perPlayer)
				for i := range batch {
					batch[i] = client.BatchPost{Object: (p*perPlayer + i*17) % 1024, Value: 1}
				}
				batches[p] = batch
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				errs := make([]error, players)
				for p, c := range clients {
					wg.Add(1)
					go func() {
						defer wg.Done()
						_, errs[p] = c.PostBatch(batches[p], true)
					}()
				}
				wg.Wait()
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
