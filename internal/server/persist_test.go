package server_test

// Unit tests for the durable-restart path (Config.Persist): exact state
// recovery across a kill, discard-and-fence of uncommitted rounds, config
// exclusivity, and the lease-timer lifecycle around Close.

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/billboard"
	"repro/internal/client"
	"repro/internal/journal"
	"repro/internal/object"
	"repro/internal/rng"
	"repro/internal/server"
)

func plantedUniverse(t *testing.T) *object.Universe {
	t.Helper()
	u, err := object.NewPlanted(object.Planted{M: 16, Good: 1}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func firstBad(u *object.Universe) int {
	for i := 0; i < u.M(); i++ {
		if !u.IsGood(i) {
			return i
		}
	}
	return -1
}

// TestPersistRestartExactState kills a persist-backed server between rounds
// and restarts it from the store on the same address: the round counter,
// board, probe ledger, membership rules, and live client sessions must all
// carry over — the restart is indistinguishable from a long reconnect.
func TestPersistRestartExactState(t *testing.T) {
	u := plantedUniverse(t)
	bad := firstBad(u)
	dir := t.TempDir()
	tokens := []string{"tok", "tok"}

	newPersistServer := func() (*server.Server, *journal.Store) {
		st, err := journal.OpenStore(dir, journal.SyncCommit)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(server.Config{
			Universe: u, Tokens: tokens, Alpha: 1, Beta: u.Beta(),
			Persist: st, SnapshotEvery: 2,
			SessionGrace: 10 * time.Second,
		})
		if err != nil {
			st.Close()
			t.Fatal(err)
		}
		return srv, st
	}

	srv1, st1 := newPersistServer()
	addr, err := srv1.Start("")
	if err != nil {
		t.Fatal(err)
	}
	opts := client.Options{Retries: 24, BackoffBase: time.Millisecond, BackoffMax: 20 * time.Millisecond}
	c0, err := client.DialOptions(addr, 0, "tok", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c1, err := client.DialOptions(addr, 1, "tok", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	barrierBoth := func() {
		var wg sync.WaitGroup
		wg.Add(2)
		for _, c := range []*client.Client{c0, c1} {
			go func(c *client.Client) { defer wg.Done(); _, _ = c.Barrier() }(c)
		}
		wg.Wait()
	}

	if _, err := c0.Probe(bad); err != nil {
		t.Fatal(err)
	}
	if err := c0.Post(bad, 1, true); err != nil {
		t.Fatal(err)
	}
	barrierBoth() // round 0 commits
	if _, err := c1.Probe(bad); err != nil {
		t.Fatal(err)
	}
	if err := c1.Post(bad, 0.5, false); err != nil {
		t.Fatal(err)
	}
	barrierBoth() // round 1 commits (SnapshotEvery=2: rotation happens here)

	// Kill. Clients still hold their sessions.
	srv1.Close()
	st1.Close()

	srv2, st2 := newPersistServer()
	defer st2.Close()
	if srv2.Round() != 2 {
		t.Fatalf("recovered round = %d, want 2", srv2.Round())
	}
	if _, err := srv2.Start(addr); err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer srv2.Close()

	// The clients' next calls ride session resume onto the restarted server.
	if got := c0.VoteCount(bad); got != 1 {
		t.Fatalf("vote count across restart = %d, want 1", got)
	}
	if err := c0.Err(); err != nil {
		t.Fatalf("resume after restart: %v", err)
	}
	if got := c1.NegativeCount(bad); got != 1 {
		t.Fatalf("negative count across restart = %d, want 1", got)
	}
	// The probe ledger recovered exactly: one charged probe per player.
	probes, _, _, _ := srv2.Stats()
	if probes[0] != 1 || probes[1] != 1 {
		t.Fatalf("recovered probe ledger = %v, want [1 1]", probes)
	}
	// The one-vote rule binds across the restart.
	if err := c0.Post(bad+1, 1, true); err != nil {
		t.Fatal(err)
	}
	barrierBoth() // round 2 commits on the recovered server
	if got := len(c1.Votes(0)); got != 1 {
		t.Fatalf("vote cap forgotten across restart: %d votes", got)
	}
	// A second registration under a fresh session is still refused.
	if c, err := client.Dial(addr, 0, "tok"); err == nil {
		c.Close()
		t.Fatal("player 0 re-registered on the recovered server")
	} else if !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("unexpected rejection: %v", err)
	}
}

// TestPersistUncommittedRoundDiscarded: posts without a round marker die
// with the crash (the synchrony contract), and the recovery fences them
// with a rollback so a second recovery of the same store agrees.
func TestPersistUncommittedRoundDiscarded(t *testing.T) {
	u := plantedUniverse(t)
	bad := firstBad(u)
	dir := t.TempDir()
	tokens := []string{"tok", "tok"}

	open := func() (*server.Server, *journal.Store) {
		st, err := journal.OpenStore(dir, journal.SyncCommit)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(server.Config{
			Universe: u, Tokens: tokens, Alpha: 1, Beta: u.Beta(),
			SessionGrace: 10 * time.Second,
			Persist:      st,
		})
		if err != nil {
			st.Close()
			t.Fatal(err)
		}
		return srv, st
	}

	srv1, st1 := open()
	addr, err := srv1.Start("")
	if err != nil {
		t.Fatal(err)
	}
	c0, err := client.Dial(addr, 0, "tok")
	if err != nil {
		t.Fatal(err)
	}
	c1, err := client.Dial(addr, 1, "tok")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	for _, c := range []*client.Client{c0, c1} {
		go func(c *client.Client) { defer wg.Done(); _, _ = c.Barrier() }(c)
	}
	wg.Wait() // round 0 commits
	// Mid-round post, never committed: the crash eats it.
	if err := c0.Post(bad, 1, true); err != nil {
		t.Fatal(err)
	}
	c0.Close()
	c1.Close()
	srv1.Close()
	st1.Close()

	srv2, st2 := open()
	if srv2.Round() != 1 {
		t.Fatalf("recovered round = %d, want 1 (uncommitted round leaked?)", srv2.Round())
	}
	srv2.Close()
	st2.Close()

	// Second recovery of the same store: the rollback marker written by the
	// first must keep the orphaned post discarded.
	srv3, st3 := open()
	defer st3.Close()
	defer srv3.Close()
	if srv3.Round() != 1 {
		t.Fatalf("second recovery round = %d, want 1", srv3.Round())
	}
	// The recovered board is the empty one-round board: the orphaned post on
	// `bad` never resurfaces (a fresh Dial can't check — player 0 is still
	// registered, which is itself part of the recovered state — so compare
	// digests against a board that never saw the post).
	empty, err := billboard.New(billboard.Config{Players: 2, Objects: u.M(), Mode: billboard.FirstPositive})
	if err != nil {
		t.Fatal(err)
	}
	empty.EndRound()
	if !bytes.Equal(srv3.Digest(), empty.Digest()) {
		t.Fatalf("orphaned post on object %d resurfaced:\n%s", bad, srv3.Digest())
	}
}

// TestPersistExclusiveWithLegacyRecovery: Persist supersedes the
// billboard-only durability knobs; combining them is a config error.
func TestPersistExclusiveWithLegacyRecovery(t *testing.T) {
	u := plantedUniverse(t)
	st, err := journal.OpenStore(t.TempDir(), journal.SyncCommit)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var buf bytes.Buffer
	_, err = server.New(server.Config{
		Universe: u, Tokens: []string{"t"},
		Persist: st,
		Journal: journal.NewWriter(&buf),
	})
	if err == nil || !strings.Contains(err.Error(), "Persist supersedes") {
		t.Fatalf("Persist+Journal accepted: %v", err)
	}
	_, err = server.New(server.Config{
		Universe: u, Tokens: []string{"t"},
		Persist: st,
		Recover: bytes.NewReader(nil),
	})
	if err == nil {
		t.Fatal("Persist+Recover accepted")
	}
}

// TestCloseStopsLeaseTimers pins the timer-leak fix: sessions sitting in
// their grace window when the server closes must have their lease timers
// stopped — no expiry callback may fire into the torn-down server. Run
// under -race this doubles as the regression test for the callback racing
// teardown.
func TestCloseStopsLeaseTimers(t *testing.T) {
	u := plantedUniverse(t)
	var mu sync.Mutex
	var events []string
	logf := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		events = append(events, format)
	}
	srv, err := server.New(server.Config{
		Universe: u, Tokens: []string{"tok", "tok"}, Alpha: 1, Beta: u.Beta(),
		SessionGrace: 30 * time.Millisecond,
		Logf:         logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("")
	if err != nil {
		t.Fatal(err)
	}
	c0, err := client.Dial(addr, 0, "tok")
	if err != nil {
		t.Fatal(err)
	}
	c1, err := client.Dial(addr, 1, "tok")
	if err != nil {
		t.Fatal(err)
	}
	// Both sessions enter their grace window (armed timers)…
	c0.Abort()
	c1.Abort()
	time.Sleep(5 * time.Millisecond) // let the disconnects land
	// …and the server closes mid-window.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Past the grace deadline: a leaked timer would fire (and race the
	// teardown under -race); a stopped one stays silent.
	time.Sleep(60 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	for _, e := range events {
		if strings.Contains(e, "expired") {
			t.Fatalf("lease expiry fired after Close: %q", e)
		}
	}
	c0.Close()
	c1.Close()
}

// TestResumeStopsLeaseTimer: a resume inside the grace window defuses the
// armed timer — the session must not expire at the original deadline.
func TestResumeStopsLeaseTimer(t *testing.T) {
	u := plantedUniverse(t)
	srv, err := server.New(server.Config{
		Universe: u, Tokens: []string{"tok"}, Alpha: 1, Beta: u.Beta(),
		SessionGrace: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	opts := client.Options{Retries: 8, BackoffBase: time.Millisecond, BackoffMax: 5 * time.Millisecond}
	c, err := client.DialOptions(addr, 0, "tok", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Abort()
	// Resume well inside the window, then outlive the original deadline.
	if _, err := c.Probe(0); err != nil {
		t.Fatalf("resume probe: %v", err)
	}
	time.Sleep(80 * time.Millisecond)
	if _, err := c.Probe(1); err != nil {
		t.Fatalf("session expired despite resume: %v", err)
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
}
