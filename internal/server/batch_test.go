package server_test

import (
	"testing"

	"repro/internal/client"
)

// TestPostBatchCommitsAtRoundEnd pins the protocol-v3 semantics: a PostBatch
// with EndRound set applies every post and then acts as the player's barrier,
// so the posts become visible exactly when a Post+Barrier sequence would have
// made them visible.
func TestPostBatchCommitsAtRoundEnd(t *testing.T) {
	addr, _, _ := startServer(t, 2, 1)
	c0, err := client.Dial(addr, 0, "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c1, err := client.Dial(addr, 1, "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	batch := []client.BatchPost{
		{Object: 3, Value: 0.5, Positive: true},
		{Object: 4, Value: 0.25},
	}
	done := make(chan error, 1)
	go func() {
		_, err := c0.PostBatch(batch, true)
		done <- err
	}()
	if _, err := c1.Barrier(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	votes := c1.Votes(0)
	if err := c1.Err(); err != nil {
		t.Fatal(err)
	}
	if len(votes) != 1 || votes[0].Object != 3 || votes[0].Round != 0 {
		t.Fatalf("votes after batch = %+v, want one round-0 vote for object 3", votes)
	}
	counts := c1.CountVotesInWindow(0, 1)
	if err := c1.Err(); err != nil {
		t.Fatal(err)
	}
	if counts[3] != 1 {
		t.Fatalf("window counts = %v, want object 3 counted once", counts)
	}
}

// TestPostBatchIsOneFramePerRound asserts the headline v3 property: a player
// posting k objects in a round costs O(1) client→server frames — one
// PostBatch frame carrying both the posts and the barrier — independent of k.
func TestPostBatchIsOneFramePerRound(t *testing.T) {
	addr, _, srv := startServer(t, 2, 1)
	c0, err := client.Dial(addr, 0, "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c1, err := client.Dial(addr, 1, "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	for _, k := range []int{1, 4, 16} {
		batch := make([]client.BatchPost, k)
		for i := range batch {
			batch[i] = client.BatchPost{Object: i % 8, Value: float64(i)}
		}
		before := srv.RequestsServed()
		done := make(chan error, 1)
		go func() {
			_, err := c0.PostBatch(batch, true)
			done <- err
		}()
		if _, err := c1.Barrier(); err != nil {
			t.Fatal(err)
		}
		if err := <-done; err != nil {
			t.Fatal(err)
		}
		// Exactly one frame per player for the whole round, regardless of k.
		if got := srv.RequestsServed() - before; got != 2 {
			t.Fatalf("k=%d: round cost %d frames, want 2 (one per player)", k, got)
		}
	}
}

// TestPostBatchValidation ensures a bad post inside a batch surfaces as an
// error and does not run the barrier.
func TestPostBatchValidation(t *testing.T) {
	addr, _, srv := startServer(t, 1, 1)
	c, err := client.Dial(addr, 0, "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.PostBatch([]client.BatchPost{{Object: -1}}, true); err == nil {
		t.Fatal("out-of-range object in batch accepted")
	}
	if srv.Round() != 0 {
		t.Fatalf("failed batch advanced the round to %d", srv.Round())
	}
	// The connection stays usable and a clean batch still works.
	if _, err := c.PostBatch([]client.BatchPost{{Object: 1, Value: 1}}, true); err != nil {
		t.Fatal(err)
	}
	if srv.Round() != 1 {
		t.Fatalf("round = %d after clean batch, want 1", srv.Round())
	}
}
