package server_test

import (
	"testing"

	"repro/internal/client"
	"repro/internal/object"
	"repro/internal/rng"
	"repro/internal/server"
)

func benchSetup(b *testing.B) *client.Client {
	b.Helper()
	u, err := object.NewPlanted(object.Planted{M: 1024, Good: 1}, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Universe: u, Tokens: []string{"t"}, Alpha: 1, Beta: u.Beta(),
	})
	if err != nil {
		b.Fatal(err)
	}
	addr, err := srv.Start("")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	c, err := client.Dial(addr, 0, "t")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	return c
}

func BenchmarkRPCPost(b *testing.B) {
	c := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Post(i%1024, 0, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRPCProbe(b *testing.B) {
	c := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Probe(i % 1024); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRPCVotesRead(b *testing.B) {
	c := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Votes(0)
	}
}

func BenchmarkRPCBarrierSinglePlayer(b *testing.B) {
	c := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Barrier(); err != nil {
			b.Fatal(err)
		}
	}
}
