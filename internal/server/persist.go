package server

// Durable restart (Config.Persist): full-service snapshots, write-ahead
// replay, and journal rotation. The contract is exact equivalence — a
// server killed mid-run and rebuilt from its persist store must be
// indistinguishable, to every honest client, from one that merely dropped
// connections for a while:
//
//   - the committed billboard is byte-identical (snapshot + round-buffered
//     replay of committed posts; an uncommitted round is discarded, as the
//     synchrony contract demands, and re-arrives via client retries);
//   - the charged-probe ledger is exact (a probe is charged iff its record
//     is journaled, so replay re-derives counts and costs with no double
//     billing);
//   - every session's dedup window (lastSeq, last response) is restored, so
//     a retried in-flight request either replays its recorded outcome or
//     re-executes exactly once.

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"time"

	"repro/internal/billboard"
	"repro/internal/journal"
	"repro/internal/wire"
)

// sessionSnap is one session's dedup window inside a server snapshot.
// Swarm/PlayerTo mark a swarm session's member range [Player, PlayerTo);
// both are zero for ordinary sessions (and absent in snapshots taken
// before the swarm extension — gob tolerates either direction).
type sessionSnap struct {
	ID       uint64
	Player   int
	LastSeq  uint64
	LastResp wire.Response
	Swarm    bool
	PlayerTo int
}

// serverSnap is the serialized form of the whole service state at a round
// boundary: the billboard plus everything the billboard alone does not
// capture (membership, expulsions, the probe ledger, session windows).
type serverSnap struct {
	Board      []byte
	Round      int
	Registered []int
	Active     []int
	ForceDone  map[int]int
	Probes     []int
	Cost       []float64
	Satisfied  []bool
	Sessions   []sessionSnap
}

// snapshotLocked serializes the full service state. Only called at a round
// boundary (advanceLocked), so the billboard has no pending posts and
// every in-flight request is one the just-committed round is about to
// answer.
func (s *Server) snapshotLocked() ([]byte, error) {
	// A sharded coordinator has no board of its own (Board stays nil in the
	// snapshot); the lane boards snapshot into their per-shard stores.
	var boardBytes []byte
	if s.board != nil {
		var err error
		boardBytes, err = s.board.Snapshot()
		if err != nil {
			return nil, err
		}
	}
	sn := serverSnap{
		Board:     boardBytes,
		Round:     s.round,
		ForceDone: make(map[int]int, len(s.forceDone)),
		Probes:    append([]int(nil), s.probes...),
		Cost:      append([]float64(nil), s.cost...),
		Satisfied: append([]bool(nil), s.satisfied...),
	}
	for p := range s.registered {
		sn.Registered = append(sn.Registered, p)
	}
	for p := range s.active {
		sn.Active = append(sn.Active, p)
	}
	for p, r := range s.forceDone {
		sn.ForceDone[p] = r
	}
	for _, sess := range s.sessions {
		resp := sess.lastResp
		if sess.executing {
			// The only requests that can be mid-execution at a round commit
			// are the ones this commit answers (blocked barriers, the
			// committing Done): their response is the new round. lastResp
			// still holds the previous request's reply, so substitute.
			resp = wire.Response{Round: s.round}
		}
		sn.Sessions = append(sn.Sessions, sessionSnap{
			ID: sess.id, Player: sess.player, LastSeq: sess.lastSeq, LastResp: resp,
			Swarm: sess.swarm, PlayerTo: sess.playerTo,
		})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&sn); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// rotateLocked snapshots the service and rotates the persist store so
// recovery replays at most SnapshotEvery rounds of journal. Failures are
// logged, not fatal: rotation bounds replay time, it is never needed for
// correctness (the current segment keeps growing and keeps working).
func (s *Server) rotateLocked() {
	snap, err := s.snapshotLocked()
	if err != nil {
		s.logf("snapshot at round %d failed: %v", s.round, err)
		return
	}
	if err := s.cfg.Persist.Rotate(snap); err != nil {
		s.logf("journal rotation at round %d failed: %v", s.round, err)
		return
	}
	if s.replLog != nil {
		s.replLog.noteRotate(0, snap)
	}
	s.m.snapshots.Inc()
	s.logf("snapshot at round %d (%d bytes): journal truncated", s.round, len(snap))
}

// ForceRotate snapshots and rotates the persist store(s) immediately — the
// replica bootstrap path uses it so a leader starting over recovered state
// folds that state into a snapshot its followers can be seeded from. Only
// meaningful on a durable server at a round boundary (which construction
// time always is).
func (s *Server) ForceRotate() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.Persist == nil {
		return
	}
	if s.sharded() {
		for _, ln := range s.lanes {
			ln.lock()
		}
		s.rotateShardedLocked()
		for _, ln := range s.lanes {
			ln.unlock()
		}
		return
	}
	s.rotateLocked()
}

// restoreSnapshot loads a serverSnap into a fresh server (construction
// time, no lock needed).
func (s *Server) restoreSnapshot(data []byte) error {
	var sn serverSnap
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&sn); err != nil {
		return err
	}
	if len(sn.Probes) != len(s.cfg.Tokens) {
		return fmt.Errorf("snapshot describes %d players, server configured for %d",
			len(sn.Probes), len(s.cfg.Tokens))
	}
	if sn.Board != nil {
		board, err := billboard.Restore(sn.Board, nil)
		if err != nil {
			return err
		}
		s.board = board
		s.round = board.Round()
	} else {
		// Sharded coordinator snapshot: the boards live in the lane stores.
		s.round = sn.Round
	}
	for _, p := range sn.Registered {
		s.registered[p] = true
	}
	for _, p := range sn.Active {
		s.active[p] = true
	}
	for p, r := range sn.ForceDone {
		s.forceDone[p] = r
	}
	copy(s.probes, sn.Probes)
	copy(s.cost, sn.Cost)
	copy(s.satisfied, sn.Satisfied)
	for _, ss := range sn.Sessions {
		sess := &session{
			id: ss.ID, player: ss.Player,
			lastSeq: ss.LastSeq, lastResp: ss.LastResp,
			loose: true, // client seq counters also advanced over unjournaled reads
			swarm: ss.Swarm, playerTo: ss.PlayerTo,
		}
		s.sessions[ss.ID] = sess
		from, to := sess.memberRange()
		for p := from; p < to; p++ {
			s.byPlayer[p] = sess
		}
	}
	return nil
}

// recoverFromStore rebuilds the service from Config.Persist: snapshot
// first, then the write-ahead tail. Replay mirrors live execution record
// by record — probes and dones apply immediately (they were charged /
// binding the moment they were journaled), posts, barriers, and force-done
// decisions bind only with their round marker. A non-empty uncommitted
// tail is discarded and fenced with a rollback marker so the retries that
// re-execute it are not double-applied by a second recovery.
func (s *Server) recoverFromStore(boardCfg billboard.Config) error {
	st := s.cfg.Persist
	start := time.Now()
	hadSnapshot := false
	if snap := st.Snapshot(); snap != nil {
		hadSnapshot = true
		if err := s.restoreSnapshot(snap); err != nil {
			return fmt.Errorf("server: recover snapshot: %w", err)
		}
	} else if s.cfg.Shards <= 1 {
		board, err := billboard.New(boardCfg)
		if err != nil {
			return fmt.Errorf("server: %w", err)
		}
		s.board = board
	}

	u := s.cfg.Universe
	// touch re-derives registration: any journaled activity proves the
	// player completed a Hello (expelled players stay expelled).
	touch := func(player int) {
		if !s.registered[player] {
			s.registered[player] = true
			if _, expelled := s.forceDone[player]; !expelled {
				s.active[player] = true
			}
		}
	}
	sessOf := func(rec journal.Record) *session {
		if rec.Session == 0 {
			return nil // legacy record with no session attribution
		}
		sess := s.sessions[rec.Session]
		if sess == nil {
			if rec.Player < 0 {
				// A swarm barrier sentinel whose session is unknown (its
				// open record should always precede it); nothing to rebuild.
				return nil
			}
			sess = &session{id: rec.Session, player: rec.Player, loose: true}
			s.sessions[rec.Session] = sess
			s.byPlayer[rec.Player] = sess
		}
		return sess
	}

	replayed := 0
	var pending []journal.Record
	err := journal.ReplayRecords(st.Tail(), func(rec journal.Record) error {
		replayed++
		switch rec.Kind {
		case journal.RecordPost, journal.RecordBarrier, journal.RecordForceDone:
			pending = append(pending, rec)
		case journal.RecordRollback:
			// A previous recovery already discarded these; their retries
			// were re-journaled after this marker.
			pending = pending[:0]
		case journal.RecordProbe:
			if rec.Object < 0 || rec.Object >= u.M() {
				return fmt.Errorf("probe object %d out of range", rec.Object)
			}
			touch(rec.Player)
			s.probes[rec.Player]++
			s.cost[rec.Player] += u.Cost(rec.Object)
			good := u.LocalTesting() && u.IsGood(rec.Object)
			if good {
				s.satisfied[rec.Player] = true
			}
			if sess := sessOf(rec); sess != nil {
				sess.lastSeq = rec.Seq
				sess.lastResp = wire.Response{
					Value: u.Value(rec.Object), Good: good, Cost: u.Cost(rec.Object), Round: s.round,
				}
			}
		case journal.RecordDone:
			touch(rec.Player)
			delete(s.active, rec.Player)
			if sess := sessOf(rec); sess != nil {
				if rec.Seq > sess.lastSeq {
					sess.lastSeq = rec.Seq
				}
				sess.lastResp = wire.Response{Round: s.round}
			}
		case journal.RecordSwarmOpen:
			// Registration of a whole swarm block, applied immediately like
			// any registration (expelled players stay expelled).
			sess := s.sessions[rec.Session]
			if sess == nil {
				sess = &session{id: rec.Session, loose: true}
				s.sessions[rec.Session] = sess
			}
			sess.swarm = true
			sess.player, sess.playerTo = rec.Player, rec.PlayerTo
			for p := rec.Player; p < rec.PlayerTo; p++ {
				touch(p)
				s.byPlayer[p] = sess
			}
		case journal.RecordEndRound:
			var arrivals []*session
			for _, p := range pending {
				switch p.Kind {
				case journal.RecordPost:
					touch(p.Post.Player)
					if s.board == nil {
						return fmt.Errorf("post record in a sharded coordinator journal")
					}
					if err := s.board.Post(p.Post); err != nil {
						return fmt.Errorf("replay post: %v", err)
					}
					if sess := sessOf(p); sess != nil {
						sess.lastSeq = p.Seq
					}
				case journal.RecordBarrier:
					if p.Player >= 0 {
						touch(p.Player)
					}
					// Player -1: a swarm barrier — all active members of the
					// session arrived at once; membership needs no touch (the
					// swarm-open record already registered the block).
					if sess := sessOf(p); sess != nil {
						sess.lastSeq = p.Seq
						arrivals = append(arrivals, sess)
					}
				case journal.RecordForceDone:
					// Decision taken in the round this marker commits.
					s.registered[p.Player] = true
					s.forceDone[p.Player] = s.round
					delete(s.active, p.Player)
					if sess := s.byPlayer[p.Player]; sess != nil {
						delete(s.sessions, sess.id)
						delete(s.byPlayer, p.Player)
					}
				}
			}
			pending = pending[:0]
			if s.board != nil {
				s.board.EndRound()
			}
			s.round++
			if s.recoveredAdmits != nil {
				// Keep the round's admitted vote pairs: lane recovery tops up
				// a lane that missed this round's seal from exactly this set.
				s.recoveredAdmits[s.round] = rec.Admits
			}
			// A committed barrier answers with the round it opened — the
			// response a live server had recorded for those sessions.
			for _, sess := range arrivals {
				sess.lastResp = wire.Response{Round: s.round}
			}
		}
		return nil
	})
	if err != nil && !errors.Is(err, journal.ErrTruncated) {
		return fmt.Errorf("server: recover: %w", err)
	}
	if len(pending) > 0 {
		if werr := st.Writer().Rollback(); werr != nil {
			return fmt.Errorf("server: recover: rollback marker: %w", werr)
		}
	}
	s.m.journalReplayed.Add(int64(replayed))
	s.m.replaySeconds.ObserveSince(start)
	if hadSnapshot || replayed > 0 {
		s.logf("recovered round %d from %s: snapshot=%v, %d journal records replayed, %d uncommitted discarded",
			s.round, st.Dir(), hadSnapshot, replayed, len(pending))
	}
	return nil
}
