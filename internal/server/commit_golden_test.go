package server_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/client"
	"repro/internal/rng"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// runSeededScript drives a seeded pseudo-random multi-round workload
// through real clients: every player draws its per-round batch (size, object
// spread, positive/negative mix) from its own deterministic rng stream, so
// the committed content is independent of goroutine scheduling. The batches
// deliberately collide on objects and overrun the vote budget so the global
// admission pass (budget f, first-vote-per-pair) does real work every round.
func runSeededScript(t *testing.T, addr string, players, rounds int, seed uint64) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, players)
	for p := 0; p < players; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			c, err := client.Dial(addr, p, "tok")
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			r1 := rng.New(seed + uint64(p)*1_000_003)
			for r := 0; r < rounds; r++ {
				n := 1 + int(r1.Uint64n(5))
				batch := make([]client.BatchPost, 0, n)
				for i := 0; i < n; i++ {
					batch = append(batch, client.BatchPost{
						Object:   int(r1.Uint64n(uint64(c.M()))),
						Value:    float64(r1.Uint64n(16)) / 16,
						Positive: r1.Uint64n(3) > 0,
					})
				}
				if _, err := c.PostBatch(batch, true); err != nil {
					errs <- fmt.Errorf("player %d round %d: %w", p, r, err)
					return
				}
			}
			errs <- c.Done()
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardCommitDeterminismGolden pins the commit path's digest bit-for-bit:
// the same seeded workload, run through 1-, 4-, and 16-shard servers, must
// reproduce the digest recorded in testdata from the serial commit path.
// The (player, index) commit order is the only ordering FirstPositive vote
// derivation depends on; any reordering introduced by the parallel commit
// shows up here as a byte diff. Refresh with -update only when the workload
// script itself changes.
func TestShardCommitDeterminismGolden(t *testing.T) {
	const players, rounds, seed = 6, 8, 0xADA9
	goldenPath := filepath.Join("testdata", "commit_digest.golden")

	digests := make(map[int][]byte)
	for _, shards := range []int{1, 4, 16} {
		addr, srv := startSharded(t, players, shards, nil)
		runSeededScript(t, addr, players, rounds, seed)
		d := srv.Digest()
		if len(d) == 0 {
			t.Fatalf("shards=%d: empty digest", shards)
		}
		if srv.Round() != rounds {
			t.Fatalf("shards=%d: round %d, want %d", shards, srv.Round(), rounds)
		}
		digests[shards] = d
	}
	for _, shards := range []int{4, 16} {
		if !bytes.Equal(digests[shards], digests[1]) {
			t.Fatalf("digest mismatch between 1-shard and %d-shard runs:\n1:\n%s\n%d:\n%s",
				shards, digests[1], shards, digests[shards])
		}
	}

	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, digests[1], 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %s (%d bytes)", goldenPath, len(digests[1]))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (run with -update to record): %v", err)
	}
	if !bytes.Equal(digests[1], want) {
		t.Fatalf("digest diverged from recorded serial-commit golden:\ngot:\n%s\nwant:\n%s",
			digests[1], want)
	}
}
