package server_test

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/journal"
	"repro/internal/object"
	"repro/internal/rng"
	"repro/internal/server"
)

// TestCrashRecovery journals a few rounds, "crashes" the server, and brings
// up a replacement from the journal: the billboard state and round counter
// must survive.
func TestCrashRecovery(t *testing.T) {
	u, err := object.NewPlanted(object.Planted{M: 16, Good: 1}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	tokens := []string{"tok", "tok"}
	var log bytes.Buffer

	srv1, err := server.New(server.Config{
		Universe: u, Tokens: tokens, Alpha: 1, Beta: u.Beta(),
		Journal: journal.NewWriter(&log),
	})
	if err != nil {
		t.Fatal(err)
	}
	addr1, err := srv1.Start("")
	if err != nil {
		t.Fatal(err)
	}

	c0, err := client.Dial(addr1, 0, "tok")
	if err != nil {
		t.Fatal(err)
	}
	c1, err := client.Dial(addr1, 1, "tok")
	if err != nil {
		t.Fatal(err)
	}
	bad := -1
	for i := 0; i < u.M(); i++ {
		if !u.IsGood(i) {
			bad = i
			break
		}
	}
	if err := c0.Post(bad, 1, true); err != nil {
		t.Fatal(err)
	}
	barrierBoth := func(a, b *client.Client) {
		var wg sync.WaitGroup
		wg.Add(2)
		for _, c := range []*client.Client{a, b} {
			go func(c *client.Client) { defer wg.Done(); _, _ = c.Barrier() }(c)
		}
		wg.Wait()
	}
	barrierBoth(c0, c1) // round 0 commits (journaled)
	if err := c1.Post(bad, 0.5, false); err != nil {
		t.Fatal(err)
	}
	barrierBoth(c0, c1) // round 1 commits
	c0.Close()
	c1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Crash" happened; bring up a replacement from the journal.
	srv2, err := server.New(server.Config{
		Universe: u, Tokens: tokens, Alpha: 1, Beta: u.Beta(),
		Recover: bytes.NewReader(log.Bytes()),
	})
	if err != nil {
		t.Fatal(err)
	}
	addr2, err := srv2.Start("")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()

	if srv2.Round() != 2 {
		t.Fatalf("recovered round = %d, want 2", srv2.Round())
	}
	c, err := client.Dial(addr2, 0, "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.VoteCount(bad); got != 1 {
		t.Fatalf("recovered vote count = %d, want 1", got)
	}
	votes := c.Votes(0)
	if len(votes) != 1 || votes[0].Object != bad || votes[0].Round != 0 {
		t.Fatalf("recovered votes = %+v", votes)
	}
	if got := c.NegativeCount(bad); got != 1 {
		t.Fatalf("recovered negative count = %d, want 1", got)
	}
	// The one-vote rule still binds across the crash: player 0 cannot vote
	// again on the recovered board.
	if err := c.Post(bad+1, 1, true); err != nil {
		t.Fatal(err)
	}
	c2, err := client.Dial(addr2, 1, "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	barrierBoth(c, c2)
	if got := len(c.Votes(0)); got != 1 {
		t.Fatalf("vote cap forgotten after recovery: %d votes", got)
	}
}

func TestRecoverFromGarbageRejected(t *testing.T) {
	u, err := object.NewPlanted(object.Planted{M: 8, Good: 1}, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	// Garbage that fails on the very first gob frame is ErrTruncated-
	// tolerated (empty prefix); the server comes up with a fresh board.
	srv, err := server.New(server.Config{
		Universe: u, Tokens: []string{"t"},
		Recover: bytes.NewReader([]byte("not a journal")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if srv.Round() != 0 {
		t.Fatalf("round = %d", srv.Round())
	}
}

// TestCompactionCycle exercises the full compaction story: run rounds with
// a journal, Compact, truncate the journal, run more rounds into a new
// journal, crash, and recover from snapshot + tail.
func TestCompactionCycle(t *testing.T) {
	u, err := object.NewPlanted(object.Planted{M: 16, Good: 1}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	bad := -1
	for i := 0; i < u.M(); i++ {
		if !u.IsGood(i) {
			bad = i
			break
		}
	}
	tokens := []string{"tok", "tok"}
	var log1 bytes.Buffer
	srv1, err := server.New(server.Config{
		Universe: u, Tokens: tokens, Alpha: 1, Beta: u.Beta(),
		Journal: journal.NewWriter(&log1),
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv1.Start("")
	if err != nil {
		t.Fatal(err)
	}
	c0, err := client.Dial(addr, 0, "tok")
	if err != nil {
		t.Fatal(err)
	}
	c1, err := client.Dial(addr, 1, "tok")
	if err != nil {
		t.Fatal(err)
	}
	both := func() {
		var wg sync.WaitGroup
		wg.Add(2)
		for _, c := range []*client.Client{c0, c1} {
			go func(c *client.Client) { defer wg.Done(); _, _ = c.Barrier() }(c)
		}
		wg.Wait()
	}
	if err := c0.Post(bad, 1, true); err != nil {
		t.Fatal(err)
	}
	both() // round 0 committed

	// Compact: snapshot the state, "truncate" by starting a fresh journal.
	snapshot, err := srv1.Compact()
	if err != nil {
		t.Fatal(err)
	}
	// Pre-compaction journal is no longer needed; simulate truncation by
	// dropping log1 and switching... (the server keeps writing to log1 in
	// this simple test; the tail we replay is everything AFTER the
	// snapshot, which we approximate by a second server run below).
	c0.Close()
	c1.Close()
	srv1.Close()

	// Second life: recover from snapshot only, run one more round with a
	// fresh journal.
	var log2 bytes.Buffer
	srv2, err := server.New(server.Config{
		Universe: u, Tokens: tokens, Alpha: 1, Beta: u.Beta(),
		RecoverSnapshot: snapshot,
		Journal:         journal.NewWriter(&log2),
	})
	if err != nil {
		t.Fatal(err)
	}
	addr2, err := srv2.Start("")
	if err != nil {
		t.Fatal(err)
	}
	c0, err = client.Dial(addr2, 0, "tok")
	if err != nil {
		t.Fatal(err)
	}
	c1, err = client.Dial(addr2, 1, "tok")
	if err != nil {
		t.Fatal(err)
	}
	if srv2.Round() != 1 {
		t.Fatalf("post-snapshot round = %d, want 1", srv2.Round())
	}
	if err := c1.Post(bad, 0.4, false); err != nil {
		t.Fatal(err)
	}
	both() // round 1 committed into log2
	c0.Close()
	c1.Close()
	srv2.Close()

	// Third life: snapshot + journal tail = exact state.
	srv3, err := server.New(server.Config{
		Universe: u, Tokens: tokens, Alpha: 1, Beta: u.Beta(),
		RecoverSnapshot: snapshot,
		Recover:         bytes.NewReader(log2.Bytes()),
	})
	if err != nil {
		t.Fatal(err)
	}
	addr3, err := srv3.Start("")
	if err != nil {
		t.Fatal(err)
	}
	defer srv3.Close()
	if srv3.Round() != 2 {
		t.Fatalf("recovered round = %d, want 2", srv3.Round())
	}
	c, err := client.Dial(addr3, 0, "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.VoteCount(bad) != 1 {
		t.Fatal("vote lost across compaction")
	}
	if c.NegativeCount(bad) != 1 {
		t.Fatal("negative report from the journal tail lost")
	}
}

// TestMidRoundDisconnectResumeMatchesReplay drops a player mid-round (within
// its session grace), lets it resume and finish the round, and checks that
// the board the resumed player observes is exactly the board a crash
// recovery would rebuild from the journal.
func TestMidRoundDisconnectResumeMatchesReplay(t *testing.T) {
	u, err := object.NewPlanted(object.Planted{M: 16, Good: 1}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	bad := -1
	for i := 0; i < u.M(); i++ {
		if !u.IsGood(i) {
			bad = i
			break
		}
	}
	tokens := []string{"tok", "tok"}
	var log bytes.Buffer
	srv, err := server.New(server.Config{
		Universe: u, Tokens: tokens, Alpha: 1, Beta: u.Beta(),
		Journal:      journal.NewWriter(&log),
		SessionGrace: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	opts := client.Options{Retries: 6, BackoffBase: time.Millisecond, BackoffMax: 10 * time.Millisecond}
	c0, err := client.DialOptions(addr, 0, "tok", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c1, err := client.DialOptions(addr, 1, "tok", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	barrierBoth := func() {
		var wg sync.WaitGroup
		wg.Add(2)
		for _, c := range []*client.Client{c0, c1} {
			go func(c *client.Client) { defer wg.Done(); _, _ = c.Barrier() }(c)
		}
		wg.Wait()
	}

	if err := c0.Post(bad, 1, true); err != nil {
		t.Fatal(err)
	}
	barrierBoth() // round 0 commits

	// Round 1: player 1 posts, then its connection dies mid-round. The
	// session grace keeps it registered; its next call resumes.
	if err := c1.Post(bad, 0.5, false); err != nil {
		t.Fatal(err)
	}
	c1.Abort()
	barrierBoth() // player 1's barrier reconnects and resumes transparently
	if err := c1.Err(); err != nil {
		t.Fatalf("resume failed: %v", err)
	}

	// What the resumed player reads is the committed board…
	if got := c1.VoteCount(bad); got != 1 {
		t.Fatalf("resumed player sees vote count %d, want 1", got)
	}
	if got := c1.NegativeCount(bad); got != 1 {
		t.Fatalf("resumed player sees negative count %d, want 1", got)
	}

	// …and the journal replays to the very same board: the disconnect and
	// resume left no trace in durable state.
	recovered, err := server.New(server.Config{
		Universe: u, Tokens: tokens, Alpha: 1, Beta: u.Beta(),
		Recover: bytes.NewReader(log.Bytes()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if recovered.Round() != 2 {
		t.Fatalf("replayed round = %d, want 2", recovered.Round())
	}
	if !bytes.Equal(recovered.Digest(), srv.Digest()) {
		t.Fatalf("journal replay diverged from live board:\nlive:\n%s\nreplayed:\n%s",
			srv.Digest(), recovered.Digest())
	}
}

// TestForceDoneSurvivesRecovery checks that a barrier-deadline expulsion is
// durable: after a crash, the recovered server still refuses the expelled
// player.
func TestForceDoneSurvivesRecovery(t *testing.T) {
	u, err := object.NewPlanted(object.Planted{M: 16, Good: 1}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	tokens := []string{"tok", "tok"}
	var log bytes.Buffer
	srv, err := server.New(server.Config{
		Universe: u, Tokens: tokens, Alpha: 1, Beta: u.Beta(),
		Journal:         journal.NewWriter(&log),
		SessionGrace:    time.Minute,
		BarrierDeadline: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("")
	if err != nil {
		t.Fatal(err)
	}
	c0, err := client.Dial(addr, 0, "tok")
	if err != nil {
		t.Fatal(err)
	}
	c1, err := client.Dial(addr, 1, "tok")
	if err != nil {
		t.Fatal(err)
	}
	// Player 1 registers but never barriers: the deadline expels it and
	// commits round 0; another prompt round follows.
	if _, err := c0.Barrier(); err != nil {
		t.Fatal(err)
	}
	if _, err := c0.Barrier(); err != nil {
		t.Fatal(err)
	}
	c0.Close()
	c1.Close()
	srv.Close()

	recovered, err := server.New(server.Config{
		Universe: u, Tokens: tokens, Alpha: 1, Beta: u.Beta(),
		Recover: bytes.NewReader(log.Bytes()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if recovered.Round() != 2 {
		t.Fatalf("recovered round = %d, want 2", recovered.Round())
	}
	fd := recovered.ForceDone()
	if r, ok := fd[1]; !ok || r != 0 {
		t.Fatalf("recovered force-done map = %v, want player 1 in round 0", fd)
	}
	addr2, err := recovered.Start("")
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if c, err := client.Dial(addr2, 1, "tok"); err == nil {
		c.Close()
		t.Fatal("force-done player rejoined after recovery")
	} else if !strings.Contains(err.Error(), "force-done") {
		t.Fatalf("unexpected rejection: %v", err)
	}
}
