package server_test

import (
	"bufio"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/object"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/internal/wire"
)

func startServer(t *testing.T, players int, good int) (addr string, tokens []string, srv *server.Server) {
	t.Helper()
	u, err := object.NewPlanted(object.Planted{M: 32, Good: good}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	tokens = make([]string, players)
	for i := range tokens {
		tokens[i] = "tok"
	}
	srv, err = server.New(server.Config{
		Universe: u, Tokens: tokens, Alpha: 1, Beta: u.Beta(),
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err = srv.Start("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr, tokens, srv
}

func TestNewValidation(t *testing.T) {
	u, err := object.NewPlanted(object.Planted{M: 8, Good: 1}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	cases := []server.Config{
		{Tokens: []string{"a"}}, // no universe
		{Universe: u},           // no tokens
		{Universe: u, Tokens: []string{"a"}, Expected: 5},  // expected > N
		{Universe: u, Tokens: []string{"a"}, Expected: -1}, // negative
	}
	for i, cfg := range cases {
		if _, err := server.New(cfg); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestAuthRejection(t *testing.T) {
	addr, _, _ := startServer(t, 2, 1)
	if _, err := client.Dial(addr, 0, "wrong"); err == nil {
		t.Fatal("bad token accepted")
	}
	if _, err := client.Dial(addr, 99, "tok"); err == nil {
		t.Fatal("out-of-range player accepted")
	}
	// Correct credentials work...
	c, err := client.Dial(addr, 0, "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// ...and double registration of the same player is rejected.
	if _, err := client.Dial(addr, 0, "tok"); err == nil {
		t.Fatal("double registration accepted")
	}
}

func TestHelloPayload(t *testing.T) {
	addr, _, _ := startServer(t, 3, 2)
	c, err := client.Dial(addr, 1, "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.N() != 3 || c.M() != 32 || !c.LocalTesting() {
		t.Fatalf("hello payload wrong: N=%d M=%d lt=%v", c.N(), c.M(), c.LocalTesting())
	}
	if c.Alpha() != 1 {
		t.Fatalf("alpha = %v", c.Alpha())
	}
	if c.Cost(0) != 1 {
		t.Fatalf("cost = %v", c.Cost(0))
	}
}

func TestBarrierSynchronizesRounds(t *testing.T) {
	addr, _, srv := startServer(t, 2, 1)
	c0, err := client.Dial(addr, 0, "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c1, err := client.Dial(addr, 1, "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	// c0 arrives; the round must NOT advance until c1 arrives too.
	done := make(chan int, 1)
	go func() {
		round, err := c0.Barrier()
		if err != nil {
			done <- -1
			return
		}
		done <- round
	}()
	select {
	case r := <-done:
		t.Fatalf("barrier released early with round %d", r)
	case <-time.After(50 * time.Millisecond):
	}
	if srv.Round() != 0 {
		t.Fatalf("round advanced to %d with one arrival", srv.Round())
	}
	if _, err := c1.Barrier(); err != nil {
		t.Fatal(err)
	}
	if r := <-done; r != 1 {
		t.Fatalf("barrier returned round %d, want 1", r)
	}
}

func TestPostsCommitAtRoundEnd(t *testing.T) {
	addr, _, _ := startServer(t, 2, 1)
	c0, err := client.Dial(addr, 0, "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c1, err := client.Dial(addr, 1, "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	if err := c0.Post(5, 1, true); err != nil {
		t.Fatal(err)
	}
	// Same-round read: invisible.
	if c1.VoteCount(5) != 0 {
		t.Fatal("post visible before round end")
	}
	var wg sync.WaitGroup
	wg.Add(2)
	for _, c := range []*client.Client{c0, c1} {
		go func(c *client.Client) {
			defer wg.Done()
			_, _ = c.Barrier()
		}(c)
	}
	wg.Wait()
	if c1.VoteCount(5) != 1 {
		t.Fatal("post not visible after round end")
	}
	votes := c1.Votes(0)
	if len(votes) != 1 || votes[0].Object != 5 || votes[0].Round != 0 {
		t.Fatalf("votes = %+v", votes)
	}
}

func TestIdentityCannotBeSpoofed(t *testing.T) {
	// The Post request carries no player field the server trusts: the
	// authenticated id is stamped server-side, so posts land under the
	// poster's identity.
	addr, _, _ := startServer(t, 2, 1)
	c0, err := client.Dial(addr, 0, "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c1, err := client.Dial(addr, 1, "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if err := c0.Post(3, 1, true); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	for _, c := range []*client.Client{c0, c1} {
		go func(c *client.Client) { defer wg.Done(); _, _ = c.Barrier() }(c)
	}
	wg.Wait()
	if len(c1.Votes(1)) != 0 {
		t.Fatal("player 1 acquired a vote it never cast")
	}
	if len(c1.Votes(0)) != 1 {
		t.Fatal("player 0's vote missing")
	}
}

func TestDisconnectActsAsDone(t *testing.T) {
	addr, _, _ := startServer(t, 2, 1)
	c0, err := client.Dial(addr, 0, "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c1, err := client.Dial(addr, 1, "tok")
	if err != nil {
		t.Fatal(err)
	}
	// c1 vanishes without Done; c0's barrier must still complete.
	c1.Close()
	done := make(chan error, 1)
	go func() {
		_, err := c0.Barrier()
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("barrier wedged by a disconnected player")
	}
}

func TestProbeChargesAndReveals(t *testing.T) {
	addr, _, srv := startServer(t, 1, 1)
	c, err := client.Dial(addr, 0, "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	good := -1
	for i := 0; i < c.M(); i++ {
		res, err := c.Probe(i)
		if err != nil {
			t.Fatal(err)
		}
		if res.Good {
			good = i
			break
		}
	}
	if good < 0 {
		t.Fatal("never found the good object")
	}
	probes, cost, satisfied, _ := srv.Stats()
	if probes[0] != good+1 {
		t.Fatalf("server counted %d probes, want %d", probes[0], good+1)
	}
	if cost[0] != float64(good+1) {
		t.Fatalf("server charged %v", cost[0])
	}
	if !satisfied[0] {
		t.Fatal("server did not record satisfaction")
	}
	if _, err := c.Probe(999); err == nil {
		t.Fatal("out-of-range probe accepted")
	}
}

func TestUnauthenticatedRequestsRejected(t *testing.T) {
	// A client that skips Hello must be refused. Use the raw wire shape by
	// dialing with a bad token (Dial fails), then verify the server is
	// still healthy for valid clients.
	addr, _, _ := startServer(t, 1, 1)
	if _, err := client.Dial(addr, 0, "nope"); err == nil {
		t.Fatal("bad token accepted")
	}
	c, err := client.Dial(addr, 0, "tok")
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
}

func TestDoubleBarrierRejected(t *testing.T) {
	addr, _, _ := startServer(t, 2, 1)
	c0, err := client.Dial(addr, 0, "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	// Only one of two players arrived; a second Barrier on the same conn
	// would deadlock it behind its own pending one, so test the double-
	// arrival guard through Done followed by Barrier instead.
	if err := c0.Done(); err != nil {
		t.Fatal(err)
	}
	if _, err := c0.Barrier(); err == nil {
		t.Fatal("barrier after done accepted")
	}
}

func TestProtocolVersionMismatchRejected(t *testing.T) {
	addr, _, _ := startServer(t, 1, 1)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.EncodeRequest(conn, &wire.Request{
		Type: wire.ReqHello, Player: 0, Token: "tok", Version: 999,
		Session: 1, Seq: 1,
	}); err != nil {
		t.Fatal(err)
	}
	resp, err := wire.DecodeResponse(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err == "" || !strings.Contains(resp.Err, "version") {
		t.Fatalf("version mismatch accepted: %+v", resp)
	}
}

func TestUnauthenticatedNonHelloRejected(t *testing.T) {
	addr, _, _ := startServer(t, 1, 1)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.EncodeRequest(conn, &wire.Request{
		Type: wire.ReqProbe, Object: 0, Session: 1, Seq: 1,
	}); err != nil {
		t.Fatal(err)
	}
	resp, err := wire.DecodeResponse(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err == "" || !strings.Contains(resp.Err, "hello") {
		t.Fatalf("unauthenticated probe accepted: %+v", resp)
	}
}
