package server_test

import (
	"bufio"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/object"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/internal/wire"
)

// TestCloseDuringCommitNoPartialSeal hammers a sharded epoch-mode server
// with round commits (two posts per round, scattered across lanes) and
// concurrent scatter-gather window reads while Close lands mid-run. The
// commit pipeline's parallel per-lane seal runs under the server lock, so a
// reader must observe each round's posts all-or-nothing: every successful
// window read returns an even event total and complete per-round pairs —
// never a half-sealed board. Run under -race this also audits the seal
// WaitGroup vs Close ordering (a Close racing the lane seal goroutines
// would trip the detector).
func TestCloseDuringCommitNoPartialSeal(t *testing.T) {
	u, err := object.NewPlanted(object.Planted{M: 4096, Good: 1}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Universe: u, Tokens: []string{"tok", "tok"}, Alpha: 1, Beta: u.Beta(),
		Mode: server.ModeEpoch, Shards: 4,
		// Every positive post must commit a vote event for the pairing
		// invariant, so lift the per-player vote budget out of the way.
		VotesPerPlayer: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// The driver: player 0 commits rounds as fast as the server seals them.
	// Posts go in pairs on distinct objects; shard scatter puts them on
	// different lanes often enough to make a torn seal observable.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := client.Dial(addr, 0, "tok")
		if err != nil {
			return // the server may already be closing
		}
		defer c.Close()
		for r := 0; ; r++ {
			batch := []client.BatchPost{
				{Object: 2 * r, Value: 1, Positive: true},
				{Object: 2*r + 1, Value: 1, Positive: true},
			}
			if _, err := c.PostBatch(batch, true); err != nil {
				return // server closed underneath us: expected
			}
		}
	}()

	// The reader: player 1 stamps one far-future epoch (so it never holds
	// rounds open) and then issues atomic scatter-gather window reads.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := wire.NewStreamEncoder(conn)
	dec := wire.NewStreamDecoder(bufio.NewReader(conn))
	send := func(req wire.Request) (*wire.Response, bool) {
		if err := enc.EncodeRequest(&req); err != nil {
			return nil, false
		}
		var resp wire.Response
		if err := dec.DecodeResponse(&resp); err != nil {
			return nil, false
		}
		return &resp, true
	}
	hello, ok := send(wire.Request{
		Type: wire.ReqHello, Player: 1, Token: "tok", Version: wire.Version,
		Session: 99, Seq: 1,
	})
	if !ok || hello.Err != "" {
		t.Fatalf("reader hello: %+v", hello)
	}
	seq := uint64(0)
	seq++
	if resp, ok := send(wire.Request{Type: wire.ReqEpoch, Epoch: 1 << 30, Session: 99, Seq: seq}); !ok || resp.Err != "" {
		t.Fatalf("reader stamp: %+v", resp)
	}

	reads := 0
	closed := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Let some rounds commit, then land Close in the middle of the
		// commit storm.
		for srv.Round() < 40 {
			time.Sleep(50 * time.Microsecond)
		}
		srv.Close()
		close(closed)
	}()
	for {
		seq++
		resp, ok := send(wire.Request{Type: wire.ReqWindow, Last: 1 << 20, Session: 99, Seq: seq})
		if !ok || resp.Err != "" {
			break // connection torn down by Close: expected
		}
		total := 0
		for obj, n := range resp.Counts {
			total += n
			// The pair partner of every counted object must be equally
			// visible: posts of one round commit atomically.
			partner := obj ^ 1
			if resp.Counts[partner] != n {
				t.Errorf("read %d (round %d): object %d has %d events, partner %d has %d — torn round visible",
					reads, resp.Round, obj, n, partner, resp.Counts[partner])
			}
		}
		if total%2 != 0 {
			t.Errorf("read %d (round %d): odd event total %d — half a round visible", reads, resp.Round, total)
		}
		reads++
	}
	<-closed
	wg.Wait()
	if reads == 0 {
		t.Fatal("no successful window read before close: test raced itself")
	}
}
