package server_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/client"
	"repro/internal/object"
	"repro/internal/rng"
	"repro/internal/server"
)

// BenchmarkReplicatedPostRound prices the quorum commit: one full posting
// round per iteration — four players scatter a 64-report batch and arrive
// at the barrier — against a 1-member group (quorum of self: the repLog
// bookkeeping with no network round trip) and a 3-member group (every
// round waits for one follower's durable ack). The replicas-1/replicas-3
// spread is the replication tax on post-round latency that BENCH_PR6.json
// records; the single-coordinator hot paths stay gated against
// BENCH_PR2.json separately.
func BenchmarkReplicatedPostRound(b *testing.B) {
	const players, perPlayer = 4, 64
	for _, replicas := range []int{1, 3} {
		b.Run(fmt.Sprintf("replicas-%d", replicas), func(b *testing.B) {
			u, err := object.NewPlanted(object.Planted{M: 1024, Good: 1}, rng.New(1))
			if err != nil {
				b.Fatal(err)
			}
			tokens := make([]string, players)
			for i := range tokens {
				tokens[i] = fmt.Sprintf("t%d", i)
			}
			g := startReplicaGroup(b, replicas, server.Config{
				Universe: u, Tokens: tokens, Alpha: 1, Beta: u.Beta(),
			}, func(i int, rc *server.ReplicaConfig) {
				rc.Logf = nil // benchmark iterations should not log
			})
			clients := make([]*client.Client, players)
			for p := range clients {
				c, err := client.Dial(g.clientAddrs[0], p, tokens[p])
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(func() { c.Close() })
				clients[p] = c
			}
			batches := make([][]client.BatchPost, players)
			for p := range batches {
				batch := make([]client.BatchPost, perPlayer)
				for i := range batch {
					batch[i] = client.BatchPost{Object: (p*perPlayer + i*17) % 1024, Value: 1}
				}
				batches[p] = batch
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				errs := make([]error, players)
				for p, c := range clients {
					wg.Add(1)
					go func(p int, c *client.Client) {
						defer wg.Done()
						_, errs[p] = c.PostBatch(batches[p], true)
					}(p, c)
				}
				wg.Wait()
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
