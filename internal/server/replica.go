package server

// Replicated coordinator (wire protocol v5): the billboard service runs as
// a small replica group in which one node — the leader — serves clients
// while streaming its journal stores, byte for byte, to the followers. A
// round is sealed (and any journaled response released) only after a quorum
// of replicas holds the bytes durably, so killing the leader mid-round
// never loses a committed round: a follower detects the silence, wins an
// election among the survivors, and rebuilds the service from its
// replicated copy — the uncommitted tail is discarded by the same rollback
// fence a single-coordinator restart uses, and the clients' retries re-earn
// it against the new leader.
//
// Replication unit. The leader's persist stores are replicated as raw byte
// streams: stream 0 is the coordinator store, stream 1+k is shard lane k's
// store (when the service is sharded). Store.SetMirror tees every appended
// byte slice into the node's replicated log (repLog); per-peer sender
// goroutines ship the tail and collect acknowledgements; a response leaves
// the leader only once commitWait sees a quorum of replicas (leader
// included) at or past the positions the request produced. Followers apply
// the bytes to their own stores and fsync before acking, so "quorum acked"
// means "durable on a quorum".
//
// Elections. Terms fence leaderships exactly as in Raft's skeleton: every
// replication message carries the sender's term; a receiver holding a newer
// term refuses, and a leader seeing a refusal (or any message) with a newer
// term steps down. A follower that has heard nothing for its (id-staggered)
// election timeout campaigns; a vote is granted only to a candidate whose
// per-stream positions are elementwise at least the voter's, which —
// because vote quorums and ack quorums are both majorities — guarantees the
// winner holds every quorum-committed byte. Promotion is just the existing
// durable-restart path run over the replicated stores: rollback fence,
// admission top-up, session grace, all unchanged.
//
// Divergence. A follower that accepted bytes a dead leader never committed
// holds a journal suffix the new leader does not. A new leader therefore
// resets every follower on first contact of its term (RepRotate to its own
// segment base, then re-append), and positional mismatches detected later
// reset the same way. The reset truncates only uncommitted bytes: committed
// bytes are, by the vote rule, a prefix of the new leader's streams.

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/wire"
)

// ReplicaConfigError is a startup validation failure with a stable Code the
// operator (and cmd/billboard-server's exit path) can match on.
type ReplicaConfigError struct {
	Code string // "empty-group", "even-group", "quorum-too-large", ...
	msg  string
}

func (e *ReplicaConfigError) Error() string {
	return fmt.Sprintf("replica config [%s]: %s", e.Code, e.msg)
}

// NewReplicaConfigError builds a config error with a caller-chosen code —
// for front ends (cmd/billboard-server) layering flag-level validation on
// top of Validate.
func NewReplicaConfigError(code, format string, args ...any) *ReplicaConfigError {
	return &ReplicaConfigError{Code: code, msg: fmt.Sprintf(format, args...)}
}

// ReplicaConfig describes one member of a coordinator replica group.
type ReplicaConfig struct {
	// ID is this node's index into Peers/ClientAddrs.
	ID int
	// Peers lists every member's replication address (ID included); its
	// length is the group size and must be odd so majorities are unique.
	Peers []string
	// ClientAddrs lists every member's client-facing address, parallel to
	// Peers — what a follower hands out in not-leader redirects.
	ClientAddrs []string
	// Quorum is the number of durable replica acknowledgements (leader
	// included) a round commit waits for. Zero means majority; anything
	// below majority or above the group size is rejected.
	Quorum int
	// Dir is this node's persistence root: stream 0 lives at Dir, shard
	// lane k at Dir/shard-%03d — the same layout a single durable server
	// uses, so promotion is a plain durable restart.
	Dir string
	// HeartbeatEvery paces leader heartbeats and sender retries
	// (default 25ms).
	HeartbeatEvery time.Duration
	// ElectionTimeout is the base leader-silence bound; node ID staggers
	// the effective timeout (+ID*ElectionTimeout/2) so simultaneous
	// candidacies are rare (default 150ms).
	ElectionTimeout time.Duration
	// Dial opens replication connections (nil means net.Dial "tcp"); the
	// chaos tests swap in faultnet dialers here.
	Dial func(addr string) (net.Conn, error)
	// RepListener / ClientListener, when non-nil, override listening on
	// Peers[ID] / ClientAddrs[ID] (tests pass pre-bound listeners).
	RepListener    net.Listener
	ClientListener net.Listener
	// OnPromote, when non-nil, is called (on its own goroutine) with the
	// freshly built server each time this node assumes leadership.
	OnPromote func(*Server)
	// Logf receives replication events; nil disables.
	Logf func(format string, args ...any)
}

// Validate checks group shape and quorum arithmetic, filling defaults in
// place. Every failure is a *ReplicaConfigError with a stable code.
func (rc *ReplicaConfig) Validate() error {
	n := len(rc.Peers)
	if n == 0 {
		return &ReplicaConfigError{Code: "empty-group", msg: "Peers must name at least one replica"}
	}
	if n%2 == 0 {
		return &ReplicaConfigError{Code: "even-group",
			msg: fmt.Sprintf("group size %d is even; majorities need an odd group", n)}
	}
	if rc.ID < 0 || rc.ID >= n {
		return &ReplicaConfigError{Code: "id-out-of-range",
			msg: fmt.Sprintf("ID %d outside [0, %d)", rc.ID, n)}
	}
	if len(rc.ClientAddrs) != n {
		return &ReplicaConfigError{Code: "addr-mismatch",
			msg: fmt.Sprintf("%d client addresses for %d replicas", len(rc.ClientAddrs), n)}
	}
	if rc.Quorum == 0 {
		rc.Quorum = n/2 + 1
	}
	if rc.Quorum > n {
		return &ReplicaConfigError{Code: "quorum-too-large",
			msg: fmt.Sprintf("quorum %d exceeds group size %d", rc.Quorum, n)}
	}
	if rc.Quorum < n/2+1 {
		return &ReplicaConfigError{Code: "quorum-too-small",
			msg: fmt.Sprintf("quorum %d below majority %d: split brain would commit", rc.Quorum, n/2+1)}
	}
	if rc.Dir == "" {
		return &ReplicaConfigError{Code: "missing-dir", msg: "replication requires a persist directory"}
	}
	if rc.HeartbeatEvery <= 0 {
		rc.HeartbeatEvery = 25 * time.Millisecond
	}
	if rc.ElectionTimeout <= 0 {
		rc.ElectionTimeout = 150 * time.Millisecond
	}
	if rc.Dial == nil {
		rc.Dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	return nil
}

// repStream is one replicated byte stream's retained state: the bytes
// appended since the segment base (earlier bytes live only in the base
// snapshot) plus the epoch that fences resets.
type repStream struct {
	base  int64  // stream offset where buf starts (segment base)
	pos   int64  // base + len(buf)
	epoch int    // bumped on every rotate/reset
	snap  []byte // snapshot standing in for bytes [0, base)
	buf   []byte // bytes appended since base
}

// repLog is the node's replicated-log bookkeeping: per-stream retained
// tails plus, while leading, per-peer acknowledged positions. It is a leaf
// lock — nothing called under its mutex takes any other lock.
type repLog struct {
	mu      sync.Mutex
	cond    *sync.Cond
	streams []repStream
	acked   map[int][]int64      // peer → per-stream durably acked position
	kicks   map[int]chan struct{} // peer → sender wakeup
	aborted bool
	ackHist *obs.Histogram
}

func newRepLog(streams int, hist *obs.Histogram) *repLog {
	l := &repLog{streams: make([]repStream, streams), ackHist: hist}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// appendLocal records bytes the local store just appended (the mirror hook
// on a leader; promotion-time recovery writes also land here). p is copied:
// callers reuse their buffers.
func (l *repLog) appendLocal(stream int, p []byte) {
	l.mu.Lock()
	st := &l.streams[stream]
	st.buf = append(st.buf, p...)
	st.pos += int64(len(p))
	for _, ch := range l.kicks {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	l.mu.Unlock()
}

// extend records bytes a follower applied from its leader.
func (l *repLog) extend(stream int, p []byte) {
	l.mu.Lock()
	st := &l.streams[stream]
	st.buf = append(st.buf, p...)
	st.pos += int64(len(p))
	l.mu.Unlock()
}

// noteRotate moves a stream's segment base to its current position: the
// snapshot now stands in for everything before it (leader-side journal
// rotation).
func (l *repLog) noteRotate(stream int, snap []byte) {
	l.mu.Lock()
	st := &l.streams[stream]
	st.base, st.buf, st.snap = st.pos, nil, snap
	st.epoch++
	for _, ch := range l.kicks {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	l.mu.Unlock()
}

// resetStream adopts a leader-dictated segment (follower side of RepRotate).
func (l *repLog) resetStream(stream int, base int64, snap []byte) {
	l.mu.Lock()
	st := &l.streams[stream]
	st.base, st.pos, st.buf, st.snap = base, base, nil, snap
	st.epoch++
	l.mu.Unlock()
}

// positions returns the per-stream position vector (the election log-length
// comparison and the RepSync reply).
func (l *repLog) positions() []int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]int64, len(l.streams))
	for i := range l.streams {
		out[i] = l.streams[i].pos
	}
	return out
}

// streamView is a consistent snapshot of one stream's retained state. buf
// subslices stay valid after the lock is dropped: the buffer is append-only
// within an epoch, and every reset replaces it instead of truncating.
type streamView struct {
	base, pos int64
	epoch     int
	snap, buf []byte
}

func (l *repLog) view(stream int) streamView {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := &l.streams[stream]
	return streamView{base: st.base, pos: st.pos, epoch: st.epoch, snap: st.snap, buf: st.buf}
}

// beginLeadership resets the ack table for a fresh leadership: every peer
// starts unacknowledged, every sender gets a kick channel.
func (l *repLog) beginLeadership(peers []int) {
	l.mu.Lock()
	l.acked = make(map[int][]int64, len(peers))
	l.kicks = make(map[int]chan struct{}, len(peers))
	for _, p := range peers {
		l.acked[p] = make([]int64, len(l.streams))
		l.kicks[p] = make(chan struct{}, 1)
	}
	l.aborted = false
	l.mu.Unlock()
}

func (l *repLog) kickChan(peer int) chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.kicks[peer]
}

// ackPeer records a follower's durable position and wakes commit waiters.
func (l *repLog) ackPeer(peer, stream int, pos int64) {
	l.mu.Lock()
	if acks := l.acked[peer]; acks != nil && pos > acks[stream] {
		acks[stream] = pos
		l.cond.Broadcast()
	}
	l.mu.Unlock()
}

// errCommitAborted reports a commitWait cut short by demotion or shutdown.
var errCommitAborted = errors.New("server: replication commit aborted")

// commitWait blocks until, for every stream, at least quorum replicas
// (this leader counted) durably hold the bytes written so far. The targets
// are captured at entry, so later appends never extend the wait.
func (l *repLog) commitWait(quorum int) error {
	start := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	targets := make([]int64, len(l.streams))
	for i := range l.streams {
		targets[i] = l.streams[i].pos
	}
	for !l.aborted {
		ok := true
		for i, t := range targets {
			n := 1 // self: the leader's own store already holds the bytes
			for _, acks := range l.acked {
				if acks[i] >= t {
					n++
				}
			}
			if n < quorum {
				ok = false
				break
			}
		}
		if ok {
			l.ackHist.ObserveSince(start)
			return nil
		}
		l.cond.Wait()
	}
	return errCommitAborted
}

// abortWaiters fails every in-flight and future commitWait (until the next
// beginLeadership) — the demotion path runs it before closing the server so
// waiters holding the server lock drain instead of deadlocking.
func (l *repLog) abortWaiters() {
	l.mu.Lock()
	l.aborted = true
	l.cond.Broadcast()
	l.mu.Unlock()
}

// Node roles.
const (
	roleFollower = iota
	roleCandidate
	roleLeader
)

// ReplicaNode is one member of a coordinator replica group: a follower
// applying the leader's journal bytes, or the leader itself running the
// full billboard service over its stores.
type ReplicaNode struct {
	cfg  ReplicaConfig
	scfg Config

	repLn    net.Listener
	clientLn net.Listener

	mu        sync.Mutex
	term      uint64
	votedFor  int
	role      int
	leaderID  int // last known leader; -1 when unknown
	lastHeard time.Time
	srv       *Server          // non-nil while leading
	fstores   []*journal.Store // per-stream stores while following
	leadStop  chan struct{}    // closes when this leadership ends
	closed    bool
	conns     map[net.Conn]struct{} // open rep/redirect conns, force-closed on Close

	log  *repLog
	stop chan struct{}
	wg   sync.WaitGroup

	mElections *obs.Counter
	mFailovers *obs.Counter
}

// nstreams is the replicated stream count for a service config.
func nstreams(scfg Config) int {
	if scfg.Shards > 1 {
		return 1 + scfg.Shards
	}
	return 1
}

// streamDir maps a stream index to its persistence directory under root.
func streamDir(root string, stream int) string {
	if stream == 0 {
		return root
	}
	return shardDir(root, stream-1)
}

// StartReplica starts one replica-group member. scfg describes the service
// a leader runs; its persistence knobs must be unset — the node owns the
// stores (rooted at rc.Dir) and wires them itself. Replica 0 bootstraps as
// the leader of term 1; everyone else starts as a term-1 follower (vote
// spent on node 0) and learns the leader from its first heartbeat.
func StartReplica(rc ReplicaConfig, scfg Config) (*ReplicaNode, error) {
	if err := rc.Validate(); err != nil {
		return nil, err
	}
	if scfg.Persist != nil || scfg.Journal != nil || scfg.Recover != nil || scfg.RecoverSnapshot != nil {
		return nil, &ReplicaConfigError{Code: "persist-conflict",
			msg: "the replica node owns persistence; leave Config.Persist/Journal/Recover unset"}
	}
	n := &ReplicaNode{
		cfg:      rc,
		scfg:     scfg,
		votedFor: -1,
		leaderID: -1,
		conns:    make(map[net.Conn]struct{}),
		stop:     make(chan struct{}),
		log: newRepLog(nstreams(scfg), scfg.Metrics.Histogram(
			"server_quorum_ack_seconds", "time a commit waited for its durable quorum", nil)),
		mElections: scfg.Metrics.Counter("server_elections_total", "elections started by this replica"),
		mFailovers: scfg.Metrics.Counter("server_failovers_total", "leaderships assumed after a failover"),
	}
	var err error
	if n.repLn = rc.RepListener; n.repLn == nil {
		if n.repLn, err = net.Listen("tcp", rc.Peers[rc.ID]); err != nil {
			return nil, fmt.Errorf("server: replica %d: %w", rc.ID, err)
		}
	}
	if n.clientLn = rc.ClientListener; n.clientLn == nil {
		if n.clientLn, err = net.Listen("tcp", rc.ClientAddrs[rc.ID]); err != nil {
			n.repLn.Close()
			return nil, fmt.Errorf("server: replica %d: %w", rc.ID, err)
		}
	}
	n.lastHeard = time.Now()
	if rc.ID == 0 {
		// Bootstrap: the group needs a first leader before any election can
		// compare logs; node 0 of term 1 is it, and every heartbeat it sends
		// pulls the term-0 followers up.
		n.mu.Lock()
		err = n.becomeLeaderLocked(1, true)
		n.mu.Unlock()
		if err != nil {
			n.repLn.Close()
			n.clientLn.Close()
			return nil, fmt.Errorf("server: replica 0 bootstrap: %w", err)
		}
	} else {
		// Followers join term 1 with their vote already spent on the
		// bootstrap leader. Starting them at term 0 would let a first
		// campaign reuse term 1 and elect a second leader for a term that
		// already has one — the same-term collision term fencing cannot
		// catch.
		n.term = 1
		n.votedFor = 0
		if err := n.openFollowerStoresLocked(); err != nil {
			n.repLn.Close()
			n.clientLn.Close()
			return nil, fmt.Errorf("server: replica %d: %w", rc.ID, err)
		}
	}
	n.wg.Add(3)
	go n.acceptRep()
	go n.acceptClients()
	go n.electionLoop()
	return n, nil
}

// openFollowerStoresLocked opens this node's per-stream stores for
// follower-mode writes. Stale on-disk content (a previous incarnation's
// bytes, no longer position-aligned with the fresh repLog) is truncated:
// the leader re-seeds us with a reset + snapshot anyway.
func (n *ReplicaNode) openFollowerStoresLocked() error {
	streams := nstreams(n.scfg)
	n.fstores = make([]*journal.Store, streams)
	for i := 0; i < streams; i++ {
		st, err := journal.OpenStore(streamDir(n.cfg.Dir, i), journal.SyncCommit)
		if err != nil {
			return err
		}
		v := n.log.view(i)
		if tail, _ := io.ReadAll(st.Tail()); v.pos == v.base && v.buf == nil &&
			(st.Snapshot() != nil || len(tail) > 0) && v.snap == nil {
			if err := st.Rotate(nil); err != nil {
				st.Close()
				return err
			}
		}
		n.fstores[i] = st
	}
	return nil
}

// closeFollowerStoresLocked closes the follower-mode stores (promotion
// reopens stream 0 for the server; demotion reopens them all).
func (n *ReplicaNode) closeFollowerStoresLocked() {
	for _, st := range n.fstores {
		if st != nil {
			st.Close()
		}
	}
	n.fstores = nil
}

// becomeLeaderLocked assumes leadership of term: reopen the stores in
// server mode with replication mirrors installed, run the ordinary durable
// restart over them (rollback fence, lane top-up, session grace — all
// mirrored to the repLog before any sender ships a byte), and start the
// per-peer senders. bootstrap marks the startup leadership of replica 0.
// Caller holds n.mu.
func (n *ReplicaNode) becomeLeaderLocked(term uint64, bootstrap bool) error {
	n.closeFollowerStoresLocked()
	st0, err := journal.OpenStore(n.cfg.Dir, journal.SyncCommit)
	if err != nil {
		return err
	}
	tail, _ := io.ReadAll(st0.Tail())
	hadState := st0.Snapshot() != nil || len(tail) > 0
	st0.SetMirror(func(p []byte) { n.log.appendLocal(0, p) })
	cfg := n.scfg
	cfg.Persist = st0
	if cfg.Shards > 1 {
		cfg.laneStore = func(k int, st *journal.Store) {
			st.SetMirror(func(p []byte) { n.log.appendLocal(1+k, p) })
		}
	}
	srv, err := New(cfg)
	if err != nil {
		st0.Close()
		return fmt.Errorf("promote: %w", err)
	}
	srv.replLog = n.log
	srv.replTerm = term
	srv.replQuorum = n.cfg.Quorum
	srv.ArmSessionGrace()
	if bootstrap && hadState {
		// A whole-group cold restart: this node's repLog starts empty while
		// its disk does not, so followers seeded from the buffer would miss
		// the recovered prefix. Rotating folds that prefix into a snapshot
		// at the new segment base, which the first-contact reset then ships.
		srv.ForceRotate()
	}
	n.term = term
	n.votedFor = n.cfg.ID
	n.role = roleLeader
	n.leaderID = n.cfg.ID
	n.srv = srv
	n.leadStop = make(chan struct{})
	var peers []int
	for p := range n.cfg.Peers {
		if p != n.cfg.ID {
			peers = append(peers, p)
		}
	}
	n.log.beginLeadership(peers)
	for _, p := range peers {
		n.wg.Add(1)
		go n.runSender(p, term, n.leadStop)
	}
	if !bootstrap {
		n.mFailovers.Inc()
	}
	n.logf("replica %d: leading term %d (quorum %d/%d)", n.cfg.ID, term, n.cfg.Quorum, len(n.cfg.Peers))
	if n.cfg.OnPromote != nil {
		go n.cfg.OnPromote(srv)
	}
	return nil
}

// demoteLocked ends a leadership: stop the senders, fail the quorum waiters
// (they hold the server lock — aborting first is what lets Close drain),
// close the server and its stores, and reopen follower-mode stores. Caller
// holds n.mu.
func (n *ReplicaNode) demoteLocked() {
	if n.role != roleLeader {
		return
	}
	n.role = roleFollower
	n.leaderID = -1
	close(n.leadStop)
	n.log.abortWaiters()
	srv := n.srv
	n.srv = nil
	st0 := srv.cfg.Persist
	srv.Close() // also closes the lane stores it owns
	st0.SetMirror(nil)
	st0.Close()
	if !n.closed {
		if err := n.openFollowerStoresLocked(); err != nil {
			n.logf("replica %d: reopen follower stores: %v", n.cfg.ID, err)
		}
	}
	n.lastHeard = time.Now()
	n.logf("replica %d: stepped down", n.cfg.ID)
}

func (n *ReplicaNode) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

// Leader reports the node's current belief: its own role and the last known
// leader id (-1 when unknown).
func (n *ReplicaNode) Leader() (leading bool, leaderID int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role == roleLeader, n.leaderID
}

// Server returns the service this node runs while leading (nil otherwise).
func (n *ReplicaNode) Server() *Server {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.srv
}

// Term returns the node's current term.
func (n *ReplicaNode) Term() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.term
}

// ClientAddr returns this node's client-facing address.
func (n *ReplicaNode) ClientAddr() string { return n.clientLn.Addr().String() }

// RepAddr returns this node's replication address.
func (n *ReplicaNode) RepAddr() string { return n.repLn.Addr().String() }

// Kill crash-stops the node: listeners close, the leadership (if any) is
// torn down, stores close. The chaos harness uses it to kill a leader
// mid-round.
func (n *ReplicaNode) Kill() error { return n.Close() }

// Close stops the node and releases every resource.
func (n *ReplicaNode) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	close(n.stop)
	n.demoteLocked()
	n.closeFollowerStoresLocked()
	for conn := range n.conns {
		conn.Close()
	}
	n.mu.Unlock()
	n.repLn.Close()
	n.clientLn.Close()
	n.wg.Wait()
	return nil
}

// track registers a connection for force-close at Close; reports false when
// the node is already closed (caller must drop the connection).
func (n *ReplicaNode) track(conn net.Conn) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return false
	}
	n.conns[conn] = struct{}{}
	return true
}

func (n *ReplicaNode) untrack(conn net.Conn) {
	n.mu.Lock()
	delete(n.conns, conn)
	n.mu.Unlock()
}

// acceptClients serves the client-facing listener. While leading,
// connections are handed to the server; otherwise each gets a not-leader
// redirect naming the best-known leader and is dropped, which is what
// drives the client's failover.
func (n *ReplicaNode) acceptClients() {
	defer n.wg.Done()
	for {
		conn, err := n.clientLn.Accept()
		if err != nil {
			return
		}
		n.mu.Lock()
		srv, leader := n.srv, n.leaderID
		n.mu.Unlock()
		if srv != nil {
			srv.ServeConn(conn)
			continue
		}
		n.wg.Add(1)
		go n.redirect(conn, leader)
	}
}

// redirect answers one request on a non-leader connection with a typed
// not-leader error (carrying the leader's client address when known) and
// closes it.
func (n *ReplicaNode) redirect(conn net.Conn, leader int) {
	defer n.wg.Done()
	defer conn.Close()
	if !n.track(conn) {
		return
	}
	defer n.untrack(conn)
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := wire.DecodeRequest(conn); err != nil {
		return
	}
	resp := wire.Response{
		Err:  fmt.Sprintf("replica %d is not the leader", n.cfg.ID),
		Code: wire.CodeNotLeader,
	}
	if leader >= 0 && leader != n.cfg.ID {
		resp.Leader = n.cfg.ClientAddrs[leader]
	}
	_ = wire.EncodeResponse(conn, &resp)
}

// acceptRep serves the replication listener: leader appends and heartbeats,
// vote requests, catch-up fetches.
func (n *ReplicaNode) acceptRep() {
	defer n.wg.Done()
	for {
		conn, err := n.repLn.Accept()
		if err != nil {
			return
		}
		n.wg.Add(1)
		go n.handleRep(conn)
	}
}

func (n *ReplicaNode) handleRep(conn net.Conn) {
	defer n.wg.Done()
	defer conn.Close()
	if !n.track(conn) {
		return
	}
	defer n.untrack(conn)
	for {
		select {
		case <-n.stop:
			return
		default:
		}
		conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		msg, err := wire.DecodeRep(conn)
		if err != nil {
			return
		}
		ack := n.applyRep(msg)
		conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
		if err := wire.EncodeRepAck(conn, &ack); err != nil {
			return
		}
	}
}

// applyRep processes one replication message under the node lock: term
// fencing first (a newer term demotes a leader on the spot), then the
// per-type handling.
func (n *ReplicaNode) applyRep(msg *wire.RepMsg) wire.RepAck {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return wire.RepAck{OK: false, Term: n.term, Err: "replica closed"}
	}
	if msg.Term > n.term {
		n.term = msg.Term
		n.votedFor = -1
		if n.role == roleLeader {
			n.demoteLocked()
		} else {
			n.role = roleFollower
		}
	}
	if msg.Term < n.term {
		return wire.RepAck{OK: false, Term: n.term}
	}
	switch msg.Type {
	case wire.RepVoteReq:
		return n.voteLocked(msg)
	case wire.RepFetch:
		return n.serveFetchLocked(msg)
	}
	// Leader-stream traffic below. A leader refusing its own term's
	// messages is unreachable (one leader per term), but refuse defensively
	// rather than corrupt the stores the server owns.
	if n.role == roleLeader {
		return wire.RepAck{OK: false, Term: n.term, Err: "already leading this term"}
	}
	n.role = roleFollower
	n.leaderID = msg.From
	n.lastHeard = time.Now()
	switch msg.Type {
	case wire.RepSync:
		return wire.RepAck{OK: true, Term: n.term, Offsets: n.log.positions()}
	case wire.RepHeartbeat:
		return wire.RepAck{OK: true, Term: n.term}
	case wire.RepRotate:
		if msg.Stream < 0 || msg.Stream >= len(n.fstores) {
			return wire.RepAck{OK: false, Term: n.term, Err: fmt.Sprintf("no stream %d", msg.Stream)}
		}
		if err := n.fstores[msg.Stream].Rotate(msg.Snapshot); err != nil {
			return wire.RepAck{OK: false, Term: n.term, Err: err.Error()}
		}
		n.log.resetStream(msg.Stream, msg.Offset, msg.Snapshot)
		return wire.RepAck{OK: true, Term: n.term, Offset: msg.Offset}
	case wire.RepAppend:
		if msg.Stream < 0 || msg.Stream >= len(n.fstores) {
			return wire.RepAck{OK: false, Term: n.term, Err: fmt.Sprintf("no stream %d", msg.Stream)}
		}
		v := n.log.view(msg.Stream)
		if msg.Offset != v.pos {
			// Position mismatch: report where we are so the sender can
			// rewind or reset.
			return wire.RepAck{OK: false, Term: n.term, Offset: v.pos}
		}
		st := n.fstores[msg.Stream]
		if _, err := st.Write(msg.Data); err != nil {
			return wire.RepAck{OK: false, Term: n.term, Offset: v.pos, Err: err.Error()}
		}
		if err := st.Sync(); err != nil {
			return wire.RepAck{OK: false, Term: n.term, Offset: v.pos, Err: err.Error()}
		}
		n.log.extend(msg.Stream, msg.Data)
		return wire.RepAck{OK: true, Term: n.term, Offset: v.pos + int64(len(msg.Data))}
	default:
		return wire.RepAck{OK: false, Term: n.term, Err: fmt.Sprintf("unknown message %v", msg.Type)}
	}
}

// voteLocked decides one vote request: grant iff this term's vote is free
// (or already the candidate's) and the candidate's streams are elementwise
// at least ours — the rule that makes every quorum-committed byte survive
// into the next leadership. A denial carries our positions as the
// candidate's catch-up hint.
func (n *ReplicaNode) voteLocked(msg *wire.RepMsg) wire.RepAck {
	mine := n.log.positions()
	if n.role == roleLeader || (n.votedFor != -1 && n.votedFor != msg.From) {
		return wire.RepAck{OK: false, Term: n.term, Offsets: mine}
	}
	for i, p := range mine {
		if i >= len(msg.Offsets) || msg.Offsets[i] < p {
			return wire.RepAck{OK: false, Term: n.term, Offsets: mine}
		}
	}
	n.votedFor = msg.From
	n.lastHeard = time.Now() // a granted vote defers our own candidacy
	return wire.RepAck{OK: true, Term: n.term, Offsets: mine}
}

// serveFetchLocked answers a catch-up fetch from our retained stream state:
// bytes from the requested offset, or — when the offset predates our
// segment base — the whole segment (snapshot + buffer) as a reset.
func (n *ReplicaNode) serveFetchLocked(msg *wire.RepMsg) wire.RepAck {
	if msg.Stream < 0 || msg.Stream >= len(n.log.streams) {
		return wire.RepAck{OK: false, Term: n.term, Err: fmt.Sprintf("no stream %d", msg.Stream)}
	}
	v := n.log.view(msg.Stream)
	if msg.Offset < v.base {
		return wire.RepAck{OK: true, Term: n.term, Reset: true, Offset: v.base, Snapshot: v.snap, Data: v.buf}
	}
	if msg.Offset > v.pos {
		return wire.RepAck{OK: false, Term: n.term, Offset: v.pos, Err: "offset beyond stream"}
	}
	return wire.RepAck{OK: true, Term: n.term, Offset: msg.Offset, Data: v.buf[msg.Offset-v.base:]}
}

// repSendChunk bounds one RepAppend payload; large tails ship as several
// frames so a slow link never pins one oversized write.
const repSendChunk = 256 << 10

// runSender replicates this leadership's streams to one peer: a serial
// dial → sync → reconcile → stream loop that survives connection failures
// and ends with the leadership. The first successful contact always resets
// the peer — the only way, with raw byte streams, to be sure a previous
// leader's uncommitted tail is not lurking beyond a matching position.
func (n *ReplicaNode) runSender(peer int, term uint64, stop chan struct{}) {
	defer n.wg.Done()
	kick := n.log.kickChan(peer)
	resetDone := false
	for {
		select {
		case <-stop:
			return
		default:
		}
		conn, err := n.cfg.Dial(n.cfg.Peers[peer])
		if err != nil {
			if !n.senderWait(stop, kick) {
				return
			}
			continue
		}
		n.senderConversation(conn, peer, term, stop, kick, &resetDone)
		conn.Close()
		if !n.senderWait(stop, kick) {
			return
		}
	}
}

// senderWait sleeps one heartbeat (or until kicked/stopped) between dials.
func (n *ReplicaNode) senderWait(stop chan struct{}, kick chan struct{}) bool {
	select {
	case <-stop:
		return false
	case <-time.After(n.cfg.HeartbeatEvery):
	case <-kick:
	}
	return true
}

// roundTrip runs one request/ack exchange with deadlines.
func (n *ReplicaNode) roundTrip(conn net.Conn, msg *wire.RepMsg) (*wire.RepAck, error) {
	conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
	if err := wire.EncodeRep(conn, msg); err != nil {
		return nil, err
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	return wire.DecodeRepAck(conn)
}

// senderConversation drives one connection's replication: sync positions,
// reconcile every stream (reset on first contact or divergence, then chunked
// appends), then idle on heartbeats until new bytes arrive. Returns when the
// connection errors, the peer fences us with a newer term, or the
// leadership ends.
func (n *ReplicaNode) senderConversation(conn net.Conn, peer int, term uint64, stop chan struct{}, kick chan struct{}, resetDone *bool) {
	ack, err := n.roundTrip(conn, &wire.RepMsg{Type: wire.RepSync, Term: term, From: n.cfg.ID})
	if err != nil {
		return
	}
	if !ack.OK {
		n.maybeStepDown(ack.Term, term)
		return
	}
	streams := len(n.log.streams)
	fpos := make([]int64, streams)
	copy(fpos, ack.Offsets)
	// One forced reset per stream on the leadership's first contact; later
	// resets happen only on positional divergence.
	wasReset := make([]bool, streams)
	for i := range wasReset {
		wasReset[i] = *resetDone
	}
	for {
		for i := 0; i < streams; i++ {
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := n.log.view(i)
				if !wasReset[i] || fpos[i] < v.base || fpos[i] > v.pos {
					rack, err := n.roundTrip(conn, &wire.RepMsg{
						Type: wire.RepRotate, Term: term, From: n.cfg.ID,
						Stream: i, Offset: v.base, Snapshot: v.snap,
					})
					if err != nil {
						return
					}
					if !rack.OK {
						n.maybeStepDown(rack.Term, term)
						return
					}
					fpos[i] = rack.Offset
					wasReset[i] = true
				}
				if fpos[i] == v.pos {
					n.log.ackPeer(peer, i, fpos[i])
					break
				}
				chunk := v.buf[fpos[i]-v.base:]
				if len(chunk) > repSendChunk {
					chunk = chunk[:repSendChunk]
				}
				aack, err := n.roundTrip(conn, &wire.RepMsg{
					Type: wire.RepAppend, Term: term, From: n.cfg.ID,
					Stream: i, Offset: fpos[i], Data: chunk,
				})
				if err != nil {
					return
				}
				if !aack.OK {
					if n.maybeStepDown(aack.Term, term) {
						return
					}
					fpos[i] = aack.Offset // rewind to the peer's actual position
					continue
				}
				fpos[i] = aack.Offset
				n.log.ackPeer(peer, i, fpos[i])
			}
		}
		// Once every stream reconciled at least once, the peer's content is
		// ours: later divergence can only come from a newer leader, whose
		// term fences us off anyway.
		*resetDone = true
		// Idle until new bytes or the heartbeat interval.
		select {
		case <-stop:
			return
		case <-kick:
		case <-time.After(n.cfg.HeartbeatEvery):
			hack, err := n.roundTrip(conn, &wire.RepMsg{Type: wire.RepHeartbeat, Term: term, From: n.cfg.ID})
			if err != nil {
				return
			}
			if !hack.OK {
				n.maybeStepDown(hack.Term, term)
				return
			}
		}
	}
}

// maybeStepDown demotes this node when a peer reported a newer term than
// the leadership the caller is driving. Returns true when the refusal was a
// term fence (so the sender must exit).
func (n *ReplicaNode) maybeStepDown(peerTerm, myTerm uint64) bool {
	if peerTerm <= myTerm {
		return false
	}
	n.mu.Lock()
	if peerTerm > n.term {
		n.term = peerTerm
		n.votedFor = -1
	}
	if n.role == roleLeader && n.srv != nil {
		n.demoteLocked()
	}
	n.mu.Unlock()
	return true
}
