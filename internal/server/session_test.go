package server_test

// Session-lease, dedup, and barrier-deadline behavior (wire protocol v2).

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/object"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/internal/wire"
)

// startServerCfg is startServer with fault-tolerance knobs.
func startServerCfg(t *testing.T, players, good int, grace, deadline time.Duration) (addr string, tokens []string, srv *server.Server) {
	t.Helper()
	u, err := object.NewPlanted(object.Planted{M: 32, Good: good}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	tokens = make([]string, players)
	for i := range tokens {
		tokens[i] = "tok"
	}
	srv, err = server.New(server.Config{
		Universe: u, Tokens: tokens, Alpha: 1, Beta: u.Beta(),
		SessionGrace: grace, BarrierDeadline: deadline,
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err = srv.Start("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr, tokens, srv
}

func fastOpts() client.Options {
	return client.Options{
		Retries: 6, BackoffBase: time.Millisecond, BackoffMax: 10 * time.Millisecond,
		CallTimeout: 5 * time.Second,
	}
}

func TestSessionResumeAfterAbort(t *testing.T) {
	addr, _, srv := startServerCfg(t, 2, 4, 5*time.Second, 0)
	c0, err := client.DialOptions(addr, 0, "tok", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c1, err := client.DialOptions(addr, 1, "tok", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	if _, err := c0.Probe(0); err != nil {
		t.Fatal(err)
	}
	// Crash the transport; the next call must reconnect and resume the
	// session transparently.
	c0.Abort()
	if _, err := c0.Probe(1); err != nil {
		t.Fatalf("probe after abort: %v", err)
	}
	if err := c0.Post(1, 1, false); err != nil {
		t.Fatalf("post after abort: %v", err)
	}

	// The resumed session still participates in barriers.
	done := make(chan error, 1)
	go func() {
		_, err := c1.Barrier()
		done <- err
	}()
	if _, err := c0.Barrier(); err != nil {
		t.Fatalf("barrier after resume: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := c0.Err(); err != nil {
		t.Fatalf("sticky error after successful resume: %v", err)
	}

	probes, _, _, _ := srv.Stats()
	if probes[0] != 2 {
		t.Fatalf("server charged %d probes to player 0, want 2", probes[0])
	}
}

func TestSessionLeaseExpiryActsAsDone(t *testing.T) {
	addr, _, srv := startServerCfg(t, 2, 4, 30*time.Millisecond, 0)
	c0, err := client.DialOptions(addr, 0, "tok", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c1, err := client.DialOptions(addr, 1, "tok", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	// Player 1 vanishes past its lease: the server deregisters it, so
	// player 0's barrier completes without it.
	c1.Abort()
	time.Sleep(100 * time.Millisecond)
	if round, err := c0.Barrier(); err != nil || round != 1 {
		t.Fatalf("barrier without expired player: round %d, err %v", round, err)
	}

	// Player 1's session is gone; its resume must fail permanently (the
	// fresh Hello trips "already registered") and the error must stick.
	if _, err := c1.Probe(0); err == nil {
		t.Fatal("probe on expired session succeeded")
	}
	if err := c1.Err(); err == nil {
		t.Fatal("expired session left no sticky error")
	}
	if srv.Round() != 1 {
		t.Fatalf("round = %d, want 1", srv.Round())
	}
}

// rawSession drives the wire protocol by hand to exercise retransmission.
// Multi-frame connections speak the v6 stream codecs, like a real client.
type rawSession struct {
	t    *testing.T
	conn net.Conn
	enc  *wire.StreamEncoder
	dec  *wire.StreamDecoder
}

func rawDial(t *testing.T, addr string) *rawSession {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &rawSession{
		t: t, conn: conn,
		enc: wire.NewStreamEncoder(conn),
		dec: wire.NewStreamDecoder(bufio.NewReader(conn)),
	}
}

func (r *rawSession) roundTrip(req wire.Request) *wire.Response {
	r.t.Helper()
	if err := r.enc.EncodeRequest(&req); err != nil {
		r.t.Fatal(err)
	}
	resp := new(wire.Response)
	if err := r.dec.DecodeResponse(resp); err != nil {
		r.t.Fatal(err)
	}
	return resp
}

func TestRetransmittedProbeChargedOnce(t *testing.T) {
	addr, _, srv := startServerCfg(t, 1, 4, 5*time.Second, 0)
	const session = 0xdecaf

	hello := wire.Request{
		Type: wire.ReqHello, Player: 0, Token: "tok",
		Version: wire.Version, Session: session,
	}
	c1 := rawDial(t, addr)
	if resp := c1.roundTrip(hello); resp.Err != "" {
		t.Fatal(resp.Err)
	}
	first := c1.roundTrip(wire.Request{Type: wire.ReqProbe, Object: 3, Session: session, Seq: 1})
	if first.Err != "" {
		t.Fatal(first.Err)
	}

	// Simulate a lost response: a second connection resumes the session and
	// retransmits the same sequence number. The server must replay the
	// recorded response, not execute (and charge) the probe again.
	c2 := rawDial(t, addr)
	if resp := c2.roundTrip(hello); resp.Err != "" {
		t.Fatalf("resume: %v", resp.Err)
	}
	replay := c2.roundTrip(wire.Request{Type: wire.ReqProbe, Object: 3, Session: session, Seq: 1})
	if replay.Err != "" {
		t.Fatal(replay.Err)
	}
	if replay.Value != first.Value || replay.Good != first.Good || replay.Cost != first.Cost {
		t.Fatalf("replayed response %+v differs from original %+v", replay, first)
	}
	probes, _, _, _ := srv.Stats()
	if probes[0] != 1 {
		t.Fatalf("server charged %d probes, want 1 (dedup failed)", probes[0])
	}

	// Stale and gapped sequence numbers are rejected outright.
	if resp := c2.roundTrip(wire.Request{Type: wire.ReqProbe, Object: 3, Session: session, Seq: 0}); resp.Err == "" {
		t.Fatal("seq 0 accepted")
	}
	if resp := c2.roundTrip(wire.Request{Type: wire.ReqProbe, Object: 3, Session: session, Seq: 5}); !strings.Contains(resp.Err, "gap") {
		t.Fatalf("sequence gap accepted: %+v", resp)
	}
}

func TestSessionHijackRejected(t *testing.T) {
	addr, _, _ := startServerCfg(t, 2, 4, 5*time.Second, 0)
	const session = 0xbeef

	c0 := rawDial(t, addr)
	if resp := c0.roundTrip(wire.Request{
		Type: wire.ReqHello, Player: 0, Token: "tok",
		Version: wire.Version, Session: session,
	}); resp.Err != "" {
		t.Fatal(resp.Err)
	}
	// Player 1 presenting player 0's session id must be turned away.
	c1 := rawDial(t, addr)
	resp := c1.roundTrip(wire.Request{
		Type: wire.ReqHello, Player: 1, Token: "tok",
		Version: wire.Version, Session: session,
	})
	if !strings.Contains(resp.Err, "another player") {
		t.Fatalf("cross-player session resume accepted: %+v", resp)
	}
}

func TestBarrierDeadlineForceDonesStragglers(t *testing.T) {
	addr, _, srv := startServerCfg(t, 2, 4, time.Minute, 80*time.Millisecond)
	c0, err := client.DialOptions(addr, 0, "tok", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c1, err := client.DialOptions(addr, 1, "tok", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	// Player 1 posts but never barriers. Without the deadline player 0
	// would hang forever (player 1's long session grace keeps it active).
	if err := c1.Post(2, 1, false); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	round, err := c0.Barrier()
	if err != nil {
		t.Fatalf("barrier: %v", err)
	}
	if round != 1 {
		t.Fatalf("round = %d, want 1", round)
	}
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond || elapsed > 5*time.Second {
		t.Fatalf("barrier returned after %v; want ~80ms deadline", elapsed)
	}
	fd := srv.ForceDone()
	if r, ok := fd[1]; !ok || r != 0 {
		t.Fatalf("force-done map = %v, want player 1 in round 0", fd)
	}

	// The straggler's round-0 (negative) post still committed with the round.
	if got := c0.NegativeCount(2); got == 0 {
		t.Fatal("straggler's committed post lost")
	}

	// The expelled player is out: barrier is an application error (not a
	// transport failure, so the client surfaces it immediately)…
	if _, err := c1.Barrier(); err == nil {
		t.Fatal("barrier from force-done player succeeded")
	}
	// …and a fresh registration attempt is refused.
	c2, err := client.DialOptions(addr, 1, "tok", fastOpts())
	if err == nil {
		c2.Close()
		t.Fatal("force-done player re-registered")
	}
	if !strings.Contains(err.Error(), "force-done") {
		t.Fatalf("unexpected rejection: %v", err)
	}
}

func TestBarrierDeadlineNotArmedWhenAllArrive(t *testing.T) {
	// A deadline must not fire across round boundaries: rounds that
	// complete promptly never expel anyone.
	addr, _, srv := startServerCfg(t, 2, 4, time.Minute, 50*time.Millisecond)
	c0, err := client.DialOptions(addr, 0, "tok", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c1, err := client.DialOptions(addr, 1, "tok", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	for round := 0; round < 3; round++ {
		done := make(chan error, 1)
		go func() {
			_, err := c1.Barrier()
			done <- err
		}()
		if _, err := c0.Barrier(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := <-done; err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	time.Sleep(120 * time.Millisecond) // any stale timer would fire now
	if fd := srv.ForceDone(); len(fd) != 0 {
		t.Fatalf("spurious force-done: %v", fd)
	}
	if srv.Round() != 3 {
		t.Fatalf("round = %d, want 3", srv.Round())
	}
}
