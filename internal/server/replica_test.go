package server_test

import (
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/faultnet"
	"repro/internal/object"
	"repro/internal/rng"
	"repro/internal/server"
)

func TestReplicaValidate(t *testing.T) {
	base := func() server.ReplicaConfig {
		return server.ReplicaConfig{
			ID:          0,
			Peers:       []string{"a", "b", "c"},
			ClientAddrs: []string{"ca", "cb", "cc"},
			Dir:         t.TempDir(),
		}
	}
	cases := []struct {
		name string
		mut  func(*server.ReplicaConfig)
		code string
	}{
		{"ok", func(rc *server.ReplicaConfig) {}, ""},
		{"empty group", func(rc *server.ReplicaConfig) { rc.Peers = nil; rc.ClientAddrs = nil }, "empty-group"},
		{"even group", func(rc *server.ReplicaConfig) {
			rc.Peers = []string{"a", "b"}
			rc.ClientAddrs = []string{"ca", "cb"}
		}, "even-group"},
		{"id out of range", func(rc *server.ReplicaConfig) { rc.ID = 3 }, "id-out-of-range"},
		{"addr mismatch", func(rc *server.ReplicaConfig) { rc.ClientAddrs = rc.ClientAddrs[:2] }, "addr-mismatch"},
		{"quorum too large", func(rc *server.ReplicaConfig) { rc.Quorum = 4 }, "quorum-too-large"},
		{"quorum below majority", func(rc *server.ReplicaConfig) { rc.Quorum = 1 }, "quorum-too-small"},
		{"missing dir", func(rc *server.ReplicaConfig) { rc.Dir = "" }, "missing-dir"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rc := base()
			tc.mut(&rc)
			err := rc.Validate()
			if tc.code == "" {
				if err != nil {
					t.Fatalf("Validate: %v", err)
				}
				if rc.Quorum != 2 {
					t.Fatalf("default quorum = %d, want majority 2", rc.Quorum)
				}
				return
			}
			var ce *server.ReplicaConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("Validate = %v, want *ReplicaConfigError", err)
			}
			if ce.Code != tc.code {
				t.Fatalf("code = %q, want %q", ce.Code, tc.code)
			}
		})
	}
}

// replicaGroup is a test harness: n replica nodes on loopback listeners.
type replicaGroup struct {
	nodes       []*server.ReplicaNode
	clientAddrs []string
}

// startReplicaGroup launches an n-member group over the given service
// config (Persist knobs unset; the nodes own their stores). mutate, when
// non-nil, tweaks each node's ReplicaConfig before start.
func startReplicaGroup(t testing.TB, n int, scfg server.Config, mutate func(i int, rc *server.ReplicaConfig)) *replicaGroup {
	t.Helper()
	root := t.TempDir()
	repLns := make([]net.Listener, n)
	clientLns := make([]net.Listener, n)
	peers := make([]string, n)
	clients := make([]string, n)
	for i := 0; i < n; i++ {
		var err error
		if repLns[i], err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		if clientLns[i], err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		peers[i] = repLns[i].Addr().String()
		clients[i] = clientLns[i].Addr().String()
	}
	g := &replicaGroup{nodes: make([]*server.ReplicaNode, n), clientAddrs: clients}
	for i := 0; i < n; i++ {
		rc := server.ReplicaConfig{
			ID:              i,
			Peers:           peers,
			ClientAddrs:     clients,
			Dir:             filepath.Join(root, fmt.Sprintf("replica-%d", i)),
			HeartbeatEvery:  10 * time.Millisecond,
			ElectionTimeout: 60 * time.Millisecond,
			RepListener:     repLns[i],
			ClientListener:  clientLns[i],
			Logf:            t.Logf,
		}
		if mutate != nil {
			mutate(i, &rc)
		}
		node, err := server.StartReplica(rc, scfg)
		if err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
		g.nodes[i] = node
	}
	t.Cleanup(func() {
		for _, node := range g.nodes {
			if node != nil {
				node.Close()
			}
		}
	})
	return g
}

// leader returns the current leader node, waiting up to 5s for one.
func (g *replicaGroup) leader(t testing.TB) *server.ReplicaNode {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, node := range g.nodes {
			if node == nil {
				continue
			}
			if leading, _ := node.Leader(); leading {
				return node
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no leader elected within 5s")
	return nil
}

// replicaUniverse is the shared deterministic ground truth of these tests.
func replicaUniverse(t *testing.T) *object.Universe {
	t.Helper()
	u, err := object.NewPlanted(object.Planted{M: 24, Good: 6}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// runReplicaWorkload drives players through rounds of probe + post +
// barrier against the group, returning each client's first error.
func runReplicaWorkload(t *testing.T, g *replicaGroup, tokens []string, rounds int) {
	t.Helper()
	errs := make(chan error, len(tokens))
	for p := range tokens {
		go func(p int) {
			c, err := client.DialOptions(g.clientAddrs[0], p, tokens[p], client.Options{
				Fallbacks:   g.clientAddrs[1:],
				Retries:     40,
				BackoffBase: 2 * time.Millisecond,
				BackoffMax:  50 * time.Millisecond,
			})
			if err != nil {
				errs <- fmt.Errorf("player %d: dial: %w", p, err)
				return
			}
			defer c.Close()
			for r := 0; r < rounds; r++ {
				obj := (p + r*len(tokens)) % c.M()
				if _, err := c.Probe(obj); err != nil {
					errs <- fmt.Errorf("player %d round %d: probe: %w", p, r, err)
					return
				}
				if _, err := c.PostBatch([]client.BatchPost{
					{Object: obj, Value: float64(obj), Positive: p%2 == 0},
				}, true); err != nil {
					errs <- fmt.Errorf("player %d round %d: batch: %w", p, r, err)
					return
				}
			}
			errs <- c.Done()
		}(p)
	}
	for range tokens {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// singleDigest runs the identical workload against a plain unreplicated
// server and returns its digest — the equivalence oracle.
func singleDigest(t *testing.T, scfg server.Config, tokens []string, rounds int) []byte {
	t.Helper()
	srv, err := server.New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	g := &replicaGroup{clientAddrs: []string{addr}}
	runReplicaWorkload(t, g, tokens, rounds)
	return srv.Digest()
}

func TestReplicatedRoundCommit(t *testing.T) {
	u := replicaUniverse(t)
	tokens := []string{"t0", "t1", "t2"}
	scfg := server.Config{
		Universe: u, Tokens: tokens, Alpha: 1, Beta: u.Beta(),
		SessionGrace: 5 * time.Second,
	}
	const rounds = 5
	g := startReplicaGroup(t, 3, scfg, nil)
	runReplicaWorkload(t, g, tokens, rounds)

	ldr := g.leader(t)
	srv := ldr.Server()
	if srv == nil {
		t.Fatal("leader has no server")
	}
	if got := srv.Round(); got != rounds {
		t.Fatalf("leader round = %d, want %d", got, rounds)
	}
	want := singleDigest(t, scfg, tokens, rounds)
	if got := srv.Digest(); string(got) != string(want) {
		t.Fatalf("replicated digest differs from single-coordinator run")
	}
	probes, _, _, _ := srv.Stats()
	for p, n := range probes {
		if n != rounds {
			t.Fatalf("player %d charged %d probes, want %d (exactly-once billing)", p, n, rounds)
		}
	}
}

func TestLeaderFailover(t *testing.T) {
	u := replicaUniverse(t)
	tokens := []string{"t0", "t1", "t2"}
	scfg := server.Config{
		Universe: u, Tokens: tokens, Alpha: 1, Beta: u.Beta(),
		SessionGrace: 10 * time.Second,
	}
	const rounds = 8
	g := startReplicaGroup(t, 3, scfg, nil)

	// Kill the bootstrap leader mid-run: once it has committed a few
	// rounds, crash-stop it while the players keep going.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			srv := g.nodes[0].Server()
			if srv != nil && srv.Round() >= 3 {
				g.nodes[0].Kill()
				g.nodes[0] = nil
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	runReplicaWorkload(t, g, tokens, rounds)
	<-killed
	if g.nodes[0] != nil {
		t.Fatal("leader was never killed (round 3 not reached in time)")
	}

	ldr := g.leader(t)
	if leading, id := ldr.Leader(); !leading || id == 0 {
		t.Fatalf("leader after failover = %v/%d, want a non-0 survivor", leading, id)
	}
	srv := ldr.Server()
	if got := srv.Round(); got != rounds {
		t.Fatalf("round after failover = %d, want %d", got, rounds)
	}
	want := singleDigest(t, scfg, tokens, rounds)
	if got := srv.Digest(); string(got) != string(want) {
		t.Fatalf("post-failover digest differs from fault-free single-coordinator run")
	}
	probes, _, _, _ := srv.Stats()
	for p, n := range probes {
		if n != rounds {
			t.Fatalf("player %d charged %d probes across failover, want %d", p, n, rounds)
		}
	}
}

func TestLeaderIsolationStepDown(t *testing.T) {
	u := replicaUniverse(t)
	tokens := []string{"t0", "t1"}
	scfg := server.Config{
		Universe: u, Tokens: tokens, Alpha: 1, Beta: u.Beta(),
		SessionGrace: 10 * time.Second,
	}
	inj, err := faultnet.New(faultnet.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	const leaderLabel = 100
	g := startReplicaGroup(t, 3, scfg, func(i int, rc *server.ReplicaConfig) {
		if i == 0 {
			// The bootstrap leader's outbound replication runs through the
			// injector so the test can cut it one-way.
			rc.Dial = inj.Dialer(leaderLabel, nil)
		}
	})
	if leading, _ := g.nodes[0].Leader(); !leading {
		t.Fatal("node 0 did not bootstrap as leader")
	}

	// One-way partition: node 0 still hears its peers (reads work) but none
	// of its heartbeats or appends escape. The followers must elect a new
	// leader, whose higher-term traffic then demotes node 0.
	inj.Isolate(leaderLabel)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if leading, _ := g.nodes[0].Leader(); !leading {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if leading, _ := g.nodes[0].Leader(); leading {
		t.Fatal("isolated leader never stepped down")
	}
	ldr := g.leader(t)
	if leading, id := ldr.Leader(); !leading || id == 0 {
		t.Fatalf("new leader = %v/%d, want a different node", leading, id)
	}
	// Heal: node 0 rejoins as a follower of the new term and the group
	// still serves a full workload.
	inj.Heal(leaderLabel)
	runReplicaWorkload(t, g, tokens, 3)
	if got := g.leader(t).Server().Round(); got != 3 {
		t.Fatalf("round after heal = %d, want 3", got)
	}
}
