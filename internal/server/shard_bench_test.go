package server_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/client"
	"repro/internal/object"
	"repro/internal/rng"
	"repro/internal/server"
)

// benchShardCluster mirrors benchSetup but brings the server up with the
// given shard count and a client per player, so the 1/4/16-shard variants
// below differ only in lane count and the posting load actually contends.
func benchShardCluster(b *testing.B, shards, players int) []*client.Client {
	b.Helper()
	u, err := object.NewPlanted(object.Planted{M: 1024, Good: 1}, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	tokens := make([]string, players)
	for i := range tokens {
		tokens[i] = fmt.Sprintf("t%d", i)
	}
	srv, err := server.New(server.Config{
		Universe: u, Tokens: tokens, Alpha: 1, Beta: u.Beta(),
		Shards: shards,
	})
	if err != nil {
		b.Fatal(err)
	}
	addr, err := srv.Start("")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	clients := make([]*client.Client, players)
	for p := range clients {
		c, err := client.Dial(addr, p, tokens[p])
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { c.Close() })
		clients[p] = c
	}
	return clients
}

// BenchmarkShardedPostBatch measures one full posting round per iteration:
// eight players concurrently scatter a 128-report batch across the shard
// lanes and arrive at the round barrier, which commits via the per-round
// shard barrier. The shards-1 case is the classic single-frame v3 path
// serialized under the coordinator mutex; the sharded cases pipeline one
// frame per lane, each accepted under its own lane mutex. The spread is the
// scaling the parallel lane data plane buys under contention — on a
// single-CPU box (GOMAXPROCS=1) concurrent frames cannot overlap, so the
// sharded points instead price the per-lane framing overhead; run with
// multiple CPUs to see the contention win.
func BenchmarkShardedPostBatch(b *testing.B) {
	const players, perPlayer = 8, 128
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			clients := benchShardCluster(b, shards, players)
			batches := make([][]client.BatchPost, players)
			for p := range batches {
				batch := make([]client.BatchPost, perPlayer)
				for i := range batch {
					batch[i] = client.BatchPost{Object: (p*perPlayer + i*17) % 1024, Value: 1}
				}
				batches[p] = batch
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				errs := make([]error, players)
				for p, c := range clients {
					wg.Add(1)
					go func() {
						defer wg.Done()
						_, errs[p] = c.PostBatch(batches[p], true)
					}()
				}
				wg.Wait()
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkShardedWindowQuery measures the committed-round window read after
// a few sealed rounds: on a sharded server the count is a scatter-gather
// merge of per-lane windows (served from the per-lane read caches once warm).
func BenchmarkShardedWindowQuery(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			c := benchShardCluster(b, shards, 1)[0]
			const rounds = 8
			for r := 0; r < rounds; r++ {
				batch := make([]client.BatchPost, 32)
				for i := range batch {
					batch[i] = client.BatchPost{Object: (r*32 + i) % 1024, Value: 1, Positive: true}
				}
				if _, err := c.PostBatch(batch, true); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = c.CountVotesInWindow(0, rounds)
			}
		})
	}
}
