package server_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/journal"
	"repro/internal/object"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/internal/wire"
)

// startSharded starts a server with the given shard count over a planted
// LocalTesting universe.
func startSharded(t *testing.T, players, shards int, cfg func(*server.Config)) (string, *server.Server) {
	t.Helper()
	u, err := object.NewPlanted(object.Planted{M: 64, Good: 4}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	tokens := make([]string, players)
	for i := range tokens {
		tokens[i] = "tok"
	}
	sc := server.Config{
		Universe: u, Tokens: tokens, Alpha: 1, Beta: u.Beta(),
		Shards: shards,
	}
	if cfg != nil {
		cfg(&sc)
	}
	srv, err := server.New(sc)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr, srv
}

// runScript drives a deterministic multi-round script through real clients:
// every player posts a scripted mix of positives and negatives each round
// and ends it with a combined batch+barrier frame.
func runScript(t *testing.T, addr string, players, rounds int) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, players)
	for p := 0; p < players; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			c, err := client.Dial(addr, p, "tok")
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for r := 0; r < rounds; r++ {
				var batch []client.BatchPost
				// Two positives per round (the second exceeding the vote
				// budget in later rounds) and one negative, spread across
				// objects — and therefore shards — by player and round.
				o1 := (p*7 + r*13) % c.M()
				o2 := (p*11 + r*17 + 5) % c.M()
				o3 := (p*3 + r*29 + 9) % c.M()
				batch = append(batch,
					client.BatchPost{Object: o1, Value: 1, Positive: true},
					client.BatchPost{Object: o2, Value: 1, Positive: true},
					client.BatchPost{Object: o3, Value: 0, Positive: false},
				)
				if _, err := c.PostBatch(batch, true); err != nil {
					errs <- fmt.Errorf("player %d round %d: %w", p, r, err)
					return
				}
			}
			errs <- c.Done()
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardedDigestMatchesSingleShard pins the tentpole acceptance
// criterion at the server level: the same scripted traffic produces
// byte-identical digests on a 1-shard and a 4-shard server.
func TestShardedDigestMatchesSingleShard(t *testing.T) {
	const players, rounds = 6, 5
	addr1, srv1 := startSharded(t, players, 1, nil)
	runScript(t, addr1, players, rounds)
	addr4, srv4 := startSharded(t, players, 4, nil)
	runScript(t, addr4, players, rounds)
	d1, d4 := srv1.Digest(), srv4.Digest()
	if len(d1) == 0 {
		t.Fatal("empty digest")
	}
	if !bytes.Equal(d1, d4) {
		t.Fatalf("digest mismatch between 1-shard and 4-shard runs:\n1:\n%s\n4:\n%s", d1, d4)
	}
}

// TestShardedVoteCapAcrossShards checks the global admission pass: with the
// default budget f=1, a player posting positives on objects in different
// shards gets exactly one vote — the first in its own posting order — never
// one per shard.
func TestShardedVoteCapAcrossShards(t *testing.T) {
	addr, srv := startSharded(t, 1, 4, nil)
	c, err := client.Dial(addr, 0, "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Find two objects the shard map puts on different lanes.
	a, b := 0, -1
	for o := 1; o < c.M(); o++ {
		if wire.Shard(o, 4) != wire.Shard(a, 4) {
			b = o
			break
		}
	}
	if b < 0 {
		t.Fatal("no cross-shard object pair found")
	}
	if _, err := c.PostBatch([]client.BatchPost{
		{Object: a, Value: 1, Positive: true},
		{Object: b, Value: 1, Positive: true},
	}, true); err != nil {
		t.Fatal(err)
	}
	votes := c.Votes(0)
	if len(votes) != 1 {
		t.Fatalf("got %d votes across shards, want exactly 1 (budget f=1): %+v", len(votes), votes)
	}
	if votes[0].Object != a {
		t.Fatalf("vote landed on object %d, want the first-posted %d", votes[0].Object, a)
	}
	if n := srv.Round(); n != 1 {
		t.Fatalf("round = %d, want 1", n)
	}
}

// TestShardedScatterGatherReads compares every read path between a 1-shard
// and a 4-shard server after identical traffic, observed through an extra
// player that participates in barriers but never posts.
func TestShardedScatterGatherReads(t *testing.T) {
	const players, rounds = 4, 4
	addrA, _ := startSharded(t, players+1, 1, nil)
	addrB, _ := startSharded(t, players+1, 4, nil)
	var ca, cb *client.Client
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); runScript(t, addrA, players, rounds) }()
	go func() { defer wg.Done(); runScript(t, addrB, players, rounds) }()
	// The extra player must participate in barriers or rounds cannot
	// commit; give it a no-post barrier loop.
	var err error
	ca, err = client.Dial(addrA, players, "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	cb, err = client.Dial(addrB, players, "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer cb.Close()
	for r := 0; r < rounds; r++ {
		if _, err := ca.Barrier(); err != nil {
			t.Fatal(err)
		}
		if _, err := cb.Barrier(); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()

	for p := 0; p < players; p++ {
		va, vb := ca.Votes(p), cb.Votes(p)
		if len(va) != len(vb) {
			t.Fatalf("player %d: %d votes on 1-shard vs %d on 4-shard", p, len(va), len(vb))
		}
	}
	oa, ob := ca.VotedObjects(), cb.VotedObjects()
	if fmt.Sprint(oa) != fmt.Sprint(ob) {
		t.Fatalf("voted objects diverge: %v vs %v", oa, ob)
	}
	for _, o := range oa {
		if ca.VoteCount(o) != cb.VoteCount(o) {
			t.Fatalf("object %d: vote count %d vs %d", o, ca.VoteCount(o), cb.VoteCount(o))
		}
		if ca.NegativeCount(o) != cb.NegativeCount(o) {
			t.Fatalf("object %d: neg count %d vs %d", o, ca.NegativeCount(o), cb.NegativeCount(o))
		}
	}
	wa := ca.CountVotesInWindow(0, rounds)
	wb := cb.CountVotesInWindow(0, rounds)
	if fmt.Sprint(wa) != fmt.Sprint(wb) {
		t.Fatalf("window counts diverge:\n1-shard: %v\n4-shard: %v", wa, wb)
	}
}

// TestShardedPersistRecovery restarts a durable sharded server and checks
// the merged digest survives byte-for-byte, including across a snapshot
// rotation.
func TestShardedPersistRecovery(t *testing.T) {
	dir := t.TempDir()
	u, err := object.NewPlanted(object.Planted{M: 64, Good: 4}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	const players, rounds = 4, 5
	tokens := make([]string, players)
	for i := range tokens {
		tokens[i] = "tok"
	}
	st, err := journal.OpenStore(dir, journal.SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Universe: u, Tokens: tokens, Alpha: 1, Beta: u.Beta(),
		Shards: 4, Persist: st, SnapshotEvery: 2,
		SessionGrace: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("")
	if err != nil {
		t.Fatal(err)
	}
	runScript(t, addr, players, rounds)
	want := srv.Digest()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := journal.OpenStore(dir, journal.SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	srv2, err := server.New(server.Config{
		Universe: u, Tokens: tokens, Alpha: 1, Beta: u.Beta(),
		Shards: 4, Persist: st2, SnapshotEvery: 2,
		SessionGrace: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if got := srv2.Digest(); !bytes.Equal(got, want) {
		t.Fatalf("digest changed across restart:\nbefore:\n%s\nafter:\n%s", want, got)
	}
	if srv2.Round() != rounds {
		t.Fatalf("recovered round %d, want %d", srv2.Round(), rounds)
	}
}

// TestKillRestartShard bounces one shard mid-run: posts and reads for its
// objects block while it is down, resume after restart, and the final
// digest matches an unfaulted 1-shard run of the same script.
func TestKillRestartShard(t *testing.T) {
	const players, rounds = 4, 6
	dir := t.TempDir()
	st, err := journal.OpenStore(dir, journal.SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	addr, srv := startSharded(t, players, 4, func(sc *server.Config) {
		sc.Persist = st
		sc.SessionGrace = time.Minute
	})

	done := make(chan struct{})
	go func() {
		defer close(done)
		// Bounce shard 1 a few times while the script runs.
		for i := 0; i < 3; i++ {
			time.Sleep(20 * time.Millisecond)
			if err := srv.KillShard(1); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(10 * time.Millisecond)
			if err := srv.RestartShard(1); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	runScript(t, addr, players, rounds)
	<-done

	addr1, srv1 := startSharded(t, players, 1, nil)
	runScript(t, addr1, players, rounds)
	if got, want := srv.Digest(), srv1.Digest(); !bytes.Equal(got, want) {
		t.Fatalf("digest after shard bounces diverged from unfaulted 1-shard run:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if srv.Round() != rounds {
		t.Fatalf("round %d, want %d", srv.Round(), rounds)
	}
}

// TestSealRaceShardBounce is the race-detector stress for the parallel
// commit: eight lanes sealing concurrently (goroutine-per-lane feed +
// journal marker + EndRound + cache invalidate) while two shards are
// killed and restarted in a tight loop and a reader hammers window queries
// (cache rebuild/invalidate races). Run under -race this covers every
// cross-goroutine edge of the seal path; the digest must still match an
// unfaulted single-shard run of the same script.
func TestSealRaceShardBounce(t *testing.T) {
	const players, rounds = 6, 8
	dir := t.TempDir()
	st, err := journal.OpenStore(dir, journal.SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// One extra token for the reader below; Expected stays at the script's
	// player count so rounds never wait on it.
	addr, srv := startSharded(t, players+1, 8, func(sc *server.Config) {
		sc.Persist = st
		sc.SessionGrace = time.Minute
		sc.Expected = players
	})

	stop := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(2)
	go func() { // bounce two different lanes out of phase with each other
		defer aux.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := 1 + 2*(i%2) // shards 1 and 3
			if err := srv.KillShard(k); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(5 * time.Millisecond)
			if err := srv.RestartShard(k); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	go func() { // concurrent committed-round reads race the cache seal
		defer aux.Done()
		c, err := client.Dial(addr, players, "tok")
		if err != nil {
			t.Error(err)
			return
		}
		defer c.Close()
		// Done immediately: reads stay legal for a done player, and the
		// reader must never hold up the script's round barrier.
		if err := c.Done(); err != nil {
			t.Error(err)
			return
		}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.CountVotesInWindow(i%c.M(), 1+i%4)
		}
	}()

	runScript(t, addr, players, rounds)
	close(stop)
	aux.Wait()

	addr1, srv1 := startSharded(t, players, 1, nil)
	runScript(t, addr1, players, rounds)
	if got, want := srv.Digest(), srv1.Digest(); !bytes.Equal(got, want) {
		t.Fatalf("digest after seal-race bounces diverged from unfaulted 1-shard run:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if srv.Round() != rounds {
		t.Fatalf("round %d, want %d", srv.Round(), rounds)
	}
}

// TestShardedRejectsBestValue pins the constructor contract: sharding
// requires the FirstPositive mode of a LocalTesting universe.
func TestShardedRejectsBestValue(t *testing.T) {
	values := make([]float64, 16)
	for i := range values {
		values[i] = float64(i) / 16
	}
	u, err := object.NewUniverse(object.Config{Values: values, Beta: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	_, err = server.New(server.Config{
		Universe: u, Tokens: []string{"a"}, Shards: 4,
	})
	if err == nil {
		t.Fatal("Shards > 1 accepted on a BestValue universe")
	}
}
