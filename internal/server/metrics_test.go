package server_test

import (
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/client"
	"repro/internal/object"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/server"
)

func startMetricsServer(t *testing.T, players int) (addr string, srv *server.Server, reg *obs.Registry) {
	t.Helper()
	u, err := object.NewPlanted(object.Planted{M: 32, Good: 1}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	tokens := make([]string, players)
	for i := range tokens {
		tokens[i] = "tok"
	}
	reg = obs.NewRegistry()
	srv, err = server.New(server.Config{
		Universe: u, Tokens: tokens, Alpha: 1, Beta: u.Beta(),
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err = srv.Start("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr, srv, reg
}

// TestMetricsEndpointGolden runs a small deterministic workload against an
// instrumented server and pins the Prometheus text exposition served for
// it: exact counter lines for every deterministic metric, HELP/TYPE
// grouping, and the content type. Clients share the server's registry, so
// the scrape covers the server_*, billboard_*, and client_* families at
// once — exactly what cmd/billboard-server serves on -metrics-addr.
func TestMetricsEndpointGolden(t *testing.T) {
	addr, _, reg := startMetricsServer(t, 2)

	cs := make([]*client.Client, 2)
	for i := range cs {
		c, err := client.DialOptions(addr, i, "tok", client.Options{Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		cs[i] = c
	}
	for i, c := range cs {
		if _, err := c.Probe(i); err != nil { // objects 0 and 1 (bad: good is planted elsewhere at this seed or not — value irrelevant)
			t.Fatal(err)
		}
	}
	// Both players batch one post with the round barrier; the calls block
	// until both arrive, so they must run concurrently.
	var wg sync.WaitGroup
	for i, c := range cs {
		wg.Add(1)
		go func(i int, c *client.Client) {
			defer wg.Done()
			if _, err := c.PostBatch([]client.BatchPost{{Object: i, Value: 1, Positive: false}}, true); err != nil {
				t.Error(err)
			}
		}(i, c)
	}
	wg.Wait()
	// Two identical window reads: a cache miss then a cache hit.
	cs[0].CountVotesInWindow(0, 1)
	cs[0].CountVotesInWindow(0, 1)
	for _, c := range cs {
		if err := c.Done(); err != nil {
			t.Fatal(err)
		}
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	obs.Handler(reg).ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type = %q", ct)
	}
	body := rec.Body.String()

	// Family grouping: HELP and TYPE once, immediately above the samples.
	wantBlock := "# HELP server_rounds_total rounds committed\n" +
		"# TYPE server_rounds_total counter\n" +
		"server_rounds_total 1\n"
	if !strings.Contains(body, wantBlock) {
		t.Errorf("missing exposition block:\n%s\n--- in body ---\n%s", wantBlock, body)
	}

	// Every deterministic sample of the workload, as exact exposition lines.
	// (Latency histograms and byte counters vary run to run and are checked
	// structurally below.)
	for _, line := range []string{
		`server_connections_total 2`,
		`server_sessions_opened_total 2`,
		`server_sessions_resumed_total 0`,
		`server_sessions_expired_total 0`,
		`server_dedup_replays_total 0`,
		`server_force_done_total 0`,
		`server_requests_total{type="hello"} 2`,
		`server_requests_total{type="probe"} 2`,
		`server_requests_total{type="post-batch"} 2`,
		`server_requests_total{type="window"} 2`,
		`server_requests_total{type="done"} 2`,
		`server_requests_total{type="post"} 0`,
		`server_read_cache_hits_total 1`,
		`server_read_cache_misses_total 1`,
		`server_barrier_wait_seconds_count 2`,
		`server_request_seconds_count 10`,
		`billboard_posts_total 2`,
		`billboard_window_queries_total 1`,
		`billboard_index_rebuilds_total 0`,
		`client_dials_total 2`,
		`client_reconnects_total 0`,
		`client_retries_total 0`,
		`client_frames_sent_total 10`,
	} {
		if !strings.Contains(body, line+"\n") {
			t.Errorf("missing exposition line %q", line)
		}
	}

	// Structural checks on the nondeterministic families: histograms expose
	// cumulative buckets ending at +Inf, and the byte counters moved.
	if !strings.Contains(body, `server_request_seconds_bucket{le="+Inf"} 10`) {
		t.Errorf("missing +Inf bucket:\n%s", body)
	}
	snap := reg.Snapshot()
	if snap["server_read_bytes_total"] <= 0 || snap["server_written_bytes_total"] <= 0 {
		t.Errorf("byte counters did not move: read=%v written=%v",
			snap["server_read_bytes_total"], snap["server_written_bytes_total"])
	}
	if snap["client_bytes_sent_total"] <= 0 {
		t.Errorf("client bytes counter did not move: %v", snap["client_bytes_sent_total"])
	}
	// Conservation: the server read every byte the clients sent.
	if snap["server_read_bytes_total"] != snap["client_bytes_sent_total"] {
		t.Errorf("bytes diverge: server read %v, clients sent %v",
			snap["server_read_bytes_total"], snap["client_bytes_sent_total"])
	}
}

// TestShardedCommitPhaseMetrics commits rounds on an instrumented sharded
// server and checks the per-phase commit histograms land on /metrics: one
// observation per phase per committed round, a total-latency observation,
// and exposition lines with the phase label merged ahead of le.
func TestShardedCommitPhaseMetrics(t *testing.T) {
	const players, rounds = 4, 3
	reg := obs.NewRegistry()
	addr, _ := startSharded(t, players, 4, func(sc *server.Config) {
		sc.Metrics = reg
	})
	runScript(t, addr, players, rounds)

	snap := reg.Snapshot()
	for _, phase := range []string{"freeze", "admit", "journal", "seal"} {
		name := fmt.Sprintf(`server_commit_phase_seconds{phase=%q}_count`, phase)
		if snap[name] != rounds {
			t.Errorf("%s = %v, want %v", name, snap[name], rounds)
		}
	}
	if snap["server_commit_seconds_count"] != rounds {
		t.Errorf("server_commit_seconds_count = %v, want %v",
			snap["server_commit_seconds_count"], rounds)
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	obs.Handler(reg).ServeHTTP(rec, req)
	body := rec.Body.String()
	for _, line := range []string{
		fmt.Sprintf(`server_commit_phase_seconds_bucket{phase="seal",le="+Inf"} %d`, rounds),
		fmt.Sprintf(`server_commit_phase_seconds_count{phase="admit"} %d`, rounds),
		fmt.Sprintf(`server_commit_seconds_bucket{le="+Inf"} %d`, rounds),
		"# TYPE server_commit_phase_seconds histogram",
	} {
		if !strings.Contains(body, line+"\n") {
			t.Errorf("missing exposition line %q in:\n%s", line, body)
		}
	}
}

// TestMetricsConcurrentClients hammers an instrumented server from many
// concurrent connections while a scraper renders the registry in a loop —
// the race test for the whole recording path (counters, histograms, the
// counting conn, and exposition). Totals must balance exactly afterward.
func TestMetricsConcurrentClients(t *testing.T) {
	const players = 8
	const rounds = 5
	addr, srv, reg := startMetricsServer(t, players)

	done := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() { // concurrent scrapes must never block or corrupt recording
		defer scraper.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := reg.WritePrometheus(io.Discard); err != nil {
				t.Error(err)
				return
			}
			reg.Snapshot()
		}
	}()

	var wg sync.WaitGroup
	for p := 0; p < players; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			c, err := client.DialOptions(addr, p, "tok", client.Options{Metrics: reg})
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for r := 0; r < rounds; r++ {
				if _, err := c.Probe((p + r) % 32); err != nil {
					t.Error(err)
					return
				}
				c.CountVotesInWindow(0, r)
				if _, err := c.PostBatch([]client.BatchPost{{Object: p, Value: float64(r), Positive: false}}, true); err != nil {
					t.Error(err)
					return
				}
			}
			if err := c.Done(); err != nil {
				t.Error(err)
			}
		}(p)
	}
	wg.Wait()
	close(done)
	scraper.Wait()

	snap := reg.Snapshot()
	var requestTotal float64
	for name, v := range snap {
		if strings.HasPrefix(name, "server_requests_total{") {
			requestTotal += v
		}
	}
	if got := float64(srv.RequestsServed()); requestTotal != got {
		t.Errorf("request counters sum to %v, server decoded %v frames", requestTotal, got)
	}
	for name, want := range map[string]float64{
		"server_rounds_total":                              rounds,
		"server_sessions_opened_total":                     players,
		"billboard_posts_total":                            players * rounds,
		"client_dials_total":                               players,
		fmt.Sprintf(`server_requests_total{type="probe"}`): players * rounds,
	} {
		if snap[name] != want {
			t.Errorf("%s = %v, want %v", name, snap[name], want)
		}
	}
}
