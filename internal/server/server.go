// Package server implements the shared billboard as a network service: the
// system component the paper assumes ("the system maintains a shared
// billboard", §1). Players connect over TCP, authenticate with a bearer
// token bound to their player id (the §2.1 reliable identity tagging),
// probe objects, post reports, read votes, and synchronize rounds through a
// barrier — the timestamp-based simulation of synchrony that §1.2 sketches.
//
// The server owns the ground truth (the object universe): a probe request
// reveals an object's value only to the prober and charges its cost, so
// honest clients remain value-blind exactly as in the in-process engine.
// Byzantine clients may post whatever they like — the billboard's vote
// discipline (one vote per player, identity-tagged) is enforced here, not
// trusted to clients.
//
// Fault tolerance (wire protocol v2). The paper's model assumes honest
// players keep lockstep with the synchronous schedule; a real network
// injects failures that the service absorbs instead of equating with
// player death:
//
//   - sessions + leases: a dropped connection no longer auto-Dones the
//     player. Its session stays resumable for Config.SessionGrace; only
//     lease expiry or an explicit Done deregisters it. (Grace zero keeps
//     the legacy disconnect-is-Done behavior.)
//   - request dedup: every post-Hello request carries a per-session
//     sequence number; the server records the last executed sequence and
//     its response, so a client retrying after a lost response gets the
//     recorded response replayed — a retried Probe is never charged twice.
//   - barrier deadline: Config.BarrierDeadline bounds how long a round
//     waits for stragglers once the first player has arrived; on expiry the
//     stragglers are force-Done'd (journaled, so crash recovery refuses to
//     resurrect them) and the round commits instead of wedging.
//
// Performance (wire protocol v3). Two hot-path optimizations keep per-round
// traffic and CPU constant:
//
//   - batched posts: ReqPostBatch carries a whole round's posts (and
//     optionally the round barrier) in one frame, so a player's round costs
//     O(1) frames instead of O(posts);
//   - read caching: committed-round reads (votes, voted objects, window
//     counts) are memoized until the next EndRound — the billboard cannot
//     change mid-round, so N players asking for the same round's state cost
//     one board traversal, not N.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/billboard"
	"repro/internal/journal"
	"repro/internal/object"
	"repro/internal/obs"
	"repro/internal/wire"
)

// Mode selects how the service paces commits (wire protocol v8).
type Mode int

const (
	// ModeSync is the classic synchronous service: a global round barrier
	// blocks every player until all active players arrive (the timestamp
	// simulation of synchrony, §1.2). The zero value, so existing
	// configurations are unchanged.
	ModeSync Mode = iota
	// ModeEpoch replaces the blocking barrier with timestamped epochs:
	// posts bind to the currently open epoch, clients advance a lamport
	// stamp ("finished submitting every epoch below e") in non-blocking
	// frames, and the server seals an epoch once every active player's
	// stamp has passed it — or, with EpochTick set, on a clock tick once
	// any player has moved on, so a silent straggler can never stall the
	// swarm. No handler ever blocks on another player's progress.
	ModeEpoch
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeSync:
		return "sync"
	case ModeEpoch:
		return "epoch"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config describes a billboard service instance.
type Config struct {
	// Universe is the ground truth (required).
	Universe *object.Universe
	// Tokens holds the bearer token for each player id; len(Tokens) is the
	// number of players N (required, non-empty).
	Tokens []string
	// Alpha and Beta are the assumed parameters advertised to clients at
	// Hello (what the protocol should be initialized with).
	Alpha, Beta float64
	// VotesPerPlayer is the vote cap f (default 1).
	VotesPerPlayer int
	// Expected is the number of players that must register before round 0
	// can complete; 0 means all N.
	Expected int
	// Journal, when non-nil, receives every accepted post, a marker per
	// committed round, and every force-done decision, so the billboard can
	// be rebuilt after a crash (see internal/journal). Accounting stats
	// (probes, costs) are observability only and are not journaled.
	Journal *journal.Writer
	// Recover, when non-nil, replays a journal to restore the billboard
	// (and round counter) before serving. A truncated tail is tolerated:
	// the uncommitted final round is discarded per the synchrony contract.
	// Journaled force-done decisions are honored: those players may not
	// rejoin the recovered run.
	Recover io.Reader
	// RecoverSnapshot, when non-nil, restores the billboard from a Compact
	// snapshot first; Recover (if also set) then replays the journal tail
	// written after that snapshot. Snapshot + tail = exact state, which is
	// how a long-running service truncates its journal.
	RecoverSnapshot []byte
	// Persist, when non-nil, makes the server durable: it recovers the full
	// service state (billboard, round, membership, the charged-probe
	// ledger, per-session dedup windows) from the store's snapshot + journal
	// tail, then journals every state change through the store's writer.
	// A server killed mid-run and reconstructed from the same store is
	// indistinguishable from one that suffered a long network outage:
	// clients resume their sessions and retried requests dedup exactly
	// once. Mutually exclusive with Journal/Recover/RecoverSnapshot (the
	// billboard-only durability knobs it supersedes). Pair it with a
	// SessionGrace so mid-restart clients stay resumable.
	Persist *journal.Store
	// Shards, when greater than 1, partitions the billboard by object id
	// across that many independent shard lanes (protocol v4): each lane has
	// its own mutex, board partition, read cache, and — with Persist — its
	// own journal store under Persist.Dir()/shard-%03d. Clients learn the
	// count at Hello and pipeline per-shard post batches over dedicated lane
	// connections; rounds commit through a per-round shard barrier (see
	// shard.go). Requires a LocalTesting universe (FirstPositive voting; the
	// BestValue mode's single movable vote is inherently global) and is
	// mutually exclusive with the legacy Journal/Recover/RecoverSnapshot
	// knobs. Zero or 1 keeps the classic single-lane server, byte-identical
	// to previous versions at fixed seeds.
	Shards int
	// SwarmToken, when non-empty, lets a swarm driver open swarm sessions
	// (wire protocol v7): one Hello with Swarm set registers a contiguous
	// block of players [Player, PlayerTo) under this shared credential, and
	// the connection may then pipeline probe-batch, post-batch, barrier, and
	// swarm-done frames on behalf of any member. Swarm requests are
	// idempotent or reconstructible, so a resumed swarm session replays by
	// recomputation rather than from a recorded response window. Empty
	// disables swarm sessions.
	SwarmToken string
	// SnapshotEvery, with Persist, rotates the store every k committed
	// rounds: a full server snapshot replaces the journal so far, bounding
	// recovery replay to at most k rounds of records. Zero never rotates
	// (the journal grows for the whole run).
	SnapshotEvery int
	// SessionGrace is how long a disconnected player's session remains
	// resumable before the player is deregistered as if it had sent Done.
	// Zero keeps the legacy behavior: a dropped connection deregisters the
	// player immediately (a crashed player cannot wedge a round).
	SessionGrace time.Duration
	// BarrierDeadline bounds how long a round barrier waits for stragglers
	// once the first player of the round has arrived. On expiry every
	// active player that has not arrived is force-Done'd — the decision is
	// journaled — and the round commits. Zero waits forever. (It cannot
	// unwedge round 0 while fewer than Expected players have registered:
	// unregistered players are not yet part of the run.) Synchronous-mode
	// only: epoch mode never blocks a handler, so it has nothing to
	// deadline — use EpochTick for liveness instead.
	BarrierDeadline time.Duration
	// Mode selects synchronous rounds (ModeSync, the default) or
	// timestamped epochs (ModeEpoch); see the Mode constants. Advertised
	// to clients at Hello.
	Mode Mode
	// EpochTick, with ModeEpoch, is the epoch clock's tick: every tick the
	// server seals the open epoch if at least one active player's stamp
	// has passed it, without waiting for stragglers — their late posts
	// rebind forward to the next open epoch. This trades the byte-exact
	// sync/epoch digest equivalence of pure lamport closure (tick zero,
	// where an epoch seals only once every active player has stamped past
	// it) for liveness past silent stragglers. Zero with ModeSync.
	EpochTick time.Duration
	// Logf, when non-nil, receives operational events (session resume,
	// lease expiry, force-done) — e.g. log.Printf. Must be safe for
	// concurrent use.
	Logf func(format string, args ...any)
	// Metrics, when non-nil, receives the server_* metric family (request
	// counts and latency, per-connection bytes, session lifecycle, dedup
	// replays, read-cache hit rate, barrier waits, rounds committed) and
	// is handed to the billboard for the billboard_* family. Nil disables
	// recording at the cost of one branch per event.
	Metrics *obs.Registry

	// laneStore, when non-nil, is called with every shard lane's freshly
	// opened journal store before any recovery write lands in it — the hook
	// a replicated coordinator uses to install its journal mirrors.
	// Unexported: only the replica node (same package) sets it.
	laneStore func(k int, st *journal.Store)
}

// session is the server half of one client session: the dedup state that
// makes retried requests idempotent and the lease bookkeeping that lets a
// disconnected player resume.
type session struct {
	id     uint64
	player int
	// gen counts connection takeovers; a stale connection's disconnect (or
	// lease timer) is ignored when gen has moved on.
	gen       int
	connected bool
	// lastSeq/lastResp implement response dedup: a request repeating
	// lastSeq replays lastResp. executing marks lastSeq as still running
	// (e.g. a barrier blocked on behalf of a now-dead connection); a
	// retransmission waits for it rather than re-executing.
	lastSeq   uint64
	lastResp  wire.Response
	executing bool
	// timer is the armed lease-expiry timer while the session is in its
	// grace window; stopped on resume and at Close so no callback can fire
	// after the session (or the server) is gone.
	timer *time.Timer
	// loose relaxes the sequence-gap check for one request: a session
	// recovered from the journal has lastSeq at its last *journaled*
	// operation, while the client's counter also advanced over reads
	// (which are never journaled) — so the first post-restart request may
	// legitimately jump forward.
	loose bool
	// nextIdx stamps primary-connection posts with a running order index on
	// a sharded server, preserving the player's arrival order across lanes
	// (lane batches carry client-assigned indices instead).
	nextIdx int
	// swarm marks a session opened with Hello.Swarm: it speaks for every
	// player in [player, playerTo) at once (player holds the range start).
	// Swarm sessions never replay lastResp — resent frames are answered by
	// recomputation (swarmReplayLocked), which is what lets a swarm client
	// pipeline many frames per connection and resend the unacknowledged
	// tail after a reconnect.
	swarm    bool
	playerTo int
}

// memberRange returns the half-open player range a session speaks for:
// the swarm block, or the single player.
func (sess *session) memberRange() (int, int) {
	if sess.swarm {
		return sess.player, sess.playerTo
	}
	return sess.player, sess.player + 1
}

// Server is a running billboard service. Construct with New, then Start.
type Server struct {
	cfg Config
	ln  net.Listener

	mu         sync.Mutex
	cond       *sync.Cond
	board      *billboard.Board
	round      int
	registered map[int]bool
	active     map[int]bool
	arrived    map[int]bool
	forceDone  map[int]int // player → round of the force-done decision
	sessions   map[uint64]*session
	byPlayer   map[int]*session
	probes     []int
	cost       []float64
	satisfied  []bool
	closed     bool

	// Sharding state (Config.Shards > 1; see shard.go). lanes is immutable
	// after New. The admission maps implement the global vote budget across
	// lanes; roundA/closedA mirror round/closed for the lane data plane,
	// which answers without taking s.mu.
	lanes           []*lane
	votesTaken      []int
	votedPair       map[admitKey]bool
	admitSet        map[admitKey]bool
	lastAdmits      []journal.Admit
	lastAdmitsRound int
	recoveredAdmits map[int][]journal.Admit // transient, New-time only
	roundA          atomic.Int64
	closedA         atomic.Bool

	// Pooled commit scratch (commitShardedLocked): the round's posters, the
	// per-poster dedup bitmap, the per-player merge heads and cursors, the
	// alternating admit slices (double-buffered because lastAdmits must
	// outlive the round that produced it), and the encode-once marker frame.
	// All retained across rounds so a steady-state commit allocates nothing
	// per shard.
	commitPosters []int
	posterSeen    []bool
	mergeHeads    []*pbucket
	mergeCurs     []int
	admitsScratch [2][]journal.Admit
	markerFrame   []byte

	barrierTimer *time.Timer
	armedRound   int // round the barrier timer is armed for; -1 when idle

	// Epoch mode (Config.Mode == ModeEpoch). lastStamp holds each player's
	// lamport epoch stamp: the player has finished submitting every epoch
	// below it. An epoch (== the round counter) seals when every active
	// player's stamp has passed it; with EpochTick the self-re-arming
	// epochTimer additionally seals on a tick once any player has moved
	// on. The timer is stopped at Close and its callback checks s.closed,
	// so no seal can race the teardown.
	lastStamp  map[int]int
	epochTimer *time.Timer

	// Committed-round read cache, invalidated at every EndRound. Cached
	// values are immutable once built (never mutated, only dropped), so
	// sharing them across concurrently-encoded responses is safe.
	cacheVotes    map[int][]wire.VoteMsg
	cacheWindows  map[[2]int]map[int]int
	cacheVoted    []int
	cacheHasVoted bool

	// requests counts decoded client→server frames (all types, including
	// Hello). Observability for the O(1)-frames-per-round contract.
	requests atomic.Int64

	conns map[net.Conn]struct{} // open connections, force-closed on Close
	wg    sync.WaitGroup

	// Replication hooks (set by ReplicaNode on promotion, before any client
	// connection is served): every journaled response waits on replLog until
	// replQuorum replicas durably hold the bytes it produced, and round
	// markers carry replTerm/replQuorum annotations.
	replLog    *repLog
	replTerm   uint64
	replQuorum int

	m serverMetrics
}

// New validates cfg and builds a server (not yet listening).
func New(cfg Config) (*Server, error) {
	if cfg.Universe == nil {
		return nil, fmt.Errorf("server: Config.Universe is required")
	}
	if len(cfg.Tokens) == 0 {
		return nil, fmt.Errorf("server: Config.Tokens must name at least one player")
	}
	if cfg.Expected == 0 {
		cfg.Expected = len(cfg.Tokens)
	}
	if cfg.Expected < 1 || cfg.Expected > len(cfg.Tokens) {
		return nil, fmt.Errorf("server: Expected %d outside [1, %d]", cfg.Expected, len(cfg.Tokens))
	}
	if cfg.Mode < ModeSync || cfg.Mode > ModeEpoch {
		return nil, fmt.Errorf("server: unknown Mode %d", int(cfg.Mode))
	}
	if cfg.Mode == ModeEpoch && cfg.BarrierDeadline > 0 {
		return nil, fmt.Errorf("server: BarrierDeadline is a synchronous-mode knob; epoch mode paces with EpochTick")
	}
	if cfg.EpochTick < 0 {
		return nil, fmt.Errorf("server: EpochTick must be non-negative")
	}
	if cfg.EpochTick > 0 && cfg.Mode != ModeEpoch {
		return nil, fmt.Errorf("server: EpochTick requires Mode == ModeEpoch")
	}
	mode := billboard.FirstPositive
	if !cfg.Universe.LocalTesting() {
		mode = billboard.BestValue
	}
	boardCfg := billboard.Config{
		Players:        len(cfg.Tokens),
		Objects:        cfg.Universe.M(),
		Mode:           mode,
		VotesPerPlayer: cfg.VotesPerPlayer,
	}
	if cfg.Persist != nil && (cfg.Journal != nil || cfg.Recover != nil || cfg.RecoverSnapshot != nil) {
		return nil, fmt.Errorf("server: Persist supersedes Journal/Recover/RecoverSnapshot; set one or the other")
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("server: Shards %d must be non-negative", cfg.Shards)
	}
	if cfg.Shards > 1 {
		if mode != billboard.FirstPositive {
			return nil, fmt.Errorf("server: Shards > 1 requires a LocalTesting universe (BestValue's single movable vote is global)")
		}
		if cfg.Journal != nil || cfg.Recover != nil || cfg.RecoverSnapshot != nil {
			return nil, fmt.Errorf("server: Shards > 1 is incompatible with the legacy Journal/Recover/RecoverSnapshot knobs; use Persist")
		}
	}
	s := &Server{
		cfg:        cfg,
		registered: make(map[int]bool),
		active:     make(map[int]bool),
		arrived:    make(map[int]bool),
		forceDone:  make(map[int]int),
		sessions:   make(map[uint64]*session),
		byPlayer:   make(map[int]*session),
		conns:      make(map[net.Conn]struct{}),
		probes:     make([]int, len(cfg.Tokens)),
		cost:       make([]float64, len(cfg.Tokens)),
		satisfied:  make([]bool, len(cfg.Tokens)),
		lastStamp:  make(map[int]int),
		armedRound: -1,
		m:          newServerMetrics(cfg.Metrics), // before recovery: replay is recorded
	}
	s.cond = sync.NewCond(&s.mu)
	if cfg.Shards > 1 {
		// The coordinator keeps no board of its own: posts live in the shard
		// lanes. Its store (when durable) carries probes, barriers, dones,
		// and the round markers whose admitted vote pairs anchor lane replay.
		if cfg.Persist != nil {
			s.recoveredAdmits = make(map[int][]journal.Admit)
			if err := s.recoverFromStore(boardCfg); err != nil {
				return nil, err
			}
			s.cfg.Journal = cfg.Persist.Writer()
		}
		if err := s.setupShards(boardCfg, s.recoveredAdmits); err != nil {
			return nil, err
		}
		s.recoveredAdmits = nil
		s.roundA.Store(int64(s.round))
		return s, nil
	}
	if cfg.Persist != nil {
		if err := s.recoverFromStore(boardCfg); err != nil {
			return nil, err
		}
		s.cfg.Journal = cfg.Persist.Writer()
		s.board.SetMetrics(cfg.Metrics)
		s.roundA.Store(int64(s.round))
		return s, nil
	}
	// Legacy (billboard-only) recovery: rebuild the board and the journaled
	// force-done decisions; membership, accounting, and sessions start
	// fresh, as before the persist store existed.
	var board *billboard.Board
	var events []journal.Event
	var err error
	switch {
	case cfg.RecoverSnapshot != nil:
		board, err = billboard.Restore(cfg.RecoverSnapshot, nil)
		if err != nil {
			return nil, fmt.Errorf("server: recover snapshot: %w", err)
		}
		if cfg.Recover != nil {
			events, err = journal.ApplyEvents(cfg.Recover, board)
			if err != nil && !errors.Is(err, journal.ErrTruncated) {
				return nil, fmt.Errorf("server: recover tail: %w", err)
			}
		}
	case cfg.Recover != nil:
		board, events, err = journal.RebuildEvents(cfg.Recover, boardCfg)
		if err != nil && !errors.Is(err, journal.ErrTruncated) {
			return nil, fmt.Errorf("server: recover: %w", err)
		}
	default:
		board, err = billboard.New(boardCfg)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
	}
	s.board = board
	s.round = board.Round() // continues from a recovered journal
	board.SetMetrics(cfg.Metrics)
	for _, e := range events {
		// A journaled force-done stays binding after a crash: the round
		// committed without this player, so it cannot rejoin the run.
		s.forceDone[e.Player] = e.Round
	}
	s.roundA.Store(int64(s.round))
	return s, nil
}

// Start listens on addr ("127.0.0.1:0" picks a free port) and serves
// connections until Close. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("server: %w", err)
	}
	return s.Serve(ln), nil
}

// Serve starts serving on an existing listener (e.g. one wrapped by
// internal/faultnet for server-side fault injection) and returns its
// address.
func (s *Server) Serve(ln net.Listener) string {
	s.ln = ln
	s.ArmSessionGrace()
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String()
}

// ArmSessionGrace starts the lease clocks of sessions recovered from a
// persist store: each disconnected session gets its grace window now —
// resume stops the timer, expiry deregisters the player as usual. With no
// grace, the crash already counted as their disconnect, so they are expired
// immediately (the legacy contract). Serve calls this itself; a replicated
// coordinator, which serves connections via ServeConn instead, calls it at
// promotion.
func (s *Server) ArmSessionGrace() {
	s.mu.Lock()
	var orphans []*session
	for _, sess := range s.sessions {
		if !sess.connected && sess.timer == nil {
			orphans = append(orphans, sess)
		}
	}
	for _, sess := range orphans {
		if s.cfg.SessionGrace > 0 {
			id, g := sess.id, sess.gen
			sess.timer = time.AfterFunc(s.cfg.SessionGrace, func() { s.expireSession(id, g) })
		} else {
			s.expireLocked(sess)
		}
	}
	s.mu.Unlock()
}

// ServeConn hands the server one already-accepted connection — the entry
// point of a replica node, which owns the listener itself so it can redirect
// clients while not leading. The connection is served like any accepted one
// and force-closed at Close.
func (s *Server) ServeConn(conn net.Conn) {
	s.wg.Add(1)
	go s.handle(conn)
}

// Close stops the listener, wakes blocked barrier waiters, and waits for
// connection handlers to drain.
func (s *Server) Close() error {
	s.closedA.Store(true)
	s.mu.Lock()
	s.closed = true
	if s.barrierTimer != nil {
		s.barrierTimer.Stop()
	}
	if s.epochTimer != nil {
		// An expire callback already past Stop re-checks s.closed under the
		// lock before touching any seal state, so a tick can never commit
		// into a closing server.
		s.epochTimer.Stop()
	}
	// Stop pending lease timers: an expiry callback firing after Close
	// would race the teardown (and log into a closed harness).
	for _, sess := range s.sessions {
		if sess.timer != nil {
			sess.timer.Stop()
			sess.timer = nil
		}
	}
	// Force-close open connections: handlers blocked reading a request
	// would otherwise pin the WaitGroup until every client hangs up.
	for conn := range s.conns {
		conn.Close()
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.wg.Wait()
	// Lane stores are owned by the server (opened in setupShards), unlike
	// the caller-owned coordinator store; close them once handlers drained.
	for _, ln := range s.lanes {
		ln.lock()
		if ln.store != nil && !ln.down {
			if cerr := ln.store.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		ln.unlock()
	}
	return err
}

// Round returns the current round number.
func (s *Server) Round() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.round
}

// Compact serializes the billboard's committed state. The caller may then
// truncate the journal and start a new one: RecoverSnapshot + the new
// journal reproduce the exact state. It fails if a round is in flight
// (uncommitted posts); retry after the next barrier.
func (s *Server) Compact() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sharded() {
		return nil, fmt.Errorf("server: Compact is single-board; a sharded server snapshots per lane via SnapshotEvery rotation")
	}
	return s.board.Snapshot()
}

// Digest returns the canonical digest of the committed billboard state
// (see billboard.Digest) — byte-identical across runs that committed the
// same posts in the same rounds, regardless of interleaving.
func (s *Server) Digest() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sharded() {
		boards := make([]*billboard.Board, len(s.lanes))
		for i, ln := range s.lanes {
			if !s.waitLaneUpLocked(ln) {
				return nil
			}
			boards[i] = ln.board
		}
		// MergeDigest is byte-identical to the single board an unsharded
		// server would digest — canonical ordering is lane-oblivious.
		return billboard.MergeDigest(boards...)
	}
	return s.board.Digest()
}

// Stats returns per-player probe counts, costs, and satisfaction as
// observed by the server, plus the current round.
func (s *Server) Stats() (probes []int, cost []float64, satisfied []bool, round int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int(nil), s.probes...),
		append([]float64(nil), s.cost...),
		append([]bool(nil), s.satisfied...),
		s.round
}

// RequestsServed reports the number of client→server frames decoded so far
// (all request types, including Hello). The frame-economy tests use it to
// pin the O(1)-frames-per-player-per-round contract of protocol v3.
func (s *Server) RequestsServed() int64 { return s.requests.Load() }

// ForceDone reports the players expelled by barrier deadlines (including
// decisions recovered from the journal), keyed by the round of expulsion.
func (s *Server) ForceDone() map[int]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[int]int, len(s.forceDone))
	for p, r := range s.forceDone {
		out[p] = r
	}
	return out
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// handle serves one connection: a Hello (fresh or resuming) followed by any
// number of sequenced requests.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	s.m.connections.Inc()
	// rw carries all reads and writes; with metrics enabled it attributes
	// every byte moved to the bytes counters. s.conns keeps the raw conn —
	// Close force-closes that, which unblocks reads through the wrapper.
	var rw net.Conn = conn
	if s.m.enabled {
		rw = &countingConn{Conn: conn, in: s.m.bytesIn, out: s.m.bytesOut}
	}
	br := bufio.NewReader(rw)
	// Connection-scoped codecs (protocol v6): gob type descriptors cross the
	// wire once per connection, and the lane data plane stops paying a codec
	// compile per frame.
	dec := wire.NewStreamDecoder(br)
	enc := wire.NewStreamEncoder(rw)

	var sess *session
	var laneSess *session
	var laneOf *lane
	gen := 0
	defer func() {
		if sess != nil {
			s.disconnect(sess, gen)
		}
	}()

	var reqBuf wire.Request
	for {
		req := &reqBuf
		if err := dec.DecodeRequest(req); err != nil {
			// Clean EOF, a torn frame, or garbage: either way this
			// connection is over. The session (if any) enters its grace
			// window via the deferred disconnect.
			return
		}
		s.requests.Add(1)
		s.m.request(req.Type).Inc()
		var start time.Time
		if s.m.enabled {
			start = time.Now()
		}
		var resp wire.Response
		switch {
		case req.Type == wire.ReqHello && req.Lane:
			// Data-plane lane binding (protocol v4): no membership, no
			// lease; the connection serves only shard-local post batches.
			if sess != nil || laneSess != nil {
				resp.Err = "connection already bound"
				break
			}
			var ns *session
			var ln *lane
			resp, ns, ln = s.laneHello(req)
			if resp.Err == "" {
				laneSess, laneOf = ns, ln
			}
		case req.Type == wire.ReqHello:
			if laneSess != nil {
				resp.Err = "connection already bound to a shard lane"
				break
			}
			if sess != nil && req.Session != sess.id {
				resp.Err = "connection already bound to another session"
				break
			}
			var ns *session
			resp, ns = s.hello(req)
			if resp.Err == "" {
				sess = ns
				gen = ns.gen
			}
		case laneSess != nil:
			resp = s.laneDispatch(laneOf, laneSess, req)
		case sess == nil:
			resp.Err = "not authenticated: send hello first"
		default:
			resp = s.dispatch(sess, req)
		}
		s.m.rpcSeconds.ObserveSince(start)
		if resp.Err == errServerClosed {
			// Shutting down: drop the connection instead of answering, as a
			// killed process would. The client sees a transport failure and
			// retries against whatever (restarted) server binds the address —
			// an application error here would wrongly end its session.
			return
		}
		if err := enc.EncodeResponse(&resp); err != nil {
			return
		}
	}
}

// errServerClosed marks a request caught mid-shutdown. It never goes on the
// wire: handle drops the connection when it sees it.
const errServerClosed = "server closed"

// disconnect runs when a connection dies. The session enters its lease
// window (or is expired immediately when SessionGrace is zero — the legacy
// disconnect-is-Done contract). A newer connection's takeover (gen bump)
// makes this a no-op.
func (s *Server) disconnect(sess *session, gen int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || sess.gen != gen || !sess.connected {
		return
	}
	sess.connected = false
	if s.cfg.SessionGrace <= 0 {
		if s.active[sess.player] {
			s.logf("player %d disconnected with no session grace: treating as done", sess.player)
		}
		s.expireLocked(sess)
		return
	}
	if s.active[sess.player] {
		s.logf("player %d disconnected; session resumable for %v", sess.player, s.cfg.SessionGrace)
	}
	id, g := sess.id, sess.gen
	sess.timer = time.AfterFunc(s.cfg.SessionGrace, func() { s.expireSession(id, g) })
}

// expireSession ends a lease that was never resumed.
func (s *Server) expireSession(id uint64, gen int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess := s.sessions[id]
	if s.closed || sess == nil || sess.connected || sess.gen != gen {
		return
	}
	if s.active[sess.player] {
		s.logf("player %d session lease expired: treating as done", sess.player)
	}
	s.expireLocked(sess)
}

// expireLocked removes a session and deregisters its player — every member,
// for a swarm session — from future barriers (a no-op for players that
// already sent Done).
func (s *Server) expireLocked(sess *session) {
	s.m.sessionsExpired.Inc()
	if sess.timer != nil {
		sess.timer.Stop()
		sess.timer = nil
	}
	delete(s.sessions, sess.id)
	from, to := sess.memberRange()
	for p := from; p < to; p++ {
		if s.byPlayer[p] == sess {
			delete(s.byPlayer, p)
		}
		s.leaveLocked(p)
	}
}

// dispatch runs one sequenced request with retransmission dedup: a repeat
// of the last sequence replays the recorded response (waiting out an
// execution still in flight on behalf of a dead predecessor connection),
// so a retried request — in particular a retried Probe — never executes
// twice.
func (s *Server) dispatch(sess *session, req *wire.Request) wire.Response {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case req.Seq == 0:
		return wire.Response{Err: "missing request sequence number"}
	case req.Seq < sess.lastSeq:
		if sess.swarm {
			// A pipelined swarm client resends its whole unacknowledged tail
			// after a reconnect, so frames behind the dedup high-water mark
			// are expected; answer them by recomputation, never re-execution.
			s.m.dedupReplays.Inc()
			return s.swarmReplayLocked(sess, req)
		}
		return wire.Response{Err: fmt.Sprintf("stale sequence %d (last executed %d)", req.Seq, sess.lastSeq)}
	case req.Seq == sess.lastSeq:
		s.m.dedupReplays.Inc()
		for sess.executing && !s.closed {
			s.cond.Wait()
		}
		if sess.executing {
			return wire.Response{Err: errServerClosed}
		}
		sess.loose = false
		if sess.swarm {
			// Never lastResp: after a crash recovery the recorded response may
			// have the wrong shape for a probe batch; recomputation is exact.
			return s.swarmReplayLocked(sess, req)
		}
		return sess.lastResp
	case req.Seq > sess.lastSeq+1 && !sess.loose:
		return wire.Response{Err: fmt.Sprintf("sequence gap: got %d, want %d", req.Seq, sess.lastSeq+1)}
	}
	if sess.executing {
		// Unreachable with a serial client: seq lastSeq+1 while lastSeq
		// still runs would mean the client pipelined.
		return wire.Response{Err: "previous request still executing"}
	}
	sess.lastSeq = req.Seq
	sess.loose = false
	sess.executing = true
	resp := s.executeLocked(sess, req)
	if s.replLog != nil && resp.Err != errServerClosed {
		// Replicated commit: the response leaves this leader only after a
		// quorum of replicas durably holds every journal byte the request
		// (and, via the barrier, its round) produced. An aborted wait means
		// this node was deposed — drop the connection like a dying server.
		if err := s.replLog.commitWait(s.replQuorum); err != nil {
			resp = wire.Response{Err: errServerClosed}
		}
	}
	sess.lastResp = resp
	sess.executing = false
	s.cond.Broadcast()
	return resp
}

// executeLocked performs one authenticated request (s.mu held; barrier may
// temporarily release it via cond.Wait).
func (s *Server) executeLocked(sess *session, req *wire.Request) wire.Response {
	switch req.Type {
	case wire.ReqProbe:
		if sess.swarm {
			return wire.Response{Err: "use probe-batch on a swarm session"}
		}
		return s.probeLocked(sess, req.Seq, req.Object)
	case wire.ReqProbeBatch:
		return s.probeBatchLocked(sess, req, true)
	case wire.ReqSwarmDone:
		return s.swarmDoneLocked(sess, req)
	case wire.ReqPost:
		return s.postLocked(sess, req)
	case wire.ReqPostBatch:
		return s.postBatchLocked(sess, req)
	case wire.ReqVotes:
		return s.votesLocked(req.OfPlayer)
	case wire.ReqVoteBatch:
		return s.voteBatchLocked(req)
	case wire.ReqVotedObjects:
		return wire.Response{Objects: s.votedObjectsLocked(), Round: s.round}
	case wire.ReqVoteCount:
		return s.voteCountLocked(req.Object)
	case wire.ReqNegCount:
		return s.negCountLocked(req.Object)
	case wire.ReqWindow:
		from, to := req.From, req.To
		if req.Last > 0 {
			// Sliding window (protocol v8): the most recent Last closed
			// rounds. Response.Round anchors the answer.
			to = s.round
			from = to - req.Last
			if from < 0 {
				from = 0
			}
		}
		return wire.Response{Counts: s.windowLocked(from, to), Round: s.round}
	case wire.ReqEpoch:
		return s.epochLocked(sess, req)
	case wire.ReqBarrier:
		if s.cfg.Mode == ModeEpoch {
			return wire.Response{Err: "barrier requests are not served in epoch mode; pace with epoch frames"}
		}
		return s.barrierLocked(sess, req.Seq)
	case wire.ReqDone:
		if sess.swarm {
			return wire.Response{Err: "use swarm-done on a swarm session"}
		}
		if s.cfg.Journal != nil {
			if err := s.cfg.Journal.Done(sess.id, req.Seq, sess.player); err != nil {
				return wire.Response{Err: fmt.Sprintf("journal: %v", err)}
			}
		}
		s.leaveLocked(sess.player)
		return wire.Response{Round: s.round}
	default:
		return wire.Response{Err: fmt.Sprintf("unknown request type %v", req.Type)}
	}
}

// hello authenticates a connection. An unknown session id registers the
// player afresh; a known one resumes it (which also makes a retried Hello
// idempotent when the first response was lost in transit).
func (s *Server) hello(req *wire.Request) (wire.Response, *session) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if req.Version != wire.Version {
		return wire.Response{Err: fmt.Sprintf("protocol version %d, server speaks %d",
			req.Version, wire.Version)}, nil
	}
	if req.Swarm {
		return s.swarmHelloLocked(req)
	}
	p := req.Player
	if p < 0 || p >= len(s.cfg.Tokens) {
		return wire.Response{Err: fmt.Sprintf("player %d out of range", p)}, nil
	}
	if s.cfg.Tokens[p] != req.Token {
		return wire.Response{Err: "bad token"}, nil
	}
	if req.Session == 0 {
		return wire.Response{Err: "missing session id"}, nil
	}
	if sess := s.sessions[req.Session]; sess != nil {
		if sess.swarm {
			return wire.Response{Err: "session belongs to a swarm"}, nil
		}
		if sess.player != p {
			return wire.Response{Err: "session belongs to another player"}, nil
		}
		sess.gen++
		if sess.timer != nil {
			// The resume beat the lease: the old timer must never fire (the
			// gen bump also defuses it, but a stopped timer frees the
			// runtime entry and keeps Close's timer sweep exhaustive).
			sess.timer.Stop()
			sess.timer = nil
		}
		if !sess.connected {
			sess.connected = true
			s.m.sessionsResumed.Inc()
			s.logf("player %d resumed session %016x in round %d", p, sess.id, s.round)
		}
		return s.helloPayloadLocked(), sess
	}
	if r, ok := s.forceDone[p]; ok {
		return wire.Response{
			Err:  fmt.Sprintf("player %d was force-done in round %d", p, r),
			Code: wire.CodeBarrierDeadline,
		}, nil
	}
	if s.registered[p] {
		// The player exists but the presented session does not: its lease
		// expired (or the server restarted without it). Terminal for the
		// old client — its votes and dedup window are gone.
		return wire.Response{
			Err:  fmt.Sprintf("player %d already registered", p),
			Code: wire.CodeSessionExpired,
		}, nil
	}
	s.registered[p] = true
	s.active[p] = true
	s.m.sessionsOpened.Inc()
	sess := &session{id: req.Session, player: p, gen: 1, connected: true}
	s.sessions[req.Session] = sess
	s.byPlayer[p] = sess
	s.advanceLocked() // registration may complete a waiting barrier
	return s.helloPayloadLocked(), sess
}

func (s *Server) helloPayloadLocked() wire.Response {
	u := s.cfg.Universe
	costs := make([]float64, u.M())
	for i := range costs {
		costs[i] = u.Cost(i)
	}
	return wire.Response{
		N:            len(s.cfg.Tokens),
		M:            u.M(),
		LocalTesting: u.LocalTesting(),
		Alpha:        s.cfg.Alpha,
		Beta:         s.cfg.Beta,
		Costs:        costs,
		Round:        s.round,
		Shards:       s.ShardCount(),
		Mode:         uint8(s.cfg.Mode),
	}
}

// swarmHelloLocked authenticates a swarm Hello (protocol v7): one session
// registering the whole player block [Player, PlayerTo) under the shared
// swarm credential, or resuming an existing swarm session after a
// reconnect. Caller holds s.mu.
func (s *Server) swarmHelloLocked(req *wire.Request) (wire.Response, *session) {
	if s.cfg.SwarmToken == "" {
		return wire.Response{Err: "server does not accept swarm sessions"}, nil
	}
	if req.Token != s.cfg.SwarmToken {
		return wire.Response{Err: "bad swarm token"}, nil
	}
	from, to := req.Player, req.PlayerTo
	if from < 0 || to > len(s.cfg.Tokens) || from >= to {
		return wire.Response{Err: fmt.Sprintf("swarm range [%d, %d) invalid for %d players",
			from, to, len(s.cfg.Tokens))}, nil
	}
	if req.Session == 0 {
		return wire.Response{Err: "missing session id"}, nil
	}
	if sess := s.sessions[req.Session]; sess != nil {
		if !sess.swarm || sess.player != from || sess.playerTo != to {
			return wire.Response{Err: "session belongs to another player"}, nil
		}
		sess.gen++
		if sess.timer != nil {
			sess.timer.Stop()
			sess.timer = nil
		}
		if !sess.connected {
			sess.connected = true
			s.m.sessionsResumed.Inc()
			s.logf("swarm [%d, %d) resumed session %016x in round %d", from, to, sess.id, s.round)
		}
		return s.helloPayloadLocked(), sess
	}
	for p := from; p < to; p++ {
		if r, ok := s.forceDone[p]; ok {
			return wire.Response{
				Err:  fmt.Sprintf("player %d was force-done in round %d", p, r),
				Code: wire.CodeBarrierDeadline,
			}, nil
		}
		if s.registered[p] {
			return wire.Response{
				Err:  fmt.Sprintf("player %d already registered", p),
				Code: wire.CodeSessionExpired,
			}, nil
		}
	}
	if s.cfg.Journal != nil {
		if err := s.cfg.Journal.SwarmOpen(req.Session, from, to); err != nil {
			return wire.Response{Err: fmt.Sprintf("journal: %v", err)}, nil
		}
	}
	sess := &session{id: req.Session, player: from, playerTo: to, swarm: true, gen: 1, connected: true}
	s.sessions[req.Session] = sess
	for p := from; p < to; p++ {
		s.registered[p] = true
		s.active[p] = true
		s.byPlayer[p] = sess
	}
	s.m.sessionsOpened.Inc()
	s.advanceLocked() // registration may complete a waiting barrier
	return s.helloPayloadLocked(), sess
}

// swarmReplayLocked answers a resent swarm frame (req.Seq <= sess.lastSeq)
// without re-executing its side effects. Swarm requests are idempotent or
// reconstructible, which is what replaces the per-request response window:
// probe batches recompute their results from the universe without charging
// again, post batches and dones are already buffered/applied and answer the
// current round, a barrier waits out any execution still in flight and
// answers the round it committed, and reads simply re-execute. Caller holds
// s.mu.
func (s *Server) swarmReplayLocked(sess *session, req *wire.Request) wire.Response {
	switch req.Type {
	case wire.ReqProbeBatch:
		return s.probeBatchLocked(sess, req, false)
	case wire.ReqPostBatch:
		if req.EndRound {
			for sess.executing && !s.closed {
				s.cond.Wait()
			}
			if s.closed {
				return wire.Response{Err: errServerClosed}
			}
		}
		return wire.Response{Round: s.round}
	case wire.ReqBarrier:
		// The original may still be blocked on the round (on behalf of a
		// dead predecessor connection); the round it waits for cannot
		// advance twice without this session re-arriving, so the current
		// round after the wait is the round the barrier committed.
		for sess.executing && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			return wire.Response{Err: errServerClosed}
		}
		return wire.Response{Round: s.round}
	case wire.ReqSwarmDone:
		return wire.Response{Round: s.round}
	default:
		// Reads are side-effect free; re-execute for a fresh answer.
		return s.executeLocked(sess, req)
	}
}

// probeBatchLocked serves one swarm probe batch: members' probes validated,
// journaled, and charged in frame order, answered positionally. With charge
// false (replay of a resent frame) the results are recomputed from the
// universe — a pure function of (object, universe) — and nothing is billed,
// preserving the exactly-once probe-accounting contract across reconnects.
func (s *Server) probeBatchLocked(sess *session, req *wire.Request, charge bool) wire.Response {
	if !sess.swarm {
		return wire.Response{Err: "probe-batch requires a swarm session"}
	}
	u := s.cfg.Universe
	for i, pr := range req.Probes {
		if pr.Player < sess.player || pr.Player >= sess.playerTo {
			return wire.Response{Err: fmt.Sprintf("probe %d/%d: player %d outside swarm range [%d, %d)",
				i+1, len(req.Probes), pr.Player, sess.player, sess.playerTo)}
		}
		if pr.Object < 0 || pr.Object >= u.M() {
			return wire.Response{Err: fmt.Sprintf("probe %d/%d: object %d out of range",
				i+1, len(req.Probes), pr.Object)}
		}
	}
	if charge && s.cfg.Journal != nil {
		// Write-ahead, like the single-probe path: a probe is charged iff
		// its record reached the journal.
		for _, pr := range req.Probes {
			if err := s.cfg.Journal.Probe(sess.id, req.Seq, pr.Player, pr.Object); err != nil {
				return wire.Response{Err: fmt.Sprintf("journal: %v", err)}
			}
		}
	}
	results := make([]wire.ProbeRes, len(req.Probes))
	for i, pr := range req.Probes {
		good := u.LocalTesting() && u.IsGood(pr.Object)
		if charge {
			s.probes[pr.Player]++
			s.cost[pr.Player] += u.Cost(pr.Object)
			if good {
				s.satisfied[pr.Player] = true
			}
		}
		results[i] = wire.ProbeRes{Value: u.Value(pr.Object), Good: good}
	}
	return wire.Response{ProbeResults: results, Round: s.round}
}

// swarmDoneLocked deregisters a batch of swarm members (players that found
// a good object, or timed out). Journaled per player, like Done;
// deregistration is idempotent, so a replay is harmless.
func (s *Server) swarmDoneLocked(sess *session, req *wire.Request) wire.Response {
	if !sess.swarm {
		return wire.Response{Err: "swarm-done requires a swarm session"}
	}
	for i, p := range req.Players {
		if p < sess.player || p >= sess.playerTo {
			return wire.Response{Err: fmt.Sprintf("done %d/%d: player %d outside swarm range [%d, %d)",
				i+1, len(req.Players), p, sess.player, sess.playerTo)}
		}
	}
	if s.cfg.Journal != nil {
		for _, p := range req.Players {
			if err := s.cfg.Journal.Done(sess.id, req.Seq, p); err != nil {
				return wire.Response{Err: fmt.Sprintf("journal: %v", err)}
			}
		}
	}
	for _, p := range req.Players {
		s.leaveLocked(p)
	}
	return wire.Response{Round: s.round}
}

func (s *Server) probeLocked(sess *session, seq uint64, obj int) wire.Response {
	u := s.cfg.Universe
	player := sess.player
	if obj < 0 || obj >= u.M() {
		return wire.Response{Err: fmt.Sprintf("object %d out of range", obj)}
	}
	// Write-ahead: a probe is charged iff its record reached the journal.
	// Journal first — if the record cannot be written, nothing is charged
	// and the client may retry; never charge a probe a recovery would
	// forget.
	if s.cfg.Journal != nil {
		if err := s.cfg.Journal.Probe(sess.id, seq, player, obj); err != nil {
			return wire.Response{Err: fmt.Sprintf("journal: %v", err)}
		}
	}
	s.probes[player]++
	s.cost[player] += u.Cost(obj)
	good := u.LocalTesting() && u.IsGood(obj)
	if good {
		s.satisfied[player] = true
	}
	return wire.Response{Value: u.Value(obj), Good: good, Cost: u.Cost(obj), Round: s.round}
}

// appendPostLocked validates and buffers one post under the given player
// identity (the authenticated session player, or a validated swarm member),
// journaling it on acceptance. The journal record carries the session and
// sequence number so recovery can rebuild the dedup window.
func (s *Server) appendPostLocked(sess *session, seq uint64, player, object int, value float64, positive bool) error {
	if s.sharded() {
		// Route to the owning lane, stamped with the session's running
		// index so commit order preserves this player's arrival order.
		return s.shardAppendLocked(sess, seq, object, value, positive)
	}
	post := billboard.Post{
		Player:   player,
		Object:   object,
		Value:    value,
		Positive: positive,
	}
	if err := s.board.Post(post); err != nil {
		return err
	}
	if s.cfg.Journal != nil {
		if err := s.cfg.Journal.AppendFrom(sess.id, seq, post); err != nil {
			return fmt.Errorf("journal: %v", err)
		}
	}
	return nil
}

func (s *Server) postLocked(sess *session, req *wire.Request) wire.Response {
	if err := s.appendPostLocked(sess, req.Seq, sess.player, req.Object, req.Value, req.Positive); err != nil {
		return wire.Response{Err: err.Error()}
	}
	return wire.Response{Round: s.round}
}

// postBatchLocked applies a whole round's posts from one frame, in order,
// then (when requested) runs the round barrier — the protocol-v3 fast path.
// The batch is not transactional: an invalid post aborts the remainder with
// an error, leaving earlier posts buffered; since the whole batch executed
// under one sequence number, a retry replays the recorded response and
// never re-applies any of them. On a swarm session each post carries its
// member's identity (validated against the session's range); on an ordinary
// session the authenticated identity is stamped, never the client-claimed
// one.
func (s *Server) postBatchLocked(sess *session, req *wire.Request) wire.Response {
	if sess.swarm && s.sharded() {
		// Swarm posts on a sharded server carry client-assigned indices and
		// flow through the lane data plane, where cross-player commit order
		// is well defined; the primary path's per-session index stamp is not.
		return wire.Response{Err: "swarm posts on a sharded server go to shard lanes"}
	}
	for i, p := range req.Posts {
		player := sess.player
		if sess.swarm {
			if p.Player < sess.player || p.Player >= sess.playerTo {
				return wire.Response{Err: fmt.Sprintf("batch post %d/%d: player %d outside swarm range [%d, %d)",
					i+1, len(req.Posts), p.Player, sess.player, sess.playerTo)}
			}
			player = p.Player
		}
		if err := s.appendPostLocked(sess, req.Seq, player, p.Object, p.Value, p.Positive); err != nil {
			return wire.Response{Err: fmt.Sprintf("batch post %d/%d: %v", i+1, len(req.Posts), err)}
		}
	}
	if req.EndRound {
		if s.cfg.Mode == ModeEpoch {
			// Epoch-stamped post batch: the posts above bound to the open
			// epoch, and the same frame advances the sender's lamport stamp —
			// the posts are already applied under this lock, so the epoch the
			// stamp releases necessarily contains them. Non-blocking: the
			// caller polls epoch frames to observe the seal.
			target := req.Epoch
			if target == 0 {
				target = s.round + 1
			}
			s.stampLocked(sess, target)
			s.advanceLocked()
			s.armEpochTickLocked()
			return wire.Response{Round: s.round}
		}
		return s.barrierLocked(sess, req.Seq)
	}
	return wire.Response{Round: s.round}
}

// epochLocked serves one epoch pacing frame (protocol v8, epoch mode): it
// advances the session's lamport stamp, re-checks the seal condition, and
// answers the currently open epoch without ever blocking — the non-blocking
// analogue of barrier arrival.
func (s *Server) epochLocked(sess *session, req *wire.Request) wire.Response {
	if s.cfg.Mode != ModeEpoch {
		return wire.Response{Err: "epoch requests require an epoch-mode server"}
	}
	s.stampLocked(sess, req.Epoch)
	s.advanceLocked()
	s.armEpochTickLocked()
	return wire.Response{Round: s.round}
}

// stampLocked advances the lamport epoch stamp of every active member the
// session speaks for (the whole block, for a swarm session). Stamps are
// monotone: a stale or replayed frame can never move one backwards.
func (s *Server) stampLocked(sess *session, epoch int) {
	from, to := sess.memberRange()
	for p := from; p < to; p++ {
		if s.active[p] && epoch > s.lastStamp[p] {
			s.lastStamp[p] = epoch
		}
	}
}

// armEpochTickLocked starts the epoch clock on first epoch activity (epoch
// mode with EpochTick set). The timer re-arms itself from its own callback,
// so one arm keeps the clock running for the server's life; Close stops it
// and the callback's closed-check makes a racing tick a no-op.
func (s *Server) armEpochTickLocked() {
	if s.cfg.Mode != ModeEpoch || s.cfg.EpochTick <= 0 || s.closed || s.epochTimer != nil {
		return
	}
	s.epochTimer = time.AfterFunc(s.cfg.EpochTick, s.epochExpire)
}

// epochExpire fires on each epoch clock tick: if at least one active player
// has stamped past the open epoch, the epoch seals without waiting for the
// stragglers — whose late posts then bind to the next open epoch. This is
// the liveness escape hatch of tick mode; pure lamport closure (tick zero)
// never force-seals and keeps byte-exact digest parity with sync mode.
func (s *Server) epochExpire() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	moved := false
	for p := range s.active {
		if s.lastStamp[p] > s.round {
			moved = true
			break
		}
	}
	if moved && len(s.registered) >= s.cfg.Expected {
		forced := false
		for p := range s.active {
			if !s.arrived[p] && s.lastStamp[p] <= s.round {
				forced = true
			}
			s.arrived[p] = true
		}
		if forced {
			s.m.epochTickSeals.Inc()
		}
		s.advanceLocked()
	}
	s.epochTimer.Reset(s.cfg.EpochTick)
}

func (s *Server) votesLocked(ofPlayer int) wire.Response {
	if ofPlayer < 0 || ofPlayer >= len(s.cfg.Tokens) {
		return wire.Response{Err: fmt.Sprintf("player %d out of range", ofPlayer)}
	}
	if msgs, ok := s.cacheVotes[ofPlayer]; ok {
		s.m.cacheHits.Inc()
		return wire.Response{Votes: msgs, Round: s.round}
	}
	s.m.cacheMisses.Inc()
	var msgs []wire.VoteMsg
	if s.sharded() {
		msgs = s.shardVotesLocked(ofPlayer)
	} else {
		votes := s.board.Votes(ofPlayer)
		msgs = make([]wire.VoteMsg, len(votes))
		for i, v := range votes {
			msgs[i] = wire.VoteMsg{Player: v.Player, Object: v.Object, Round: v.Round, Value: v.Value}
		}
	}
	if s.cacheVotes == nil {
		s.cacheVotes = make(map[int][]wire.VoteMsg)
	}
	s.cacheVotes[ofPlayer] = msgs
	return wire.Response{Votes: msgs, Round: s.round}
}

// voteBatchLocked answers a bulk vote read (protocol v7): the committed
// votes of every listed player, concatenated — each VoteMsg names its
// player, so the caller regroups them. Players without votes contribute
// nothing. Serving one frame instead of len(Players) round-trips is what
// keeps a million-player swarm's advice rounds latency-bound on frames,
// not on per-player reads; the per-player results land in the same
// committed-round cache ReqVotes uses.
func (s *Server) voteBatchLocked(req *wire.Request) wire.Response {
	var out []wire.VoteMsg
	for _, p := range req.Players {
		r := s.votesLocked(p)
		if r.Err != "" {
			return r
		}
		out = append(out, r.Votes...)
	}
	return wire.Response{Votes: out, Round: s.round}
}

// votedObjectsLocked serves the voted-object set from the committed-round
// cache, computing it once per round.
func (s *Server) votedObjectsLocked() []int {
	if !s.cacheHasVoted {
		s.m.cacheMisses.Inc()
		if s.sharded() {
			s.cacheVoted = s.shardVotedObjectsLocked()
		} else {
			s.cacheVoted = s.board.VotedObjects()
		}
		s.cacheHasVoted = true
	} else {
		s.m.cacheHits.Inc()
	}
	return s.cacheVoted
}

// windowLocked serves window counts from the committed-round cache, keyed
// by the window bounds.
func (s *Server) windowLocked(from, to int) map[int]int {
	key := [2]int{from, to}
	if counts, ok := s.cacheWindows[key]; ok {
		s.m.cacheHits.Inc()
		return counts
	}
	s.m.cacheMisses.Inc()
	var counts map[int]int
	if s.sharded() {
		counts = s.shardWindowLocked(from, to)
	} else {
		counts = s.board.CountVotesInWindow(from, to)
	}
	if s.cacheWindows == nil {
		s.cacheWindows = make(map[[2]int]map[int]int)
	}
	s.cacheWindows[key] = counts
	return counts
}

// invalidateReadCacheLocked drops the committed-round read cache; called
// whenever the committed billboard state changes (EndRound).
func (s *Server) invalidateReadCacheLocked() {
	s.cacheVotes = nil
	s.cacheWindows = nil
	s.cacheVoted = nil
	s.cacheHasVoted = false
}

func (s *Server) voteCountLocked(obj int) wire.Response {
	if obj < 0 || obj >= s.cfg.Universe.M() {
		return wire.Response{Err: fmt.Sprintf("object %d out of range", obj)}
	}
	if s.sharded() {
		ln := s.laneFor(obj)
		if !s.waitLaneUpLocked(ln) {
			return wire.Response{Err: errServerClosed}
		}
		return wire.Response{Count: ln.board.VoteCount(obj), Round: s.round}
	}
	return wire.Response{Count: s.board.VoteCount(obj), Round: s.round}
}

func (s *Server) negCountLocked(obj int) wire.Response {
	if obj < 0 || obj >= s.cfg.Universe.M() {
		return wire.Response{Err: fmt.Sprintf("object %d out of range", obj)}
	}
	if s.sharded() {
		ln := s.laneFor(obj)
		if !s.waitLaneUpLocked(ln) {
			return wire.Response{Err: errServerClosed}
		}
		return wire.Response{Count: ln.board.NegativeCount(obj), Round: s.round}
	}
	return wire.Response{Count: s.board.NegativeCount(obj), Round: s.round}
}

// barrierLocked marks the player — every still-active member, for a swarm
// session — as arrived and blocks until the round advances (or the server
// closes). The first arrival of a round arms the barrier deadline, if one
// is configured.
func (s *Server) barrierLocked(sess *session, seq uint64) wire.Response {
	if sess.swarm {
		return s.swarmBarrierLocked(sess, seq)
	}
	player := sess.player
	if !s.active[player] {
		return wire.Response{Err: "player is done; no barrier"}
	}
	if s.arrived[player] {
		return wire.Response{Err: "double barrier in one round"}
	}
	// Journaled (round-buffered, like the posts): a committed round's
	// arrivals bind the session's dedup window across a restart; an
	// uncommitted round's are rolled back and re-arrive on retry.
	if s.cfg.Journal != nil {
		if err := s.cfg.Journal.Barrier(sess.id, seq, player); err != nil {
			return wire.Response{Err: fmt.Sprintf("journal: %v", err)}
		}
	}
	s.arrived[player] = true
	target := s.round + 1
	s.advanceLocked()
	return s.awaitRoundLocked(target)
}

// swarmBarrierLocked arrives every still-active member of a swarm session
// at the round barrier atomically — one journal record (Player -1, meaning
// "all active members of Session") and one blocking wait stand in for the
// whole block's arrivals.
func (s *Server) swarmBarrierLocked(sess *session, seq uint64) wire.Response {
	n := 0
	for p := sess.player; p < sess.playerTo; p++ {
		if !s.active[p] {
			continue
		}
		if s.arrived[p] {
			return wire.Response{Err: "double barrier in one round"}
		}
		n++
	}
	if n == 0 {
		return wire.Response{Err: "player is done; no barrier"}
	}
	if s.cfg.Journal != nil {
		if err := s.cfg.Journal.Barrier(sess.id, seq, -1); err != nil {
			return wire.Response{Err: fmt.Sprintf("journal: %v", err)}
		}
	}
	for p := sess.player; p < sess.playerTo; p++ {
		if s.active[p] {
			s.arrived[p] = true
		}
	}
	target := s.round + 1
	s.advanceLocked()
	return s.awaitRoundLocked(target)
}

// awaitRoundLocked arms the barrier deadline (when the round did not commit
// immediately) and blocks until the round reaches target or the server
// closes. Caller holds s.mu.
func (s *Server) awaitRoundLocked(target int) wire.Response {
	if s.round < target && s.cfg.BarrierDeadline > 0 && s.armedRound != s.round {
		s.armedRound = s.round
		round := s.round
		s.barrierTimer = time.AfterFunc(s.cfg.BarrierDeadline, func() { s.barrierExpire(round) })
	}
	var waitStart time.Time
	if s.m.enabled {
		waitStart = time.Now()
	}
	for s.round < target && !s.closed {
		s.cond.Wait()
	}
	s.m.barrierWait.ObserveSince(waitStart)
	if s.closed && s.round < target {
		return wire.Response{Err: errServerClosed}
	}
	return wire.Response{Round: s.round}
}

// barrierExpire fires when a round barrier outlived its deadline: every
// active player that has not arrived is force-Done'd — journaled, logged —
// and the round commits.
func (s *Server) barrierExpire(round int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.round != round {
		return
	}
	var stragglers []int
	for p := range s.active {
		if !s.arrived[p] {
			stragglers = append(stragglers, p)
		}
	}
	sort.Ints(stragglers)
	for _, p := range stragglers {
		s.forceDone[p] = round
		s.m.forceDone.Inc()
		s.logf("round %d barrier deadline (%v) expired: force-done straggler player %d",
			round, s.cfg.BarrierDeadline, p)
		if s.cfg.Journal != nil {
			_ = s.cfg.Journal.ForceDone(p)
		}
		if sess := s.byPlayer[p]; sess != nil {
			delete(s.sessions, sess.id)
			delete(s.byPlayer, p)
		}
		delete(s.active, p)
		delete(s.arrived, p)
	}
	s.advanceLocked()
}

// leaveLocked deregisters a player from future barriers and re-checks the
// advance condition (its arrival is no longer required).
func (s *Server) leaveLocked(player int) {
	if !s.active[player] {
		return
	}
	delete(s.active, player)
	delete(s.arrived, player)
	s.advanceLocked()
}

// advanceLocked commits the round when everyone expected has registered and
// every active player has arrived. In epoch mode "arrived" is synthesized
// from the lamport stamps — a player whose stamp has passed the open epoch
// has finished submitting it — which makes the epoch seal condition
// isomorphic to the sync barrier and the committed per-epoch post sets (and
// hence the board digests) identical by construction under pure lamport
// closure. The check loops because a commit opens the next epoch, which the
// standing stamps may in principle already close.
func (s *Server) advanceLocked() {
	for {
		r := s.round
		if s.cfg.Mode == ModeEpoch {
			for p := range s.active {
				if s.lastStamp[p] > r {
					s.arrived[p] = true
				}
			}
		}
		s.advanceOnceLocked()
		if s.cfg.Mode != ModeEpoch || s.round == r {
			return
		}
	}
}

func (s *Server) advanceOnceLocked() {
	if len(s.registered) < s.cfg.Expected {
		return
	}
	if len(s.active) == 0 || len(s.arrived) < len(s.active) {
		return
	}
	if s.sharded() {
		// The per-round shard barrier: every lane must seal before the round
		// is observable. A down lane leaves the round open (waiters stay
		// blocked); RestartShard re-runs this advance.
		if !s.commitShardedLocked() {
			return
		}
	} else {
		sealed := s.round
		s.board.EndRound()
		s.round++
		s.roundA.Store(int64(s.round))
		s.m.rounds.Inc()
		s.invalidateReadCacheLocked()
		if s.cfg.Journal != nil {
			// A marker failure is logged into the error path on the next post;
			// the in-memory board stays authoritative for this process.
			if s.cfg.Mode == ModeEpoch {
				// The epoch marker precedes the round marker so SyncCommit's
				// round-marker fsync makes both durable together; replay is
				// board-neutral on it (the round markers alone rebuild state).
				_ = s.cfg.Journal.EpochMark(sealed)
				s.m.epochSeals.Inc()
			}
			if s.replLog != nil {
				_ = s.cfg.Journal.EndRoundQuorum(nil, s.replTerm, s.replQuorum)
			} else {
				_ = s.cfg.Journal.EndRound()
			}
		} else if s.cfg.Mode == ModeEpoch {
			s.m.epochSeals.Inc()
		}
	}
	for p := range s.arrived {
		delete(s.arrived, p)
	}
	if s.barrierTimer != nil && s.armedRound >= 0 {
		s.barrierTimer.Stop()
		s.armedRound = -1
	}
	// Never rotate once shutdown has begun: Close's broadcast makes barrier
	// waiters record the errServerClosed sentinel in their dedup windows, and
	// a snapshot taken after that would persist those sentinels — a recovered
	// server would then replay "server closed" to every retry, forever. The
	// EndRound marker above already made this commit durable in the journal.
	// (A sharded commit rotates inside its own critical section instead.)
	if !s.sharded() && s.cfg.Persist != nil && !s.closed && s.cfg.SnapshotEvery > 0 && s.round%s.cfg.SnapshotEvery == 0 {
		s.rotateLocked()
	}
	s.cond.Broadcast()
}
