// Package server implements the shared billboard as a network service: the
// system component the paper assumes ("the system maintains a shared
// billboard", §1). Players connect over TCP, authenticate with a bearer
// token bound to their player id (the §2.1 reliable identity tagging),
// probe objects, post reports, read votes, and synchronize rounds through a
// barrier — the timestamp-based simulation of synchrony that §1.2 sketches.
//
// The server owns the ground truth (the object universe): a probe request
// reveals an object's value only to the prober and charges its cost, so
// honest clients remain value-blind exactly as in the in-process engine.
// Byzantine clients may post whatever they like — the billboard's vote
// discipline (one vote per player, identity-tagged) is enforced here, not
// trusted to clients.
package server

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/billboard"
	"repro/internal/journal"
	"repro/internal/object"
	"repro/internal/wire"
)

// Config describes a billboard service instance.
type Config struct {
	// Universe is the ground truth (required).
	Universe *object.Universe
	// Tokens holds the bearer token for each player id; len(Tokens) is the
	// number of players N (required, non-empty).
	Tokens []string
	// Alpha and Beta are the assumed parameters advertised to clients at
	// Hello (what the protocol should be initialized with).
	Alpha, Beta float64
	// VotesPerPlayer is the vote cap f (default 1).
	VotesPerPlayer int
	// Expected is the number of players that must register before round 0
	// can complete; 0 means all N.
	Expected int
	// Journal, when non-nil, receives every accepted post and a marker per
	// committed round, so the billboard can be rebuilt after a crash (see
	// internal/journal). Accounting stats (probes, costs) are observability
	// only and are not journaled.
	Journal *journal.Writer
	// Recover, when non-nil, replays a journal to restore the billboard
	// (and round counter) before serving. A truncated tail is tolerated:
	// the uncommitted final round is discarded per the synchrony contract.
	Recover io.Reader
	// RecoverSnapshot, when non-nil, restores the billboard from a Compact
	// snapshot first; Recover (if also set) then replays the journal tail
	// written after that snapshot. Snapshot + tail = exact state, which is
	// how a long-running service truncates its journal.
	RecoverSnapshot []byte
}

// Server is a running billboard service. Construct with New, then Start.
type Server struct {
	cfg Config
	ln  net.Listener

	mu         sync.Mutex
	cond       *sync.Cond
	board      *billboard.Board
	round      int
	registered map[int]bool
	active     map[int]bool
	arrived    map[int]bool
	probes     []int
	cost       []float64
	satisfied  []bool
	closed     bool

	wg sync.WaitGroup
}

// New validates cfg and builds a server (not yet listening).
func New(cfg Config) (*Server, error) {
	if cfg.Universe == nil {
		return nil, fmt.Errorf("server: Config.Universe is required")
	}
	if len(cfg.Tokens) == 0 {
		return nil, fmt.Errorf("server: Config.Tokens must name at least one player")
	}
	if cfg.Expected == 0 {
		cfg.Expected = len(cfg.Tokens)
	}
	if cfg.Expected < 1 || cfg.Expected > len(cfg.Tokens) {
		return nil, fmt.Errorf("server: Expected %d outside [1, %d]", cfg.Expected, len(cfg.Tokens))
	}
	mode := billboard.FirstPositive
	if !cfg.Universe.LocalTesting() {
		mode = billboard.BestValue
	}
	boardCfg := billboard.Config{
		Players:        len(cfg.Tokens),
		Objects:        cfg.Universe.M(),
		Mode:           mode,
		VotesPerPlayer: cfg.VotesPerPlayer,
	}
	var board *billboard.Board
	var err error
	switch {
	case cfg.RecoverSnapshot != nil:
		board, err = billboard.Restore(cfg.RecoverSnapshot, nil)
		if err != nil {
			return nil, fmt.Errorf("server: recover snapshot: %w", err)
		}
		if cfg.Recover != nil {
			if err := journal.Apply(cfg.Recover, board); err != nil && !errors.Is(err, journal.ErrTruncated) {
				return nil, fmt.Errorf("server: recover tail: %w", err)
			}
		}
	case cfg.Recover != nil:
		board, err = journal.Rebuild(cfg.Recover, boardCfg)
		if err != nil && !errors.Is(err, journal.ErrTruncated) {
			return nil, fmt.Errorf("server: recover: %w", err)
		}
	default:
		board, err = billboard.New(boardCfg)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
	}
	s := &Server{
		cfg:        cfg,
		round:      board.Round(), // continues from a recovered journal
		board:      board,
		registered: make(map[int]bool),
		active:     make(map[int]bool),
		arrived:    make(map[int]bool),
		probes:     make([]int, len(cfg.Tokens)),
		cost:       make([]float64, len(cfg.Tokens)),
		satisfied:  make([]bool, len(cfg.Tokens)),
	}
	s.cond = sync.NewCond(&s.mu)
	return s, nil
}

// Start listens on addr ("127.0.0.1:0" picks a free port) and serves
// connections until Close. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("server: %w", err)
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

// Close stops the listener, wakes blocked barrier waiters, and waits for
// connection handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.wg.Wait()
	return err
}

// Round returns the current round number.
func (s *Server) Round() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.round
}

// Compact serializes the billboard's committed state. The caller may then
// truncate the journal and start a new one: RecoverSnapshot + the new
// journal reproduce the exact state. It fails if a round is in flight
// (uncommitted posts); retry after the next barrier.
func (s *Server) Compact() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.board.Snapshot()
}

// Stats returns per-player probe counts, costs, and satisfaction as
// observed by the server, plus the current round.
func (s *Server) Stats() (probes []int, cost []float64, satisfied []bool, round int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int(nil), s.probes...),
		append([]float64(nil), s.cost...),
		append([]bool(nil), s.satisfied...),
		s.round
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// handle serves one connection: a Hello followed by any number of requests.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)

	player := -1
	defer func() {
		// A dropped connection must not wedge the barrier: auto-Done.
		if player >= 0 {
			s.mu.Lock()
			s.leaveLocked(player)
			s.mu.Unlock()
		}
	}()

	for {
		var req wire.Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		var resp wire.Response
		if player < 0 && req.Type != wire.ReqHello {
			resp.Err = "not authenticated: send hello first"
		} else {
			switch req.Type {
			case wire.ReqHello:
				resp = s.hello(&req)
				if resp.Err == "" {
					player = req.Player
				}
			case wire.ReqProbe:
				resp = s.probe(player, req.Object)
			case wire.ReqPost:
				resp = s.post(player, &req)
			case wire.ReqVotes:
				resp = s.votes(req.OfPlayer)
			case wire.ReqVotedObjects:
				resp = s.votedObjects()
			case wire.ReqVoteCount:
				resp = s.voteCount(req.Object)
			case wire.ReqNegCount:
				resp = s.negCount(req.Object)
			case wire.ReqWindow:
				resp = s.window(req.From, req.To)
			case wire.ReqBarrier:
				resp = s.barrier(player)
			case wire.ReqDone:
				s.mu.Lock()
				s.leaveLocked(player)
				s.mu.Unlock()
			default:
				resp.Err = fmt.Sprintf("unknown request type %v", req.Type)
			}
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

func (s *Server) hello(req *wire.Request) wire.Response {
	s.mu.Lock()
	defer s.mu.Unlock()
	if req.Version != wire.Version {
		return wire.Response{Err: fmt.Sprintf("protocol version %d, server speaks %d",
			req.Version, wire.Version)}
	}
	p := req.Player
	if p < 0 || p >= len(s.cfg.Tokens) {
		return wire.Response{Err: fmt.Sprintf("player %d out of range", p)}
	}
	if s.cfg.Tokens[p] != req.Token {
		return wire.Response{Err: "bad token"}
	}
	if s.registered[p] {
		return wire.Response{Err: fmt.Sprintf("player %d already registered", p)}
	}
	s.registered[p] = true
	s.active[p] = true
	u := s.cfg.Universe
	costs := make([]float64, u.M())
	for i := range costs {
		costs[i] = u.Cost(i)
	}
	s.advanceLocked() // registration may complete a waiting barrier
	return wire.Response{
		N:            len(s.cfg.Tokens),
		M:            u.M(),
		LocalTesting: u.LocalTesting(),
		Alpha:        s.cfg.Alpha,
		Beta:         s.cfg.Beta,
		Costs:        costs,
		Round:        s.round,
	}
}

func (s *Server) probe(player, obj int) wire.Response {
	s.mu.Lock()
	defer s.mu.Unlock()
	u := s.cfg.Universe
	if obj < 0 || obj >= u.M() {
		return wire.Response{Err: fmt.Sprintf("object %d out of range", obj)}
	}
	s.probes[player]++
	s.cost[player] += u.Cost(obj)
	good := u.LocalTesting() && u.IsGood(obj)
	if good {
		s.satisfied[player] = true
	}
	return wire.Response{Value: u.Value(obj), Good: good, Cost: u.Cost(obj), Round: s.round}
}

func (s *Server) post(player int, req *wire.Request) wire.Response {
	s.mu.Lock()
	defer s.mu.Unlock()
	post := billboard.Post{
		Player:   player, // authenticated identity, not client-claimed
		Object:   req.Object,
		Value:    req.Value,
		Positive: req.Positive,
	}
	if err := s.board.Post(post); err != nil {
		return wire.Response{Err: err.Error()}
	}
	if s.cfg.Journal != nil {
		if err := s.cfg.Journal.Append(post); err != nil {
			return wire.Response{Err: fmt.Sprintf("journal: %v", err)}
		}
	}
	return wire.Response{Round: s.round}
}

func (s *Server) votes(ofPlayer int) wire.Response {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ofPlayer < 0 || ofPlayer >= len(s.cfg.Tokens) {
		return wire.Response{Err: fmt.Sprintf("player %d out of range", ofPlayer)}
	}
	votes := s.board.Votes(ofPlayer)
	msgs := make([]wire.VoteMsg, len(votes))
	for i, v := range votes {
		msgs[i] = wire.VoteMsg{Player: v.Player, Object: v.Object, Round: v.Round, Value: v.Value}
	}
	return wire.Response{Votes: msgs, Round: s.round}
}

func (s *Server) votedObjects() wire.Response {
	s.mu.Lock()
	defer s.mu.Unlock()
	return wire.Response{Objects: s.board.VotedObjects(), Round: s.round}
}

func (s *Server) voteCount(obj int) wire.Response {
	s.mu.Lock()
	defer s.mu.Unlock()
	if obj < 0 || obj >= s.cfg.Universe.M() {
		return wire.Response{Err: fmt.Sprintf("object %d out of range", obj)}
	}
	return wire.Response{Count: s.board.VoteCount(obj), Round: s.round}
}

func (s *Server) negCount(obj int) wire.Response {
	s.mu.Lock()
	defer s.mu.Unlock()
	if obj < 0 || obj >= s.cfg.Universe.M() {
		return wire.Response{Err: fmt.Sprintf("object %d out of range", obj)}
	}
	return wire.Response{Count: s.board.NegativeCount(obj), Round: s.round}
}

func (s *Server) window(from, to int) wire.Response {
	s.mu.Lock()
	defer s.mu.Unlock()
	return wire.Response{Counts: s.board.CountVotesInWindow(from, to), Round: s.round}
}

// barrier marks the player as arrived and blocks until the round advances
// (or the server closes).
func (s *Server) barrier(player int) wire.Response {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.active[player] {
		return wire.Response{Err: "player is done; no barrier"}
	}
	if s.arrived[player] {
		return wire.Response{Err: "double barrier in one round"}
	}
	s.arrived[player] = true
	target := s.round + 1
	s.advanceLocked()
	for s.round < target && !s.closed {
		s.cond.Wait()
	}
	if s.closed && s.round < target {
		return wire.Response{Err: "server closed"}
	}
	return wire.Response{Round: s.round}
}

// leaveLocked deregisters a player from future barriers and re-checks the
// advance condition (its arrival is no longer required).
func (s *Server) leaveLocked(player int) {
	if !s.active[player] {
		return
	}
	delete(s.active, player)
	delete(s.arrived, player)
	s.advanceLocked()
}

// advanceLocked commits the round when everyone expected has registered and
// every active player has arrived.
func (s *Server) advanceLocked() {
	if len(s.registered) < s.cfg.Expected {
		return
	}
	if len(s.active) == 0 || len(s.arrived) < len(s.active) {
		return
	}
	s.board.EndRound()
	s.round++
	if s.cfg.Journal != nil {
		// A marker failure is logged into the error path on the next post;
		// the in-memory board stays authoritative for this process.
		_ = s.cfg.Journal.EndRound()
	}
	for p := range s.arrived {
		delete(s.arrived, p)
	}
	s.cond.Broadcast()
}
