package server

import (
	"net"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// serverMetrics bundles the service's metric handles. When Config.Metrics
// is nil the struct stays zero-valued: every handle is nil and every
// recording call is a single-branch no-op (obs handles are nil-safe), so
// an uninstrumented server pays nothing beyond those branches.
type serverMetrics struct {
	enabled bool

	connections *obs.Counter
	requests    [wire.ReqEpoch + 1]*obs.Counter
	requestsBad *obs.Counter
	rpcSeconds  *obs.Histogram
	bytesIn     *obs.Counter
	bytesOut    *obs.Counter

	sessionsOpened  *obs.Counter
	sessionsResumed *obs.Counter
	sessionsExpired *obs.Counter
	dedupReplays    *obs.Counter

	cacheHits   *obs.Counter
	cacheMisses *obs.Counter

	barrierWait *obs.Histogram
	rounds      *obs.Counter
	forceDone   *obs.Counter

	epochSeals     *obs.Counter
	epochTickSeals *obs.Counter

	snapshots       *obs.Counter
	journalReplayed *obs.Counter
	replaySeconds   *obs.Histogram

	shardRestarts *obs.Counter

	commitSeconds *obs.Histogram
	commitPhase   [commitPhases]*obs.Histogram
}

// Commit phases of the sharded round pipeline, in execution order: freeze
// (acquire every lane lock), admit (per-lane merge + global vote admission),
// journal (coordinator commit-point marker), seal (parallel per-lane feed +
// lane marker + board EndRound + cache invalidate).
const (
	phaseFreeze = iota
	phaseAdmit
	phaseJournal
	phaseSeal
	commitPhases
)

var commitPhaseNames = [commitPhases]string{"freeze", "admit", "journal", "seal"}

// commitBuckets resolves the commit-phase histograms: the phases of an
// in-memory commit sit well under obs.DefBuckets' 100µs floor, so these
// start at 1µs.
var commitBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2, 1e-1,
}

// newServerMetrics registers the server_* metric family in reg. A nil reg
// returns the inert zero value.
func newServerMetrics(reg *obs.Registry) serverMetrics {
	if reg == nil {
		return serverMetrics{}
	}
	m := serverMetrics{
		enabled:     true,
		connections: reg.Counter("server_connections_total", "client connections accepted"),
		requestsBad: reg.Counter(`server_requests_total{type="unknown"}`, "decoded client frames by request type"),
		rpcSeconds:  reg.Histogram("server_request_seconds", "request handling latency (includes barrier blocking)", nil),
		bytesIn:     reg.Counter("server_read_bytes_total", "bytes read from clients"),
		bytesOut:    reg.Counter("server_written_bytes_total", "bytes written to clients"),

		sessionsOpened:  reg.Counter("server_sessions_opened_total", "fresh sessions registered"),
		sessionsResumed: reg.Counter("server_sessions_resumed_total", "disconnected sessions resumed within grace"),
		sessionsExpired: reg.Counter("server_sessions_expired_total", "sessions ended by lease expiry or zero-grace disconnect"),
		dedupReplays:    reg.Counter("server_dedup_replays_total", "retransmitted requests answered from the dedup cache"),

		cacheHits:   reg.Counter("server_read_cache_hits_total", "committed-round reads served from cache"),
		cacheMisses: reg.Counter("server_read_cache_misses_total", "committed-round reads that built a cache entry"),

		barrierWait: reg.Histogram("server_barrier_wait_seconds", "time a player blocked at the round barrier", nil),
		rounds:      reg.Counter("server_rounds_total", "rounds committed"),
		forceDone:   reg.Counter("server_force_done_total", "players expelled by a barrier deadline"),

		epochSeals:     reg.Counter("server_epoch_seals_total", "epochs sealed (epoch mode)"),
		epochTickSeals: reg.Counter("server_epoch_tick_seals_total", "epochs sealed by the tick clock without all stamps (epoch mode)"),

		snapshots:       reg.Counter("server_snapshots_total", "service snapshots taken at journal rotation"),
		journalReplayed: reg.Counter("server_journal_replayed_total", "journal records replayed at recovery"),
		replaySeconds:   reg.Histogram("server_journal_replay_seconds", "recovery replay latency (snapshot restore + journal tail)", nil),

		shardRestarts: reg.Counter("server_shard_restarts_total", "shard lanes rebuilt by RestartShard"),

		commitSeconds: reg.Histogram("server_commit_seconds",
			"sharded round commit latency, all phases", commitBuckets),
	}
	for i, name := range commitPhaseNames {
		m.commitPhase[i] = reg.Histogram(
			`server_commit_phase_seconds{phase="`+name+`"}`,
			"sharded round commit latency by pipeline phase", commitBuckets)
	}
	for t := wire.ReqHello; t <= wire.ReqEpoch; t++ {
		m.requests[t] = reg.Counter(
			`server_requests_total{type="`+t.String()+`"}`,
			"decoded client frames by request type")
	}
	return m
}

// phaseTick observes the time since prev in a commit-phase histogram and
// returns the new reference instant; a disabled zero value skips the clock
// read entirely and returns prev unchanged.
func (m *serverMetrics) phaseTick(phase int, prev time.Time) time.Time {
	if !m.enabled {
		return prev
	}
	now := time.Now()
	m.commitPhase[phase].Observe(now.Sub(prev).Seconds())
	return now
}

// request returns the per-type frame counter (nil-safe for unknown types
// and for the disabled zero value).
func (m *serverMetrics) request(t wire.ReqType) *obs.Counter {
	if t >= wire.ReqHello && t <= wire.ReqEpoch {
		return m.requests[t]
	}
	return m.requestsBad
}

// countingConn wraps a connection so every byte moved is attributed to the
// server_read/written_bytes_total counters. Installed only when metrics
// are enabled, so the uninstrumented read path keeps its direct conn.
type countingConn struct {
	net.Conn
	in, out *obs.Counter
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(int64(n))
	return n, err
}
