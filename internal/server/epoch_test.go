package server_test

import (
	"bufio"
	"bytes"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/journal"
	"repro/internal/object"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/internal/wire"
)

// startEpochServer mirrors startServer but runs the server in epoch mode.
func startEpochServer(t *testing.T, players, good int, tick time.Duration) (addr string, srv *server.Server) {
	t.Helper()
	u, err := object.NewPlanted(object.Planted{M: 32, Good: good}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	tokens := make([]string, players)
	for i := range tokens {
		tokens[i] = "tok"
	}
	srv, err = server.New(server.Config{
		Universe: u, Tokens: tokens, Alpha: 1, Beta: u.Beta(),
		Mode: server.ModeEpoch, EpochTick: tick,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err = srv.Start("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr, srv
}

func TestEpochConfigValidation(t *testing.T) {
	u, err := object.NewPlanted(object.Planted{M: 8, Good: 1}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	tok := []string{"a"}
	cases := []struct {
		name string
		cfg  server.Config
	}{
		{"unknown mode", server.Config{Universe: u, Tokens: tok, Mode: server.Mode(9)}},
		{"negative mode", server.Config{Universe: u, Tokens: tok, Mode: server.Mode(-1)}},
		{"barrier deadline in epoch mode", server.Config{
			Universe: u, Tokens: tok, Mode: server.ModeEpoch, BarrierDeadline: time.Second}},
		{"negative tick", server.Config{
			Universe: u, Tokens: tok, Mode: server.ModeEpoch, EpochTick: -time.Second}},
		{"tick without epoch mode", server.Config{
			Universe: u, Tokens: tok, EpochTick: time.Second}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := server.New(tc.cfg); err == nil {
				t.Fatal("expected error")
			}
		})
	}
	// Both valid modes construct.
	for _, m := range []server.Mode{server.ModeSync, server.ModeEpoch} {
		srv, err := server.New(server.Config{Universe: u, Tokens: tok, Mode: m})
		if err != nil {
			t.Fatalf("mode %v rejected: %v", m, err)
		}
		srv.Close()
	}
}

// TestEpochHelloAdvertisesMode pins the v8 Hello payload: clients learn the
// operation mode from the handshake, nowhere else.
func TestEpochHelloAdvertisesMode(t *testing.T) {
	addr, _ := startEpochServer(t, 1, 1, 0)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.EncodeRequest(conn, &wire.Request{
		Type: wire.ReqHello, Player: 0, Token: "tok", Version: wire.Version,
		Session: 1, Seq: 1,
	}); err != nil {
		t.Fatal(err)
	}
	resp, err := wire.DecodeResponse(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err != "" {
		t.Fatal(resp.Err)
	}
	if resp.Mode != wire.ModeEpoch {
		t.Fatalf("hello Mode = %d, want ModeEpoch", resp.Mode)
	}
}

// TestEpochBarrierFrameRejected pins the no-blocking invariant: an
// epoch-mode server serves no barrier waits at all.
func TestEpochBarrierFrameRejected(t *testing.T) {
	addr, _ := startEpochServer(t, 1, 1, 0)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// The server speaks connection-scoped stream codecs (protocol v6), so a
	// multi-frame raw exchange must too.
	enc := wire.NewStreamEncoder(conn)
	dec := wire.NewStreamDecoder(bufio.NewReader(conn))
	if err := enc.EncodeRequest(&wire.Request{
		Type: wire.ReqHello, Player: 0, Token: "tok", Version: wire.Version,
		Session: 1, Seq: 1,
	}); err != nil {
		t.Fatal(err)
	}
	var resp wire.Response
	if err := dec.DecodeResponse(&resp); err != nil || resp.Err != "" {
		t.Fatalf("hello: %v %q", err, resp.Err)
	}
	if err := enc.EncodeRequest(&wire.Request{
		Type: wire.ReqBarrier, Session: 1, Seq: 1,
	}); err != nil {
		t.Fatal(err)
	}
	resp = wire.Response{}
	if err := dec.DecodeResponse(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Err == "" || !strings.Contains(resp.Err, "epoch mode") {
		t.Fatalf("barrier served in epoch mode: %+v", resp)
	}
}

// TestEpochRejectedOnSyncServer is the converse: epoch pacing frames are a
// v8 epoch-mode construct and a synchronous server refuses them.
func TestEpochRejectedOnSyncServer(t *testing.T) {
	addr, _, _ := startServer(t, 1, 1)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := wire.NewStreamEncoder(conn)
	dec := wire.NewStreamDecoder(bufio.NewReader(conn))
	if err := enc.EncodeRequest(&wire.Request{
		Type: wire.ReqHello, Player: 0, Token: "tok", Version: wire.Version,
		Session: 1, Seq: 1,
	}); err != nil {
		t.Fatal(err)
	}
	var resp wire.Response
	if err := dec.DecodeResponse(&resp); err != nil || resp.Err != "" {
		t.Fatalf("hello: %v %q", err, resp.Err)
	}
	if resp.Mode != wire.ModeSync {
		t.Fatalf("sync hello Mode = %d", resp.Mode)
	}
	if err := enc.EncodeRequest(&wire.Request{
		Type: wire.ReqEpoch, Epoch: 1, Session: 1, Seq: 1,
	}); err != nil {
		t.Fatal(err)
	}
	resp = wire.Response{}
	if err := dec.DecodeResponse(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Err == "" || !strings.Contains(resp.Err, "epoch") {
		t.Fatalf("epoch frame served by a sync server: %+v", resp)
	}
}

// TestEpochStampClosure pins the pure-lamport seal rule (EpochTick zero): an
// epoch stays open until every active player has stamped past it, then
// closes without any blocked request.
func TestEpochStampClosure(t *testing.T) {
	addr, srv := startEpochServer(t, 2, 1, 0)
	c0, err := client.Dial(addr, 0, "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c1, err := client.Dial(addr, 1, "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	if err := c0.Post(5, 1, true); err != nil {
		t.Fatal(err)
	}
	// c0 ends its epoch; the epoch must stay open (c1 has not stamped), and
	// c0's pacing loop must spin rather than block server-side.
	done := make(chan int, 1)
	go func() {
		round, err := c0.Barrier()
		if err != nil {
			done <- -1
			return
		}
		done <- round
	}()
	select {
	case r := <-done:
		t.Fatalf("epoch sealed early with round %d", r)
	case <-time.After(50 * time.Millisecond):
	}
	if srv.Round() != 0 {
		t.Fatalf("epoch sealed with one stamp: round %d", srv.Round())
	}
	// c1 stamps: both players are now past epoch 0 and it seals for everyone.
	if r, err := c1.Barrier(); err != nil || r != 1 {
		t.Fatalf("c1 pacing: round %d, err %v", r, err)
	}
	if r := <-done; r != 1 {
		t.Fatalf("c0 pacing returned round %d, want 1", r)
	}
	if c1.VoteCount(5) != 1 {
		t.Fatal("post not visible after the epoch sealed")
	}
}

// TestEpochPostBatchBindsAndSeals drives several epochs through the batched
// client path on a single-player universe: each PostBatch(endRound) carries
// the posts and the lamport stamp in one frame and the epoch self-seals.
func TestEpochPostBatchBindsAndSeals(t *testing.T) {
	addr, srv := startEpochServer(t, 1, 1, 0)
	c, err := client.Dial(addr, 0, "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Epoch 0 carries the player's single positive vote (FirstPositive caps
	// one vote per player); later epochs carry negative reports, which are
	// uncapped and so prove every epoch's batch committed.
	for r := 0; r < 3; r++ {
		batch := []client.BatchPost{{Object: r, Value: 1, Positive: r == 0}}
		round, err := c.PostBatch(batch, true)
		if err != nil {
			t.Fatal(err)
		}
		if round != r+1 {
			t.Fatalf("epoch %d sealed into round %d", r, round)
		}
	}
	if srv.Round() != 3 {
		t.Fatalf("server round = %d, want 3", srv.Round())
	}
	if c.VoteCount(0) != 1 {
		t.Fatal("epoch 0 vote not committed")
	}
	for r := 1; r < 3; r++ {
		if c.NegativeCount(r) != 1 {
			t.Fatalf("epoch %d negative report not committed", r)
		}
	}
	// The vote carries the epoch it bound to.
	votes := c.Votes(0)
	if len(votes) != 1 || votes[0].Round != 0 {
		t.Fatalf("votes = %+v, want one vote bound to epoch 0", votes)
	}
}

// TestEpochTickSealsPastStraggler pins tick mode's liveness escape hatch: a
// registered player that never stamps cannot stall the epoch clock.
func TestEpochTickSealsPastStraggler(t *testing.T) {
	addr, srv := startEpochServer(t, 2, 1, 2*time.Millisecond)
	c0, err := client.Dial(addr, 0, "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	// The straggler registers (the run is complete) and then goes silent.
	c1, err := client.Dial(addr, 1, "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	if err := c0.Post(3, 1, true); err != nil {
		t.Fatal(err)
	}
	round, err := c0.Barrier()
	if err != nil {
		t.Fatalf("tick never sealed past the straggler: %v", err)
	}
	if round < 1 || srv.Round() < 1 {
		t.Fatalf("round %d after tick seal", round)
	}
	if c0.VoteCount(3) != 1 {
		t.Fatal("sealed epoch's post not visible")
	}
}

// TestEpochSlidingWindow pins the protocol v8 Last query: the most recent
// Last closed epochs, anchored at the answering round.
func TestEpochSlidingWindow(t *testing.T) {
	const players = 4
	addr, _ := startEpochServer(t, players, 1, 0)
	var clients [players]*client.Client
	for p := range clients {
		c, err := client.Dial(addr, p, "tok")
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[p] = c
	}
	// Player p casts its single positive vote on object p during epoch p, so
	// each epoch holds exactly one vote event on a distinct object.
	var wg sync.WaitGroup
	for p, c := range clients {
		wg.Add(1)
		go func(p int, c *client.Client) {
			defer wg.Done()
			for r := 0; r < players; r++ {
				var batch []client.BatchPost
				if r == p {
					batch = []client.BatchPost{{Object: p, Value: 1, Positive: true}}
				}
				if _, err := c.PostBatch(batch, true); err != nil {
					t.Errorf("player %d epoch %d: %v", p, r, err)
					return
				}
			}
		}(p, c)
	}
	wg.Wait()
	c := clients[0]
	counts, anchor := c.CountVotesInLast(2)
	if anchor != players {
		t.Fatalf("anchor round = %d, want %d", anchor, players)
	}
	// [2, 4): the votes cast in epochs 2 and 3 only.
	if len(counts) != 2 || counts[2] != 1 || counts[3] != 1 {
		t.Fatalf("window counts = %v, want {2:1 3:1}", counts)
	}
	// A window wider than history clamps at round 0.
	counts, _ = c.CountVotesInLast(100)
	if len(counts) != players {
		t.Fatalf("clamped window counts = %v, want all %d epochs", counts, players)
	}
}

// TestEpochJournalMarkersAndRecovery pins the journal interleaving: epoch
// seals write an epoch marker adjacent to the round marker, replay ignores
// it (board-neutral), and crash recovery reproduces the exact state.
func TestEpochJournalMarkersAndRecovery(t *testing.T) {
	u, err := object.NewPlanted(object.Planted{M: 32, Good: 1}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	st, err := journal.OpenStore(dir, journal.SyncCommit)
	if err != nil {
		t.Fatal(err)
	}
	cfg := server.Config{
		Universe: u, Tokens: []string{"tok"}, Alpha: 1, Beta: u.Beta(),
		Mode: server.ModeEpoch, Persist: st,
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("")
	if err != nil {
		t.Fatal(err)
	}
	c, err := client.Dial(addr, 0, "tok")
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		if _, err := c.PostBatch([]client.BatchPost{{Object: r, Value: 1, Positive: true}}, true); err != nil {
			t.Fatal(err)
		}
	}
	want := srv.Digest()
	c.Close()
	srv.Close()
	st.Close()

	// Crash-recover from the same store; its tail carries one epoch marker
	// per sealed epoch, in order.
	st2, err := journal.OpenStore(dir, journal.SyncCommit)
	if err != nil {
		t.Fatal(err)
	}
	var epochs []int
	if err := journal.ReplayRecords(st2.Tail(), func(rec journal.Record) error {
		if rec.Kind == journal.RecordEpoch {
			epochs = append(epochs, rec.Epoch)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 3 || epochs[0] != 0 || epochs[1] != 1 || epochs[2] != 2 {
		t.Fatalf("epoch markers = %v, want [0 1 2]", epochs)
	}
	cfg.Persist = st2
	srv2, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	defer st2.Close()
	if srv2.Round() != 3 {
		t.Fatalf("recovered round = %d, want 3", srv2.Round())
	}
	if !bytes.Equal(srv2.Digest(), want) {
		t.Fatalf("recovered digest differs:\n%x\n%x", srv2.Digest(), want)
	}
}

// epochWorkload drives the identical two-player posting script against a
// server in the given mode and returns the final committed digest.
func epochWorkload(t *testing.T, mode server.Mode, shards int) []byte {
	t.Helper()
	u, err := object.NewPlanted(object.Planted{M: 32, Good: 1}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Universe: u, Tokens: []string{"tok", "tok"}, Alpha: 1, Beta: u.Beta(),
		Mode: mode, Shards: shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr, err := srv.Start("")
	if err != nil {
		t.Fatal(err)
	}
	var clients [2]*client.Client
	for p := range clients {
		c, err := client.Dial(addr, p, "tok")
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[p] = c
	}
	const rounds = 5
	var wg sync.WaitGroup
	for p, c := range clients {
		wg.Add(1)
		go func(p int, c *client.Client) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Deterministic per-player script: distinct objects, mixed
				// positive/negative, identical across modes.
				batch := []client.BatchPost{
					{Object: (p*7 + r) % 32, Value: float64(r + 1), Positive: r%2 == 0},
					{Object: (p*11 + 2*r) % 32, Value: 1, Positive: true},
				}
				if _, err := c.PostBatch(batch, true); err != nil {
					t.Errorf("player %d round %d: %v", p, r, err)
					return
				}
			}
		}(p, c)
	}
	wg.Wait()
	if got := srv.Round(); got != rounds {
		t.Fatalf("mode %v: server round = %d, want %d", mode, got, rounds)
	}
	return srv.Digest()
}

// TestEpochDigestMatchesSync is the tentpole convergence property in its
// purest form: under quiescence, a pure-lamport epoch run commits the exact
// posts into the exact rounds a synchronous-barrier run does — the final
// board digests are byte-identical.
func TestEpochDigestMatchesSync(t *testing.T) {
	sync1 := epochWorkload(t, server.ModeSync, 0)
	epoch1 := epochWorkload(t, server.ModeEpoch, 0)
	if !bytes.Equal(sync1, epoch1) {
		t.Fatalf("unsharded digests diverge:\nsync  %x\nepoch %x", sync1, epoch1)
	}
}

// TestEpochDigestMatchesSyncSharded extends digest parity to the sharded
// commit pipeline (epoch markers ride the coordinator commit point).
func TestEpochDigestMatchesSyncSharded(t *testing.T) {
	sync4 := epochWorkload(t, server.ModeSync, 4)
	epoch4 := epochWorkload(t, server.ModeEpoch, 4)
	if !bytes.Equal(sync4, epoch4) {
		t.Fatalf("sharded digests diverge:\nsync  %x\nepoch %x", sync4, epoch4)
	}
	// And sharding itself is digest-neutral, epoch mode included.
	if unsharded := epochWorkload(t, server.ModeEpoch, 0); !bytes.Equal(epoch4, unsharded) {
		t.Fatalf("epoch sharded/unsharded digests diverge:\n%x\n%x", epoch4, unsharded)
	}
}
