package server

// Sharded billboard service (Config.Shards > 1): the board is partitioned
// by object id across S independent shard lanes, each with its own mutex,
// its own billboard (full (players, objects) dimensions, holding only the
// objects wire.Shard assigns it), its own committed-round read cache, and —
// when the server is durable — its own journal store under
// <persist-dir>/shard-%03d. The coordinator (the Server proper, under s.mu)
// keeps everything that is global by nature: sessions and membership, the
// round counter and barrier, the charged-probe ledger, and the vote
// admission state.
//
// Data plane. A v4 client opens one lane connection per shard (Hello with
// Lane set) and pipelines its per-shard post batches concurrently; a lane
// request takes only its lane's mutex, so posts to different shards never
// contend. Lane batches are write-ahead journaled and buffered as pending;
// they carry the client-assigned batch index of each post.
//
// Commit (the per-round shard barrier). When every active player has
// arrived at the round barrier, the coordinator freezes all lanes (taking
// every lane mutex), gathers the pending posts, sorts them by
// (player, index) — which preserves each player's own posting order, the
// only order FirstPositive vote derivation depends on — and runs the global
// vote admission pass: a positive post becomes a vote iff the player's
// global budget f is not exhausted and the (player, object) pair has not
// voted before. The admitted set is installed as every lane board's
// VoteFilter, the coordinator's round marker (carrying the admitted pairs)
// is journaled as the commit point, the posts are fed to their lane boards,
// and each lane is sealed (its own round marker + board EndRound). A round
// is therefore observable only once every shard has sealed it — the commit
// critical section holds all lane locks until then.
//
// Recovery. The coordinator store replays as in the unsharded server
// (probes, barriers, dones; no posts — those live in lane stores). Each
// lane store then replays independently: its round markers carry the
// admitted pairs, so a single lane reproduces exactly the votes the global
// pass granted without consulting its siblings. A lane that missed its
// final seal (a crash between the coordinator's commit point and the lane
// seal) is topped up from its write-ahead tail using the coordinator's
// recorded admissions, then fenced with the missing seal. A lane's pending
// tail after its last seal is NOT discarded: lane batches were acknowledged
// when journaled (clients do not resend them with the next barrier), so
// they are restored as pending and commit with the re-driven round.
//
// Single-shard fault injection. KillShard drops a lane's in-memory state
// and closes its store mid-run; RestartShard rebuilds the lane from its
// snapshot + journal tail, exactly as a whole-server restart would. While
// a lane is down its data-plane connections are dropped (clients retry
// with backoff, as against a restarting server), coordinator-side reads
// and posts for its objects block, and the round cannot commit — safety is
// preserved at the cost of liveness, which RestartShard restores.

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/billboard"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/wire"
)

// stampedPost is one accepted, uncommitted lane post: the report plus the
// client-assigned batch index that orders it within its player's round.
type stampedPost struct {
	post  billboard.Post
	index int
}

// admitKey identifies a (player, object) vote pair in the admission maps.
type admitKey struct {
	player int
	object int
}

// pbucket holds one player's accepted, uncommitted posts on one lane.
// Honest clients deliver a lane batch in index order, so posts arrive
// pre-sorted and the commit merge reads them as-is; a byzantine client
// shuffling its indices only clears sorted, and the bucket is stable-sorted
// once at commit — the same order sort.SliceStable over a global gather
// produced, at per-bucket cost.
type pbucket struct {
	posts  []stampedPost
	sorted bool // posts currently in nondecreasing index (and arrival) order
}

// lane is one shard of a sharded server: an independent post-accept path
// guarded by its own mutex.
type lane struct {
	k  int
	mu chan struct{} // 1-buffered channel as mutex: lockable with ordering helpers

	board    *billboard.Board
	sessions map[uint64]*session

	// Accepted, uncommitted posts, bucketed per player and kept ordered by
	// index at accept time — the pre-sorted runs the commit's k-way merge
	// consumes instead of globally re-sorting every round. Emptied buckets
	// keep their capacity across rounds (steady-state accepts allocate
	// nothing); posters lists the players with nonempty buckets.
	buckets  map[int]*pbucket
	posters  []int
	nPending int

	store *journal.Store  // nil when the server is not durable
	jw    *journal.Writer // store's writer; nil when not durable

	// Committed-round read cache, invalidated at every seal; consulted by
	// the coordinator's scatter-gather reads under s.mu.
	cacheWindows map[[2]int]map[int]int

	down bool // KillShard'd; RestartShard clears

	mPosts *obs.Counter
	mSeals *obs.Counter
}

func (ln *lane) lock()   { ln.mu <- struct{}{} }
func (ln *lane) unlock() { <-ln.mu }

// addPending buffers one accepted post in its player's bucket. Caller holds
// the lane lock.
func (ln *lane) addPending(sp stampedPost) {
	b := ln.buckets[sp.post.Player]
	if b == nil {
		b = &pbucket{sorted: true}
		ln.buckets[sp.post.Player] = b
	}
	if len(b.posts) == 0 {
		b.sorted = true
		ln.posters = append(ln.posters, sp.post.Player)
	} else if b.sorted && b.posts[len(b.posts)-1].index > sp.index {
		b.sorted = false
	}
	b.posts = append(b.posts, sp)
	ln.nPending++
}

// resetPending empties the lane's buckets at a seal, keeping bucket and
// poster capacity for the next round.
func (ln *lane) resetPending() {
	for _, p := range ln.posters {
		b := ln.buckets[p]
		b.posts = b.posts[:0]
		b.sorted = true
	}
	ln.posters = ln.posters[:0]
	ln.nPending = 0
}

// invalidateCache drops the lane's committed-round read cache (at seal).
func (ln *lane) invalidateCache() { ln.cacheWindows = nil }

// sharded reports whether this server runs shard lanes (Config.Shards > 1).
func (s *Server) sharded() bool { return len(s.lanes) > 0 }

// laneFor returns the lane owning an object per the shared shard map.
func (s *Server) laneFor(obj int) *lane {
	return s.lanes[wire.Shard(obj, len(s.lanes))]
}

// votesCap is the effective global vote budget f.
func (s *Server) votesCap() int {
	if s.cfg.VotesPerPlayer <= 0 {
		return 1
	}
	return s.cfg.VotesPerPlayer
}

// admitFilter is every lane board's VoteFilter: a positive post becomes a
// vote only if the current commit (or replay) round admitted the pair.
func (s *Server) admitFilter(player, object int) bool {
	return s.admitSet[admitKey{player, object}]
}

// shardDir names lane k's persist directory under the coordinator's.
func shardDir(dir string, k int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d", k))
}

// laneSnap is the serialized form of one lane at a round boundary: its
// board plus its sessions' dedup windows (lane sessions live here, not in
// the coordinator snapshot, so a lane restart is self-contained).
type laneSnap struct {
	Board    []byte
	Sessions []sessionSnap
}

// setupShards builds the lane array (and, when durable, opens the per-shard
// stores and recovers each lane). Called from New after the coordinator
// store has been recovered, so s.round is final and admitHist maps each
// replayed round to its admitted pairs.
func (s *Server) setupShards(boardCfg billboard.Config, admitHist map[int][]journal.Admit) error {
	shards := s.cfg.Shards
	boardCfg.VoteFilter = s.admitFilter
	s.votesTaken = make([]int, len(s.cfg.Tokens))
	s.votedPair = make(map[admitKey]bool)
	s.lanes = make([]*lane, shards)
	// Commit scratch, pooled for the life of the server (see
	// commitShardedLocked): steady-state rounds reuse these instead of
	// allocating per round.
	s.posterSeen = make([]bool, len(s.cfg.Tokens))
	s.mergeHeads = make([]*pbucket, shards)
	s.mergeCurs = make([]int, shards)
	for k := range s.lanes {
		ln := &lane{
			k:        k,
			mu:       make(chan struct{}, 1),
			sessions: make(map[uint64]*session),
			buckets:  make(map[int]*pbucket),
		}
		if s.cfg.Metrics != nil {
			ln.mPosts = s.cfg.Metrics.Counter(
				fmt.Sprintf(`server_shard_posts_total{shard="%03d"}`, k),
				"posts accepted per shard lane")
			ln.mSeals = s.cfg.Metrics.Counter(
				fmt.Sprintf(`server_shard_seals_total{shard="%03d"}`, k),
				"rounds sealed per shard lane")
		}
		s.lanes[k] = ln
		if s.cfg.Persist == nil {
			board, err := billboard.New(boardCfg)
			if err != nil {
				return fmt.Errorf("server: shard %d: %w", k, err)
			}
			board.SetMetrics(s.cfg.Metrics)
			ln.board = board
			continue
		}
		if err := s.recoverLane(ln, boardCfg, admitHist); err != nil {
			return fmt.Errorf("server: shard %d: %w", k, err)
		}
	}
	// Rebuild the global admission state from the recovered boards: the
	// budget each player has consumed and the pairs that already voted.
	for _, ln := range s.lanes {
		for p := 0; p < len(s.cfg.Tokens); p++ {
			for _, v := range ln.board.VotesView(p) {
				s.votesTaken[p]++
				s.votedPair[admitKey{p, v.Object}] = true
			}
		}
	}
	return nil
}

// recoverLane opens (or reopens) a lane's store and rebuilds the lane:
// snapshot, then the journal tail — committed rounds honor their recorded
// admissions; the pending tail is restored as pending, not discarded (lane
// batches were acknowledged when journaled). A lane behind the
// coordinator's round (it missed its final seal in a crash) is topped up
// from the coordinator's admissions and fenced with the missing marker.
// Requires s.round final; caller holds s.mu or is construction-time.
func (s *Server) recoverLane(ln *lane, boardCfg billboard.Config, admitHist map[int][]journal.Admit) error {
	st, err := journal.OpenStore(shardDir(s.cfg.Persist.Dir(), ln.k), s.cfg.Persist.Policy())
	if err != nil {
		return err
	}
	if s.cfg.laneStore != nil {
		// Replication mirror, installed before the top-up writes below so a
		// lane's recovery seals replicate like any other journal byte.
		s.cfg.laneStore(ln.k, st)
	}
	ln.store, ln.jw = st, st.Writer()
	ln.sessions = make(map[uint64]*session)
	var board *billboard.Board
	if snap := st.Snapshot(); snap != nil {
		var lsn laneSnap
		if err := gob.NewDecoder(bytes.NewReader(snap)).Decode(&lsn); err != nil {
			return fmt.Errorf("lane snapshot: %w", err)
		}
		board, err = billboard.Restore(lsn.Board, s.admitFilter)
		if err != nil {
			return fmt.Errorf("lane snapshot: %w", err)
		}
		for _, ss := range lsn.Sessions {
			ln.sessions[ss.ID] = &session{
				id: ss.ID, player: ss.Player,
				lastSeq: ss.LastSeq, lastResp: ss.LastResp, loose: true,
				swarm: ss.Swarm, playerTo: ss.PlayerTo,
			}
		}
	} else {
		board, err = billboard.New(boardCfg)
		if err != nil {
			return err
		}
	}
	board.SetMetrics(s.cfg.Metrics)

	sessOf := func(rec journal.Record) *session {
		if rec.Session == 0 {
			return nil
		}
		sess := ln.sessions[rec.Session]
		if sess == nil {
			sess = &session{id: rec.Session, player: rec.Post.Player, loose: true}
			ln.sessions[rec.Session] = sess
		}
		return sess
	}
	var pending []stampedPost
	replayed := 0
	err = journal.ReplayRecords(st.Tail(), func(rec journal.Record) error {
		replayed++
		switch rec.Kind {
		case journal.RecordPost:
			pending = append(pending, stampedPost{post: rec.Post, index: rec.Index})
			if sess := sessOf(rec); sess != nil {
				if rec.Seq > sess.lastSeq {
					sess.lastSeq = rec.Seq
				}
				sess.loose = true
			}
		case journal.RecordEndRound:
			s.setAdmitsLocked(rec.Admits)
			for _, sp := range pending {
				if err := board.Post(sp.post); err != nil {
					return fmt.Errorf("replay post: %v", err)
				}
			}
			pending = pending[:0]
			board.EndRound()
		}
		return nil
	})
	if err != nil && !errors.Is(err, journal.ErrTruncated) {
		return fmt.Errorf("lane recover: %w", err)
	}
	// Top up: the coordinator committed rounds this lane never sealed (a
	// crash between the coordinator's commit point and this lane's seal).
	// The lane's write-ahead tail holds exactly those rounds' posts.
	for board.Round() < s.round {
		target := board.Round() + 1
		admits, ok := admitHist[target]
		if !ok {
			return fmt.Errorf("lane recover: no recorded admissions for round %d", target)
		}
		s.setAdmitsLocked(admits)
		for _, sp := range pending {
			if err := board.Post(sp.post); err != nil {
				return fmt.Errorf("topup post: %v", err)
			}
		}
		pending = pending[:0]
		board.EndRound()
		if err := ln.jw.EndRoundAdmits(admits); err != nil {
			return fmt.Errorf("topup seal: %w", err)
		}
	}
	ln.board = board
	ln.buckets = make(map[int]*pbucket)
	ln.posters, ln.nPending = nil, 0
	for _, sp := range pending {
		ln.addPending(sp)
	}
	ln.invalidateCache()
	s.m.journalReplayed.Add(int64(replayed))
	if replayed > 0 || st.Snapshot() != nil {
		s.logf("shard %d recovered to round %d: %d journal records replayed, %d pending restored",
			ln.k, board.Round(), replayed, len(pending))
	}
	return nil
}

// setAdmitsLocked installs a round's admitted pairs as the active VoteFilter
// set (live commit and replay share it; both are single-threaded under the
// coordinator's locks).
func (s *Server) setAdmitsLocked(admits []journal.Admit) {
	if s.admitSet == nil {
		s.admitSet = make(map[admitKey]bool, len(admits))
	} else {
		clear(s.admitSet)
	}
	for _, a := range admits {
		s.admitSet[admitKey{a.Player, a.Object}] = true
	}
}

// commitShardedLocked commits the round across every lane: freeze, admit,
// journal the commit point, seal. Returns false — leaving the round open —
// when a lane is down; RestartShard re-runs the advance. Caller holds s.mu.
//
// The pipeline runs per-lane work per-lane. The admission pass consumes
// positives in global (player, index) order without materializing a sorted
// gather: lanes keep per-player buckets ordered by index at accept time, so
// visiting players in ascending order and k-way-merging each player's
// buckets by index (ties to the lowest lane id — the gather order the old
// global sort.SliceStable preserved) reproduces the serial order exactly.
// The seal phase — feed to the lane board, lane round marker, board
// EndRound, cache invalidate — is lane-local by construction and runs
// concurrently across lanes, with the admits marker encoded once and the
// same bytes fsynced to every lane store in parallel (the replica mirror
// tee takes its own leaf lock, so parallel lanes tee safely). Cross-player
// feed order is irrelevant to the board (votes and counts are per
// (player, object); per-pair order is bucket order), so per-lane feeding is
// digest-identical to the old globally-sorted feed — pinned by the
// determinism golden. Per-round scratch (posters, merge cursors, admit
// slices, marker frame) is pooled on the Server, so steady-state rounds are
// allocation-flat in shard count.
func (s *Server) commitShardedLocked() bool {
	var t0, tp time.Time
	if s.m.enabled {
		t0 = time.Now()
		tp = t0
	}
	for _, ln := range s.lanes {
		ln.lock()
	}
	defer func() {
		for _, ln := range s.lanes {
			ln.unlock()
		}
	}()
	for _, ln := range s.lanes {
		if ln.down {
			return false
		}
	}
	tp = s.m.phaseTick(phaseFreeze, tp)
	// Global vote admission: consume each player's budget f and the
	// first-vote-per-object rule in (player, index) order across all lanes.
	posters := s.commitPosters[:0]
	for _, ln := range s.lanes {
		for _, p := range ln.posters {
			if !s.posterSeen[p] {
				s.posterSeen[p] = true
				posters = append(posters, p)
			}
		}
	}
	sort.Ints(posters)
	// Double-buffered admit slice: s.lastAdmits keeps the previous round's
	// admissions alive for RestartShard's top-up history, so commits
	// alternate between two backing arrays instead of reallocating.
	admits := s.admitsScratch[s.round&1][:0]
	f := s.votesCap()
	heads, curs := s.mergeHeads, s.mergeCurs
	for _, p := range posters {
		s.posterSeen[p] = false
		nl := 0
		for _, ln := range s.lanes {
			if b := ln.buckets[p]; b != nil && len(b.posts) > 0 {
				if !b.sorted {
					posts := b.posts
					sort.SliceStable(posts, func(i, j int) bool { return posts[i].index < posts[j].index })
					b.sorted = true
				}
				heads[nl], curs[nl] = b, 0
				nl++
			}
		}
		for {
			best := -1
			for i := 0; i < nl; i++ {
				if curs[i] >= len(heads[i].posts) {
					continue
				}
				if best < 0 || heads[i].posts[curs[i]].index < heads[best].posts[curs[best]].index {
					best = i
				}
			}
			if best < 0 {
				break
			}
			sp := &heads[best].posts[curs[best]]
			curs[best]++
			if !sp.post.Positive {
				continue
			}
			k := admitKey{p, sp.post.Object}
			if s.votedPair[k] || s.votesTaken[p] >= f {
				continue
			}
			s.votesTaken[p]++
			s.votedPair[k] = true
			admits = append(admits, journal.Admit{Player: p, Object: sp.post.Object})
		}
	}
	s.commitPosters = posters[:0]
	s.admitsScratch[s.round&1] = admits
	s.setAdmitsLocked(admits)
	tp = s.m.phaseTick(phaseAdmit, tp)
	// Encode the round's admits marker once; every lane seal below reuses
	// the bytes, and so does the coordinator's commit point when it carries
	// no replication annotation.
	var frame []byte
	if s.cfg.Journal != nil || s.lanes[0].jw != nil {
		if b, err := journal.AppendEndRoundFrame(s.markerFrame[:0], admits, 0, 0); err == nil {
			s.markerFrame, frame = b, b
		}
	}
	// Durable commit point: the coordinator's marker carries the admitted
	// pairs, so recovery can top up a lane that misses its seal below.
	if s.cfg.Mode == ModeEpoch {
		// The epoch marker precedes the round marker so the round-marker
		// fsync covers both; replay is board-neutral on it.
		if s.cfg.Journal != nil {
			_ = s.cfg.Journal.EpochMark(s.round)
		}
		s.m.epochSeals.Inc()
	}
	if s.cfg.Journal != nil {
		if s.replLog != nil {
			_ = s.cfg.Journal.EndRoundQuorum(admits, s.replTerm, s.replQuorum)
		} else if frame != nil {
			_ = s.cfg.Journal.WriteEndRoundFrame(frame)
		}
	}
	tp = s.m.phaseTick(phaseJournal, tp)
	// Seal every lane: feed its posts to its board, its own durable marker,
	// then the board commit. Lane seals are mutually independent (own board,
	// own store file, own cache), so they run concurrently; the round becomes
	// observable (round++, broadcast) only after every lane sealed — the
	// per-round shard barrier.
	seal := func(ln *lane) {
		for _, p := range ln.posters {
			for i := range ln.buckets[p].posts {
				// Validated at accept; the board re-checks ranges only.
				_ = ln.board.Post(ln.buckets[p].posts[i].post)
			}
		}
		if ln.jw != nil && frame != nil {
			_ = ln.jw.WriteEndRoundFrame(frame)
		}
		ln.board.EndRound()
		ln.resetPending()
		ln.invalidateCache()
		ln.mSeals.Inc()
	}
	if len(s.lanes) == 1 {
		seal(s.lanes[0])
	} else {
		var wg sync.WaitGroup
		for _, ln := range s.lanes {
			wg.Add(1)
			go func(ln *lane) {
				defer wg.Done()
				seal(ln)
			}(ln)
		}
		wg.Wait()
	}
	if s.m.enabled {
		now := time.Now()
		s.m.commitPhase[phaseSeal].Observe(now.Sub(tp).Seconds())
		s.m.commitSeconds.Observe(now.Sub(t0).Seconds())
	}
	s.lastAdmits, s.lastAdmitsRound = admits, s.round+1
	s.round++
	s.roundA.Store(int64(s.round))
	s.m.rounds.Inc()
	s.invalidateReadCacheLocked()
	// Rotation must happen inside the freeze: lane posts accepted after the
	// seal would land in the old wal segment and be lost to its truncation.
	// Lanes rotate first, the coordinator last, so the coordinator's
	// snapshot never claims rounds a lane snapshot is missing.
	if s.cfg.Persist != nil && !s.closed && s.cfg.SnapshotEvery > 0 && s.round%s.cfg.SnapshotEvery == 0 {
		s.rotateShardedLocked()
	}
	return true
}

// rotateShardedLocked snapshots and rotates every lane store and then the
// coordinator store. Failures are logged, never fatal (rotation bounds
// replay, it is not needed for correctness). Caller holds s.mu and every
// lane lock, at a round boundary (all pending buffers empty).
func (s *Server) rotateShardedLocked() {
	for _, ln := range s.lanes {
		boardBytes, err := ln.board.Snapshot()
		if err != nil {
			s.logf("shard %d snapshot at round %d failed: %v", ln.k, s.round, err)
			return
		}
		lsn := laneSnap{Board: boardBytes}
		for _, sess := range ln.sessions {
			lsn.Sessions = append(lsn.Sessions, sessionSnap{
				ID: sess.id, Player: sess.player, LastSeq: sess.lastSeq, LastResp: sess.lastResp,
				Swarm: sess.swarm, PlayerTo: sess.playerTo,
			})
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&lsn); err != nil {
			s.logf("shard %d snapshot at round %d failed: %v", ln.k, s.round, err)
			return
		}
		if err := ln.store.Rotate(buf.Bytes()); err != nil {
			s.logf("shard %d rotation at round %d failed: %v", ln.k, s.round, err)
			return
		}
		if s.replLog != nil {
			s.replLog.noteRotate(1+ln.k, buf.Bytes())
		}
	}
	s.rotateLocked() // coordinator snapshot (board-less) + rotation
}

// laneHello authenticates a data-plane lane connection: same player
// credentials as the primary, plus the shard it binds to. Lane sessions
// carry only dedup state — no membership, no leases. A swarm lane session
// (Hello with Swarm and a member range) posts on behalf of any member; the
// swarm Hello is authoritative for the range, since a lane recovered from
// its journal knows sessions only by an arbitrary member's post records.
func (s *Server) laneHello(req *wire.Request) (wire.Response, *session, *lane) {
	if req.Version != wire.Version {
		return wire.Response{Err: fmt.Sprintf("protocol version %d, server speaks %d",
			req.Version, wire.Version)}, nil, nil
	}
	if !s.sharded() {
		return wire.Response{Err: "server is not sharded; no lane connections"}, nil, nil
	}
	from, to := req.Player, req.Player+1
	if req.Swarm {
		if s.cfg.SwarmToken == "" || req.Token != s.cfg.SwarmToken {
			return wire.Response{Err: "bad swarm token"}, nil, nil
		}
		from, to = req.Player, req.PlayerTo
		if from < 0 || to > len(s.cfg.Tokens) || from >= to {
			return wire.Response{Err: fmt.Sprintf("swarm range [%d, %d) invalid for %d players",
				from, to, len(s.cfg.Tokens))}, nil, nil
		}
	} else {
		if req.Player < 0 || req.Player >= len(s.cfg.Tokens) {
			return wire.Response{Err: fmt.Sprintf("player %d out of range", req.Player)}, nil, nil
		}
		if s.cfg.Tokens[req.Player] != req.Token {
			return wire.Response{Err: "bad token"}, nil, nil
		}
	}
	if req.Session == 0 {
		return wire.Response{Err: "missing session id"}, nil, nil
	}
	if req.Shard < 0 || req.Shard >= len(s.lanes) {
		return wire.Response{Err: fmt.Sprintf("shard %d out of range [0, %d)", req.Shard, len(s.lanes))}, nil, nil
	}
	ln := s.lanes[req.Shard]
	ln.lock()
	defer ln.unlock()
	if ln.down || s.closedA.Load() {
		// Dropped like a dying server: the client retries with backoff and
		// finds the lane again once RestartShard has rebuilt it.
		return wire.Response{Err: errServerClosed}, nil, nil
	}
	sess := ln.sessions[req.Session]
	switch {
	case sess == nil:
		sess = &session{id: req.Session, player: req.Player, swarm: req.Swarm, playerTo: req.PlayerTo}
		ln.sessions[req.Session] = sess
	case req.Swarm:
		if sess.swarm && (sess.player != from || sess.playerTo != to) {
			return wire.Response{Err: "session belongs to another player"}, nil, nil
		}
		if !sess.swarm && (sess.player < from || sess.player >= to) {
			// Recovered from the journal under a member's identity; the
			// authenticated range must cover it.
			return wire.Response{Err: "session belongs to another player"}, nil, nil
		}
		sess.swarm, sess.player, sess.playerTo = true, from, to
	case sess.swarm || sess.player != req.Player:
		return wire.Response{Err: "session belongs to another player"}, nil, nil
	}
	return wire.Response{
		Round:  int(s.roundA.Load()),
		Shards: len(s.lanes),
	}, sess, ln
}

// laneDispatch runs one sequenced lane request under the lane's own mutex —
// the parallel data plane. Only shard-local post batches are served here;
// everything else belongs on the primary connection.
func (s *Server) laneDispatch(ln *lane, sess *session, req *wire.Request) wire.Response {
	ln.lock()
	defer ln.unlock()
	if ln.down || s.closedA.Load() {
		return wire.Response{Err: errServerClosed}
	}
	switch {
	case req.Seq == 0:
		return wire.Response{Err: "missing request sequence number"}
	case req.Seq < sess.lastSeq:
		if sess.swarm {
			// A pipelined swarm client resent its unacknowledged tail after a
			// reconnect; the batch is already journaled and pending, so the
			// resend is a success. (A recovered lane session replays the same
			// content-free success an ordinary lane replay would.)
			s.m.dedupReplays.Inc()
			return wire.Response{Round: int(s.roundA.Load())}
		}
		return wire.Response{Err: fmt.Sprintf("stale sequence %d (last executed %d)", req.Seq, sess.lastSeq)}
	case req.Seq == sess.lastSeq:
		// Lane executions never block, so by the time a retry holds the
		// lane lock the original has finished: replay its response.
		s.m.dedupReplays.Inc()
		sess.loose = false
		return sess.lastResp
	case req.Seq > sess.lastSeq+1 && !sess.loose:
		return wire.Response{Err: fmt.Sprintf("sequence gap: got %d, want %d", req.Seq, sess.lastSeq+1)}
	}
	sess.lastSeq = req.Seq
	sess.loose = false
	resp := s.lanePostBatch(ln, sess, req)
	if s.replLog != nil && resp.Err != errServerClosed {
		// Same replicated-commit rule as the primary dispatch: the batch's
		// journal bytes must be durable on a quorum before the ack that
		// stops the client from resending them.
		if err := s.replLog.commitWait(s.replQuorum); err != nil {
			resp = wire.Response{Err: errServerClosed}
		}
	}
	sess.lastResp = resp
	return resp
}

// lanePostBatch accepts one shard-local post batch: validate, write-ahead
// journal, buffer as pending. Posts commit at the next round seal. Caller
// holds the lane lock.
func (s *Server) lanePostBatch(ln *lane, sess *session, req *wire.Request) wire.Response {
	if req.Type != wire.ReqPostBatch {
		return wire.Response{Err: fmt.Sprintf("%v not served on a lane connection", req.Type)}
	}
	if req.EndRound {
		return wire.Response{Err: "a lane batch cannot end the round; barrier on the primary connection"}
	}
	m := s.cfg.Universe.M()
	for i, p := range req.Posts {
		if p.Object < 0 || p.Object >= m {
			return wire.Response{Err: fmt.Sprintf("batch post %d/%d: object %d out of range", i+1, len(req.Posts), p.Object)}
		}
		if wire.Shard(p.Object, len(s.lanes)) != ln.k {
			return wire.Response{Err: fmt.Sprintf("batch post %d/%d: object %d belongs to shard %d, not %d",
				i+1, len(req.Posts), p.Object, wire.Shard(p.Object, len(s.lanes)), ln.k)}
		}
		if sess.swarm && (p.Player < sess.player || p.Player >= sess.playerTo) {
			return wire.Response{Err: fmt.Sprintf("batch post %d/%d: player %d outside swarm range [%d, %d)",
				i+1, len(req.Posts), p.Player, sess.player, sess.playerTo)}
		}
	}
	for _, p := range req.Posts {
		player := sess.player // authenticated identity, not client-claimed
		if sess.swarm {
			player = p.Player // validated member of the authenticated range
		}
		post := billboard.Post{
			Player:   player,
			Object:   p.Object,
			Value:    p.Value,
			Positive: p.Positive,
		}
		// Write-ahead: buffered iff journaled, so a lane restart restores
		// exactly the acknowledged pending set.
		if ln.jw != nil {
			if err := ln.jw.AppendAt(sess.id, req.Seq, p.Index, post); err != nil {
				return wire.Response{Err: fmt.Sprintf("journal: %v", err)}
			}
		}
		ln.addPending(stampedPost{post: post, index: p.Index})
		ln.mPosts.Inc()
	}
	return wire.Response{Round: int(s.roundA.Load())}
}

// waitLaneUpLocked blocks (releasing s.mu via the condition variable) while
// a lane is down, so coordinator-side reads and posts for its objects stall
// instead of failing or serving partial state. Returns false if the server
// closed while waiting. Caller holds s.mu.
func (s *Server) waitLaneUpLocked(ln *lane) bool {
	for ln.down && !s.closed {
		s.cond.Wait()
	}
	return !ln.down
}

// shardAppendLocked routes a primary-connection post (single or v3-style
// batch entry) to its owning lane, stamping the session's running post
// index so the commit order preserves the player's arrival order. Caller
// holds s.mu.
func (s *Server) shardAppendLocked(sess *session, seq uint64, object int, value float64, positive bool) error {
	if object < 0 || object >= s.cfg.Universe.M() {
		return fmt.Errorf("object %d out of range", object)
	}
	ln := s.laneFor(object)
	if !s.waitLaneUpLocked(ln) {
		return errors.New(errServerClosed)
	}
	ln.lock()
	defer ln.unlock()
	post := billboard.Post{Player: sess.player, Object: object, Value: value, Positive: positive}
	idx := sess.nextIdx
	sess.nextIdx++
	if ln.jw != nil {
		if err := ln.jw.AppendAt(sess.id, seq, idx, post); err != nil {
			return fmt.Errorf("journal: %v", err)
		}
	}
	ln.addPending(stampedPost{post: post, index: idx})
	ln.mPosts.Inc()
	return nil
}

// Scatter-gather reads (s.mu held). Lane boards mutate only under s.mu plus
// the lane lock (commit, recovery), so reading them under s.mu alone is
// race-free; the lane lock is not taken here.

// shardVotesLocked merges a player's votes across lanes into canonical
// (round, object) order.
func (s *Server) shardVotesLocked(player int) []wire.VoteMsg {
	var msgs []wire.VoteMsg
	for _, ln := range s.lanes {
		if !s.waitLaneUpLocked(ln) {
			return nil
		}
		for _, v := range ln.board.VotesView(player) {
			msgs = append(msgs, wire.VoteMsg{Player: v.Player, Object: v.Object, Round: v.Round, Value: v.Value})
		}
	}
	sort.Slice(msgs, func(i, j int) bool {
		if msgs[i].Round != msgs[j].Round {
			return msgs[i].Round < msgs[j].Round
		}
		return msgs[i].Object < msgs[j].Object
	})
	return msgs
}

// shardWindowLocked merges per-lane window counts (disjoint object sets, so
// the merge is a union). Each lane's count is served from its own cache.
func (s *Server) shardWindowLocked(from, to int) map[int]int {
	key := [2]int{from, to}
	merged := make(map[int]int)
	for _, ln := range s.lanes {
		if !s.waitLaneUpLocked(ln) {
			return merged
		}
		counts, ok := ln.cacheWindows[key]
		if !ok {
			counts = ln.board.CountVotesInWindow(from, to)
			if ln.cacheWindows == nil {
				ln.cacheWindows = make(map[[2]int]map[int]int)
			}
			ln.cacheWindows[key] = counts
		}
		for obj, n := range counts {
			merged[obj] += n
		}
	}
	return merged
}

// shardVotedObjectsLocked merges the voted-object sets (disjoint, each
// sorted) into one ascending list.
func (s *Server) shardVotedObjectsLocked() []int {
	var out []int
	for _, ln := range s.lanes {
		if !s.waitLaneUpLocked(ln) {
			return out
		}
		out = append(out, ln.board.VotedObjects()...)
	}
	sort.Ints(out)
	return out
}

// KillShard simulates a single-shard crash on a durable sharded server:
// the lane's in-memory state is dropped and its store closed, as if the
// lane process died. Its data-plane connections fail (clients retry with
// backoff), reads and posts for its objects block, and the round cannot
// commit until RestartShard. The chaos tests in internal/dist use this to
// assert that a mid-round shard bounce leaves the run byte-identical.
func (s *Server) KillShard(k int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.sharded() {
		return fmt.Errorf("server: not sharded")
	}
	if s.cfg.Persist == nil {
		return fmt.Errorf("server: KillShard requires a persist store")
	}
	if k < 0 || k >= len(s.lanes) {
		return fmt.Errorf("server: shard %d out of range [0, %d)", k, len(s.lanes))
	}
	ln := s.lanes[k]
	ln.lock()
	defer ln.unlock()
	if ln.down {
		return fmt.Errorf("server: shard %d already down", k)
	}
	ln.down = true
	ln.board = nil
	ln.buckets, ln.posters, ln.nPending = nil, nil, 0
	ln.sessions = make(map[uint64]*session)
	ln.invalidateCache()
	if err := ln.store.Close(); err != nil {
		s.logf("shard %d store close: %v", k, err)
	}
	s.logf("shard %d killed at round %d", k, s.round)
	return nil
}

// RestartShard rebuilds a killed lane from its persist directory (snapshot
// + journal tail, including the acknowledged pending posts of the open
// round) and lets stalled commits, reads, and posts proceed.
func (s *Server) RestartShard(k int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.sharded() || k < 0 || k >= len(s.lanes) {
		return fmt.Errorf("server: no such shard %d", k)
	}
	ln := s.lanes[k]
	ln.lock()
	if !ln.down {
		ln.unlock()
		return fmt.Errorf("server: shard %d is not down", k)
	}
	boardCfg := billboard.Config{
		Players:        len(s.cfg.Tokens),
		Objects:        s.cfg.Universe.M(),
		Mode:           billboard.FirstPositive,
		VotesPerPlayer: s.cfg.VotesPerPlayer,
		VoteFilter:     s.admitFilter,
	}
	// A kill can only interleave at a lane quiescent point (both locks), so
	// the lane's journal is sealed through the coordinator's round and the
	// top-up history is never needed; the last commit's admissions are kept
	// in case a future caller races a seal.
	admitHist := map[int][]journal.Admit{s.lastAdmitsRound: s.lastAdmits}
	err := s.recoverLane(ln, boardCfg, admitHist)
	if err == nil {
		ln.down = false
		s.m.shardRestarts.Inc()
		s.logf("shard %d restarted at round %d", k, s.round)
	}
	ln.unlock()
	if err != nil {
		return fmt.Errorf("server: restart shard %d: %w", k, err)
	}
	// The round may have been waiting on this lane's seal; blocked reads
	// and posts certainly were.
	s.advanceLocked()
	s.cond.Broadcast()
	return nil
}

// ShardCount reports the number of shard lanes (1 for an unsharded server).
func (s *Server) ShardCount() int {
	if !s.sharded() {
		return 1
	}
	return len(s.lanes)
}
