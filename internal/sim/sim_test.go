package sim

import (
	"reflect"
	"testing"

	"repro/internal/billboard"
	"repro/internal/object"
	"repro/internal/rng"
)

// randomProtocol probes a uniformly random object each round (the trivial
// strategy from §3 used as a baseline fixture).
type randomProtocol struct {
	m   int
	src *rng.Source
}

func (p *randomProtocol) Name() string { return "test-random" }
func (p *randomProtocol) Init(setup Setup) error {
	p.m = setup.Universe.M()
	p.src = setup.Rng
	return nil
}
func (p *randomProtocol) PrescribedRounds() int { return 0 }
func (p *randomProtocol) Probes(round int, active []int, dst []Probe) []Probe {
	for _, player := range active {
		dst = append(dst, Probe{Player: player, Object: p.src.Intn(p.m)})
	}
	return dst
}

// fixedProtocol probes a fixed schedule of objects, cycling.
type fixedProtocol struct {
	schedule   []int
	prescribed int
}

func (p *fixedProtocol) Name() string          { return "test-fixed" }
func (p *fixedProtocol) Init(Setup) error      { return nil }
func (p *fixedProtocol) PrescribedRounds() int { return p.prescribed }
func (p *fixedProtocol) Probes(round int, active []int, dst []Probe) []Probe {
	obj := p.schedule[round%len(p.schedule)]
	for _, player := range active {
		dst = append(dst, Probe{Player: player, Object: obj})
	}
	return dst
}

// recordingAdversary records what it observed and can post a fixed vote.
type recordingAdversary struct {
	pendingSeen []int // number of pending posts observed each round
	voteObject  int   // object to vote for, -1 for none
}

func (a *recordingAdversary) Name() string { return "test-recording" }
func (a *recordingAdversary) Act(ctx *AdvContext) {
	a.pendingSeen = append(a.pendingSeen, len(ctx.Board.Pending()))
	if a.voteObject >= 0 {
		for _, p := range ctx.Dishonest {
			_ = ctx.Board.Post(billboard.Post{
				Player: p, Object: a.voteObject, Value: 1, Positive: true,
			})
		}
	}
}

func plantedUniverse(t *testing.T, m, good int, seed uint64) *object.Universe {
	t.Helper()
	u, err := object.NewPlanted(object.Planted{M: m, Good: good}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestNewEngineValidation(t *testing.T) {
	u := plantedUniverse(t, 10, 1, 1)
	proto := &randomProtocol{}
	cases := []Config{
		{Protocol: proto, N: 4, Alpha: 1},                                  // no universe
		{Universe: u, N: 4, Alpha: 1},                                      // no protocol
		{Universe: u, Protocol: proto, N: 0, Alpha: 1},                     // bad N
		{Universe: u, Protocol: proto, N: 4},                               // no alpha, no honest
		{Universe: u, Protocol: proto, N: 4, Alpha: 2},                     // alpha > 1
		{Universe: u, Protocol: proto, N: 4, Honest: []int{5}},             // out of range
		{Universe: u, Protocol: proto, N: 4, Honest: []int{1, 1}},          // duplicate
		{Universe: u, Protocol: proto, N: 4, Alpha: 1, HonestErrorRate: 1}, // bad error rate
	}
	for i, cfg := range cases {
		if _, err := NewEngine(cfg); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestHonestSelectionByAlpha(t *testing.T) {
	u := plantedUniverse(t, 10, 1, 1)
	e, err := NewEngine(Config{
		Universe: u, Protocol: &randomProtocol{}, N: 100, Alpha: 0.3, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(e.Honest()); got != 30 {
		t.Fatalf("honest count = %d, want 30", got)
	}
}

func TestHonestSelectionAtLeastOne(t *testing.T) {
	u := plantedUniverse(t, 10, 1, 1)
	e, err := NewEngine(Config{
		Universe: u, Protocol: &randomProtocol{}, N: 100, Alpha: 0.001, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(e.Honest()); got != 1 {
		t.Fatalf("honest count = %d, want 1", got)
	}
}

func TestRunFindsGoodAndHalts(t *testing.T) {
	// Universe where object 3 is the only good one; fixed schedule probes
	// 0, 1, 2, 3, so every player halts at round 3 with 4 probes.
	u, err := object.NewUniverse(object.Config{
		Values:       []float64{0, 0, 0, 1, 0},
		LocalTesting: true,
		Threshold:    0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(Config{
		Universe: u,
		Protocol: &fixedProtocol{schedule: []int{0, 1, 2, 3, 4}},
		N:        5, Alpha: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 4 {
		t.Fatalf("rounds = %d, want 4", res.Rounds)
	}
	if !res.AllHonestSatisfied() {
		t.Fatal("not all satisfied")
	}
	for _, p := range res.Honest {
		if res.SatisfiedRound[p] != 3 {
			t.Fatalf("player %d satisfied at %d, want 3", p, res.SatisfiedRound[p])
		}
		if res.Probes[p] != 4 {
			t.Fatalf("player %d probes = %d, want 4", p, res.Probes[p])
		}
		if res.Cost[p] != 4 {
			t.Fatalf("player %d cost = %v, want 4", p, res.Cost[p])
		}
		if res.BestObject[p] != 3 {
			t.Fatalf("player %d best = %d", p, res.BestObject[p])
		}
	}
	if res.LastSatisfiedRound() != 3 {
		t.Fatalf("LastSatisfiedRound = %d", res.LastSatisfiedRound())
	}
	if res.MeanHonestProbes() != 4 {
		t.Fatalf("MeanHonestProbes = %v", res.MeanHonestProbes())
	}
}

func TestSatisfiedPlayersStopProbing(t *testing.T) {
	// Good object first in the schedule: everyone halts after 1 probe even
	// though MaxRounds allows more.
	u, err := object.NewUniverse(object.Config{
		Values:       []float64{1, 0},
		LocalTesting: true,
		Threshold:    0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(Config{
		Universe: u,
		Protocol: &fixedProtocol{schedule: []int{0, 1}},
		N:        3, Alpha: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", res.Rounds)
	}
	for _, p := range res.Honest {
		if res.Probes[p] != 1 {
			t.Fatalf("probes = %d, want 1", res.Probes[p])
		}
	}
}

func TestMaxRoundsTimeout(t *testing.T) {
	// Schedule never reaches the good object.
	u, err := object.NewUniverse(object.Config{
		Values:       []float64{0, 1},
		LocalTesting: true,
		Threshold:    0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(Config{
		Universe:  u,
		Protocol:  &fixedProtocol{schedule: []int{0}},
		N:         2,
		Alpha:     1,
		Seed:      1,
		MaxRounds: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut || res.Rounds != 10 {
		t.Fatalf("TimedOut=%v Rounds=%d", res.TimedOut, res.Rounds)
	}
	if res.AllHonestSatisfied() {
		t.Fatal("nobody should be satisfied")
	}
	if res.SuccessFraction() != 0 {
		t.Fatalf("SuccessFraction = %v", res.SuccessFraction())
	}
}

func TestPrescribedRoundsMode(t *testing.T) {
	// No-local-testing universe; protocol runs exactly 6 rounds and success
	// is judged by the best probed object.
	u, err := object.NewUniverse(object.Config{
		Values: []float64{0.1, 0.9, 0.5},
		Beta:   0.34,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(Config{
		Universe: u,
		Protocol: &fixedProtocol{schedule: []int{0, 1, 2}, prescribed: 6},
		N:        4, Alpha: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 6 {
		t.Fatalf("rounds = %d, want 6", res.Rounds)
	}
	for _, p := range res.Honest {
		if res.Probes[p] != 6 {
			t.Fatalf("probes = %d, want 6 (nobody halts early)", res.Probes[p])
		}
		if !res.Success[p] || res.BestObject[p] != 1 {
			t.Fatalf("player %d: success=%v best=%d", p, res.Success[p], res.BestObject[p])
		}
	}
	if !res.AllHonestSatisfied() {
		t.Fatal("prescribed run should succeed")
	}
}

func TestAdversarySeesPendingAndVotesLand(t *testing.T) {
	u := plantedUniverse(t, 10, 1, 3)
	bad := -1
	for i := 0; i < u.M(); i++ {
		if !u.IsGood(i) {
			bad = i
			break
		}
	}
	adv := &recordingAdversary{voteObject: bad}
	e, err := NewEngine(Config{
		Universe:  u,
		Protocol:  &fixedProtocol{schedule: []int{bad}},
		N:         6,
		Honest:    []int{0, 1, 2, 3},
		Adversary: adv,
		Seed:      1,
		MaxRounds: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Adversary != "test-recording" {
		t.Fatalf("Adversary = %q", res.Adversary)
	}
	// Adversary acts after honest probes: it saw 4 pending posts per round.
	if len(adv.pendingSeen) != 3 {
		t.Fatalf("adversary acted %d times", len(adv.pendingSeen))
	}
	for i, seen := range adv.pendingSeen {
		if seen < 4 {
			t.Fatalf("round %d: adversary saw %d pending posts, want >= 4", i, seen)
		}
	}
	// The two dishonest players' votes are on the board.
	if got := e.Board().VoteCount(bad); got != 2 {
		t.Fatalf("dishonest votes on object %d = %d, want 2", bad, got)
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	build := func() *Result {
		u := plantedUniverse(t, 64, 1, 42)
		e, err := NewEngine(Config{
			Universe: u, Protocol: &randomProtocol{}, N: 32, Alpha: 0.75, Seed: 99,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different results")
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	run := func(seed uint64) int {
		u := plantedUniverse(t, 256, 1, 42)
		e, err := NewEngine(Config{
			Universe: u, Protocol: &randomProtocol{}, N: 16, Alpha: 1, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Rounds
	}
	rounds := map[int]bool{}
	for seed := uint64(0); seed < 8; seed++ {
		rounds[run(seed)] = true
	}
	if len(rounds) < 2 {
		t.Fatal("8 different seeds all produced identical round counts; rng not wired through")
	}
}

func TestHonestErrorRateInjectsFalseVotes(t *testing.T) {
	// All objects bad except one that is never probed; with f=3 and a high
	// error rate, players should accumulate up to f-1=2 erroneous votes.
	u, err := object.NewUniverse(object.Config{
		Values:       []float64{0, 0, 0, 1},
		LocalTesting: true,
		Threshold:    0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(Config{
		Universe:        u,
		Protocol:        &fixedProtocol{schedule: []int{0, 1, 2}},
		N:               4,
		Alpha:           1,
		Seed:            5,
		MaxRounds:       50,
		VotesPerPlayer:  3,
		HonestErrorRate: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	totalErr := 0
	for p := 0; p < 4; p++ {
		votes := e.Board().Votes(p)
		if len(votes) > 2 {
			t.Fatalf("player %d has %d erroneous votes, cap is f-1=2", p, len(votes))
		}
		totalErr += len(votes)
	}
	if totalErr == 0 {
		t.Fatal("error rate 0.9 produced no erroneous votes")
	}
}

func TestNoErrorsWithoutErrorRate(t *testing.T) {
	u := plantedUniverse(t, 50, 1, 9)
	e, err := NewEngine(Config{
		Universe: u, Protocol: &randomProtocol{}, N: 8, Alpha: 1, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Every vote on the board must be for the good object.
	for p := 0; p < 8; p++ {
		for _, v := range e.Board().Votes(p) {
			if !u.IsGood(v.Object) {
				t.Fatalf("honest player %d voted bad object %d", p, v.Object)
			}
		}
	}
	if !res.AllHonestSatisfied() {
		t.Fatal("random probing over 50 objects should finish")
	}
}

func TestProtocolErrorsSurface(t *testing.T) {
	u := plantedUniverse(t, 10, 1, 1)
	// Probing for a dishonest player must be rejected.
	badProto := &fixedProtocol{schedule: []int{0}}
	e, err := NewEngine(Config{
		Universe: u, Protocol: protocolProbingPlayer{5}, N: 6, Honest: []int{0, 1}, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err == nil {
		t.Fatal("probe for dishonest player accepted")
	}
	_ = badProto
	// Probing out of range must be rejected.
	e2, err := NewEngine(Config{
		Universe: u, Protocol: &fixedProtocol{schedule: []int{99}}, N: 2, Alpha: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Run(); err == nil {
		t.Fatal("out-of-range probe accepted")
	}
}

// protocolProbingPlayer always probes object 0 for one fixed player id.
type protocolProbingPlayer struct{ player int }

func (p protocolProbingPlayer) Name() string          { return "test-bad" }
func (p protocolProbingPlayer) Init(Setup) error      { return nil }
func (p protocolProbingPlayer) PrescribedRounds() int { return 0 }
func (p protocolProbingPlayer) Probes(round int, active []int, dst []Probe) []Probe {
	return append(dst, Probe{Player: p.player, Object: 0})
}

func TestReplicatorRunsAllAndAggregates(t *testing.T) {
	rep := Replicator{
		Reps:     8,
		BaseSeed: 100,
		Build: func(seed uint64) (*Engine, error) {
			u, err := object.NewPlanted(object.Planted{M: 40, Good: 2}, rng.New(seed))
			if err != nil {
				return nil, err
			}
			return NewEngine(Config{
				Universe: u, Protocol: &randomProtocol{}, N: 10, Alpha: 1, Seed: seed,
			})
		},
	}
	results, err := rep.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 {
		t.Fatalf("got %d results", len(results))
	}
	for i, res := range results {
		if res == nil {
			t.Fatalf("result %d is nil", i)
		}
		if !res.AllHonestSatisfied() {
			t.Fatalf("replication %d did not finish", i)
		}
	}
	agg := AggregateResults(results)
	if agg.Reps != 8 || agg.SuccessRate != 1 || agg.TimedOut != 0 {
		t.Fatalf("aggregate = %+v", agg)
	}
	if agg.MeanIndividualProbes <= 0 || agg.MeanRounds <= 0 {
		t.Fatalf("aggregate means not positive: %+v", agg)
	}
	if len(agg.PerPlayerProbes) != 8*10 {
		t.Fatalf("PerPlayerProbes length = %d", len(agg.PerPlayerProbes))
	}
}

func TestReplicatorDeterministicAcrossWorkerCounts(t *testing.T) {
	build := func(seed uint64) (*Engine, error) {
		u, err := object.NewPlanted(object.Planted{M: 30, Good: 1}, rng.New(seed))
		if err != nil {
			return nil, err
		}
		return NewEngine(Config{
			Universe: u, Protocol: &randomProtocol{}, N: 6, Alpha: 1, Seed: seed,
		})
	}
	serial, err := Replicator{Reps: 6, Workers: 1, BaseSeed: 5, Build: build}.Run()
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Replicator{Reps: 6, Workers: 4, BaseSeed: 5, Build: build}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("results depend on worker count")
	}
}

func TestReplicatorValidation(t *testing.T) {
	if _, err := (Replicator{Reps: 0}).Run(); err == nil {
		t.Fatal("Reps=0 accepted")
	}
	if _, err := (Replicator{Reps: 1}).Run(); err == nil {
		t.Fatal("nil Build accepted")
	}
}

func TestReplicatorPropagatesErrors(t *testing.T) {
	rep := Replicator{
		Reps: 3,
		Build: func(seed uint64) (*Engine, error) {
			return nil, errBuild
		},
	}
	if _, err := rep.Run(); err == nil {
		t.Fatal("build error not propagated")
	}
}

var errBuild = &buildError{}

type buildError struct{}

func (*buildError) Error() string { return "boom" }

func TestAggregateEmpty(t *testing.T) {
	agg := AggregateResults(nil)
	if agg.Reps != 0 || agg.SuccessRate != 0 {
		t.Fatalf("empty aggregate = %+v", agg)
	}
}

func TestAssumedAlphaPassedToProtocol(t *testing.T) {
	u := plantedUniverse(t, 10, 1, 1)
	probe := &setupProbe{}
	_, err := NewEngine(Config{
		Universe: u, Protocol: probe, N: 10, Alpha: 0.5, AssumedAlpha: 0.25,
		Seed: 1, MaxRounds: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Run to trigger Init.
	e, _ := NewEngine(Config{
		Universe: u, Protocol: probe, N: 10, Alpha: 0.5, AssumedAlpha: 0.25,
		Seed: 1, MaxRounds: 1,
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if probe.gotAlpha != 0.25 {
		t.Fatalf("protocol saw alpha %v, want 0.25", probe.gotAlpha)
	}
	if probe.gotBeta != u.Beta() {
		t.Fatalf("protocol saw beta %v, want %v", probe.gotBeta, u.Beta())
	}
}

type setupProbe struct {
	gotAlpha, gotBeta float64
}

func (s *setupProbe) Name() string { return "test-setup-probe" }
func (s *setupProbe) Init(setup Setup) error {
	s.gotAlpha = setup.Alpha
	s.gotBeta = setup.Beta
	return nil
}
func (s *setupProbe) PrescribedRounds() int { return 0 }
func (s *setupProbe) Probes(round int, active []int, dst []Probe) []Probe {
	for _, p := range active {
		dst = append(dst, Probe{Player: p, Object: 0})
	}
	return dst
}

func TestBoardReuseAlignsRounds(t *testing.T) {
	// Run one engine to completion, then a second one on the SAME board
	// with a different universe; the second run's posts must be stamped
	// with continuing round numbers, and its Rounds metric must count only
	// its own rounds.
	u1, err := object.NewUniverse(object.Config{
		Values:       []float64{0, 0, 1},
		LocalTesting: true,
		Threshold:    0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	e1, err := NewEngine(Config{
		Universe: u1, Protocol: &fixedProtocol{schedule: []int{0, 1, 2}},
		N: 3, Alpha: 1, Seed: 1, KeepLog: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := e1.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res1.Rounds != 3 {
		t.Fatalf("epoch 1 rounds = %d", res1.Rounds)
	}
	board := e1.Board()
	if board.Round() != 3 {
		t.Fatalf("board round = %d", board.Round())
	}

	// Epoch 2: good object moved to index 0.
	u2, err := object.NewUniverse(object.Config{
		Values:       []float64{1, 0, 0},
		LocalTesting: true,
		Threshold:    0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rounds are board-aligned in epoch 2 (they start at 3), so the cycle
	// index is round%2: round 3 probes schedule[1], round 4 schedule[0].
	e2, err := NewEngine(Config{
		Universe: u2, Protocol: &fixedProtocol{schedule: []int{0, 1}},
		N: 3, Alpha: 1, Seed: 2, Board: board,
	})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := e2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Rounds != 2 {
		t.Fatalf("epoch 2 rounds = %d, want 2 (own rounds only)", res2.Rounds)
	}
	if board.Round() != 5 {
		t.Fatalf("board round after epoch 2 = %d, want 5", board.Round())
	}
	// Epoch-2 posts carry continuing timestamps: window [3, 5) is theirs.
	// Players already voted (object 2, epoch 1), so epoch-2 good probes of
	// object 0 are vote-capped — the log still proves the rounds though.
	sawEpoch2 := false
	for _, post := range board.Log() {
		if post.Round >= 3 {
			sawEpoch2 = true
			if post.Round >= 5 {
				t.Fatalf("post stamped beyond final round: %+v", post)
			}
		}
	}
	if !sawEpoch2 {
		t.Fatal("no epoch-2 posts recorded with continuing rounds")
	}
}

func TestBoardReuseSpentVotesPersist(t *testing.T) {
	// The §5.1 "after effects": votes cast in epoch 1 still bind in epoch 2
	// (f = 1 budget is spent).
	u, err := object.NewUniverse(object.Config{
		Values:       []float64{0, 1},
		LocalTesting: true,
		Threshold:    0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	e1, err := NewEngine(Config{
		Universe: u, Protocol: &fixedProtocol{schedule: []int{1}},
		N: 2, Alpha: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Run(); err != nil {
		t.Fatal(err)
	}
	board := e1.Board()
	votesBefore := board.TotalVotes()

	// Epoch 2 on the same board: good moved to 0; probes of it produce
	// positive reports, but all vote slots are spent.
	u2, err := object.NewUniverse(object.Config{
		Values:       []float64{1, 0},
		LocalTesting: true,
		Threshold:    0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngine(Config{
		Universe: u2, Protocol: &fixedProtocol{schedule: []int{0}},
		N: 2, Alpha: 1, Seed: 4, Board: board,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Run(); err != nil {
		t.Fatal(err)
	}
	if got := board.TotalVotes(); got != votesBefore {
		t.Fatalf("votes grew from %d to %d despite spent budgets", votesBefore, got)
	}
}
