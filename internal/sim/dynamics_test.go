package sim

import (
	"testing"

	"repro/internal/object"
	"repro/internal/rng"
)

// scriptedDynamics replays fixed arrival/departure schedules keyed by round.
type scriptedDynamics struct {
	arrivals   map[int][]int
	departures map[int][]int
	lastRound  int // no arrivals after this round
	churnAt    map[int][]int
	universe   *object.Universe
	endCalls   int
}

func (d *scriptedDynamics) BeginRound(round int, active []int) (arrive, depart []int) {
	return d.arrivals[round], d.departures[round]
}

func (d *scriptedDynamics) EndRound(round int) error {
	d.endCalls++
	if newGood, ok := d.churnAt[round]; ok {
		return d.universe.Churn(newGood)
	}
	return nil
}

func (d *scriptedDynamics) Idle(round int) bool { return round >= d.lastRound }

func TestDynamicsOpenWorld(t *testing.T) {
	// 5 honest players, no good objects reachable quickly: use a universe
	// where only object 0 is good, and a fixed protocol probing object 1
	// forever — players only leave via scripted departure, so membership is
	// fully dynamics-controlled.
	u, err := object.NewPlanted(object.Planted{M: 8, Good: 1}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	bad := 1
	if u.IsGood(bad) {
		bad = 2
	}
	dyn := &scriptedDynamics{
		arrivals:   map[int][]int{0: {0, 1}, 2: {2}, 4: {3, 4}},
		departures: map[int][]int{3: {0}, 6: {1, 2, 3, 4}},
		lastRound:  4,
	}
	var probed [][]int
	proto := &probeRecorder{object: bad, perRound: &probed}
	e, err := NewEngine(Config{
		Universe: u,
		Protocol: proto,
		N:        6,
		Honest:   []int{0, 1, 2, 3, 4},
		Seed:     11,
		Dynamics: dyn,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Round-by-round expected active sets:
	// r0: {0,1}  r1: {0,1}  r2: {0,1,2}  r3: depart 0 → {1,2}
	// r4: {1,2,3,4}  r5: same  r6: all depart → empty, idle → stop.
	want := [][]int{{0, 1}, {0, 1}, {0, 1, 2}, {1, 2}, {1, 2, 3, 4}, {1, 2, 3, 4}}
	if res.Rounds != len(want) {
		t.Fatalf("Rounds = %d, want %d (probed %v)", res.Rounds, len(want), probed)
	}
	for r, w := range want {
		if !sameSet(probed[r], w) {
			t.Fatalf("round %d active = %v, want %v", r, probed[r], w)
		}
	}
	if res.DepartedRound[0] != 3 {
		t.Fatalf("DepartedRound[0] = %d, want 3", res.DepartedRound[0])
	}
	if res.DepartedRound[4] != 6 {
		t.Fatalf("DepartedRound[4] = %d, want 6", res.DepartedRound[4])
	}
	if res.DepartedRound[5] != -1 {
		t.Fatalf("DepartedRound[5] = %d for a never-present player, want -1", res.DepartedRound[5])
	}
	if dyn.endCalls != len(want) {
		t.Fatalf("EndRound called %d times, want %d", dyn.endCalls, len(want))
	}
}

func TestDynamicsSatisfiedPlayersCannotRearrive(t *testing.T) {
	// Everyone probes the (single) good object in round 0 and halts; a
	// scripted re-arrival at round 1 must be ignored and the run must end.
	u, err := object.NewPlanted(object.Planted{M: 4, Good: 1}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	good := u.GoodObjects()[0]
	dyn := &scriptedDynamics{
		arrivals:  map[int][]int{0: {0, 1}, 1: {0}},
		lastRound: 1,
	}
	e, err := NewEngine(Config{
		Universe: u,
		Protocol: &fixedProtocol{schedule: []int{good}},
		N:        2,
		Honest:   []int{0, 1},
		Seed:     7,
		Dynamics: dyn,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.SatisfiedRound[0] != 0 || res.SatisfiedRound[1] != 0 {
		t.Fatalf("players did not halt in round 0: %v", res.SatisfiedRound)
	}
	// Round 1 runs with the ignored re-arrival leaving the set empty; Idle
	// then ends the run at round 2's boundary.
	if res.TimedOut {
		t.Fatalf("run timed out instead of going idle")
	}
}

func TestDynamicsRejectsStrangers(t *testing.T) {
	u, err := object.NewPlanted(object.Planted{M: 4, Good: 1}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	dyn := &scriptedDynamics{
		arrivals:  map[int][]int{0: {3}}, // 3 is dishonest in this run
		lastRound: 0,
	}
	e, err := NewEngine(Config{
		Universe: u,
		Protocol: &randomProtocol{},
		N:        4,
		Honest:   []int{0, 1},
		Seed:     9,
		Dynamics: dyn,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err == nil {
		t.Fatalf("arrival outside the honest set did not error")
	}
}

func TestDynamicsWorldDriftChurn(t *testing.T) {
	// EndRound re-plants the good set mid-run; players probing the NEW good
	// object only halt after the churn lands.
	u, err := object.NewPlanted(object.Planted{M: 10, Good: 1}, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	oldGood := u.GoodObjects()[0]
	newGood := (oldGood + 1) % 10
	dyn := &scriptedDynamics{
		arrivals:  map[int][]int{0: {0}},
		lastRound: 0,
		churnAt:   map[int][]int{2: {newGood}},
		universe:  u,
	}
	e, err := NewEngine(Config{
		Universe: u,
		Protocol: &fixedProtocol{schedule: []int{newGood}},
		N:        2,
		Honest:   []int{0},
		Seed:     13,
		Dynamics: dyn,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Rounds 0-2 probe newGood while it is still bad; churn commits after
	// round 2, so the round-3 probe is the satisfying one.
	if res.SatisfiedRound[0] != 3 {
		t.Fatalf("SatisfiedRound[0] = %d, want 3 (churn after round 2)", res.SatisfiedRound[0])
	}
}

// probeRecorder probes a fixed object for every active player and records
// the active set it saw each round.
type probeRecorder struct {
	object   int
	perRound *[][]int
}

func (p *probeRecorder) Name() string          { return "test-recorder" }
func (p *probeRecorder) Init(Setup) error      { return nil }
func (p *probeRecorder) PrescribedRounds() int { return 0 }
func (p *probeRecorder) Probes(round int, active []int, dst []Probe) []Probe {
	*p.perRound = append(*p.perRound, append([]int(nil), active...))
	for _, player := range active {
		dst = append(dst, Probe{Player: player, Object: p.object})
	}
	return dst
}

func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[int]bool, len(a))
	for _, x := range a {
		seen[x] = true
	}
	for _, x := range b {
		if !seen[x] {
			return false
		}
	}
	return true
}
