// Package sim implements the synchronous execution model of §2.1: an
// execution proceeds in rounds; in each round every active honest player
// reads the (committed) billboard, optionally probes one object, and posts
// the result; Byzantine players may post arbitrary reports. Posts become
// visible at the end of the round.
//
// The engine owns the ground truth (the object universe) and performs all
// probes itself, so honest protocols can only choose *which* object to
// probe — they cannot peek at hidden values. Honesty of the reports is also
// enforced here: every honest probe is posted truthfully (modulo the
// optional erroneous-vote noise of §4.1).
package sim

import (
	"context"
	"fmt"

	"repro/internal/billboard"
	"repro/internal/object"
	"repro/internal/rng"
)

// PublicUniverse is the honest player's view of the object collection:
// object count and public costs, but no values.
type PublicUniverse interface {
	M() int
	Cost(i int) float64
	LocalTesting() bool
}

var _ PublicUniverse = (*object.Universe)(nil)

// Probe is a request by a player to probe an object this round.
type Probe struct {
	Player int
	Object int
}

// Setup is what a Protocol receives before round 0.
type Setup struct {
	N        int            // total number of players
	Alpha    float64        // the honest fraction the protocol ASSUMES (its α parameter)
	Beta     float64        // the good-object fraction the protocol assumes
	Universe PublicUniverse // public object data (costs, m)
	Board    billboard.Reader
	Rng      *rng.Source // the protocol's private random stream
}

// Protocol is an honest search strategy executed in lockstep by all honest
// players. The engine calls Probes exactly once per round with strictly
// increasing round numbers starting at the board's current round (0 for a
// fresh board), so protocols may keep internal schedule state. Implementations read shared state from the board given at
// Init (committed state only — the same view every player has).
type Protocol interface {
	// Name identifies the protocol in reports.
	Name() string
	// Init prepares the protocol for a run.
	Init(setup Setup) error
	// Probes appends this round's probe choices for the active players to
	// dst and returns it. A player absent from the result makes no probe
	// this round (e.g. sought advice from a player with no vote).
	Probes(round int, active []int, dst []Probe) []Probe
	// PrescribedRounds returns r > 0 if the protocol runs for exactly r
	// rounds with no local-testing halting (§5.3); 0 means players halt
	// individually upon probing a good object.
	PrescribedRounds() int
}

// AdvContext is the adversary's view when taking its turn: full knowledge
// of the world, the committed board, this round's in-flight honest posts
// (via Board.Pending — the adaptive power of §2.3), and the identities of
// everyone.
type AdvContext struct {
	Round     int
	Board     *billboard.Board
	Universe  *object.Universe
	Dishonest []int
	Honest    []int
	Satisfied []bool // indexed by player; true if that honest player halted
	Protocol  Protocol
	// AssumedAlpha and AssumedBeta are the parameters the honest protocol
	// was initialized with; mimicking adversaries need them to stay
	// schedule-identical with the honest players.
	AssumedAlpha float64
	AssumedBeta  float64
	// VotesCap is the per-player vote budget f the billboard enforces.
	VotesCap int
	Rng      *rng.Source
}

// Adversary controls the dishonest players. Act is called once per round,
// after honest probes are buffered; it posts through ctx.Board.Post. The
// billboard enforces identity tagging and vote caps, so an adversary cannot
// spoof players or exceed the vote budget — exactly the §2.1 guarantees.
type Adversary interface {
	Name() string
	Act(ctx *AdvContext)
}

// Dynamics opens the world: a scenario-supplied hook that injects player
// arrivals and departures at round boundaries and drifts the universe
// between rounds. When Config.Dynamics is set the engine starts with an
// EMPTY active set — every activation, including the initial population,
// flows through BeginRound — and the run ends only when the active set is
// empty AND Idle reports no arrivals remain (or MaxRounds hits).
//
// All ids returned by BeginRound must come from the run's honest set
// (Config.Honest / the sampled set); the engine validates them. A player
// that has halted satisfied cannot re-arrive; a departed player can.
type Dynamics interface {
	// BeginRound is called at the top of every round with the players
	// active entering it. It returns the ids arriving this round and the
	// ids departing before it (both may be nil).
	BeginRound(round int, active []int) (arrive, depart []int)
	// EndRound is called after the round commits — the world-drift hook
	// (popularity churn, campaign bookkeeping). A non-nil error aborts
	// the run.
	EndRound(round int) error
	// Idle reports whether no further arrivals will ever occur at or
	// after the given round; with an empty active set it ends the run.
	Idle(round int) bool
}

// Config describes one simulation run.
type Config struct {
	Universe *object.Universe
	Protocol Protocol
	// Adversary is optional; nil means dishonest players stay silent.
	Adversary Adversary
	// N is the total number of players (required, > 0).
	N int
	// Honest explicitly lists honest player ids. If nil, a uniformly random
	// subset of size max(1, round(Alpha*N)) is chosen.
	Honest []int
	// Alpha is the true honest fraction used when Honest is nil, and the
	// default value passed to the protocol as its assumed α.
	Alpha float64
	// AssumedAlpha overrides the α given to the protocol (e.g. to study a
	// mis-parameterized DISTILL). 0 means use Alpha.
	AssumedAlpha float64
	// AssumedBeta is the β given to the protocol. 0 means use the
	// universe's realized good fraction.
	AssumedBeta float64
	// Seed determines the entire run.
	Seed uint64
	// MaxRounds is a safety cap; 0 means the default of 1 << 20.
	MaxRounds int
	// VotesPerPlayer is the vote cap f (default 1).
	VotesPerPlayer int
	// HonestErrorRate is the §4.1 erroneous-vote probability: after probing
	// a bad object, an honest player mistakenly reports it positive with
	// this probability, but never spends its last vote slot on an error.
	HonestErrorRate float64
	// KeepLog retains the full post log on the board.
	KeepLog bool
	// VoteFilter, when non-nil, is installed as the billboard's
	// vote-admission rule (see billboard.Config.VoteFilter). Used by the
	// §6 object-ownership extension.
	VoteFilter func(player, object int) bool
	// Observer, when non-nil, receives a snapshot of the run's dynamics
	// after every committed round (for metrics/tracing/plotting). Wrap a
	// plain function with FuncObserver; combine sinks with MultiObserver.
	Observer Observer
	// Context, when non-nil, cancels the run: the engine checks it at every
	// round boundary and returns its error once it is done. Cancellation is
	// cooperative and round-aligned, so a canceled run never tears a round
	// in half.
	Context context.Context
	// Dynamics, when non-nil, runs the simulation open-world: arrivals,
	// departures, and universe drift are injected at round boundaries (see
	// the Dynamics interface). nil preserves the closed-world §2.1 model.
	Dynamics Dynamics
	// Board, when non-nil, reuses an existing billboard instead of creating
	// a fresh one — the "after effects" mechanism of §5.1 (spent votes and
	// stale recommendations persist across phases) and the substrate of the
	// X6 churn study. Its player/object dimensions must match the run; the
	// engine continues from its current round number, and VotesPerPlayer /
	// KeepLog / VoteFilter settings of this Config are ignored in favor of
	// the board's own.
	Board *billboard.Board
}

// RoundStats is the per-round snapshot delivered to Config.Observer.
type RoundStats struct {
	// Round is the round that just committed.
	Round int
	// ActiveHonest is the number of honest players still searching at the
	// END of the round.
	ActiveHonest int
	// SatisfiedHonest is the number of honest players that have halted.
	SatisfiedHonest int
	// ProbesThisRound is the number of honest probes made this round.
	ProbesThisRound int
	// TotalVotes is the number of committed votes on the board.
	TotalVotes int
	// VotedObjects is the number of distinct objects holding votes.
	VotedObjects int
	// GoodVotes is the number of committed votes on good objects (visible
	// to the harness, not to players).
	GoodVotes int
}

// Result collects the outcome of a run.
type Result struct {
	Protocol  string
	Adversary string
	N         int
	M         int
	Alpha     float64 // true honest fraction
	Rounds    int     // rounds executed
	TimedOut  bool    // hit MaxRounds before finishing

	Honest []int // honest player ids

	// SatisfiedRound[p] is the round at which player p probed a good object
	// and halted (-1 if never). Only meaningful for honest players in
	// local-testing mode.
	SatisfiedRound []int
	// DepartedRound[p] is the last round at which player p departed via
	// Config.Dynamics (-1 if never). A player that later re-arrived and
	// halted satisfied keeps its departure history here.
	DepartedRound []int
	// Probes[p] counts the probes player p made (honest players only; the
	// individual cost of the paper under unit costs).
	Probes []int
	// Cost[p] is the total probing cost paid by player p.
	Cost []float64
	// Success[p] reports, for prescribed-round protocols, whether honest
	// player p's best probed object was good; in local-testing mode it is
	// simply "p halted".
	Success []bool
	// BestObject[p] is honest player p's highest-value probed object
	// (-1 if p never probed).
	BestObject []int
}

// Engine runs one simulation. Construct with NewEngine.
type Engine struct {
	cfg       Config
	universe  *object.Universe
	board     *billboard.Board
	part      *rng.Partition
	advRng    *rng.Source
	honest    []int
	honestSet []bool
	dishonest []int
}

// NewEngine validates cfg and prepares a run.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Universe == nil {
		return nil, fmt.Errorf("sim: Config.Universe is required")
	}
	if cfg.Protocol == nil {
		return nil, fmt.Errorf("sim: Config.Protocol is required")
	}
	if cfg.N <= 0 {
		return nil, fmt.Errorf("sim: N must be > 0, got %d", cfg.N)
	}
	if cfg.Honest == nil && (cfg.Alpha <= 0 || cfg.Alpha > 1) {
		return nil, fmt.Errorf("sim: Alpha %v outside (0, 1] with no explicit honest set", cfg.Alpha)
	}
	if cfg.HonestErrorRate < 0 || cfg.HonestErrorRate >= 1 {
		return nil, fmt.Errorf("sim: HonestErrorRate %v outside [0, 1)", cfg.HonestErrorRate)
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = 1 << 20
	}
	// The partition's streams are byte-identical to the historical
	// master.Split(label) derivations: Split depends only on (seed, label),
	// so swapping the ad-hoc splits for named streams is a pure rename.
	part := rng.NewPartition(cfg.Seed)

	e := &Engine{
		cfg:      cfg,
		universe: cfg.Universe,
		part:     part,
		advRng:   part.Stream(rng.StreamAdversary),
	}

	if cfg.Honest != nil {
		e.honest = append([]int(nil), cfg.Honest...)
	} else {
		k := int(cfg.Alpha*float64(cfg.N) + 0.5)
		if k < 1 {
			k = 1
		}
		if k > cfg.N {
			k = cfg.N
		}
		e.honest = part.Stream(rng.StreamMembership).Sample(cfg.N, k)
	}
	if len(e.honest) == 0 {
		return nil, fmt.Errorf("sim: need at least one honest player")
	}
	e.honestSet = make([]bool, cfg.N)
	for _, p := range e.honest {
		if p < 0 || p >= cfg.N {
			return nil, fmt.Errorf("sim: honest player %d out of range [0, %d)", p, cfg.N)
		}
		if e.honestSet[p] {
			return nil, fmt.Errorf("sim: duplicate honest player %d", p)
		}
		e.honestSet[p] = true
	}
	for p := 0; p < cfg.N; p++ {
		if !e.honestSet[p] {
			e.dishonest = append(e.dishonest, p)
		}
	}

	if cfg.Board != nil {
		e.board = cfg.Board
		return e, nil
	}
	mode := billboard.FirstPositive
	if !cfg.Universe.LocalTesting() {
		mode = billboard.BestValue
	}
	board, err := billboard.New(billboard.Config{
		Players:        cfg.N,
		Objects:        cfg.Universe.M(),
		Mode:           mode,
		VotesPerPlayer: cfg.VotesPerPlayer,
		KeepLog:        cfg.KeepLog,
		VoteFilter:     cfg.VoteFilter,
	})
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	e.board = board
	return e, nil
}

// Honest returns the honest player ids of this run (sorted ascending).
func (e *Engine) Honest() []int { return append([]int(nil), e.honest...) }

// HonestView returns the honest player ids without copying. The slice is
// owned by the engine and must not be mutated; use Honest for a private copy.
func (e *Engine) HonestView() []int { return e.honest }

// Board exposes the board (for tests and post-hoc inspection).
func (e *Engine) Board() *billboard.Board { return e.board }

// Run executes the simulation to completion and returns the result.
func (e *Engine) Run() (*Result, error) {
	cfg := e.cfg
	n, m := cfg.N, e.universe.M()

	assumedAlpha := cfg.AssumedAlpha
	if assumedAlpha == 0 {
		assumedAlpha = cfg.Alpha
	}
	if assumedAlpha == 0 { // explicit honest set and no assumption given
		assumedAlpha = float64(len(e.honest)) / float64(n)
	}
	assumedBeta := cfg.AssumedBeta
	if assumedBeta == 0 {
		assumedBeta = e.universe.Beta()
	}

	if err := cfg.Protocol.Init(Setup{
		N:        n,
		Alpha:    assumedAlpha,
		Beta:     assumedBeta,
		Universe: e.universe,
		Board:    e.board,
		Rng:      e.part.Stream(rng.StreamProtocol),
	}); err != nil {
		return nil, fmt.Errorf("sim: protocol init: %w", err)
	}

	res := &Result{
		Protocol:       cfg.Protocol.Name(),
		N:              n,
		M:              m,
		Alpha:          float64(len(e.honest)) / float64(n),
		Honest:         e.Honest(),
		SatisfiedRound: make([]int, n),
		DepartedRound:  make([]int, n),
		Probes:         make([]int, n),
		Cost:           make([]float64, n),
		Success:        make([]bool, n),
		BestObject:     make([]int, n),
	}
	if cfg.Adversary != nil {
		res.Adversary = cfg.Adversary.Name()
	}
	for p := range res.SatisfiedRound {
		res.SatisfiedRound[p] = -1
		res.DepartedRound[p] = -1
		res.BestObject[p] = -1
	}
	bestValue := make([]float64, n)

	votesCap := cfg.VotesPerPlayer
	if votesCap == 0 {
		votesCap = 1
	}
	errCount := make([]int, n)
	errRng := e.part.Stream(rng.StreamErrors)

	localTesting := e.universe.LocalTesting()
	prescribed := cfg.Protocol.PrescribedRounds()

	dyn := cfg.Dynamics
	var active []int
	if dyn == nil {
		active = append([]int(nil), e.honest...)
	} // open world: the initial population arrives through BeginRound
	inActive := make([]bool, n)
	for _, p := range active {
		inActive[p] = true
	}
	satisfied := make([]bool, n)
	probeBuf := make([]Probe, 0, len(active))
	advCtx := &AdvContext{
		Board:        e.board,
		Universe:     e.universe,
		Dishonest:    e.dishonest,
		Honest:       e.honest,
		Satisfied:    satisfied,
		Protocol:     cfg.Protocol,
		AssumedAlpha: assumedAlpha,
		AssumedBeta:  assumedBeta,
		VotesCap:     votesCap,
		Rng:          e.advRng,
	}

	// Rounds are board-aligned so that a reused board's timestamps and the
	// protocol's window arithmetic agree; for a fresh board start is 0.
	start := e.board.Round()
	round := start
	for {
		if cfg.Context != nil {
			if err := cfg.Context.Err(); err != nil {
				return nil, fmt.Errorf("sim: run canceled at round %d: %w", round, err)
			}
		}
		if dyn != nil {
			arrive, depart := dyn.BeginRound(round, active)
			for _, p := range depart {
				if p < 0 || p >= n || !inActive[p] {
					return nil, fmt.Errorf("sim: dynamics departed inactive player %d at round %d", p, round)
				}
				inActive[p] = false
				res.DepartedRound[p] = round
			}
			if len(depart) > 0 {
				keep := active[:0]
				for _, p := range active {
					if inActive[p] {
						keep = append(keep, p)
					}
				}
				active = keep
			}
			for _, p := range arrive {
				if p < 0 || p >= n || !e.honestSet[p] {
					return nil, fmt.Errorf("sim: dynamics arrival %d outside the honest set at round %d", p, round)
				}
				if satisfied[p] || inActive[p] {
					continue // halted players stay halted; double arrivals are no-ops
				}
				inActive[p] = true
				active = append(active, p)
			}
		}
		if prescribed > 0 {
			if round-start >= prescribed {
				break
			}
		} else if len(active) == 0 && (dyn == nil || dyn.Idle(round)) {
			break
		}
		if round-start >= cfg.MaxRounds {
			res.TimedOut = true
			break
		}

		probeBuf = cfg.Protocol.Probes(round, active, probeBuf[:0])
		newlySatisfied := false
		for _, pr := range probeBuf {
			p, obj := pr.Player, pr.Object
			if p < 0 || p >= n || !e.honestSet[p] || satisfied[p] {
				return nil, fmt.Errorf("sim: protocol %q probed for invalid player %d at round %d",
					cfg.Protocol.Name(), p, round)
			}
			if obj < 0 || obj >= m {
				return nil, fmt.Errorf("sim: protocol %q probe of object %d out of range at round %d",
					cfg.Protocol.Name(), obj, round)
			}
			value := e.universe.Value(obj)
			res.Probes[p]++
			res.Cost[p] += e.universe.Cost(obj)
			if res.BestObject[p] == -1 || value > bestValue[p] {
				res.BestObject[p] = obj
				bestValue[p] = value
			}

			good := e.universe.IsGood(obj)
			positive := localTesting && good
			if localTesting && !good && cfg.HonestErrorRate > 0 &&
				errCount[p] < votesCap-1 && errRng.Bernoulli(cfg.HonestErrorRate) {
				// §4.1: an erroneous positive vote, never spending the last
				// vote slot (so one slot always remains for the truth).
				positive = true
				errCount[p]++
			}
			if err := e.board.Post(billboard.Post{
				Player:   p,
				Object:   obj,
				Value:    value,
				Positive: positive,
			}); err != nil {
				return nil, fmt.Errorf("sim: %w", err)
			}
			if localTesting && good && prescribed == 0 {
				satisfied[p] = true
				res.SatisfiedRound[p] = round
				res.Success[p] = true
				newlySatisfied = true
			}
		}

		if cfg.Adversary != nil {
			advCtx.Round = round
			cfg.Adversary.Act(advCtx)
		}
		e.board.EndRound()
		if dyn != nil {
			if err := dyn.EndRound(round); err != nil {
				return nil, fmt.Errorf("sim: dynamics at round %d: %w", round, err)
			}
		}

		if cfg.Observer != nil {
			stats := RoundStats{
				Round:           round,
				ProbesThisRound: len(probeBuf),
				TotalVotes:      e.board.TotalVotes(),
				VotedObjects:    e.board.NumVotedObjects(),
			}
			for _, p := range e.honest {
				if satisfied[p] {
					stats.SatisfiedHonest++
				}
			}
			if dyn == nil {
				stats.ActiveHonest = len(e.honest) - stats.SatisfiedHonest
			} else {
				// Open world: "active" means present this round, not merely
				// unsatisfied.
				for _, p := range active {
					if !satisfied[p] {
						stats.ActiveHonest++
					}
				}
			}
			for _, obj := range e.universe.GoodObjects() {
				stats.GoodVotes += e.board.VoteCount(obj)
			}
			cfg.Observer.ObserveRound(stats)
		}

		if newlySatisfied {
			keep := active[:0]
			for _, p := range active {
				if !satisfied[p] {
					keep = append(keep, p)
				} else {
					inActive[p] = false
				}
			}
			active = keep
		}
		round++
	}
	res.Rounds = round - start

	if prescribed > 0 {
		for _, p := range e.honest {
			if res.BestObject[p] >= 0 && e.universe.IsGood(res.BestObject[p]) {
				res.Success[p] = true
			}
		}
	}
	return res, nil
}
