package sim

import (
	"testing"

	"repro/internal/object"
	"repro/internal/rng"
)

func TestObserverSeesEveryRound(t *testing.T) {
	u, err := object.NewUniverse(object.Config{
		Values:       []float64{0, 0, 1},
		LocalTesting: true,
		Threshold:    0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var snaps []RoundStats
	e, err := NewEngine(Config{
		Universe: u,
		Protocol: &fixedProtocol{schedule: []int{0, 1, 2}},
		N:        4, Alpha: 1, Seed: 1,
		Observer: func(s RoundStats) { snaps = append(snaps, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != res.Rounds {
		t.Fatalf("observer saw %d rounds, run had %d", len(snaps), res.Rounds)
	}
	for i, s := range snaps {
		if s.Round != i {
			t.Fatalf("snapshot %d has round %d", i, s.Round)
		}
	}
	last := snaps[len(snaps)-1]
	if last.SatisfiedHonest != 4 || last.ActiveHonest != 0 {
		t.Fatalf("final snapshot: %+v", last)
	}
	if last.GoodVotes != 4 {
		t.Fatalf("good votes = %d, want 4", last.GoodVotes)
	}
	// First round: everyone probed object 0 (bad), nobody satisfied.
	if snaps[0].SatisfiedHonest != 0 || snaps[0].ProbesThisRound != 4 {
		t.Fatalf("first snapshot: %+v", snaps[0])
	}
}

func TestObserverSatisfiedMonotone(t *testing.T) {
	u, err := object.NewPlanted(object.Planted{M: 64, Good: 2}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	e, err := NewEngine(Config{
		Universe: u, Protocol: &randomProtocol{}, N: 32, Alpha: 1, Seed: 9,
		Observer: func(s RoundStats) {
			if s.SatisfiedHonest < prev {
				t.Fatalf("satisfied decreased: %d -> %d", prev, s.SatisfiedHonest)
			}
			prev = s.SatisfiedHonest
			if s.ActiveHonest+s.SatisfiedHonest != 32 {
				t.Fatalf("active+satisfied != honest: %+v", s)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestVoteFilterInstalledOnBoard(t *testing.T) {
	u, err := object.NewUniverse(object.Config{
		Values:       []float64{1, 0},
		LocalTesting: true,
		Threshold:    0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Filter that rejects every vote: even the honest vote for the good
	// object must be inadmissible (the player still halts — satisfaction
	// is about probing, not voting).
	e, err := NewEngine(Config{
		Universe: u, Protocol: &fixedProtocol{schedule: []int{0}},
		N: 2, Alpha: 1, Seed: 1,
		VoteFilter: func(player, objectID int) bool { return false },
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllHonestSatisfied() {
		t.Fatal("players should still halt on probing good objects")
	}
	if e.Board().TotalVotes() != 0 {
		t.Fatalf("filter bypassed: %d votes", e.Board().TotalVotes())
	}
}
