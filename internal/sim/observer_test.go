package sim

import (
	"testing"

	"bufio"
	"bytes"
	"encoding/json"
	"io"

	"repro/internal/object"
	"repro/internal/obs"
	"repro/internal/rng"
)

func TestObserverSeesEveryRound(t *testing.T) {
	u, err := object.NewUniverse(object.Config{
		Values:       []float64{0, 0, 1},
		LocalTesting: true,
		Threshold:    0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var snaps []RoundStats
	e, err := NewEngine(Config{
		Universe: u,
		Protocol: &fixedProtocol{schedule: []int{0, 1, 2}},
		N:        4, Alpha: 1, Seed: 1,
		Observer: FuncObserver(func(s RoundStats) { snaps = append(snaps, s) }),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != res.Rounds {
		t.Fatalf("observer saw %d rounds, run had %d", len(snaps), res.Rounds)
	}
	for i, s := range snaps {
		if s.Round != i {
			t.Fatalf("snapshot %d has round %d", i, s.Round)
		}
	}
	last := snaps[len(snaps)-1]
	if last.SatisfiedHonest != 4 || last.ActiveHonest != 0 {
		t.Fatalf("final snapshot: %+v", last)
	}
	if last.GoodVotes != 4 {
		t.Fatalf("good votes = %d, want 4", last.GoodVotes)
	}
	// First round: everyone probed object 0 (bad), nobody satisfied.
	if snaps[0].SatisfiedHonest != 0 || snaps[0].ProbesThisRound != 4 {
		t.Fatalf("first snapshot: %+v", snaps[0])
	}
}

func TestObserverSatisfiedMonotone(t *testing.T) {
	u, err := object.NewPlanted(object.Planted{M: 64, Good: 2}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	e, err := NewEngine(Config{
		Universe: u, Protocol: &randomProtocol{}, N: 32, Alpha: 1, Seed: 9,
		Observer: FuncObserver(func(s RoundStats) {
			if s.SatisfiedHonest < prev {
				t.Fatalf("satisfied decreased: %d -> %d", prev, s.SatisfiedHonest)
			}
			prev = s.SatisfiedHonest
			if s.ActiveHonest+s.SatisfiedHonest != 32 {
				t.Fatalf("active+satisfied != honest: %+v", s)
			}
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestVoteFilterInstalledOnBoard(t *testing.T) {
	u, err := object.NewUniverse(object.Config{
		Values:       []float64{1, 0},
		LocalTesting: true,
		Threshold:    0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Filter that rejects every vote: even the honest vote for the good
	// object must be inadmissible (the player still halts — satisfaction
	// is about probing, not voting).
	e, err := NewEngine(Config{
		Universe: u, Protocol: &fixedProtocol{schedule: []int{0}},
		N: 2, Alpha: 1, Seed: 1,
		VoteFilter: func(player, objectID int) bool { return false },
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllHonestSatisfied() {
		t.Fatal("players should still halt on probing good objects")
	}
	if e.Board().TotalVotes() != 0 {
		t.Fatalf("filter bypassed: %d votes", e.Board().TotalVotes())
	}
}

func TestMetricsAndTraceObservers(t *testing.T) {
	u, err := object.NewPlanted(object.Planted{M: 64, Good: 2}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	var traced bytes.Buffer
	tr := obs.NewTrace(&traced)
	e, err := NewEngine(Config{
		Universe: u, Protocol: &randomProtocol{}, N: 16, Alpha: 1, Seed: 7,
		Observer: MultiObserver(
			NewMetricsObserver(reg),
			NewTraceObserver(tr, "unit", 3),
			nil, // nil entries must be tolerated
		),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap["sim_rounds_total"]; got != float64(res.Rounds) {
		t.Fatalf("sim_rounds_total = %v, want %d", got, res.Rounds)
	}
	totalProbes := 0
	for _, p := range res.Probes {
		totalProbes += p
	}
	if got := snap["sim_probes_total"]; got != float64(totalProbes) {
		t.Fatalf("sim_probes_total = %v, want %d", got, totalProbes)
	}
	if got := snap["sim_satisfied_players"]; got != 16 {
		t.Fatalf("sim_satisfied_players = %v, want 16", got)
	}
	if got := snap["sim_round_wall_seconds_count"]; got != float64(res.Rounds) {
		t.Fatalf("wall histogram count = %v, want %d", got, res.Rounds)
	}
	if tr.Err() != nil {
		t.Fatal(tr.Err())
	}
	if tr.Emitted() != int64(res.Rounds) {
		t.Fatalf("trace emitted %d events, want %d", tr.Emitted(), res.Rounds)
	}
	var first RoundEvent
	line, _, _ := bufio.NewReader(bytes.NewReader(traced.Bytes())).ReadLine()
	if err := json.Unmarshal(line, &first); err != nil {
		t.Fatal(err)
	}
	if first.Type != "round" || first.Label != "unit" || first.Rep != 3 || first.Round != 0 {
		t.Fatalf("first trace event = %+v", first)
	}
}

// TestObserverIsBehaviorNeutral pins that attaching full observability
// does not perturb the simulation: probes and rounds are bit-identical at
// a fixed seed with and without observers installed.
func TestObserverIsBehaviorNeutral(t *testing.T) {
	build := func(o Observer) *Result {
		u, err := object.NewPlanted(object.Planted{M: 128, Good: 1}, rng.New(21))
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(Config{
			Universe: u, Protocol: &randomProtocol{}, N: 64, Alpha: 0.75, Seed: 21,
			Observer: o,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	bare := build(nil)
	observed := build(MultiObserver(NewMetricsObserver(obs.NewRegistry()), NewTraceObserver(obs.NewTrace(io.Discard), "x", 0)))
	if bare.Rounds != observed.Rounds {
		t.Fatalf("rounds diverged: %d vs %d", bare.Rounds, observed.Rounds)
	}
	for p := range bare.Probes {
		if bare.Probes[p] != observed.Probes[p] {
			t.Fatalf("player %d probes diverged: %d vs %d", p, bare.Probes[p], observed.Probes[p])
		}
	}
}
