package sim

// HonestProbes returns the probe counts of the honest players, the paper's
// individual cost under unit costs.
func (r *Result) HonestProbes() []float64 {
	out := make([]float64, 0, len(r.Honest))
	for _, p := range r.Honest {
		out = append(out, float64(r.Probes[p]))
	}
	return out
}

// HonestCosts returns the total probing cost paid by each honest player.
func (r *Result) HonestCosts() []float64 {
	out := make([]float64, 0, len(r.Honest))
	for _, p := range r.Honest {
		out = append(out, r.Cost[p])
	}
	return out
}

// HonestSatisfiedRounds returns, for each honest player that halted, the
// round at which it did (its termination time).
func (r *Result) HonestSatisfiedRounds() []float64 {
	out := make([]float64, 0, len(r.Honest))
	for _, p := range r.Honest {
		if r.SatisfiedRound[p] >= 0 {
			out = append(out, float64(r.SatisfiedRound[p]))
		}
	}
	return out
}

// AllHonestSatisfied reports whether every honest player halted (local
// testing) or ended with a good best object (prescribed rounds).
func (r *Result) AllHonestSatisfied() bool {
	for _, p := range r.Honest {
		if !r.Success[p] {
			return false
		}
	}
	return true
}

// SuccessFraction returns the fraction of honest players that succeeded.
func (r *Result) SuccessFraction() float64 {
	if len(r.Honest) == 0 {
		return 0
	}
	ok := 0
	for _, p := range r.Honest {
		if r.Success[p] {
			ok++
		}
	}
	return float64(ok) / float64(len(r.Honest))
}

// LastSatisfiedRound returns the largest satisfaction round among honest
// players, or -1 if none halted. This is the "last player" time of §5.
func (r *Result) LastSatisfiedRound() int {
	last := -1
	for _, p := range r.Honest {
		if r.SatisfiedRound[p] > last {
			last = r.SatisfiedRound[p]
		}
	}
	return last
}

// MeanHonestProbes returns the mean individual cost over honest players.
func (r *Result) MeanHonestProbes() float64 {
	probes := r.HonestProbes()
	if len(probes) == 0 {
		return 0
	}
	total := 0.0
	for _, v := range probes {
		total += v
	}
	return total / float64(len(probes))
}
