package sim

import (
	"time"

	"repro/internal/obs"
)

// Observer receives a RoundStats snapshot after every committed round of a
// run. It replaces the former bare `func(RoundStats)` config field so that
// sinks with state or several hooks (metrics registries, trace writers,
// CSV emitters) implement one small interface; wrap a plain function with
// FuncObserver.
//
// ObserveRound runs on the engine goroutine between rounds: it must not
// block for long, and it must not mutate the board. It MAY read the
// snapshot only — the engine does not hand it the board.
type Observer interface {
	ObserveRound(RoundStats)
}

// FuncObserver adapts a plain function to the Observer interface (the
// http.HandlerFunc pattern).
type FuncObserver func(RoundStats)

// ObserveRound calls f.
func (f FuncObserver) ObserveRound(s RoundStats) { f(s) }

// MultiObserver fans one run's snapshots out to several observers in
// order — e.g. a metrics sink and a trace writer on the same run. Nil
// entries are skipped.
func MultiObserver(observers ...Observer) Observer {
	kept := make([]Observer, 0, len(observers))
	for _, o := range observers {
		if o != nil {
			kept = append(kept, o)
		}
	}
	return multiObserver(kept)
}

type multiObserver []Observer

func (m multiObserver) ObserveRound(s RoundStats) {
	for _, o := range m {
		o.ObserveRound(s)
	}
}

// metricsObserver is the obs.Registry sink: per-round counters, the
// current population gauges, and a wall-time histogram measured between
// consecutive committed rounds.
type metricsObserver struct {
	rounds    *obs.Counter
	probes    *obs.Counter
	satisfied *obs.Gauge
	active    *obs.Gauge
	votes     *obs.Gauge
	wall      *obs.Histogram
	last      time.Time
}

// NewMetricsObserver returns an Observer that records the run's dynamics
// into reg under the sim_* metric family: sim_rounds_total,
// sim_probes_total, sim_active_players, sim_satisfied_players,
// sim_board_votes, and sim_round_wall_seconds (time between consecutive
// round commits, which is the round's compute cost as seen by the engine
// loop). Several engines may share one registry; the counters then
// aggregate across runs while the gauges track the most recent round
// committed by any of them.
func NewMetricsObserver(reg *obs.Registry) Observer {
	return &metricsObserver{
		rounds:    reg.Counter("sim_rounds_total", "rounds committed by the simulation engine"),
		probes:    reg.Counter("sim_probes_total", "honest probes executed"),
		satisfied: reg.Gauge("sim_satisfied_players", "honest players that have halted"),
		active:    reg.Gauge("sim_active_players", "honest players still searching"),
		votes:     reg.Gauge("sim_board_votes", "committed votes on the billboard"),
		wall:      reg.Histogram("sim_round_wall_seconds", "wall time between consecutive round commits", nil),
		last:      time.Now(),
	}
}

func (m *metricsObserver) ObserveRound(s RoundStats) {
	now := time.Now()
	m.wall.Observe(now.Sub(m.last).Seconds())
	m.last = now
	m.rounds.Inc()
	m.probes.Add(int64(s.ProbesThisRound))
	m.satisfied.Set(float64(s.SatisfiedHonest))
	m.active.Set(float64(s.ActiveHonest))
	m.votes.Set(float64(s.TotalVotes))
}

// RoundEvent is the JSONL schema emitted by trace observers: one event per
// committed round. Label and Rep identify the run when several runs share
// one trace (experiment id, replication index).
type RoundEvent struct {
	Type         string `json:"type"` // always "round"
	Label        string `json:"label,omitempty"`
	Rep          int    `json:"rep,omitempty"`
	Round        int    `json:"round"`
	Active       int    `json:"active"`
	Satisfied    int    `json:"satisfied"`
	Probes       int    `json:"probes"`
	TotalVotes   int    `json:"total_votes"`
	VotedObjects int    `json:"voted_objects"`
	GoodVotes    int    `json:"good_votes"`
}

// NewTraceObserver returns an Observer that emits one RoundEvent per
// committed round into tr, tagged with label and rep. A nil tr yields an
// inert observer (obs.Trace is nil-safe).
func NewTraceObserver(tr *obs.Trace, label string, rep int) Observer {
	return FuncObserver(func(s RoundStats) {
		tr.Emit(RoundEvent{
			Type:         "round",
			Label:        label,
			Rep:          rep,
			Round:        s.Round,
			Active:       s.ActiveHonest,
			Satisfied:    s.SatisfiedHonest,
			Probes:       s.ProbesThisRound,
			TotalVotes:   s.TotalVotes,
			VotedObjects: s.VotedObjects,
			GoodVotes:    s.GoodVotes,
		})
	})
}
