package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Replicator runs independent replications of a simulation in parallel and
// collects the results in replication order. Each replication gets its own
// engine (and typically its own universe) built from a distinct seed, so
// replications share no mutable state.
type Replicator struct {
	// Reps is the number of replications (required, > 0).
	Reps int
	// Workers bounds parallelism; 0 means GOMAXPROCS.
	Workers int
	// BaseSeed seeds replication i with BaseSeed + i.
	BaseSeed uint64
	// Build constructs the engine for one replication.
	Build func(seed uint64) (*Engine, error)
}

// Run executes all replications and returns their results in order. The
// first error encountered is returned; once any replication fails, no new
// replications are dispatched (in-flight ones finish).
func (r Replicator) Run() ([]*Result, error) {
	if r.Reps <= 0 {
		return nil, fmt.Errorf("sim: Replicator.Reps must be > 0, got %d", r.Reps)
	}
	if r.Build == nil {
		return nil, fmt.Errorf("sim: Replicator.Build is required")
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > r.Reps {
		workers = r.Reps
	}

	results := make([]*Result, r.Reps)
	errs := make([]error, r.Reps)
	var failed atomic.Bool // set on first error; stops further dispatch
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				engine, err := r.Build(r.BaseSeed + uint64(i))
				if err != nil {
					errs[i] = fmt.Errorf("sim: replication %d build: %w", i, err)
					failed.Store(true)
					continue
				}
				res, err := engine.Run()
				if err != nil {
					errs[i] = fmt.Errorf("sim: replication %d run: %w", i, err)
					failed.Store(true)
					continue
				}
				results[i] = res
			}
		}()
	}
	for i := 0; i < r.Reps && !failed.Load(); i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Aggregate holds cross-replication aggregates of the headline metrics.
type Aggregate struct {
	Reps int
	// MeanIndividualProbes averages, over replications, the mean honest
	// individual probe count.
	MeanIndividualProbes float64
	// MeanIndividualCost averages the mean honest probing cost.
	MeanIndividualCost float64
	// MeanRounds averages the total round count.
	MeanRounds float64
	// MeanLastRound averages the last honest satisfaction round (only over
	// replications where someone halted).
	MeanLastRound float64
	// MaxLastRound is the worst last-satisfaction round observed.
	MaxLastRound int
	// SuccessRate averages the per-replication honest success fraction.
	SuccessRate float64
	// TimedOut counts replications that hit MaxRounds.
	TimedOut int
	// PerPlayerProbes concatenates honest per-player probe counts across
	// replications (for distribution plots).
	PerPlayerProbes []float64
}

// Aggregate computes cross-replication aggregates.
func AggregateResults(results []*Result) Aggregate {
	agg := Aggregate{Reps: len(results)}
	if len(results) == 0 {
		return agg
	}
	lastCount := 0
	for _, res := range results {
		agg.MeanIndividualProbes += res.MeanHonestProbes()
		costs := res.HonestCosts()
		total := 0.0
		for _, c := range costs {
			total += c
		}
		if len(costs) > 0 {
			agg.MeanIndividualCost += total / float64(len(costs))
		}
		agg.MeanRounds += float64(res.Rounds)
		if last := res.LastSatisfiedRound(); last >= 0 {
			agg.MeanLastRound += float64(last)
			lastCount++
			if last > agg.MaxLastRound {
				agg.MaxLastRound = last
			}
		}
		agg.SuccessRate += res.SuccessFraction()
		if res.TimedOut {
			agg.TimedOut++
		}
		agg.PerPlayerProbes = append(agg.PerPlayerProbes, res.HonestProbes()...)
	}
	n := float64(len(results))
	agg.MeanIndividualProbes /= n
	agg.MeanIndividualCost /= n
	agg.MeanRounds /= n
	if lastCount > 0 {
		agg.MeanLastRound /= float64(lastCount)
	}
	agg.SuccessRate /= n
	return agg
}
