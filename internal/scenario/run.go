package scenario

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/object"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/internal/sim"
)

// Options carries the run-time knobs a Spec deliberately does not encode:
// the seed (a scenario file names a workload, (file, seed) names a run)
// and the operational hooks.
type Options struct {
	// Seed determines the entire run.
	Seed uint64
	// Observer, when non-nil, receives per-round snapshots.
	Observer sim.Observer
	// Metrics, when non-nil, receives the runner's metric families
	// (cluster backend).
	Metrics *obs.Registry
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// Result is a completed scenario run.
type Result struct {
	// Name and Backend echo the spec.
	Name    string
	Backend string
	// Seed echoes the run seed.
	Seed uint64
	// Rounds is the number of rounds executed (max over players for the
	// cluster backend, engine round count otherwise).
	Rounds int
	// Honest is the honest player count; Found/Departed/TimedOut partition
	// how they ended.
	Honest   int
	Found    int
	Departed int
	TimedOut int
	// MeanProbes is the mean per-honest-player probe count.
	MeanProbes float64
	// Digest is the canonical digest of the final committed billboard:
	// byte-identical across replays of the same (spec, seed) — the replay
	// contract the golden tests pin.
	Digest []byte

	// Engine holds the engine backend's full result (nil on cluster runs);
	// Cluster holds the cluster backend's (nil on engine runs).
	Engine  *sim.Result
	Cluster *dist.ClusterResult
}

// Run executes a validated Spec. The context cancels engine runs at round
// boundaries and cluster runs through the swarm driver.
func Run(ctx context.Context, spec *Spec, opts Options) (*Result, error) {
	if spec == nil {
		return nil, fmt.Errorf("scenario: nil spec")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	switch spec.Backend {
	case BackendEngine:
		return runEngine(ctx, spec, opts)
	case BackendCluster:
		return runCluster(ctx, spec, opts)
	}
	return nil, fmt.Errorf("scenario: unknown backend %q", spec.Backend)
}

// buildUniverse plants the spec's world from the partition's world stream.
// With World.Zipf set, the good set is re-planted at ids drawn from the
// popularity profile (low ids popular) before anyone probes.
func buildUniverse(spec *Spec, part *rng.Partition) (*object.Universe, error) {
	src := part.Stream(rng.StreamWorld)
	u, err := object.NewPlanted(object.Planted{M: spec.World.Objects, Good: spec.World.Good}, src)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", spec.Name, err)
	}
	if spec.World.Zipf > 0 {
		zipf := rng.NewZipf(spec.World.Objects, spec.World.Zipf)
		good := make([]int, 0, spec.World.Good)
		seen := make(map[int]bool, spec.World.Good)
		for len(good) < spec.World.Good {
			obj := zipf.Draw(src)
			if !seen[obj] {
				seen[obj] = true
				good = append(good, obj)
			}
		}
		if err := u.Churn(good); err != nil {
			return nil, fmt.Errorf("scenario %s: %w", spec.Name, err)
		}
	}
	return u, nil
}

func (s *Spec) params() core.Params {
	return core.Params{K1: s.Protocol.K1, K2: s.Protocol.K2}
}

// runEngine drives the spec through the in-process simulation engine: the
// full feature set (open world, popularity drift, adversary campaigns).
func runEngine(ctx context.Context, spec *Spec, opts Options) (*Result, error) {
	part := rng.NewPartition(opts.Seed)
	u, err := buildUniverse(spec, part)
	if err != nil {
		return nil, err
	}
	camp, err := newCampaign(spec.Campaign, part)
	if err != nil {
		return nil, err
	}
	dyn := newDynamics(spec, part, u)

	honest := spec.Players - spec.Byzantine
	honestIDs := make([]int, honest)
	for i := range honestIDs {
		honestIDs[i] = i
	}
	cfg := sim.Config{
		Universe:  u,
		Protocol:  core.NewDistill(spec.params()),
		N:         spec.Players,
		Honest:    honestIDs,
		Seed:      opts.Seed,
		MaxRounds: spec.MaxRounds,
		Observer:  opts.Observer,
		Context:   ctx,
	}
	if camp != nil {
		cfg.Adversary = camp
	}
	if dyn != nil {
		cfg.Dynamics = dyn
	}
	eng, err := sim.NewEngine(cfg)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", spec.Name, err)
	}
	sres, err := eng.Run()
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", spec.Name, err)
	}

	res := &Result{
		Name:    spec.Name,
		Backend: spec.Backend,
		Seed:    opts.Seed,
		Rounds:  sres.Rounds,
		Honest:  honest,
		Digest:  eng.Board().Digest(),
		Engine:  sres,
	}
	total := 0
	for _, p := range sres.Honest {
		total += sres.Probes[p]
		switch {
		case sres.Success[p]:
			res.Found++
		case sres.DepartedRound[p] >= 0:
			res.Departed++
		default:
			res.TimedOut++
		}
	}
	res.MeanProbes = float64(total) / float64(honest)
	return res, nil
}

// runCluster drives the spec through a loopback billboard service with the
// swarm event-loop fleet — open-world churn over the real wire protocol, in
// sync or epoch mode.
func runCluster(ctx context.Context, spec *Spec, opts Options) (*Result, error) {
	_ = ctx // dist.RunCluster owns its teardown; swarm cancellation rides Client options
	part := rng.NewPartition(opts.Seed)
	u, err := buildUniverse(spec, part)
	if err != nil {
		return nil, err
	}
	dyn := newDynamics(spec, part, nil)

	honest := spec.Players - spec.Byzantine
	cfg := dist.ClusterConfig{
		Universe:  u,
		Honest:    honest,
		Byzantine: spec.Byzantine,
		Params:    spec.params(),
		Seed:      opts.Seed,
		MaxRounds: spec.MaxRounds,
		Drive:     dist.Drive{Swarm: true},
		Logf:      opts.Logf,
	}
	if spec.Mode == ModeEpoch {
		cfg.Mode = server.ModeEpoch
	}
	if dyn != nil {
		cfg.Drive.Dynamics = dyn
	}
	if opts.Metrics != nil {
		cfg.Client.Metrics = opts.Metrics
	}
	cres, err := dist.RunCluster(cfg)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", spec.Name, err)
	}

	res := &Result{
		Name:       spec.Name,
		Backend:    spec.Backend,
		Seed:       opts.Seed,
		Rounds:     cres.Rounds,
		Honest:     honest,
		Departed:   cres.Departed,
		MeanProbes: cres.MeanProbes,
		Digest:     cres.BoardDigest,
		Cluster:    cres,
	}
	for _, hr := range cres.Honest {
		if hr.Found {
			res.Found++
		}
		if hr.TimedOut {
			res.TimedOut++
		}
	}
	return res, nil
}
