package scenario

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/rng"
)

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse([]byte(`{"name":"x","players":4,"world":{"objects":8,"good":1},"playrs":3}`))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	base := func() *Spec {
		return &Spec{Name: "t", Players: 8, World: World{Objects: 16, Good: 2}}
	}
	cases := []struct {
		label string
		mut   func(*Spec)
	}{
		{"no name", func(s *Spec) { s.Name = "" }},
		{"bad backend", func(s *Spec) { s.Backend = "cloud" }},
		{"epoch on engine", func(s *Spec) { s.Mode = ModeEpoch }},
		{"no players", func(s *Spec) { s.Players = 0 }},
		{"all byzantine", func(s *Spec) { s.Byzantine = 8 }},
		{"no objects", func(s *Spec) { s.World.Objects = 0 }},
		{"good too big", func(s *Spec) { s.World.Good = 17 }},
		{"unbounded poisson arrivals", func(s *Spec) { s.Arrivals = &Process{Kind: "poisson", Rate: 1, From: 3, Until: 1} }},
		{"unknown process", func(s *Spec) { s.Arrivals = &Process{Kind: "fractal"} }},
		{"burst mismatched", func(s *Spec) { s.Arrivals = &Process{Kind: "burst", At: []int{0, 1}, Size: []int{2}} }},
		{"trace out of order", func(s *Spec) {
			s.Arrivals = &Process{Kind: "trace", Trace: []TraceEvent{{Round: 3, Count: 1}, {Round: 1, Count: 1}}}
		}},
		{"trace count and players", func(s *Spec) {
			s.Arrivals = &Process{Kind: "trace", Trace: []TraceEvent{{Round: 0, Count: 1, Players: []int{0}}}}
		}},
		{"trace player outside pool", func(s *Spec) {
			s.Arrivals = &Process{Kind: "trace", Trace: []TraceEvent{{Round: 0, Players: []int{8}}}}
		}},
		{"drift on cluster", func(s *Spec) {
			s.Backend = BackendCluster
			s.Drift = &Drift{Every: 4, Zipf: 1}
		}},
		{"campaign on cluster", func(s *Spec) {
			s.Backend = BackendCluster
			s.Byzantine = 2
			s.Campaign = []Phase{{From: 0, Strategy: "silent"}}
		}},
		{"campaign without byzantine", func(s *Spec) { s.Campaign = []Phase{{From: 0, Strategy: "silent"}} }},
		{"campaign not from 0", func(s *Spec) {
			s.Byzantine = 2
			s.Campaign = []Phase{{From: 3, Strategy: "silent"}}
		}},
		{"campaign unsorted", func(s *Spec) {
			s.Byzantine = 2
			s.Campaign = []Phase{{From: 0, Strategy: "silent"}, {From: 5, Strategy: "slander"}, {From: 2, Strategy: "collude"}}
		}},
	}
	for _, tc := range cases {
		s := base()
		tc.mut(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: validated", tc.label)
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("base spec rejected: %v", err)
	}
}

func TestBuiltinsValidateAndRun(t *testing.T) {
	for _, name := range Names() {
		s, err := Builtin(name)
		if err != nil {
			t.Fatalf("builtin %s: %v", name, err)
		}
		if s.Backend == BackendCluster {
			continue // cluster builtins run in the dist-backed tests below
		}
		res, err := Run(context.Background(), s, Options{Seed: 7})
		if err != nil {
			t.Fatalf("builtin %s: %v", name, err)
		}
		if len(res.Digest) == 0 {
			t.Fatalf("builtin %s: empty digest", name)
		}
		if res.Rounds == 0 {
			t.Fatalf("builtin %s: zero rounds", name)
		}
	}
	if _, err := Builtin("no-such"); err == nil {
		t.Fatal("unknown builtin accepted")
	}
}

// TestEngineReplayDeterministic pins the replay contract on the engine
// backend: same (spec, seed) → byte-identical digest; different seed →
// (overwhelmingly) a different one.
func TestEngineReplayDeterministic(t *testing.T) {
	for _, name := range []string{"open-world", "popularity-drift", "adversary-switch", "flash-crowd"} {
		run := func(seed uint64) *Result {
			s, err := Builtin(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(context.Background(), s, Options{Seed: seed})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			return res
		}
		a, b := run(41), run(41)
		if !bytes.Equal(a.Digest, b.Digest) {
			t.Fatalf("%s: replay digest mismatch", name)
		}
		if a.Rounds != b.Rounds || a.Found != b.Found || a.Departed != b.Departed {
			t.Fatalf("%s: replay counters differ: %+v vs %+v", name, a, b)
		}
		if c := run(42); bytes.Equal(a.Digest, c.Digest) {
			t.Fatalf("%s: seeds 41 and 42 produced identical digests", name)
		}
	}
}

// TestClusterReplayDeterministic pins the replay contract on the cluster
// backend, in both server modes: the digest of the committed billboard is a
// function of (spec, seed) alone, even though the run crosses real
// connections and a concurrent event-loop fleet.
func TestClusterReplayDeterministic(t *testing.T) {
	for _, mode := range []string{ModeSync, ModeEpoch} {
		run := func() *Result {
			s, err := Builtin("cluster-churn")
			if err != nil {
				t.Fatal(err)
			}
			s.Mode = mode
			res, err := Run(context.Background(), s, Options{Seed: 99})
			if err != nil {
				t.Fatalf("mode %s: %v", mode, err)
			}
			return res
		}
		a, b := run(), run()
		if len(a.Digest) == 0 {
			t.Fatalf("mode %s: empty digest", mode)
		}
		if !bytes.Equal(a.Digest, b.Digest) {
			t.Fatalf("mode %s: replay digest mismatch", mode)
		}
		if a.Found != b.Found || a.Departed != b.Departed || a.TimedOut != b.TimedOut {
			t.Fatalf("mode %s: replay counters differ", mode)
		}
	}
}

// TestProcessIndependence is the partition property surfaced at spec level:
// adding a departure process must not change which players arrive when.
func TestProcessIndependence(t *testing.T) {
	arrivalTrace := func(withDepartures bool) [][]int {
		s := &Spec{
			Name:      "t",
			Players:   24,
			MaxRounds: 64,
			World:     World{Objects: 64, Good: 2},
			Arrivals:  &Process{Kind: "poisson", Rate: 2, Until: 8},
		}
		if withDepartures {
			s.Departures = &Process{Kind: "poisson", Rate: 1, From: 1}
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		part := rng.NewPartition(9)
		d := newDynamics(s, part, nil)
		var rounds [][]int
		for r := 0; r <= 8; r++ {
			arr := d.arrivals(r)
			rounds = append(rounds, arr)
			if withDepartures {
				// Interleave departure draws to prove they cannot bleed
				// into the arrival stream.
				d.departures(r, arr)
			}
		}
		return rounds
	}
	plain := arrivalTrace(false)
	mixed := arrivalTrace(true)
	for r := range plain {
		if len(plain[r]) != len(mixed[r]) {
			t.Fatalf("round %d: arrivals changed when departures were added: %v vs %v", r, plain[r], mixed[r])
		}
		for i := range plain[r] {
			if plain[r][i] != mixed[r][i] {
				t.Fatalf("round %d: arrivals changed when departures were added", r)
			}
		}
	}
}

func TestCampaignSwitchesStrategy(t *testing.T) {
	s, err := Builtin("adversary-switch")
	if err != nil {
		t.Fatal(err)
	}
	// A campaign starting silent then attacking must cost honest players
	// no less than an all-silent run on the same seed (the attack can only
	// slow the search down); primarily this exercises the phase handover.
	res, err := Run(context.Background(), s, Options{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	silent := &Spec{
		Name: "all-silent", Players: s.Players, Byzantine: s.Byzantine,
		MaxRounds: s.MaxRounds, World: s.World,
		Campaign: []Phase{{From: 0, Strategy: "silent"}},
	}
	sres, err := Run(context.Background(), silent, Options{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(res.Digest, sres.Digest) {
		t.Fatal("campaign with attack phases left the board identical to all-silent")
	}
}

func TestTraceReplayExactPlayers(t *testing.T) {
	s := &Spec{
		Name:      "trace",
		Players:   8,
		MaxRounds: 32,
		World:     World{Objects: 512, Good: 1},
		Arrivals: &Process{Kind: "trace", Trace: []TraceEvent{
			{Round: 0, Players: []int{3, 5}},
			{Round: 2, Players: []int{0}},
		}},
		Departures: &Process{Kind: "trace", Trace: []TraceEvent{
			{Round: 4, Players: []int{5, 7}}, // 7 never arrived: skipped
		}},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), s, Options{Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	er := res.Engine
	if er.DepartedRound[5] != 4 {
		t.Fatalf("player 5 departure round = %d, want 4", er.DepartedRound[5])
	}
	if er.DepartedRound[7] != -1 {
		t.Fatalf("player 7 (never arrived) marked departed")
	}
	if er.Probes[1] != 0 || er.Probes[2] != 0 {
		t.Fatalf("players outside the trace probed: %v", er.Probes)
	}
	if er.Probes[3] == 0 {
		t.Fatalf("traced player 3 never probed")
	}
}
