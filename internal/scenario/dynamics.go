package scenario

import (
	"fmt"

	"repro/internal/object"
	"repro/internal/rng"
)

// dynamics realizes a Spec's open-world processes as a sim.Dynamics hook.
// One instance drives either backend: the engine consumes it directly, the
// cluster forwards it to the swarm event-loop driver. Every stochastic
// decision draws from its own keyed stream, so the three processes are
// mutually independent by construction.
type dynamics struct {
	spec *Spec

	arrRng *rng.Source // StreamArrival
	depRng *rng.Source // StreamDeparture
	popRng *rng.Source // StreamPopularity

	pool    int    // honest pool size; ids are [0, pool)
	next    int    // next never-arrived id for count-based arrivals
	arrived []bool // ids that have arrived at least once

	lastArrival int // after this round the arrival process is spent

	// Engine backend only: the universe to drift. The cluster backend
	// validates Drift away (its server owns the world).
	uni  *object.Universe
	zipf *rng.Zipfian
}

// newDynamics builds the hook, or returns nil when the spec is closed-world
// (no arrivals, departures, or drift — the classic fixed population).
func newDynamics(spec *Spec, part *rng.Partition, uni *object.Universe) *dynamics {
	if spec.Arrivals == nil && spec.Departures == nil && spec.Drift == nil {
		return nil
	}
	d := &dynamics{
		spec:        spec,
		arrRng:      part.Stream(rng.StreamArrival),
		depRng:      part.Stream(rng.StreamDeparture),
		popRng:      part.Stream(rng.StreamPopularity),
		pool:        spec.Players - spec.Byzantine,
		lastArrival: spec.Arrivals.lastRound(),
		uni:         uni,
	}
	d.arrived = make([]bool, d.pool)
	if spec.Drift != nil {
		d.zipf = rng.NewZipf(spec.World.Objects, spec.Drift.Zipf)
	}
	return d
}

// BeginRound implements sim.Dynamics: this round's arrivals and departures.
func (d *dynamics) BeginRound(round int, active []int) (arrive, depart []int) {
	arrive = d.arrivals(round)
	depart = d.departures(round, active)
	return arrive, depart
}

// arrivals materializes the arrival process for one round. Count-based
// processes admit the lowest never-arrived ids, so a given (spec, seed)
// names the same players regardless of backend.
func (d *dynamics) arrivals(round int) []int {
	p := d.spec.Arrivals
	if p == nil {
		// Departures/drift without an arrival process: the whole pool is
		// present from round 0.
		if round > 0 {
			return nil
		}
		return d.take(d.pool)
	}
	switch p.Kind {
	case "poisson":
		if round < p.From || round > p.Until {
			return nil
		}
		return d.take(d.arrRng.Poisson(p.Rate))
	case "burst":
		for i, at := range p.At {
			if at == round {
				return d.take(p.Size[i])
			}
		}
		return nil
	case "trace":
		for i := range p.Trace {
			ev := &p.Trace[i]
			if ev.Round != round {
				continue
			}
			if ev.Count > 0 {
				return d.take(ev.Count)
			}
			ids := make([]int, 0, len(ev.Players))
			for _, id := range ev.Players {
				if !d.arrived[id] {
					d.arrived[id] = true
					ids = append(ids, id)
				}
			}
			return ids
		}
	}
	return nil
}

// take admits up to n of the lowest never-arrived ids.
func (d *dynamics) take(n int) []int {
	if n <= 0 {
		return nil
	}
	ids := make([]int, 0, n)
	for d.next < d.pool && len(ids) < n {
		if !d.arrived[d.next] {
			d.arrived[d.next] = true
			ids = append(ids, d.next)
		}
		d.next++
	}
	return ids
}

// departures materializes the departure process for one round: count-based
// departures sample uniformly from the active set on the departure stream;
// trace departures name players explicitly, skipping any no longer active.
func (d *dynamics) departures(round int, active []int) []int {
	p := d.spec.Departures
	if p == nil || len(active) == 0 {
		return nil
	}
	switch p.Kind {
	case "poisson":
		if round < p.From || (p.Until > 0 && round > p.Until) {
			return nil
		}
		return d.sample(active, d.depRng.Poisson(p.Rate))
	case "burst":
		for i, at := range p.At {
			if at == round {
				return d.sample(active, p.Size[i])
			}
		}
	case "trace":
		for i := range p.Trace {
			ev := &p.Trace[i]
			if ev.Round != round {
				continue
			}
			if ev.Count > 0 {
				return d.sample(active, ev.Count)
			}
			isActive := make(map[int]bool, len(active))
			for _, id := range active {
				isActive[id] = true
			}
			var ids []int
			for _, id := range ev.Players {
				if isActive[id] {
					ids = append(ids, id)
				}
			}
			return ids
		}
	}
	return nil
}

// sample draws up to n distinct players uniformly from active.
func (d *dynamics) sample(active []int, n int) []int {
	if n <= 0 {
		return nil
	}
	if n >= len(active) {
		return append([]int(nil), active...)
	}
	idx := d.depRng.Sample(len(active), n)
	ids := make([]int, len(idx))
	for i, j := range idx {
		ids[i] = active[j]
	}
	return ids
}

// EndRound implements sim.Dynamics: the popularity-drift hook. Every
// Drift.Every committed rounds the good set is re-planted at Zipf-popular
// ids drawn on the popularity stream.
func (d *dynamics) EndRound(round int) error {
	drift := d.spec.Drift
	if drift == nil || (round+1)%drift.Every != 0 {
		return nil
	}
	if d.uni == nil {
		return fmt.Errorf("scenario: drift on a backend without a universe")
	}
	good := make([]int, 0, drift.Good)
	seen := make(map[int]bool, drift.Good)
	for len(good) < drift.Good {
		obj := d.zipf.Draw(d.popRng)
		if !seen[obj] {
			seen[obj] = true
			good = append(good, obj)
		}
	}
	return d.uni.Churn(good)
}

// Idle implements sim.Dynamics: true once the arrival process can no
// longer admit anyone at or after the given round.
func (d *dynamics) Idle(round int) bool {
	return round > d.lastArrival
}
