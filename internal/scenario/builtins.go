package scenario

import (
	"fmt"
	"sort"
)

// builtins is the named scenario library: the workload shapes the expt
// suite used to hard-code, now expressed as specs. Each call site gets a
// fresh copy (specs are mutated by Validate's default-filling).
var builtins = map[string]func() *Spec{
	// open-world: Poisson arrivals and departures over the in-process
	// engine — the declarative form of the X7 churn study's population.
	"open-world": func() *Spec {
		return &Spec{
			Name:        "open-world",
			Description: "Poisson arrival/departure churn on the engine backend",
			Players:     48,
			MaxRounds:   256,
			World:       World{Objects: 96, Good: 3},
			Arrivals:    &Process{Kind: "poisson", Rate: 3, Until: 20},
			Departures:  &Process{Kind: "poisson", Rate: 0.5, From: 4},
		}
	},
	// flash-crowd: a quiet start, then bursts of arrivals slamming the
	// board at once — the gossip-search overload shape.
	"flash-crowd": func() *Spec {
		return &Spec{
			Name:        "flash-crowd",
			Description: "burst arrivals: 4 early players, then two flash crowds",
			Players:     64,
			MaxRounds:   256,
			World:       World{Objects: 128, Good: 4},
			Arrivals:    &Process{Kind: "burst", At: []int{0, 6, 12}, Size: []int{4, 28, 32}},
		}
	},
	// popularity-drift: a Zipf-planted catalog whose good set drifts every
	// few rounds — the declarative form of the X4/X8 popularity studies.
	// The world is deliberately sparse (1/β = 256) so searches outlast the
	// drift period: the re-plant must land while players are still probing,
	// or the drift process is dead weight.
	"popularity-drift": func() *Spec {
		return &Spec{
			Name:        "popularity-drift",
			Description: "Zipf-planted good set re-drawn every 3 rounds",
			Players:     32,
			MaxRounds:   192,
			World:       World{Objects: 512, Good: 2, Zipf: 1.1},
			Drift:       &Drift{Every: 3, Zipf: 1.1},
		}
	},
	// two-epoch-churn: the X6 shape — a stable population, an abrupt
	// interest change mid-run (every good object replaced), stale votes
	// left on the board. As with popularity-drift, the sparse world keeps
	// the search alive past the first re-plant.
	"two-epoch-churn": func() *Spec {
		return &Spec{
			Name:        "two-epoch-churn",
			Description: "abrupt good-set changes mid-run (the X6 after-effects shape)",
			Players:     32,
			MaxRounds:   192,
			World:       World{Objects: 384, Good: 2},
			Drift:       &Drift{Every: 4, Zipf: 1.0},
		}
	},
	// adversary-switch: dishonest players open silent, turn to vote
	// stuffing, then to slander — the phased-campaign shape of the BAR
	// asynchronous-collusion adversaries.
	"adversary-switch": func() *Spec {
		return &Spec{
			Name:        "adversary-switch",
			Description: "campaign: silent, then spam-distinct, then slander",
			Players:     40,
			Byzantine:   10,
			MaxRounds:   256,
			World:       World{Objects: 96, Good: 3},
			Campaign: []Phase{
				{From: 0, Strategy: "silent"},
				{From: 4, Strategy: "spam-distinct"},
				{From: 10, Strategy: "slander"},
			},
		}
	},
	// cluster-churn: open-world churn over the real wire protocol — the
	// swarm event-loop fleet against a loopback billboard server.
	"cluster-churn": func() *Spec {
		return &Spec{
			Name:        "cluster-churn",
			Description: "Poisson churn on the networked cluster (swarm fleet)",
			Backend:     BackendCluster,
			Players:     16,
			MaxRounds:   128,
			World:       World{Objects: 64, Good: 2},
			Arrivals:    &Process{Kind: "poisson", Rate: 4, Until: 6},
			Departures:  &Process{Kind: "poisson", Rate: 0.25, From: 2},
		}
	},
}

// Names lists the builtin scenarios, sorted.
func Names() []string {
	out := make([]string, 0, len(builtins))
	for name := range builtins {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Builtin returns a fresh, validated copy of the named builtin scenario.
func Builtin(name string) (*Spec, error) {
	mk, ok := builtins[name]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown builtin %q (known: %v)", name, Names())
	}
	s := mk()
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: builtin %q: %w", name, err)
	}
	return s, nil
}
