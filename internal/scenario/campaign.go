package scenario

import (
	"fmt"
	"strings"

	"repro/internal/adversary"
	"repro/internal/rng"
	"repro/internal/sim"
)

// campaign is a phased adversary: phase i's strategy controls the
// dishonest players from round Campaign[i].From until the next phase
// begins. Each phase owns a fresh strategy instance (strategies are
// stateful) and a private split of the campaign stream, so reordering
// phases or lengthening one cannot perturb another's draws — the
// mid-run strategy switch is exactly a scheduled handover.
type campaign struct {
	phases []Phase
	insts  []sim.Adversary
	rngs   []*rng.Source
	name   string
}

// newCampaign instantiates the spec's phases against the adversary
// registry. The campaign stream comes from the partition; phase i draws
// from campaignStream.Split(i).
func newCampaign(phases []Phase, part *rng.Partition) (*campaign, error) {
	if len(phases) == 0 {
		return nil, nil
	}
	c := &campaign{phases: phases}
	stream := part.Stream(rng.StreamCampaign)
	names := make([]string, len(phases))
	for i, ph := range phases {
		inst := adversary.ByName(ph.Strategy)
		if inst == nil {
			return nil, fmt.Errorf("scenario: campaign phase %d: unknown strategy %q (known: %s)",
				i, ph.Strategy, strings.Join(adversary.Names(), ", "))
		}
		c.insts = append(c.insts, inst)
		c.rngs = append(c.rngs, stream.Split(uint64(i)))
		names[i] = fmt.Sprintf("%s@%d", ph.Strategy, ph.From)
	}
	c.name = "campaign(" + strings.Join(names, ",") + ")"
	return c, nil
}

func (c *campaign) Name() string { return c.name }

// Act delegates to the phase covering ctx.Round, swapping in that phase's
// private stream for the duration of the call. The delegate sees the round
// RELATIVE to its phase start: a strategy that fires "at round 0" (the
// one-shot vote stuffers) fires at the phase handover, which is what a
// mid-run strategy switch means.
func (c *campaign) Act(ctx *sim.AdvContext) {
	i := 0
	for i+1 < len(c.phases) && c.phases[i+1].From <= ctx.Round {
		i++
	}
	savedRng, savedRound := ctx.Rng, ctx.Round
	ctx.Rng = c.rngs[i]
	ctx.Round = savedRound - c.phases[i].From
	c.insts[i].Act(ctx)
	ctx.Rng, ctx.Round = savedRng, savedRound
}
