// Package scenario is the declarative workload layer: a Spec — loaded from
// a JSON file or picked from the builtin library — composes player
// arrival/departure processes (Poisson, bursts/flash crowds, trace replay),
// power-law object popularity with drift, and phased adversary campaigns
// that switch strategy at configured rounds, then drives them through the
// in-process simulation engine or the full networked cluster (swarm-driven,
// in sync or epoch mode).
//
// A run is replayable bit-for-bit from (spec, seed): every stochastic
// process draws from its own keyed stream of one rng.Partition
// (StreamArrival, StreamDeparture, StreamPopularity, StreamCampaign,
// StreamWorld), so the arrival process consuming more randomness can never
// perturb the popularity drift, and adding a process to a spec leaves the
// others' draw sequences untouched. The replay golden tests pin
// (file, seed) → byte-identical billboard digest.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Backends and cluster modes a Spec can name.
const (
	BackendEngine  = "engine"  // in-process sim.Engine (default)
	BackendCluster = "cluster" // loopback server + swarm event-loop driver

	ModeSync  = "sync"  // global round barrier (default)
	ModeEpoch = "epoch" // lamport-paced epochs, no global barrier
)

// Spec is a declarative scenario. The zero value of every optional field
// means "absent"; Validate fills defaults and rejects inconsistent combos.
type Spec struct {
	// Name identifies the scenario in results and the builtin library.
	Name string `json:"name"`
	// Description is free-form documentation.
	Description string `json:"description,omitempty"`
	// Backend selects the runner: BackendEngine (default) or BackendCluster.
	// Popularity drift and adversary campaigns need the engine backend (the
	// cluster's server owns the universe and its Byzantine clients are
	// plain spammers); open-world churn runs on both.
	Backend string `json:"backend,omitempty"`
	// Mode selects the cluster's operation mode: ModeSync (default) or
	// ModeEpoch. Engine runs are always synchronous.
	Mode string `json:"mode,omitempty"`

	// Players is the total population; Byzantine of them are dishonest
	// (engine: driven by the Campaign; cluster: wire-protocol spammers).
	Players   int `json:"players"`
	Byzantine int `json:"byzantine,omitempty"`
	// MaxRounds bounds the run (default 512).
	MaxRounds int `json:"maxRounds,omitempty"`

	// World shapes the object universe.
	World World `json:"world"`
	// Arrivals and Departures open the world; both absent means the classic
	// closed population. An absent arrival process with departures present
	// means everyone arrives at round 0.
	Arrivals   *Process `json:"arrivals,omitempty"`
	Departures *Process `json:"departures,omitempty"`
	// Drift periodically re-plants the good set at Zipf-popular object ids
	// (engine backend only).
	Drift *Drift `json:"drift,omitempty"`
	// Campaign phases the adversary: each phase activates at its From round
	// with a fresh instance of the named strategy (engine backend only).
	Campaign []Phase `json:"campaign,omitempty"`
	// Protocol tunes the honest players' DISTILL parameters.
	Protocol Protocol `json:"protocol,omitempty"`
}

// World describes the object universe: a planted local-testing world of
// Objects objects with Good good ones. With Zipf > 0 the good set is
// planted at ids drawn from a Zipf(Zipf) popularity profile (low ids
// popular) instead of uniformly — the power-law catalog shape.
type World struct {
	Objects int     `json:"objects"`
	Good    int     `json:"good"`
	Zipf    float64 `json:"zipf,omitempty"`
}

// Process is one arrival or departure process.
type Process struct {
	// Kind selects the process: "poisson", "burst", or "trace".
	Kind string `json:"process"`
	// Rate is the Poisson mean per round ("poisson" only).
	Rate float64 `json:"rate,omitempty"`
	// From and Until bound the rounds a Poisson process is live (inclusive;
	// Until is required for arrivals so the run can detect idleness).
	From  int `json:"from,omitempty"`
	Until int `json:"until,omitempty"`
	// At and Size pair burst rounds with burst sizes ("burst" only).
	At   []int `json:"at,omitempty"`
	Size []int `json:"size,omitempty"`
	// Trace is an explicit event list ("trace" only), replayed verbatim.
	Trace []TraceEvent `json:"trace,omitempty"`
}

// TraceEvent is one trace entry: at Round, Count players arrive/depart
// (chosen deterministically), or the explicit Players do. For departures,
// explicit Players no longer active (already halted or departed) are
// skipped — in a replayed trace a player may well have found its object
// before its recorded departure.
type TraceEvent struct {
	Round   int   `json:"round"`
	Count   int   `json:"count,omitempty"`
	Players []int `json:"players,omitempty"`
}

// Drift periodically re-plants the good set: every Every committed rounds,
// Good (default World.Good) distinct object ids are drawn from a
// Zipf(Zipf) popularity profile and become the new good set (everything
// else goes bad) — the "changing interests" churn of the paper's §X6,
// generalized to a drifting power-law catalog.
type Drift struct {
	Every int     `json:"every"`
	Zipf  float64 `json:"zipf"`
	Good  int     `json:"good,omitempty"`
}

// Phase is one adversary campaign phase: Strategy (an
// internal/adversary.Names entry) activates at round From and runs until
// the next phase starts. The strategy sees rounds relative to its phase
// start — a one-shot "round 0" vote stuffer fires at the handover. Each
// phase draws from its own split of the campaign stream, so reordering or
// swapping phases leaves the others' randomness untouched.
type Phase struct {
	From     int    `json:"from"`
	Strategy string `json:"strategy"`
}

// Protocol carries the tunable DISTILL parameters (zero = paper defaults).
type Protocol struct {
	K1 float64 `json:"k1,omitempty"`
	K2 float64 `json:"k2,omitempty"`
}

// Load reads and validates a Spec from a JSON file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return Parse(data)
}

// Parse decodes and validates a Spec from JSON bytes. Unknown fields are
// rejected — a typoed knob silently ignored would change the workload the
// file claims to describe.
func Parse(data []byte) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks cross-field consistency and fills defaults in place.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	switch s.Backend {
	case "":
		s.Backend = BackendEngine
	case BackendEngine, BackendCluster:
	default:
		return fmt.Errorf("scenario %s: unknown backend %q", s.Name, s.Backend)
	}
	switch s.Mode {
	case "":
		s.Mode = ModeSync
	case ModeSync:
	case ModeEpoch:
		if s.Backend != BackendCluster {
			return fmt.Errorf("scenario %s: mode %q needs the cluster backend", s.Name, s.Mode)
		}
	default:
		return fmt.Errorf("scenario %s: unknown mode %q", s.Name, s.Mode)
	}
	if s.Players <= 0 {
		return fmt.Errorf("scenario %s: players must be > 0", s.Name)
	}
	if s.Byzantine < 0 || s.Byzantine >= s.Players {
		return fmt.Errorf("scenario %s: byzantine %d outside [0, players)", s.Name, s.Byzantine)
	}
	if s.MaxRounds == 0 {
		s.MaxRounds = 512
	}
	if s.MaxRounds < 0 {
		return fmt.Errorf("scenario %s: negative maxRounds", s.Name)
	}
	if s.World.Objects <= 0 {
		return fmt.Errorf("scenario %s: world.objects must be > 0", s.Name)
	}
	if s.World.Good < 1 || s.World.Good > s.World.Objects {
		return fmt.Errorf("scenario %s: world.good %d outside [1, %d]", s.Name, s.World.Good, s.World.Objects)
	}
	if s.World.Zipf < 0 {
		return fmt.Errorf("scenario %s: negative world.zipf", s.Name)
	}
	honest := s.Players - s.Byzantine
	if s.Arrivals != nil {
		if err := s.Arrivals.validate(s.Name, "arrivals", true, honest); err != nil {
			return err
		}
	}
	if s.Departures != nil {
		if err := s.Departures.validate(s.Name, "departures", false, honest); err != nil {
			return err
		}
	}
	if s.Drift != nil {
		if s.Backend != BackendEngine {
			return fmt.Errorf("scenario %s: drift needs the engine backend (the cluster server owns its universe)", s.Name)
		}
		if s.Drift.Every <= 0 {
			return fmt.Errorf("scenario %s: drift.every must be > 0", s.Name)
		}
		if s.Drift.Zipf <= 0 {
			return fmt.Errorf("scenario %s: drift.zipf must be > 0", s.Name)
		}
		if s.Drift.Good == 0 {
			s.Drift.Good = s.World.Good
		}
		if s.Drift.Good < 1 || s.Drift.Good > s.World.Objects {
			return fmt.Errorf("scenario %s: drift.good %d outside [1, %d]", s.Name, s.Drift.Good, s.World.Objects)
		}
	}
	if len(s.Campaign) > 0 {
		if s.Backend != BackendEngine {
			return fmt.Errorf("scenario %s: campaign needs the engine backend (cluster Byzantine clients are fixed spammers)", s.Name)
		}
		if s.Byzantine == 0 {
			return fmt.Errorf("scenario %s: campaign without byzantine players", s.Name)
		}
		if !sort.SliceIsSorted(s.Campaign, func(i, j int) bool { return s.Campaign[i].From < s.Campaign[j].From }) {
			return fmt.Errorf("scenario %s: campaign phases must be sorted by from", s.Name)
		}
		for i, ph := range s.Campaign {
			if ph.From < 0 {
				return fmt.Errorf("scenario %s: campaign phase %d: negative from", s.Name, i)
			}
			if i > 0 && ph.From == s.Campaign[i-1].From {
				return fmt.Errorf("scenario %s: campaign phases %d and %d share from=%d", s.Name, i-1, i, ph.From)
			}
			if ph.Strategy == "" {
				return fmt.Errorf("scenario %s: campaign phase %d: missing strategy", s.Name, i)
			}
		}
		if s.Campaign[0].From != 0 {
			return fmt.Errorf("scenario %s: first campaign phase must start at round 0 (use strategy %q for a quiet opening)", s.Name, "silent")
		}
	}
	if s.Protocol.K1 < 0 || s.Protocol.K2 < 0 {
		return fmt.Errorf("scenario %s: negative protocol parameter", s.Name)
	}
	return nil
}

// validate checks one Process. Arrival processes must be bounded (the run
// needs a round after which no arrival can occur to detect idleness).
func (p *Process) validate(spec, which string, arrivals bool, pool int) error {
	switch p.Kind {
	case "poisson":
		if p.Rate <= 0 {
			return fmt.Errorf("scenario %s: %s: poisson rate must be > 0", spec, which)
		}
		if p.From < 0 {
			return fmt.Errorf("scenario %s: %s: negative from", spec, which)
		}
		if arrivals {
			if p.Until < p.From {
				return fmt.Errorf("scenario %s: %s: poisson arrivals need until >= from (a bound makes idleness decidable)", spec, which)
			}
		} else if p.Until != 0 && p.Until < p.From {
			return fmt.Errorf("scenario %s: %s: until %d before from %d", spec, which, p.Until, p.From)
		}
		if len(p.At) > 0 || len(p.Size) > 0 || len(p.Trace) > 0 {
			return fmt.Errorf("scenario %s: %s: poisson process with burst/trace fields", spec, which)
		}
	case "burst":
		if len(p.At) == 0 || len(p.At) != len(p.Size) {
			return fmt.Errorf("scenario %s: %s: burst needs matching non-empty at/size", spec, which)
		}
		if !sort.IntsAreSorted(p.At) {
			return fmt.Errorf("scenario %s: %s: burst rounds must be sorted", spec, which)
		}
		for i, at := range p.At {
			if at < 0 || p.Size[i] <= 0 {
				return fmt.Errorf("scenario %s: %s: burst %d invalid (round %d, size %d)", spec, which, i, at, p.Size[i])
			}
		}
		if len(p.Trace) > 0 {
			return fmt.Errorf("scenario %s: %s: burst process with trace field", spec, which)
		}
	case "trace":
		if len(p.Trace) == 0 {
			return fmt.Errorf("scenario %s: %s: empty trace", spec, which)
		}
		last := -1
		for i, ev := range p.Trace {
			if ev.Round <= last {
				return fmt.Errorf("scenario %s: %s: trace event %d out of order", spec, which, i)
			}
			last = ev.Round
			if ev.Count < 0 {
				return fmt.Errorf("scenario %s: %s: trace event %d: negative count", spec, which, i)
			}
			if ev.Count == 0 && len(ev.Players) == 0 {
				return fmt.Errorf("scenario %s: %s: trace event %d: no count and no players", spec, which, i)
			}
			if ev.Count > 0 && len(ev.Players) > 0 {
				return fmt.Errorf("scenario %s: %s: trace event %d: both count and players", spec, which, i)
			}
			for _, id := range ev.Players {
				if id < 0 || id >= pool {
					return fmt.Errorf("scenario %s: %s: trace event %d: player %d outside the honest pool [0, %d)", spec, which, i, id, pool)
				}
			}
		}
	default:
		return fmt.Errorf("scenario %s: %s: unknown process %q", spec, which, p.Kind)
	}
	return nil
}

// lastRound returns the last round at which this process can still emit
// (arrival processes are validated bounded).
func (p *Process) lastRound() int {
	if p == nil {
		return 0
	}
	switch p.Kind {
	case "poisson":
		return p.Until
	case "burst":
		return p.At[len(p.At)-1]
	case "trace":
		return p.Trace[len(p.Trace)-1].Round
	}
	return 0
}
