package baseline

import (
	"math"
	"testing"

	"repro/internal/billboard"
	"repro/internal/object"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

func run(t *testing.T, proto func() sim.Protocol, n, m, good int, alpha float64, reps int) []*sim.Result {
	t.Helper()
	results, err := sim.Replicator{
		Reps:     reps,
		BaseSeed: 1000,
		Build: func(seed uint64) (*sim.Engine, error) {
			u, err := object.NewPlanted(object.Planted{M: m, Good: good}, rng.New(seed))
			if err != nil {
				return nil, err
			}
			return sim.NewEngine(sim.Config{
				Universe: u, Protocol: proto(), N: n, Alpha: alpha,
				Seed: seed, MaxRounds: 100000,
			})
		},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	return results
}

func TestTrivialRandomMatchesOneOverBeta(t *testing.T) {
	// β = 1/20, so expected probes per player ≈ 20 regardless of n.
	results := run(t, func() sim.Protocol { return NewTrivialRandom() }, 8, 200, 10, 1, 40)
	var probes []float64
	for _, r := range results {
		if !r.AllHonestSatisfied() {
			t.Fatal("trivial random did not finish")
		}
		probes = append(probes, r.HonestProbes()...)
	}
	mean := stats.Mean(probes)
	if mean < 10 || mean > 35 {
		t.Fatalf("trivial random mean probes %v, want ≈ 20 (1/β)", mean)
	}
}

func TestTrivialRandomIgnoresAdversary(t *testing.T) {
	// With and without an adversary that votes bad objects, trivial random
	// behaves identically because it never reads the board.
	u, err := object.NewPlanted(object.Planted{M: 50, Good: 5}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	runOnce := func(adv sim.Adversary) int {
		e, err := sim.NewEngine(sim.Config{
			Universe: u, Protocol: NewTrivialRandom(), N: 10,
			Honest: []int{0, 1, 2, 3, 4}, Adversary: adv, Seed: 77, MaxRounds: 10000,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Rounds
	}
	if a, b := runOnce(nil), runOnce(badVoter{}); a != b {
		t.Fatalf("adversary changed trivial random: %d vs %d rounds", a, b)
	}
}

type badVoter struct{}

func (badVoter) Name() string { return "bad-voter" }
func (badVoter) Act(ctx *sim.AdvContext) {
	for _, p := range ctx.Dishonest {
		for obj := 0; obj < ctx.Universe.M(); obj++ {
			if !ctx.Universe.IsGood(obj) {
				_ = ctx.Board.Post(billboard.Post{Player: p, Object: obj, Value: 1, Positive: true})
				break
			}
		}
	}
}

func TestAsyncRoundRobinFinishesAndSpreadsVotes(t *testing.T) {
	results := run(t, func() sim.Protocol { return NewAsyncRoundRobin() }, 64, 64, 1, 1, 20)
	for _, r := range results {
		if !r.AllHonestSatisfied() {
			t.Fatal("async round robin did not finish")
		}
	}
	agg := sim.AggregateResults(results)
	// With m = n = 64, β = 1/64: first discovery within a few rounds, then
	// votes double roughly every 2 rounds — well under 80 rounds on average.
	if agg.MeanRounds > 80 {
		t.Fatalf("async mean rounds %v too large", agg.MeanRounds)
	}
}

func TestAsyncRoundRobinGrowsLogarithmically(t *testing.T) {
	// The mean individual cost should grow with n (≈ log n) when β = 1/n.
	mean := func(n int) float64 {
		results := run(t, func() sim.Protocol { return NewAsyncRoundRobin() }, n, n, 1, 1, 15)
		return sim.AggregateResults(results).MeanIndividualProbes
	}
	small, large := mean(32), mean(512)
	if large <= small {
		t.Fatalf("async cost did not grow with n: %v (n=32) vs %v (n=512)", small, large)
	}
	// It should not grow linearly: 16x more players must cost far less
	// than 16x more probes.
	if large > 8*small {
		t.Fatalf("async cost grew superlogarithmically: %v vs %v", small, large)
	}
}

func TestOracleCoopNeverRepeatsProbes(t *testing.T) {
	u, err := object.NewPlanted(object.Planted{M: 100, Good: 1}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.NewEngine(sim.Config{
		Universe: u, Protocol: NewOracleCoop(), N: 10, Alpha: 1,
		Seed: 5, MaxRounds: 1000, KeepLog: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllHonestSatisfied() {
		t.Fatal("oracle did not finish")
	}
	// Count probes of non-good objects: each bad object at most once.
	seen := map[int]int{}
	for _, post := range e.Board().Log() {
		if !u.IsGood(post.Object) {
			seen[post.Object]++
		}
	}
	for obj, count := range seen {
		if count > 1 {
			t.Fatalf("oracle probed bad object %d %d times", obj, count)
		}
	}
}

func TestOracleCoopMatchesUrnBound(t *testing.T) {
	// With m objects, one good, and αn honest probers, the urn argument
	// gives ≈ m/(αn) expected rounds until discovery (+1 follow round).
	const n, m = 20, 400
	results := run(t, func() sim.Protocol { return NewOracleCoop() }, n, m, 1, 1, 60)
	var rounds []float64
	for _, r := range results {
		if !r.AllHonestSatisfied() {
			t.Fatal("oracle did not finish")
		}
		rounds = append(rounds, float64(r.Rounds))
	}
	mean := stats.Mean(rounds)
	urn := float64(m) / float64(n) / 2 // expected position of the good ball / players
	if mean < urn/3 || mean > urn*3+3 {
		t.Fatalf("oracle mean rounds %v far from urn prediction ≈ %v", mean, urn)
	}
}

func TestOracleBeatsTrivialWhenManyPlayers(t *testing.T) {
	// Collective search divides the work: oracle cost ≈ 1/(αβn) rounds,
	// trivial cost ≈ 1/β. With n = 50 players the oracle must win big.
	const n, m = 50, 500
	trivial := run(t, func() sim.Protocol { return NewTrivialRandom() }, n, m, 1, 1, 20)
	oracle := run(t, func() sim.Protocol { return NewOracleCoop() }, n, m, 1, 1, 20)
	mt := sim.AggregateResults(trivial).MeanIndividualProbes
	mo := sim.AggregateResults(oracle).MeanIndividualProbes
	if mo*5 > mt {
		t.Fatalf("oracle (%v probes) should be ≥5x cheaper than trivial (%v)", mo, mt)
	}
}

func TestBaselineNames(t *testing.T) {
	if NewTrivialRandom().Name() != "trivial-random" ||
		NewAsyncRoundRobin().Name() != "async-round-robin" ||
		NewOracleCoop().Name() != "oracle-coop" {
		t.Fatal("baseline names changed; EXPERIMENTS.md references them")
	}
}

func TestTrivialRandomExpectedValueSanity(t *testing.T) {
	// Sanity on the geometric mean: with β = 1/2 expected probes ≈ 2.
	results := run(t, func() sim.Protocol { return NewTrivialRandom() }, 4, 10, 5, 1, 50)
	var probes []float64
	for _, r := range results {
		probes = append(probes, r.HonestProbes()...)
	}
	if m := stats.Mean(probes); math.Abs(m-2) > 0.7 {
		t.Fatalf("mean probes %v, want ≈ 2", m)
	}
}

func TestPopularityFollowsVotes(t *testing.T) {
	// With a single voted object, every player's first probe after the vote
	// commits must be that object.
	u, err := object.NewPlanted(object.Planted{M: 50, Good: 1}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	good := u.GoodObjects()[0]
	e, err := sim.NewEngine(sim.Config{
		Universe: u, Protocol: NewPopularity(), N: 8, Alpha: 1,
		Seed: 11, MaxRounds: 10000, KeepLog: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllHonestSatisfied() {
		t.Fatal("popularity search did not finish")
	}
	// Once somebody voted the good object, the rest should pile onto it:
	// every player probes it exactly once and never twice.
	seen := map[int]int{}
	for _, post := range e.Board().Log() {
		if post.Object == good {
			seen[post.Player]++
		}
	}
	for p, c := range seen {
		if c > 1 {
			t.Fatalf("player %d probed the good object %d times; tried-set broken", p, c)
		}
	}
}

func TestPopularityHerdedBySpam(t *testing.T) {
	// The §1.3 weakness: with (1-α)n spam votes, popularity wastes probes
	// linearly in the dishonest count; DISTILL does not.
	const n = 256
	runProto := func(proto func() sim.Protocol) float64 {
		results := run(t, proto, n, n, 1, 0.5, 10)
		return sim.AggregateResults(results).MeanIndividualProbes
	}
	_ = runProto
	resultsPop, err := sim.Replicator{
		Reps: 10, BaseSeed: 500,
		Build: func(seed uint64) (*sim.Engine, error) {
			u, err := object.NewPlanted(object.Planted{M: n, Good: 1}, rng.New(seed))
			if err != nil {
				return nil, err
			}
			return sim.NewEngine(sim.Config{
				Universe: u, Protocol: NewPopularity(), N: n, Alpha: 0.5,
				Adversary: spamAdv{}, Seed: seed, MaxRounds: 1 << 15,
			})
		},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	agg := sim.AggregateResults(resultsPop)
	// 128 dishonest spam votes: popularity should waste on the order of
	// that many probes per player.
	if agg.MeanIndividualProbes < 30 {
		t.Fatalf("popularity under spam cost only %.1f probes; herding not happening",
			agg.MeanIndividualProbes)
	}
	if agg.SuccessRate != 1 {
		t.Fatalf("popularity failed to finish: %v", agg.SuccessRate)
	}
}

// spamAdv votes a distinct bad object per dishonest player in round 0
// (local copy to avoid importing the adversary package).
type spamAdv struct{}

func (spamAdv) Name() string { return "spam-local" }
func (spamAdv) Act(ctx *sim.AdvContext) {
	if ctx.Round != 0 {
		return
	}
	i := 0
	for _, p := range ctx.Dishonest {
		for ; i < ctx.Universe.M(); i++ {
			if !ctx.Universe.IsGood(i) {
				_ = ctx.Board.Post(billboard.Post{Player: p, Object: i, Value: 1, Positive: true})
				i++
				break
			}
		}
	}
}
