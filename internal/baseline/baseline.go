// Package baseline implements the comparison algorithms the paper measures
// DISTILL against:
//
//   - TrivialRandom: probe a uniformly random object every round, ignoring
//     the billboard entirely. Terminates in O(1/β) expected rounds (§3).
//   - AsyncRoundRobin: a reconstruction of the authors' prior asynchronous
//     algorithm [1] run under a round-robin (synchronous) schedule. In each
//     round a player either explores a uniformly random object or follows
//     the vote of a uniformly random player, with equal probability. The
//     paper credits this algorithm with O(log n/(αβn) + log n/α) expected
//     rounds under a synchronous schedule; the explore/follow primitive is
//     exactly the one PROBE&SEEKADVICE derandomizes, and this reconstruction
//     exhibits the claimed Θ(log n/α) shape empirically (see EXPERIMENTS.md).
//   - OracleCoop: full-cooperation reference matching the Theorem 1 urn
//     argument — honest players magically trust each other, partition the
//     unprobed objects, and never repeat a probe. Its cost realizes the
//     Ω(1/(αβn)) collective-work lower bound and is unachievable for real
//     protocols facing Byzantine players.
package baseline

import (
	"fmt"

	"repro/internal/billboard"
	"repro/internal/rng"
	"repro/internal/sim"
)

// TrivialRandom is the billboard-oblivious baseline.
type TrivialRandom struct {
	m   int
	src *rng.Source
}

var _ sim.Protocol = (*TrivialRandom)(nil)

// NewTrivialRandom returns the trivial random-probing protocol.
func NewTrivialRandom() *TrivialRandom { return &TrivialRandom{} }

// Name implements sim.Protocol.
func (p *TrivialRandom) Name() string { return "trivial-random" }

// Init implements sim.Protocol.
func (p *TrivialRandom) Init(setup sim.Setup) error {
	p.m = setup.Universe.M()
	p.src = setup.Rng
	return nil
}

// PrescribedRounds implements sim.Protocol.
func (p *TrivialRandom) PrescribedRounds() int { return 0 }

// Probes implements sim.Protocol.
func (p *TrivialRandom) Probes(round int, active []int, dst []sim.Probe) []sim.Probe {
	for _, player := range active {
		dst = append(dst, sim.Probe{Player: player, Object: p.src.Intn(p.m)})
	}
	return dst
}

// AsyncRoundRobin reconstructs the algorithm of [1] under a synchronous
// round-robin schedule: each active player flips a fair coin each round and
// either probes a uniformly random object (explore) or probes the vote of a
// uniformly random player (follow); if the chosen player has no vote, the
// follow step is a no-op for that round, exactly as in PROBE&SEEKADVICE.
type AsyncRoundRobin struct {
	n     int
	m     int
	src   *rng.Source
	board billboard.Reader
	// votesOf is the copy-free read path when the board supports it (the
	// in-process Board does; RPC readers fall back to the copying Votes).
	votesOf func(player int) []billboard.Vote
}

var _ sim.Protocol = (*AsyncRoundRobin)(nil)

// NewAsyncRoundRobin returns the reconstructed [1] baseline.
func NewAsyncRoundRobin() *AsyncRoundRobin { return &AsyncRoundRobin{} }

// Name implements sim.Protocol.
func (p *AsyncRoundRobin) Name() string { return "async-round-robin" }

// Init implements sim.Protocol.
func (p *AsyncRoundRobin) Init(setup sim.Setup) error {
	p.n = setup.N
	p.m = setup.Universe.M()
	p.src = setup.Rng
	p.board = setup.Board
	if v, ok := setup.Board.(billboard.VotesViewer); ok {
		p.votesOf = v.VotesView
	} else {
		p.votesOf = setup.Board.Votes
	}
	return nil
}

// PrescribedRounds implements sim.Protocol.
func (p *AsyncRoundRobin) PrescribedRounds() int { return 0 }

// Probes implements sim.Protocol.
func (p *AsyncRoundRobin) Probes(round int, active []int, dst []sim.Probe) []sim.Probe {
	for _, player := range active {
		if p.src.Bernoulli(0.5) {
			// Explore.
			dst = append(dst, sim.Probe{Player: player, Object: p.src.Intn(p.m)})
			continue
		}
		// Follow a random player's vote, if it has one.
		j := p.src.Intn(p.n)
		votes := p.votesOf(j)
		if len(votes) == 0 {
			continue
		}
		obj := votes[p.src.Intn(len(votes))].Object
		dst = append(dst, sim.Probe{Player: player, Object: obj})
	}
	return dst
}

// OracleCoop is the full-cooperation reference of Theorem 1. All honest
// players share a random permutation of the objects and claim successive
// unprobed objects from it, so no object is ever probed twice by honest
// players; once any honest player finds a good object, everyone else probes
// it next round. This models "the honest players know what reports are
// trustworthy" from the Theorem 1 proof.
type OracleCoop struct {
	perm  []int
	next  int
	board billboard.Reader
	src   *rng.Source
}

var _ sim.Protocol = (*OracleCoop)(nil)

// NewOracleCoop returns the full-cooperation oracle baseline.
func NewOracleCoop() *OracleCoop { return &OracleCoop{} }

// Name implements sim.Protocol.
func (p *OracleCoop) Name() string { return "oracle-coop" }

// Init implements sim.Protocol.
func (p *OracleCoop) Init(setup sim.Setup) error {
	if setup.Universe.M() <= 0 {
		return fmt.Errorf("baseline: empty universe")
	}
	p.perm = setup.Rng.Perm(setup.Universe.M())
	p.next = 0
	p.board = setup.Board
	p.src = setup.Rng
	return nil
}

// PrescribedRounds implements sim.Protocol.
func (p *OracleCoop) PrescribedRounds() int { return 0 }

// Probes implements sim.Protocol.
func (p *OracleCoop) Probes(round int, active []int, dst []sim.Probe) []sim.Probe {
	// If some honest player already voted (found a good object), follow it.
	// Oracle players trust honest votes because they magically know who is
	// honest; in this baseline the dishonest players never vote anyway.
	if p.board.NumVotedObjects() > 0 {
		obj := p.board.VotedObjects()[0]
		for _, player := range active {
			dst = append(dst, sim.Probe{Player: player, Object: obj})
		}
		return dst
	}
	for _, player := range active {
		if p.next >= len(p.perm) {
			// Everything probed without success: start over (degenerate
			// universes only; cannot happen when a good object exists).
			p.next = 0
		}
		dst = append(dst, sim.Probe{Player: player, Object: p.perm[p.next]})
		p.next++
	}
	return dst
}
