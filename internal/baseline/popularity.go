package baseline

import (
	"sort"

	"repro/internal/billboard"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Popularity is the §1.3 strawman: follow the crowd. Each round a player
// probes the not-yet-tried object with the most cumulative votes (ties
// broken randomly), falling back to a uniformly random object when nothing
// popular is left. Web-search-style popularity ranking is exactly what the
// paper's related-work section warns about: "such popularity-style
// algorithms actually enhance the power of malicious users" — a coordinated
// minority controls the top of the ranking and the crowd dutifully wastes
// probes on it. Experiment X4 measures the damage.
//
// Per-player tried-sets make this protocol stateful per player, unlike the
// shared-schedule DISTILL; memory is O(n + total probes).
type Popularity struct {
	n, m  int
	src   *rng.Source
	board billboard.Reader
	tried []map[int]bool // per player, objects already probed
}

var _ sim.Protocol = (*Popularity)(nil)

// NewPopularity returns the popularity-following baseline.
func NewPopularity() *Popularity { return &Popularity{} }

// Name implements sim.Protocol.
func (p *Popularity) Name() string { return "popularity" }

// Init implements sim.Protocol.
func (p *Popularity) Init(setup sim.Setup) error {
	p.n = setup.N
	p.m = setup.Universe.M()
	p.src = setup.Rng
	p.board = setup.Board
	p.tried = make([]map[int]bool, setup.N)
	return nil
}

// PrescribedRounds implements sim.Protocol.
func (p *Popularity) PrescribedRounds() int { return 0 }

// Probes implements sim.Protocol.
func (p *Popularity) Probes(round int, active []int, dst []sim.Probe) []sim.Probe {
	// Rank the currently voted objects once per round (shared view).
	voted := p.board.VotedObjects()
	type ranked struct {
		obj   int
		count int
	}
	ranking := make([]ranked, len(voted))
	for i, obj := range voted {
		ranking[i] = ranked{obj, p.board.VoteCount(obj)}
	}
	sort.Slice(ranking, func(a, b int) bool {
		if ranking[a].count != ranking[b].count {
			return ranking[a].count > ranking[b].count
		}
		return ranking[a].obj < ranking[b].obj
	})

	for _, player := range active {
		if p.tried[player] == nil {
			p.tried[player] = make(map[int]bool)
		}
		obj := -1
		for _, r := range ranking {
			if !p.tried[player][r.obj] {
				obj = r.obj
				break
			}
		}
		if obj < 0 {
			// Nothing popular left: explore uniformly among untried objects
			// (rejection sampling; falls back to any object when the tried
			// set saturates).
			for attempt := 0; attempt < 4; attempt++ {
				cand := p.src.Intn(p.m)
				if !p.tried[player][cand] {
					obj = cand
					break
				}
			}
			if obj < 0 {
				obj = p.src.Intn(p.m)
			}
		}
		p.tried[player][obj] = true
		dst = append(dst, sim.Probe{Player: player, Object: obj})
	}
	return dst
}
