// Package async implements the asynchronous execution model of the
// authors' prior work [1], which §1.2 of this paper contrasts with: a basic
// step is a single player reading the billboard, probing one object, and
// posting the result, and the *schedule* of player steps is under the
// control of the adversary.
//
// The paper's motivation for moving to the synchronous model is that no
// algorithm can bound the INDIVIDUAL cost here: "a schedule that runs a
// single player by itself forces that player to find the good object on
// its own without any assistance from any other player". The X1 experiment
// reproduces exactly that separation: under a fair round-robin schedule the
// explore/follow algorithm of [1] is cheap for everyone, while under a
// starvation schedule the victim pays Θ(1/β) — the cost of searching alone.
package async

import (
	"errors"
	"fmt"

	"repro/internal/billboard"
	"repro/internal/object"
	"repro/internal/rng"
)

// ErrBadSchedule reports an adversarial Schedule stepping outside the rules:
// a player index out of [0, N) or a player that already halted. The schedule
// is attacker-controlled input, so the engine validates rather than trusting
// it (an out-of-range pick previously indexed Satisfied before the bounds
// check and panicked).
var ErrBadSchedule = errors.New("async: invalid schedule pick")

// Strategy is an honest player's per-step policy in the asynchronous model.
// Implementations must be safe to share across players (the engine passes
// the acting player id).
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// Probe chooses the object the acting player probes at its step, given
	// the current billboard. ok = false passes the step (no probe).
	Probe(player int, board *billboard.Board, src *rng.Source) (obj int, ok bool)
}

// Schedule decides which player takes the next step. The adversary controls
// it (§1.1 of the paper's prior-work model), so implementations may inspect
// progress to starve whoever they like.
type Schedule interface {
	// Name identifies the schedule in reports.
	Name() string
	// Next picks the acting player among the still-active players.
	// active is non-empty and sorted ascending.
	Next(step int, active []int, src *rng.Source) int
}

// Config describes one asynchronous run. All players are honest here: the
// point of this substrate is schedule adversarility, which is orthogonal to
// Byzantine reports (covered by the synchronous engine).
type Config struct {
	Universe *object.Universe
	Strategy Strategy
	Schedule Schedule
	N        int
	Seed     uint64
	// MaxSteps caps the run; 0 means 1 << 24.
	MaxSteps int
}

// Result reports per-player probe counts and completion.
type Result struct {
	Strategy string
	Schedule string
	Steps    int
	TimedOut bool
	// Probes[p] counts probes by player p.
	Probes []int
	// Satisfied[p] reports whether player p found a good object.
	Satisfied []bool
}

// Run executes the asynchronous simulation: one player step at a time, with
// posts visible to all subsequent steps immediately (each step is its own
// billboard round, so timestamps are step indices).
func Run(cfg Config) (*Result, error) {
	if cfg.Universe == nil || cfg.Strategy == nil || cfg.Schedule == nil {
		return nil, fmt.Errorf("async: Universe, Strategy and Schedule are required")
	}
	if cfg.N <= 0 {
		return nil, fmt.Errorf("async: N must be > 0, got %d", cfg.N)
	}
	if !cfg.Universe.LocalTesting() {
		return nil, fmt.Errorf("async: this substrate models the local-testing search of [1]")
	}
	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = 1 << 24
	}
	board, err := billboard.New(billboard.Config{
		Players: cfg.N,
		Objects: cfg.Universe.M(),
	})
	if err != nil {
		return nil, fmt.Errorf("async: %w", err)
	}
	master := rng.New(cfg.Seed)
	stratRng := master.Split(1)
	schedRng := master.Split(2)

	res := &Result{
		Strategy:  cfg.Strategy.Name(),
		Schedule:  cfg.Schedule.Name(),
		Probes:    make([]int, cfg.N),
		Satisfied: make([]bool, cfg.N),
	}
	active := make([]int, cfg.N)
	for p := range active {
		active[p] = p
	}

	step := 0
	for len(active) > 0 {
		if step >= maxSteps {
			res.TimedOut = true
			break
		}
		p := cfg.Schedule.Next(step, active, schedRng)
		if p < 0 || p >= cfg.N {
			return nil, fmt.Errorf("%w: schedule %q picked out-of-range player %d at step %d",
				ErrBadSchedule, cfg.Schedule.Name(), p, step)
		}
		if res.Satisfied[p] {
			return nil, fmt.Errorf("%w: schedule %q picked halted player %d at step %d",
				ErrBadSchedule, cfg.Schedule.Name(), p, step)
		}
		if obj, ok := cfg.Strategy.Probe(p, board, stratRng); ok {
			if obj < 0 || obj >= cfg.Universe.M() {
				return nil, fmt.Errorf("async: strategy %q probe out of range: %d", cfg.Strategy.Name(), obj)
			}
			res.Probes[p]++
			good := cfg.Universe.IsGood(obj)
			if err := board.Post(billboard.Post{
				Player: p, Object: obj, Value: cfg.Universe.Value(obj), Positive: good,
			}); err != nil {
				return nil, fmt.Errorf("async: %w", err)
			}
			if good {
				res.Satisfied[p] = true
				keep := active[:0]
				for _, q := range active {
					if q != p {
						keep = append(keep, q)
					}
				}
				active = keep
			}
		}
		// A step is an atomic read-probe-post: commit immediately.
		board.EndRound()
		step++
	}
	res.Steps = step
	return res, nil
}

// ExploreFollow is the algorithm of [1] as this paper describes it: at each
// step flip a fair coin and either probe a uniformly random object or probe
// the vote of a uniformly random player (if any).
type ExploreFollow struct {
	M int // number of objects; set by NewExploreFollow
	N int
}

var _ Strategy = (*ExploreFollow)(nil)

// NewExploreFollow returns the [1] strategy for an n-player, m-object run.
func NewExploreFollow(n, m int) *ExploreFollow { return &ExploreFollow{M: m, N: n} }

// Name implements Strategy.
func (s *ExploreFollow) Name() string { return "explore-follow" }

// Probe implements Strategy.
func (s *ExploreFollow) Probe(player int, board *billboard.Board, src *rng.Source) (int, bool) {
	if src.Bernoulli(0.5) {
		return src.Intn(s.M), true
	}
	j := src.Intn(s.N)
	votes := board.VotesView(j)
	if len(votes) == 0 {
		return 0, false
	}
	return votes[src.Intn(len(votes))].Object, true
}

// Solo probes uniformly at random, never reading the billboard — the only
// strategy whose guarantee survives starvation.
type Solo struct {
	M int
}

var _ Strategy = (*Solo)(nil)

// NewSolo returns the billboard-oblivious strategy.
func NewSolo(m int) *Solo { return &Solo{M: m} }

// Name implements Strategy.
func (s *Solo) Name() string { return "solo-random" }

// Probe implements Strategy.
func (s *Solo) Probe(player int, board *billboard.Board, src *rng.Source) (int, bool) {
	return src.Intn(s.M), true
}

// RoundRobin cycles fairly through the active players.
type RoundRobin struct{}

var _ Schedule = RoundRobin{}

// Name implements Schedule.
func (RoundRobin) Name() string { return "round-robin" }

// Next implements Schedule.
func (RoundRobin) Next(step int, active []int, _ *rng.Source) int {
	return active[step%len(active)]
}

// UniformRandom picks a uniformly random active player each step.
type UniformRandom struct{}

var _ Schedule = UniformRandom{}

// Name implements Schedule.
func (UniformRandom) Name() string { return "uniform-random" }

// Next implements Schedule.
func (UniformRandom) Next(_ int, active []int, src *rng.Source) int {
	return active[src.Intn(len(active))]
}

// Starve runs the victim player exclusively until it halts, then falls back
// to round-robin for the rest — the §1.2 schedule that forces the victim to
// search alone.
type Starve struct {
	Victim int
}

var _ Schedule = Starve{}

// Name implements Schedule.
func (Starve) Name() string { return "starve-victim" }

// Next implements Schedule.
func (s Starve) Next(step int, active []int, _ *rng.Source) int {
	for _, p := range active {
		if p == s.Victim {
			return p
		}
	}
	return active[step%len(active)]
}
