package async_test

import (
	"fmt"

	"repro/internal/async"
	"repro/internal/object"
	"repro/internal/rng"
)

// Example reproduces the §1.2 observation in miniature: under a starvation
// schedule, the victim of the asynchronous model must find a good object
// essentially alone.
func Example() {
	u, err := object.NewPlanted(object.Planted{M: 200, Good: 2}, rng.New(7))
	if err != nil {
		panic(err)
	}
	fair, err := async.Run(async.Config{
		Universe: u, Strategy: async.NewExploreFollow(8, 200),
		Schedule: async.RoundRobin{}, N: 8, Seed: 7,
	})
	if err != nil {
		panic(err)
	}
	starved, err := async.Run(async.Config{
		Universe: u, Strategy: async.NewExploreFollow(8, 200),
		Schedule: async.Starve{Victim: 0}, N: 8, Seed: 7,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("victim pays more when starved:", starved.Probes[0] > 3*fair.Probes[0])
	// Output:
	// victim pays more when starved: true
}
