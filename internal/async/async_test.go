package async

import (
	"errors"
	"testing"

	"repro/internal/object"
	"repro/internal/rng"
	"repro/internal/stats"
)

func universe(t *testing.T, m, good int, seed uint64) *object.Universe {
	t.Helper()
	u, err := object.NewPlanted(object.Planted{M: m, Good: good}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestRunValidation(t *testing.T) {
	u := universe(t, 10, 1, 1)
	strat := NewSolo(10)
	cases := []Config{
		{Strategy: strat, Schedule: RoundRobin{}, N: 2},              // no universe
		{Universe: u, Schedule: RoundRobin{}, N: 2},                  // no strategy
		{Universe: u, Strategy: strat, N: 2},                         // no schedule
		{Universe: u, Strategy: strat, Schedule: RoundRobin{}, N: 0}, // bad N
	}
	for i, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
	// No-local-testing universes are rejected.
	nlt, err := object.NewTopBeta(10, 0.2, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(Config{Universe: nlt, Strategy: strat, Schedule: RoundRobin{}, N: 2}); err == nil {
		t.Fatal("no-local-testing universe accepted")
	}
}

func TestRoundRobinCompletes(t *testing.T) {
	u := universe(t, 100, 2, 2)
	res, err := Run(Config{
		Universe: u, Strategy: NewExploreFollow(8, 100), Schedule: RoundRobin{},
		N: 8, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatal("timed out")
	}
	for p, ok := range res.Satisfied {
		if !ok {
			t.Fatalf("player %d never satisfied", p)
		}
	}
	if res.Strategy != "explore-follow" || res.Schedule != "round-robin" {
		t.Fatalf("labels: %s %s", res.Strategy, res.Schedule)
	}
}

func TestStarvationForcesSoloWork(t *testing.T) {
	// Under starvation, the victim must pay ~1/β probes alone; under
	// round-robin the same algorithm's individual cost collapses because
	// followers piggyback on the first finder.
	const n, m, good = 16, 400, 4 // 1/β = 100
	var starved, fair []float64
	for seed := uint64(0); seed < 20; seed++ {
		u := universe(t, m, good, seed)
		resStarve, err := Run(Config{
			Universe: u, Strategy: NewExploreFollow(n, m), Schedule: Starve{Victim: 0},
			N: n, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		starved = append(starved, float64(resStarve.Probes[0]))
		resFair, err := Run(Config{
			Universe: u, Strategy: NewExploreFollow(n, m), Schedule: RoundRobin{},
			N: n, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		var probes []float64
		for _, c := range resFair.Probes {
			probes = append(probes, float64(c))
		}
		fair = append(fair, stats.Mean(probes))
	}
	meanStarved, meanFair := stats.Mean(starved), stats.Mean(fair)
	t.Logf("victim under starvation: %.1f probes; mean under round-robin: %.1f", meanStarved, meanFair)
	// The victim explores alone at rate 1/2 (half its steps are failed
	// follows), so ~2/β = 200 expected probes; fair scheduling shares the
	// work across 16 players.
	if meanStarved < 3*meanFair {
		t.Fatalf("starvation should cost several times the fair schedule: %.1f vs %.1f",
			meanStarved, meanFair)
	}
	if meanStarved < float64(m)/float64(good)/2 {
		t.Fatalf("starved victim paid %.1f, less than half of 1/β = %d — it got help it cannot have",
			meanStarved, m/good)
	}
}

func TestSoloImmuneToSchedule(t *testing.T) {
	// The billboard-oblivious strategy pays ~1/β under any schedule.
	const n, m, good = 8, 200, 2
	var fair, starved []float64
	for seed := uint64(0); seed < 20; seed++ {
		u := universe(t, m, good, seed)
		a, err := Run(Config{Universe: u, Strategy: NewSolo(m), Schedule: RoundRobin{}, N: n, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(Config{Universe: u, Strategy: NewSolo(m), Schedule: Starve{Victim: 0}, N: n, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		fair = append(fair, float64(a.Probes[0]))
		starved = append(starved, float64(b.Probes[0]))
	}
	mf, ms := stats.Mean(fair), stats.Mean(starved)
	// Both should be in the vicinity of 1/β = 100; allow generous noise.
	if mf > 3*ms+50 || ms > 3*mf+50 {
		t.Fatalf("solo strategy should be schedule-independent: fair %.1f vs starved %.1f", mf, ms)
	}
}

func TestUniformRandomSchedule(t *testing.T) {
	u := universe(t, 50, 1, 3)
	res, err := Run(Config{
		Universe: u, Strategy: NewExploreFollow(4, 50), Schedule: UniformRandom{},
		N: 4, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatal("timed out")
	}
}

func TestMaxStepsTimeout(t *testing.T) {
	u := universe(t, 1000, 1, 4)
	res, err := Run(Config{
		Universe: u, Strategy: NewSolo(1000), Schedule: RoundRobin{},
		N: 4, Seed: 4, MaxSteps: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut || res.Steps != 10 {
		t.Fatalf("TimedOut=%v Steps=%d", res.TimedOut, res.Steps)
	}
}

func TestDeterminism(t *testing.T) {
	u := universe(t, 100, 1, 5)
	runOnce := func() int {
		res, err := Run(Config{
			Universe: u, Strategy: NewExploreFollow(8, 100), Schedule: UniformRandom{},
			N: 8, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Steps
	}
	if runOnce() != runOnce() {
		t.Fatal("async runs are not deterministic")
	}
}

// fixedSchedule is an adversarial Schedule returning a scripted sequence of
// picks regardless of the active set — the attack surface ErrBadSchedule
// guards.
type fixedSchedule struct{ picks []int }

func (fixedSchedule) Name() string { return "fixed" }
func (s fixedSchedule) Next(step int, active []int, _ *rng.Source) int {
	if step < len(s.picks) {
		return s.picks[step]
	}
	return active[step%len(active)]
}

func TestAdversarialScheduleValidation(t *testing.T) {
	u := universe(t, 10, 1, 7)
	cases := []struct {
		name  string
		picks []int
	}{
		{"negative index", []int{-1}},
		{"index == N", []int{4}},
		{"far out of range", []int{1 << 30}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Run(Config{
				Universe: u, Strategy: NewSolo(10), Schedule: fixedSchedule{picks: tc.picks},
				N: 4, Seed: 7,
			})
			if !errors.Is(err, ErrBadSchedule) {
				t.Fatalf("want ErrBadSchedule, got %v", err)
			}
		})
	}
}

// alwaysZero keeps scheduling player 0 even after it halts; the engine must
// reject the halted pick instead of looping or panicking.
type alwaysZero struct{}

func (alwaysZero) Name() string                           { return "always-zero" }
func (alwaysZero) Next(_ int, _ []int, _ *rng.Source) int { return 0 }

func TestScheduleHaltedPlayerRejected(t *testing.T) {
	// Every object is good, so player 0 halts on its first probe; the next
	// pick of player 0 is the violation.
	u := universe(t, 4, 4, 9)
	_, err := Run(Config{
		Universe: u, Strategy: NewSolo(4), Schedule: alwaysZero{},
		N: 2, Seed: 9,
	})
	if !errors.Is(err, ErrBadSchedule) {
		t.Fatalf("want ErrBadSchedule, got %v", err)
	}
}
