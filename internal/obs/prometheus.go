package obs

import (
	"bufio"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format (version 0.0.4), sorted by metric name so the output
// is deterministic for a given set of values. Metrics whose names share a
// family (identical up to the label brace) are grouped under one
// HELP/TYPE header, with the first registered help string winning.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	names := r.sortedNames()
	lastFamily := ""
	for _, name := range names {
		e := r.metrics[name]
		if fam := familyName(name); fam != lastFamily {
			lastFamily = fam
			if e.help != "" {
				bw.WriteString("# HELP ")
				bw.WriteString(fam)
				bw.WriteByte(' ')
				bw.WriteString(e.help)
				bw.WriteByte('\n')
			}
			bw.WriteString("# TYPE ")
			bw.WriteString(fam)
			bw.WriteByte(' ')
			bw.WriteString(e.kind)
			bw.WriteByte('\n')
		}
		switch e.kind {
		case "counter":
			bw.WriteString(name)
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(e.c.Value(), 10))
			bw.WriteByte('\n')
		case "gauge":
			bw.WriteString(name)
			bw.WriteByte(' ')
			bw.WriteString(formatFloat(e.g.Value()))
			bw.WriteByte('\n')
		case "histogram":
			writeHistogram(bw, name, e.h)
		}
	}
	r.mu.Unlock()
	return bw.Flush()
}

// writeHistogram emits the cumulative _bucket series, then _sum and _count.
func writeHistogram(bw *bufio.Writer, name string, h *Histogram) {
	base, labels := splitLabels(name)
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		writeBucket(bw, base, labels, formatFloat(bound), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	writeBucket(bw, base, labels, "+Inf", cum)
	bw.WriteString(base)
	bw.WriteString("_sum")
	bw.WriteString(labels)
	bw.WriteByte(' ')
	bw.WriteString(formatFloat(h.Sum()))
	bw.WriteByte('\n')
	bw.WriteString(base)
	bw.WriteString("_count")
	bw.WriteString(labels)
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatInt(h.Count(), 10))
	bw.WriteByte('\n')
}

// writeBucket emits one cumulative bucket line, merging the le label into
// any labels the metric name already carries.
func writeBucket(bw *bufio.Writer, base, labels, le string, cum int64) {
	bw.WriteString(base)
	bw.WriteString("_bucket{")
	if labels != "" {
		bw.WriteString(labels[1 : len(labels)-1]) // inner key="value" pairs
		bw.WriteByte(',')
	}
	bw.WriteString(`le="`)
	bw.WriteString(le)
	bw.WriteString(`"} `)
	bw.WriteString(strconv.FormatInt(cum, 10))
	bw.WriteByte('\n')
}

// familyName strips a trailing {label="..."} set from a metric name.
func familyName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// splitLabels splits a metric name into its family and literal label set
// (including braces; empty when the name carries no labels).
func splitLabels(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// formatFloat renders a float the way Prometheus text format expects:
// shortest representation that round-trips, integral values without a
// decimal point.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry in Prometheus text
// format — mount it at /metrics. A nil registry serves an empty document.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
