package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("c_total", "ignored"); again != c {
		t.Fatal("re-registration did not return the same handle")
	}

	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}

	h := r.Histogram("h_seconds", "a histogram", []float64{0.1, 1})
	for _, v := range []float64{0.05, 0.5, 0.5, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("histogram count = %d, want 4", h.Count())
	}
	if h.Sum() != 101.05 {
		t.Fatalf("histogram sum = %v, want 101.05", h.Sum())
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("y", "")
	h := r.Histogram("z", "", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if snap := r.Snapshot(); snap != nil {
		t.Fatalf("nil registry snapshot = %v, want nil", snap)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("registering a counter name as a gauge must panic")
		}
	}()
	r := NewRegistry()
	r.Counter("m", "")
	r.Gauge("m", "")
}

// TestPrometheusGolden pins the exact text exposition format. Every byte
// below is part of the public scrape contract; update deliberately.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter(`requests_total{type="probe"}`, "requests served").Add(7)
	r.Counter(`requests_total{type="post"}`, "requests served").Add(3)
	r.Gauge("temperature", "current temperature").Set(36.6)
	h := r.Histogram("rpc_seconds", "rpc latency", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# HELP requests_total requests served`,
		`# TYPE requests_total counter`,
		`requests_total{type="post"} 3`,
		`requests_total{type="probe"} 7`,
		`# HELP rpc_seconds rpc latency`,
		`# TYPE rpc_seconds histogram`,
		`rpc_seconds_bucket{le="0.01"} 1`,
		`rpc_seconds_bucket{le="0.1"} 3`,
		`rpc_seconds_bucket{le="1"} 3`,
		`rpc_seconds_bucket{le="+Inf"} 4`,
		`rpc_seconds_sum 5.105`,
		`rpc_seconds_count 4`,
		`# HELP temperature current temperature`,
		`# TYPE temperature gauge`,
		`temperature 36.6`,
	}, "\n") + "\n"
	if got := buf.String(); got != want {
		t.Fatalf("exposition format drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestLabeledHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(`lat_seconds{op="read"}`, "", []float64{1})
	h.Observe(0.5)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`lat_seconds_bucket{op="read",le="1"} 1`,
		`lat_seconds_sum{op="read"} 0.5`,
		`lat_seconds_count{op="read"} 1`,
	} {
		if !strings.Contains(buf.String(), want+"\n") {
			t.Fatalf("missing %q in:\n%s", want, buf.String())
		}
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(2)
	r.Gauge("b", "").Set(0.5)
	h := r.Histogram("c_seconds", "", []float64{1})
	h.Observe(3)
	snap := r.Snapshot()
	if snap["a_total"] != 2 || snap["b"] != 0.5 || snap["c_seconds_count"] != 1 || snap["c_seconds_sum"] != 3 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestTraceJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	tr.Emit(map[string]any{"type": "round", "round": 0})
	tr.Emit(map[string]any{"type": "round", "round": 1})
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	if tr.Emitted() != 2 {
		t.Fatalf("emitted = %d, want 2", tr.Emitted())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 JSONL lines, got %d:\n%s", len(lines), buf.String())
	}
	for i, line := range lines {
		var ev struct {
			Type  string `json:"type"`
			Round int    `json:"round"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		if ev.Type != "round" || ev.Round != i {
			t.Fatalf("line %d = %+v", i, ev)
		}
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestTraceStickyError(t *testing.T) {
	tr := NewTrace(failingWriter{})
	tr.Emit("x")
	if tr.Err() == nil {
		t.Fatal("write failure not recorded")
	}
	tr.Emit("y") // must not panic or reset the error
	if tr.Emitted() != 0 {
		t.Fatalf("emitted = %d after failures", tr.Emitted())
	}
	var nilTrace *Trace
	nilTrace.Emit("z")
	if nilTrace.Err() != nil || nilTrace.Emitted() != 0 {
		t.Fatal("nil trace must be inert")
	}
}
