package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// Trace is a structured run-trace writer: each Emit appends one JSON line
// (JSONL) to the underlying writer. It is safe for concurrent use — the
// parallel experiment runner and concurrent players may share one Trace —
// and nil-safe, so tracing can be threaded through unconditionally.
//
// Errors are sticky: the first write or marshal failure is recorded,
// subsequent Emits become no-ops, and the caller reads the failure once
// via Err (the pattern billboard readers use for transport errors).
type Trace struct {
	mu      sync.Mutex
	enc     *json.Encoder
	err     error
	emitted int64
}

// NewTrace wraps w as a JSONL trace sink.
func NewTrace(w io.Writer) *Trace {
	return &Trace{enc: json.NewEncoder(w)}
}

// Emit appends event as one JSON line. Nil-safe no-op.
func (t *Trace) Emit(event any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if err := t.enc.Encode(event); err != nil {
		t.err = err
		return
	}
	t.emitted++
}

// Err returns the first emit failure (nil while healthy or on nil receiver).
func (t *Trace) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Emitted returns the number of events successfully written.
func (t *Trace) Emitted() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.emitted
}
