package obs

import (
	"bytes"
	"sync"
	"testing"
)

// TestConcurrentRecording hammers every metric kind from many goroutines
// while a scraper loops WritePrometheus and Snapshot. Run under -race (the
// Makefile check target does); correctness here is exact final counts.
func TestConcurrentRecording(t *testing.T) {
	const (
		goroutines = 16
		perG       = 1000
	)
	r := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent scraper
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			_ = r.WritePrometheus(&buf)
			_ = r.Snapshot()
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Handles resolved concurrently on purpose: registration must be
			// race-free and idempotent too.
			c := r.Counter("hammer_total", "")
			ga := r.Gauge("hammer_level", "")
			h := r.Histogram("hammer_seconds", "", []float64{0.5, 1})
			for i := 0; i < perG; i++ {
				c.Inc()
				ga.Add(1)
				h.Observe(float64(i%3) * 0.5)
			}
		}()
	}
	close(stop)
	wg.Wait()

	if got := r.Counter("hammer_total", "").Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := r.Gauge("hammer_level", "").Value(); got != goroutines*perG {
		t.Fatalf("gauge = %v, want %d", got, goroutines*perG)
	}
	if got := r.Histogram("hammer_seconds", "", nil).Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
}

func TestConcurrentTrace(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Emit(map[string]int{"g": g, "i": i})
			}
		}(g)
	}
	wg.Wait()
	if tr.Err() != nil {
		t.Fatal(tr.Err())
	}
	if tr.Emitted() != 800 {
		t.Fatalf("emitted = %d, want 800", tr.Emitted())
	}
	if n := bytes.Count(buf.Bytes(), []byte("\n")); n != 800 {
		t.Fatalf("lines = %d, want 800 (interleaved writes?)", n)
	}
}
