// Package obs is the repository's zero-dependency observability layer: a
// metrics registry (counters, gauges, fixed-bucket histograms) plus a
// structured JSONL trace writer.
//
// Design constraints, in order:
//
//   - Hot-path neutral. Metric handles are plain structs around atomics;
//     recording is one atomic op. Every handle is nil-safe — a nil *Counter
//     (what a nil *Registry hands out) makes recording a single predictable
//     branch, so instrumented code needs no "is observability on?" plumbing.
//   - Allocation-free recording. Handles are resolved once at setup
//     (Registry.Counter and friends are registration, not lookup);
//     Inc/Add/Set/Observe never allocate.
//   - Zero dependencies. Exposition is the Prometheus text format written
//     by hand (prometheus.go); no client library is vendored or imported.
//
// Metric names follow Prometheus conventions (snake_case, unit-suffixed,
// `_total` for counters). A name may carry a literal label set, e.g.
// `server_requests_total{type="probe"}`; the registry treats the full
// string as the metric identity and the exposition writer groups HELP/TYPE
// lines by the family name before the brace.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds named metrics. The zero value is not usable; construct
// with NewRegistry. A nil *Registry is valid everywhere and hands out nil
// handles, so "no observability" costs one nil check per record.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*entry
}

// entry is one registered metric.
type entry struct {
	kind string // "counter", "gauge", or "histogram"
	help string
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*entry)}
}

// Counter registers (or re-resolves) a monotonically increasing counter.
// Registration is idempotent: the same name always returns the same handle,
// so independent components sharing a registry share the series. A nil
// registry returns a nil (no-op) handle. Registering a name that already
// holds a different metric kind panics — that is a programming error, not
// a runtime condition.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.metrics[name]; ok {
		r.mustKind(name, e, "counter")
		return e.c
	}
	c := &Counter{}
	r.metrics[name] = &entry{kind: "counter", help: help, c: c}
	return c
}

// Gauge registers (or re-resolves) a gauge: a value that can go up and
// down. Same identity and nil-registry rules as Counter.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.metrics[name]; ok {
		r.mustKind(name, e, "gauge")
		return e.g
	}
	g := &Gauge{}
	r.metrics[name] = &entry{kind: "gauge", help: help, g: g}
	return g
}

// Histogram registers (or re-resolves) a fixed-bucket histogram. Buckets
// are upper bounds in increasing order; an implicit +Inf bucket is always
// appended. A nil or empty bucket list uses DefBuckets. On re-resolution
// the original buckets win (the handle is shared, so they must agree).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.metrics[name]; ok {
		r.mustKind(name, e, "histogram")
		return e.h
	}
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	bounds := append([]float64(nil), buckets...)
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not strictly increasing", name))
		}
	}
	h := &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	r.metrics[name] = &entry{kind: "histogram", help: help, h: h}
	return h
}

func (r *Registry) mustKind(name string, e *entry, want string) {
	if e.kind != want {
		panic(fmt.Sprintf("obs: metric %q already registered as %s, requested %s", name, e.kind, want))
	}
}

// Snapshot returns every registered series as name → value: counters and
// gauges directly, histograms as three derived series (name_count,
// name_sum, and nothing per-bucket — bucket detail is exposition-only).
// Intended for tests and programmatic reads, not for scraping.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.metrics))
	for name, e := range r.metrics {
		switch e.kind {
		case "counter":
			out[name] = float64(e.c.Value())
		case "gauge":
			out[name] = e.g.Value()
		case "histogram":
			out[name+"_count"] = float64(e.h.Count())
			out[name+"_sum"] = e.h.Sum()
		}
	}
	return out
}

// sortedNames returns the registered metric names sorted so that members
// of one family (same name up to the label brace) are adjacent.
func (r *Registry) sortedNames() []string {
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// DefBuckets is the default histogram bucketing: exponential from 100µs to
// ~100s, wide enough for both RPC latencies and barrier waits.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
}

// Counter is a monotonically increasing integer metric. All methods are
// safe for concurrent use and safe on a nil receiver (no-ops), so
// instrumented code never branches on whether observability is enabled.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be >= 0 to keep the counter monotone; this is not
// checked on the hot path).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can move in both directions. Safe for
// concurrent use; nil receivers no-op.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta (CAS loop; gauges are not hot-path metrics).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram. Observe is one linear scan over
// the (small, fixed) bucket list plus two atomic ops; no allocation.
// Nil receivers no-op.
type Histogram struct {
	bounds []float64      // upper bounds, increasing; +Inf implicit at the end
	counts []atomic.Int64 // len(bounds)+1; counts[i] = observations in bucket i (non-cumulative)
	sum    Gauge          // sum of observed values
	n      atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// ObserveSince records the elapsed wall time since start, in seconds.
func (h *Histogram) ObserveSince(start time.Time) {
	if h != nil {
		h.Observe(time.Since(start).Seconds())
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}
