package dist

// Replicated-coordinator cluster runs. With Topology.Replicas > 1 the
// billboard service is a replica group (server.StartReplica): a leader
// quorum-commits every round into the group before clients see it, and a
// follower takes over when the leader dies. The harness gives every player
// the full client-address list as dial fallbacks, so a leader kill looks to
// them like any other transport fault: retry, redirect, resume.

import (
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/faultnet"
	"repro/internal/rng"
	"repro/internal/server"
)

// replicaCluster is the live replica group of one distributed run.
type replicaCluster struct {
	mu          sync.Mutex
	nodes       []*server.ReplicaNode
	clientAddrs []string
	kills       int
}

// leaderNode returns the current leader (nil while an election runs).
func (rc *replicaCluster) leaderNode() *server.ReplicaNode {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	for _, node := range rc.nodes {
		if node == nil {
			continue
		}
		if leading, _ := node.Leader(); leading {
			return node
		}
	}
	return nil
}

// leaderRound reports the committed round at the current leader (-1 while
// no leader is known).
func (rc *replicaCluster) leaderRound() int {
	node := rc.leaderNode()
	if node == nil {
		return -1
	}
	srv := node.Server()
	if srv == nil {
		return -1
	}
	return srv.Round()
}

// killLeader crash-stops the current leader, if any. Returns whether a kill
// happened.
func (rc *replicaCluster) killLeader() bool {
	node := rc.leaderNode()
	if node == nil {
		return false
	}
	_, id := node.Leader()
	rc.mu.Lock()
	if id < 0 || id >= len(rc.nodes) || rc.nodes[id] != node {
		rc.mu.Unlock()
		return false
	}
	rc.nodes[id] = nil
	rc.kills++
	rc.mu.Unlock()
	node.Kill()
	return true
}

func (rc *replicaCluster) closeAll() {
	rc.mu.Lock()
	nodes := append([]*server.ReplicaNode(nil), rc.nodes...)
	rc.mu.Unlock()
	for _, node := range nodes {
		if node != nil {
			node.Close()
		}
	}
}

// startReplicaCluster binds every listener up front (so the address book is
// complete before any node starts) and launches the group.
func startReplicaCluster(cfg ClusterConfig, tokens []string, swarmToken string) (*replicaCluster, error) {
	n := cfg.Honest + cfg.Byzantine
	scfg := server.Config{
		Universe:        cfg.Universe,
		Tokens:          tokens,
		Alpha:           float64(cfg.Honest) / float64(n),
		Beta:            cfg.Universe.Beta(),
		SessionGrace:    cfg.SessionGrace,
		BarrierDeadline: cfg.BarrierDeadline,
		Mode:            cfg.Mode,
		EpochTick:       cfg.EpochTick,
		Shards:          cfg.Topology.Shards,
		SwarmToken:      swarmToken,
		SnapshotEvery:   cfg.SnapshotEvery,
		Logf:            cfg.Logf,
	}
	reps := cfg.Topology.Replicas
	repLns := make([]net.Listener, reps)
	clientLns := make([]net.Listener, reps)
	peers := make([]string, reps)
	clients := make([]string, reps)
	closeLns := func() {
		for i := 0; i < reps; i++ {
			if repLns[i] != nil {
				repLns[i].Close()
			}
			if clientLns[i] != nil {
				clientLns[i].Close()
			}
		}
	}
	for i := 0; i < reps; i++ {
		var err error
		if repLns[i], err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
			closeLns()
			return nil, fmt.Errorf("dist: replica %d rep listener: %w", i, err)
		}
		if clientLns[i], err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
			closeLns()
			return nil, fmt.Errorf("dist: replica %d client listener: %w", i, err)
		}
		peers[i] = repLns[i].Addr().String()
		clients[i] = clientLns[i].Addr().String()
	}
	rc := &replicaCluster{nodes: make([]*server.ReplicaNode, reps), clientAddrs: clients}
	for i := 0; i < reps; i++ {
		node, err := server.StartReplica(server.ReplicaConfig{
			ID:              i,
			Peers:           peers,
			ClientAddrs:     clients,
			Quorum:          cfg.Topology.ReplicaQuorum,
			Dir:             filepath.Join(cfg.PersistDir, fmt.Sprintf("replica-%d", i)),
			HeartbeatEvery:  10 * time.Millisecond,
			ElectionTimeout: 75 * time.Millisecond,
			RepListener:     repLns[i],
			ClientListener:  clientLns[i],
			Logf:            cfg.Logf,
		}, scfg)
		if err != nil {
			rc.closeAll()
			// Listeners for nodes not yet started are still ours to close.
			for j := i; j < reps; j++ {
				repLns[j].Close()
				clientLns[j].Close()
			}
			return nil, fmt.Errorf("dist: replica %d: %w", i, err)
		}
		rc.nodes[i] = node
	}
	return rc, nil
}

// runReplicated is RunCluster's replica-group branch (Topology.Replicas > 1).
func runReplicated(cfg ClusterConfig) (*ClusterResult, error) {
	if cfg.PersistDir == "" {
		return nil, fmt.Errorf("dist: Replicas > 1 requires PersistDir")
	}
	if cfg.Chaos.KillAtRound > 0 {
		return nil, fmt.Errorf("dist: KillAtRound is the single-coordinator restart hook; use KillLeaderAtRound with Replicas > 1")
	}
	if cfg.Chaos.KillShardAtRound > 0 && cfg.Topology.Shards < 2 {
		return nil, fmt.Errorf("dist: KillShardAtRound requires Topology.Shards > 1")
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = 4096
	}
	n := cfg.Honest + cfg.Byzantine
	tokens := make([]string, n)
	tokenRng := rng.New(cfg.Seed).Split(9999)
	for i := range tokens {
		tokens[i] = fmt.Sprintf("tok-%d-%016x", i, tokenRng.Uint64())
	}
	swarmToken := fmt.Sprintf("swarm-%016x", tokenRng.Uint64())
	rc, err := startReplicaCluster(cfg, tokens, swarmToken)
	if err != nil {
		return nil, err
	}
	defer rc.closeAll()

	// KillLeaderAtRound watcher: the moment the leader's committed round
	// counter reaches the target, crash-stop the leader with every client in
	// flight. The survivors elect, replay the quorum-committed prefix, and
	// pick the round up where the group (not the dead leader) left it.
	killerDone := make(chan struct{})
	killerStop := make(chan struct{})
	if cfg.Chaos.KillLeaderAtRound > 0 {
		go func() {
			defer close(killerDone)
			for {
				select {
				case <-killerStop:
					return
				case <-time.After(2 * time.Millisecond):
				}
				if rc.leaderRound() < cfg.Chaos.KillLeaderAtRound {
					continue
				}
				if rc.killLeader() {
					return
				}
			}
		}()
	} else {
		close(killerDone)
	}

	// KillShardAtRound watcher, replicated flavor: bounce the victim lane on
	// whatever node currently leads. Composed with KillLeaderAtRound in the
	// same round this deliberately races a leader kill: if the leader dies
	// between kill and restart, promotion recovers the lane from the
	// replicated journal and the explicit restart is a no-op.
	shardRestarts := 0
	shardDone := make(chan struct{})
	shardStop := make(chan struct{})
	if cfg.Chaos.KillShardAtRound > 0 {
		go func() {
			defer close(shardDone)
			const victim = 1
			for {
				select {
				case <-shardStop:
					return
				case <-time.After(2 * time.Millisecond):
				}
				if rc.leaderRound() < cfg.Chaos.KillShardAtRound {
					continue
				}
				node := rc.leaderNode()
				if node == nil {
					continue
				}
				srv := node.Server()
				if srv == nil {
					continue
				}
				if err := srv.KillShard(victim); err != nil {
					continue // leader changed under us; retry on the new one
				}
				time.Sleep(10 * time.Millisecond)
				for i := 0; i < 200; i++ {
					node = rc.leaderNode()
					if node == nil || node.Server() == nil {
						time.Sleep(5 * time.Millisecond)
						continue
					}
					// An error here means the lane is already up — either we
					// restarted it or a failover resurrected it; both count.
					_ = node.Server().RestartShard(victim)
					break
				}
				shardRestarts++
				return
			}
		}()
	} else {
		close(shardDone)
	}

	playerOptions := func(player int) (client.Options, error) {
		opt := cfg.Client
		opt.Fallbacks = append(append([]string(nil), opt.Fallbacks...), rc.clientAddrs[1:]...)
		if cfg.Chaos.Fault != nil {
			inj, err := faultnet.New(*cfg.Chaos.Fault)
			if err != nil {
				return opt, err
			}
			opt.Dialer = inj.Dialer(uint64(player), opt.Dialer)
		}
		return opt, nil
	}

	stop := make(chan struct{})
	var byzWG sync.WaitGroup
	for b := 0; b < cfg.Byzantine; b++ {
		player := cfg.Honest + b
		opt, err := playerOptions(player)
		if err != nil {
			return nil, err
		}
		byzWG.Add(1)
		go func(player int, opt client.Options) {
			defer byzWG.Done()
			_ = runByzantineSpam(rc.clientAddrs[0], player, tokens[player], stop, opt)
		}(player, opt)
	}
	results, honestErr := runHonestFleet(&cfg, rc.clientAddrs[0], tokens, swarmToken, playerOptions)
	close(stop)
	byzWG.Wait()
	close(killerStop)
	<-killerDone
	close(shardStop)
	<-shardDone
	if honestErr != nil {
		return nil, honestErr
	}

	// Final state is whatever the current leader committed; wait briefly for
	// one if the last kill landed after the players finished.
	var final *server.Server
	for i := 0; i < 1000; i++ {
		if node := rc.leaderNode(); node != nil {
			if srv := node.Server(); srv != nil {
				final = srv
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if final == nil {
		return nil, fmt.Errorf("dist: no leader at teardown")
	}
	out := &ClusterResult{
		Honest:        results,
		AllFound:      true,
		Failovers:     rc.kills,
		ShardRestarts: shardRestarts,
	}
	sProbes, _, _, _ := final.Stats()
	out.ServerProbes = sProbes
	out.BoardDigest = final.Digest()
	total := 0
	for _, r := range results {
		if !r.Found {
			out.AllFound = false
		}
		total += r.Probes
		if r.Rounds > out.Rounds {
			out.Rounds = r.Rounds
		}
	}
	out.MeanProbes = float64(total) / float64(len(results))
	return out, nil
}
