package dist

// Fleet-driver benchmarks, recorded as BENCH_PR8.json by `make bench-diff`.
// BenchmarkClusterFleet prices the same full cluster search under both
// drivers — goroutine-and-connection per player vs the swarm event-loop
// scheduler — at matched player counts, reporting ns/player; the Makefile
// gates swarm < goroutine at the largest pair the file-descriptor budget
// admits (a goroutine fleet needs two descriptors per player, which is
// exactly what caps it). BenchmarkSwarmScale records the swarm alone at
// fleet sizes the goroutine path cannot reach.

import (
	"syscall"
	"testing"

	"repro/internal/object"
	"repro/internal/rng"
)

// fdBudgetOK reports whether the process may hold roughly need descriptors.
func fdBudgetOK(need uint64) bool {
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		return true // unknown platform limit: let the bench try
	}
	return rl.Cur >= need
}

func benchFleet(b *testing.B, honest int, swarmDrive bool) {
	if !swarmDrive && !fdBudgetOK(uint64(2*honest+64)) {
		b.Skipf("goroutine fleet of %d needs ~%d descriptors", honest, 2*honest+64)
	}
	u, err := object.NewPlanted(object.Planted{M: 256, Good: 8}, rng.New(77))
	if err != nil {
		b.Fatal(err)
	}
	cfg := ClusterConfig{
		Universe:  u,
		Honest:    honest,
		Seed:      42,
		MaxRounds: 8,
	}
	if swarmDrive {
		cfg.Drive.Swarm = true
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := RunCluster(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllFound {
			b.Fatalf("fleet of %d did not finish in %d rounds", honest, cfg.MaxRounds)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*honest), "ns/player")
}

func BenchmarkClusterFleet(b *testing.B) {
	b.Run("goroutine-2k", func(b *testing.B) { benchFleet(b, 2_000, false) })
	b.Run("swarm-2k", func(b *testing.B) { benchFleet(b, 2_000, true) })
	b.Run("goroutine-10k", func(b *testing.B) { benchFleet(b, 10_000, false) })
	b.Run("swarm-10k", func(b *testing.B) { benchFleet(b, 10_000, true) })
}

func BenchmarkSwarmScale(b *testing.B) {
	b.Run("players-100k", func(b *testing.B) { benchFleet(b, 100_000, true) })
	b.Run("players-1M", func(b *testing.B) { benchFleet(b, 1_000_000, true) })
}
