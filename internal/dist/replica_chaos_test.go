package dist

// Replicated-coordinator chaos tests. The acceptance bar is the strongest
// in the suite: a run that quorum-commits every round into a replica group —
// even one that loses its leader mid-round, even with transport faults and
// a shard bounce layered on top — must converge to the very same committed
// billboard as the fault-free single-coordinator run on the same seed, with
// every probe charged exactly once. And a 1-replica configuration must be
// the classic single coordinator, not a degenerate group.

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/faultnet"
)

// replicaClientOpts sizes retries for elections: a failover stalls clients
// for a few hundred milliseconds, which must exhaust backoff budget slowly
// enough that every player rides it out.
func replicaClientOpts() client.Options {
	return client.Options{
		Retries: 40, BackoffBase: time.Millisecond, BackoffMax: 50 * time.Millisecond,
		CallTimeout: 10 * time.Second,
	}
}

// TestChaosReplicasOneIsSingleCoordinator pins the compatibility contract:
// Replicas <= 1 takes the classic single-server path and its outcome is
// byte-identical to a run that never mentions replication.
func TestChaosReplicasOneIsSingleCoordinator(t *testing.T) {
	clean, err := RunCluster(chaosBase(t))
	if err != nil {
		t.Fatal(err)
	}
	one := chaosBase(t)
	one.Topology.Replicas = 1
	got, err := RunCluster(one)
	if err != nil {
		t.Fatal(err)
	}
	if got.Failovers != 0 {
		t.Fatalf("single coordinator reported %d failovers", got.Failovers)
	}
	assertMatchesClean(t, clean, got, "replicas=1")
	if !bytes.Equal(got.BoardDigest, clean.BoardDigest) {
		t.Fatal("replicas=1 digest differs from plain run")
	}
}

// TestChaosReplicatedMatchesSingleCoordinator runs the same search against
// a healthy 3-replica group: every round is quorum-committed before clients
// observe it, and the final billboard must be byte-identical to the plain
// single-coordinator run.
func TestChaosReplicatedMatchesSingleCoordinator(t *testing.T) {
	clean, err := RunCluster(chaosBase(t))
	if err != nil {
		t.Fatal(err)
	}
	if !clean.AllFound {
		t.Fatal("fault-free cluster did not finish")
	}

	rep := chaosBase(t)
	rep.Topology.Replicas = 3
	rep.PersistDir = t.TempDir()
	rep.SessionGrace = 10 * time.Second
	rep.Client = replicaClientOpts()
	got, err := RunCluster(rep)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesClean(t, clean, got, "replicated")
}

// TestChaosLeaderFailoverMatchesFaultFree is the headline acceptance test:
// the leader is crash-stopped mid-round with every client in flight, a
// follower takes over by replaying the quorum-committed prefix and
// discarding the uncommitted tail, and the run must still be observably
// identical to the fault-free single-coordinator baseline — same digest,
// zero double-charged probes.
func TestChaosLeaderFailoverMatchesFaultFree(t *testing.T) {
	clean, err := RunCluster(chaosBase(t))
	if err != nil {
		t.Fatal(err)
	}
	if !clean.AllFound {
		t.Fatal("fault-free cluster did not finish")
	}

	crash := chaosBase(t)
	crash.Topology.Replicas = 3
	crash.PersistDir = t.TempDir()
	crash.Chaos.KillLeaderAtRound = 3
	crash.SessionGrace = 10 * time.Second
	crash.BarrierDeadline = 30 * time.Second // must never fire here
	crash.Client = replicaClientOpts()
	crash.Logf = t.Logf
	got, err := RunCluster(crash)
	if err != nil {
		t.Fatal(err)
	}
	if got.Failovers != 1 {
		t.Fatalf("expected exactly one leader kill, got %d", got.Failovers)
	}
	assertMatchesClean(t, clean, got, "across leader failover")
}

// TestChaosLeaderFailoverUnderFaultInjection layers ~11% transport fault
// injection over the failover: client frames drop, stall, and tear while
// the leader dies and the group re-elects. Retry, redirect, session resume,
// and quorum replay must compose; digest and ledger must still match the
// fault-free run.
func TestChaosLeaderFailoverUnderFaultInjection(t *testing.T) {
	clean, err := RunCluster(chaosBase(t))
	if err != nil {
		t.Fatal(err)
	}

	chaos := chaosBase(t)
	chaos.Topology.Replicas = 3
	chaos.PersistDir = t.TempDir()
	chaos.Chaos.KillLeaderAtRound = 3
	chaos.Chaos.Fault = &faultnet.Config{
		Seed:     31,
		Drop:     0.04,
		Delay:    0.04,
		Tear:     0.03, // 11% total injection per I/O operation
		MaxDelay: 2 * time.Millisecond,
	}
	chaos.SessionGrace = 10 * time.Second
	chaos.BarrierDeadline = 30 * time.Second
	chaos.Client = replicaClientOpts()
	got, err := RunCluster(chaos)
	if err != nil {
		t.Fatal(err)
	}
	if got.Failovers != 1 {
		t.Fatalf("expected exactly one leader kill, got %d", got.Failovers)
	}
	assertMatchesClean(t, clean, got, "failover under faults")
}

// TestChaosLeaderFailoverWithShardBounce composes the two hardest failure
// modes in the same round: the leader of a sharded replica group is killed
// while one shard lane is bounced. The promoted follower recovers every
// lane from the replicated journal, the bounced lane comes back on whoever
// leads, and the outcome must still match the fault-free single-shard,
// single-coordinator baseline exactly.
func TestChaosLeaderFailoverWithShardBounce(t *testing.T) {
	clean, err := RunCluster(chaosBase(t))
	if err != nil {
		t.Fatal(err)
	}
	if !clean.AllFound {
		t.Fatal("fault-free cluster did not finish")
	}

	crash := chaosBase(t)
	crash.Topology.Replicas = 3
	crash.Topology.Shards = 4
	crash.PersistDir = t.TempDir()
	crash.SnapshotEvery = 3
	crash.Chaos.KillLeaderAtRound = 3
	crash.Chaos.KillShardAtRound = 3 // same round: bounce races the failover
	crash.SessionGrace = 10 * time.Second
	crash.BarrierDeadline = 30 * time.Second
	crash.Client = replicaClientOpts()
	crash.Logf = t.Logf
	got, err := RunCluster(crash)
	if err != nil {
		t.Fatal(err)
	}
	if got.Failovers != 1 {
		t.Fatalf("expected exactly one leader kill, got %d", got.Failovers)
	}
	assertMatchesClean(t, clean, got, "failover + shard bounce")
}
