package dist

// Epoch-mode chaos: the asynchronous operation mode must *converge* — a
// cluster that paces itself with lamport-stamped epochs instead of the
// global round barrier, driven through fault injection (drops, delays that
// act as stragglers, torn writes), has to quiesce to the very same
// committed billboard as the classic synchronous run on the same seed,
// byte for byte, with every probe charged exactly once.

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/faultnet"
	"repro/internal/server"
)

func epochChaosClient() client.Options {
	return client.Options{
		Retries: 16, BackoffBase: time.Millisecond, BackoffMax: 20 * time.Millisecond,
		CallTimeout: 10 * time.Second,
	}
}

// epochChaosFault is the standard 11%-per-I/O injection mix; the Delay
// component doubles as the straggler source (a delayed player is exactly a
// straggler the epoch clock must not wait on forever).
func epochChaosFault() *faultnet.Config {
	return &faultnet.Config{
		Seed:     7,
		Drop:     0.04,
		Delay:    0.04,
		Tear:     0.03,
		MaxDelay: 2 * time.Millisecond,
	}
}

// assertRunsConverge requires the chaotic epoch run to match the clean sync
// run player for player and bit for bit.
func assertRunsConverge(t *testing.T, clean, faulty *ClusterResult) {
	t.Helper()
	for i, r := range faulty.Honest {
		if r.Probes != clean.Honest[i].Probes {
			t.Errorf("player %d: %d probes in epoch mode, %d sync",
				i, r.Probes, clean.Honest[i].Probes)
		}
		if r.Rounds != clean.Honest[i].Rounds {
			t.Errorf("player %d: halted in epoch %d, sync round %d",
				i, r.Rounds, clean.Honest[i].Rounds)
		}
	}
	for i, r := range faulty.Honest {
		if faulty.ServerProbes[i] != r.Probes {
			t.Errorf("player %d: server charged %d probes, client performed %d (double charge)",
				i, faulty.ServerProbes[i], r.Probes)
		}
	}
	if !bytes.Equal(faulty.BoardDigest, clean.BoardDigest) {
		t.Fatalf("epoch run diverged from sync run:\nsync:\n%s\nepoch:\n%s",
			clean.BoardDigest, faulty.BoardDigest)
	}
}

// TestEpochChaosConvergesToSyncDigest is the tentpole convergence bar: the
// same cluster, once synchronous and fault-free, once in epoch mode through
// 11% fault injection with no barrier anywhere — at quiescence the async
// run's committed billboard is byte-identical to the sync run's.
func TestEpochChaosConvergesToSyncDigest(t *testing.T) {
	clean, err := RunCluster(chaosBase(t))
	if err != nil {
		t.Fatal(err)
	}
	if !clean.AllFound {
		t.Fatal("sync cluster did not finish")
	}

	epoch := chaosBase(t)
	epoch.Mode = server.ModeEpoch
	epoch.Chaos.Fault = epochChaosFault()
	epoch.SessionGrace = 10 * time.Second
	epoch.Client = epochChaosClient()
	faulty, err := RunCluster(epoch)
	if err != nil {
		t.Fatal(err)
	}
	if !faulty.AllFound {
		t.Fatal("epoch chaos cluster did not finish")
	}
	assertRunsConverge(t, clean, faulty)
}

// TestEpochChaosShardedConvergesToSyncDigest repeats the convergence bar on
// a sharded board: per-lane epoch sealing under fault injection must still
// quiesce to the sync sharded run's digest.
func TestEpochChaosShardedConvergesToSyncDigest(t *testing.T) {
	clean := chaosBase(t)
	clean.Topology.Shards = 3
	cleanRes, err := RunCluster(clean)
	if err != nil {
		t.Fatal(err)
	}
	if !cleanRes.AllFound {
		t.Fatal("sync sharded cluster did not finish")
	}

	epoch := chaosBase(t)
	epoch.Topology.Shards = 3
	epoch.Mode = server.ModeEpoch
	epoch.Chaos.Fault = epochChaosFault()
	epoch.SessionGrace = 10 * time.Second
	epoch.Client = epochChaosClient()
	faulty, err := RunCluster(epoch)
	if err != nil {
		t.Fatal(err)
	}
	if !faulty.AllFound {
		t.Fatal("epoch sharded chaos cluster did not finish")
	}
	assertRunsConverge(t, cleanRes, faulty)
}

// TestEpochSwarmMatchesSyncDigest drives the swarm scheduler against an
// epoch-mode server: the per-group stamp-then-poll pacing must land the
// same committed billboard as the sync-mode goroutine fleet on the same
// seed.
func TestEpochSwarmMatchesSyncDigest(t *testing.T) {
	clean, err := RunCluster(chaosBase(t))
	if err != nil {
		t.Fatal(err)
	}

	epoch := chaosBase(t)
	epoch.Mode = server.ModeEpoch
	epoch.Drive.Swarm = true
	swarmed, err := RunCluster(epoch)
	if err != nil {
		t.Fatal(err)
	}
	if !swarmed.AllFound {
		t.Fatal("epoch swarm cluster did not finish")
	}
	assertRunsConverge(t, clean, swarmed)
}

// TestEpochTickClusterCompletes smoke-tests the wall-clock epoch clock at
// cluster scale: with a tick armed the run keeps its liveness guarantee (a
// search that finishes) even though a firing tick may seal an epoch before
// every straggler arrives, so only completion — not digest parity — is
// asserted here. (Digest-exact tick-past-straggler behavior is pinned at
// the server level.)
func TestEpochTickClusterCompletes(t *testing.T) {
	cfg := chaosBase(t)
	cfg.Mode = server.ModeEpoch
	cfg.EpochTick = 200 * time.Millisecond
	res, err := RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllFound {
		t.Fatal("epoch tick cluster did not finish")
	}
}
