package dist

// Swarm-driver parity tests. The swarm scheduler multiplexes the whole
// honest fleet onto a few pipelined connections, but the acceptance bar is
// the same exactness the chaos suites pin: a swarm-driven run must be
// observably identical to the goroutine-per-player run on the same seed —
// per-player probe counts, halt rounds, the server's probe ledger, and a
// byte-identical final billboard digest.

import (
	"bytes"
	"testing"
	"time"
)

// TestSwarmMatchesGoroutineFleet is the headline parity check on the plain
// single-coordinator path, with an uneven group split so boundary ranges
// are exercised.
func TestSwarmMatchesGoroutineFleet(t *testing.T) {
	clean, err := RunCluster(chaosBase(t))
	if err != nil {
		t.Fatal(err)
	}
	if !clean.AllFound {
		t.Fatal("goroutine fleet did not finish")
	}

	sw := chaosBase(t)
	sw.Drive.Swarm = true
	sw.Drive.SwarmGroups = 3 // 8 players over 3 groups: uneven ranges
	got, err := RunCluster(sw)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesClean(t, clean, got, "swarm")
}

// TestSwarmByzantineMix drives honest players through the swarm while
// Byzantine spammers run as classic per-player clients against the same
// barriers; the digest must match the goroutine run with the same mix.
func TestSwarmByzantineMix(t *testing.T) {
	base := chaosBase(t)
	base.Byzantine = 2
	clean, err := RunCluster(base)
	if err != nil {
		t.Fatal(err)
	}

	sw := chaosBase(t)
	sw.Byzantine = 2
	sw.Drive.Swarm = true
	got, err := RunCluster(sw)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesClean(t, clean, got, "swarm+byzantine")
}

// TestSwarmShardedMatchesSingleShard sends the swarm's posts through shard
// lanes: per-player post indices are stamped at frame build and scattered
// over per-shard connections, and the committed billboard must match the
// fault-free single-shard goroutine baseline.
func TestSwarmShardedMatchesSingleShard(t *testing.T) {
	clean, err := RunCluster(chaosBase(t))
	if err != nil {
		t.Fatal(err)
	}

	sw := chaosBase(t)
	sw.Topology.Shards = 4
	sw.Drive.Swarm = true
	sw.Drive.SwarmGroups = 2
	got, err := RunCluster(sw)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesClean(t, clean, got, "swarm sharded")
}

// TestSwarmReplicatedMatchesSingleCoordinator runs the swarm against a
// 3-replica coordinator group: swarm journal records quorum-commit like any
// other state change, and the outcome matches the plain baseline.
func TestSwarmReplicatedMatchesSingleCoordinator(t *testing.T) {
	clean, err := RunCluster(chaosBase(t))
	if err != nil {
		t.Fatal(err)
	}

	sw := chaosBase(t)
	sw.Topology.Replicas = 3
	sw.PersistDir = t.TempDir()
	sw.SessionGrace = 10 * time.Second
	sw.Client = replicaClientOpts()
	sw.Drive.Swarm = true
	got, err := RunCluster(sw)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesClean(t, clean, got, "swarm replicated")
}

// TestFlatClusterConfigCompat pins the compatibility constructor: a run
// configured through the historical flat shape is byte-identical to one
// configured through the structured sub-structs.
func TestFlatClusterConfigCompat(t *testing.T) {
	base := chaosBase(t)
	structured := base
	structured.Topology.Shards = 4
	a, err := RunCluster(structured)
	if err != nil {
		t.Fatal(err)
	}

	flat := FlatClusterConfig{
		Universe:  base.Universe,
		Honest:    base.Honest,
		Params:    base.Params,
		Seed:      base.Seed,
		MaxRounds: base.MaxRounds,
		Shards:    4,
	}
	b, err := RunCluster(flat.Cluster())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.BoardDigest, b.BoardDigest) {
		t.Fatal("FlatClusterConfig run diverged from structured ClusterConfig run")
	}
	for i := range a.Honest {
		if a.Honest[i].Probes != b.Honest[i].Probes {
			t.Fatalf("player %d: %d vs %d probes across config shapes",
				i, a.Honest[i].Probes, b.Honest[i].Probes)
		}
	}
}
