package dist

import (
	"testing"

	"repro/internal/core"
	"repro/internal/object"
	"repro/internal/rng"
)

func TestClusterAllHonest(t *testing.T) {
	u, err := object.NewPlanted(object.Planted{M: 64, Good: 2}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCluster(ClusterConfig{
		Universe: u, Honest: 16, Params: core.Params{}, Seed: 1, MaxRounds: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllFound {
		t.Fatal("not every honest player found a good object")
	}
	if res.MeanProbes <= 0 || res.MeanProbes > 64 {
		t.Fatalf("implausible mean probes %v", res.MeanProbes)
	}
}

func TestClusterWithByzantine(t *testing.T) {
	u, err := object.NewPlanted(object.Planted{M: 96, Good: 1}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCluster(ClusterConfig{
		Universe: u, Honest: 24, Byzantine: 8, Params: core.Params{},
		Seed: 2, MaxRounds: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllFound {
		t.Fatal("Byzantine spam defeated the distributed run")
	}
	for _, h := range res.Honest {
		if h.TimedOut {
			t.Fatalf("player %d timed out", h.Player)
		}
		if h.Probes <= 0 {
			t.Fatalf("player %d recorded no probes", h.Player)
		}
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := RunCluster(ClusterConfig{Honest: 1}); err == nil {
		t.Fatal("missing universe accepted")
	}
	u, err := object.NewPlanted(object.Planted{M: 8, Good: 1}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunCluster(ClusterConfig{Universe: u, Honest: 0}); err == nil {
		t.Fatal("zero honest players accepted")
	}
}

func TestDistributedMatchesEngineBallpark(t *testing.T) {
	// The distributed run and the in-process engine implement the same
	// protocol; their mean individual costs should be in the same ballpark
	// (they use different randomness, so only a loose check is possible).
	u, err := object.NewPlanted(object.Planted{M: 64, Good: 1}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCluster(ClusterConfig{
		Universe: u, Honest: 16, Byzantine: 4, Params: core.Params{},
		Seed: 4, MaxRounds: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanProbes > 60 {
		t.Fatalf("distributed mean probes %v far above the engine's typical ~10", res.MeanProbes)
	}
}
