// Package dist orchestrates fully distributed runs: a billboard server plus
// one TCP client per player, honest players driving their own core.Distill
// instances (per-player, not the engine's shared-instance optimization) and
// Byzantine players lying over the same wire protocol. This is the
// deployment shape the paper describes — independent parties and a shared
// billboard service — and doubles as an end-to-end proof that the protocol
// code is engine-independent.
//
// A cluster can also run through deterministic fault injection
// (ClusterConfig.Chaos.Fault → internal/faultnet): connections drop, stall, and
// tear mid-frame, while session resume and request dedup keep the search
// semantics identical — the chaos tests assert the final billboard digest
// matches the fault-free run on the same seed, with zero double-charged
// probes.
package dist

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/journal"
	"repro/internal/object"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/swarm"
)

// HonestResult is one honest player's outcome.
type HonestResult struct {
	Player   int
	Probes   int
	Rounds   int // round at which the player halted (or MaxRounds)
	Found    bool
	TimedOut bool
	Departed bool // left via Drive.Dynamics before finding an object
}

// RunHonestPlayer connects to the billboard server at addr and runs DISTILL
// for one player until it probes a good object (local testing) or maxRounds
// elapse. The player's randomness derives from seed alone.
func RunHonestPlayer(addr string, player int, token string, params core.Params, seed uint64, maxRounds int) (*HonestResult, error) {
	return runHonestPlayer(addr, player, token, params, seed, maxRounds, client.Options{})
}

func runHonestPlayer(addr string, player int, token string, params core.Params, seed uint64, maxRounds int, opt client.Options) (*HonestResult, error) {
	c, err := client.DialOptions(addr, player, token, opt)
	if err != nil {
		return nil, err
	}
	defer c.Close()

	cached := client.NewCached(c)
	d := core.NewDistill(params)
	if err := d.Init(sim.Setup{
		N:        c.N(),
		Alpha:    c.Alpha(),
		Beta:     c.Beta(),
		Universe: c,
		Board:    cached, // per-round read cache over the RPC reader
		Rng:      rng.New(seed).Split(uint64(player)),
	}); err != nil {
		return nil, fmt.Errorf("dist: player %d init: %w", player, err)
	}

	res := &HonestResult{Player: player}
	var probeBuf []sim.Probe
	var batch []client.BatchPost
	for round := 0; round < maxRounds; round++ {
		probeBuf = d.Probes(round, []int{player}, probeBuf[:0])
		found := false
		batch = batch[:0]
		for _, pr := range probeBuf {
			pres, err := c.Probe(pr.Object)
			if err != nil {
				return nil, fmt.Errorf("dist: player %d probe: %w", player, err)
			}
			res.Probes++
			positive := c.LocalTesting() && pres.Good
			batch = append(batch, client.BatchPost{Object: pr.Object, Value: pres.Value, Positive: positive})
			if positive {
				found = true
			}
		}
		// Protocol v3: the round's posts and its barrier travel in one
		// frame, so the round costs O(1) frames regardless of probe count.
		if _, err := c.PostBatch(batch, true); err != nil {
			return nil, fmt.Errorf("dist: player %d post-batch barrier: %w", player, err)
		}
		cached.Invalidate() // board state changed at the round boundary
		// The Reader methods behind DISTILL cannot return errors; surface
		// any transport failure they recorded before trusting this round's
		// advice-driven decisions.
		if err := c.Err(); err != nil {
			return nil, fmt.Errorf("dist: player %d board read: %w", player, err)
		}
		if found {
			res.Found = true
			res.Rounds = round + 1
			if err := c.Done(); err != nil {
				return nil, fmt.Errorf("dist: player %d done: %w", player, err)
			}
			return res, nil
		}
	}
	res.Rounds = maxRounds
	res.TimedOut = true
	_ = c.Done()
	return res, nil
}

// RunByzantineSpam connects as a dishonest player that probes one bad
// object, lies that it is good, and then idles through barriers until stop
// closes (or the server hangs up).
func RunByzantineSpam(addr string, player int, token string, stop <-chan struct{}) error {
	return runByzantineSpam(addr, player, token, stop, client.Options{})
}

func runByzantineSpam(addr string, player int, token string, stop <-chan struct{}, opt client.Options) error {
	c, err := client.DialOptions(addr, player, token, opt)
	if err != nil {
		return err
	}
	defer c.Close()

	// Pick a target: scan from a player-dependent offset for a bad object
	// (Byzantine players know the world in the worst case; here they learn
	// by probing, which is free to them in spirit — the engine's accounting
	// only matters for honest costs).
	target := -1
	for i := 0; i < c.M(); i++ {
		obj := (player*31 + i) % c.M()
		pres, err := c.Probe(obj)
		if err != nil {
			return err
		}
		if !pres.Good {
			target = obj
			break
		}
	}
	if target >= 0 {
		if err := c.Post(target, 1, true); err != nil {
			return err
		}
	}
	for {
		select {
		case <-stop:
			return c.Done()
		default:
		}
		if _, err := c.Barrier(); err != nil {
			// Server closed or we were kicked: either way we are finished.
			return nil
		}
	}
}

// Topology shapes the billboard service the players run against: the
// object-id shard partition and the coordinator replica group.
type Topology struct {
	// Shards partitions the billboard by object id into this many
	// independent shard lanes (see server.Config.Shards); clients batch and
	// pipeline their posts per shard automatically. 0 or 1 is the classic
	// single-board server.
	Shards int
	// Replicas, when > 1, runs the coordinator as a replica group of this
	// size (odd, >= 3; see server.StartReplica) instead of a single server:
	// the leader quorum-commits every round into the group before clients
	// observe it, and a follower takes over if the leader dies. Requires
	// PersistDir (each member journals under its own subdirectory). 0 or 1
	// is the classic single coordinator — same code path, byte-identical
	// behavior.
	Replicas int
	// ReplicaQuorum overrides the commit quorum (default: majority).
	ReplicaQuorum int
}

// Chaos schedules a run's fault machinery: deterministic transport fault
// injection and the kill/restart hooks. The zero value is a fault-free run.
type Chaos struct {
	// Fault, when non-nil, injects deterministic transport faults (drops,
	// delays, torn writes, partitions) into every client connection via
	// internal/faultnet. Pair it with a SessionGrace so dropped players can
	// resume, and Client retry knobs sized for the injection rate.
	Fault *faultnet.Config
	// KillAtRound, when > 0, kills the server the moment its round counter
	// reaches this value — mid-round, with clients in flight — and restarts
	// it from PersistDir on the same address. The crash-recovery chaos
	// hook: honest players must ride through it on session resume alone.
	KillAtRound int
	// KillShardAtRound, when > 0, kills one shard lane (index 1) the moment
	// the round counter reaches this value and restarts it from its
	// per-shard store shortly after — the partial-failure chaos hook: posts
	// and reads for that shard's objects stall and resume, every other
	// shard keeps serving. Requires Topology.Shards > 1 and PersistDir;
	// mutually exclusive with KillAtRound (a whole-server restart would
	// race the shard bounce).
	KillShardAtRound int
	// KillLeaderAtRound, when > 0, crash-stops the replica-group leader the
	// moment its committed round counter reaches this value — mid-round,
	// with clients in flight. The failover chaos hook: the survivors elect
	// a new leader which replays the quorum-committed prefix, discards the
	// uncommitted tail, and serves the retried requests. Requires
	// Topology.Replicas > 1; composable with KillShardAtRound in the same
	// round.
	KillLeaderAtRound int
}

// Drive selects how the honest fleet is driven against the service. The
// zero value is the classic goroutine-and-connection per player.
type Drive struct {
	// Swarm drives every honest player through one event-loop scheduler
	// (internal/swarm) multiplexed onto a few pipelined connections instead
	// of a goroutine and TCP connection per player. The swarm path is
	// digest-identical to the per-player path — same player streams, same
	// per-round probe/post/barrier ordering, same halt rule — while scaling
	// to player counts no goroutine fleet can reach.
	Swarm bool
	// SwarmGroups, SwarmChunk, and SwarmWindow forward to swarm.Config
	// (connection groups, frame batch size, pipelining window); zero takes
	// the swarm defaults (4, 4096, 8).
	SwarmGroups int
	SwarmChunk  int
	SwarmWindow int
	// Dynamics, when non-nil, opens the world: honest arrivals and
	// departures flow through the hook at round boundaries (see
	// sim.Dynamics and swarm.Config.Dynamics). Requires Swarm — the
	// goroutine-per-player fleet has no round-aligned point to inject
	// membership changes deterministically, the event-loop driver does.
	Dynamics sim.Dynamics
}

// ClusterConfig describes a full distributed run on localhost: the world
// and fleet sizes flat, the service shape under Topology, the fault
// machinery under Chaos, and the fleet driver under Drive. Callers holding
// the historical flat shape can convert through FlatClusterConfig.
type ClusterConfig struct {
	// Universe is the ground truth (required, local testing).
	Universe *object.Universe
	// Honest and Byzantine are player counts (honest >= 1).
	Honest    int
	Byzantine int
	// Params parameterizes every honest player's DISTILL.
	Params core.Params
	// Seed drives all randomness (tokens, player streams).
	Seed uint64
	// MaxRounds bounds each honest player (default 4096).
	MaxRounds int

	// SessionGrace and BarrierDeadline configure the server's fault
	// tolerance (see server.Config).
	SessionGrace    time.Duration
	BarrierDeadline time.Duration
	// Mode selects the server's operation mode: server.ModeSync runs the
	// classic round barrier, server.ModeEpoch replaces it with lamport-paced
	// epochs (see server.Config.Mode). Incompatible with BarrierDeadline.
	Mode server.Mode
	// EpochTick, in epoch mode, seals epochs on a wall clock so stragglers
	// cannot stall the cluster (see server.Config.EpochTick).
	EpochTick time.Duration
	// PersistDir, when non-empty, runs the server durably: a journal.Store
	// in that directory records every state change, and a restart recovers
	// from it (see server.Config.Persist). Required for Chaos.KillAtRound.
	PersistDir string
	// SnapshotEvery rotates the persist store every k committed rounds
	// (see server.Config.SnapshotEvery).
	SnapshotEvery int

	// Topology shapes the service (shards, replica group).
	Topology Topology
	// Chaos schedules fault injection and kill/restart hooks.
	Chaos Chaos
	// Drive selects the honest-fleet driver (per-player goroutines or the
	// swarm scheduler).
	Drive Drive

	// Client tunes every player's retry/backoff/deadline behavior.
	Client client.Options
	// Logf receives server operational events (resume, lease expiry,
	// force-done); nil discards them.
	Logf func(format string, args ...any)
}

// FlatClusterConfig is the historical flat shape of ClusterConfig, kept as
// a compatibility constructor: Cluster folds the flat flags into the
// Topology/Chaos/Drive sub-structs.
//
// Deprecated: build ClusterConfig directly with its Topology, Chaos, and
// Drive sub-structs. The flat shape predates those groupings, cannot
// express the newer knobs (Mode, EpochTick, Drive.*), and will not grow
// new fields.
type FlatClusterConfig struct {
	Universe          *object.Universe
	Honest            int
	Byzantine         int
	Params            core.Params
	Seed              uint64
	MaxRounds         int
	Fault             *faultnet.Config
	SessionGrace      time.Duration
	BarrierDeadline   time.Duration
	PersistDir        string
	SnapshotEvery     int
	KillAtRound       int
	Shards            int
	KillShardAtRound  int
	Replicas          int
	ReplicaQuorum     int
	KillLeaderAtRound int
	Client            client.Options
	Logf              func(format string, args ...any)
}

// Cluster converts the flat shape into the structured ClusterConfig.
//
// Deprecated: migration shim for FlatClusterConfig holders; build
// ClusterConfig directly.
func (f FlatClusterConfig) Cluster() ClusterConfig {
	return ClusterConfig{
		Universe:        f.Universe,
		Honest:          f.Honest,
		Byzantine:       f.Byzantine,
		Params:          f.Params,
		Seed:            f.Seed,
		MaxRounds:       f.MaxRounds,
		SessionGrace:    f.SessionGrace,
		BarrierDeadline: f.BarrierDeadline,
		PersistDir:      f.PersistDir,
		SnapshotEvery:   f.SnapshotEvery,
		Topology: Topology{
			Shards:        f.Shards,
			Replicas:      f.Replicas,
			ReplicaQuorum: f.ReplicaQuorum,
		},
		Chaos: Chaos{
			Fault:             f.Fault,
			KillAtRound:       f.KillAtRound,
			KillShardAtRound:  f.KillShardAtRound,
			KillLeaderAtRound: f.KillLeaderAtRound,
		},
		Client: f.Client,
		Logf:   f.Logf,
	}
}

// ClusterResult aggregates a distributed run.
type ClusterResult struct {
	Honest     []*HonestResult
	Rounds     int // server round count at teardown
	AllFound   bool
	// Departed counts honest players that left via Drive.Dynamics without
	// finding an object (they also clear AllFound).
	Departed   int
	MeanProbes float64
	// ServerProbes is the per-player probe count as charged by the server.
	// For honest players it equals HonestResult.Probes exactly when no
	// retried probe was double-charged — the dedup invariant the chaos
	// tests pin.
	ServerProbes []int
	// BoardDigest is the canonical digest of the final committed billboard
	// (see billboard.Digest): byte-identical across runs that committed the
	// same posts in the same rounds, faults or not.
	BoardDigest []byte
	// Restarts counts server kill/restart cycles performed (KillAtRound).
	Restarts int
	// ShardRestarts counts shard lane kill/restart cycles performed
	// (KillShardAtRound).
	ShardRestarts int
	// Failovers counts leaders crash-stopped by KillLeaderAtRound; each one
	// forced a quorum takeover by a surviving replica.
	Failovers int
}

// RunCluster starts a billboard server on a loopback port, runs all players
// as concurrent TCP clients, and tears everything down.
func RunCluster(cfg ClusterConfig) (*ClusterResult, error) {
	if cfg.Universe == nil {
		return nil, fmt.Errorf("dist: Universe is required")
	}
	if cfg.Honest < 1 {
		return nil, fmt.Errorf("dist: need at least one honest player")
	}
	if cfg.Drive.Dynamics != nil && !cfg.Drive.Swarm {
		return nil, fmt.Errorf("dist: Drive.Dynamics requires Drive.Swarm")
	}
	if cfg.Topology.Replicas > 1 {
		return runReplicated(cfg)
	}
	if cfg.Chaos.KillLeaderAtRound > 0 {
		return nil, fmt.Errorf("dist: KillLeaderAtRound requires Topology.Replicas > 1")
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = 4096
	}
	n := cfg.Honest + cfg.Byzantine
	tokens := make([]string, n)
	tokenRng := rng.NewPartition(cfg.Seed).Stream(rng.StreamTokens)
	for i := range tokens {
		tokens[i] = fmt.Sprintf("tok-%d-%016x", i, tokenRng.Uint64())
	}
	swarmToken := fmt.Sprintf("swarm-%016x", tokenRng.Uint64())
	if cfg.Chaos.KillAtRound > 0 && cfg.PersistDir == "" {
		return nil, fmt.Errorf("dist: KillAtRound requires PersistDir")
	}
	if cfg.Chaos.KillShardAtRound > 0 {
		if cfg.Topology.Shards < 2 {
			return nil, fmt.Errorf("dist: KillShardAtRound requires Topology.Shards > 1")
		}
		if cfg.PersistDir == "" {
			return nil, fmt.Errorf("dist: KillShardAtRound requires PersistDir")
		}
		if cfg.Chaos.KillAtRound > 0 {
			return nil, fmt.Errorf("dist: KillShardAtRound and KillAtRound are mutually exclusive")
		}
	}
	// newServer builds one server generation; with a PersistDir each
	// generation recovers from (and journals into) the same store, which is
	// what makes kill/restart cycles transparent to the players.
	newServer := func() (*server.Server, *journal.Store, error) {
		sc := server.Config{
			Universe:        cfg.Universe,
			Tokens:          tokens,
			Alpha:           float64(cfg.Honest) / float64(n),
			Beta:            cfg.Universe.Beta(),
			SessionGrace:    cfg.SessionGrace,
			BarrierDeadline: cfg.BarrierDeadline,
			Mode:            cfg.Mode,
			EpochTick:       cfg.EpochTick,
			Shards:          cfg.Topology.Shards,
			SwarmToken:      swarmToken,
			Logf:            cfg.Logf,
		}
		if cfg.PersistDir != "" {
			st, err := journal.OpenStore(cfg.PersistDir, journal.SyncCommit)
			if err != nil {
				return nil, nil, err
			}
			sc.Persist = st
			sc.SnapshotEvery = cfg.SnapshotEvery
		}
		srv, err := server.New(sc)
		if err != nil {
			if sc.Persist != nil {
				sc.Persist.Close()
			}
			return nil, nil, err
		}
		return srv, sc.Persist, nil
	}
	srv, store, err := newServer()
	if err != nil {
		return nil, err
	}
	// current guards the live server generation: the watcher swaps it at a
	// restart; teardown and final stats always address the newest one.
	var srvMu sync.Mutex
	closeCurrent := func() {
		srvMu.Lock()
		cs, cst := srv, store
		srvMu.Unlock()
		cs.Close()
		if cst != nil {
			cst.Close()
		}
	}
	addr, err := srv.Start("")
	if err != nil {
		closeCurrent()
		return nil, err
	}
	defer closeCurrent()

	// KillAtRound watcher: the moment the round counter reaches the target,
	// the server is torn down with every connection in flight (the
	// in-process stand-in for kill -9: no goodbye, no extra journal state
	// beyond what the WAL already holds) and a fresh generation recovers
	// from the persist dir onto the same address.
	restarts := 0
	var restartErr error
	watcherStop := make(chan struct{})
	watcherDone := make(chan struct{})
	if cfg.Chaos.KillAtRound > 0 {
		go func() {
			defer close(watcherDone)
			for {
				select {
				case <-watcherStop:
					return
				case <-time.After(2 * time.Millisecond):
				}
				srvMu.Lock()
				cs := srv
				srvMu.Unlock()
				if cs.Round() < cfg.Chaos.KillAtRound {
					continue
				}
				closeCurrent()
				nsrv, nst, err := newServer()
				if err == nil {
					var ln net.Listener
					// The freed port can linger briefly; Go listeners set
					// SO_REUSEADDR, so a short retry loop suffices.
					for i := 0; i < 400; i++ {
						ln, err = net.Listen("tcp", addr)
						if err == nil {
							break
						}
						time.Sleep(5 * time.Millisecond)
					}
					if err == nil {
						nsrv.Serve(ln)
						srvMu.Lock()
						srv, store = nsrv, nst
						srvMu.Unlock()
						restarts++
						return
					}
					nsrv.Close()
					if nst != nil {
						nst.Close()
					}
				}
				restartErr = fmt.Errorf("dist: server restart: %w", err)
				return
			}
		}()
	} else {
		close(watcherDone)
	}

	// KillShardAtRound watcher: one shard lane is torn down mid-run — its
	// board, pending posts, and lane sessions dropped, its store closed —
	// and rebuilt from its per-shard journal while every other shard keeps
	// serving. Lane traffic for the dead shard stalls (dropped connections,
	// client retries) and resumes transparently after the restart.
	shardRestarts := 0
	var shardErr error
	shardStop := make(chan struct{})
	shardDone := make(chan struct{})
	if cfg.Chaos.KillShardAtRound > 0 {
		go func() {
			defer close(shardDone)
			const victim = 1
			for {
				select {
				case <-shardStop:
					return
				case <-time.After(2 * time.Millisecond):
				}
				if srv.Round() < cfg.Chaos.KillShardAtRound {
					continue
				}
				if err := srv.KillShard(victim); err != nil {
					shardErr = fmt.Errorf("dist: kill shard: %w", err)
					return
				}
				time.Sleep(10 * time.Millisecond)
				if err := srv.RestartShard(victim); err != nil {
					shardErr = fmt.Errorf("dist: restart shard: %w", err)
					return
				}
				shardRestarts++
				return
			}
		}()
	} else {
		close(shardDone)
	}

	// Per-player client options; with fault injection each player's dialer
	// carries its own deterministic fault stream (label = player id), so
	// the chaos schedule is reproducible from Fault.Seed alone.
	playerOptions := func(player int) (client.Options, error) {
		opt := cfg.Client
		if cfg.Chaos.Fault != nil {
			inj, err := faultnet.New(*cfg.Chaos.Fault)
			if err != nil {
				return opt, err
			}
			opt.Dialer = inj.Dialer(uint64(player), opt.Dialer)
		}
		return opt, nil
	}
	// One injector shared across players would serialize ordinal counting
	// on a mutex but still be deterministic per label; per-player injectors
	// make the independence explicit.

	stop := make(chan struct{})
	var byzWG sync.WaitGroup
	for b := 0; b < cfg.Byzantine; b++ {
		player := cfg.Honest + b
		opt, err := playerOptions(player)
		if err != nil {
			return nil, err
		}
		byzWG.Add(1)
		go func(player int, opt client.Options) {
			defer byzWG.Done()
			_ = runByzantineSpam(addr, player, tokens[player], stop, opt)
		}(player, opt)
	}

	results, honestErr := runHonestFleet(&cfg, addr, tokens, swarmToken, playerOptions)
	close(stop)
	byzWG.Wait()
	close(watcherStop)
	<-watcherDone
	close(shardStop)
	<-shardDone
	if restartErr != nil {
		return nil, restartErr
	}
	if shardErr != nil {
		return nil, shardErr
	}
	if honestErr != nil {
		return nil, honestErr
	}
	srvMu.Lock()
	final := srv
	srvMu.Unlock()
	out := &ClusterResult{Honest: results, AllFound: true, Restarts: restarts, ShardRestarts: shardRestarts}
	sProbes, _, _, _ := final.Stats()
	out.ServerProbes = sProbes
	out.BoardDigest = final.Digest()
	total := 0
	for _, r := range results {
		if !r.Found {
			out.AllFound = false
		}
		if r.Departed {
			out.Departed++
		}
		total += r.Probes
		if r.Rounds > out.Rounds {
			out.Rounds = r.Rounds
		}
	}
	out.MeanProbes = float64(total) / float64(len(results))
	return out, nil
}

// runHonestFleet drives every honest player to completion and returns their
// results in player order. The classic path is a goroutine and TCP
// connection per player; with Drive.Swarm set, the whole fleet runs through
// one swarm event-loop driver over a few pipelined connections —
// digest-identical, asserted by the swarm parity tests. The swarm transport
// gets the fault dialer under label n (one past the last player id), so its
// chaos schedule is deterministic and disjoint from every per-player stream.
func runHonestFleet(cfg *ClusterConfig, addr string, tokens []string, swarmToken string,
	playerOptions func(player int) (client.Options, error)) ([]*HonestResult, error) {
	if cfg.Drive.Swarm {
		opt, err := playerOptions(cfg.Honest + cfg.Byzantine)
		if err != nil {
			return nil, err
		}
		res, err := swarm.Run(context.Background(), swarm.Config{
			Addr:      addr,
			Fallbacks: opt.Fallbacks,
			From:      0,
			To:        cfg.Honest,
			Token:     swarmToken,
			Params:    cfg.Params,
			Seed:      cfg.Seed,
			MaxRounds: cfg.MaxRounds,
			Groups:    cfg.Drive.SwarmGroups,
			Chunk:     cfg.Drive.SwarmChunk,
			Window:    cfg.Drive.SwarmWindow,
			Dynamics:  cfg.Drive.Dynamics,
			Client:    opt,
			Metrics:   opt.Metrics,
			Logf:      cfg.Logf,
		})
		if err != nil {
			return nil, err
		}
		results := make([]*HonestResult, cfg.Honest)
		for i := range res.Players {
			pr := &res.Players[i]
			results[i] = &HonestResult{
				Player:   pr.Player,
				Probes:   pr.Probes,
				Rounds:   pr.Rounds,
				Found:    pr.Found,
				TimedOut: pr.TimedOut,
				Departed: pr.Departed,
			}
		}
		return results, nil
	}
	results := make([]*HonestResult, cfg.Honest)
	errs := make([]error, cfg.Honest)
	var wg sync.WaitGroup
	for p := 0; p < cfg.Honest; p++ {
		opt, err := playerOptions(p)
		if err != nil {
			return nil, err
		}
		wg.Add(1)
		go func(p int, opt client.Options) {
			defer wg.Done()
			results[p], errs[p] = runHonestPlayer(addr, p, tokens[p], cfg.Params, cfg.Seed, cfg.MaxRounds, opt)
		}(p, opt)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
