package dist

// Open-world swarm tests: Drive.Dynamics injects arrivals and departures at
// round boundaries, purely driver-side. The acceptance bar is determinism —
// the same (schedule, seed) must commit a byte-identical billboard digest
// across runs, regardless of connection scheduling — plus the barrier
// liveness property that a group with zero ACTIVE members but registered
// spectators still paces the round.

import (
	"bytes"
	"testing"

	"repro/internal/server"
)

// rampDynamics arrives players one per round in id order until all are in,
// and departs listed players at fixed rounds.
type rampDynamics struct {
	n       int         // players 0..n-1 arrive at rounds 0..n-1
	departs map[int]int // player -> departure round
}

func (d *rampDynamics) BeginRound(round int, active []int) (arrive, depart []int) {
	if round < d.n {
		arrive = []int{round}
	}
	for p, r := range d.departs {
		if r == round {
			depart = append(depart, p)
		}
	}
	return arrive, depart
}

func (d *rampDynamics) EndRound(round int) error { return nil }
func (d *rampDynamics) Idle(round int) bool      { return round >= d.n }

func TestSwarmDynamicsDeterministicDigest(t *testing.T) {
	run := func() *ClusterResult {
		cfg := chaosBase(t)
		cfg.Drive.Swarm = true
		cfg.Drive.SwarmGroups = 3 // uneven split: groups go empty at times
		cfg.Drive.Dynamics = &rampDynamics{n: 8, departs: map[int]int{2: 4, 5: 6}}
		res, err := RunCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !bytes.Equal(a.BoardDigest, b.BoardDigest) {
		t.Fatalf("open-world swarm digest not reproducible:\n a %x\n b %x", a.BoardDigest, b.BoardDigest)
	}
	for i := range a.Honest {
		if *a.Honest[i] != *b.Honest[i] {
			t.Fatalf("player %d results differ across identical runs: %+v vs %+v",
				i, a.Honest[i], b.Honest[i])
		}
	}
}

func TestSwarmDynamicsDepartedPlayersStopProbing(t *testing.T) {
	cfg := chaosBase(t)
	cfg.MaxRounds = 6
	cfg.Drive.Swarm = true
	cfg.Drive.SwarmGroups = 2
	// Players 0 and 1 (arrivals at rounds 0 and 1) depart after one round
	// of play each; the rest ride to found/timeout.
	cfg.Drive.Dynamics = &rampDynamics{n: 8, departs: map[int]int{0: 1, 1: 2}}
	res, err := RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Departed != 2 {
		t.Fatalf("Departed = %d, want 2", res.Departed)
	}
	for p, wantRound := range map[int]int{0: 1, 1: 2} {
		hr := res.Honest[p]
		if !hr.Departed {
			t.Fatalf("player %d not marked departed: %+v", p, hr)
		}
		if hr.Found || hr.TimedOut {
			t.Fatalf("departed player %d also found/timed out: %+v", p, hr)
		}
		if hr.Rounds != wantRound {
			t.Fatalf("departed player %d played to round %d, want %d", p, hr.Rounds, wantRound)
		}
		if hr.Probes > 1 {
			t.Fatalf("departed player %d made %d probes in one round of play", p, hr.Probes)
		}
	}
	if res.AllFound {
		t.Fatal("AllFound despite departures")
	}
}

// TestSwarmDynamicsEmptyGroupPacesBarrier pins the liveness fix: with a
// late-arrival schedule, some groups hold zero active members for the first
// rounds while other groups' players probe — the empty groups must still
// arrive their barriers or the cluster deadlocks. A completed run IS the
// assertion (a regression hangs and trips the test timeout).
func TestSwarmDynamicsEmptyGroupPacesBarrier(t *testing.T) {
	cfg := chaosBase(t)
	cfg.Drive.Swarm = true
	cfg.Drive.SwarmGroups = 4
	// Player 0 (group 0) arrives alone at round 0; groups 1-3 stay
	// spectator-only until rounds 2, 4, 6 bring their first members.
	cfg.Drive.Dynamics = &rampDynamics{n: 8}
	res, err := RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Departed != 0 {
		t.Fatalf("unexpected departures: %d", res.Departed)
	}
}

func TestSwarmDynamicsEpochMode(t *testing.T) {
	run := func() *ClusterResult {
		cfg := chaosBase(t)
		cfg.Mode = server.ModeEpoch
		cfg.Drive.Swarm = true
		cfg.Drive.SwarmGroups = 2
		cfg.Drive.Dynamics = &rampDynamics{n: 8, departs: map[int]int{3: 5}}
		res, err := RunCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !bytes.Equal(a.BoardDigest, b.BoardDigest) {
		t.Fatalf("epoch-mode open-world digest not reproducible:\n a %x\n b %x", a.BoardDigest, b.BoardDigest)
	}
}

func TestSwarmDynamicsRequiresSwarm(t *testing.T) {
	cfg := chaosBase(t)
	cfg.Drive.Dynamics = &rampDynamics{n: 8}
	if _, err := RunCluster(cfg); err == nil {
		t.Fatal("Dynamics without Drive.Swarm did not error")
	}
}
