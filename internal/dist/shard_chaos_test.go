package dist

// Sharded-cluster chaos tests. The acceptance bar matches the other chaos
// suites and the paper's synchrony contract: a sharded run — even one that
// loses and recovers a shard lane mid-search, even under transport fault
// injection — must converge to the very same committed billboard as the
// fault-free single-shard run on the same seed, with every probe charged
// exactly once.

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/faultnet"
)

// assertMatchesClean pins the full equivalence bar between a sharded run
// and the fault-free single-shard baseline.
func assertMatchesClean(t *testing.T, clean, got *ClusterResult, label string) {
	t.Helper()
	if !got.AllFound {
		t.Fatalf("%s cluster did not finish", label)
	}
	for i, r := range got.Honest {
		if r.Probes != clean.Honest[i].Probes {
			t.Errorf("player %d: %d probes %s, %d clean", i, r.Probes, label, clean.Honest[i].Probes)
		}
		if r.Rounds != clean.Honest[i].Rounds {
			t.Errorf("player %d: halted in round %d %s, %d clean", i, r.Rounds, label, clean.Honest[i].Rounds)
		}
		if got.ServerProbes[i] != r.Probes {
			t.Errorf("player %d: server charged %d probes, client performed %d (double charge)",
				i, got.ServerProbes[i], r.Probes)
		}
	}
	if !bytes.Equal(got.BoardDigest, clean.BoardDigest) {
		t.Fatalf("billboard diverged (%s):\nclean:\n%s\ngot:\n%s", label, clean.BoardDigest, got.BoardDigest)
	}
}

// TestChaosShardedMatchesSingleShard runs the same cluster on a 1-shard and
// a 4-shard server: identical per-player outcomes and a byte-identical
// final billboard digest, with the posts scattered over four lanes and
// committed through the global admission pass.
func TestChaosShardedMatchesSingleShard(t *testing.T) {
	clean, err := RunCluster(chaosBase(t))
	if err != nil {
		t.Fatal(err)
	}
	if !clean.AllFound {
		t.Fatal("fault-free cluster did not finish")
	}

	sharded := chaosBase(t)
	sharded.Topology.Shards = 4
	got, err := RunCluster(sharded)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesClean(t, clean, got, "sharded")
}

// TestChaosShardKillRestartMatchesFaultFree is the partial-failure
// acceptance test: one shard lane is killed mid-search — its board and
// pending posts dropped, its store closed — and rebuilt from its per-shard
// journal while the rest of the cluster keeps running. Round commits stall
// on the shard barrier until the lane is back; the run must still be
// observably identical to the fault-free single-shard baseline.
func TestChaosShardKillRestartMatchesFaultFree(t *testing.T) {
	clean, err := RunCluster(chaosBase(t))
	if err != nil {
		t.Fatal(err)
	}
	if !clean.AllFound {
		t.Fatal("fault-free cluster did not finish")
	}

	crash := chaosBase(t)
	crash.Topology.Shards = 4
	crash.PersistDir = t.TempDir()
	crash.SnapshotEvery = 3
	crash.Chaos.KillShardAtRound = 2
	crash.SessionGrace = 10 * time.Second
	crash.BarrierDeadline = 30 * time.Second // must never fire here
	crash.Client = client.Options{
		Retries: 24, BackoffBase: time.Millisecond, BackoffMax: 20 * time.Millisecond,
		CallTimeout: 10 * time.Second,
	}
	crash.Logf = t.Logf
	got, err := RunCluster(crash)
	if err != nil {
		t.Fatal(err)
	}
	if got.ShardRestarts != 1 {
		t.Fatalf("expected exactly one shard restart, got %d", got.ShardRestarts)
	}
	assertMatchesClean(t, clean, got, "across shard restart")
}

// TestChaosShardedUnderFaultInjection layers transport fault injection over
// the sharded data plane: lane frames drop, stall, and tear alongside the
// primary's, so per-lane retry and session resume must compose with the
// scatter-gather pipeline. Digest and ledger must still match the
// fault-free single-shard run.
func TestChaosShardedUnderFaultInjection(t *testing.T) {
	clean, err := RunCluster(chaosBase(t))
	if err != nil {
		t.Fatal(err)
	}

	chaos := chaosBase(t)
	chaos.Topology.Shards = 4
	chaos.Chaos.Fault = &faultnet.Config{
		Seed:     29,
		Drop:     0.04,
		Delay:    0.04,
		Tear:     0.03, // 11% total injection per I/O operation
		MaxDelay: 2 * time.Millisecond,
	}
	chaos.SessionGrace = 10 * time.Second
	chaos.BarrierDeadline = 30 * time.Second
	chaos.Client = client.Options{
		Retries: 24, BackoffBase: time.Millisecond, BackoffMax: 20 * time.Millisecond,
		CallTimeout: 10 * time.Second,
	}
	got, err := RunCluster(chaos)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesClean(t, clean, got, "sharded under faults")
}
