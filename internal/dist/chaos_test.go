package dist

// Chaos tests: full DISTILL searches through deterministic fault injection.
// The acceptance bar is exact — a faulty run must converge to the very same
// committed billboard as the fault-free run on the same seed, with every
// probe charged exactly once.

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/object"
	"repro/internal/rng"
)

func chaosBase(t *testing.T) ClusterConfig {
	t.Helper()
	u, err := object.NewPlanted(object.Planted{M: 48, Good: 2}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	return ClusterConfig{
		Universe:  u,
		Honest:    8,
		Params:    core.Params{},
		Seed:      42,
		MaxRounds: 400,
	}
}

// TestChaosClusterMatchesFaultFree runs the same cluster twice — once clean,
// once through ≥10% fault injection (drops, delays, torn writes) — and
// requires identical outcomes: same per-player probe counts, zero
// double-charged probes, and a byte-identical final billboard digest.
func TestChaosClusterMatchesFaultFree(t *testing.T) {
	clean, err := RunCluster(chaosBase(t))
	if err != nil {
		t.Fatal(err)
	}
	if !clean.AllFound {
		t.Fatal("fault-free cluster did not finish")
	}

	chaos := chaosBase(t)
	chaos.Chaos.Fault = &faultnet.Config{
		Seed:     7,
		Drop:     0.04,
		Delay:    0.04,
		Tear:     0.03, // 11% total injection per I/O operation
		MaxDelay: 2 * time.Millisecond,
	}
	chaos.SessionGrace = 10 * time.Second
	chaos.BarrierDeadline = 30 * time.Second // generous: must never fire here
	chaos.Client = client.Options{
		Retries: 16, BackoffBase: time.Millisecond, BackoffMax: 20 * time.Millisecond,
		CallTimeout: 10 * time.Second,
	}
	faulty, err := RunCluster(chaos)
	if err != nil {
		t.Fatal(err)
	}
	if !faulty.AllFound {
		t.Fatal("chaos cluster did not finish")
	}

	// Same search, fault by fault: every player pays exactly what it paid in
	// the clean run…
	for i, r := range faulty.Honest {
		if r.Probes != clean.Honest[i].Probes {
			t.Errorf("player %d: %d probes under chaos, %d clean",
				i, r.Probes, clean.Honest[i].Probes)
		}
		if r.Rounds != clean.Honest[i].Rounds {
			t.Errorf("player %d: halted in round %d under chaos, %d clean",
				i, r.Rounds, clean.Honest[i].Rounds)
		}
	}
	// …and the server's books agree with the clients': a retried probe that
	// was executed-but-unanswered must not be charged twice.
	for i, r := range faulty.Honest {
		if faulty.ServerProbes[i] != r.Probes {
			t.Errorf("player %d: server charged %d probes, client performed %d (double charge)",
				i, faulty.ServerProbes[i], r.Probes)
		}
	}
	if !bytes.Equal(faulty.BoardDigest, clean.BoardDigest) {
		t.Fatalf("final billboards diverged:\nclean:\n%s\nchaos:\n%s",
			clean.BoardDigest, faulty.BoardDigest)
	}
}

// TestChaosBatchedRoundsExactlyOnce is the protocol-v3 regression: the whole
// round travels as one PostBatch frame (posts + barrier under a single seq
// number), so a dropped or torn frame forces the client to retry the entire
// batch — and the server's dedup must replay the recorded response instead of
// re-applying the posts. At >13% injection per I/O operation, retried batches
// are common; the run must still produce a billboard byte-identical to the
// fault-free run and charge every probe exactly once.
func TestChaosBatchedRoundsExactlyOnce(t *testing.T) {
	clean, err := RunCluster(chaosBase(t))
	if err != nil {
		t.Fatal(err)
	}

	chaos := chaosBase(t)
	chaos.Chaos.Fault = &faultnet.Config{
		Seed:     19,
		Drop:     0.06,
		Delay:    0.04,
		Tear:     0.04, // 14% total injection per I/O operation
		MaxDelay: 2 * time.Millisecond,
	}
	chaos.SessionGrace = 10 * time.Second
	chaos.BarrierDeadline = 30 * time.Second
	chaos.Client = client.Options{
		Retries: 24, BackoffBase: time.Millisecond, BackoffMax: 20 * time.Millisecond,
		CallTimeout: 10 * time.Second,
	}
	faulty, err := RunCluster(chaos)
	if err != nil {
		t.Fatal(err)
	}
	if !faulty.AllFound {
		t.Fatal("batched chaos cluster did not finish")
	}
	if !bytes.Equal(faulty.BoardDigest, clean.BoardDigest) {
		t.Fatalf("batched run diverged from fault-free billboard:\nclean:\n%s\nchaos:\n%s",
			clean.BoardDigest, faulty.BoardDigest)
	}
	// A re-applied batch would double-post votes (caught by the digest) and a
	// re-executed probe would double-charge (caught here).
	for i, r := range faulty.Honest {
		if faulty.ServerProbes[i] != r.Probes {
			t.Errorf("player %d: server charged %d probes, client performed %d (double charge)",
				i, faulty.ServerProbes[i], r.Probes)
		}
		if r.Probes != clean.Honest[i].Probes {
			t.Errorf("player %d: %d probes under chaos, %d clean", i, r.Probes, clean.Honest[i].Probes)
		}
	}
}

// TestChaosServerKillRestartMatchesFaultFree is the durability acceptance
// test: the server is torn down mid-round — every connection dropped with
// requests in flight — and restarted from its persist dir (snapshot +
// write-ahead journal). Honest players must ride through on session resume
// alone, and the run must be observably identical to the fault-free one:
// same per-player probe counts and rounds, zero double-charged probes, and
// a byte-identical final billboard digest.
func TestChaosServerKillRestartMatchesFaultFree(t *testing.T) {
	clean, err := RunCluster(chaosBase(t))
	if err != nil {
		t.Fatal(err)
	}
	if !clean.AllFound {
		t.Fatal("fault-free cluster did not finish")
	}

	crash := chaosBase(t)
	crash.PersistDir = t.TempDir()
	crash.SnapshotEvery = 3
	crash.Chaos.KillAtRound = 2
	crash.SessionGrace = 10 * time.Second
	crash.BarrierDeadline = 30 * time.Second // must never fire here
	crash.Client = client.Options{
		Retries: 24, BackoffBase: time.Millisecond, BackoffMax: 20 * time.Millisecond,
		CallTimeout: 10 * time.Second,
	}
	crash.Logf = t.Logf
	faulty, err := RunCluster(crash)
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Restarts != 1 {
		t.Fatalf("expected exactly one server restart, got %d", faulty.Restarts)
	}
	if !faulty.AllFound {
		t.Fatal("cluster did not finish across the server restart")
	}

	for i, r := range faulty.Honest {
		if r.Probes != clean.Honest[i].Probes {
			t.Errorf("player %d: %d probes across restart, %d clean", i, r.Probes, clean.Honest[i].Probes)
		}
		if r.Rounds != clean.Honest[i].Rounds {
			t.Errorf("player %d: halted in round %d across restart, %d clean",
				i, r.Rounds, clean.Honest[i].Rounds)
		}
		// The recovered probe ledger must agree with the clients' books: a
		// probe retried across the crash is charged exactly once.
		if faulty.ServerProbes[i] != r.Probes {
			t.Errorf("player %d: recovered server charged %d probes, client performed %d (double charge)",
				i, faulty.ServerProbes[i], r.Probes)
		}
	}
	if !bytes.Equal(faulty.BoardDigest, clean.BoardDigest) {
		t.Fatalf("billboard diverged across server restart:\nclean:\n%s\nrestarted:\n%s",
			clean.BoardDigest, faulty.BoardDigest)
	}
}

// TestChaosKillRestartUnderFaultInjection layers the server crash on top of
// transport fault injection: drops, delays, and torn writes before, during,
// and after the restart window. Recovery composes with the retry machinery —
// the digest and the exactly-once ledger still match the fault-free run.
func TestChaosKillRestartUnderFaultInjection(t *testing.T) {
	clean, err := RunCluster(chaosBase(t))
	if err != nil {
		t.Fatal(err)
	}

	crash := chaosBase(t)
	crash.PersistDir = t.TempDir()
	crash.SnapshotEvery = 2
	crash.Chaos.KillAtRound = 3
	crash.Chaos.Fault = &faultnet.Config{
		Seed:     23,
		Drop:     0.03,
		Delay:    0.03,
		Tear:     0.02,
		MaxDelay: 2 * time.Millisecond,
	}
	crash.SessionGrace = 10 * time.Second
	crash.BarrierDeadline = 30 * time.Second
	crash.Client = client.Options{
		Retries: 32, BackoffBase: time.Millisecond, BackoffMax: 20 * time.Millisecond,
		CallTimeout: 10 * time.Second,
	}
	faulty, err := RunCluster(crash)
	if err != nil {
		t.Fatal(err)
	}
	if !faulty.AllFound {
		t.Fatal("cluster did not finish across restart + fault injection")
	}
	if !bytes.Equal(faulty.BoardDigest, clean.BoardDigest) {
		t.Fatalf("billboard diverged across restart under fault injection:\nclean:\n%s\nfaulty:\n%s",
			clean.BoardDigest, faulty.BoardDigest)
	}
	for i, r := range faulty.Honest {
		if faulty.ServerProbes[i] != r.Probes {
			t.Errorf("player %d: recovered server charged %d probes, client performed %d",
				i, faulty.ServerProbes[i], r.Probes)
		}
		if r.Probes != clean.Honest[i].Probes {
			t.Errorf("player %d: %d probes, %d clean", i, r.Probes, clean.Honest[i].Probes)
		}
	}
}

// TestChaosDeterministicReplay: the same chaos seed reproduces the same run
// bit for bit — the debugging contract for failure investigation.
func TestChaosDeterministicReplay(t *testing.T) {
	run := func() *ClusterResult {
		cfg := chaosBase(t)
		cfg.Chaos.Fault = &faultnet.Config{Seed: 3, Drop: 0.05, Tear: 0.05}
		cfg.SessionGrace = 10 * time.Second
		cfg.Client = client.Options{
			Retries: 16, BackoffBase: time.Millisecond, BackoffMax: 20 * time.Millisecond,
		}
		res, err := RunCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !bytes.Equal(a.BoardDigest, b.BoardDigest) {
		t.Fatal("same chaos seed produced different billboards")
	}
	for i := range a.Honest {
		if a.Honest[i].Probes != b.Honest[i].Probes {
			t.Fatalf("player %d: %d vs %d probes across identical runs",
				i, a.Honest[i].Probes, b.Honest[i].Probes)
		}
	}
}

// TestChaosPartitionRecovery adds one-way partitions — writes silently
// swallowed — so progress depends on per-call deadlines detecting the black
// hole and the retry path resuming the session.
func TestChaosPartitionRecovery(t *testing.T) {
	u, err := object.NewPlanted(object.Planted{M: 24, Good: 2}, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	cfg := ClusterConfig{
		Universe:  u,
		Honest:    4,
		Seed:      5,
		MaxRounds: 200,
		Chaos: Chaos{Fault: &faultnet.Config{
			Seed:      21,
			Drop:      0.04,
			Partition: 0.04,
			MaxDelay:  time.Millisecond,
		}},
		SessionGrace:    10 * time.Second,
		BarrierDeadline: 30 * time.Second,
		Client: client.Options{
			Retries: 24, BackoffBase: time.Millisecond, BackoffMax: 10 * time.Millisecond,
			CallTimeout:    250 * time.Millisecond, // detects swallowed requests
			BarrierTimeout: time.Second,
		},
	}
	res, err := RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllFound {
		t.Fatal("cluster did not survive partitions")
	}
	for i, r := range res.Honest {
		if res.ServerProbes[i] != r.Probes {
			t.Errorf("player %d: server charged %d, client performed %d",
				i, res.ServerProbes[i], r.Probes)
		}
	}
}
