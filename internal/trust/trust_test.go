package trust

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{Players: 0},
		{Players: 2, AgreeTolerance: -1},
		{Players: 2, Damping: 1},
		{Players: 2, Damping: -0.5},
		{Players: 2, Iterations: -3},
	}
	for i, cfg := range cases {
		if _, err := Scores(nil, cfg); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
	if _, err := Scores([]Report{{Player: 9, Object: 0, Value: 1}}, Config{Players: 2}); err == nil {
		t.Fatal("out-of-range reporter accepted")
	}
}

func TestScoresSumToOne(t *testing.T) {
	reports := []Report{
		{0, 1, 1}, {1, 1, 1}, {2, 1, 0},
		{0, 2, 0.5}, {2, 2, 0.5},
	}
	scores, err := Scores(reports, Config{Players: 4})
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, s := range scores {
		if s < 0 {
			t.Fatalf("negative trust %v", s)
		}
		total += s
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("scores sum to %v", total)
	}
}

func TestNoReportsUniform(t *testing.T) {
	scores, err := Scores(nil, Config{Players: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range scores {
		if math.Abs(s-0.2) > 1e-9 {
			t.Fatalf("no-data trust should be uniform: %v", scores)
		}
	}
}

func TestAgreementClusterDominates(t *testing.T) {
	// Players 0-3 agree densely on many objects; player 4 disagrees with
	// everyone. The cluster must hold almost all trust.
	var reports []Report
	for obj := 0; obj < 10; obj++ {
		for p := 0; p < 4; p++ {
			reports = append(reports, Report{p, obj, 1})
		}
		reports = append(reports, Report{4, obj, 0})
	}
	scores, err := Scores(reports, Config{Players: 5})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 4; p++ {
		if scores[p] < 3*scores[4] {
			t.Fatalf("cluster member %d (%v) not dominating outsider (%v)", p, scores[p], scores[4])
		}
	}
}

// TestMaliciousCollectiveBoost is the §1.3 claim in miniature: the same 40
// liars earn far more trust as a coordinated collective (dense mutual
// agreement) than as independent liars.
func TestMaliciousCollectiveBoost(t *testing.T) {
	const honest, dishonest, m = 120, 40, 300
	n := honest + dishonest
	src := rng.New(42)
	good := map[int]bool{}
	for len(good) < 15 {
		good[src.Intn(m)] = true
	}
	truth := func(obj int) float64 {
		if good[obj] {
			return 1
		}
		return 0
	}
	honestReports := func(src *rng.Source) []Report {
		var out []Report
		for p := 0; p < honest; p++ {
			for k := 0; k < 20; k++ {
				obj := src.Intn(m)
				out = append(out, Report{p, obj, truth(obj)})
			}
		}
		return out
	}

	meanTrust := func(reports []Report) (dishonestMean, honestMean float64) {
		scores, err := Scores(reports, Config{Players: n})
		if err != nil {
			t.Fatal(err)
		}
		return GroupMeans(scores, func(p int) bool { return p >= honest })
	}

	// Scenario A: independent liars rating random objects with random noise.
	srcA := rng.New(1)
	reportsA := honestReports(srcA)
	for p := honest; p < n; p++ {
		for k := 0; k < 20; k++ {
			reportsA = append(reportsA, Report{p, srcA.Intn(m), srcA.Float64()})
		}
	}
	indepDishonest, indepHonest := meanTrust(reportsA)

	// Scenario B: a coordinated collective rating the SAME bad objects with
	// the SAME fake values.
	srcB := rng.New(1)
	reportsB := honestReports(srcB)
	fakeSet := make([]int, 0, 20)
	for obj := 0; len(fakeSet) < 20; obj++ {
		if !good[obj] {
			fakeSet = append(fakeSet, obj)
		}
	}
	for p := honest; p < n; p++ {
		for _, obj := range fakeSet {
			reportsB = append(reportsB, Report{p, obj, 1})
		}
	}
	collDishonest, collHonest := meanTrust(reportsB)

	t.Logf("independent: dishonest %.5f vs honest %.5f", indepDishonest, indepHonest)
	t.Logf("collective:  dishonest %.5f vs honest %.5f", collDishonest, collHonest)
	if indepDishonest >= indepHonest {
		t.Fatal("independent liars should NOT out-trust honest raters")
	}
	if collDishonest <= collHonest {
		t.Fatal("the malicious collective should out-trust honest raters (the §1.3 boost)")
	}
	if collDishonest <= 2*indepDishonest {
		t.Fatalf("collusion boost too small: %v vs %v", collDishonest, indepDishonest)
	}
}

func TestRecommendFollowsTrustMass(t *testing.T) {
	reports := []Report{
		{0, 7, 1}, {1, 7, 1}, // two raters for object 7
		{2, 3, 1}, // one for object 3
	}
	scores := []float64{0.4, 0.4, 0.2}
	obj, score, ok := Recommend(reports, scores, 0.5)
	if !ok || obj != 7 {
		t.Fatalf("recommended %d (ok=%v), want 7", obj, ok)
	}
	if math.Abs(score-0.8) > 1e-9 {
		t.Fatalf("score %v, want 0.8", score)
	}
	// A hijacked trust vector flips the recommendation.
	scores = []float64{0.1, 0.1, 0.8}
	obj, _, ok = Recommend(reports, scores, 0.5)
	if !ok || obj != 3 {
		t.Fatalf("recommended %d, want 3 under hijacked trust", obj)
	}
	if _, _, ok := Recommend(nil, scores, 0.5); ok {
		t.Fatal("empty reports should not recommend")
	}
}

func TestGroupMeans(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.3, 0.4}
	g, r := GroupMeans(scores, func(p int) bool { return p < 2 })
	if math.Abs(g-0.15) > 1e-12 || math.Abs(r-0.35) > 1e-12 {
		t.Fatalf("group means %v %v", g, r)
	}
}
