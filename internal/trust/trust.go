// Package trust implements an EigenTrust-style reputation computation —
// global trust scores obtained by power iteration over a pairwise
// rating-agreement graph — so that the paper's §1.3 critique can be
// reproduced quantitatively. The paper quotes Kamvar et al.: without
// a-priori trusted peers, "forming a malicious collective in fact heavily
// boosts the trust values of malicious nodes"; experiment X5 measures
// exactly that boost, and its absence when the same liars act
// independently.
//
// The model is deliberately the vulnerable one: peer i's local trust in
// peer j is how often j's ratings agree with i's (no grounding in i's own
// probes), local trust is row-normalized, and global trust is the
// stationary vector of the aggregated matrix with uniform damping — i.e.
// agreement-popularity, the "popularity-style algorithm" of §1.3.
package trust

import (
	"fmt"
	"math"
)

// Report is one rating: player says object has the given value.
type Report struct {
	Player int
	Object int
	Value  float64
}

// Config tunes the computation.
type Config struct {
	// Players is the number of peers n (required).
	Players int
	// AgreeTolerance is the max |v_i - v_j| treated as agreement
	// (default 0.1).
	AgreeTolerance float64
	// Damping mixes the uniform distribution into each step (default 0.15),
	// guaranteeing convergence on disconnected graphs.
	Damping float64
	// Iterations of power iteration (default 30).
	Iterations int
}

func (c *Config) applyDefaults() error {
	if c.Players <= 0 {
		return fmt.Errorf("trust: Players must be > 0, got %d", c.Players)
	}
	if c.AgreeTolerance == 0 {
		c.AgreeTolerance = 0.1
	}
	if c.AgreeTolerance < 0 {
		return fmt.Errorf("trust: negative AgreeTolerance")
	}
	if c.Damping == 0 {
		c.Damping = 0.15
	}
	if c.Damping < 0 || c.Damping >= 1 {
		return fmt.Errorf("trust: Damping %v outside [0, 1)", c.Damping)
	}
	if c.Iterations == 0 {
		c.Iterations = 30
	}
	if c.Iterations < 1 {
		return fmt.Errorf("trust: Iterations must be >= 1")
	}
	return nil
}

// Scores computes global trust per player from the reports. The returned
// vector sums to 1. Players with no ratings in common with anyone receive
// only the damping mass.
func Scores(reports []Report, cfg Config) ([]float64, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	n := cfg.Players
	// Index ratings per object.
	type rating struct {
		player int
		value  float64
	}
	byObject := make(map[int][]rating)
	for _, r := range reports {
		if r.Player < 0 || r.Player >= n {
			return nil, fmt.Errorf("trust: report by out-of-range player %d", r.Player)
		}
		byObject[r.Object] = append(byObject[r.Object], rating{r.Player, r.Value})
	}

	// Pairwise agreement counts over shared objects.
	agree := make([]map[int]float64, n)
	for i := range agree {
		agree[i] = make(map[int]float64)
	}
	for _, ratings := range byObject {
		for a := 0; a < len(ratings); a++ {
			for b := a + 1; b < len(ratings); b++ {
				ra, rb := ratings[a], ratings[b]
				if ra.player == rb.player {
					continue
				}
				if math.Abs(ra.value-rb.value) <= cfg.AgreeTolerance {
					agree[ra.player][rb.player]++
					agree[rb.player][ra.player]++
				}
			}
		}
	}

	// Row-normalize into local trust and power-iterate t ← (1-d)·C^T t + d/n.
	rowSum := make([]float64, n)
	for i := range agree {
		for _, w := range agree[i] {
			rowSum[i] += w
		}
	}
	t := make([]float64, n)
	next := make([]float64, n)
	for i := range t {
		t[i] = 1 / float64(n)
	}
	for iter := 0; iter < cfg.Iterations; iter++ {
		for j := range next {
			next[j] = cfg.Damping / float64(n)
		}
		for i := range agree {
			if rowSum[i] == 0 {
				// Peers with no agreements spread their mass uniformly.
				share := (1 - cfg.Damping) * t[i] / float64(n)
				for j := range next {
					next[j] += share
				}
				continue
			}
			for j, w := range agree[i] {
				next[j] += (1 - cfg.Damping) * t[i] * w / rowSum[i]
			}
		}
		t, next = next, t
	}
	return t, nil
}

// Recommend ranks objects by trust-weighted positive ratings (a rating
// counts as positive when its value is at least threshold) and returns the
// top object and its score. It returns ok = false when nothing was rated
// positively.
func Recommend(reports []Report, scores []float64, threshold float64) (object int, score float64, ok bool) {
	weights := make(map[int]float64)
	for _, r := range reports {
		if r.Value >= threshold && r.Player >= 0 && r.Player < len(scores) {
			weights[r.Object] += scores[r.Player]
		}
	}
	best, bestScore := -1, 0.0
	for obj, w := range weights {
		if best == -1 || w > bestScore || (w == bestScore && obj < best) {
			best, bestScore = obj, w
		}
	}
	if best == -1 {
		return 0, 0, false
	}
	return best, bestScore, true
}

// GroupMeans averages the scores over a partition of the players: it
// returns the mean score of players for which inGroup is true and false
// respectively. Used to compare honest vs Byzantine trust mass.
func GroupMeans(scores []float64, inGroup func(player int) bool) (group, rest float64) {
	gTotal, gCount, rTotal, rCount := 0.0, 0, 0.0, 0
	for p, s := range scores {
		if inGroup(p) {
			gTotal += s
			gCount++
		} else {
			rTotal += s
			rCount++
		}
	}
	if gCount > 0 {
		group = gTotal / float64(gCount)
	}
	if rCount > 0 {
		rest = rTotal / float64(rCount)
	}
	return group, rest
}
