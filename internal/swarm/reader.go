package swarm

// The swarm's board view. All of a swarm's players share one committed
// billboard state per round (the synchrony contract), so the driver holds a
// single per-round read cache over the group-0 connection and every
// player's DISTILL schedule reads through it — the reads an N-goroutine
// fleet would issue N times happen once. For advice rounds the driver
// additionally prefetches the round's per-player vote lookups in bulk
// (ReqVoteBatch) before the draw loop, collapsing up to N round-trips into
// a few pipelined frames.

import (
	"repro/internal/billboard"
	"repro/internal/wire"
)

// universe is the sim.PublicUniverse the server advertised in Hello.
type universe struct {
	m            int
	costs        []float64
	localTesting bool
}

func (u *universe) M() int             { return u.m }
func (u *universe) Cost(i int) float64 { return u.costs[i] }
func (u *universe) LocalTesting() bool { return u.localTesting }

// boardReader implements billboard.Reader over a swarm connection with a
// per-round cache. Reads happen on the driver's single-threaded sections
// only (schedule advance and the draw loop), never during the per-group
// fan-out. Reader methods cannot return errors, so failures latch into err
// and answer zero values; the driver checks err once per round, exactly
// like the per-player client path checks Client.Err.
type boardReader struct {
	c     *conn
	round int
	err   error

	votes   map[int][]billboard.Vote
	counts  map[int]int
	negs    map[int]int
	windows map[[2]int]map[int]int
	objects []int
	haveObjs bool
}

var _ billboard.Reader = (*boardReader)(nil)

func newBoardReader(c *conn, round int) *boardReader {
	r := &boardReader{c: c, round: round}
	r.invalidate()
	return r
}

// invalidate drops all cached reads; the driver calls it after each round
// barrier.
func (r *boardReader) invalidate() {
	r.votes = make(map[int][]billboard.Vote)
	r.counts = make(map[int]int)
	r.negs = make(map[int]int)
	r.windows = make(map[[2]int]map[int]int)
	r.objects = nil
	r.haveObjs = false
}

// call runs one read frame, latching the first failure.
func (r *boardReader) call(req wire.Request) *wire.Response {
	if r.err != nil {
		return nil
	}
	resp, err := r.c.one(req, false)
	if err != nil {
		r.err = err
		return nil
	}
	if resp.Round > r.round {
		r.round = resp.Round
	}
	return resp
}

// prefetchVotes bulk-loads the votes of every listed player that is not
// already cached, a chunk of players per frame, pipelined. Players without
// votes are cached as empty.
func (r *boardReader) prefetchVotes(players []int, chunk int) {
	if r.err != nil {
		return
	}
	miss := make([]int, 0, len(players))
	for _, p := range players {
		if _, ok := r.votes[p]; !ok {
			miss = append(miss, p)
		}
	}
	if len(miss) == 0 {
		return
	}
	var reqs []wire.Request
	for lo := 0; lo < len(miss); lo += chunk {
		hi := min(lo+chunk, len(miss))
		reqs = append(reqs, wire.Request{Type: wire.ReqVoteBatch, Players: miss[lo:hi]})
	}
	resps := make([]wire.Response, len(reqs))
	if err := r.c.exchange(reqs, resps, false); err != nil {
		r.err = err
		return
	}
	for _, p := range miss {
		r.votes[p] = nil
	}
	for i := range resps {
		for _, v := range resps[i].Votes {
			r.votes[v.Player] = append(r.votes[v.Player],
				billboard.Vote{Player: v.Player, Object: v.Object, Round: v.Round, Value: v.Value})
		}
		if resps[i].Round > r.round {
			r.round = resps[i].Round
		}
	}
}

// Round returns the last round number observed from the server.
func (r *boardReader) Round() int { return r.round }

// Votes returns player p's committed votes, cached for the round.
func (r *boardReader) Votes(player int) []billboard.Vote {
	if v, ok := r.votes[player]; ok {
		return v
	}
	var votes []billboard.Vote
	if resp := r.call(wire.Request{Type: wire.ReqVotes, OfPlayer: player}); resp != nil {
		votes = make([]billboard.Vote, len(resp.Votes))
		for i, v := range resp.Votes {
			votes[i] = billboard.Vote{Player: v.Player, Object: v.Object, Round: v.Round, Value: v.Value}
		}
	}
	r.votes[player] = votes
	return votes
}

// HasVote reports whether player p has a committed vote.
func (r *boardReader) HasVote(player int) bool { return len(r.Votes(player)) > 0 }

// VoteCount returns object i's committed vote count, cached for the round.
func (r *boardReader) VoteCount(object int) int {
	if n, ok := r.counts[object]; ok {
		return n
	}
	n := 0
	if resp := r.call(wire.Request{Type: wire.ReqVoteCount, Object: object}); resp != nil {
		n = resp.Count
	}
	r.counts[object] = n
	return n
}

// NegativeCount returns object i's negative-report count, cached.
func (r *boardReader) NegativeCount(object int) int {
	if n, ok := r.negs[object]; ok {
		return n
	}
	n := 0
	if resp := r.call(wire.Request{Type: wire.ReqNegCount, Object: object}); resp != nil {
		n = resp.Count
	}
	r.negs[object] = n
	return n
}

// VotedObjects returns the objects currently holding votes, cached.
func (r *boardReader) VotedObjects() []int {
	if !r.haveObjs {
		if resp := r.call(wire.Request{Type: wire.ReqVotedObjects}); resp != nil {
			r.objects = resp.Objects
		}
		r.haveObjs = true
	}
	return r.objects
}

// NumVotedObjects returns the number of objects holding votes.
func (r *boardReader) NumVotedObjects() int { return len(r.VotedObjects()) }

// CountVotesInWindow counts vote events per object in [fromRound, toRound).
func (r *boardReader) CountVotesInWindow(fromRound, toRound int) map[int]int {
	key := [2]int{fromRound, toRound}
	if m, ok := r.windows[key]; ok {
		return m
	}
	m := map[int]int{}
	if resp := r.call(wire.Request{Type: wire.ReqWindow, From: fromRound, To: toRound}); resp != nil && resp.Counts != nil {
		m = resp.Counts
	}
	r.windows[key] = m
	return m
}
