// Package swarm drives a large block of simulated players — thousands to a
// million — over a handful of pipelined connections, replacing the
// goroutine-per-player client fleet with an event-loop scheduler over plain
// player state.
//
// One core.Distill instance carries the schedule shared by every honest
// player (the DISTILL schedule evolves from committed billboard state only,
// never from private randomness), while each player keeps its own split
// random stream, probe count, and post index. A round is a fixed frame
// pattern per connection group: bulk board reads, chunked probe batches,
// chunked post batches (scattered to shard lanes with client-stamped
// per-player indices when the server is sharded), one barrier, then batched
// deregistration of the players that found their object. Every phase
// pipelines up to Config.Window frames per connection, and the transport
// resumes sessions and resends the unacked frame tail across reconnects,
// so chaos runs (shard bounce, leader kill) drive through unchanged.
//
// The driver is bit-compatible with the goroutine-per-player path in
// internal/dist: same per-player randomness (rng.New(Seed).Split(player)),
// same probe/post/barrier ordering per round, same halt rule — so a
// swarm-backed cluster run commits a byte-identical board digest.
package swarm

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Config describes one swarm: a contiguous block of players driven against
// one billboard service.
type Config struct {
	// Addr is the server address; Fallbacks lists the other members of a
	// replicated coordinator group (not-leader redirects steer there).
	Addr      string
	Fallbacks []string
	// From, To bound the player block [From, To) this swarm drives.
	From, To int
	// Token is the server's shared swarm credential (server.Config.SwarmToken).
	Token string
	// Params configures the DISTILL schedule shared by all players.
	Params core.Params
	// Seed derives every player's private stream as rng.New(Seed).Split(player)
	// — the same derivation the goroutine-per-player path uses.
	Seed uint64
	// MaxRounds bounds the search (default 4096); players still active then
	// are deregistered and reported timed out.
	MaxRounds int
	// Groups is the number of connection groups (default 4, clamped to the
	// player count). Each group owns a contiguous sub-block and its own
	// pipelined connection (plus one lane connection per shard when the
	// server is sharded); groups run each round's phases concurrently.
	Groups int
	// Chunk caps probes/posts/dones per frame (default 4096).
	Chunk int
	// Window caps pipelined in-flight frames per connection (default 8).
	Window int
	// Client tunes the transport (dialer, retries, backoff, timeouts) —
	// the same knobs the per-player client takes, including the faultnet
	// dialer hook.
	Client client.Options
	// Metrics, when non-nil, receives the swarm_* metric family.
	Metrics *obs.Registry
	// Dynamics, when non-nil, opens the world: the driver starts with an
	// empty active set and player arrivals/departures flow through the hook
	// at round boundaries (see sim.Dynamics). The whole block [From, To)
	// stays registered with the server from the handshake — an inactive
	// player is a silent spectator covered by its group's barrier — so
	// membership changes are pure driver-side bookkeeping and the committed
	// digest is a function of (scenario, seed) alone, independent of
	// connection scheduling. Departure deregisters the player permanently:
	// a departed player cannot re-arrive (the engine-backend rejoin
	// semantics do not exist here), and EndRound cannot drift the universe
	// (the server owns it); scenarios that need either must run on the
	// in-process engine backend.
	Dynamics sim.Dynamics
	// Observer, when non-nil, receives a RoundStats snapshot after every
	// committed round. The driver fills the fields it can see from the
	// scheduler and one committed-board read — Round, ActiveHonest,
	// SatisfiedHonest, ProbesThisRound, VotedObjects; GoodVotes and
	// TotalVotes need ground truth or full board scans and stay zero.
	Observer sim.Observer
	// Logf, when non-nil, receives progress lines (one per round).
	Logf func(format string, args ...any)
}

// PlayerResult is one player's outcome, matching the semantics of the
// goroutine-per-player path (dist.HonestResult).
type PlayerResult struct {
	Player   int
	Probes   int // probes issued by this player (client-side count)
	Rounds   int // round at which the player halted (or MaxRounds)
	Found    bool
	TimedOut bool
	Departed bool // left via Config.Dynamics before finding an object
}

// Result is a completed swarm run.
type Result struct {
	From, To int
	Players  []PlayerResult // one per player, in player order
	Rounds   int            // max rounds any player ran
	Found    int
	TimedOut int
	Departed int
	MeanProbes float64
}

func (cfg *Config) applyDefaults() error {
	if cfg.Addr == "" {
		return errors.New("swarm: missing server address")
	}
	if cfg.From < 0 || cfg.To <= cfg.From {
		return fmt.Errorf("swarm: invalid player range [%d, %d)", cfg.From, cfg.To)
	}
	if cfg.Token == "" {
		return errors.New("swarm: missing swarm token")
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 4096
	}
	if cfg.Groups <= 0 {
		cfg.Groups = 4
	}
	if n := cfg.To - cfg.From; cfg.Groups > n {
		cfg.Groups = n
	}
	if cfg.Chunk <= 0 {
		cfg.Chunk = 4096
	}
	if cfg.Window <= 0 {
		cfg.Window = 8
	}
	return nil
}

// playerState is one player's entire footprint in the driver: no goroutine,
// no connection, no timer — just data the event loop sweeps.
type playerState struct {
	src      rng.Source // private stream, rng.New(Seed).Split(player)
	probes   int32
	nextIdx  int32 // next sharded post index (client-stamped commit order)
	rounds   int32
	active   bool // currently searching (mirrors group membership)
	found    bool
	timedOut bool
	departed bool // left via Dynamics
	deregistered bool // ReqSwarmDone sent for this player
}

// group is one connection group: a contiguous sub-block of players, the
// pipelined primary connection carrying its swarm session, and (when the
// server is sharded) one lane connection per shard.
type group struct {
	d        *driver
	idx      int
	from, to int
	prim     *conn
	lanes    []*conn
	members  []int // active players, ascending
	// registered counts the players of this block still registered with the
	// server (not yet deregistered via ReqSwarmDone). Under Dynamics a group
	// can hold zero active members while not-yet-arrived players remain
	// registered; its barrier must still run then, or every other group's
	// barrier waits forever on this block's silent spectators.
	registered int

	// Per-round scratch, reused across rounds.
	probes  []wire.ProbeMsg
	posts   []wire.PostMsg
	parts   [][]wire.PostMsg
	found   []int
	departs []int
	reqs    []wire.Request
	resps   []wire.Response
	round   int // round reported by this group's barrier
}

type driver struct {
	cfg   Config
	t     *transport
	met   metrics
	uni   *universe
	board *boardReader
	proto *core.Distill

	n       int  // total players served (server-advertised)
	shards  int
	epoch   bool // server advertised epoch mode in Hello
	players []playerState // indexed by player-cfg.From
	groups  []*group

	seen     []int32 // advice-prefetch dedupe, stamped by round+1
	prefetch []int
}

func (d *driver) logf(format string, args ...any) {
	if d.cfg.Logf != nil {
		d.cfg.Logf(format, args...)
	}
}

func (d *driver) state(player int) *playerState { return &d.players[player-d.cfg.From] }

// Run drives the configured player block to completion: every player either
// finds a good object or times out at MaxRounds. The context cancels the
// run (including mid-backoff and mid-barrier).
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	opt := normalizeOptions(cfg.Client, cfg.From)
	met := newMetrics(cfg.Metrics)
	d := &driver{cfg: cfg, met: met}
	d.t = &transport{
		ctx: ctx, opt: opt, token: cfg.Token, window: cfg.Window, met: &d.met,
		addr: cfg.Addr, addrs: []string{cfg.Addr},
	}
	for _, fb := range cfg.Fallbacks {
		if fb != "" && fb != cfg.Addr {
			d.t.addrs = append(d.t.addrs, fb)
		}
	}

	// Carve [From, To) into contiguous near-equal group sub-blocks.
	total := cfg.To - cfg.From
	d.groups = make([]*group, cfg.Groups)
	for gi := range d.groups {
		gFrom := cfg.From + gi*total/cfg.Groups
		gTo := cfg.From + (gi+1)*total/cfg.Groups
		g := &group{d: d, idx: gi, from: gFrom, to: gTo}
		g.prim = &conn{
			t: d.t, label: fmt.Sprintf("group %d", gi),
			from: gFrom, to: gTo,
			session: newSessionID(gFrom),
			jitter:  rng.New(opt.Seed).Split(0x5731 + uint64(gi)),
		}
		g.registered = gTo - gFrom
		g.members = make([]int, 0, gTo-gFrom)
		if cfg.Dynamics == nil {
			for p := gFrom; p < gTo; p++ {
				g.members = append(g.members, p)
			}
		} // open world: everyone starts as a registered spectator
		d.groups[gi] = g
	}
	defer func() {
		for _, g := range d.groups {
			g.prim.drop()
			for _, l := range g.lanes {
				l.drop()
			}
		}
	}()

	// Eager handshakes: group 0 first (its Hello payload carries the
	// universe), then the rest.
	hello, err := d.groups[0].prim.ensure()
	if err != nil {
		return nil, err
	}
	d.n = hello.N
	d.shards = max(hello.Shards, 1)
	d.epoch = hello.Mode == wire.ModeEpoch
	d.uni = &universe{m: hello.M, costs: hello.Costs, localTesting: hello.LocalTesting}
	for _, g := range d.groups[1:] {
		if _, err := g.prim.ensure(); err != nil {
			return nil, err
		}
	}
	if d.shards > 1 {
		for _, g := range d.groups {
			g.lanes = make([]*conn, d.shards)
			for k := range g.lanes {
				g.lanes[k] = &conn{
					t: d.t, label: fmt.Sprintf("group %d lane %d", g.idx, k),
					lane: true, shard: k,
					from: g.from, to: g.to,
					session: newSessionID(g.from),
					jitter:  rng.New(opt.Seed).Split(0x173e + uint64(g.idx)<<16 + uint64(k)),
				}
			}
		}
	}

	// Player state: the same per-player stream derivation the
	// goroutine-per-player path uses (Split depends only on (seed, label)).
	// (This is the rng.Partition player-stream derivation inlined: bulk
	// blocks skip the partition's stream cache, which would pin a Source
	// per player.)
	base := rng.New(cfg.Seed)
	d.players = make([]playerState, total)
	for i := range d.players {
		d.players[i].src = *base.Split(uint64(cfg.From + i))
		d.players[i].active = cfg.Dynamics == nil
	}
	if met.enabled {
		met.players.Set(float64(total))
	}

	// One shared schedule. Board reads flow through the cached reader on
	// group 0's connection; the Init-time source is never drawn from (the
	// schedule is a pure function of committed board state), but Init
	// requires one.
	d.board = newBoardReader(d.groups[0].prim, hello.Round)
	d.proto = core.NewDistill(cfg.Params)
	if err := d.proto.Init(sim.Setup{
		N: d.n, Alpha: hello.Alpha, Beta: hello.Beta,
		Universe: d.uni, Board: d.board,
		Rng: rng.New(cfg.Seed).Split(uint64(cfg.From)),
	}); err != nil {
		return nil, fmt.Errorf("swarm: init: %w", err)
	}
	if d.board.err != nil {
		return nil, fmt.Errorf("swarm: board read: %w", d.board.err)
	}
	d.seen = make([]int32, d.n)

	if err := d.run(); err != nil {
		return nil, err
	}
	return d.collect(), nil
}

// run is the event loop: one iteration per round while players remain.
func (d *driver) run() error {
	cfg := &d.cfg
	dyn := cfg.Dynamics
	active := 0
	for _, g := range d.groups {
		active += len(g.members)
	}
	for round := 0; round < cfg.MaxRounds; round++ {
		if dyn != nil {
			delta, err := d.applyDynamics(dyn, round)
			if err != nil {
				return err
			}
			active += delta
		}
		if active == 0 && (dyn == nil || dyn.Idle(round)) {
			break
		}
		start := time.Now()
		if d.met.enabled {
			d.met.activePlayers.Set(float64(active))
		}

		// Schedule step + probe draws (single-threaded; board reads go
		// through the cached reader).
		d.proto.BeginRound(round)
		if d.proto.AdviceRound() {
			d.prefetchAdvice(round)
		}
		for _, g := range d.groups {
			g.probes = g.probes[:0]
			for _, p := range g.members {
				if obj, ok := d.proto.ProbeFor(&d.state(p).src); ok {
					g.probes = append(g.probes, wire.ProbeMsg{Player: p, Object: obj})
				}
			}
		}
		d.proto.FinishRound()
		if d.board.err != nil {
			return fmt.Errorf("swarm: board read: %w", d.board.err)
		}

		// Fan out: each group runs probes → posts → barrier on its own
		// connections; player state blocks are disjoint, so this is
		// race-free by construction.
		if err := d.eachGroup(func(g *group) error { return g.runRound() }); err != nil {
			return err
		}

		// The round committed: new board state, and the players that
		// probed a good object halt (found is only meaningful under local
		// testing, exactly like the per-player path).
		d.board.invalidate()
		for _, g := range d.groups {
			if g.round > d.board.round {
				d.board.round = g.round
			}
		}
		found := 0
		for _, g := range d.groups {
			g.found = g.found[:0]
			keep := g.members[:0]
			for _, p := range g.members {
				st := d.state(p)
				if st.found {
					st.rounds = int32(round + 1)
					st.active = false
					g.found = append(g.found, p)
					found++
				} else {
					keep = append(keep, p)
				}
			}
			g.members = keep
		}
		if found > 0 {
			if err := d.eachGroup(func(g *group) error { return g.sendDones(g.found) }); err != nil {
				return err
			}
			active -= found
		}
		if dyn != nil {
			if err := dyn.EndRound(round); err != nil {
				return fmt.Errorf("swarm: dynamics at round %d: %w", round, err)
			}
		}
		if d.cfg.Observer != nil {
			d.cfg.Observer.ObserveRound(sim.RoundStats{
				Round:           round,
				ActiveHonest:    active,
				SatisfiedHonest: (d.cfg.To - d.cfg.From) - active,
				ProbesThisRound: d.probesThisRound(),
				VotedObjects:    d.board.NumVotedObjects(),
			})
			if d.board.err != nil {
				return fmt.Errorf("swarm: board read: %w", d.board.err)
			}
		}
		if d.met.enabled {
			d.met.rounds.Inc()
			d.met.roundSeconds.ObserveSince(start)
		}
		d.logf("swarm: round %d: %d active, %d found (%.2fs)",
			round, active+found, found, time.Since(start).Seconds())
	}

	// Deregister everyone still registered (best effort, like the
	// per-player path's final Done): stragglers active at MaxRounds are
	// timed out; under Dynamics the sweep also releases never-arrived
	// spectators, which simply never played.
	for _, g := range d.groups {
		for _, p := range g.members {
			st := d.state(p)
			st.rounds = int32(cfg.MaxRounds)
			st.timedOut = true
		}
	}
	_ = d.eachGroup(func(g *group) error {
		defer func() { g.members = g.members[:0] }()
		if g.registered == 0 {
			return nil
		}
		g.departs = g.departs[:0]
		for p := g.from; p < g.to; p++ {
			if !d.state(p).deregistered {
				g.departs = append(g.departs, p)
			}
		}
		return g.sendDones(g.departs)
	})
	return nil
}

// applyDynamics injects one round's arrivals and departures and returns the
// net change to the active count. Departures deregister immediately (before
// the round's probes), so the server's expected set tracks the driver's.
func (d *driver) applyDynamics(dyn sim.Dynamics, round int) (int, error) {
	arrive, depart := dyn.BeginRound(round, d.activeList())
	if len(arrive) == 0 && len(depart) == 0 {
		return 0, nil
	}
	for _, p := range depart {
		st, err := d.checkedState(p, round)
		if err != nil {
			return 0, err
		}
		if !st.active {
			return 0, fmt.Errorf("swarm: dynamics departed inactive player %d at round %d", p, round)
		}
		st.active = false
		st.departed = true
		st.rounds = int32(round)
	}
	departed := 0
	if len(depart) > 0 {
		for _, g := range d.groups {
			g.departs = g.departs[:0]
			keep := g.members[:0]
			for _, p := range g.members {
				if st := d.state(p); st.departed && !st.deregistered {
					g.departs = append(g.departs, p)
					departed++
				} else {
					keep = append(keep, p)
				}
			}
			g.members = keep
		}
		if err := d.eachGroup(func(g *group) error { return g.sendDones(g.departs) }); err != nil {
			return 0, err
		}
	}
	arrived := 0
	for _, p := range arrive {
		st, err := d.checkedState(p, round)
		if err != nil {
			return 0, err
		}
		if st.deregistered || st.departed {
			return 0, fmt.Errorf("swarm: dynamics re-arrival of departed player %d at round %d (swarm departures are permanent)", p, round)
		}
		if st.active || st.found {
			continue // double arrivals are no-ops; halted players stay halted
		}
		st.active = true
		g := d.groupOf(p)
		g.members = append(g.members, p)
		arrived++
	}
	if arrived > 0 {
		// Keep each group's members ascending: member order fixes probe
		// order, which fixes frame contents and the committed digest.
		for _, g := range d.groups {
			sort.Ints(g.members)
		}
	}
	return arrived - departed, nil
}

// activeList flattens the groups' member lists in ascending player order.
func (d *driver) activeList() []int {
	var out []int
	for _, g := range d.groups {
		out = append(out, g.members...)
	}
	return out
}

// checkedState bounds-checks a dynamics-supplied player id.
func (d *driver) checkedState(p, round int) (*playerState, error) {
	if p < d.cfg.From || p >= d.cfg.To {
		return nil, fmt.Errorf("swarm: dynamics player %d outside block [%d, %d) at round %d",
			p, d.cfg.From, d.cfg.To, round)
	}
	return d.state(p), nil
}

// groupOf returns the group whose sub-block contains player p.
func (d *driver) groupOf(p int) *group {
	for _, g := range d.groups {
		if p >= g.from && p < g.to {
			return g
		}
	}
	panic("swarm: player outside every group") // unreachable after checkedState
}

// probesThisRound sums the round's probe draws across groups.
func (d *driver) probesThisRound() int {
	n := 0
	for _, g := range d.groups {
		n += len(g.probes)
	}
	return n
}

// prefetchAdvice peeks every active player's advice draw — a value copy of
// the player's stream leaves the real draw untouched — and bulk-loads the
// votes of every distinct advised player before the draw loop runs.
func (d *driver) prefetchAdvice(round int) {
	stamp := int32(round + 1)
	d.prefetch = d.prefetch[:0]
	for _, g := range d.groups {
		for _, p := range g.members {
			peek := d.state(p).src
			j := peek.Intn(d.n)
			if d.seen[j] != stamp {
				d.seen[j] = stamp
				d.prefetch = append(d.prefetch, j)
			}
		}
	}
	d.board.prefetchVotes(d.prefetch, d.cfg.Chunk)
}

// eachGroup runs fn concurrently over the groups and returns the first
// error.
func (d *driver) eachGroup(fn func(g *group) error) error {
	if len(d.groups) == 1 {
		return fn(d.groups[0])
	}
	errs := make([]error, len(d.groups))
	var wg sync.WaitGroup
	for gi, g := range d.groups {
		wg.Add(1)
		go func(gi int, g *group) {
			defer wg.Done()
			errs[gi] = fn(g)
		}(gi, g)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// runRound executes one group's share of a round: chunked pipelined probe
// batches, the resulting posts (scattered to shard lanes when sharded),
// and the round barrier.
func (g *group) runRound() error {
	if len(g.members) == 0 && g.registered == 0 {
		// A fully deregistered group adds nothing; its barrier would only
		// wait on everyone else. A group with no ACTIVE members but
		// registered spectators (open-world Dynamics) must still fall
		// through to the barrier — the server waits on its whole block.
		return nil
	}
	d := g.d
	chunk := d.cfg.Chunk

	// Probes.
	g.reqs = g.reqs[:0]
	for lo := 0; lo < len(g.probes); lo += chunk {
		hi := min(lo+chunk, len(g.probes))
		g.reqs = append(g.reqs, wire.Request{Type: wire.ReqProbeBatch, Probes: g.probes[lo:hi]})
	}
	g.resps = resize(g.resps, len(g.reqs))
	if err := g.prim.exchange(g.reqs, g.resps, false); err != nil {
		return err
	}

	// Results → posts. One post per answered probe, in probe order — the
	// same posting order the per-player loop produces.
	g.posts = g.posts[:0]
	ri := 0
	for i := range g.resps {
		for _, pr := range g.resps[i].ProbeResults {
			pm := g.probes[ri]
			ri++
			st := d.state(pm.Player)
			st.probes++
			positive := d.uni.localTesting && pr.Good
			if positive {
				st.found = true
			}
			g.posts = append(g.posts, wire.PostMsg{
				Player: pm.Player, Object: pm.Object, Value: pr.Value, Positive: positive,
			})
		}
	}
	if ri != len(g.probes) {
		return fmt.Errorf("swarm: group %d: %d probes answered, want %d", g.idx, ri, len(g.probes))
	}

	// Posts. Sharded: stamp each player's running index (commit order) and
	// scatter by the shard map over this group's lane sessions. Unsharded:
	// batched frames on the primary connection.
	if len(g.posts) > 0 {
		if d.shards > 1 {
			for i := range g.posts {
				st := d.state(g.posts[i].Player)
				g.posts[i].Index = int(st.nextIdx)
				st.nextIdx++
			}
			if g.parts == nil {
				g.parts = make([][]wire.PostMsg, d.shards)
			}
			for k := range g.parts {
				g.parts[k] = g.parts[k][:0]
			}
			for _, m := range g.posts {
				k := wire.Shard(m.Object, d.shards)
				g.parts[k] = append(g.parts[k], m)
			}
			for k, part := range g.parts {
				if len(part) == 0 {
					continue
				}
				g.reqs = g.reqs[:0]
				for lo := 0; lo < len(part); lo += chunk {
					hi := min(lo+chunk, len(part))
					g.reqs = append(g.reqs, wire.Request{Type: wire.ReqPostBatch, Posts: part[lo:hi], Shard: k})
				}
				g.resps = resize(g.resps, len(g.reqs))
				if err := g.lanes[k].exchange(g.reqs, g.resps, false); err != nil {
					return err
				}
			}
		} else {
			g.reqs = g.reqs[:0]
			for lo := 0; lo < len(g.posts); lo += chunk {
				hi := min(lo+chunk, len(g.posts))
				g.reqs = append(g.reqs, wire.Request{Type: wire.ReqPostBatch, Posts: g.posts[lo:hi]})
			}
			g.resps = resize(g.resps, len(g.reqs))
			if err := g.prim.exchange(g.reqs, g.resps, false); err != nil {
				return err
			}
		}
	}

	// Barrier: every post of this group is acknowledged (journaled and
	// buffered server-side), so arriving the whole block is safe. In epoch
	// mode the barrier frame is replaced by a lamport stamp covering the
	// block plus a non-blocking poll until the target epoch seals.
	start := time.Now()
	if d.epoch {
		target := g.round + 1
		for {
			resp, err := g.prim.one(wire.Request{Type: wire.ReqEpoch, Epoch: target}, false)
			if err != nil {
				return err
			}
			if resp.Round >= target {
				if d.met.enabled {
					d.met.barrierSeconds.ObserveSince(start)
				}
				if resp.Round > g.round {
					g.round = resp.Round
				}
				return nil
			}
			if err := d.t.idle(d.t.opt.EpochPoll); err != nil {
				return err
			}
		}
	}
	resp, err := g.prim.one(wire.Request{Type: wire.ReqBarrier}, true)
	if err != nil {
		return err
	}
	if d.met.enabled {
		d.met.barrierSeconds.ObserveSince(start)
	}
	// Monotone: a reconnect can replay the unacked tail, and a replayed
	// barrier answers the round it originally committed — never let that
	// stale delivery move the group's round backwards.
	if resp.Round > g.round {
		g.round = resp.Round
	}
	return nil
}

// sendDones deregisters the listed players in chunked frames.
func (g *group) sendDones(players []int) error {
	if len(players) == 0 {
		return nil
	}
	chunk := g.d.cfg.Chunk
	g.reqs = g.reqs[:0]
	for lo := 0; lo < len(players); lo += chunk {
		hi := min(lo+chunk, len(players))
		g.reqs = append(g.reqs, wire.Request{Type: wire.ReqSwarmDone, Players: players[lo:hi]})
	}
	g.resps = resize(g.resps, len(g.reqs))
	if err := g.prim.exchange(g.reqs, g.resps, false); err != nil {
		return err
	}
	for _, p := range players {
		if st := g.d.state(p); !st.deregistered {
			st.deregistered = true
			g.registered--
		}
	}
	return nil
}

// collect assembles the Result from the swept player state.
func (d *driver) collect() *Result {
	res := &Result{From: d.cfg.From, To: d.cfg.To}
	res.Players = make([]PlayerResult, len(d.players))
	total := 0
	for i := range d.players {
		st := &d.players[i]
		pr := PlayerResult{
			Player: d.cfg.From + i,
			Probes: int(st.probes),
			Rounds: int(st.rounds),
			Found:  st.found,
			TimedOut: st.timedOut,
			Departed: st.departed,
		}
		res.Players[i] = pr
		total += pr.Probes
		if pr.Found {
			res.Found++
		}
		if pr.TimedOut {
			res.TimedOut++
		}
		if pr.Departed {
			res.Departed++
		}
		if pr.Rounds > res.Rounds {
			res.Rounds = pr.Rounds
		}
	}
	res.MeanProbes = float64(total) / float64(len(d.players))
	return res
}

// resize returns s with length n, reusing capacity.
func resize(s []wire.Response, n int) []wire.Response {
	if cap(s) < n {
		return make([]wire.Response, n)
	}
	return s[:n]
}

// normalizeOptions applies the client package's option defaults (the swarm
// shares the knob set, including the faultnet dialer hook).
func normalizeOptions(o client.Options, label int) client.Options {
	if o.Dialer == nil {
		o.Dialer = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	if o.Retries == 0 {
		o.Retries = 8
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 5 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 500 * time.Millisecond
	}
	if o.CallTimeout == 0 {
		o.CallTimeout = 30 * time.Second
	}
	if o.CallTimeout < 0 {
		o.CallTimeout = 0
	}
	if o.EpochPoll == 0 {
		o.EpochPoll = 2 * time.Millisecond
	}
	if o.EpochPoll < 0 {
		o.EpochPoll = 0
	}
	if o.Seed == 0 {
		o.Seed = 0x9e3779b97f4a7c15 ^ uint64(label)
	}
	return o
}
