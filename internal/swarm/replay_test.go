package swarm

// Regression test for the reconnect double-delivery of a committed-round
// notification. The transport resends the unacked frame tail after a
// reconnect under the same sequence numbers, and the server replays
// already-executed barriers with the round they originally committed. That
// replayed notification is a second delivery of a round the group may have
// already seen — runRound must dedupe on the group's last-seen round instead
// of adopting the stale value and re-driving rounds the server has long
// sealed.

import (
	"bufio"
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/rng"
	"repro/internal/wire"
)

// scriptedServer speaks just enough of the wire protocol for a group's
// primary connection: it answers Hello unconditionally and routes every
// in-band frame through handle. Returning tear=true severs the connection
// without answering — the reconnect trigger.
type scriptedServer struct {
	ln     net.Listener
	handle func(connNum int, req *wire.Request) (resp wire.Response, tear bool)
	wg     sync.WaitGroup

	mu    sync.Mutex
	conns []net.Conn
}

func startScriptedServer(t *testing.T, handle func(int, *wire.Request) (wire.Response, bool)) *scriptedServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &scriptedServer{ln: ln, handle: handle}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for n := 1; ; n++ {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			s.conns = append(s.conns, c)
			s.mu.Unlock()
			s.wg.Add(1)
			go func(c net.Conn, n int) {
				defer s.wg.Done()
				defer c.Close()
				dec := wire.NewStreamDecoder(bufio.NewReader(c))
				enc := wire.NewStreamEncoder(c)
				var hello wire.Request
				if dec.DecodeRequest(&hello) != nil || hello.Type != wire.ReqHello {
					return
				}
				if enc.EncodeResponse(&wire.Response{}) != nil {
					return
				}
				for {
					var req wire.Request
					if dec.DecodeRequest(&req) != nil {
						return
					}
					resp, tear := s.handle(n, &req)
					if tear {
						return
					}
					if enc.EncodeResponse(&resp) != nil {
						return
					}
				}
			}(c, n)
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		s.mu.Lock()
		for _, c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		s.wg.Wait()
	})
	return s
}

// newTestGroup wires a single-member group to addr with fast retry knobs —
// the minimum state runRound's barrier tail touches.
func newTestGroup(addr string) *group {
	opt := normalizeOptions(client.Options{
		Retries: 8, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond,
		CallTimeout: 5 * time.Second, BarrierTimeout: 5 * time.Second,
	}, 0)
	d := &driver{cfg: Config{Chunk: 4096}}
	d.t = &transport{
		ctx: context.Background(), opt: opt, token: "tok", window: 4,
		met: &d.met, addr: addr, addrs: []string{addr},
	}
	g := &group{d: d, idx: 0, from: 0, to: 1, members: []int{0}}
	g.prim = &conn{
		t: d.t, label: "group 0", from: 0, to: 1,
		session: 7, jitter: rng.New(1).Split(1),
	}
	return g
}

// TestStaleBarrierReplayDoesNotRegressRound scripts the double-delivery:
// barrier 1 commits round 2 (the server ran ahead of this group), barrier 2
// is executed server-side but the connection tears before the response
// lands, and the resumed session replays the notification with the round
// the frame originally committed — stale relative to what the group has
// already seen. The group must treat the replay as a duplicate and keep its
// round monotone; regressing it would re-drive rounds the server sealed
// long ago.
func TestStaleBarrierReplayDoesNotRegressRound(t *testing.T) {
	var (
		mu        sync.Mutex
		barriers  int
		tornSeq   uint64
		replayed  bool
		replaySeq uint64
	)
	srv := startScriptedServer(t, func(connNum int, req *wire.Request) (wire.Response, bool) {
		mu.Lock()
		defer mu.Unlock()
		if req.Type != wire.ReqBarrier {
			return wire.Response{}, false
		}
		barriers++
		switch {
		case barriers == 1:
			return wire.Response{Round: 2}, false
		case barriers == 2:
			// Executed server-side, response lost: tear without answering.
			tornSeq = req.Seq
			return wire.Response{}, true
		default:
			// The resumed session's replay: answer with the round the torn
			// frame originally committed — stale, the group saw 2 already.
			replayed = true
			replaySeq = req.Seq
			return wire.Response{Round: 1}, false
		}
	})

	g := newTestGroup(srv.ln.Addr().String())
	if err := g.runRound(); err != nil {
		t.Fatal(err)
	}
	if g.round != 2 {
		t.Fatalf("after barrier 1: group round = %d, want 2", g.round)
	}
	if err := g.runRound(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if !replayed {
		t.Fatal("connection tear did not trigger a resend of the unacked barrier")
	}
	if replaySeq != tornSeq {
		t.Fatalf("replayed barrier resent as seq %d, torn frame was seq %d — not the unacked tail", replaySeq, tornSeq)
	}
	if g.round != 2 {
		t.Errorf("stale replayed barrier moved group round to %d, want it deduped at 2", g.round)
	}
}

// TestStaleEpochReplayRepolls pins the epoch-mode analogue: a stale round in
// an epoch-poll response is not a seal notification for the target epoch, so
// the group keeps polling instead of adopting it.
func TestStaleEpochReplayRepolls(t *testing.T) {
	var (
		mu    sync.Mutex
		polls int
	)
	srv := startScriptedServer(t, func(connNum int, req *wire.Request) (wire.Response, bool) {
		mu.Lock()
		defer mu.Unlock()
		if req.Type != wire.ReqEpoch {
			return wire.Response{}, false
		}
		polls++
		if polls < 3 {
			// Stale deliveries below the target epoch: keep polling.
			return wire.Response{Round: 0}, false
		}
		return wire.Response{Round: 1}, false
	})

	g := newTestGroup(srv.ln.Addr().String())
	g.d.epoch = true
	if err := g.runRound(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if polls != 3 {
		t.Errorf("epoch barrier took %d polls, want 3 (stale rounds must re-poll)", polls)
	}
	if g.round != 1 {
		t.Errorf("group round = %d after epoch seal, want 1", g.round)
	}
}
