package swarm_test

// Swarm scheduler stress tests. The headline run drains a 10k-player block
// through 4 connection groups while two shard lanes bounce mid-search —
// killed with frames in flight, recovered from their per-shard journals —
// and requires the committed billboard digest to be byte-identical to the
// fault-free run on the same seed. Run under -race this doubles as the
// scheduler's concurrency audit: group fan-out, transport resume, and the
// bounce watcher all race against each other.

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/journal"
	"repro/internal/object"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/internal/swarm"
)

const stressToken = "swarm-stress-token"

// startServer boots a billboard server sized for n players; persistDir ""
// runs it memory-only (no shard bounce possible then).
func startServer(t *testing.T, u *object.Universe, n, shards int, persistDir string) (*server.Server, string) {
	t.Helper()
	sc := server.Config{
		Universe:        u,
		Tokens:          make([]string, n),
		Alpha:           1.0,
		Beta:            u.Beta(),
		SessionGrace:    20 * time.Second,
		BarrierDeadline: 60 * time.Second,
		Shards:          shards,
		SwarmToken:      stressToken,
	}
	if persistDir != "" {
		st, err := journal.OpenStore(persistDir, journal.SyncCommit)
		if err != nil {
			t.Fatal(err)
		}
		sc.Persist = st
		t.Cleanup(func() { st.Close() })
	}
	srv, err := server.New(sc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	addr, err := srv.Start("")
	if err != nil {
		t.Fatal(err)
	}
	return srv, addr
}

func stressUniverse(t *testing.T) *object.Universe {
	t.Helper()
	u, err := object.NewPlanted(object.Planted{M: 64, Good: 4}, rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func stressClientOpts() client.Options {
	return client.Options{
		Retries: 48, BackoffBase: time.Millisecond, BackoffMax: 20 * time.Millisecond,
		CallTimeout: 10 * time.Second, BarrierTimeout: 60 * time.Second,
	}
}

// runSwarm drives n players against addr and returns the run.
func runSwarm(t *testing.T, addr string, n, groups int) *swarm.Result {
	t.Helper()
	res, err := swarm.Run(context.Background(), swarm.Config{
		Addr: addr, From: 0, To: n, Token: stressToken,
		Seed: 42, MaxRounds: 256, Groups: groups,
		Client: stressClientOpts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found != n {
		t.Fatalf("%d of %d players found an object", res.Found, n)
	}
	return res
}

// TestSwarmDeterministicDigest pins the debugging contract: the same seed
// produces the same committed billboard, bit for bit, run after run.
func TestSwarmDeterministicDigest(t *testing.T) {
	u := stressUniverse(t)
	const n = 500
	run := func() []byte {
		srv, addr := startServer(t, u, n, 0, "")
		runSwarm(t, addr, n, 3)
		return srv.Digest()
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Fatal("same seed produced different billboards")
	}
}

// TestSwarmStressShardBounce is the scheduler's acceptance stress: a
// 10k-player block drains through 4 connection groups against a 3-shard
// server while two shard lanes bounce mid-search. The digest must match
// the fault-free run on the same seed byte for byte, and the server's
// probe ledger must agree with the driver's per-player counts exactly.
func TestSwarmStressShardBounce(t *testing.T) {
	n := 10_000
	if testing.Short() {
		n = 2_000
	}
	u := stressUniverse(t)

	cleanSrv, cleanAddr := startServer(t, u, n, 3, "")
	clean := runSwarm(t, cleanAddr, n, 4)
	cleanDigest := cleanSrv.Digest()

	srv, addr := startServer(t, u, n, 3, t.TempDir())
	// Bounce watcher: the moment rounds are underway, kill lanes 1 and 2
	// with frames in flight, then recover each from its per-shard journal.
	bounceDone := make(chan error, 1)
	go func() {
		bounceDone <- func() error {
			for srv.Round() < 2 {
				time.Sleep(time.Millisecond)
			}
			for _, victim := range []int{1, 2} {
				if err := srv.KillShard(victim); err != nil {
					return fmt.Errorf("kill shard %d: %w", victim, err)
				}
			}
			time.Sleep(10 * time.Millisecond)
			for _, victim := range []int{1, 2} {
				if err := srv.RestartShard(victim); err != nil {
					return fmt.Errorf("restart shard %d: %w", victim, err)
				}
			}
			return nil
		}()
	}()
	got := runSwarm(t, addr, n, 4)
	if err := <-bounceDone; err != nil {
		t.Fatal(err)
	}

	for i := range got.Players {
		if got.Players[i].Probes != clean.Players[i].Probes {
			t.Errorf("player %d: %d probes across bounce, %d clean",
				i, got.Players[i].Probes, clean.Players[i].Probes)
		}
		if got.Players[i].Rounds != clean.Players[i].Rounds {
			t.Errorf("player %d: halted in round %d across bounce, %d clean",
				i, got.Players[i].Rounds, clean.Players[i].Rounds)
		}
	}
	sProbes, _, _, _ := srv.Stats()
	for i := range got.Players {
		if sProbes[i] != got.Players[i].Probes {
			t.Errorf("player %d: server charged %d probes, driver performed %d (double charge)",
				i, sProbes[i], got.Players[i].Probes)
		}
	}
	if digest := srv.Digest(); !bytes.Equal(digest, cleanDigest) {
		t.Fatalf("billboard diverged across shard bounce:\nclean:\n%s\nbounced:\n%s",
			cleanDigest, digest)
	}
}
