package swarm

import "repro/internal/obs"

// metrics is the swarm_* metric family: scheduler depth and latency plus
// transport health. All recording is nil-safe — a driver without a registry
// pays one branch per event.
type metrics struct {
	enabled bool

	players       *obs.Gauge // configured swarm size
	activePlayers *obs.Gauge // players still searching at round start

	rounds     *obs.Counter
	frames     *obs.Counter
	dials      *obs.Counter
	reconnects *obs.Counter
	retries    *obs.Counter

	backoffSeconds *obs.Gauge

	inflight       *obs.Histogram // pipelined frames outstanding at each ack
	roundSeconds   *obs.Histogram // wall time per swarm round
	barrierSeconds *obs.Histogram // wall time blocked in the round barrier
}

func newMetrics(r *obs.Registry) metrics {
	if r == nil {
		return metrics{}
	}
	return metrics{
		enabled:       true,
		players:       r.Gauge("swarm_players", "players driven by the swarm scheduler"),
		activePlayers: r.Gauge("swarm_active_players", "players still searching at round start"),
		rounds:        r.Counter("swarm_rounds_total", "swarm rounds completed"),
		frames:        r.Counter("swarm_frames_sent_total", "request frames sent by the swarm driver"),
		dials:         r.Counter("swarm_dials_total", "transport dials (including reconnects)"),
		reconnects:    r.Counter("swarm_reconnects_total", "session resumes after a transport drop"),
		retries:       r.Counter("swarm_retries_total", "frame retries after transport failures"),
		backoffSeconds: r.Gauge("swarm_backoff_seconds_total",
			"total time spent sleeping in retry backoff"),
		inflight: r.Histogram("swarm_inflight_frames",
			"pipelined frames outstanding when a response arrived",
			[]float64{1, 2, 4, 8, 16, 32}),
		roundSeconds: r.Histogram("swarm_round_seconds",
			"wall time per swarm round",
			[]float64{0.001, 0.01, 0.1, 1, 10}),
		barrierSeconds: r.Histogram("swarm_barrier_wait_seconds",
			"wall time blocked in the round barrier",
			[]float64{0.001, 0.01, 0.1, 1, 10}),
	}
}
