package swarm

// Pipelined swarm transport. A conn is one TCP connection carrying one
// swarm session (a whole player block): frames are sent with up to
// Config.Window requests outstanding, and the server — which executes each
// connection's frames strictly in order — answers them in order. Sequence
// numbers are assigned once per frame; after a reconnect the unacked tail
// is resent under the same numbers, and the server replays already-executed
// frames idempotently (probe batches recompute without charging, posts and
// dones acknowledge, barriers answer the round they committed). That is
// what lets the driver pipeline safely: a lost response never turns into a
// double-applied side effect.

import (
	"bufio"
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/rng"
	"repro/internal/wire"
)

// sessionCounter backs session-id generation when crypto/rand fails.
var sessionCounter atomic.Uint64

// newSessionID picks a client-chosen session id; unique is all that
// matters (it names the session for resume across reconnects).
func newSessionID(label int) uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		if id := binary.LittleEndian.Uint64(b[:]); id != 0 {
			return id
		}
	}
	return sessionCounter.Add(1)<<16 | uint64(label&0xffff) | 1
}

// permanentError marks an application-level rejection during connect —
// retrying the same credentials cannot succeed.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// transport is the driver-wide connection state every conn shares: the
// context, normalized dial options, pipelining window, metrics, and the
// leader/fallback address ring (a not-leader redirect observed by any conn
// steers them all).
type transport struct {
	ctx    context.Context
	opt    client.Options
	token  string // the shared swarm credential
	window int
	met    *metrics

	mu      sync.Mutex
	addr    string
	addrs   []string
	addrIdx int
}

func (t *transport) curAddr() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.addr
}

// adoptLeader steers every conn to the address a not-leader rejection named
// (or rotates when the rejecting replica did not know the leader).
func (t *transport) adoptLeader(addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if addr != "" {
		t.addr = addr
		return
	}
	t.rotateLocked()
}

func (t *transport) rotateAddr() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rotateLocked()
}

func (t *transport) rotateLocked() {
	if len(t.addrs) <= 1 {
		return
	}
	t.addrIdx = (t.addrIdx + 1) % len(t.addrs)
	t.addr = t.addrs[t.addrIdx]
}

// pause sleeps for d, attributing the wait to swarm_backoff_seconds_total,
// returning early if the context is canceled.
func (t *transport) pause(d time.Duration) error {
	if t.met.enabled {
		t.met.backoffSeconds.Add(d.Seconds())
	}
	if d <= 0 {
		return t.ctx.Err()
	}
	tm := time.NewTimer(d)
	defer tm.Stop()
	select {
	case <-tm.C:
		return nil
	case <-t.ctx.Done():
		return t.ctx.Err()
	}
}

// idle sleeps for d without charging the backoff counter (epoch pacing
// waits are expected quiescence, not failures), returning early if the
// context is canceled.
func (t *transport) idle(d time.Duration) error {
	if d <= 0 {
		return t.ctx.Err()
	}
	tm := time.NewTimer(d)
	defer tm.Stop()
	select {
	case <-tm.C:
		return nil
	case <-t.ctx.Done():
		return t.ctx.Err()
	}
}

// backoffWith returns the fully-jittered exponential backoff for an attempt
// (1-based): uniform in (0, min(base·2^(attempt-1), max)].
func (t *transport) backoffWith(src *rng.Source, attempt int) time.Duration {
	step := t.opt.BackoffBase
	for i := 1; i < attempt && step > 0 && step < t.opt.BackoffMax; i++ {
		step *= 2 // overflow drives step non-positive and exits the loop
	}
	if step > t.opt.BackoffMax || step < 0 {
		step = t.opt.BackoffMax
	}
	if step <= 0 {
		return 0
	}
	return time.Duration(1 + src.Uint64n(uint64(step)))
}

// conn is one pipelined swarm connection: its own session, sequence
// counter, transport state, and backoff jitter. Not safe for concurrent
// use; each conn is owned by one goroutine at a time.
type conn struct {
	t       *transport
	label   string // for error messages: "group 2", "group 2 lane 1"
	lane    bool
	shard   int
	from, to int // the swarm member range this session registers

	session uint64
	seq     uint64
	resumed bool

	nc  net.Conn
	br  *bufio.Reader
	enc *wire.StreamEncoder
	dec *wire.StreamDecoder

	jitter *rng.Source
}

// connect dials and performs the swarm Hello handshake. The session id is
// fixed at construction, so a reconnect resumes the session: membership and
// the server-side frame ordering both survive. On success the Hello payload
// is returned (the universe parameters the driver needs from group 0).
func (c *conn) connect() (*wire.Response, error) {
	if c.t.met.enabled {
		c.t.met.dials.Inc()
		if c.resumed {
			c.t.met.reconnects.Inc()
		}
	}
	nc, err := c.t.opt.Dialer(c.t.curAddr())
	if err != nil {
		c.t.rotateAddr()
		return nil, fmt.Errorf("swarm: %s: %w", c.label, err)
	}
	br := bufio.NewReader(nc)
	enc, dec := wire.NewStreamEncoder(nc), wire.NewStreamDecoder(br)
	if c.t.opt.CallTimeout > 0 {
		nc.SetDeadline(time.Now().Add(c.t.opt.CallTimeout))
	}
	req := wire.Request{
		Type: wire.ReqHello, Version: wire.Version, Session: c.session,
		Swarm: true, Player: c.from, PlayerTo: c.to, Token: c.t.token,
	}
	if c.lane {
		req.Lane, req.Shard = true, c.shard
	}
	if err := enc.EncodeRequest(&req); err != nil {
		nc.Close()
		return nil, fmt.Errorf("swarm: %s hello: %w", c.label, err)
	}
	if c.t.met.enabled {
		c.t.met.frames.Inc()
	}
	var resp wire.Response
	if err := dec.DecodeResponse(&resp); err != nil {
		nc.Close()
		return nil, fmt.Errorf("swarm: %s hello: %w", c.label, err)
	}
	nc.SetDeadline(time.Time{})
	if e := resp.Error(); e != nil {
		nc.Close()
		if errors.Is(e, wire.ErrNotLeader) {
			c.t.adoptLeader(resp.Leader)
			return nil, fmt.Errorf("swarm: %s hello: %w", c.label, e) // retryable
		}
		return nil, &permanentError{e}
	}
	c.nc, c.br, c.enc, c.dec = nc, br, enc, dec
	c.resumed = true
	return &resp, nil
}

// ensure connects with the full retry/backoff loop (used for the eager
// initial handshakes; exchange reconnects inline afterwards). Returns the
// Hello payload.
func (c *conn) ensure() (*wire.Response, error) {
	var last error
	for attempt := 0; attempt <= c.t.opt.Retries; attempt++ {
		if attempt > 0 {
			if c.t.met.enabled {
				c.t.met.retries.Inc()
			}
			if err := c.t.pause(c.t.backoffWith(c.jitter, attempt)); err != nil {
				return nil, err
			}
		}
		resp, err := c.connect()
		if err == nil {
			return resp, nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return nil, perm.err
		}
		last = err
	}
	return nil, fmt.Errorf("swarm: %s: retries exhausted: %w (%w)", c.label, last, wire.ErrServerClosed)
}

// drop severs the transport (keeping the session resumable).
func (c *conn) drop() {
	if c.nc != nil {
		c.nc.Close()
		c.nc, c.br, c.enc, c.dec = nil, nil, nil, nil
	}
}

func (c *conn) deadline(d time.Duration) {
	if d > 0 {
		c.nc.SetDeadline(time.Now().Add(d))
	} else {
		c.nc.SetDeadline(time.Time{})
	}
}

// exchange runs a batch of frames over the connection with up to
// transport.window requests outstanding and fills resps positionally.
// Sequence numbers are assigned once, up front; a transport failure
// reconnects (resuming the session) and resends the unacked tail under the
// same numbers, so the server's in-order replay semantics make the whole
// batch exactly-once. blocking marks frames that may legitimately stall on
// other players (barriers): they run under Options.BarrierTimeout instead
// of CallTimeout. Progress resets the retry budget — only consecutive
// failures without a single ack count against Options.Retries.
func (c *conn) exchange(reqs []wire.Request, resps []wire.Response, blocking bool) error {
	for i := range reqs {
		c.seq++
		reqs[i].Session = c.session
		reqs[i].Seq = c.seq
	}
	recvTimeout := c.t.opt.CallTimeout
	if blocking {
		recvTimeout = c.t.opt.BarrierTimeout
	}
	acked, sent := 0, 0
	attempt := 0
	var last error
	dialFailed := false
	for acked < len(reqs) {
		if err := c.t.ctx.Err(); err != nil {
			return err
		}
		if c.nc == nil {
			attempt++
			if attempt > c.t.opt.Retries+1 {
				if dialFailed {
					// The final attempt never reached a live server:
					// best-effort dead-endpoint classification.
					return fmt.Errorf("swarm: %s: retries exhausted: %w (%w)", c.label, last, wire.ErrServerClosed)
				}
				return fmt.Errorf("swarm: %s: retries exhausted: %w", c.label, last)
			}
			if attempt > 1 {
				if c.t.met.enabled {
					c.t.met.retries.Inc()
				}
				if err := c.t.pause(c.t.backoffWith(c.jitter, attempt-1)); err != nil {
					return err
				}
			}
			if _, err := c.connect(); err != nil {
				var perm *permanentError
				if errors.As(err, &perm) {
					return fmt.Errorf("swarm: %s resume: %w", c.label, perm.err)
				}
				dialFailed = true
				last = err
				continue
			}
			dialFailed = false
			sent = acked // resend the unacked tail, oldest first
		}
		// Fill the window.
		encodeFailed := false
		for sent < len(reqs) && sent-acked < c.t.window {
			c.deadline(c.t.opt.CallTimeout)
			if err := c.enc.EncodeRequest(&reqs[sent]); err != nil {
				c.drop()
				last = fmt.Errorf("swarm: %s send: %w", c.label, err)
				encodeFailed = true
				break
			}
			if c.t.met.enabled {
				c.t.met.frames.Inc()
			}
			sent++
		}
		if encodeFailed {
			continue
		}
		// Receive the oldest outstanding response.
		if c.t.met.enabled {
			c.t.met.inflight.Observe(float64(sent - acked))
		}
		c.deadline(recvTimeout)
		resp := &resps[acked]
		*resp = wire.Response{}
		if err := c.dec.DecodeResponse(resp); err != nil {
			c.drop()
			last = fmt.Errorf("swarm: %s recv: %w", c.label, err)
			continue
		}
		c.deadline(0)
		if err := resp.Error(); err != nil {
			if errors.Is(err, wire.ErrNotLeader) {
				// Leadership moved between our frames: follow the redirect
				// and resend the unacked tail there.
				c.t.adoptLeader(resp.Leader)
				c.drop()
				last = err
				continue
			}
			return fmt.Errorf("swarm: %s: %w", c.label, err)
		}
		acked++
		attempt = 0
	}
	return nil
}

// one runs a single frame through exchange and returns its response.
func (c *conn) one(req wire.Request, blocking bool) (*wire.Response, error) {
	reqs := [1]wire.Request{req}
	var resps [1]wire.Response
	if err := c.exchange(reqs[:], resps[:], blocking); err != nil {
		return nil, err
	}
	return &resps[0], nil
}
