// Package lowerbound implements the hard-instance constructions from the
// proofs of Theorems 1 and 2 and harnesses that evaluate any protocol
// against them.
//
// Theorem 1 (collective work): the expected number of probes of an
// individual player is Ω(1/(αβn)) — even with full cooperation, αn honest
// players drawing from an urn of m objects with βm good ones need
// (m+1)/(βm+1) collective probes in expectation.
//
// Theorem 2 (symmetry): there is a distribution over instances — players
// partitioned into 1/α groups, objects into 1/β groups, group P_k endorsing
// exactly object group O_k, with the true instance choosing which k is real
// — on which any algorithm pays Ω(min(1/α, 1/β)) expected probes, because
// the first r_k - 1 rounds of the real instance are indistinguishable from
// the null instance.
package lowerbound

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/object"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Theorem1Bound returns the Ω(1/(αβn)) lower bound on expected individual
// probes (in rounds; one probe per round): the expected collective work
// (m+1)/(βm+1) divided by the at most αn honest probes per round.
func Theorem1Bound(alpha, beta float64, n, m int) float64 {
	return (float64(m) + 1) / ((beta*float64(m) + 1) * alpha * float64(n))
}

// Theorem2Bound returns the Ω(min(1/α, 1/β)) bound: B/2 where
// B = min(1/α, 1/β).
func Theorem2Bound(alpha, beta float64) float64 {
	b := 1 / alpha
	if 1/beta < b {
		b = 1 / beta
	}
	return b / 2
}

// Theorem2Config describes the partition instance family.
type Theorem2Config struct {
	// N is the number of players beyond player 0 (the theorem's n); the
	// simulation runs n+1 players. Required: alpha*N and beta*M integral.
	N int
	// M is the number of objects.
	M int
	// Alpha is the honest fraction: each player group has Alpha*N players.
	Alpha float64
	// Beta is the good fraction: each object group has Beta*M objects.
	Beta float64
}

func (c Theorem2Config) validate() error {
	if c.N <= 0 || c.M <= 0 {
		return fmt.Errorf("lowerbound: N and M must be positive")
	}
	if c.Alpha <= 0 || c.Alpha > 1 || c.Beta <= 0 || c.Beta > 1 {
		return fmt.Errorf("lowerbound: alpha %v or beta %v outside (0, 1]", c.Alpha, c.Beta)
	}
	groupPlayers := c.Alpha * float64(c.N)
	groupObjects := c.Beta * float64(c.M)
	if groupPlayers != float64(int(groupPlayers)) || groupObjects != float64(int(groupObjects)) {
		return fmt.Errorf("lowerbound: alpha*N (%v) and beta*M (%v) must be integers",
			groupPlayers, groupObjects)
	}
	return nil
}

// B returns the number of equiprobable instances min(1/α, 1/β).
func (c Theorem2Config) B() int {
	pa := int(1 / c.Alpha)
	pb := int(1 / c.Beta)
	if pb < pa {
		return pb
	}
	return pa
}

// Instance materializes instance I_k of the Theorem 2 distribution:
// the universe whose good objects are exactly O_k, the honest player set
// P_k ∪ {0}, and the fake good sets O_g for every other player group
// (groups beyond B never report, exactly as in the proof).
type Instance struct {
	K        int
	Universe *object.Universe
	Honest   []int   // P_k ∪ {0} (player ids in the n+1-player simulation)
	FakeGood [][]int // per dishonest group, its endorsed object set
}

// BuildInstance constructs I_k (1-based k in [1, B]).
func (c Theorem2Config) BuildInstance(k int) (*Instance, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	if k < 1 || k > c.B() {
		return nil, fmt.Errorf("lowerbound: k %d outside [1, %d]", k, c.B())
	}
	groupPlayers := int(c.Alpha * float64(c.N))
	groupObjects := int(c.Beta * float64(c.M))
	numPlayerGroups := int(1 / c.Alpha)
	b := c.B()

	// Object group O_g = objects [(g-1)*groupObjects, g*groupObjects).
	objectGroup := func(g int) []int {
		out := make([]int, groupObjects)
		for i := range out {
			out[i] = (g-1)*groupObjects + i
		}
		return out
	}

	values := make([]float64, c.M)
	for _, obj := range objectGroup(k) {
		values[obj] = 1
	}
	u, err := object.NewUniverse(object.Config{
		Values:       values,
		LocalTesting: true,
		Threshold:    0.5,
	})
	if err != nil {
		return nil, fmt.Errorf("lowerbound: %w", err)
	}

	// Player group P_g = players [1+(g-1)*groupPlayers, 1+g*groupPlayers);
	// player 0 is always honest.
	honest := []int{0}
	for i := 0; i < groupPlayers; i++ {
		honest = append(honest, 1+(k-1)*groupPlayers+i)
	}

	// Dishonest groups, in the order the simulation will hand dishonest
	// players to the adversary (ascending player id): groups g != k, each
	// endorsing O_g if g <= B and staying silent otherwise (empty set).
	var fakeGood [][]int
	for g := 1; g <= numPlayerGroups; g++ {
		if g == k {
			continue
		}
		if g <= b {
			fakeGood = append(fakeGood, objectGroup(g))
		} else {
			fakeGood = append(fakeGood, nil)
		}
	}
	return &Instance{K: k, Universe: u, Honest: honest, FakeGood: fakeGood}, nil
}

// EngineFor builds a simulation engine running the given protocol on
// instance I_k, with every dishonest group executing the same protocol via
// adversary.ProtocolMimic.
//
// Note one deliberate deviation from the proof's bookkeeping: the mimic
// groups are assigned to dishonest players round-robin by id rather than in
// contiguous blocks. The distribution of reports is identical because all
// dishonest groups have equal sizes and run identical code.
func (c Theorem2Config) EngineFor(inst *Instance, factory func() sim.Protocol, seed uint64) (*sim.Engine, error) {
	adv := adversary.NewProtocolMimic(factory, inst.FakeGood)
	return sim.NewEngine(sim.Config{
		Universe:     inst.Universe,
		Protocol:     factory(),
		Adversary:    adv,
		N:            c.N + 1,
		Honest:       inst.Honest,
		AssumedAlpha: c.Alpha,
		AssumedBeta:  c.Beta,
		Seed:         seed,
		MaxRounds:    1 << 16,
	})
}

// Player0Probes runs the protocol over every instance of the distribution
// (reps replications each) and returns player 0's probe counts, one per
// (instance, replication) pair. Yao's principle: the mean of this sample
// lower-bounds what any algorithm can achieve, and the theorem predicts it
// is at least B/2.
func (c Theorem2Config) Player0Probes(factory func() sim.Protocol, reps int, baseSeed uint64) ([]float64, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	var out []float64
	for k := 1; k <= c.B(); k++ {
		inst, err := c.BuildInstance(k)
		if err != nil {
			return nil, err
		}
		for r := 0; r < reps; r++ {
			seed := baseSeed + uint64(k*1000+r)
			engine, err := c.EngineFor(inst, factory, seed)
			if err != nil {
				return nil, err
			}
			res, err := engine.Run()
			if err != nil {
				return nil, err
			}
			out = append(out, float64(res.Probes[0]))
		}
	}
	return out, nil
}

// Theorem1Probes runs the protocol on random planted universes and returns
// the mean individual probe count per replication, for comparison against
// Theorem1Bound.
func Theorem1Probes(factory func() sim.Protocol, n, m, good, reps int, alpha float64, baseSeed uint64) ([]float64, error) {
	results, err := sim.Replicator{
		Reps:     reps,
		BaseSeed: baseSeed,
		Build: func(seed uint64) (*sim.Engine, error) {
			u, err := object.NewPlanted(object.Planted{M: m, Good: good}, rng.New(seed))
			if err != nil {
				return nil, err
			}
			return sim.NewEngine(sim.Config{
				Universe: u, Protocol: factory(), N: n, Alpha: alpha,
				Seed: seed, MaxRounds: 1 << 16,
			})
		},
	}.Run()
	if err != nil {
		return nil, err
	}
	out := make([]float64, 0, len(results))
	for _, res := range results {
		out = append(out, res.MeanHonestProbes())
	}
	return out, nil
}
