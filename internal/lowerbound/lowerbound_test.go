package lowerbound

import (
	"math"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

func TestTheorem1Bound(t *testing.T) {
	// m=100, β=0.1, α=1, n=10: (101)/(11·10) ≈ 0.918.
	got := Theorem1Bound(1, 0.1, 10, 100)
	want := 101.0 / 110.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("bound = %v, want %v", got, want)
	}
}

func TestTheorem2Bound(t *testing.T) {
	// B = min(1/α, 1/β); bound = B/2.
	if got := Theorem2Bound(0.1, 0.5); got != 1 {
		t.Fatalf("bound = %v, want min(10,2)/2 = 1", got)
	}
	if got := Theorem2Bound(0.125, 0.125); got != 4 {
		t.Fatalf("bound = %v, want 4", got)
	}
}

func TestTheorem2ConfigValidation(t *testing.T) {
	cases := []Theorem2Config{
		{N: 0, M: 10, Alpha: 0.5, Beta: 0.5},
		{N: 10, M: 0, Alpha: 0.5, Beta: 0.5},
		{N: 10, M: 10, Alpha: 0, Beta: 0.5},
		{N: 10, M: 10, Alpha: 0.5, Beta: 1.5},
		{N: 10, M: 10, Alpha: 0.26, Beta: 0.5}, // alpha*N not integral
	}
	for i, c := range cases {
		if err := c.validate(); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestTheorem2B(t *testing.T) {
	c := Theorem2Config{N: 100, M: 100, Alpha: 0.25, Beta: 0.1}
	if c.B() != 4 {
		t.Fatalf("B = %d, want 4", c.B())
	}
	c = Theorem2Config{N: 100, M: 100, Alpha: 0.5, Beta: 0.1}
	if c.B() != 2 {
		t.Fatalf("B = %d, want 2", c.B())
	}
}

func TestBuildInstanceStructure(t *testing.T) {
	c := Theorem2Config{N: 8, M: 8, Alpha: 0.25, Beta: 0.25}
	if c.B() != 4 {
		t.Fatalf("B = %d", c.B())
	}
	inst, err := c.BuildInstance(2)
	if err != nil {
		t.Fatal(err)
	}
	// Good objects are exactly O_2 = {2, 3}.
	good := inst.Universe.GoodObjects()
	if len(good) != 2 || good[0] != 2 || good[1] != 3 {
		t.Fatalf("good = %v, want [2 3]", good)
	}
	// Honest = {0} ∪ P_2 = {0, 3, 4} (P_2 = players 3..4 with group size 2).
	if len(inst.Honest) != 3 || inst.Honest[0] != 0 || inst.Honest[1] != 3 || inst.Honest[2] != 4 {
		t.Fatalf("honest = %v", inst.Honest)
	}
	// Three dishonest groups (g = 1, 3, 4), each endorsing its O_g.
	if len(inst.FakeGood) != 3 {
		t.Fatalf("fake groups = %d", len(inst.FakeGood))
	}
	if inst.FakeGood[0][0] != 0 { // O_1 = {0, 1}
		t.Fatalf("first fake group = %v", inst.FakeGood[0])
	}
}

func TestBuildInstanceKRange(t *testing.T) {
	c := Theorem2Config{N: 8, M: 8, Alpha: 0.25, Beta: 0.25}
	if _, err := c.BuildInstance(0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := c.BuildInstance(5); err == nil {
		t.Fatal("k > B accepted")
	}
}

func TestBuildInstanceSilentGroupsBeyondB(t *testing.T) {
	// B limited by beta: 1/α = 4 player groups but only 1/β = 2 object
	// groups; groups 3 and 4 must stay silent (nil fake set).
	c := Theorem2Config{N: 8, M: 8, Alpha: 0.25, Beta: 0.5}
	inst, err := c.BuildInstance(1)
	if err != nil {
		t.Fatal(err)
	}
	silent := 0
	for _, fake := range inst.FakeGood {
		if len(fake) == 0 {
			silent++
		}
	}
	if silent != 2 {
		t.Fatalf("silent groups = %d, want 2", silent)
	}
}

func TestTheorem2HoldsForDistill(t *testing.T) {
	// 1/α = 8 groups of 4 players; 1/β = 8 object groups of 4: B = 8,
	// bound = 4 probes. DISTILL (like any algorithm) must pay at least
	// roughly the bound on average over the distribution.
	c := Theorem2Config{N: 32, M: 32, Alpha: 0.125, Beta: 0.125}
	probes, err := c.Player0Probes(func() sim.Protocol {
		return core.NewDistill(core.Params{})
	}, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(probes) != c.B()*4 {
		t.Fatalf("sample size %d", len(probes))
	}
	mean := stats.Mean(probes)
	bound := Theorem2Bound(c.Alpha, c.Beta)
	t.Logf("DISTILL on Theorem 2 distribution: mean %.2f probes, bound %.2f", mean, bound)
	// Allow statistical slack: the theorem says Ω(B/2); we check the mean
	// is at least half the stated bound.
	if mean < bound/2 {
		t.Fatalf("mean probes %.2f below half the lower bound %.2f — the instance is not hard enough (construction bug)",
			mean, bound)
	}
}

func TestTheorem2HoldsForAsyncBaseline(t *testing.T) {
	c := Theorem2Config{N: 32, M: 32, Alpha: 0.125, Beta: 0.125}
	probes, err := c.Player0Probes(func() sim.Protocol {
		return baseline.NewAsyncRoundRobin()
	}, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	mean := stats.Mean(probes)
	bound := Theorem2Bound(c.Alpha, c.Beta)
	t.Logf("async baseline on Theorem 2 distribution: mean %.2f probes, bound %.2f", mean, bound)
	if mean < bound/2 {
		t.Fatalf("mean probes %.2f below half the bound %.2f", mean, bound)
	}
}

func TestTheorem1OracleNearBound(t *testing.T) {
	// The full-cooperation oracle realizes the collective-work bound up to
	// a small constant: mean probes ≈ Theorem1Bound (in rounds ≈ probes).
	const n, m, good = 16, 320, 4
	alpha := 1.0
	probes, err := Theorem1Probes(func() sim.Protocol {
		return baseline.NewOracleCoop()
	}, n, m, good, 40, alpha, 11)
	if err != nil {
		t.Fatal(err)
	}
	mean := stats.Mean(probes)
	bound := Theorem1Bound(alpha, float64(good)/float64(m), n, m)
	t.Logf("oracle: mean %.2f probes, Theorem 1 bound %.2f", mean, bound)
	if mean < bound/2 {
		t.Fatalf("oracle mean %.2f beat the information-theoretic bound %.2f", mean, bound)
	}
	if mean > 6*bound+3 {
		t.Fatalf("oracle mean %.2f is far above the bound %.2f; it should nearly realize it", mean, bound)
	}
}

func TestTheorem1DistillAboveBound(t *testing.T) {
	const n, m, good = 16, 320, 4
	alpha := 0.75
	probes, err := Theorem1Probes(func() sim.Protocol {
		return core.NewDistill(core.Params{})
	}, n, m, good, 20, alpha, 13)
	if err != nil {
		t.Fatal(err)
	}
	mean := stats.Mean(probes)
	bound := Theorem1Bound(alpha, float64(good)/float64(m), n, m)
	if mean < bound/2 {
		t.Fatalf("DISTILL mean %.2f below the collective-work bound %.2f", mean, bound)
	}
}
