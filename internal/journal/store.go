package journal

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Store manages a persistence directory holding one snapshot plus the
// write-ahead log written after it — the durable form of the compaction
// contract (snapshot + journal tail = exact state). Files are paired by
// segment number:
//
//	snap-%08d.bin   opaque snapshot bytes (absent for segment 0)
//	wal-%08d.log    journal frames appended after that snapshot
//
// Rotate writes the next segment's snapshot (tmp + fsync + rename, so a
// crash mid-rotation leaves the previous segment intact), starts a fresh
// wal, and deletes the old pair. OpenStore picks the newest complete
// segment, so recovery always replays the shortest snapshot+tail that
// reproduces the state.
//
// Store methods are not safe for concurrent use with each other; the
// billboard server serializes them under its own lock. The Writer returned
// by Writer() targets the store itself, so it survives rotation.
type Store struct {
	dir    string
	policy SyncPolicy

	mu     sync.Mutex
	seg    uint64
	f      *os.File
	w      *Writer
	snap   []byte
	tail   []byte
	mirror func(p []byte)
}

const (
	snapPrefix = "snap-"
	walPrefix  = "wal-"
	segFmt     = "%08d"
)

// OpenStore opens (creating if needed) a persistence directory and loads
// its newest segment: the snapshot bytes (nil when the segment has none)
// and the wal tail, both served from memory via Snapshot and Tail. The
// wal file is reopened for appending; policy selects the fsync cadence.
func OpenStore(dir string, policy SyncPolicy) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: store: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: store: %w", err)
	}
	var segs []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, walPrefix) || !strings.HasSuffix(name, ".log") {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, walPrefix), ".log"), 10, 64)
		if err != nil {
			continue
		}
		segs = append(segs, n)
	}
	s := &Store{dir: dir, policy: policy}
	if len(segs) == 0 {
		if err := s.openSegment(0, true); err != nil {
			return nil, err
		}
		return s, nil
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	seg := segs[len(segs)-1]
	if snap, err := os.ReadFile(s.snapPath(seg)); err == nil {
		s.snap = snap
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("journal: store: %w", err)
	}
	tail, err := os.ReadFile(s.walPath(seg))
	if err != nil {
		return nil, fmt.Errorf("journal: store: %w", err)
	}
	s.tail = tail
	if err := s.openSegment(seg, false); err != nil {
		return nil, err
	}
	// Stale older segments (a crash between "new segment ready" and "old
	// segment deleted") are swept here; the newest segment is authoritative.
	for _, old := range segs[:len(segs)-1] {
		os.Remove(s.walPath(old))
		os.Remove(s.snapPath(old))
	}
	return s, nil
}

func (s *Store) snapPath(seg uint64) string {
	return filepath.Join(s.dir, snapPrefix+fmt.Sprintf(segFmt, seg)+".bin")
}

func (s *Store) walPath(seg uint64) string {
	return filepath.Join(s.dir, walPrefix+fmt.Sprintf(segFmt, seg)+".log")
}

// openSegment opens seg's wal for appending (creating it when fresh) and
// rebinds the store's Writer to it.
func (s *Store) openSegment(seg uint64, create bool) error {
	flags := os.O_WRONLY | os.O_APPEND
	if create {
		flags |= os.O_CREATE
	}
	f, err := os.OpenFile(s.walPath(seg), flags, 0o644)
	if err != nil {
		return fmt.Errorf("journal: store: %w", err)
	}
	s.seg, s.f = seg, f
	if s.w == nil {
		s.w = NewWriter(s)
		s.w.SetSync(s.syncFile, s.policy)
	}
	return nil
}

// Write appends to the current wal file (io.Writer for the store's
// Writer; rebinding on rotation happens under mu).
func (s *Store) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return 0, fmt.Errorf("journal: store: closed")
	}
	n, err := s.f.Write(p)
	if err == nil && s.mirror != nil {
		s.mirror(p)
	}
	return n, err
}

// SetMirror installs a tee invoked with every byte slice successfully
// appended to the wal, under the store's lock and in append order — the
// hook a replicated coordinator uses to stream its journal to followers.
// The callback must not call back into the store. A nil fn uninstalls it.
func (s *Store) SetMirror(fn func(p []byte)) {
	s.mu.Lock()
	s.mirror = fn
	s.mu.Unlock()
}

// Sync flushes the current wal file to stable storage regardless of the
// store's sync policy — followers call it after applying replicated bytes
// so an acknowledged record is durable before the ack leaves the machine.
func (s *Store) Sync() error {
	return s.syncFile()
}

func (s *Store) syncFile() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	return s.f.Sync()
}

// Snapshot returns the newest segment's snapshot bytes as loaded at
// OpenStore (nil when the run started without one).
func (s *Store) Snapshot() []byte { return s.snap }

// Tail returns a reader over the wal frames written after the snapshot,
// as loaded at OpenStore.
func (s *Store) Tail() io.Reader { return bytes.NewReader(s.tail) }

// Writer returns the store's journal writer. It stays valid across
// Rotate — frames always land in the current segment's wal.
func (s *Store) Writer() *Writer { return s.w }

// Dir returns the persistence directory.
func (s *Store) Dir() string { return s.dir }

// Policy returns the store's sync policy, so a sharded server can open its
// per-shard stores with the durability the operator chose for the parent.
func (s *Store) Policy() SyncPolicy { return s.policy }

// Rotate begins a new segment whose snapshot is the given bytes: the
// snapshot is written tmp+fsync+rename, a fresh wal starts, and the old
// segment is deleted. A nil snapshot starts a snapshot-less segment (no
// snap file) — the truncate-to-empty reset a replication resync uses. On
// error the store keeps appending to the current segment — rotation is an
// optimization (bounded replay), never a correctness requirement.
func (s *Store) Rotate(snapshot []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("journal: store: closed")
	}
	next := s.seg + 1
	if snapshot != nil {
		tmp := s.snapPath(next) + ".tmp"
		f, err := os.Create(tmp)
		if err != nil {
			return fmt.Errorf("journal: store: rotate: %w", err)
		}
		if _, err = f.Write(snapshot); err == nil {
			err = f.Sync()
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			err = os.Rename(tmp, s.snapPath(next))
		}
		if err != nil {
			os.Remove(tmp)
			return fmt.Errorf("journal: store: rotate: %w", err)
		}
	}
	nf, err := os.OpenFile(s.walPath(next), os.O_WRONLY|os.O_APPEND|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		// The next snapshot exists but its wal does not; OpenStore would
		// still pick the old segment (wal presence defines a segment), so
		// clean up and keep writing where we were.
		os.Remove(s.snapPath(next))
		return fmt.Errorf("journal: store: rotate: %w", err)
	}
	old, oldSeg := s.f, s.seg
	old.Sync()
	old.Close()
	s.seg, s.f = next, nf
	s.snap, s.tail = snapshot, nil
	os.Remove(s.walPath(oldSeg))
	os.Remove(s.snapPath(oldSeg))
	return nil
}

// Close syncs and closes the current wal. Further writes fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}
