package journal

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/billboard"
)

func post(player, obj int, positive bool) billboard.Post {
	return billboard.Post{Player: player, Object: obj, Value: 1, Positive: positive}
}

func TestRoundTripRebuild(t *testing.T) {
	cfg := billboard.Config{Players: 4, Objects: 8}
	original, err := billboard.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)

	apply := func(p billboard.Post) {
		if err := original.Post(p); err != nil {
			t.Fatal(err)
		}
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	endRound := func() {
		original.EndRound()
		if err := w.EndRound(); err != nil {
			t.Fatal(err)
		}
	}

	apply(post(0, 3, true))
	apply(post(1, 3, true))
	endRound()
	apply(post(2, 5, true))
	apply(post(3, 1, false)) // negative report
	endRound()

	rebuilt, err := Rebuild(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.Round() != original.Round() {
		t.Fatalf("round %d != %d", rebuilt.Round(), original.Round())
	}
	for p := 0; p < 4; p++ {
		if !reflect.DeepEqual(rebuilt.Votes(p), original.Votes(p)) {
			t.Fatalf("player %d votes differ: %+v vs %+v",
				p, rebuilt.Votes(p), original.Votes(p))
		}
	}
	if rebuilt.NegativeCount(1) != 1 {
		t.Fatalf("negative count lost: %d", rebuilt.NegativeCount(1))
	}
	if !reflect.DeepEqual(rebuilt.VotedObjects(), original.VotedObjects()) {
		t.Fatal("voted objects differ")
	}
	if !reflect.DeepEqual(rebuilt.CountVotesInWindow(0, 2), original.CountVotesInWindow(0, 2)) {
		t.Fatal("window counts differ")
	}
}

func TestUncommittedTailDiscarded(t *testing.T) {
	cfg := billboard.Config{Players: 2, Objects: 4}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Append(post(0, 1, true)); err != nil {
		t.Fatal(err)
	}
	if err := w.EndRound(); err != nil {
		t.Fatal(err)
	}
	// A post whose round never closed (crash before the marker).
	if err := w.Append(post(1, 2, true)); err != nil {
		t.Fatal(err)
	}

	rebuilt, err := Rebuild(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.Round() != 1 {
		t.Fatalf("round = %d, want 1", rebuilt.Round())
	}
	if rebuilt.HasVote(1) {
		t.Fatal("uncommitted post leaked into the rebuilt board")
	}
	if !rebuilt.HasVote(0) {
		t.Fatal("committed post lost")
	}
}

func TestTruncatedStreamReportsButKeepsPrefix(t *testing.T) {
	cfg := billboard.Config{Players: 2, Objects: 4}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Append(post(0, 1, true)); err != nil {
		t.Fatal(err)
	}
	if err := w.EndRound(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(post(1, 2, true)); err != nil {
		t.Fatal(err)
	}
	if err := w.EndRound(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail mid-entry.
	torn := buf.Bytes()[:buf.Len()-3]

	rebuilt, err := Rebuild(bytes.NewReader(torn), cfg)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
	if rebuilt == nil {
		t.Fatal("prefix state lost")
	}
	if !rebuilt.HasVote(0) {
		t.Fatal("first committed round lost")
	}
}

func TestWriterFailsFast(t *testing.T) {
	w := NewWriter(failWriter{})
	if err := w.Append(post(0, 0, true)); err == nil {
		t.Fatal("write error swallowed")
	}
	// Subsequent calls return the sticky error without panicking.
	if err := w.EndRound(); err == nil {
		t.Fatal("sticky error not returned")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestReplayCallbackErrorsPropagate(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Append(post(0, 1, true)); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := Replay(&buf, func(billboard.Post) error { return boom }, func() error { return nil })
	if !errors.Is(err, boom) {
		t.Fatalf("apply error lost: %v", err)
	}
}

func TestAppendAcrossWriters(t *testing.T) {
	// Two separate Writers appending to the same buffer model a process
	// restart; one Replay must read both segments (this is why frames are
	// self-contained rather than one gob stream).
	cfg := billboard.Config{Players: 2, Objects: 4}
	var buf bytes.Buffer
	w1 := NewWriter(&buf)
	if err := w1.Append(post(0, 1, true)); err != nil {
		t.Fatal(err)
	}
	if err := w1.EndRound(); err != nil {
		t.Fatal(err)
	}
	w2 := NewWriter(&buf) // "restart"
	if err := w2.Append(post(1, 2, true)); err != nil {
		t.Fatal(err)
	}
	if err := w2.EndRound(); err != nil {
		t.Fatal(err)
	}
	rebuilt, err := Rebuild(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.Round() != 2 || !rebuilt.HasVote(0) || !rebuilt.HasVote(1) {
		t.Fatalf("append-across-restart lost state: round=%d", rebuilt.Round())
	}
}

func TestEmptyJournal(t *testing.T) {
	rebuilt, err := Rebuild(bytes.NewReader(nil), billboard.Config{Players: 1, Objects: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.Round() != 0 || rebuilt.TotalVotes() != 0 {
		t.Fatal("empty journal should rebuild an empty board")
	}
}

func TestForceDoneEventsReplay(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Append(post(0, 1, true)); err != nil {
		t.Fatal(err)
	}
	if err := w.ForceDone(2); err != nil {
		t.Fatal(err)
	}
	if err := w.EndRound(); err != nil {
		t.Fatal(err)
	}
	if err := w.ForceDone(3); err != nil {
		t.Fatal(err)
	}
	if err := w.EndRound(); err != nil {
		t.Fatal(err)
	}
	// A force-done in a round that never committed must be discarded along
	// with the round — the decision was never visible.
	if err := w.ForceDone(1); err != nil {
		t.Fatal(err)
	}

	board, events, err := RebuildEvents(bytes.NewReader(buf.Bytes()), billboard.Config{Players: 4, Objects: 8})
	if err != nil {
		t.Fatal(err)
	}
	if board.Round() != 2 {
		t.Fatalf("round = %d, want 2", board.Round())
	}
	want := []Event{{Player: 2, Round: 0}, {Player: 3, Round: 1}}
	if !reflect.DeepEqual(events, want) {
		t.Fatalf("events = %v, want %v", events, want)
	}

	// Plain Replay skips events; ReplayEvents surfaces them in order.
	var seen []Event
	err = ReplayEvents(bytes.NewReader(buf.Bytes()),
		func(billboard.Post) error { return nil },
		func() error { return nil },
		func(e Event) error { seen = append(seen, e); return nil })
	if err != nil {
		t.Fatal(err)
	}
	// ReplayEvents is raw (no round buffering): it reports the trailing
	// uncommitted event too, tagged with the round it happened in.
	wantRaw := append(want, Event{Player: 1, Round: 2})
	if !reflect.DeepEqual(seen, wantRaw) {
		t.Fatalf("raw events = %v, want %v", seen, wantRaw)
	}
}
