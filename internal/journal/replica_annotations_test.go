package journal

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/billboard"
)

// TestEndRoundQuorumAnnotation pins the replicated round marker: the
// Term/Quorum annotation survives the wire format, and plain EndRound
// markers stay unannotated (zero values), so single-coordinator journals
// are byte-compatible consumers of the same reader.
func TestEndRoundQuorumAnnotation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Append(billboard.Post{Player: 1, Object: 2, Value: 0.5}); err != nil {
		t.Fatal(err)
	}
	admits := []Admit{{Player: 1, Object: 2}}
	if err := w.EndRoundQuorum(admits, 7, 2); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(billboard.Post{Player: 0, Object: 3, Value: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.EndRound(); err != nil {
		t.Fatal(err)
	}

	var markers []Record
	if err := ReplayRecords(bytes.NewReader(buf.Bytes()), func(r Record) error {
		if r.Kind == RecordEndRound {
			markers = append(markers, r)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(markers) != 2 {
		t.Fatalf("got %d round markers, want 2", len(markers))
	}
	if markers[0].Term != 7 || markers[0].Quorum != 2 {
		t.Fatalf("quorum marker = term %d quorum %d, want 7/2", markers[0].Term, markers[0].Quorum)
	}
	if len(markers[0].Admits) != 1 || markers[0].Admits[0] != admits[0] {
		t.Fatalf("quorum marker admits = %+v, want %+v", markers[0].Admits, admits)
	}
	if markers[1].Term != 0 || markers[1].Quorum != 0 {
		t.Fatalf("plain marker carries annotation: term %d quorum %d", markers[1].Term, markers[1].Quorum)
	}
}

// TestStoreRotateNil pins the snapshot-less rotation used by follower
// resync: Rotate(nil) truncates the segment to an empty base with no
// snapshot, and the store keeps accepting appends afterwards.
func TestStoreRotateNil(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Write([]byte("stale bytes from a dead leadership")); err != nil {
		t.Fatal(err)
	}
	if err := st.Rotate(nil); err != nil {
		t.Fatal(err)
	}
	if snap := st.Snapshot(); len(snap) != 0 {
		t.Fatalf("snapshot after Rotate(nil) = %d bytes, want none", len(snap))
	}
	if tail, err := io.ReadAll(st.Tail()); err != nil || len(tail) != 0 {
		t.Fatalf("tail after Rotate(nil) = %d bytes (%v), want empty", len(tail), err)
	}
	if _, err := st.Write([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// The truncation is durable: a reopen sees only the post-rotation bytes.
	st2, err := OpenStore(dir, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if snap := st2.Snapshot(); len(snap) != 0 {
		t.Fatalf("reopened snapshot = %d bytes, want none", len(snap))
	}
	tail, err := io.ReadAll(st2.Tail())
	if err != nil || string(tail) != "fresh" {
		t.Fatalf("reopened tail = %q (%v), want \"fresh\"", tail, err)
	}
}
