// Package journal persists a billboard as an append-only log — the
// durability counterpart of the model's "append only" guarantee (§2.1: no
// message is ever erased). A Writer streams committed posts and round
// markers to any io.Writer; Replay reconstructs the exact board state, so a
// billboard server can recover from a crash without losing a single
// identity-tagged, timestamped report.
//
// Format: length-prefixed frames (uvarint length + gob-encoded entry),
// each frame self-contained. Self-contained frames make journals safely
// appendable across process restarts (unlike a single gob stream, whose
// type dictionary cannot be re-sent), and a torn tail loses at most the
// final partial frame. Posts are grouped into rounds by marker frames; a
// round without its marker was never visible to players (the synchrony
// contract) and is discarded on rebuild.
package journal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"repro/internal/billboard"
)

// entryKind discriminates journal records.
type entryKind uint8

const (
	kindPost entryKind = iota + 1
	kindEndRound
	kindForceDone
)

// entry is one journal record.
type entry struct {
	Kind   entryKind
	Post   billboard.Post // valid when Kind == kindPost
	Player int            // valid when Kind == kindForceDone
}

// maxFrame bounds a frame's declared size; anything larger is corruption.
const maxFrame = 1 << 20

// Writer appends billboard events to an underlying stream. Not safe for
// concurrent use; callers serialize (the billboard server holds its lock
// across Append/EndRound).
type Writer struct {
	w    io.Writer
	buf  bytes.Buffer
	lenb [binary.MaxVarintLen64]byte
	err  error // first write error; subsequent calls fail fast
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w}
}

func (w *Writer) write(e entry) error {
	if w.err != nil {
		return w.err
	}
	w.buf.Reset()
	// A fresh encoder per frame keeps every frame self-contained, which is
	// what makes append-after-recovery safe.
	if err := gob.NewEncoder(&w.buf).Encode(e); err != nil {
		w.err = fmt.Errorf("journal: %w", err)
		return w.err
	}
	n := binary.PutUvarint(w.lenb[:], uint64(w.buf.Len()))
	if _, err := w.w.Write(w.lenb[:n]); err != nil {
		w.err = fmt.Errorf("journal: %w", err)
		return w.err
	}
	if _, err := w.w.Write(w.buf.Bytes()); err != nil {
		w.err = fmt.Errorf("journal: %w", err)
		return w.err
	}
	return nil
}

// Append records one committed post.
func (w *Writer) Append(post billboard.Post) error {
	return w.write(entry{Kind: kindPost, Post: post})
}

// EndRound records a round boundary.
func (w *Writer) EndRound() error {
	return w.write(entry{Kind: kindEndRound})
}

// ForceDone records a barrier-deadline decision: the server deregistered
// player as a straggler so the round could commit. Journaling the decision
// keeps crash recovery consistent — a recovered server refuses to let a
// force-done player rejoin a run it was already expelled from.
func (w *Writer) ForceDone(player int) error {
	return w.write(entry{Kind: kindForceDone, Player: player})
}

// Event is an operational decision recorded in the journal alongside posts
// (today: a barrier-deadline force-done). Round is the round the decision
// committed with.
type Event struct {
	Player int
	Round  int
}

// ErrTruncated marks a journal whose tail could not be decoded. State
// rebuilt before the truncation point is still valid.
var ErrTruncated = errors.New("journal: truncated or corrupt tail")

// Replay reads a journal and invokes apply for each post and endRound at
// each round boundary, stopping cleanly at EOF. A torn or corrupt tail is
// reported as ErrTruncated after every complete preceding frame has been
// applied. Operational events (force-done records) are skipped; use
// ReplayEvents to observe them.
func Replay(r io.Reader, apply func(billboard.Post) error, endRound func() error) error {
	return ReplayEvents(r, apply, endRound, nil)
}

// ReplayEvents is Replay with an additional callback for operational
// events. Event.Round is the number of round markers read before the
// event — the round the decision was taken in. A nil event callback
// ignores events.
func ReplayEvents(r io.Reader, apply func(billboard.Post) error, endRound func() error, event func(Event) error) error {
	br := bufio.NewReader(r)
	round := 0
	for {
		size, err := binary.ReadUvarint(br)
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		if size == 0 || size > maxFrame {
			return fmt.Errorf("%w: implausible frame size %d", ErrTruncated, size)
		}
		frame := make([]byte, size)
		if _, err := io.ReadFull(br, frame); err != nil {
			return fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		var e entry
		if err := gob.NewDecoder(bytes.NewReader(frame)).Decode(&e); err != nil {
			return fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		switch e.Kind {
		case kindPost:
			if err := apply(e.Post); err != nil {
				return err
			}
		case kindEndRound:
			if err := endRound(); err != nil {
				return err
			}
			round++
		case kindForceDone:
			if event != nil {
				if err := event(Event{Player: e.Player, Round: round}); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("%w: unknown entry kind %d", ErrTruncated, e.Kind)
		}
	}
}

// replayOnto buffers each round's posts and events and applies them only
// once the round marker arrives, so a truncated final round — and any
// force-done decision taken in it — is discarded rather than leaking into
// the recovered board, matching the synchrony contract (an uncommitted
// round was never visible).
func replayOnto(r io.Reader, board *billboard.Board) ([]Event, error) {
	var pending []billboard.Post
	var pendingEv, events []Event
	err := ReplayEvents(r,
		func(p billboard.Post) error {
			pending = append(pending, p)
			return nil
		},
		func() error {
			for _, p := range pending {
				if err := board.Post(billboard.Post{
					Player:   p.Player,
					Object:   p.Object,
					Value:    p.Value,
					Positive: p.Positive,
				}); err != nil {
					return err
				}
			}
			pending = pending[:0]
			events = append(events, pendingEv...)
			pendingEv = pendingEv[:0]
			board.EndRound()
			return nil
		},
		func(e Event) error {
			pendingEv = append(pendingEv, e)
			return nil
		},
	)
	return events, err
}

// Apply replays a journal onto an existing board (e.g. one restored from a
// billboard snapshot — the compaction story: snapshot + journal tail =
// exact state). Posts of an unclosed final round are discarded, as in
// Rebuild; ErrTruncated reports a torn tail with all complete entries
// applied.
func Apply(r io.Reader, board *billboard.Board) error {
	_, err := replayOnto(r, board)
	return err
}

// ApplyEvents is Apply plus the committed operational events, in commit
// order. On ErrTruncated the returned events cover every committed round
// before the corruption.
func ApplyEvents(r io.Reader, board *billboard.Board) ([]Event, error) {
	return replayOnto(r, board)
}

// Rebuild replays a journal into a fresh board built from cfg. Posts whose
// rounds were never closed by a round marker are discarded, matching the
// synchrony contract (they were never visible). On ErrTruncated the board
// reflects every complete entry before the corruption and the error is
// returned alongside it so callers can decide whether to proceed.
func Rebuild(r io.Reader, cfg billboard.Config) (*billboard.Board, error) {
	board, _, err := RebuildEvents(r, cfg)
	return board, err
}

// RebuildEvents is Rebuild plus the committed operational events (the
// force-done decisions), in commit order.
func RebuildEvents(r io.Reader, cfg billboard.Config) (*billboard.Board, []Event, error) {
	board, err := billboard.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	events, replayErr := replayOnto(r, board)
	if replayErr != nil && !errors.Is(replayErr, ErrTruncated) {
		return nil, nil, replayErr
	}
	return board, events, replayErr
}
