// Package journal persists a billboard as an append-only log — the
// durability counterpart of the model's "append only" guarantee (§2.1: no
// message is ever erased). A Writer streams committed posts and round
// markers to any io.Writer; Replay reconstructs the exact board state, so a
// billboard server can recover from a crash without losing a single
// identity-tagged, timestamped report.
//
// Format: length-prefixed frames (uvarint length + gob-encoded entry),
// each frame self-contained. Self-contained frames make journals safely
// appendable across process restarts (unlike a single gob stream, whose
// type dictionary cannot be re-sent), and a torn tail loses at most the
// final partial frame. Posts are grouped into rounds by marker frames; a
// round without its marker was never visible to players (the synchrony
// contract) and is discarded on rebuild.
//
// Write-ahead records (durable restart). Beyond posts and round markers,
// the journal carries the operational records a server needs to restart
// mid-run with no observable effect on honest players:
//
//   - probe records (session, seq, player, object): the charged-probe
//     ledger. A probe is charged if and only if its record reached the
//     journal, so a recovered server re-derives per-player probe counts
//     and costs exactly — a retried probe is never double-billed across a
//     restart.
//   - barrier and done records (session, seq): round/membership state. A
//     barrier record is round-buffered like a post (an uncommitted round's
//     arrivals are discarded and re-arrive on retry); a done record
//     applies immediately (deregistration is idempotent).
//   - rollback markers: appended by a recovering server after it discards
//     an uncommitted tail, so a later recovery of the same file discards
//     that orphan prefix too instead of double-applying re-executed posts.
//
// Session-scoped records let recovery rebuild each session's dedup window
// (last executed sequence number), which is what makes a server restart
// look like an ordinary long reconnect to a resuming client.
package journal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"repro/internal/billboard"
)

// entryKind discriminates journal records.
type entryKind uint8

const (
	kindPost entryKind = iota + 1
	kindEndRound
	kindForceDone
	kindProbe
	kindDone
	kindBarrier
	kindRollback
	kindSwarmOpen
	kindEpoch
)

// entry is one journal record. Session/Seq are zero in journals written
// before the write-ahead extension; gob decodes old frames with the new
// fields absent, so both generations replay through the same path. Index
// and Admits are the sharding extension: a sharded server's lanes journal
// each post with its global batch index, and round markers carry the
// round's admitted (player, object) vote pairs so a single lane's journal
// replays to exactly the votes the global admission pass granted, without
// consulting the other lanes.
type entry struct {
	Kind    entryKind
	Post    billboard.Post // valid when Kind == kindPost
	Player  int            // valid for kindForceDone, kindProbe, kindDone, kindBarrier
	Session uint64         // session the record belongs to (0: none recorded)
	Seq     uint64         // per-session request sequence number (0: none)
	Object  int            // valid when Kind == kindProbe
	Index   int            // valid when Kind == kindPost: client batch order
	Admits  []Admit        // valid when Kind == kindEndRound on a sharded store
	// PlayerTo closes the member range [Player, PlayerTo) of a swarm
	// session (kindSwarmOpen): one session that registered a contiguous
	// block of players at once. Recovery rebuilds the whole block's
	// membership from the single record.
	PlayerTo int

	// Term and Quorum annotate a round marker written by a replicated
	// coordinator (kindEndRound): the leader term that proposed the round
	// and the number of durable replica acknowledgements (leader included)
	// the commit waited for. Zero on single-coordinator journals — gob
	// omits zero fields, so unreplicated journals stay byte-identical.
	Term   uint64
	Quorum int

	// Epoch is the sealed epoch number of an epoch marker (kindEpoch),
	// written by an epoch-mode server adjacent to the round marker that
	// commits the same posts. Board-neutral on replay: the round markers
	// alone reconstruct the board, so replication and crash recovery work
	// unchanged whether the run was paced by barriers or by epochs.
	Epoch int
}

// Admit is one admitted vote pair recorded on a sharded round marker: in
// the round it closes, player's positive post on Object became a vote.
type Admit struct {
	Player int
	Object int
}

// maxFrame bounds a frame's declared size; anything larger is corruption.
const maxFrame = 1 << 20

// SyncPolicy selects when a Writer invokes its sync hook (typically
// os.File.Sync) — the durability/throughput trade-off of the journal.
type SyncPolicy int

const (
	// SyncCommit fsyncs at round markers and rollbacks (the default): a
	// machine crash loses at most the uncommitted round, which the
	// synchrony contract discards anyway. Probe records between commits
	// ride in the OS page cache — durable across a process kill, not
	// across a power cut.
	SyncCommit SyncPolicy = iota
	// SyncNone never fsyncs: the OS flushes on its own schedule. Process
	// crashes (kill -9) still lose nothing — written bytes survive the
	// process — but a machine crash can lose committed rounds.
	SyncNone
	// SyncAlways fsyncs after every record: full durability, one disk
	// flush per probe/post on the hot path.
	SyncAlways
)

// String returns the policy name as accepted by ParseSyncPolicy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncCommit:
		return "commit"
	case SyncNone:
		return "none"
	case SyncAlways:
		return "always"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy parses "commit", "none", or "always".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "commit":
		return SyncCommit, nil
	case "none":
		return SyncNone, nil
	case "always":
		return SyncAlways, nil
	default:
		return 0, fmt.Errorf("journal: unknown sync policy %q (want commit, none, or always)", s)
	}
}

// Writer appends billboard events to an underlying stream. Not safe for
// concurrent use; callers serialize (the billboard server holds its lock
// across Append/EndRound).
type Writer struct {
	w      io.Writer
	buf    bytes.Buffer
	lenb   [binary.MaxVarintLen64]byte
	err    error // first write error; subsequent calls fail fast
	sync   func() error
	policy SyncPolicy
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w}
}

// SetSync installs a sync hook (typically os.File.Sync) invoked per the
// policy: after every frame (SyncAlways) or after round markers and
// rollbacks only (SyncCommit). SyncNone never invokes it.
func (w *Writer) SetSync(sync func() error, policy SyncPolicy) {
	w.sync, w.policy = sync, policy
}

func (w *Writer) write(e entry) error {
	if w.err != nil {
		return w.err
	}
	w.buf.Reset()
	// A fresh encoder per frame keeps every frame self-contained, which is
	// what makes append-after-recovery safe.
	if err := gob.NewEncoder(&w.buf).Encode(e); err != nil {
		w.err = fmt.Errorf("journal: %w", err)
		return w.err
	}
	n := binary.PutUvarint(w.lenb[:], uint64(w.buf.Len()))
	if _, err := w.w.Write(w.lenb[:n]); err != nil {
		w.err = fmt.Errorf("journal: %w", err)
		return w.err
	}
	if _, err := w.w.Write(w.buf.Bytes()); err != nil {
		w.err = fmt.Errorf("journal: %w", err)
		return w.err
	}
	if w.sync != nil &&
		(w.policy == SyncAlways ||
			(w.policy == SyncCommit && (e.Kind == kindEndRound || e.Kind == kindRollback))) {
		if err := w.sync(); err != nil {
			w.err = fmt.Errorf("journal: sync: %w", err)
			return w.err
		}
	}
	return nil
}

// Append records one committed post with no session attribution (legacy
// callers); see AppendFrom for the write-ahead form.
func (w *Writer) Append(post billboard.Post) error {
	return w.write(entry{Kind: kindPost, Post: post})
}

// AppendFrom records one accepted post under the session and sequence
// number that produced it, so recovery can rebuild the session's dedup
// window alongside the board.
func (w *Writer) AppendFrom(session, seq uint64, post billboard.Post) error {
	return w.write(entry{Kind: kindPost, Post: post, Session: session, Seq: seq})
}

// AppendAt is AppendFrom plus the post's client batch order index — the
// write-ahead form used by a sharded lane, where the commit order across
// lanes is (player, index) rather than single-log arrival order.
func (w *Writer) AppendAt(session, seq uint64, index int, post billboard.Post) error {
	return w.write(entry{Kind: kindPost, Post: post, Session: session, Seq: seq, Index: index})
}

// EndRound records a round boundary.
func (w *Writer) EndRound() error {
	return w.write(entry{Kind: kindEndRound})
}

// EndRoundAdmits records a round boundary carrying the round's admitted
// vote pairs (sharded stores). Replaying a single lane honors the recorded
// admissions instead of re-deriving them, which keeps lane replay exact
// even though the global vote budget was consumed across all lanes.
func (w *Writer) EndRoundAdmits(admits []Admit) error {
	return w.write(entry{Kind: kindEndRound, Admits: admits})
}

// EndRoundQuorum records a round boundary annotated with the replication
// facts of its commit: the leader term that proposed it and the quorum of
// durable replica acknowledgements it waited for. A replicated coordinator
// seals every round with this marker; replay treats it exactly like
// EndRoundAdmits and surfaces the annotation on Record.Term/Quorum.
func (w *Writer) EndRoundQuorum(admits []Admit, term uint64, quorum int) error {
	return w.write(entry{Kind: kindEndRound, Admits: admits, Term: term, Quorum: quorum})
}

// AppendEndRoundFrame appends one complete round-marker frame — uvarint
// length prefix plus gob payload, byte-identical to what EndRoundAdmits
// (term and quorum zero) or EndRoundQuorum would write — to dst and returns
// the extended slice. Frames are self-contained (fresh encoder per frame),
// so a sharded commit encodes its admits marker once and hands the same
// bytes to every lane's WriteEndRoundFrame instead of re-encoding per lane.
func AppendEndRoundFrame(dst []byte, admits []Admit, term uint64, quorum int) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(entry{
		Kind: kindEndRound, Admits: admits, Term: term, Quorum: quorum,
	}); err != nil {
		return dst, fmt.Errorf("journal: %w", err)
	}
	var lenb [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenb[:], uint64(buf.Len()))
	dst = append(dst, lenb[:n]...)
	dst = append(dst, buf.Bytes()...)
	return dst, nil
}

// WriteEndRoundFrame appends a pre-encoded round-marker frame (from
// AppendEndRoundFrame) and applies the writer's round-marker sync policy,
// exactly as EndRoundAdmits would. The frame lands in one underlying Write,
// so a store mirror tees it as a single chunk.
func (w *Writer) WriteEndRoundFrame(frame []byte) error {
	if w.err != nil {
		return w.err
	}
	if _, err := w.w.Write(frame); err != nil {
		w.err = fmt.Errorf("journal: %w", err)
		return w.err
	}
	if w.sync != nil && w.policy != SyncNone {
		if err := w.sync(); err != nil {
			w.err = fmt.Errorf("journal: sync: %w", err)
			return w.err
		}
	}
	return nil
}

// ForceDone records a barrier-deadline decision: the server deregistered
// player as a straggler so the round could commit. Journaling the decision
// keeps crash recovery consistent — a recovered server refuses to let a
// force-done player rejoin a run it was already expelled from.
func (w *Writer) ForceDone(player int) error {
	return w.write(entry{Kind: kindForceDone, Player: player})
}

// Probe records a charged probe before its response is sent — the
// write-ahead half of the exactly-once billing contract: a probe is
// charged iff its record is in the journal.
func (w *Writer) Probe(session, seq uint64, player, object int) error {
	return w.write(entry{Kind: kindProbe, Session: session, Seq: seq, Player: player, Object: object})
}

// Done records a player's voluntary deregistration.
func (w *Writer) Done(session, seq uint64, player int) error {
	return w.write(entry{Kind: kindDone, Session: session, Seq: seq, Player: player})
}

// Barrier records a player's arrival at the round barrier. Buffered like a
// post: it binds only when the round's marker follows.
func (w *Writer) Barrier(session, seq uint64, player int) error {
	return w.write(entry{Kind: kindBarrier, Session: session, Seq: seq, Player: player})
}

// Rollback marks that a recovering server discarded the records since the
// last round marker (the uncommitted tail of a crashed run). Replays honor
// it by dropping their pending buffers, so posts re-executed after the
// restart are not double-applied by the next recovery.
func (w *Writer) Rollback() error {
	return w.write(entry{Kind: kindRollback})
}

// SwarmOpen records the registration of a swarm session: one session that
// registered every player in [from, to) at once. Applies immediately, like
// registration itself; recovery rebuilds the block's membership and session
// binding from this single record.
func (w *Writer) SwarmOpen(session uint64, from, to int) error {
	return w.write(entry{Kind: kindSwarmOpen, Session: session, Player: from, PlayerTo: to})
}

// EpochMark records the sealing of one timestamped epoch (epoch-mode
// servers). It is written adjacent to the round marker committing the same
// posts and is board-neutral on replay — sync-mode journals never contain
// it, and recovery of an epoch-mode journal rebuilds the board from the
// round markers exactly as before.
func (w *Writer) EpochMark(epoch int) error {
	return w.write(entry{Kind: kindEpoch, Epoch: epoch})
}

// Err returns the Writer's first write error (nil while healthy).
func (w *Writer) Err() error { return w.err }

// RecordKind discriminates replayed journal records.
type RecordKind uint8

// Record kinds, mirroring the Writer's vocabulary.
const (
	RecordPost      = RecordKind(kindPost)
	RecordEndRound  = RecordKind(kindEndRound)
	RecordForceDone = RecordKind(kindForceDone)
	RecordProbe     = RecordKind(kindProbe)
	RecordDone      = RecordKind(kindDone)
	RecordBarrier   = RecordKind(kindBarrier)
	RecordRollback  = RecordKind(kindRollback)
	RecordSwarmOpen = RecordKind(kindSwarmOpen)
	RecordEpoch     = RecordKind(kindEpoch)
)

// Record is one decoded journal record. Round is the number of round
// markers read before it — the round the record belongs to.
type Record struct {
	Kind    RecordKind
	Post    billboard.Post // valid when Kind == RecordPost
	Session uint64
	Seq     uint64
	Player  int     // valid for force-done, probe, done, barrier, swarm-open
	Object  int     // valid when Kind == RecordProbe
	Index   int     // valid when Kind == RecordPost: client batch order
	Admits  []Admit // valid when Kind == RecordEndRound on a sharded store
	// PlayerTo closes a swarm session's member range [Player, PlayerTo)
	// (RecordSwarmOpen).
	PlayerTo int
	// Term and Quorum surface a replicated round marker's annotation
	// (EndRoundQuorum); zero on single-coordinator journals.
	Term   uint64
	Quorum int
	// Epoch surfaces an epoch marker's sealed epoch number (RecordEpoch).
	Epoch int
	Round int
}

// Event is an operational decision recorded in the journal alongside posts
// (today: a barrier-deadline force-done). Round is the round the decision
// committed with.
type Event struct {
	Player int
	Round  int
}

// ErrTruncated marks a journal whose tail could not be decoded. State
// rebuilt before the truncation point is still valid.
var ErrTruncated = errors.New("journal: truncated or corrupt tail")

// ReplayRecords reads a journal and invokes fn for every record, stopping
// cleanly at EOF. A torn or corrupt tail is reported as ErrTruncated after
// every complete preceding frame has been delivered. This is the low-level
// replay; Rebuild/Apply add the round-buffering semantics a billboard
// needs.
func ReplayRecords(r io.Reader, fn func(Record) error) error {
	br := bufio.NewReader(r)
	round := 0
	for {
		size, err := binary.ReadUvarint(br)
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		if size == 0 || size > maxFrame {
			return fmt.Errorf("%w: implausible frame size %d", ErrTruncated, size)
		}
		frame := make([]byte, size)
		if _, err := io.ReadFull(br, frame); err != nil {
			return fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		var e entry
		if err := gob.NewDecoder(bytes.NewReader(frame)).Decode(&e); err != nil {
			return fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		if e.Kind < kindPost || e.Kind > kindEpoch {
			return fmt.Errorf("%w: unknown entry kind %d", ErrTruncated, e.Kind)
		}
		rec := Record{
			Kind:     RecordKind(e.Kind),
			Post:     e.Post,
			Session:  e.Session,
			Seq:      e.Seq,
			Player:   e.Player,
			Object:   e.Object,
			Index:    e.Index,
			Admits:   e.Admits,
			PlayerTo: e.PlayerTo,
			Term:     e.Term,
			Quorum:   e.Quorum,
			Epoch:    e.Epoch,
			Round:    round,
		}
		if err := fn(rec); err != nil {
			return err
		}
		if e.Kind == kindEndRound {
			round++
		}
	}
}

// Replay reads a journal and invokes apply for each post and endRound at
// each round boundary, stopping cleanly at EOF. A torn or corrupt tail is
// reported as ErrTruncated after every complete preceding frame has been
// applied. Operational events (force-done records) are skipped; use
// ReplayEvents to observe them.
func Replay(r io.Reader, apply func(billboard.Post) error, endRound func() error) error {
	return ReplayEvents(r, apply, endRound, nil)
}

// ReplayEvents is Replay with an additional callback for operational
// events. Event.Round is the number of round markers read before the
// event — the round the decision was taken in. A nil event callback
// ignores events. Write-ahead records (probes, barriers, dones, rollbacks)
// are board-neutral and skipped here; use ReplayRecords to observe them.
func ReplayEvents(r io.Reader, apply func(billboard.Post) error, endRound func() error, event func(Event) error) error {
	return ReplayRecords(r, func(rec Record) error {
		switch rec.Kind {
		case RecordPost:
			return apply(rec.Post)
		case RecordEndRound:
			return endRound()
		case RecordForceDone:
			if event != nil {
				return event(Event{Player: rec.Player, Round: rec.Round})
			}
		}
		return nil
	})
}

// replayOnto buffers each round's posts and events and applies them only
// once the round marker arrives, so a truncated final round — and any
// force-done decision taken in it — is discarded rather than leaking into
// the recovered board, matching the synchrony contract (an uncommitted
// round was never visible). A rollback record drops the pending buffers
// the same way a truncation would.
func replayOnto(r io.Reader, board *billboard.Board) ([]Event, error) {
	var pending []billboard.Post
	var pendingEv, events []Event
	err := ReplayRecords(r, func(rec Record) error {
		switch rec.Kind {
		case RecordPost:
			pending = append(pending, rec.Post)
		case RecordForceDone:
			pendingEv = append(pendingEv, Event{Player: rec.Player, Round: rec.Round})
		case RecordRollback:
			pending = pending[:0]
			pendingEv = pendingEv[:0]
		case RecordEndRound:
			for _, p := range pending {
				if err := board.Post(billboard.Post{
					Player:   p.Player,
					Object:   p.Object,
					Value:    p.Value,
					Positive: p.Positive,
				}); err != nil {
					return err
				}
			}
			pending = pending[:0]
			events = append(events, pendingEv...)
			pendingEv = pendingEv[:0]
			board.EndRound()
		}
		return nil
	})
	return events, err
}

// Apply replays a journal onto an existing board (e.g. one restored from a
// billboard snapshot — the compaction story: snapshot + journal tail =
// exact state). Posts of an unclosed final round are discarded, as in
// Rebuild; ErrTruncated reports a torn tail with all complete entries
// applied.
func Apply(r io.Reader, board *billboard.Board) error {
	_, err := replayOnto(r, board)
	return err
}

// ApplyEvents is Apply plus the committed operational events, in commit
// order. On ErrTruncated the returned events cover every committed round
// before the corruption.
func ApplyEvents(r io.Reader, board *billboard.Board) ([]Event, error) {
	return replayOnto(r, board)
}

// Rebuild replays a journal into a fresh board built from cfg. Posts whose
// rounds were never closed by a round marker are discarded, matching the
// synchrony contract (they were never visible). On ErrTruncated the board
// reflects every complete entry before the corruption and the error is
// returned alongside it so callers can decide whether to proceed.
func Rebuild(r io.Reader, cfg billboard.Config) (*billboard.Board, error) {
	board, _, err := RebuildEvents(r, cfg)
	return board, err
}

// RebuildEvents is Rebuild plus the committed operational events (the
// force-done decisions), in commit order.
func RebuildEvents(r io.Reader, cfg billboard.Config) (*billboard.Board, []Event, error) {
	board, err := billboard.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	events, replayErr := replayOnto(r, board)
	if replayErr != nil && !errors.Is(replayErr, ErrTruncated) {
		return nil, nil, replayErr
	}
	return board, events, replayErr
}
