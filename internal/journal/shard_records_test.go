package journal

import (
	"bytes"
	"testing"
)

// TestAppendAtCarriesIndexAndSession pins the sharded write-ahead record:
// AppendAt journals a post with its session, sequence number, and the
// client-assigned post index, and ReplayRecords hands all three back — the
// order key a recovering shard lane re-sorts its pending tail by.
func TestAppendAtCarriesIndexAndSession(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.AppendAt(0xfeed, 7, 41, post(2, 5, true)); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendAt(0xfeed, 8, 42, post(2, 9, false)); err != nil {
		t.Fatal(err)
	}
	var recs []Record
	if err := ReplayRecords(&buf, func(r Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2", len(recs))
	}
	for i, want := range []struct {
		seq   uint64
		index int
		obj   int
	}{{7, 41, 5}, {8, 42, 9}} {
		r := recs[i]
		if r.Kind != RecordPost || r.Session != 0xfeed || r.Seq != want.seq ||
			r.Index != want.index || r.Post.Object != want.obj {
			t.Fatalf("record %d = %+v, want session 0xfeed seq %d index %d object %d",
				i, r, want.seq, want.index, want.obj)
		}
	}
}

// TestEndRoundAdmitsReplay pins the admission-carrying round marker: the
// (player, object) pairs the coordinator admitted travel on the EndRound
// record, so an independently replaying shard lane can apply exactly the
// committed admissions without re-deriving the global vote budget.
func TestEndRoundAdmitsReplay(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	admits := []Admit{{Player: 0, Object: 3}, {Player: 2, Object: 5}}
	if err := w.Append(post(0, 3, true)); err != nil {
		t.Fatal(err)
	}
	if err := w.EndRoundAdmits(admits); err != nil {
		t.Fatal(err)
	}
	if err := w.EndRound(); err != nil { // plain marker: no admissions
		t.Fatal(err)
	}
	var markers [][]Admit
	if err := ReplayRecords(&buf, func(r Record) error {
		if r.Kind == RecordEndRound {
			markers = append(markers, r.Admits)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(markers) != 2 {
		t.Fatalf("replayed %d round markers, want 2", len(markers))
	}
	if len(markers[0]) != 2 || markers[0][0] != admits[0] || markers[0][1] != admits[1] {
		t.Fatalf("admits mangled: %+v", markers[0])
	}
	if len(markers[1]) != 0 {
		t.Fatalf("plain EndRound grew admissions: %+v", markers[1])
	}
}
