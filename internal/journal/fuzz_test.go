package journal

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/billboard"
)

// FuzzReplay feeds arbitrary bytes to the journal reader: it must never
// panic, and must classify any non-journal input as clean EOF (empty) or
// ErrTruncated — never as valid state beyond what complete frames encode.
func FuzzReplay(f *testing.F) {
	// Seed with a valid journal, a torn one, and junk.
	var valid bytes.Buffer
	w := NewWriter(&valid)
	_ = w.Append(billboard.Post{Player: 0, Object: 1, Value: 1, Positive: true})
	_ = w.EndRound()
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:valid.Len()-2])
	f.Add([]byte("garbage"))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}) // huge uvarint

	f.Fuzz(func(t *testing.T, data []byte) {
		posts, rounds := 0, 0
		err := Replay(bytes.NewReader(data),
			func(billboard.Post) error { posts++; return nil },
			func() error { rounds++; return nil },
		)
		if err != nil && !errors.Is(err, ErrTruncated) {
			t.Fatalf("unexpected error class: %v", err)
		}
		// Rebuild must also never panic on the same input.
		if _, err := Rebuild(bytes.NewReader(data), billboard.Config{Players: 4, Objects: 4}); err != nil && !errors.Is(err, ErrTruncated) {
			t.Fatalf("rebuild error class: %v", err)
		}
	})
}

// FuzzWriteReplayRoundTrip generates structured journals from fuzz input
// and checks the round-trip invariant: what the Writer wrote, Replay reads
// back exactly.
func FuzzWriteReplayRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 0, 4})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, script []byte) {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		wantPosts, wantRounds := 0, 0
		for _, b := range script {
			if b%4 == 0 {
				if err := w.EndRound(); err != nil {
					t.Fatal(err)
				}
				wantRounds++
			} else {
				post := billboard.Post{
					Player:   int(b % 8),
					Object:   int(b % 16),
					Value:    float64(b) / 255,
					Positive: b%2 == 0,
				}
				if err := w.Append(post); err != nil {
					t.Fatal(err)
				}
				wantPosts++
			}
		}
		gotPosts, gotRounds := 0, 0
		err := Replay(&buf,
			func(billboard.Post) error { gotPosts++; return nil },
			func() error { gotRounds++; return nil },
		)
		if err != nil {
			t.Fatalf("replay of a writer-produced journal failed: %v", err)
		}
		if gotPosts != wantPosts || gotRounds != wantRounds {
			t.Fatalf("round trip lost entries: posts %d/%d rounds %d/%d",
				gotPosts, wantPosts, gotRounds, wantRounds)
		}
	})
}
