package journal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/billboard"
)

// collect replays every record in the store's tail.
func collect(t *testing.T, s *Store) []Record {
	t.Helper()
	var recs []Record
	if err := ReplayRecords(s.Tail(), func(r Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatalf("replay tail: %v", err)
	}
	return recs
}

// TestStoreAppendReopen writes write-ahead records through a store, closes
// it, and reopens: the tail must replay every frame with its session
// attribution and round numbering intact.
func TestStoreAppendReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, SyncCommit)
	if err != nil {
		t.Fatal(err)
	}
	w := s.Writer()
	if err := w.Probe(7, 1, 0, 3); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendFrom(7, 2, billboard.Post{Player: 0, Object: 3, Value: 1, Positive: true}); err != nil {
		t.Fatal(err)
	}
	if err := w.Barrier(7, 2, 0); err != nil {
		t.Fatal(err)
	}
	if err := w.EndRound(); err != nil {
		t.Fatal(err)
	}
	if err := w.Done(7, 3, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(dir, SyncCommit)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Snapshot() != nil {
		t.Fatal("fresh store grew a snapshot")
	}
	recs := collect(t, s2)
	wantKinds := []RecordKind{RecordProbe, RecordPost, RecordBarrier, RecordEndRound, RecordDone}
	if len(recs) != len(wantKinds) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(wantKinds))
	}
	for i, k := range wantKinds {
		if recs[i].Kind != k {
			t.Fatalf("record %d kind = %d, want %d", i, recs[i].Kind, k)
		}
	}
	if recs[0].Session != 7 || recs[0].Seq != 1 || recs[0].Object != 3 {
		t.Fatalf("probe record = %+v", recs[0])
	}
	if recs[1].Post.Object != 3 || !recs[1].Post.Positive {
		t.Fatalf("post record = %+v", recs[1])
	}
	// Round numbering: records before the marker are round 0, after it 1.
	if recs[2].Round != 0 || recs[4].Round != 1 {
		t.Fatalf("rounds = %d, %d; want 0, 1", recs[2].Round, recs[4].Round)
	}
}

// TestStoreRotate pins the segment lifecycle: Rotate installs the snapshot,
// starts an empty wal, deletes the old pair, and the same Writer keeps
// appending into the new segment. Reopen serves the new snapshot + tail.
func TestStoreRotate(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	w := s.Writer()
	if err := w.Probe(1, 1, 0, 0); err != nil {
		t.Fatal(err)
	}
	snap := []byte("state-after-round-3")
	if err := s.Rotate(snap); err != nil {
		t.Fatal(err)
	}
	if string(s.Snapshot()) != string(snap) {
		t.Fatalf("snapshot = %q", s.Snapshot())
	}
	if recs := collect(t, s); len(recs) != 0 {
		t.Fatalf("rotated wal still has %d records", len(recs))
	}
	// The pre-rotation pair is gone; only segment 1 remains.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("dir after rotate = %v, want exactly snap+wal of segment 1", names)
	}
	// The original Writer survives the rotation.
	if err := w.Probe(1, 2, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(dir, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if string(s2.Snapshot()) != string(snap) {
		t.Fatalf("reopened snapshot = %q", s2.Snapshot())
	}
	recs := collect(t, s2)
	if len(recs) != 1 || recs[0].Kind != RecordProbe || recs[0].Seq != 2 {
		t.Fatalf("reopened tail = %+v", recs)
	}
}

// TestStoreSweepsStaleSegments simulates a crash between "new segment
// ready" and "old segment deleted": both segments on disk. Reopen must pick
// the newest and sweep the orphans.
func TestStoreSweepsStaleSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Writer().Probe(1, 1, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Hand-plant the next segment as a crashed rotation would leave it.
	if err := os.WriteFile(filepath.Join(dir, "snap-00000001.bin"), []byte("newer"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "wal-00000001.log"), nil, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(dir, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if string(s2.Snapshot()) != "newer" {
		t.Fatalf("picked snapshot %q, want the newest segment", s2.Snapshot())
	}
	if recs := collect(t, s2); len(recs) != 0 {
		t.Fatalf("newest tail has %d records, want 0", len(recs))
	}
	if _, err := os.Stat(filepath.Join(dir, "wal-00000000.log")); !os.IsNotExist(err) {
		t.Fatal("stale segment 0 wal survived the sweep")
	}
}

// TestStoreClosed: writes and rotations after Close fail loudly instead of
// appending to a closed file descriptor.
func TestStoreClosed(t *testing.T) {
	s, err := OpenStore(t.TempDir(), SyncCommit)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Writer().Probe(1, 1, 0, 0); err == nil {
		t.Fatal("write to closed store succeeded")
	}
	if err := s.Rotate([]byte("x")); err == nil {
		t.Fatal("rotate on closed store succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// TestRollbackFencesUncommittedTail pins the double-recovery contract: a
// recovering server discards an uncommitted tail and appends a rollback
// marker; a second replay of the same file must treat the orphaned records
// as discarded too, not re-apply them alongside their re-executed retries.
func TestRollbackFencesUncommittedTail(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, SyncCommit)
	if err != nil {
		t.Fatal(err)
	}
	w := s.Writer()
	post := billboard.Post{Player: 0, Object: 2, Value: 1, Positive: true}
	if err := w.AppendFrom(5, 1, post); err != nil {
		t.Fatal(err)
	}
	if err := w.EndRound(); err != nil {
		t.Fatal(err)
	}
	// Uncommitted tail: a post with no round marker (crash before commit).
	if err := w.AppendFrom(5, 2, billboard.Post{Player: 0, Object: 9, Value: 1, Positive: false}); err != nil {
		t.Fatal(err)
	}
	// First recovery discards it and fences with a rollback, then the retry
	// re-executes the post and the round commits.
	if err := w.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendFrom(5, 2, billboard.Post{Player: 1, Object: 9, Value: 1, Positive: false}); err != nil {
		t.Fatal(err)
	}
	if err := w.EndRound(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := OpenStore(dir, SyncCommit)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	board, err := Rebuild(s2.Tail(), billboard.Config{Players: 2, Objects: 16})
	if err != nil {
		t.Fatal(err)
	}
	if board.Round() != 2 {
		t.Fatalf("rebuilt round = %d, want 2", board.Round())
	}
	// Exactly one report on object 9 — the retried one — and none from the
	// rolled-back orphan (player 0 must still be free to vote elsewhere).
	if got := board.NegativeCount(9); got != 1 {
		t.Fatalf("object 9 has %d negative reports, want 1 (orphan re-applied?)", got)
	}
	if got := len(board.Votes(0)); got != 1 {
		t.Fatalf("player 0 has %d votes, want 1", got)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, p := range []SyncPolicy{SyncCommit, SyncNone, SyncAlways} {
		got, err := ParseSyncPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("round-trip %v: got %v, %v", p, got, err)
		}
	}
	if _, err := ParseSyncPolicy("eventually"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

// TestStoreTornTail: a partial final frame on disk reports ErrTruncated
// from replay with every complete frame delivered — the property OpenStore
// relies on to recover from a mid-write crash.
func TestStoreTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Writer().Probe(3, 1, 0, 5); err != nil {
		t.Fatal(err)
	}
	s.Close()
	wal := filepath.Join(dir, "wal-00000000.log")
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A frame header promising more bytes than follow.
	if _, err := f.Write([]byte{0x40, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := OpenStore(dir, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	var recs []Record
	rerr := ReplayRecords(s2.Tail(), func(r Record) error {
		recs = append(recs, r)
		return nil
	})
	if !errors.Is(rerr, ErrTruncated) {
		t.Fatalf("torn tail replay err = %v, want ErrTruncated", rerr)
	}
	if len(recs) != 1 || recs[0].Kind != RecordProbe {
		t.Fatalf("complete prefix = %+v", recs)
	}
}
