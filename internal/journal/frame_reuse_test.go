package journal

import (
	"bytes"
	"testing"
)

// TestAppendEndRoundFrameByteIdentical pins the encode-once contract of the
// sharded commit: a pre-encoded round-marker frame written via
// WriteEndRoundFrame must be byte-for-byte what EndRoundAdmits (and, with
// term/quorum set, EndRoundQuorum) would have written — otherwise the lane
// journals of a parallel commit would diverge from a serial commit's and
// recovery digests would split.
func TestAppendEndRoundFrameByteIdentical(t *testing.T) {
	admits := []Admit{{Player: 1, Object: 9}, {Player: 3, Object: 2}}
	cases := []struct {
		name   string
		term   uint64
		quorum int
		write  func(w *Writer) error
	}{
		{"admits", 0, 0, func(w *Writer) error { return w.EndRoundAdmits(admits) }},
		{"quorum", 4, 2, func(w *Writer) error { return w.EndRoundQuorum(admits, 4, 2) }},
		{"empty", 0, 0, func(w *Writer) error { return w.EndRoundAdmits(nil) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var want bytes.Buffer
			if err := tc.write(NewWriter(&want)); err != nil {
				t.Fatal(err)
			}
			a := admits
			if tc.name == "empty" {
				a = nil
			}
			frame, err := AppendEndRoundFrame(nil, a, tc.term, tc.quorum)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(frame, want.Bytes()) {
				t.Fatalf("frame bytes diverge:\ngot:  %x\nwant: %x", frame, want.Bytes())
			}
			var got bytes.Buffer
			if err := NewWriter(&got).WriteEndRoundFrame(frame); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Fatalf("WriteEndRoundFrame output diverges from EndRoundAdmits")
			}
		})
	}
}

// TestWriteEndRoundFrameSyncPolicy checks the reused-frame path honors the
// round-marker fsync contract: SyncCommit and SyncAlways fire the hook,
// SyncNone does not.
func TestWriteEndRoundFrameSyncPolicy(t *testing.T) {
	frame, err := AppendEndRoundFrame(nil, []Admit{{Player: 0, Object: 1}}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		policy SyncPolicy
		want   int
	}{{SyncCommit, 1}, {SyncAlways, 1}, {SyncNone, 0}} {
		var buf bytes.Buffer
		synced := 0
		w := NewWriter(&buf)
		w.SetSync(func() error { synced++; return nil }, tc.policy)
		if err := w.WriteEndRoundFrame(frame); err != nil {
			t.Fatal(err)
		}
		if synced != tc.want {
			t.Fatalf("policy %v: synced %d times, want %d", tc.policy, synced, tc.want)
		}
	}
}
