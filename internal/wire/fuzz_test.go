package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzDecodeRequest feeds arbitrary byte streams to the request decoder. The
// server calls DecodeRequest on every byte an unauthenticated peer sends, so
// the invariant is absolute: malformed, truncated, or hostile input returns
// an error (or a valid request) — it never panics and never allocates an
// implausible buffer.
func FuzzDecodeRequest(f *testing.F) {
	// Valid frames.
	for _, req := range []Request{
		{Type: ReqHello, Player: 0, Token: "tok", Version: Version, Session: 1},
		{Type: ReqProbe, Object: 5, Session: 1, Seq: 1},
		{Type: ReqPost, Object: 5, Value: -1.5, Positive: true, Session: 1, Seq: 2},
		{Type: ReqBarrier, Session: 1, Seq: 3},
		// Protocol v4: lane hello and shard-routed indexed batch.
		{Type: ReqHello, Player: 1, Token: "tok", Version: Version, Session: 2, Lane: true, Shard: 3},
		{Type: ReqPostBatch, Session: 2, Seq: 4, Shard: 3,
			Posts: []PostMsg{{Object: 9, Value: 1, Positive: true, Index: 17}}},
	} {
		var buf bytes.Buffer
		if err := EncodeRequest(&buf, &req); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		// Truncations of a valid frame.
		if buf.Len() > 2 {
			f.Add(buf.Bytes()[:buf.Len()/2])
			f.Add(buf.Bytes()[:1])
		}
	}
	// Hostile length prefixes.
	var lenb [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenb[:], uint64(MaxFrame)+1)
	f.Add(append([]byte(nil), lenb[:n]...))
	n = binary.PutUvarint(lenb[:], 1<<62)
	f.Add(append([]byte(nil), lenb[:n]...))
	f.Add([]byte{0x00})
	// Valid length, garbage payload.
	f.Add([]byte{0x08, 0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88})
	f.Add([]byte("not a frame at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for i := 0; i < 4; i++ { // drain several frames, as a connection would
			req, err := DecodeRequest(r)
			if err != nil {
				return // any error is acceptable; panics are not
			}
			if req == nil {
				t.Fatal("nil request without error")
			}
		}
	})
}

// FuzzDecodeResponse is the client-side mirror: a byzantine or corrupted
// server must not be able to crash a player.
func FuzzDecodeResponse(f *testing.F) {
	var buf bytes.Buffer
	resp := Response{N: 2, M: 8, Costs: []float64{1, 2}, Round: 1, Counts: map[int]int{1: 1}}
	if err := EncodeResponse(&buf, &resp); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:buf.Len()/2])
	f.Add([]byte{0x03, 0x01, 0x02, 0x03})
	// Protocol v4: shard-count payload and a coded error.
	buf.Reset()
	if err := EncodeResponse(&buf, &Response{Round: 3, Shards: 4, Code: CodeSessionExpired, Err: "gone"}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = DecodeResponse(bytes.NewReader(data))
	})
}
