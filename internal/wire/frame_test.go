package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	reqs := []Request{
		{Type: ReqHello, Player: 3, Token: "secret", Version: Version, Session: 0xabc},
		{Type: ReqProbe, Object: 7, Session: 0xabc, Seq: 1},
		{Type: ReqPost, Object: 7, Value: 0.25, Positive: true, Session: 0xabc, Seq: 2},
		{Type: ReqWindow, From: 1, To: 9, Session: 0xabc, Seq: 3},
		{Type: ReqPostBatch, Session: 0xabc, Seq: 4, EndRound: true,
			Posts: []PostMsg{{Object: 2, Value: 0.5, Positive: true}, {Object: 3}}},
	}
	for i := range reqs {
		if err := EncodeRequest(&buf, &reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Frames are self-contained: decoding them back-to-back from one stream
	// must reproduce each request exactly and end with a clean io.EOF.
	for i := range reqs {
		got, err := DecodeRequest(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reqEqual(got, &reqs[i]) {
			t.Fatalf("frame %d: got %+v, want %+v", i, *got, reqs[i])
		}
	}
	if _, err := DecodeRequest(&buf); !errors.Is(err, io.EOF) {
		t.Fatalf("end of stream: %v, want io.EOF", err)
	}
}

// reqEqual compares requests field by field (the Posts slice keeps Request
// from being comparable with ==).
func reqEqual(a, b *Request) bool {
	if len(a.Posts) != len(b.Posts) {
		return false
	}
	for i := range a.Posts {
		if a.Posts[i] != b.Posts[i] {
			return false
		}
	}
	return a.Type == b.Type && a.Player == b.Player && a.Token == b.Token &&
		a.Version == b.Version && a.Session == b.Session && a.Seq == b.Seq &&
		a.Object == b.Object && a.Value == b.Value && a.Positive == b.Positive &&
		a.OfPlayer == b.OfPlayer && a.From == b.From && a.To == b.To &&
		a.EndRound == b.EndRound
}

func TestResponseFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := Response{
		N: 4, M: 32, LocalTesting: true, Alpha: 0.75, Beta: 0.125,
		Costs: []float64{1, 2}, Round: 5,
		Votes:  []VoteMsg{{Player: 1, Object: 2, Round: 3, Value: 0.5}},
		Counts: map[int]int{7: 2},
	}
	if err := EncodeResponse(&buf, &want); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResponse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != want.N || got.M != want.M || got.Round != want.Round ||
		len(got.Votes) != 1 || got.Votes[0] != want.Votes[0] || got.Counts[7] != 2 {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

func TestTornFrameIsError(t *testing.T) {
	var buf bytes.Buffer
	req := Request{Type: ReqProbe, Object: 1, Session: 9, Seq: 1}
	if err := EncodeRequest(&buf, &req); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	// Every proper prefix is either a clean EOF (nothing read yet) or a
	// decode error — never a panic, never a bogus request.
	for cut := 0; cut < len(whole); cut++ {
		_, err := DecodeRequest(bytes.NewReader(whole[:cut]))
		if err == nil {
			t.Fatalf("torn frame of %d/%d bytes decoded", cut, len(whole))
		}
		if cut == 0 && !errors.Is(err, io.EOF) {
			t.Fatalf("empty stream: %v, want io.EOF", err)
		}
	}
}

func TestImplausibleFrameSizeRejected(t *testing.T) {
	// A hostile length prefix must be rejected before any allocation.
	var lenb [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenb[:], uint64(MaxFrame)+1)
	if _, err := DecodeRequest(bytes.NewReader(lenb[:n])); err == nil {
		t.Fatal("oversized frame accepted")
	}
	if _, err := DecodeRequest(bytes.NewReader([]byte{0x00})); err == nil {
		t.Fatal("zero-length frame accepted")
	}
}

func TestGarbagePayloadIsError(t *testing.T) {
	junk := []byte{0x05, 0xff, 0xfe, 0xfd, 0xfc, 0xfb} // valid length, garbage gob
	if _, err := DecodeRequest(bytes.NewReader(junk)); err == nil {
		t.Fatal("garbage payload decoded")
	}
	if _, err := DecodeResponse(bytes.NewReader(junk)); err == nil {
		t.Fatal("garbage payload decoded as response")
	}
}
