// Package wire defines the client/server protocol of the networked
// billboard service (internal/server, internal/client): gob-encoded
// request/response pairs over a TCP stream, one in flight per connection.
//
// The protocol realizes the billboard guarantees of §2.1 —
//
//   - identity tagging: a connection authenticates once (Hello with a
//     player id and token); every post is stamped server-side with that
//     identity, so players cannot spoof each other;
//   - timestamps: the server stamps posts with its round counter;
//   - append-only: there is no delete or amend request;
//
// and the synchrony §1.2 says timestamps can simulate: a Barrier request
// ends the caller's round and blocks until every active player has done the
// same, at which point the server commits the round's posts.
package wire

import "fmt"

// ReqType enumerates request kinds.
type ReqType uint8

// Request kinds.
const (
	// ReqHello authenticates the connection as a player.
	ReqHello ReqType = iota + 1
	// ReqProbe probes an object: the server reveals its value (and, with
	// local testing, its goodness) and charges the cost.
	ReqProbe
	// ReqPost appends a report to the billboard (committed at round end).
	ReqPost
	// ReqVotes reads a player's current committed votes.
	ReqVotes
	// ReqVotedObjects reads the distinct objects holding votes.
	ReqVotedObjects
	// ReqVoteCount reads an object's current vote count.
	ReqVoteCount
	// ReqNegCount reads an object's negative-report count.
	ReqNegCount
	// ReqWindow counts vote events per object in a round window.
	ReqWindow
	// ReqBarrier ends the caller's round and blocks until it advances.
	ReqBarrier
	// ReqDone deregisters the caller (it halted).
	ReqDone
)

// String returns the request kind name.
func (t ReqType) String() string {
	switch t {
	case ReqHello:
		return "hello"
	case ReqProbe:
		return "probe"
	case ReqPost:
		return "post"
	case ReqVotes:
		return "votes"
	case ReqVotedObjects:
		return "voted-objects"
	case ReqVoteCount:
		return "vote-count"
	case ReqNegCount:
		return "neg-count"
	case ReqWindow:
		return "window"
	case ReqBarrier:
		return "barrier"
	case ReqDone:
		return "done"
	default:
		return fmt.Sprintf("ReqType(%d)", uint8(t))
	}
}

// Version is the wire protocol version. Hello carries it; the server
// rejects mismatches so that incompatible binaries fail loudly at
// connection time instead of corrupting a run.
const Version = 1

// Request is the client→server message.
type Request struct {
	Type ReqType

	// Hello fields.
	Player  int
	Token   string
	Version int

	// Probe / Post / VoteCount / NegCount target.
	Object int
	// Post payload.
	Value    float64
	Positive bool

	// Votes target.
	OfPlayer int

	// Window bounds [From, To).
	From, To int
}

// VoteMsg mirrors billboard.Vote on the wire.
type VoteMsg struct {
	Player int
	Object int
	Round  int
	Value  float64
}

// Response is the server→client message. Err is non-empty on failure; all
// other fields are request-specific.
type Response struct {
	Err string

	// Hello reply: run configuration.
	N            int
	M            int
	LocalTesting bool
	Alpha        float64 // the assumed α the protocol should use
	Beta         float64 // the assumed β the protocol should use
	Costs        []float64

	// Probe reply.
	Value float64
	Good  bool
	Cost  float64

	// Reads.
	Votes   []VoteMsg
	Objects []int
	Count   int
	Counts  map[int]int

	// Barrier / round info (also set on Hello: the current round).
	Round int
}

// Error materializes the response error, if any.
func (r *Response) Error() error {
	if r.Err == "" {
		return nil
	}
	return fmt.Errorf("billboard server: %s", r.Err)
}
