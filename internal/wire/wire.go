// Package wire defines the client/server protocol of the networked
// billboard service (internal/server, internal/client): length-prefixed,
// gob-encoded request/response frames over a TCP stream, one in flight per
// connection.
//
// The protocol realizes the billboard guarantees of §2.1 —
//
//   - identity tagging: a connection authenticates once (Hello with a
//     player id and token); every post is stamped server-side with that
//     identity, so players cannot spoof each other;
//   - timestamps: the server stamps posts with its round counter;
//   - append-only: there is no delete or amend request;
//
// and the synchrony §1.2 says timestamps can simulate: a Barrier request
// ends the caller's round and blocks until every active player has done the
// same, at which point the server commits the round's posts.
//
// Version 2 adds fault tolerance to the transport:
//
//   - framing: every message is one self-contained frame (uvarint length +
//     gob payload), so a torn write is detected as a clean decode error on
//     the peer instead of silently desynchronizing a shared gob stream;
//   - sessions: the client picks a session id at first Hello and repeats it
//     on every request; a reconnecting client re-Hellos with the same id to
//     resume its registration within the server's grace window;
//   - sequence numbers: every post-Hello request carries a per-session
//     sequence number; the server remembers the last executed sequence and
//     its response, so a retried request (response lost in transit) replays
//     the recorded response instead of executing twice — a retried Probe
//     never pays twice.
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
)

// ReqType enumerates request kinds.
type ReqType uint8

// Request kinds.
const (
	// ReqHello authenticates the connection as a player (or resumes the
	// session named by Request.Session after a disconnect).
	ReqHello ReqType = iota + 1
	// ReqProbe probes an object: the server reveals its value (and, with
	// local testing, its goodness) and charges the cost.
	ReqProbe
	// ReqPost appends a report to the billboard (committed at round end).
	ReqPost
	// ReqVotes reads a player's current committed votes.
	ReqVotes
	// ReqVotedObjects reads the distinct objects holding votes.
	ReqVotedObjects
	// ReqVoteCount reads an object's current vote count.
	ReqVoteCount
	// ReqNegCount reads an object's negative-report count.
	ReqNegCount
	// ReqWindow counts vote events per object in a round window.
	ReqWindow
	// ReqBarrier ends the caller's round and blocks until it advances.
	ReqBarrier
	// ReqDone deregisters the caller (it halted).
	ReqDone
	// ReqPostBatch (protocol v3) appends a whole round's posts in one
	// frame and, when Request.EndRound is set, also ends the caller's
	// round — collapsing O(posts) round-trips plus a barrier into one.
	ReqPostBatch
	// ReqProbeBatch (protocol v7) probes on behalf of many players of a
	// swarm session in one frame: Request.Probes lists (player, object)
	// pairs, the response's ProbeResults answers them in order, and each
	// probe is charged to its own player exactly once.
	ReqProbeBatch
	// ReqSwarmDone (protocol v7) deregisters the listed players of a swarm
	// session (they halted); the remaining players keep the session alive.
	ReqSwarmDone
	// ReqVoteBatch (protocol v7) reads the committed votes of every player
	// listed in Request.Players in one frame; each returned VoteMsg names
	// its player. The swarm driver prefetches a whole advice round's vote
	// lookups this way instead of one ReqVotes round-trip per player.
	ReqVoteBatch
	// ReqEpoch (protocol v8) is the non-blocking epoch-mode pacing frame:
	// Request.Epoch carries the caller's lamport stamp ("I have finished
	// submitting every epoch below this"), the response's Round reports the
	// server's currently open epoch, and the call returns immediately —
	// never waiting on other players. Rejected by servers running in
	// synchronous mode.
	ReqEpoch
)

// String returns the request kind name.
func (t ReqType) String() string {
	switch t {
	case ReqHello:
		return "hello"
	case ReqProbe:
		return "probe"
	case ReqPost:
		return "post"
	case ReqVotes:
		return "votes"
	case ReqVotedObjects:
		return "voted-objects"
	case ReqVoteCount:
		return "vote-count"
	case ReqNegCount:
		return "neg-count"
	case ReqWindow:
		return "window"
	case ReqBarrier:
		return "barrier"
	case ReqDone:
		return "done"
	case ReqPostBatch:
		return "post-batch"
	case ReqProbeBatch:
		return "probe-batch"
	case ReqSwarmDone:
		return "swarm-done"
	case ReqVoteBatch:
		return "vote-batch"
	case ReqEpoch:
		return "epoch"
	default:
		return fmt.Sprintf("ReqType(%d)", uint8(t))
	}
}

// Version is the wire protocol version. Hello carries it; the server
// rejects mismatches so that incompatible binaries fail loudly at
// connection time instead of corrupting a run. Version 2 introduced framed
// messages, session ids, and request sequence numbers; version 3 added
// batched round posts (ReqPostBatch) and server-side read caching, cutting
// a player's round to O(1) frames; version 4 adds shard routing (the server
// advertises its shard count at Hello, lane connections carry a shard id,
// batch posts carry a client-assigned order index) and typed error codes;
// version 5 adds coordinator replication — replica-to-replica append / ack /
// heartbeat / vote / fetch frames (RepMsg, RepAck) and the NotLeader
// redirect (CodeNotLeader plus Response.Leader), which lets a client that
// reached a follower re-dial the advertised leader instead of failing;
// version 6 makes request/response gob streams connection-scoped
// (StreamEncoder/StreamDecoder): each peer keeps one encoder and one decoder
// per connection, so gob type descriptors cross the wire once per connection
// instead of once per frame and neither side recompiles codecs per message.
// Frames stay length-prefixed (torn writes detect cleanly, sizes stay
// capped) but are no longer individually self-contained — a v5 peer cannot
// decode a v6 stream past its first frame, hence the bump.
//
// Version 7 adds swarm sessions: one session registering a contiguous
// player range [Player, PlayerTo) under a server-configured swarm token
// (Hello with Swarm set), batched probes charged per player
// (ReqProbeBatch), posts carrying an explicit PostMsg.Player (honored only
// on swarm sessions — ordinary sessions keep server-stamped identity),
// atomic range barriers (a swarm Barrier arrives for every still-active
// player of the range), and batched deregistration (ReqSwarmDone). Swarm
// requests are idempotent-or-reconstructible, so a swarm client may
// pipeline many frames per connection and resend the unacknowledged tail
// after a reconnect without a server-side response window.
//
// Version 8 adds asynchronous epoch mode: the Hello reply advertises the
// server's operation mode (Response.Mode — 0 synchronous rounds, 1
// timestamped epochs), post batches and pacing frames carry a lamport
// epoch stamp (Request.Epoch), the non-blocking ReqEpoch frame replaces
// the blocking barrier as the epoch-mode pacing primitive, and window
// queries may ask for a sliding window relative to the current round
// (Request.Last) instead of absolute bounds. Synchronous-mode streams are
// wire-identical to v7 apart from the version number.
const Version = 8

// Shard maps an object id onto one of shards lanes. It is the single
// shard-map definition shared by client and server: deterministic, seedless,
// and stable across processes, so both sides always agree on which lane owns
// an object. The mix is a splitmix64-style finalizer so that consecutive
// object ids spread across lanes instead of striping.
func Shard(object, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := uint64(object)
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return int(h % uint64(shards))
}

// MaxFrame bounds one framed message's declared size; anything larger is
// treated as corruption, never allocated.
const MaxFrame = 1 << 20

// Request is the client→server message.
type Request struct {
	Type ReqType

	// Session is the client-chosen session id, carried on every request.
	// On Hello it either opens a fresh session (unknown id) or resumes a
	// disconnected one (known id) — which makes a retried Hello idempotent.
	Session uint64
	// Seq is the per-session request sequence number (1, 2, ...) of every
	// post-Hello request; Hello itself is unsequenced (Seq 0). The server
	// deduplicates on it: a repeat of the last sequence replays the
	// recorded response instead of executing again.
	Seq uint64

	// Hello fields.
	Player  int
	Token   string
	Version int

	// Probe / Post / VoteCount / NegCount target.
	Object int
	// Post payload.
	Value    float64
	Positive bool

	// Votes target.
	OfPlayer int

	// Window bounds [From, To). Last (protocol v8), when positive, asks
	// for the sliding window of the most recent Last closed rounds instead:
	// the server answers [round-Last, round) against its current round and
	// sets Response.Round so the caller knows which window it got.
	From, To int
	Last     int

	// PostBatch payload (protocol v3): the round's posts, applied in
	// order. EndRound, when true, additionally ends the caller's round in
	// the same frame (the response is then the barrier response). The
	// whole batch executes under one sequence number, so the v2 dedup
	// gives it the same exactly-once retry semantics as a single request.
	Posts    []PostMsg
	EndRound bool

	// Shard routing (protocol v4). A lane Hello (Lane true) authenticates
	// the connection as a data-plane lane onto shard Shard: it shares the
	// primary session's player identity but registers no membership, and
	// accepts only shard-local post batches. On a lane ReqPostBatch, Shard
	// names the lane the batch targets; the server rejects posts whose
	// objects the shard map assigns elsewhere.
	Shard int
	Lane  bool

	// Swarm sessions (protocol v7). A swarm Hello (Swarm true) registers
	// the contiguous player range [Player, PlayerTo) under one session,
	// authenticated by the server-configured swarm token in Token instead
	// of per-player tokens. A lane Hello may also carry Swarm + the range,
	// making it a swarm lane that accepts posts for any player of the
	// range. PlayerTo is meaningful only with Swarm set.
	Swarm    bool
	PlayerTo int

	// ProbeBatch payload (protocol v7): per-player probes, answered in
	// order by Response.ProbeResults.
	Probes []ProbeMsg

	// SwarmDone payload (protocol v7): the players that halted.
	Players []int

	// Epoch (protocol v8) is the caller's lamport epoch stamp, meaningful
	// on ReqEpoch and epoch-mode ReqPostBatch frames: the player asserts it
	// has finished submitting every epoch below Epoch. The server seals an
	// epoch once every active player's stamp has passed it — the
	// non-blocking analogue of barrier arrival. Zero means "no stamp".
	Epoch int
}

// ProbeMsg is one probe inside a ReqProbeBatch frame: player probes object.
// The player must belong to the swarm session's range.
type ProbeMsg struct {
	Player int
	Object int
}

// ProbeRes answers one ProbeMsg: the object's value and (under local
// testing) its goodness. The cost charged is the object's public cost from
// the Hello payload; it is not repeated per result.
type ProbeRes struct {
	Value float64
	Good  bool
}

// PostMsg is one post inside a ReqPostBatch frame. The player identity is
// the session's authenticated player, never client-claimed.
type PostMsg struct {
	Object   int
	Value    float64
	Positive bool

	// Index (protocol v4) is the post's position in the player's original
	// round batch, assigned by the client before the batch is split across
	// shard lanes. The server commits a round's posts in (player, index)
	// order, so the global vote budget is consumed in the order the player
	// issued the posts regardless of which lanes carried them. Single-post
	// and v3-style requests leave it zero; the server then stamps arrival
	// order.
	Index int

	// Player (protocol v7) names the posting player on swarm sessions,
	// which carry many players' posts in one batch. It must lie in the
	// session's range; on ordinary sessions it is ignored and the
	// authenticated identity is stamped instead, so players still cannot
	// spoof each other.
	Player int
}

// VoteMsg mirrors billboard.Vote on the wire.
type VoteMsg struct {
	Player int
	Object int
	Round  int
	Value  float64
}

// Typed error sentinels (protocol v4). The server tags failure responses
// with a Code; Response.Error wraps the matching sentinel so callers can
// errors.Is instead of string-matching. The sentinels are re-exported on
// the public facade as repro.ErrSessionExpired etc.
var (
	// ErrSessionExpired marks a resume attempt whose session the server no
	// longer recognizes — the lease lapsed (or another session took the
	// player) and the player's registration is gone.
	ErrSessionExpired = errors.New("session expired")
	// ErrBarrierDeadline marks a player the barrier deadline force-Done'd
	// as a straggler: its round arrived too late and it may not rejoin.
	ErrBarrierDeadline = errors.New("barrier deadline exceeded")
	// ErrServerClosed marks a call that exhausted its retries without ever
	// reaching a live server. The server itself never answers "closed" — a
	// closing server drops connections so that a restarted generation can
	// pick the retry up transparently — so this sentinel is the client's
	// best-effort classification of a dead endpoint.
	ErrServerClosed = errors.New("server closed")
	// ErrNotLeader marks a request that reached a replica which is not the
	// current leader of its coordinator group (protocol v5). The response's
	// Leader field, when non-empty, names the client address to re-dial; the
	// client library follows it transparently.
	ErrNotLeader = errors.New("not the leader")
)

// Code values carried by Response.Code.
const (
	CodeNone            uint8 = 0
	CodeSessionExpired  uint8 = 1
	CodeBarrierDeadline uint8 = 2
	CodeNotLeader       uint8 = 3
)

// sentinelFor maps a response code to its sentinel (nil for CodeNone and
// unknown codes, which higher layers treat as plain server errors).
func sentinelFor(code uint8) error {
	switch code {
	case CodeSessionExpired:
		return ErrSessionExpired
	case CodeBarrierDeadline:
		return ErrBarrierDeadline
	case CodeNotLeader:
		return ErrNotLeader
	default:
		return nil
	}
}

// Response is the server→client message. Err is non-empty on failure; all
// other fields are request-specific.
type Response struct {
	Err string
	// Code (protocol v4) classifies Err for errors.Is; see sentinelFor.
	Code uint8

	// Hello reply: run configuration.
	N            int
	M            int
	LocalTesting bool
	Alpha        float64 // the assumed α the protocol should use
	Beta         float64 // the assumed β the protocol should use
	Costs        []float64

	// Probe reply.
	Value float64
	Good  bool
	Cost  float64

	// Reads.
	Votes   []VoteMsg
	Objects []int
	Count   int
	Counts  map[int]int

	// Barrier / round info (also set on Hello: the current round).
	Round int

	// Shards (protocol v4) is the server's lane count, advertised on the
	// Hello reply so the client can route posts with Shard(object, Shards).
	Shards int

	// Leader (protocol v5) accompanies a CodeNotLeader rejection: the client
	// address of the replica currently leading the coordinator group, when
	// the answering follower knows it (empty otherwise — the client then
	// falls back to probing its configured fallback addresses).
	Leader string

	// ProbeResults (protocol v7) answers a ReqProbeBatch, one entry per
	// Request.Probes element, in order.
	ProbeResults []ProbeRes

	// Mode (protocol v8) is the server's operation mode, advertised on the
	// Hello reply: ModeSync (ReqBarrier paces) or ModeEpoch (ReqEpoch
	// paces; ReqBarrier is rejected).
	Mode uint8
}

// Operation modes carried in Response.Mode (protocol v8).
const (
	// ModeSync: synchronous rounds behind a global blocking barrier.
	ModeSync uint8 = 0
	// ModeEpoch: timestamped epochs advanced by lamport stamps; pacing is
	// non-blocking polling via ReqEpoch.
	ModeEpoch uint8 = 1
)

// Error materializes the response error, if any. Responses tagged with a
// v4 code wrap the matching sentinel, so errors.Is(err, ErrSessionExpired)
// and friends work across the wire.
func (r *Response) Error() error {
	if r.Err == "" {
		return nil
	}
	if s := sentinelFor(r.Code); s != nil {
		return fmt.Errorf("billboard server: %s: %w", r.Err, s)
	}
	return fmt.Errorf("billboard server: %s", r.Err)
}

// encodeFrame writes v as one self-contained frame: uvarint length followed
// by a gob payload produced by a fresh encoder, so every frame decodes
// independently of connection history.
func encodeFrame(w io.Writer, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return fmt.Errorf("wire: encode: %w", err)
	}
	var lenb [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenb[:], uint64(buf.Len()))
	if _, err := w.Write(lenb[:n]); err != nil {
		return fmt.Errorf("wire: %w", err)
	}
	if _, err := w.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("wire: %w", err)
	}
	return nil
}

// oneByteReader adapts an io.Reader into an io.ByteReader without buffering
// ahead (a bufio wrapper here would swallow bytes that belong to the next
// frame). Callers on hot paths pass a *bufio.Reader, which satisfies
// io.ByteReader directly.
type oneByteReader struct{ r io.Reader }

func (o oneByteReader) ReadByte() (byte, error) {
	var b [1]byte
	if _, err := io.ReadFull(o.r, b[:]); err != nil {
		return 0, err
	}
	return b[0], nil
}

// decodeFrame reads one frame from r into v. Malformed or truncated input
// surfaces as an error, never a panic: gob's decoder is guarded so a
// hostile frame cannot kill the per-connection goroutine. A stream that
// ends cleanly before the first length byte returns io.EOF.
func decodeFrame(r io.Reader, v any) error {
	return decodeFrameCap(r, v, MaxFrame)
}

// decodeFrameCap is decodeFrame under an explicit size cap — the
// replication path (internal/wire/replica.go) carries whole snapshots and
// needs a larger bound than client frames.
func decodeFrameCap(r io.Reader, v any, maxSize uint64) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("wire: decode panic: %v", p)
		}
	}()
	br, ok := r.(io.ByteReader)
	if !ok {
		br = oneByteReader{r}
	}
	size, err := binary.ReadUvarint(br)
	if err != nil {
		if err == io.EOF {
			return io.EOF // clean end of stream, not corruption
		}
		return fmt.Errorf("wire: frame length: %w", err)
	}
	if size == 0 || size > maxSize {
		return fmt.Errorf("wire: implausible frame size %d", size)
	}
	frame := make([]byte, size)
	if _, err := io.ReadFull(r, frame); err != nil {
		return fmt.Errorf("wire: truncated frame: %w", err)
	}
	if err := gob.NewDecoder(bytes.NewReader(frame)).Decode(v); err != nil {
		return fmt.Errorf("wire: decode: %w", err)
	}
	return nil
}

// StreamEncoder writes framed messages through one connection-scoped gob
// encoder (protocol v6). The first Encode emits the value's type descriptors
// alongside it — that first frame is self-contained, which is what keeps
// single-frame peers (a follower's NotLeader redirect answers exactly one
// request) interoperable — and every later frame reuses them, so the
// per-frame codec-compile cost of the stateless helpers disappears from the
// hot path. Not safe for concurrent use; callers serialize per connection.
type StreamEncoder struct {
	w    io.Writer
	buf  bytes.Buffer
	enc  *gob.Encoder
	lenb [binary.MaxVarintLen64]byte
	err  error // first error; the stream is desynced after one, fail fast
}

// NewStreamEncoder binds a stream encoder to w for the connection's life.
func NewStreamEncoder(w io.Writer) *StreamEncoder {
	e := &StreamEncoder{w: w}
	e.enc = gob.NewEncoder(&e.buf)
	return e
}

// Encode writes v as one length-prefixed frame on the shared gob stream.
func (e *StreamEncoder) Encode(v any) error {
	if e.err != nil {
		return e.err
	}
	e.buf.Reset()
	if err := e.enc.Encode(v); err != nil {
		e.err = fmt.Errorf("wire: encode: %w", err)
		return e.err
	}
	n := binary.PutUvarint(e.lenb[:], uint64(e.buf.Len()))
	if _, err := e.w.Write(e.lenb[:n]); err != nil {
		e.err = fmt.Errorf("wire: %w", err)
		return e.err
	}
	if _, err := e.w.Write(e.buf.Bytes()); err != nil {
		e.err = fmt.Errorf("wire: %w", err)
		return e.err
	}
	return nil
}

// EncodeRequest writes req as one frame on the stream.
func (e *StreamEncoder) EncodeRequest(req *Request) error { return e.Encode(req) }

// EncodeResponse writes resp as one frame on the stream.
func (e *StreamEncoder) EncodeResponse(resp *Response) error { return e.Encode(resp) }

// frameReader feeds the current frame's bytes to the stream decoder's gob
// decoder. It implements io.ByteReader so gob reads it directly instead of
// wrapping it in a bufio.Reader that would blur frame boundaries.
type frameReader struct {
	data []byte
	pos  int
}

func (f *frameReader) Read(p []byte) (int, error) {
	if f.pos >= len(f.data) {
		return 0, io.EOF
	}
	n := copy(p, f.data[f.pos:])
	f.pos += n
	return n, nil
}

func (f *frameReader) ReadByte() (byte, error) {
	if f.pos >= len(f.data) {
		return 0, io.EOF
	}
	b := f.data[f.pos]
	f.pos++
	return b, nil
}

// StreamDecoder reads framed messages through one connection-scoped gob
// decoder (protocol v6), the receiving half of StreamEncoder. Each frame is
// still length-delimited and size-capped, so a torn write or hostile length
// surfaces as a clean error; the gob decoder is guarded against panics the
// same way the stateless path is. A decode error (other than a clean EOF
// between frames) is sticky: the shared type-descriptor stream cannot be
// resynchronized, so the connection must be dropped.
type StreamDecoder struct {
	r     io.Reader
	br    io.ByteReader
	fr    frameReader
	dec   *gob.Decoder
	frame []byte // reused frame buffer
	err   error
}

// NewStreamDecoder binds a stream decoder to r for the connection's life.
// Prefer passing a reader that implements io.ByteReader (e.g. *bufio.Reader).
func NewStreamDecoder(r io.Reader) *StreamDecoder {
	d := &StreamDecoder{r: r}
	if br, ok := r.(io.ByteReader); ok {
		d.br = br
	} else {
		d.br = oneByteReader{r}
	}
	d.dec = gob.NewDecoder(&d.fr)
	return d
}

// Decode reads one frame into v. A stream that ends cleanly between frames
// returns io.EOF. The caller must pass a zeroed target: gob leaves fields
// absent from the frame untouched (DecodeRequest/DecodeResponse do this).
func (d *StreamDecoder) Decode(v any) (err error) {
	if d.err != nil {
		return d.err
	}
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("wire: decode panic: %v", p)
		}
		if err != nil && err != io.EOF {
			d.err = err
		}
	}()
	size, err := binary.ReadUvarint(d.br)
	if err != nil {
		if err == io.EOF {
			return io.EOF // clean end of stream, not corruption
		}
		return fmt.Errorf("wire: frame length: %w", err)
	}
	if size == 0 || size > MaxFrame {
		return fmt.Errorf("wire: implausible frame size %d", size)
	}
	if uint64(cap(d.frame)) < size {
		d.frame = make([]byte, size)
	}
	buf := d.frame[:size]
	if _, err := io.ReadFull(d.r, buf); err != nil {
		return fmt.Errorf("wire: truncated frame: %w", err)
	}
	d.fr.data, d.fr.pos = buf, 0
	if err := d.dec.Decode(v); err != nil {
		return fmt.Errorf("wire: decode: %w", err)
	}
	if d.fr.pos != len(d.fr.data) {
		return fmt.Errorf("wire: %d trailing bytes after frame", len(d.fr.data)-d.fr.pos)
	}
	return nil
}

// DecodeRequest reads one request frame from the stream into req, zeroing it
// first so a reused struct never leaks fields between frames.
func (d *StreamDecoder) DecodeRequest(req *Request) error {
	*req = Request{}
	return d.Decode(req)
}

// DecodeResponse reads one response frame from the stream into resp.
func (d *StreamDecoder) DecodeResponse(resp *Response) error {
	*resp = Response{}
	return d.Decode(resp)
}

// EncodeRequest writes req as one self-contained frame (fresh codec). The
// connection hot paths use StreamEncoder; this form remains for single-frame
// exchanges and tooling.
func EncodeRequest(w io.Writer, req *Request) error {
	return encodeFrame(w, req)
}

// DecodeRequest reads one request frame from r. Prefer passing a reader
// that implements io.ByteReader (e.g. *bufio.Reader) on connection paths.
func DecodeRequest(r io.Reader) (*Request, error) {
	var req Request
	if err := decodeFrame(r, &req); err != nil {
		return nil, err
	}
	return &req, nil
}

// EncodeResponse writes resp as one frame.
func EncodeResponse(w io.Writer, resp *Response) error {
	return encodeFrame(w, resp)
}

// DecodeResponse reads one response frame from r.
func DecodeResponse(r io.Reader) (*Response, error) {
	var resp Response
	if err := decodeFrame(r, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}
