package wire

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
)

func TestRepMsgRoundTrip(t *testing.T) {
	msgs := []RepMsg{
		{Type: RepSync, Term: 3, From: 1},
		{Type: RepAppend, Term: 3, From: 0, Stream: 2, Offset: 4096, Data: []byte("journal bytes")},
		{Type: RepRotate, Term: 4, From: 0, Stream: 0, Offset: 9000, Snapshot: []byte("snap")},
		{Type: RepHeartbeat, Term: 4, From: 0},
		{Type: RepVoteReq, Term: 5, From: 2, Offsets: []int64{100, 0, 250}},
		{Type: RepFetch, Term: 5, From: 2, Stream: 1, Offset: 128},
	}
	var buf bytes.Buffer
	for _, m := range msgs {
		if err := EncodeRep(&buf, &m); err != nil {
			t.Fatalf("%s: encode: %v", m.Type, err)
		}
	}
	for _, want := range msgs {
		got, err := DecodeRep(&buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", want.Type, err)
		}
		if !reflect.DeepEqual(*got, want) {
			t.Fatalf("%s: round trip mismatch:\ngot  %+v\nwant %+v", want.Type, got, want)
		}
	}
}

func TestRepAckRoundTrip(t *testing.T) {
	acks := []RepAck{
		{OK: true, Term: 3, Offset: 512},
		{OK: false, Term: 9, Err: "already leading this term"},
		{OK: true, Term: 3, Offsets: []int64{10, 20}},
		{OK: true, Term: 3, Offset: 64, Data: []byte("tail"), Snapshot: []byte("seg"), Reset: true},
	}
	var buf bytes.Buffer
	for _, a := range acks {
		if err := EncodeRepAck(&buf, &a); err != nil {
			t.Fatalf("encode: %v", err)
		}
	}
	for _, want := range acks {
		got, err := DecodeRepAck(&buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(*got, want) {
			t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
		}
	}
}

// FuzzDecodeRep feeds arbitrary byte streams to the replication decoder.
// Replica links are authenticated by deployment topology, not by handshake,
// so the decoder still faces whatever a confused or half-dead peer writes:
// it must error out cleanly, never panic, never allocate beyond MaxRepFrame.
func FuzzDecodeRep(f *testing.F) {
	for _, m := range []RepMsg{
		{Type: RepSync, Term: 3, From: 1},
		{Type: RepAppend, Term: 3, From: 0, Stream: 2, Offset: 4096, Data: []byte("journal bytes")},
		{Type: RepRotate, Term: 4, From: 0, Stream: 0, Offset: 9000, Snapshot: []byte("snap")},
		{Type: RepHeartbeat, Term: 4, From: 0},
		{Type: RepVoteReq, Term: 5, From: 2, Offsets: []int64{100, 0, 250}},
		{Type: RepFetch, Term: 5, From: 2, Stream: 1, Offset: 128},
	} {
		var buf bytes.Buffer
		if err := EncodeRep(&buf, &m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		if buf.Len() > 2 {
			f.Add(buf.Bytes()[:buf.Len()/2])
			f.Add(buf.Bytes()[:1])
		}
	}
	var lenb [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenb[:], MaxRepFrame+1)
	f.Add(append([]byte(nil), lenb[:n]...))
	n = binary.PutUvarint(lenb[:], 1<<62)
	f.Add(append([]byte(nil), lenb[:n]...))
	f.Add([]byte{0x00})
	f.Add([]byte("not a frame at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for i := 0; i < 4; i++ {
			if _, err := DecodeRep(r); err != nil {
				return
			}
		}
	})
}

// FuzzDecodeRepAck does the same for the acknowledgment side of the link.
func FuzzDecodeRepAck(f *testing.F) {
	for _, a := range []RepAck{
		{OK: true, Term: 3, Offset: 512},
		{OK: false, Term: 9, Err: "already leading this term"},
		{OK: true, Term: 3, Offsets: []int64{10, 20}},
		{OK: true, Term: 3, Offset: 64, Data: []byte("tail"), Snapshot: []byte("seg"), Reset: true},
	} {
		var buf bytes.Buffer
		if err := EncodeRepAck(&buf, &a); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		if buf.Len() > 2 {
			f.Add(buf.Bytes()[:buf.Len()/2])
		}
	}
	var lenb [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenb[:], MaxRepFrame+1)
	f.Add(append([]byte(nil), lenb[:n]...))
	f.Add([]byte{0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for i := 0; i < 4; i++ {
			if _, err := DecodeRepAck(r); err != nil {
				return
			}
		}
	})
}

// TestRepFrameCaps pins the two size bounds: replication frames may exceed
// the client MaxFrame (snapshots ride in rotations), but a declared length
// beyond MaxRepFrame is corruption.
func TestRepFrameCaps(t *testing.T) {
	big := RepMsg{Type: RepRotate, Term: 1, Snapshot: make([]byte, MaxFrame+1024)}
	var buf bytes.Buffer
	if err := EncodeRep(&buf, &big); err != nil {
		t.Fatalf("encode oversized-for-client frame: %v", err)
	}
	if got, err := DecodeRep(&buf); err != nil || len(got.Snapshot) != MaxFrame+1024 {
		t.Fatalf("decode snapshot frame: %v (snapshot %d bytes)", err, len(got.Snapshot))
	}

	buf.Reset()
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], MaxRepFrame+1)
	buf.Write(hdr[:n])
	if _, err := DecodeRep(&buf); err == nil {
		t.Fatal("declared frame above MaxRepFrame accepted")
	}

	// Truncated payload: header promises more bytes than follow.
	buf.Reset()
	n = binary.PutUvarint(hdr[:], 100)
	buf.Write(hdr[:n])
	buf.Write([]byte("short"))
	if _, err := DecodeRepAck(&buf); err == nil {
		t.Fatal("truncated frame accepted")
	}
}
