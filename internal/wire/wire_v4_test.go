package wire

import (
	"bytes"
	"errors"
	"testing"
)

// TestShardMap pins the shard map's contract: deterministic, in range, 0
// for unsharded configs, and actually spreading objects across lanes (a
// degenerate map would silently serialize a sharded server onto one lane).
func TestShardMap(t *testing.T) {
	for _, shards := range []int{0, 1} {
		for o := 0; o < 64; o++ {
			if got := Shard(o, shards); got != 0 {
				t.Fatalf("Shard(%d, %d) = %d, want 0", o, shards, got)
			}
		}
	}
	for _, shards := range []int{2, 4, 16} {
		hit := make([]int, shards)
		for o := 0; o < 256; o++ {
			k := Shard(o, shards)
			if k < 0 || k >= shards {
				t.Fatalf("Shard(%d, %d) = %d out of range", o, shards, k)
			}
			if k != Shard(o, shards) {
				t.Fatalf("Shard(%d, %d) not deterministic", o, shards)
			}
			hit[k]++
		}
		for k, n := range hit {
			if n == 0 {
				t.Fatalf("shard %d/%d received none of 256 objects", k, shards)
			}
		}
	}
}

// TestV4FrameRoundTrip round-trips the protocol-v4 extension fields — the
// lane hello, the shard-routed indexed post batch, and the coded response —
// through the real frame layer.
func TestV4FrameRoundTrip(t *testing.T) {
	reqs := []Request{
		{Type: ReqHello, Player: 3, Token: "tok", Version: Version, Session: 9, Lane: true, Shard: 2},
		{Type: ReqPostBatch, Session: 9, Seq: 4, Shard: 2,
			Posts: []PostMsg{{Object: 7, Value: 1, Positive: true, Index: 41}, {Object: 9, Index: 42}}},
	}
	for _, req := range reqs {
		var buf bytes.Buffer
		if err := EncodeRequest(&buf, &req); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeRequest(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Lane != req.Lane || got.Shard != req.Shard || len(got.Posts) != len(req.Posts) {
			t.Fatalf("v4 request mangled: %+v != %+v", got, req)
		}
		for i := range req.Posts {
			if got.Posts[i] != req.Posts[i] {
				t.Fatalf("post %d mangled: %+v != %+v", i, got.Posts[i], req.Posts[i])
			}
		}
	}

	resp := Response{Round: 5, Shards: 4, Code: CodeSessionExpired, Err: "player 3 already registered"}
	var buf bytes.Buffer
	if err := EncodeResponse(&buf, &resp); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResponse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Shards != 4 || got.Code != CodeSessionExpired || got.Round != 5 {
		t.Fatalf("v4 response mangled: %+v", got)
	}
}

// TestResponseErrorWrapsSentinels pins the error contract: a coded error
// response unwraps to its sentinel via errors.Is, an uncoded one stays a
// plain error, and a code with no Err text is not an error at all.
func TestResponseErrorWrapsSentinels(t *testing.T) {
	cases := []struct {
		code     uint8
		sentinel error
	}{
		{CodeSessionExpired, ErrSessionExpired},
		{CodeBarrierDeadline, ErrBarrierDeadline},
	}
	for _, c := range cases {
		err := (&Response{Err: "boom", Code: c.code}).Error()
		if !errors.Is(err, c.sentinel) {
			t.Fatalf("code %d error %v does not wrap %v", c.code, err, c.sentinel)
		}
	}
	if err := (&Response{Err: "boom"}).Error(); errors.Is(err, ErrSessionExpired) || errors.Is(err, ErrBarrierDeadline) {
		t.Fatalf("uncoded error %v wrongly matches a sentinel", err)
	}
	if err := (&Response{Code: CodeSessionExpired}).Error(); err != nil {
		t.Fatalf("code without Err text produced error %v", err)
	}
}
