package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// TestStreamRoundTrip pushes many request and response frames through one
// connection-scoped encoder/decoder pair and checks every field survives,
// including zero-field frames after heavily-populated ones (the decoder must
// zero its target or stale fields leak between frames).
func TestStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := NewStreamEncoder(&buf)
	reqs := []Request{
		{Type: ReqHello, Session: 7, Player: 3, Token: "tok", Version: Version},
		{Type: ReqPostBatch, Session: 7, Seq: 1, Shard: 2, Posts: []PostMsg{
			{Object: 5, Value: 0.5, Positive: true, Index: 0},
			{Object: 9, Value: 0.25, Index: 1},
		}, EndRound: true},
		{Type: ReqBarrier, Session: 7, Seq: 2},
		{}, // all-zero frame: nothing from the batch frame may survive
	}
	for i := range reqs {
		if err := enc.EncodeRequest(&reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	dec := NewStreamDecoder(&buf)
	var got Request
	for i := range reqs {
		if err := dec.DecodeRequest(&got); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != reqs[i].Type || got.Session != reqs[i].Session ||
			got.Seq != reqs[i].Seq || got.Shard != reqs[i].Shard ||
			got.EndRound != reqs[i].EndRound || len(got.Posts) != len(reqs[i].Posts) {
			t.Fatalf("frame %d: got %+v, want %+v", i, got, reqs[i])
		}
		for j := range got.Posts {
			if got.Posts[j] != reqs[i].Posts[j] {
				t.Fatalf("frame %d post %d: got %+v, want %+v", i, j, got.Posts[j], reqs[i].Posts[j])
			}
		}
	}
	if err := dec.Decode(&got); !errors.Is(err, io.EOF) {
		t.Fatalf("past last frame: err = %v, want io.EOF", err)
	}
}

// TestStreamFirstFrameSelfContained pins the interop contract the NotLeader
// redirect relies on: the first frame of a stream encoder decodes with the
// stateless single-frame decoder, and a stateless frame decodes as the first
// frame of a stream decoder.
func TestStreamFirstFrameSelfContained(t *testing.T) {
	want := Request{Type: ReqHello, Session: 42, Player: 1, Token: "t", Version: Version}

	var a bytes.Buffer
	if err := NewStreamEncoder(&a).EncodeRequest(&want); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRequest(&a)
	if err != nil {
		t.Fatalf("stateless decode of first stream frame: %v", err)
	}
	if got.Type != want.Type || got.Session != want.Session || got.Token != want.Token {
		t.Fatalf("got %+v, want %+v", *got, want)
	}

	var b bytes.Buffer
	if err := EncodeRequest(&b, &want); err != nil {
		t.Fatal(err)
	}
	var got2 Request
	if err := NewStreamDecoder(&b).DecodeRequest(&got2); err != nil {
		t.Fatalf("stream decode of stateless frame: %v", err)
	}
	if got2.Type != want.Type || got2.Session != want.Session || got2.Token != want.Token {
		t.Fatalf("got %+v, want %+v", got2, want)
	}
}

// TestStreamResponseRoundTrip mirrors the request test on the response side,
// where maps and slices dominate the payload.
func TestStreamResponseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := NewStreamEncoder(&buf)
	resps := []Response{
		{N: 8, M: 64, LocalTesting: true, Alpha: 1, Beta: 0.25, Round: 3, Shards: 4,
			Costs: []float64{1, 2}},
		{Votes: []VoteMsg{{Player: 1, Object: 2, Round: 3, Value: 0.5}},
			Counts: map[int]int{7: 2}, Objects: []int{1, 2, 3}},
		{Err: "gone", Code: CodeSessionExpired},
		{},
	}
	for i := range resps {
		if err := enc.EncodeResponse(&resps[i]); err != nil {
			t.Fatal(err)
		}
	}
	dec := NewStreamDecoder(&buf)
	var got Response
	for i := range resps {
		if err := dec.DecodeResponse(&got); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Err != resps[i].Err || got.Code != resps[i].Code ||
			got.Round != resps[i].Round || got.Shards != resps[i].Shards ||
			len(got.Votes) != len(resps[i].Votes) || len(got.Counts) != len(resps[i].Counts) {
			t.Fatalf("frame %d: got %+v, want %+v", i, got, resps[i])
		}
	}
}

// TestStreamDecoderRejectsGarbage feeds implausible lengths and corrupt
// payloads: each must error (never panic), and the error must be sticky —
// the shared type stream cannot be trusted after a bad frame.
func TestStreamDecoderRejectsGarbage(t *testing.T) {
	// Implausible declared length.
	huge := []byte{0xff, 0xff, 0xff, 0xff, 0x7f}
	d := NewStreamDecoder(bytes.NewReader(huge))
	var req Request
	if err := d.DecodeRequest(&req); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("huge frame: err = %v, want corruption error", err)
	}
	if err := d.DecodeRequest(&req); err == nil {
		t.Fatal("decoder not sticky after corruption")
	}

	// Valid first frame, then a torn second frame.
	var buf bytes.Buffer
	enc := NewStreamEncoder(&buf)
	for i := 0; i < 2; i++ {
		if err := enc.EncodeRequest(&Request{Type: ReqBarrier, Seq: uint64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	whole := buf.Bytes()
	d2 := NewStreamDecoder(bytes.NewReader(whole[:len(whole)-3]))
	if err := d2.DecodeRequest(&req); err != nil {
		t.Fatalf("first frame: %v", err)
	}
	if err := d2.DecodeRequest(&req); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("torn frame: err = %v, want truncation error", err)
	}

	// Garbage payload under a plausible length.
	junk := append([]byte{0x06}, []byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02}...)
	d3 := NewStreamDecoder(bytes.NewReader(junk))
	if err := d3.DecodeRequest(&req); err == nil {
		t.Fatal("garbage payload decoded")
	}
}
