package wire

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"
)

func TestReqTypeStrings(t *testing.T) {
	named := map[ReqType]string{
		ReqHello:        "hello",
		ReqProbe:        "probe",
		ReqPost:         "post",
		ReqVotes:        "votes",
		ReqVotedObjects: "voted-objects",
		ReqVoteCount:    "vote-count",
		ReqNegCount:     "neg-count",
		ReqWindow:       "window",
		ReqBarrier:      "barrier",
		ReqDone:         "done",
		ReqPostBatch:    "post-batch",
	}
	for typ, want := range named {
		if got := typ.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", typ, got, want)
		}
	}
	if !strings.Contains(ReqType(200).String(), "200") {
		t.Fatal("unknown type should include the number")
	}
}

func TestResponseError(t *testing.T) {
	if err := (&Response{}).Error(); err != nil {
		t.Fatalf("empty Err produced error %v", err)
	}
	err := (&Response{Err: "boom"}).Error()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("error = %v", err)
	}
}

func TestGobRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	dec := gob.NewDecoder(&buf)

	req := Request{
		Type: ReqWindow, Player: 3, Token: "t", Object: 7,
		Value: 0.5, Positive: true, OfPlayer: 2, From: 10, To: 20,
		Posts:    []PostMsg{{Object: 1, Value: 2, Positive: true}},
		EndRound: true,
	}
	if err := enc.Encode(&req); err != nil {
		t.Fatal(err)
	}
	var gotReq Request
	if err := dec.Decode(&gotReq); err != nil {
		t.Fatal(err)
	}
	if gotReq.Type != req.Type || gotReq.Player != req.Player || gotReq.Token != req.Token ||
		gotReq.Object != req.Object || gotReq.Value != req.Value || gotReq.Positive != req.Positive ||
		gotReq.OfPlayer != req.OfPlayer || gotReq.From != req.From || gotReq.To != req.To ||
		!gotReq.EndRound || len(gotReq.Posts) != 1 || gotReq.Posts[0] != req.Posts[0] {
		t.Fatalf("request round-trip: %+v != %+v", gotReq, req)
	}

	resp := Response{
		N: 4, M: 8, LocalTesting: true, Alpha: 0.5, Beta: 0.25,
		Costs:  []float64{1, 2},
		Votes:  []VoteMsg{{Player: 1, Object: 2, Round: 3, Value: 4}},
		Counts: map[int]int{5: 6},
		Round:  9,
	}
	if err := enc.Encode(&resp); err != nil {
		t.Fatal(err)
	}
	var gotResp Response
	if err := dec.Decode(&gotResp); err != nil {
		t.Fatal(err)
	}
	if gotResp.N != 4 || gotResp.M != 8 || !gotResp.LocalTesting ||
		len(gotResp.Costs) != 2 || len(gotResp.Votes) != 1 ||
		gotResp.Counts[5] != 6 || gotResp.Round != 9 {
		t.Fatalf("response round-trip mangled: %+v", gotResp)
	}
}
