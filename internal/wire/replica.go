package wire

// Replica-to-replica frames (protocol v5). A coordinator group replicates
// the leader's journal stores as raw byte streams: stream 0 is the
// coordinator store, stream 1+k is shard lane k's store. The leader dials
// each follower and drives a strictly serial request/ack conversation —
// sync, appends, rotations, heartbeats — while candidates dial peers for
// votes and catch-up fetches during an election. Every frame carries the
// sender's term; a receiver holding a higher term refuses, which is the
// fencing rule that makes a deposed leader step down instead of splitting
// the group.
//
// The framing is the same uvarint-length + fresh-gob scheme as the client
// protocol, but with a larger size cap: a rotation frame carries a full
// service snapshot, which can legitimately exceed the 1 MiB client-frame
// bound.

import (
	"fmt"
	"io"
)

// RepType enumerates replica-to-replica message kinds.
type RepType uint8

const (
	// RepSync opens a leader→follower conversation: the follower answers
	// with its per-stream positions so the leader can plan catch-up.
	RepSync RepType = iota + 1
	// RepAppend carries journal bytes for one stream, starting at Offset;
	// the follower appends them to its store iff Offset matches its
	// position, and acks its new position.
	RepAppend
	// RepRotate resets one stream to a new segment: the follower rotates
	// its store behind the carried snapshot (possibly nil) and adopts
	// Offset as its position. Sent at leader-side journal rotation and as
	// the full-resync path for a follower too far behind the retained tail.
	RepRotate
	// RepHeartbeat asserts leadership while no appends are flowing; the
	// follower resets its election timer.
	RepHeartbeat
	// RepVoteReq asks for a vote in Term: granted iff the term is newer and
	// the candidate's per-stream positions are at least the voter's.
	RepVoteReq
	// RepFetch asks a peer for its journal bytes from Offset on one stream —
	// the catch-up path of a candidate whose vote was denied on log length.
	RepFetch
)

// String returns the message kind name.
func (t RepType) String() string {
	switch t {
	case RepSync:
		return "sync"
	case RepAppend:
		return "append"
	case RepRotate:
		return "rotate"
	case RepHeartbeat:
		return "heartbeat"
	case RepVoteReq:
		return "vote-req"
	case RepFetch:
		return "fetch"
	default:
		return fmt.Sprintf("RepType(%d)", uint8(t))
	}
}

// MaxRepFrame bounds one replication frame's declared size. Rotation frames
// carry whole service snapshots, so the cap is far above the client-facing
// MaxFrame; anything larger is still treated as corruption.
const MaxRepFrame = 1 << 26

// RepMsg is one replica-to-replica message (leader→follower appends and
// heartbeats, candidate→peer votes and fetches).
type RepMsg struct {
	Type RepType
	// Term is the sender's current term; receivers holding a newer term
	// refuse the message (and leaders seeing the refusal step down).
	Term uint64
	// From is the sending replica's id.
	From int

	// Stream addresses one replicated store: 0 = coordinator, 1+k = lane k.
	Stream int
	// Offset is the stream position the payload starts at (RepAppend), the
	// new segment's base position (RepRotate), or the position to read from
	// (RepFetch).
	Offset int64
	// Data is the journal byte payload (RepAppend).
	Data []byte
	// Snapshot is the new segment's snapshot bytes (RepRotate; nil for a
	// snapshot-less segment).
	Snapshot []byte

	// Offsets is the candidate's per-stream position vector (RepVoteReq).
	Offsets []int64
}

// RepAck is the reply to any RepMsg.
type RepAck struct {
	// OK reports acceptance. A refusal carries the responder's Term (the
	// fencing signal) and, for votes, its Offsets (the catch-up hint).
	OK bool
	// Term is the responder's current term after processing the message.
	Term uint64
	// Offset is the responder's position on the addressed stream after an
	// append/rotate, or the base position of the returned Data on a fetch.
	Offset int64
	// Offsets is the responder's full per-stream position vector (RepSync
	// replies and vote denials).
	Offsets []int64
	// Data is the requested journal bytes (RepFetch replies).
	Data []byte
	// Snapshot, on a RepFetch reply, is non-nil when the requested offset
	// predates the responder's retained segment: the responder returns its
	// whole segment (snapshot + Data from Offset) and Reset is true.
	Snapshot []byte
	Reset    bool
	// Err describes a structural failure (unknown stream, store error).
	Err string
}

// EncodeRep writes msg as one replication frame.
func EncodeRep(w io.Writer, msg *RepMsg) error {
	return encodeFrame(w, msg)
}

// DecodeRep reads one replication message, tolerating frames up to
// MaxRepFrame.
func DecodeRep(r io.Reader) (*RepMsg, error) {
	var msg RepMsg
	if err := decodeFrameCap(r, &msg, MaxRepFrame); err != nil {
		return nil, err
	}
	return &msg, nil
}

// EncodeRepAck writes ack as one replication frame.
func EncodeRepAck(w io.Writer, ack *RepAck) error {
	return encodeFrame(w, ack)
}

// DecodeRepAck reads one replication ack, tolerating frames up to
// MaxRepFrame (fetch replies carry segment payloads).
func DecodeRepAck(r io.Reader) (*RepAck, error) {
	var ack RepAck
	if err := decodeFrameCap(r, &ack, MaxRepFrame); err != nil {
		return nil, err
	}
	return &ack, nil
}
