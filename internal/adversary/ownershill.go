package adversary

import "repro/internal/sim"

// OwnerShill models the §6 object-ownership question: every object belongs
// to a player (Owner), and dishonest players promote the bad objects they
// own — the eBay seller shilling its own listings. Paired with a billboard
// vote-admission rule that discards votes for the voter's own objects
// (sim.Config.VoteFilter), the attack is fully neutralized; without it, the
// attack is a targeted variant of spam.
type OwnerShill struct {
	// Owner maps an object to its owning player (required).
	Owner func(object int) int

	done bool
}

var _ sim.Adversary = (*OwnerShill)(nil)

// NewOwnerShill returns the shilling adversary for the given ownership map.
func NewOwnerShill(owner func(object int) int) *OwnerShill {
	return &OwnerShill{Owner: owner}
}

// Name implements sim.Adversary.
func (a *OwnerShill) Name() string { return "owner-shill" }

// Act implements sim.Adversary.
func (a *OwnerShill) Act(ctx *sim.AdvContext) {
	if a.done || a.Owner == nil {
		return
	}
	a.done = true
	dishonest := make(map[int]bool, len(ctx.Dishonest))
	for _, p := range ctx.Dishonest {
		dishonest[p] = true
	}
	for obj := 0; obj < ctx.Universe.M(); obj++ {
		if ctx.Universe.IsGood(obj) {
			continue
		}
		if p := a.Owner(obj); dishonest[p] {
			vote(ctx.Board, p, obj)
		}
	}
}
