package adversary

import (
	"repro/internal/billboard"
	"repro/internal/sim"
)

// ProtocolMimic is the strongest symmetry attack and the engine behind the
// Theorem 2 lower-bound instances: each dishonest group runs the *same*
// protocol code as the honest players — against the same shared billboard,
// on the same schedule — but evaluates probes with its own fake value
// function ("the players in P_k view the world as if the input instance is
// I_k"). Dishonest reports are therefore statistically indistinguishable
// from honest ones; only the ground truth differs.
type ProtocolMimic struct {
	// Factory builds one protocol instance per group; it must produce the
	// same protocol the honest players run.
	Factory func() sim.Protocol
	// FakeGood lists, per group, the objects that group pretends are good.
	FakeGood [][]int

	initialized bool
	groups      []mimicGroup
}

type mimicGroup struct {
	proto    sim.Protocol
	fakeGood map[int]bool
	active   []int // fake players still "searching"
}

var _ sim.Adversary = (*ProtocolMimic)(nil)

// NewProtocolMimic returns a ProtocolMimic with the given factory and fake
// good sets (one slice per group).
func NewProtocolMimic(factory func() sim.Protocol, fakeGood [][]int) *ProtocolMimic {
	return &ProtocolMimic{Factory: factory, FakeGood: fakeGood}
}

// Name implements sim.Adversary.
func (a *ProtocolMimic) Name() string { return "protocol-mimic" }

func (a *ProtocolMimic) setup(ctx *sim.AdvContext) error {
	a.initialized = true
	groups := len(a.FakeGood)
	if groups == 0 || len(ctx.Dishonest) == 0 {
		return nil
	}
	if groups > len(ctx.Dishonest) {
		groups = len(ctx.Dishonest)
	}
	n := len(ctx.Honest) + len(ctx.Dishonest)
	a.groups = make([]mimicGroup, groups)
	for g := range a.groups {
		grp := &a.groups[g]
		grp.proto = a.Factory()
		grp.fakeGood = make(map[int]bool, len(a.FakeGood[g]))
		for _, obj := range a.FakeGood[g] {
			grp.fakeGood[obj] = true
		}
		// Use exactly the α and β the honest protocol assumes, so the mimic
		// groups' schedules are round-for-round identical to the honest one
		// (otherwise phase-transition timing would give them away).
		alpha := ctx.AssumedAlpha
		if alpha <= 0 || alpha > 1 {
			alpha = float64(len(ctx.Honest)) / float64(n)
		}
		beta := ctx.AssumedBeta
		if beta <= 0 || beta > 1 {
			beta = float64(len(a.FakeGood[g])) / float64(ctx.Universe.M())
		}
		if err := grp.proto.Init(sim.Setup{
			N:        n,
			Alpha:    alpha,
			Beta:     beta,
			Universe: ctx.Universe,
			Board:    ctx.Board,
			Rng:      ctx.Rng.Split(uint64(g) + 100),
		}); err != nil {
			return err
		}
	}
	// Round-robin the dishonest players into groups.
	for i, p := range ctx.Dishonest {
		g := i % groups
		a.groups[g].active = append(a.groups[g].active, p)
	}
	return nil
}

// Act implements sim.Adversary. Each group steps its protocol instance once
// per round (keeping its schedule aligned with the honest one, since both
// derive state from the same shared board) and posts the reports an honest
// player with that group's value function would post.
func (a *ProtocolMimic) Act(ctx *sim.AdvContext) {
	if !a.initialized {
		if err := a.setup(ctx); err != nil {
			a.groups = nil
			return
		}
	}
	for g := range a.groups {
		grp := &a.groups[g]
		probes := grp.proto.Probes(ctx.Round, grp.active, nil)
		var newlySatisfied map[int]bool
		for _, pr := range probes {
			fakeGood := grp.fakeGood[pr.Object]
			value := 0.0
			if fakeGood {
				value = 1
			}
			_ = ctx.Board.Post(billboard.Post{
				Player:   pr.Player,
				Object:   pr.Object,
				Value:    value,
				Positive: fakeGood,
			})
			if fakeGood {
				if newlySatisfied == nil {
					newlySatisfied = make(map[int]bool)
				}
				newlySatisfied[pr.Player] = true
			}
		}
		if newlySatisfied != nil {
			keep := grp.active[:0]
			for _, p := range grp.active {
				if !newlySatisfied[p] {
					keep = append(keep, p)
				}
			}
			grp.active = keep
		}
	}
}
