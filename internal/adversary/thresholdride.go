package adversary

import (
	"repro/internal/core"
	"repro/internal/sim"
)

// distillInspector is satisfied by core.Distill and its wrappers; the
// adaptive adversary inspects the shared schedule state (all of which is
// derivable from the public billboard, per §2.3's adaptive model).
type distillInspector interface {
	DistillState() core.DistillState
}

// ThresholdRide is the Lemma 7 extremal strategy. It spends the dishonest
// vote budget window by window: whenever a counting window opens, it picks
// as many bad candidates as it can afford and gives each exactly the number
// of votes needed to survive into the next candidate set. SpendFraction
// limits how much of the remaining budget a single window may consume, so
// that votes remain for later (more expensive) iterations — stretching the
// distillation loop as long as the (1-α)n budget allows, which is exactly
// the quantity Equation (1) of the paper charges.
type ThresholdRide struct {
	// SpendFraction is the share of the remaining vote budget a single
	// window may consume (default 0.5).
	SpendFraction float64
	// StuffRefine also stuffs C₀ during Step 1.3 windows (default true via
	// NewThresholdRide).
	StuffRefine bool

	lastWindow int // start round of the last window acted upon
	havePhase  string
}

var _ sim.Adversary = (*ThresholdRide)(nil)

// NewThresholdRide returns the Lemma 7 adversary with default parameters.
func NewThresholdRide() *ThresholdRide {
	return &ThresholdRide{SpendFraction: 0.5, StuffRefine: true, lastWindow: -1}
}

// Name implements sim.Adversary.
func (a *ThresholdRide) Name() string { return "threshold-ride" }

// Act implements sim.Adversary.
func (a *ThresholdRide) Act(ctx *sim.AdvContext) {
	insp, ok := ctx.Protocol.(distillInspector)
	if !ok {
		return // not DISTILL; nothing to ride
	}
	st := insp.DistillState()
	if st.Phase == "prepare" {
		return
	}
	if st.Phase == "refine" && !a.StuffRefine {
		return
	}
	// Act once per window, at its first opportunity.
	if st.WindowStart == a.lastWindow && st.Phase == a.havePhase {
		return
	}
	a.lastWindow = st.WindowStart
	a.havePhase = st.Phase

	// Dishonest voters with budget left (under the paper's f = 1 this is
	// "has not voted yet"; with a lifted cap each player can push a fresh
	// object every window — the A2 ablation).
	voteCap := ctx.VotesCap
	if voteCap < 1 {
		voteCap = 1
	}
	voters := make([]int, 0, len(ctx.Dishonest))
	for _, p := range ctx.Dishonest {
		if len(ctx.Board.VotesView(p)) < voteCap {
			voters = append(voters, p)
		}
	}
	if len(voters) == 0 || st.VotesNeeded <= 0 {
		return
	}
	spendFrac := a.SpendFraction
	if spendFrac <= 0 || spendFrac > 1 {
		spendFrac = 0.5
	}
	budget := int(float64(len(voters)) * spendFrac)
	if budget < st.VotesNeeded {
		// Not enough for even one object under the cap: go all-in if the
		// full remaining budget suffices, else give up this window.
		if len(voters) >= st.VotesNeeded {
			budget = st.VotesNeeded
		} else {
			return
		}
	}

	// Targets: bad objects, preferring current candidates (mandatory in the
	// distill phase — non-candidates cannot re-enter C_{t+1}).
	targets := make([]int, 0)
	for _, obj := range st.Candidates {
		if !ctx.Universe.IsGood(obj) {
			targets = append(targets, obj)
		}
	}
	if st.Phase == "refine" {
		// During refine, any bad object can be pushed into C₀; add extras
		// beyond the current candidate list if capacity allows.
		inCand := make(map[int]bool, len(targets))
		for _, obj := range targets {
			inCand[obj] = true
		}
		for obj := 0; obj < ctx.Universe.M() && len(targets)*st.VotesNeeded < budget; obj++ {
			if !ctx.Universe.IsGood(obj) && !inCand[obj] {
				targets = append(targets, obj)
			}
		}
	}

	vi := 0
	for _, obj := range targets {
		if budget < st.VotesNeeded {
			break
		}
		for k := 0; k < st.VotesNeeded; k++ {
			vote(ctx.Board, voters[vi], obj)
			vi++
		}
		budget -= st.VotesNeeded
	}
}
