// Package adversary implements Byzantine strategies for the dishonest
// players (§2.3). All strategies are adaptive: Act runs after the honest
// players' probes of the round are buffered, so a strategy may condition on
// every past coin flip and on the in-flight posts (billboard.Board.Pending).
//
// The suite covers the extremal behaviours identified by the paper's
// analysis plus generic attacks:
//
//   - Silent: dishonest players do nothing (control).
//   - SpamDistinct: each dishonest player immediately votes a distinct bad
//     object, maximizing |S| and stuffing C₀ (the attack the one-vote rule
//     is designed to bound).
//   - Collude: all dishonest players vote one bad object, pushing a single
//     bad candidate past every threshold.
//   - Slander: dishonest players post negative reports about good objects
//     ("slander"); DISTILL uses only positive reports, so this must have no
//     effect (§6: "is slander useless?" — here, yes by construction).
//   - RandomLiar: each dishonest player votes a random bad object at a
//     random time.
//   - DelayedStuffing: saves all votes, then dumps them on the candidate
//     set the moment the distillation loop starts.
//   - ThresholdRide: the Lemma 7 extremal strategy — spends the (1-α)n vote
//     budget to keep as many bad candidates as possible just above the
//     per-window survival threshold n/(4c_t), maximizing the number of
//     while-loop iterations.
//   - Mimic: groups of dishonest players emulate honest voting statistics
//     for designated bad objects, the symmetry attack behind Theorem 2.
package adversary

import (
	"repro/internal/billboard"
	"repro/internal/object"
	"repro/internal/sim"
)

// Silent is the no-op adversary.
type Silent struct{}

var _ sim.Adversary = Silent{}

// Name implements sim.Adversary.
func (Silent) Name() string { return "silent" }

// Act implements sim.Adversary.
func (Silent) Act(*sim.AdvContext) {}

// badObjects returns the bad objects of the universe in index order.
func badObjects(u *object.Universe) []int {
	out := make([]int, 0, u.M()-u.GoodCount())
	for i := 0; i < u.M(); i++ {
		if !u.IsGood(i) {
			out = append(out, i)
		}
	}
	return out
}

// vote posts a positive report by player for obj. Errors cannot occur for
// in-range ids; the board enforces the vote cap regardless.
func vote(b *billboard.Board, player, obj int) {
	_ = b.Post(billboard.Post{Player: player, Object: obj, Value: 1, Positive: true})
}

// SpamDistinct votes a distinct bad object per dishonest player in round 0.
type SpamDistinct struct{}

var _ sim.Adversary = SpamDistinct{}

// Name implements sim.Adversary.
func (SpamDistinct) Name() string { return "spam-distinct" }

// Act implements sim.Adversary.
func (SpamDistinct) Act(ctx *sim.AdvContext) {
	if ctx.Round != 0 {
		return
	}
	bad := badObjects(ctx.Universe)
	if len(bad) == 0 {
		return
	}
	for i, p := range ctx.Dishonest {
		vote(ctx.Board, p, bad[i%len(bad)])
	}
}

// Collude makes every dishonest player vote the same bad object in round 0.
type Collude struct{}

var _ sim.Adversary = Collude{}

// Name implements sim.Adversary.
func (Collude) Name() string { return "collude" }

// Act implements sim.Adversary.
func (Collude) Act(ctx *sim.AdvContext) {
	if ctx.Round != 0 {
		return
	}
	bad := badObjects(ctx.Universe)
	if len(bad) == 0 {
		return
	}
	target := bad[ctx.Rng.Intn(len(bad))]
	for _, p := range ctx.Dishonest {
		vote(ctx.Board, p, target)
	}
}

// Slander posts negative reports about good objects every round. The
// positive-votes-only rule makes this a no-op against DISTILL; the E6
// experiment verifies that empirically.
type Slander struct{}

var _ sim.Adversary = Slander{}

// Name implements sim.Adversary.
func (Slander) Name() string { return "slander" }

// Act implements sim.Adversary.
func (Slander) Act(ctx *sim.AdvContext) {
	good := ctx.Universe.GoodObjects()
	for _, p := range ctx.Dishonest {
		obj := good[ctx.Rng.Intn(len(good))]
		_ = ctx.Board.Post(billboard.Post{Player: p, Object: obj, Value: 0, Positive: false})
	}
}

// FloodLiar posts a positive report for a random bad object from every
// dishonest player every round, ignoring vote budgets — the billboard's
// vote cap f is the only thing containing it. Built for the A2 ablation:
// with the paper's f = 1 the flood is harmless; with the cap removed it
// drowns the candidate sets.
type FloodLiar struct{}

var _ sim.Adversary = FloodLiar{}

// Name implements sim.Adversary.
func (FloodLiar) Name() string { return "flood-liar" }

// Act implements sim.Adversary.
func (FloodLiar) Act(ctx *sim.AdvContext) {
	bad := badObjects(ctx.Universe)
	if len(bad) == 0 {
		return
	}
	for _, p := range ctx.Dishonest {
		vote(ctx.Board, p, bad[ctx.Rng.Intn(len(bad))])
	}
}

// RandomLiar has each dishonest player vote a uniformly random bad object
// with probability Rate each round until its vote budget is spent.
type RandomLiar struct {
	// Rate is the per-round vote probability (default 0.25).
	Rate float64
}

var _ sim.Adversary = (*RandomLiar)(nil)

// Name implements sim.Adversary.
func (*RandomLiar) Name() string { return "random-liar" }

// Act implements sim.Adversary.
func (a *RandomLiar) Act(ctx *sim.AdvContext) {
	rate := a.Rate
	if rate == 0 {
		rate = 0.25
	}
	bad := badObjects(ctx.Universe)
	if len(bad) == 0 {
		return
	}
	for _, p := range ctx.Dishonest {
		if ctx.Board.HasVote(p) {
			continue
		}
		if ctx.Rng.Bernoulli(rate) {
			vote(ctx.Board, p, bad[ctx.Rng.Intn(len(bad))])
		}
	}
}
