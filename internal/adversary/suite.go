package adversary

import "repro/internal/sim"

// Suite returns one fresh instance of every adversary strategy, in a fixed
// order. Strategies are stateful, so a new suite must be built per run;
// call this once per replication.
func Suite() []sim.Adversary {
	return []sim.Adversary{
		Silent{},
		SpamDistinct{},
		Collude{},
		Slander{},
		&RandomLiar{},
		FloodLiar{},
		NewDelayedStuffing(),
		NewThresholdRide(),
		NewMimic(4),
	}
}

// Names returns the names of the suite strategies in suite order.
func Names() []string {
	suite := Suite()
	names := make([]string, len(suite))
	for i, a := range suite {
		names[i] = a.Name()
	}
	return names
}

// ByName returns a fresh instance of the named strategy, or nil if unknown.
func ByName(name string) sim.Adversary {
	for _, a := range Suite() {
		if a.Name() == name {
			return a
		}
	}
	return nil
}
