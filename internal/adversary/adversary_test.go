package adversary

import (
	"testing"

	"repro/internal/core"
	"repro/internal/object"
	"repro/internal/rng"
	"repro/internal/sim"
)

// runDistill runs DISTILL against the given adversary over reps replications
// and returns the aggregate.
func runDistill(t *testing.T, makeAdv func() sim.Adversary, n int, alpha float64, reps int) sim.Aggregate {
	t.Helper()
	results, err := sim.Replicator{
		Reps:     reps,
		BaseSeed: 40,
		Build: func(seed uint64) (*sim.Engine, error) {
			u, err := object.NewPlanted(object.Planted{M: n, Good: 1}, rng.New(seed))
			if err != nil {
				return nil, err
			}
			var adv sim.Adversary
			if makeAdv != nil {
				adv = makeAdv()
			}
			return sim.NewEngine(sim.Config{
				Universe: u, Protocol: core.NewDistill(core.Params{}),
				Adversary: adv, N: n, Alpha: alpha, Seed: seed, MaxRounds: 20000,
			})
		},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	agg := sim.AggregateResults(results)
	if agg.TimedOut > 0 {
		t.Fatalf("%d/%d replications timed out", agg.TimedOut, reps)
	}
	if agg.SuccessRate != 1 {
		t.Fatalf("success rate %v < 1", agg.SuccessRate)
	}
	return agg
}

func TestDistillBeatsEveryAdversary(t *testing.T) {
	// DISTILL must terminate against the whole suite at moderate α.
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			agg := runDistill(t, func() sim.Adversary { return ByName(name) }, 256, 0.5, 10)
			t.Logf("%s: mean probes %.1f, mean rounds %.1f", name,
				agg.MeanIndividualProbes, agg.MeanRounds)
		})
	}
}

func TestSlanderIsUseless(t *testing.T) {
	// Negative reports change nothing: runs with Slander must match runs
	// with Silent round for round (the board state DISTILL reads is
	// identical and the honest random streams are independent of the
	// adversary's).
	for seed := uint64(0); seed < 5; seed++ {
		run := func(adv sim.Adversary) *sim.Result {
			u, err := object.NewPlanted(object.Planted{M: 128, Good: 1}, rng.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			e, err := sim.NewEngine(sim.Config{
				Universe: u, Protocol: core.NewDistill(core.Params{}),
				Adversary: adv, N: 128, Alpha: 0.75, Seed: seed, MaxRounds: 20000,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		silent := run(Silent{})
		slandered := run(Slander{})
		if silent.Rounds != slandered.Rounds {
			t.Fatalf("seed %d: slander changed rounds: %d vs %d",
				seed, silent.Rounds, slandered.Rounds)
		}
		if silent.MeanHonestProbes() != slandered.MeanHonestProbes() {
			t.Fatalf("seed %d: slander changed probes", seed)
		}
	}
}

func TestSpamDistinctSpendsOneVoteEach(t *testing.T) {
	u, err := object.NewPlanted(object.Planted{M: 64, Good: 1}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.NewEngine(sim.Config{
		Universe: u, Protocol: core.NewDistill(core.Params{}),
		Adversary: SpamDistinct{}, N: 64, Alpha: 0.5, Seed: 1, MaxRounds: 20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	honest := make(map[int]bool)
	for _, p := range e.Honest() {
		honest[p] = true
	}
	dishonestVotes := 0
	for p := 0; p < 64; p++ {
		if honest[p] {
			continue
		}
		votes := e.Board().Votes(p)
		if len(votes) > 1 {
			t.Fatalf("dishonest player %d holds %d votes; cap is 1", p, len(votes))
		}
		dishonestVotes += len(votes)
		for _, v := range votes {
			if u.IsGood(v.Object) {
				t.Fatalf("spam adversary voted the good object")
			}
		}
	}
	if dishonestVotes != 32 {
		t.Fatalf("dishonest votes = %d, want 32 (one each)", dishonestVotes)
	}
}

func TestThresholdRideSlowsDistillAtLowAlpha(t *testing.T) {
	silent := runDistill(t, nil, 512, 0.25, 12)
	rider := runDistill(t, func() sim.Adversary { return NewThresholdRide() }, 512, 0.25, 12)
	t.Logf("silent %.1f rounds, threshold-ride %.1f rounds",
		silent.MeanRounds, rider.MeanRounds)
	if rider.MeanRounds < silent.MeanRounds {
		t.Fatalf("threshold-ride (%.1f rounds) should not beat silent (%.1f)",
			rider.MeanRounds, silent.MeanRounds)
	}
}

func TestMimicTracksHonestVoteRate(t *testing.T) {
	// After a run with Mimic, fake objects should have received votes.
	u, err := object.NewPlanted(object.Planted{M: 256, Good: 1}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	adv := NewMimic(4)
	e, err := sim.NewEngine(sim.Config{
		Universe: u, Protocol: core.NewDistill(core.Params{}),
		Adversary: adv, N: 256, Alpha: 0.5, Seed: 9, MaxRounds: 20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllHonestSatisfied() {
		t.Fatal("mimic prevented termination")
	}
	fakeVotes := 0
	for _, group := range adv.fake {
		for _, obj := range group {
			fakeVotes += e.Board().VoteCount(obj)
		}
	}
	if fakeVotes == 0 {
		t.Fatal("mimic cast no votes; the attack is not exercising anything")
	}
}

func TestDelayedStuffingFiresWhenDistillPhaseReached(t *testing.T) {
	// With short prepare/refine steps the distillation loop is reached
	// while players are still unsatisfied, so the burst must fire on at
	// least some seeds.
	fired := false
	for seed := uint64(0); seed < 10 && !fired; seed++ {
		u, err := object.NewPlanted(object.Planted{M: 512, Good: 1}, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		adv := NewDelayedStuffing()
		e, err := sim.NewEngine(sim.Config{
			Universe: u, Protocol: core.NewDistill(core.Params{K1: 0.5, K2: 4}),
			Adversary: adv, N: 512, Alpha: 0.25, Seed: seed, MaxRounds: 20000,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllHonestSatisfied() {
			t.Fatalf("seed %d: run did not finish", seed)
		}
		fired = fired || adv.done
	}
	if !fired {
		t.Fatal("delayed stuffing never fired across 10 seeds; the distill phase was never reached with bad candidates")
	}
}

func TestSuiteAndByName(t *testing.T) {
	names := Names()
	if len(names) != 9 {
		t.Fatalf("suite has %d strategies, want 9", len(names))
	}
	seen := map[string]bool{}
	for _, name := range names {
		if seen[name] {
			t.Fatalf("duplicate strategy name %q", name)
		}
		seen[name] = true
		if ByName(name) == nil {
			t.Fatalf("ByName(%q) = nil", name)
		}
		if got := ByName(name).Name(); got != name {
			t.Fatalf("ByName(%q).Name() = %q", name, got)
		}
	}
	if ByName("no-such-strategy") != nil {
		t.Fatal("ByName of unknown name should be nil")
	}
}

func TestByNameReturnsFreshInstances(t *testing.T) {
	a := ByName("delayed-stuffing").(*DelayedStuffing)
	a.done = true
	b := ByName("delayed-stuffing").(*DelayedStuffing)
	if b.done {
		t.Fatal("ByName returned shared state")
	}
}

func TestThresholdRideNoOpAgainstNonDistill(t *testing.T) {
	// Against a protocol without DistillState the rider must do nothing.
	u, err := object.NewPlanted(object.Planted{M: 32, Good: 1}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.NewEngine(sim.Config{
		Universe: u, Protocol: dummyProtocol{}, Adversary: NewThresholdRide(),
		N: 8, Alpha: 0.5, Seed: 2, MaxRounds: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := e.Board().TotalVotes(); got != countHonestVotes(e) {
		t.Fatalf("rider voted against a non-DISTILL protocol: %d total votes", got)
	}
}

func countHonestVotes(e *sim.Engine) int {
	honest := map[int]bool{}
	for _, p := range e.Honest() {
		honest[p] = true
	}
	count := 0
	for p := range honest {
		count += len(e.Board().Votes(p))
	}
	return count
}

// dummyProtocol probes object 0 forever.
type dummyProtocol struct{}

func (dummyProtocol) Name() string          { return "dummy" }
func (dummyProtocol) Init(sim.Setup) error  { return nil }
func (dummyProtocol) PrescribedRounds() int { return 0 }
func (dummyProtocol) Probes(round int, active []int, dst []sim.Probe) []sim.Probe {
	for _, p := range active {
		dst = append(dst, sim.Probe{Player: p, Object: 0})
	}
	return dst
}
