package adversary

import (
	"testing"

	"repro/internal/core"
	"repro/internal/object"
	"repro/internal/rng"
	"repro/internal/sim"
)

func TestOwnerShillVotesOnlyOwnBadObjects(t *testing.T) {
	const n, m = 32, 32
	u, err := object.NewPlanted(object.Planted{M: m, Good: 2}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	owner := func(obj int) int { return obj % n }
	adv := NewOwnerShill(owner)
	e, err := sim.NewEngine(sim.Config{
		Universe: u, Protocol: core.NewDistill(core.Params{}),
		Adversary: adv, N: n, Alpha: 0.5, Seed: 3, MaxRounds: 20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	honest := map[int]bool{}
	for _, p := range e.Honest() {
		honest[p] = true
	}
	for p := 0; p < n; p++ {
		if honest[p] {
			continue
		}
		for _, v := range e.Board().Votes(p) {
			if owner(v.Object) != p {
				t.Fatalf("shill %d voted object %d it does not own", p, v.Object)
			}
			if u.IsGood(v.Object) {
				t.Fatalf("shill %d voted a good object", p)
			}
		}
	}
}

func TestOwnerShillNeutralizedByVoteFilter(t *testing.T) {
	const n, m = 64, 64
	u, err := object.NewPlanted(object.Planted{M: m, Good: 1}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	owner := func(obj int) int { return obj % n }
	e, err := sim.NewEngine(sim.Config{
		Universe: u, Protocol: core.NewDistill(core.Params{}),
		Adversary: NewOwnerShill(owner), N: n, Alpha: 0.5, Seed: 4,
		MaxRounds:  20000,
		VoteFilter: func(player, objectID int) bool { return owner(objectID) != player },
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllHonestSatisfied() {
		t.Fatal("run did not finish")
	}
	// With the own-vote rule every shill vote is inadmissible: the only
	// votes on the board are honest ones for the good object.
	for obj := 0; obj < m; obj++ {
		if !u.IsGood(obj) && e.Board().VoteCount(obj) > 0 {
			t.Fatalf("bad object %d holds votes despite the own-vote rule", obj)
		}
	}
}

func TestOwnerShillNilOwnerNoOp(t *testing.T) {
	u, err := object.NewPlanted(object.Planted{M: 16, Good: 1}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	adv := &OwnerShill{}
	e, err := sim.NewEngine(sim.Config{
		Universe: u, Protocol: core.NewDistill(core.Params{}),
		Adversary: adv, N: 16, Alpha: 0.5, Seed: 5, MaxRounds: 20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	honest := map[int]bool{}
	for _, p := range e.Honest() {
		honest[p] = true
	}
	for p := 0; p < 16; p++ {
		if !honest[p] && e.Board().HasVote(p) {
			t.Fatal("nil-owner shill cast votes")
		}
	}
}

func TestFloodLiarRespectsCapOfOne(t *testing.T) {
	u, err := object.NewPlanted(object.Planted{M: 64, Good: 1}, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.NewEngine(sim.Config{
		Universe: u, Protocol: core.NewDistill(core.Params{}),
		Adversary: FloodLiar{}, N: 32, Alpha: 0.5, Seed: 6, MaxRounds: 20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllHonestSatisfied() {
		t.Fatal("flood defeated DISTILL at f=1")
	}
	honest := map[int]bool{}
	for _, p := range e.Honest() {
		honest[p] = true
	}
	for p := 0; p < 32; p++ {
		if honest[p] {
			continue
		}
		if got := len(e.Board().Votes(p)); got > 1 {
			t.Fatalf("flooder %d holds %d votes; billboard cap is 1", p, got)
		}
	}
}

func TestFloodLiarFillsLiftedCap(t *testing.T) {
	u, err := object.NewPlanted(object.Planted{M: 64, Good: 1}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.NewEngine(sim.Config{
		Universe: u, Protocol: core.NewDistill(core.Params{}),
		Adversary: FloodLiar{}, N: 32, Alpha: 0.5, Seed: 7,
		MaxRounds: 20000, VotesPerPlayer: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	honest := map[int]bool{}
	for _, p := range e.Honest() {
		honest[p] = true
	}
	maxVotes := 0
	for p := 0; p < 32; p++ {
		if honest[p] {
			continue
		}
		if got := len(e.Board().Votes(p)); got > maxVotes {
			maxVotes = got
		}
		if got := len(e.Board().Votes(p)); got > 8 {
			t.Fatalf("flooder exceeded lifted cap: %d", got)
		}
	}
	if maxVotes < 2 {
		t.Fatalf("lifted cap never used: max %d votes", maxVotes)
	}
}
