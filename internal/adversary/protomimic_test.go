package adversary

import (
	"testing"

	"repro/internal/core"
	"repro/internal/object"
	"repro/internal/rng"
	"repro/internal/sim"
)

func TestSilentDoesNothing(t *testing.T) {
	u, err := object.NewPlanted(object.Planted{M: 16, Good: 1}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.NewEngine(sim.Config{
		Universe: u, Protocol: core.NewDistill(core.Params{}),
		Adversary: Silent{}, N: 8, Alpha: 0.5, Seed: 1, MaxRounds: 10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	honest := map[int]bool{}
	for _, p := range e.Honest() {
		honest[p] = true
	}
	for p := 0; p < 8; p++ {
		if !honest[p] && e.Board().HasVote(p) {
			t.Fatal("silent adversary voted")
		}
	}
}

func TestProtocolMimicIndistinguishableReports(t *testing.T) {
	// The mimic groups run the honest protocol with fake value oracles:
	// after a run, each dishonest group's votes must land exclusively on
	// its designated fake-good set, and at least one group must have voted
	// (they execute the same schedule as honest players, so discoveries
	// happen at comparable rates).
	const n, m = 32, 32
	u, err := object.NewPlanted(object.Planted{M: m, Good: 2}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	fakeGood := [][]int{}
	for g := 0; g < 3; g++ {
		var set []int
		for obj := 0; obj < m && len(set) < 2; obj++ {
			if !u.IsGood(obj) && obj%3 == g {
				set = append(set, obj)
			}
		}
		fakeGood = append(fakeGood, set)
	}
	adv := NewProtocolMimic(func() sim.Protocol {
		return core.NewDistill(core.Params{})
	}, fakeGood)
	if adv.Name() != "protocol-mimic" {
		t.Fatalf("name %q", adv.Name())
	}
	e, err := sim.NewEngine(sim.Config{
		Universe: u, Protocol: core.NewDistill(core.Params{}),
		Adversary: adv, N: n, Alpha: 0.5, Seed: 5, MaxRounds: 20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllHonestSatisfied() {
		t.Fatal("honest players did not finish against protocol-mimic")
	}
	allFakes := map[int]bool{}
	for _, set := range fakeGood {
		for _, obj := range set {
			allFakes[obj] = true
		}
	}
	honest := map[int]bool{}
	for _, p := range e.Honest() {
		honest[p] = true
	}
	dishonestVotes := 0
	for p := 0; p < n; p++ {
		if honest[p] {
			continue
		}
		for _, v := range e.Board().Votes(p) {
			dishonestVotes++
			if !allFakes[v.Object] {
				t.Fatalf("mimic player %d voted %d outside its fake set", p, v.Object)
			}
		}
	}
	if dishonestVotes == 0 {
		t.Fatal("mimic groups cast no votes; they are not executing the protocol")
	}
}

func TestProtocolMimicEmptyGroupsNoOp(t *testing.T) {
	u, err := object.NewPlanted(object.Planted{M: 16, Good: 1}, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	adv := NewProtocolMimic(func() sim.Protocol {
		return core.NewDistill(core.Params{})
	}, nil)
	e, err := sim.NewEngine(sim.Config{
		Universe: u, Protocol: core.NewDistill(core.Params{}),
		Adversary: adv, N: 8, Alpha: 0.5, Seed: 6, MaxRounds: 10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	honest := map[int]bool{}
	for _, p := range e.Honest() {
		honest[p] = true
	}
	for p := 0; p < 8; p++ {
		if !honest[p] && e.Board().HasVote(p) {
			t.Fatal("group-less mimic voted")
		}
	}
}

func TestProtocolMimicSilentGroupNeverVotes(t *testing.T) {
	// A group with a nil fake set models the Theorem 2 players beyond B
	// that "don't ever report any result".
	u, err := object.NewPlanted(object.Planted{M: 16, Good: 1}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	adv := NewProtocolMimic(func() sim.Protocol {
		return core.NewDistill(core.Params{})
	}, [][]int{nil})
	e, err := sim.NewEngine(sim.Config{
		Universe: u, Protocol: core.NewDistill(core.Params{}),
		Adversary: adv, N: 8, Honest: []int{0, 1, 2, 3}, Seed: 7, MaxRounds: 10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for p := 4; p < 8; p++ {
		if e.Board().HasVote(p) {
			t.Fatalf("silent group member %d voted", p)
		}
	}
}

func TestMimicMoreGroupsThanDishonest(t *testing.T) {
	// Groups are clamped to the dishonest count; the run must not panic.
	u, err := object.NewPlanted(object.Planted{M: 32, Good: 1}, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.NewEngine(sim.Config{
		Universe: u, Protocol: core.NewDistill(core.Params{}),
		Adversary: NewMimic(50), N: 16, Honest: []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13}, // 2 dishonest
		Seed: 8, MaxRounds: 10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllHonestSatisfied() {
		t.Fatal("run did not finish")
	}
}

func TestNewMimicDefaults(t *testing.T) {
	if NewMimic(0).Groups != 4 {
		t.Fatal("default groups should be 4")
	}
	if NewMimic(-3).Groups != 4 {
		t.Fatal("negative groups should default to 4")
	}
}
