package adversary

import (
	"repro/internal/sim"
)

// Mimic implements the symmetry attack underlying Theorem 2: the dishonest
// players are split into Groups groups; group g behaves exactly like honest
// players for whom the g-th block of bad objects is the good set. Each
// round, the adversary observes how many honest players are casting their
// first vote (via the pending posts — its adaptive power) and has each
// group cast votes for its designated fake objects at the same rate, so
// that fake objects accumulate votes statistically indistinguishably from
// the genuinely good ones.
type Mimic struct {
	// Groups is the number of dishonest collusion groups (default 4).
	Groups int
	// FakePerGroup is how many fake "good" objects each group promotes
	// (default 1, matching β = 1/m universes).
	FakePerGroup int

	initialized bool
	fake        [][]int // fake good set per group
	members     [][]int // dishonest player ids per group
	nextVoter   []int   // per group, index of the next member to spend
}

var _ sim.Adversary = (*Mimic)(nil)

// NewMimic returns a Mimic adversary with the given number of groups.
func NewMimic(groups int) *Mimic {
	if groups <= 0 {
		groups = 4
	}
	return &Mimic{Groups: groups, FakePerGroup: 1}
}

// Name implements sim.Adversary.
func (a *Mimic) Name() string { return "mimic" }

func (a *Mimic) setup(ctx *sim.AdvContext) {
	a.initialized = true
	groups := a.Groups
	if groups <= 0 {
		groups = 4
	}
	if groups > len(ctx.Dishonest) {
		groups = len(ctx.Dishonest)
	}
	if groups == 0 {
		return
	}
	perGroup := a.FakePerGroup
	if perGroup <= 0 {
		perGroup = 1
	}
	bad := badObjects(ctx.Universe)
	a.fake = make([][]int, groups)
	a.members = make([][]int, groups)
	a.nextVoter = make([]int, groups)
	for g := 0; g < groups; g++ {
		for k := 0; k < perGroup; k++ {
			idx := g*perGroup + k
			if idx < len(bad) {
				a.fake[g] = append(a.fake[g], bad[idx])
			}
		}
	}
	for i, p := range ctx.Dishonest {
		g := i % groups
		a.members[g] = append(a.members[g], p)
	}
}

// Act implements sim.Adversary.
func (a *Mimic) Act(ctx *sim.AdvContext) {
	if !a.initialized {
		a.setup(ctx)
	}
	if len(a.members) == 0 {
		return
	}
	// Count honest first-votes in flight this round.
	honestVotes := 0
	for _, post := range ctx.Board.PendingView() {
		if post.Positive && !ctx.Board.HasVote(post.Player) {
			honestVotes++
		}
	}
	if honestVotes == 0 {
		return
	}
	// Each group matches the honest vote rate, scaled by its size relative
	// to the honest population, but at least matching one-for-one when
	// groups are as large as the honest side (the Theorem 2 instance).
	for g := range a.members {
		toCast := honestVotes
		for k := 0; k < toCast; k++ {
			if a.nextVoter[g] >= len(a.members[g]) {
				break // group budget spent
			}
			player := a.members[g][a.nextVoter[g]]
			obj := a.fake[g][k%len(a.fake[g])]
			vote(ctx.Board, player, obj)
			a.nextVoter[g]++
		}
	}
}

// DelayedStuffing hoards the dishonest vote budget until DISTILL's
// distillation loop starts, then dumps every vote on the bad candidates at
// once — a burst attack that tests whether a one-window surge can keep bad
// objects alive longer than the steady drip of ThresholdRide.
type DelayedStuffing struct {
	done bool
}

var _ sim.Adversary = (*DelayedStuffing)(nil)

// NewDelayedStuffing returns the burst adversary.
func NewDelayedStuffing() *DelayedStuffing { return &DelayedStuffing{} }

// Name implements sim.Adversary.
func (a *DelayedStuffing) Name() string { return "delayed-stuffing" }

// Act implements sim.Adversary.
func (a *DelayedStuffing) Act(ctx *sim.AdvContext) {
	if a.done {
		return
	}
	insp, ok := ctx.Protocol.(distillInspector)
	if !ok {
		return
	}
	st := insp.DistillState()
	if st.Phase != "distill" {
		return
	}
	a.done = true
	targets := make([]int, 0)
	for _, obj := range st.Candidates {
		if !ctx.Universe.IsGood(obj) {
			targets = append(targets, obj)
		}
	}
	if len(targets) == 0 {
		return
	}
	for i, p := range ctx.Dishonest {
		if ctx.Board.HasVote(p) {
			continue
		}
		vote(ctx.Board, p, targets[i%len(targets)])
	}
}
