package faultnet

import (
	"io"
	"net"
	"testing"
	"time"
)

// TestIsolateOneWay pins the asymmetric-partition semantics: while a label
// is isolated its writes report success but deliver nothing, reads keep
// working, and Heal restores delivery — on existing and new connections.
func TestIsolateOneWay(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	received := make(chan []byte, 16)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				if _, err := conn.Write([]byte("hi")); err != nil {
					return
				}
				buf := make([]byte, 64)
				for {
					n, err := conn.Read(buf)
					if err != nil {
						return
					}
					received <- append([]byte(nil), buf[:n]...)
				}
			}(conn)
		}
	}()

	inj, err := New(Config{Seed: 3}) // zero fault probabilities: Isolate only
	if err != nil {
		t.Fatal(err)
	}
	const label = 7
	dial := inj.Dialer(label, nil)
	conn, err := dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	inj.Isolate(label)
	// Outbound is swallowed — but reported as a full successful write.
	if n, err := conn.Write([]byte("lost")); err != nil || n != 4 {
		t.Fatalf("isolated write = (%d, %v), want (4, nil) — the write must look successful", n, err)
	}
	// Inbound still flows: the one-way partition does not touch reads.
	buf := make([]byte, 2)
	if _, err := io.ReadFull(conn, buf); err != nil || string(buf) != "hi" {
		t.Fatalf("read under isolation = %q, %v; want \"hi\"", buf, err)
	}
	// A connection dialed while isolated is isolated too.
	conn2, err := dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if _, err := conn2.Write([]byte("also lost")); err != nil {
		t.Fatalf("isolated write on new conn: %v", err)
	}
	select {
	case got := <-received:
		t.Fatalf("server received %q through an isolated label", got)
	case <-time.After(50 * time.Millisecond):
	}

	inj.Heal(label)
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-received:
		if string(got) != "ping" {
			t.Fatalf("after heal server received %q, want \"ping\"", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("healed write never arrived")
	}
}

// TestIsolateIsLabelScoped ensures Isolate only covers its own label: other
// labels on the same injector keep delivering.
func TestIsolateIsLabelScoped(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	received := make(chan []byte, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 64)
		n, err := conn.Read(buf)
		if err != nil {
			return
		}
		received <- append([]byte(nil), buf[:n]...)
	}()
	inj, err := New(Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	inj.Isolate(1)
	conn, err := inj.Dialer(2, nil)(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-received:
		if string(got) != "ok" {
			t.Fatalf("received %q, want \"ok\"", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("write on a non-isolated label never arrived")
	}
}
