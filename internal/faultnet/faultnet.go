// Package faultnet injects deterministic, seed-derived transport faults
// into net.Conn / net.Listener so every failure scenario the networked
// billboard must survive — connection drops, delivery delays, torn
// (partial) writes, one-way partitions — is reproducible from a single
// uint64 seed, in the same spirit as the repo-wide determinism contract
// (internal/rng).
//
// Faults are decided per I/O operation from a stream derived as
// Split(seed, label, connection ordinal): each labeled dialer (one per
// player, say) numbers its connections, so a client's fault schedule
// depends only on the seed and its own reconnect history, never on global
// goroutine interleaving. That is what lets a chaos run (internal/dist)
// assert byte-identical billboard state against a fault-free run.
package faultnet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/rng"
)

// ErrInjected marks every error produced by an injected fault, so tests
// and retry loops can tell synthetic failures from real ones.
var ErrInjected = errors.New("faultnet: injected fault")

// Config sets per-operation fault probabilities. Probabilities are checked
// in the order Drop, Delay, Tear, Partition against one uniform draw per
// operation, so their sum is the total injection rate (keep it ≤ 1).
type Config struct {
	// Seed drives all fault decisions.
	Seed uint64
	// Drop is the probability an I/O operation abruptly closes the
	// connection (both directions) and reports an injected error.
	Drop float64
	// Delay is the probability an operation is stalled by a uniform
	// duration in (0, MaxDelay] before proceeding normally.
	Delay float64
	// MaxDelay bounds injected delays (default 1ms when Delay > 0).
	MaxDelay time.Duration
	// Tear is the probability a write transmits only a strict prefix of
	// the buffer and then closes the connection — the peer observes a torn
	// frame. Applies to writes only.
	Tear float64
	// Partition is the probability a write latches the connection into a
	// one-way partition: this write and all later ones report success but
	// deliver nothing, while reads still work (and thus block forever
	// waiting for responses that cannot come — exercising the caller's
	// deadlines). Applies to writes only.
	Partition float64
}

// rate returns the total per-write injection probability.
func (c Config) rate() float64 { return c.Drop + c.Delay + c.Tear + c.Partition }

// Injector derives per-connection fault streams from one Config.
type Injector struct {
	cfg Config

	mu       sync.Mutex
	ordinals map[uint64]uint64 // label → connections opened so far
	isolated map[uint64]bool   // label → outbound writes swallowed (Isolate)
}

// New validates cfg and builds an Injector.
func New(cfg Config) (*Injector, error) {
	for _, p := range []float64{cfg.Drop, cfg.Delay, cfg.Tear, cfg.Partition} {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("faultnet: probability %v outside [0, 1]", p)
		}
	}
	if cfg.rate() > 1 {
		return nil, fmt.Errorf("faultnet: total injection rate %v exceeds 1", cfg.rate())
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = time.Millisecond
	}
	return &Injector{cfg: cfg, ordinals: make(map[uint64]uint64), isolated: make(map[uint64]bool)}, nil
}

// Isolate puts every current and future connection under label into an
// asymmetric (one-way) partition: writes report success but deliver
// nothing, while reads keep working. Unlike the probabilistic Partition
// knob — which latches a single connection — Isolate is a deterministic,
// injector-wide switch covering a whole labeled endpoint, which is what a
// leader-isolation scenario needs: the replica still hears its peers but
// none of its own heartbeats or appends escape. Heal reverses it.
func (in *Injector) Isolate(label uint64) {
	in.mu.Lock()
	in.isolated[label] = true
	in.mu.Unlock()
}

// Heal lifts an Isolate on label. Connections latched by the probabilistic
// Partition fault stay partitioned — Heal only clears the injector-level
// switch.
func (in *Injector) Heal(label uint64) {
	in.mu.Lock()
	delete(in.isolated, label)
	in.mu.Unlock()
}

// isIsolated reports whether label is currently under an Isolate.
func (in *Injector) isIsolated(label uint64) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.isolated[label]
}

// wrap builds the fault stream for the next connection under label.
func (in *Injector) wrap(nc net.Conn, label uint64) net.Conn {
	in.mu.Lock()
	ord := in.ordinals[label]
	in.ordinals[label]++
	in.mu.Unlock()
	return &conn{
		Conn:  nc,
		cfg:   in.cfg,
		in:    in,
		label: label,
		src:   rng.New(in.cfg.Seed).Split(label).Split(ord),
	}
}

// Dialer wraps dial (nil means net.Dial "tcp") so that every connection it
// opens carries fault injection under the given label.
func (in *Injector) Dialer(label uint64, dial func(addr string) (net.Conn, error)) func(addr string) (net.Conn, error) {
	if dial == nil {
		dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	return func(addr string) (net.Conn, error) {
		nc, err := dial(addr)
		if err != nil {
			return nil, err
		}
		return in.wrap(nc, label), nil
	}
}

// Listener wraps ln so accepted connections carry fault injection under
// label (server-side injection; ordinal = acceptance order).
func (in *Injector) Listener(ln net.Listener, label uint64) net.Listener {
	return &listener{Listener: ln, in: in, label: label}
}

type listener struct {
	net.Listener
	in    *Injector
	label uint64
}

func (l *listener) Accept() (net.Conn, error) {
	nc, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.wrap(nc, l.label), nil
}

// fault kinds drawn per operation.
const (
	fNone = iota
	fDrop
	fDelay
	fTear
	fPartition
)

// conn applies the fault schedule of one connection. The underlying rng
// stream is consumed once per Read/Write in call order, which is
// deterministic for the protocol's strictly serial request/response use.
type conn struct {
	net.Conn
	cfg   Config
	in    *Injector
	label uint64

	mu      sync.Mutex
	src     *rng.Source
	swallow bool // one-way partition latched: writes succeed, deliver nothing
}

// decide draws the fault for one operation. The torn-write prefix length
// and delay are drawn under the same lock so the stream stays serial.
func (c *conn) decide(write bool, n int) (kind int, delay time.Duration, prefix int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if write && c.swallow {
		return fPartition, 0, 0
	}
	x := c.src.Float64()
	p := c.cfg.Drop
	if x < p {
		return fDrop, 0, 0
	}
	p += c.cfg.Delay
	if x < p {
		return fDelay, time.Duration(1 + c.src.Uint64n(uint64(c.cfg.MaxDelay))), 0
	}
	if write {
		p += c.cfg.Tear
		if x < p {
			if n > 1 {
				prefix = int(c.src.Uint64n(uint64(n)))
			}
			return fTear, 0, prefix
		}
		p += c.cfg.Partition
		if x < p {
			c.swallow = true
			return fPartition, 0, 0
		}
	}
	return fNone, 0, 0
}

func (c *conn) Read(b []byte) (int, error) {
	switch kind, delay, _ := c.decide(false, len(b)); kind {
	case fDrop:
		c.Conn.Close()
		return 0, fmt.Errorf("%w: connection drop on read", ErrInjected)
	case fDelay:
		time.Sleep(delay)
	}
	return c.Conn.Read(b)
}

func (c *conn) Write(b []byte) (int, error) {
	// The Isolate switch is checked before the probabilistic draw and does
	// not consume the rng stream, so healing an isolation leaves the
	// connection's fault schedule exactly where it would otherwise be.
	if c.in != nil && c.in.isIsolated(c.label) {
		return len(b), nil
	}
	switch kind, delay, prefix := c.decide(true, len(b)); kind {
	case fDrop:
		c.Conn.Close()
		return 0, fmt.Errorf("%w: connection drop on write", ErrInjected)
	case fDelay:
		time.Sleep(delay)
	case fTear:
		n, _ := c.Conn.Write(b[:prefix])
		c.Conn.Close()
		return n, fmt.Errorf("%w: torn write (%d of %d bytes)", ErrInjected, n, len(b))
	case fPartition:
		return len(b), nil // swallowed: the peer never sees it
	}
	return c.Conn.Write(b)
}
