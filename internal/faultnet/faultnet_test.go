package faultnet

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Drop: -0.1}); err == nil {
		t.Fatal("negative probability accepted")
	}
	if _, err := New(Config{Drop: 0.5, Tear: 0.6}); err == nil {
		t.Fatal("total rate > 1 accepted")
	}
	if _, err := New(Config{Seed: 1, Drop: 0.25, Delay: 0.25, Tear: 0.25, Partition: 0.25}); err != nil {
		t.Fatalf("rate exactly 1 rejected: %v", err)
	}
}

// pipePair builds an in-memory connection with injection on the client end.
func pipePair(t *testing.T, cfg Config, label uint64) (faulty, peer net.Conn) {
	t.Helper()
	in, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, p := net.Pipe()
	t.Cleanup(func() { c.Close(); p.Close() })
	return in.wrap(c, label), p
}

func TestPassthroughWithoutFaults(t *testing.T) {
	faulty, peer := pipePair(t, Config{Seed: 1}, 0)
	go func() {
		buf := make([]byte, 5)
		io.ReadFull(peer, buf)
		peer.Write(buf)
	}()
	if _, err := faulty.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(faulty, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("got %q", buf)
	}
}

func TestDropInjectsErrInjected(t *testing.T) {
	faulty, _ := pipePair(t, Config{Seed: 42, Drop: 1}, 0)
	_, err := faulty.Write([]byte("x"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}

func TestTornWriteDeliversPrefix(t *testing.T) {
	faulty, peer := pipePair(t, Config{Seed: 7, Tear: 1}, 0)
	got := make(chan []byte, 1)
	go func() {
		b, _ := io.ReadAll(peer)
		got <- b
	}()
	payload := []byte("0123456789")
	n, err := faulty.Write(payload)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if n >= len(payload) {
		t.Fatalf("torn write reported %d of %d bytes", n, len(payload))
	}
	if b := <-got; len(b) != n {
		t.Fatalf("peer received %d bytes, writer reported %d", len(b), n)
	}
}

func TestPartitionSwallowsWrites(t *testing.T) {
	faulty, peer := pipePair(t, Config{Seed: 3, Partition: 1}, 0)
	if n, err := faulty.Write([]byte("lost")); err != nil || n != 4 {
		t.Fatalf("partitioned write: n=%d err=%v, want success", n, err)
	}
	// Nothing must arrive at the peer; reads on the faulty side still work.
	peer.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	buf := make([]byte, 4)
	if n, _ := peer.Read(buf); n != 0 {
		t.Fatalf("peer received %d swallowed bytes", n)
	}
	go peer.Write([]byte("pong"))
	faulty.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := io.ReadFull(faulty, buf); err != nil {
		t.Fatalf("read through one-way partition: %v", err)
	}
}

// TestDeterministicSchedule pins the core reproducibility contract: the same
// seed, label, and connection ordinal produce the same fault decisions
// regardless of when or where the connection runs.
func TestDeterministicSchedule(t *testing.T) {
	cfg := Config{Seed: 99, Drop: 0.2, Delay: 0.2, Tear: 0.2, Partition: 0.1, MaxDelay: time.Microsecond}
	schedule := func() []int {
		in, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var kinds []int
		for ord := 0; ord < 3; ord++ { // three sequential connections
			nc, peer := net.Pipe()
			defer nc.Close()
			defer peer.Close()
			c := in.wrap(nc, 5).(*conn)
			for op := 0; op < 32; op++ {
				kind, _, _ := c.decide(op%2 == 0, 64)
				kinds = append(kinds, kind)
			}
		}
		return kinds
	}
	a, b := schedule(), schedule()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at op %d: %d vs %d", i, a[i], b[i])
		}
	}
	injected := 0
	for _, k := range a {
		if k != fNone {
			injected++
		}
	}
	if injected == 0 {
		t.Fatal("70% injection rate produced no faults in 96 ops")
	}
}

// TestLabelsIndependent: different labels see different schedules (distinct
// rng streams), so one player's reconnects never shift another's faults.
func TestLabelsIndependent(t *testing.T) {
	cfg := Config{Seed: 99, Drop: 0.5}
	in, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	draw := func(label uint64) []int {
		nc, peer := net.Pipe()
		defer nc.Close()
		defer peer.Close()
		c := in.wrap(nc, label).(*conn)
		var kinds []int
		for op := 0; op < 64; op++ {
			kind, _, _ := c.decide(false, 1)
			kinds = append(kinds, kind)
		}
		return kinds
	}
	a, b := draw(1), draw(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("labels 1 and 2 produced identical 64-op schedules")
	}
}

func TestListenerWrapsAccepted(t *testing.T) {
	in, err := New(Config{Seed: 1, Drop: 1})
	if err != nil {
		t.Fatal(err)
	}
	base, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := in.Listener(base, 0)
	defer ln.Close()
	go func() {
		nc, err := net.Dial("tcp", ln.Addr().String())
		if err == nil {
			nc.Write([]byte("hi")) // ensure the server side has traffic
			nc.Close()
		}
	}()
	sc, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if _, err := sc.Read(make([]byte, 2)); !errors.Is(err, ErrInjected) {
		t.Fatalf("accepted conn not fault-injected: %v", err)
	}
}
