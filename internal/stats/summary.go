// Package stats provides the statistical summaries, fits, and table
// rendering used by the experiment harness.
//
// Everything operates on plain float64 slices so that simulation code can
// stay decoupled from presentation. Quantiles use the type-7 (linear
// interpolation) estimator, matching R's default and numpy's default.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64 // sample standard deviation (n-1 denominator)
	Min    float64
	P25    float64
	Median float64
	P75    float64
	P90    float64
	P95    float64
	P99    float64
	Max    float64
}

// Summarize computes a Summary of xs. A nil or empty sample yields a zero
// Summary with N == 0.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s := Summary{
		N:      len(sorted),
		Mean:   Mean(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		P25:    quantileSorted(sorted, 0.25),
		Median: quantileSorted(sorted, 0.50),
		P75:    quantileSorted(sorted, 0.75),
		P90:    quantileSorted(sorted, 0.90),
		P95:    quantileSorted(sorted, 0.95),
		P99:    quantileSorted(sorted, 0.99),
	}
	s.Stddev = Stddev(sorted)
	return s
}

// String renders the summary in a single human-readable line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f med=%.3f p95=%.3f max=%.3f",
		s.N, s.Mean, s.Stddev, s.Min, s.Median, s.P95, s.Max)
}

// Mean returns the arithmetic mean of xs, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (n-1 denominator),
// or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	total := 0.0
	for _, x := range xs {
		d := x - m
		total += d * d
	}
	return total / float64(n-1)
}

// Stddev returns the unbiased sample standard deviation of xs.
func Stddev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Quantile returns the q-quantile of xs for q in [0, 1], using linear
// interpolation between order statistics. It panics on an empty sample or
// q outside [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q < 0 || q > 1 {
		panic("stats: Quantile with q outside [0, 1]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Max returns the maximum of xs, or 0 for an empty sample.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or 0 for an empty sample.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// MeanInts converts and averages an int sample.
func MeanInts(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	total := 0
	for _, x := range xs {
		total += x
	}
	return float64(total) / float64(len(xs))
}

// Floats converts an int slice to float64 for use with the other helpers.
func Floats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// CI95 returns the half-width of an approximate 95% confidence interval for
// the mean of xs (normal approximation, 1.96 standard errors). Returns 0
// when len(xs) < 2.
func CI95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	return 1.96 * Stddev(xs) / math.Sqrt(float64(n))
}
