package stats

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table used by the experiment
// harness to print paper-style result tables. The zero value is unusable;
// construct with NewTable.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row. Cells are formatted with %v; float64 cells are
// rendered with 3 significant decimals.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// Title returns the table title.
func (t *Table) Title() string { return t.title }

// String renders the table with aligned columns, a title line, and a
// separator under the header.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "## %s\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored pipe table (no title;
// callers typically emit a heading separately).
func (t *Table) Markdown() string {
	var b strings.Builder
	writeMDRow := func(cells []string) {
		b.WriteString("|")
		for _, cell := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(cell, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	writeMDRow(t.headers)
	b.WriteString("|")
	for range t.headers {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeMDRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header row first).
// Cells containing commas or quotes are quoted per RFC 4180.
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.headers)
	for _, row := range t.rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, cell := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(cell, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
			b.WriteByte('"')
		} else {
			b.WriteString(cell)
		}
	}
	b.WriteByte('\n')
}
