package stats

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestBootstrapCIContainsMean(t *testing.T) {
	src := rng.New(1)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 10 + src.NormFloat64()
	}
	lo, hi := BootstrapCI(xs, 0.95, 2000, src)
	if lo >= hi {
		t.Fatalf("degenerate interval [%v, %v]", lo, hi)
	}
	if lo > 10 || hi < 10 {
		t.Fatalf("interval [%v, %v] misses the true mean 10", lo, hi)
	}
	// Width should be roughly 2·1.96/sqrt(200) ≈ 0.28.
	if width := hi - lo; width < 0.1 || width > 0.6 {
		t.Fatalf("implausible width %v", width)
	}
}

func TestBootstrapCIShrinksWithN(t *testing.T) {
	src := rng.New(2)
	small := make([]float64, 20)
	big := make([]float64, 500)
	for i := range small {
		small[i] = src.NormFloat64()
	}
	for i := range big {
		big[i] = src.NormFloat64()
	}
	lo1, hi1 := BootstrapCI(small, 0.95, 1000, src)
	lo2, hi2 := BootstrapCI(big, 0.95, 1000, src)
	if hi2-lo2 >= hi1-lo1 {
		t.Fatalf("CI did not shrink: small %v, big %v", hi1-lo1, hi2-lo2)
	}
}

func TestBootstrapCIPanics(t *testing.T) {
	src := rng.New(3)
	for _, f := range []func(){
		func() { BootstrapCI(nil, 0.95, 100, src) },
		func() { BootstrapCI([]float64{1}, 0, 100, src) },
		func() { BootstrapCI([]float64{1}, 1, 100, src) },
		func() { BootstrapCI([]float64{1}, 0.95, 0, src) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	lo1, hi1 := BootstrapCI(xs, 0.9, 500, rng.New(9))
	lo2, hi2 := BootstrapCI(xs, 0.9, 500, rng.New(9))
	if lo1 != lo2 || hi1 != hi2 {
		t.Fatal("bootstrap not deterministic for a fixed source")
	}
}

func TestMannWhitneyClearSeparation(t *testing.T) {
	src := rng.New(4)
	xs := make([]float64, 40)
	ys := make([]float64, 40)
	for i := range xs {
		xs[i] = src.NormFloat64()
		ys[i] = 3 + src.NormFloat64()
	}
	_, p := MannWhitney(xs, ys)
	if p > 1e-6 {
		t.Fatalf("clear separation not detected: p = %v", p)
	}
	if !SignificantlyLess(xs, ys, 0.01) {
		t.Fatal("SignificantlyLess missed a 3-sigma separation")
	}
	if SignificantlyLess(ys, xs, 0.01) {
		t.Fatal("direction reversed")
	}
}

func TestMannWhitneySameDistribution(t *testing.T) {
	// Under the null, p-values should rarely be tiny. Run a few trials and
	// require that none dips below 0.001 (probability of failure ~0.005).
	src := rng.New(5)
	for trial := 0; trial < 5; trial++ {
		xs := make([]float64, 50)
		ys := make([]float64, 50)
		for i := range xs {
			xs[i] = src.NormFloat64()
			ys[i] = src.NormFloat64()
		}
		if _, p := MannWhitney(xs, ys); p < 0.001 {
			t.Fatalf("trial %d: null rejected with p = %v", trial, p)
		}
	}
}

func TestMannWhitneyAllTied(t *testing.T) {
	xs := []float64{5, 5, 5}
	ys := []float64{5, 5, 5, 5}
	_, p := MannWhitney(xs, ys)
	if p != 1 {
		t.Fatalf("identical samples should give p = 1, got %v", p)
	}
	if SignificantlyLess(xs, ys, 0.05) {
		t.Fatal("identical samples called significant")
	}
}

func TestMannWhitneyUStatisticKnown(t *testing.T) {
	// Hand-computed: xs = {1,2}, ys = {3,4}: all ys above, U = 0.
	u, _ := MannWhitney([]float64{1, 2}, []float64{3, 4})
	if u != 0 {
		t.Fatalf("U = %v, want 0", u)
	}
	// Reversed: U = n1*n2 = 4.
	u, _ = MannWhitney([]float64{3, 4}, []float64{1, 2})
	if u != 4 {
		t.Fatalf("U = %v, want 4", u)
	}
}

func TestMannWhitneyPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MannWhitney(nil, []float64{1})
}

func TestNormalUpperTail(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0.5},
		{1.96, 0.025},
		{3, 0.00135},
	}
	for _, tc := range cases {
		if got := normalUpperTail(tc.z); math.Abs(got-tc.want) > 0.001 {
			t.Fatalf("tail(%v) = %v, want ~%v", tc.z, got, tc.want)
		}
	}
}
