package stats

import (
	"math"
	"sort"

	"repro/internal/rng"
)

// BootstrapCI returns a percentile bootstrap confidence interval for the
// mean of xs at the given confidence level (e.g. 0.95), using the supplied
// deterministic random source and resample count. It panics on an empty
// sample, confidence outside (0, 1), or resamples < 1.
func BootstrapCI(xs []float64, confidence float64, resamples int, src *rng.Source) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: BootstrapCI of empty sample")
	}
	if confidence <= 0 || confidence >= 1 {
		panic("stats: BootstrapCI confidence outside (0, 1)")
	}
	if resamples < 1 {
		panic("stats: BootstrapCI needs at least one resample")
	}
	means := make([]float64, resamples)
	n := len(xs)
	for r := range means {
		total := 0.0
		for i := 0; i < n; i++ {
			total += xs[src.Intn(n)]
		}
		means[r] = total / float64(n)
	}
	sort.Float64s(means)
	tail := (1 - confidence) / 2
	return quantileSorted(means, tail), quantileSorted(means, 1-tail)
}

// MannWhitney performs a two-sided Mann-Whitney U test (rank-sum) on two
// independent samples, using the normal approximation with tie correction
// and continuity correction. It returns the U statistic for xs and an
// approximate two-sided p-value. Suitable for the sample sizes the
// experiment harness produces (n >= ~8 per side). It panics if either
// sample is empty.
func MannWhitney(xs, ys []float64) (u float64, pValue float64) {
	n1, n2 := len(xs), len(ys)
	if n1 == 0 || n2 == 0 {
		panic("stats: MannWhitney with empty sample")
	}
	type obs struct {
		v     float64
		first bool
	}
	all := make([]obs, 0, n1+n2)
	for _, v := range xs {
		all = append(all, obs{v, true})
	}
	for _, v := range ys {
		all = append(all, obs{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Assign midranks, accumulating the tie correction term Σ(t³−t).
	ranks := make([]float64, len(all))
	tieTerm := 0.0
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		t := float64(j - i)
		tieTerm += t*t*t - t
		i = j
	}
	r1 := 0.0
	for i, o := range all {
		if o.first {
			r1 += ranks[i]
		}
	}
	fn1, fn2 := float64(n1), float64(n2)
	u = r1 - fn1*(fn1+1)/2

	mean := fn1 * fn2 / 2
	nTot := fn1 + fn2
	variance := fn1 * fn2 / 12 * ((nTot + 1) - tieTerm/(nTot*(nTot-1)))
	if variance <= 0 {
		// All observations identical: no evidence of difference.
		return u, 1
	}
	z := math.Abs(u-mean) - 0.5 // continuity correction
	if z < 0 {
		z = 0
	}
	z /= math.Sqrt(variance)
	pValue = 2 * normalUpperTail(z)
	if pValue > 1 {
		pValue = 1
	}
	return u, pValue
}

// normalUpperTail returns P(Z > z) for a standard normal Z, via the
// complementary error function.
func normalUpperTail(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// SignificantlyLess reports whether xs is stochastically smaller than ys at
// the given significance level, combining a one-sided Mann-Whitney test
// (derived from the two-sided p-value and the direction of the U statistic)
// with a mean comparison. Used by experiments to assert "algorithm A beats
// algorithm B" rigorously.
func SignificantlyLess(xs, ys []float64, level float64) bool {
	if Mean(xs) >= Mean(ys) {
		return false
	}
	u, p2 := MannWhitney(xs, ys)
	// Direction: small U means xs ranks below ys.
	fn1, fn2 := float64(len(xs)), float64(len(ys))
	if u >= fn1*fn2/2 {
		return false
	}
	return p2/2 < level
}
