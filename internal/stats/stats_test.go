package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almost(m, 5, 1e-12) {
		t.Fatalf("mean = %v, want 5", m)
	}
	// Sample variance with n-1 denominator: sum sq dev = 32, /7.
	if v := Variance(xs); !almost(v, 32.0/7, 1e-12) {
		t.Fatalf("variance = %v, want %v", v, 32.0/7)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || Stddev(nil) != 0 {
		t.Fatal("empty sample should yield zeros")
	}
	if Variance([]float64{7}) != 0 {
		t.Fatal("singleton variance should be 0")
	}
	s := Summarize(nil)
	if s.N != 0 {
		t.Fatalf("Summarize(nil).N = %d", s.N)
	}
	s = Summarize([]float64{3})
	if s.N != 1 || s.Mean != 3 || s.Median != 3 || s.Min != 3 || s.Max != 3 {
		t.Fatalf("singleton summary wrong: %+v", s)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {1.0 / 3, 2},
	}
	for _, tc := range cases {
		if got := Quantile(xs, tc.q); !almost(got, tc.want, 1e-12) {
			t.Fatalf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestQuantileUnsortedInput(t *testing.T) {
	xs := []float64{9, 1, 5, 3, 7}
	if got := Quantile(xs, 0.5); got != 5 {
		t.Fatalf("median of unsorted = %v, want 5", got)
	}
	// Input must not be mutated.
	if xs[0] != 9 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, q1Raw, q2Raw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				raw[i] = 0
			}
		}
		q1 := float64(q1Raw) / 255
		q2 := float64(q2Raw) / 255
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		return Quantile(raw, q1) <= Quantile(raw, q2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarizeOrderInvariant(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				raw[i] = float64(i)
			}
			// Clamp magnitudes so partial sums cannot overflow in one
			// summation order but not another.
			raw[i] = math.Mod(raw[i], 1e9)
		}
		a := Summarize(raw)
		shuffled := append([]float64(nil), raw...)
		sort.Sort(sort.Reverse(sort.Float64Slice(shuffled)))
		b := Summarize(shuffled)
		return almost(a.Mean, b.Mean, 1e-9*math.Max(1, math.Abs(a.Mean))) &&
			a.Min == b.Min && a.Max == b.Max &&
			almost(a.Median, b.Median, 1e-9*math.Max(1, math.Abs(a.Median)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if Min(xs) != -1 || Max(xs) != 5 {
		t.Fatalf("min/max = %v/%v", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty min/max should be 0")
	}
}

func TestMeanIntsAndFloats(t *testing.T) {
	if m := MeanInts([]int{1, 2, 3}); m != 2 {
		t.Fatalf("MeanInts = %v", m)
	}
	fs := Floats([]int{1, 2})
	if len(fs) != 2 || fs[0] != 1 || fs[1] != 2 {
		t.Fatalf("Floats = %v", fs)
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	small := []float64{1, 2, 3, 4, 5}
	big := make([]float64, 0, 500)
	for i := 0; i < 100; i++ {
		big = append(big, small...)
	}
	if CI95(big) >= CI95(small) {
		t.Fatal("CI should shrink as n grows")
	}
	if CI95([]float64{1}) != 0 {
		t.Fatal("CI of singleton should be 0")
	}
}

func TestFitLinearExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 2x + 3
	fit := FitLinear(x, y)
	if !almost(fit.Slope, 2, 1e-12) || !almost(fit.Intercept, 3, 1e-12) {
		t.Fatalf("fit = %+v", fit)
	}
	if !almost(fit.R2, 1, 1e-12) {
		t.Fatalf("R2 = %v, want 1", fit.R2)
	}
}

func TestFitLinearNoise(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6}
	y := []float64{2.1, 3.9, 6.2, 7.8, 10.1, 11.9} // roughly y = 2x
	fit := FitLinear(x, y)
	if fit.Slope < 1.8 || fit.Slope > 2.2 {
		t.Fatalf("slope = %v", fit.Slope)
	}
	if fit.R2 < 0.99 {
		t.Fatalf("R2 = %v", fit.R2)
	}
}

func TestFitLinearConstantY(t *testing.T) {
	fit := FitLinear([]float64{1, 2, 3}, []float64{4, 4, 4})
	if fit.Slope != 0 || fit.Intercept != 4 || fit.R2 != 1 {
		t.Fatalf("constant-y fit = %+v", fit)
	}
}

func TestFitLinearPanics(t *testing.T) {
	for _, f := range []func(){
		func() { FitLinear([]float64{1}, []float64{1, 2}) },
		func() { FitLinear([]float64{1}, []float64{1}) },
		func() { FitLinear([]float64{2, 2, 2}, []float64{1, 2, 3}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestFitLogX(t *testing.T) {
	// y = 3*log2(x) + 1
	x := []float64{2, 4, 8, 16, 32}
	y := []float64{4, 7, 10, 13, 16}
	fit := FitLogX(x, y)
	if !almost(fit.Slope, 3, 1e-9) || !almost(fit.Intercept, 1, 1e-9) {
		t.Fatalf("log fit = %+v", fit)
	}
}

func TestFitPower(t *testing.T) {
	// y = 5 * x^1.5
	x := []float64{1, 2, 4, 8, 16}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = 5 * math.Pow(v, 1.5)
	}
	p, c, r2 := FitPower(x, y)
	if !almost(p, 1.5, 1e-9) || !almost(c, 5, 1e-6) || !almost(r2, 1, 1e-9) {
		t.Fatalf("power fit p=%v c=%v r2=%v", p, c, r2)
	}
}

func TestGrowthRatio(t *testing.T) {
	if g := GrowthRatio([]float64{2, 3, 8}); g != 4 {
		t.Fatalf("GrowthRatio = %v", g)
	}
	if g := GrowthRatio([]float64{0, 0}); g != 1 {
		t.Fatalf("GrowthRatio both-zero = %v", g)
	}
	if g := GrowthRatio([]float64{0, 5}); !math.IsInf(g, 1) {
		t.Fatalf("GrowthRatio from zero = %v", g)
	}
	if g := GrowthRatio(nil); g != 1 {
		t.Fatalf("GrowthRatio empty = %v", g)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("demo", "n", "cost")
	tab.AddRow(128, 3.14159)
	tab.AddRow(256, "n/a")
	out := tab.String()
	if !strings.Contains(out, "## demo") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "3.142") {
		t.Fatalf("float not rounded to 3 decimals:\n%s", out)
	}
	if !strings.Contains(out, "n/a") {
		t.Fatalf("missing string cell:\n%s", out)
	}
	if tab.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tab.NumRows())
	}
	if tab.Title() != "demo" {
		t.Fatalf("Title = %q", tab.Title())
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("t", "a", "b")
	tab.AddRow("x,y", `say "hi"`)
	csv := tab.CSV()
	want := "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestHistogramBinningAndClamp(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.AddAll([]float64{-1, 0, 1.9, 2, 9.9, 10, 100})
	if h.Total() != 7 {
		t.Fatalf("total = %d", h.Total())
	}
	// Bin 0 covers [0,2): values -1 (clamped), 0, 1.9.
	if h.Count(0) != 3 {
		t.Fatalf("bin0 = %d", h.Count(0))
	}
	// Bin 4 covers [8,10): values 9.9, 10 (clamped), 100 (clamped).
	if h.Count(4) != 3 {
		t.Fatalf("bin4 = %d", h.Count(4))
	}
	if h.Count(1) != 1 { // the value 2
		t.Fatalf("bin1 = %d", h.Count(1))
	}
	if h.Bins() != 5 {
		t.Fatalf("bins = %d", h.Bins())
	}
}

func TestHistogramTailFraction(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.AddAll([]float64{1, 2, 3, 8, 9})
	if tf := h.TailFraction(8); !almost(tf, 0.4, 1e-12) {
		t.Fatalf("tail(8) = %v", tf)
	}
	if tf := h.TailFraction(0); tf != 1 {
		t.Fatalf("tail(0) = %v", tf)
	}
	if tf := NewHistogram(0, 1, 2).TailFraction(0); tf != 0 {
		t.Fatalf("empty tail = %v", tf)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(0, 4, 2)
	h.AddAll([]float64{1, 1, 3})
	out := h.String()
	if !strings.Contains(out, "#") {
		t.Fatalf("no bars rendered:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 2 {
		t.Fatalf("want 2 lines:\n%s", out)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	out := s.String()
	if !strings.Contains(out, "n=3") || !strings.Contains(out, "mean=2.000") {
		t.Fatalf("summary string: %s", out)
	}
}

func TestTableMarkdown(t *testing.T) {
	tab := NewTable("t", "a", "b")
	tab.AddRow(1, "x|y")
	md := tab.Markdown()
	want := "| a | b |\n|---|---|\n| 1 | x\\|y |\n"
	if md != want {
		t.Fatalf("Markdown = %q, want %q", md, want)
	}
}
