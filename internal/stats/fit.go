package stats

import "math"

// LinearFit holds the result of an ordinary least-squares line fit
// y = Slope*x + Intercept.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64 // coefficient of determination
}

// FitLinear fits y = a*x + b by least squares. It panics if the inputs have
// different lengths or fewer than two points, or if all x are identical.
func FitLinear(x, y []float64) LinearFit {
	if len(x) != len(y) {
		panic("stats: FitLinear with mismatched lengths")
	}
	n := len(x)
	if n < 2 {
		panic("stats: FitLinear needs at least two points")
	}
	mx, my := Mean(x), Mean(y)
	sxx, sxy, syy := 0.0, 0.0, 0.0
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		panic("stats: FitLinear with constant x")
	}
	slope := sxy / sxx
	fit := LinearFit{Slope: slope, Intercept: my - slope*mx}
	if syy == 0 {
		fit.R2 = 1 // y constant and perfectly explained by the flat line
	} else {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	}
	return fit
}

// FitLogX fits y = a*log2(x) + b. Useful for checking "grows like log n"
// shapes. It panics if any x is <= 0.
func FitLogX(x, y []float64) LinearFit {
	lx := make([]float64, len(x))
	for i, v := range x {
		if v <= 0 {
			panic("stats: FitLogX with non-positive x")
		}
		lx[i] = math.Log2(v)
	}
	return FitLinear(lx, y)
}

// FitPower fits y = c * x^p by regressing log y on log x, returning
// (p, c, r2 of the log-log fit). Points with non-positive x or y are
// rejected with a panic, since they cannot appear on a power law.
func FitPower(x, y []float64) (p, c, r2 float64) {
	lx := make([]float64, len(x))
	ly := make([]float64, len(y))
	for i := range x {
		if x[i] <= 0 || y[i] <= 0 {
			panic("stats: FitPower with non-positive data")
		}
		lx[i] = math.Log(x[i])
		ly[i] = math.Log(y[i])
	}
	fit := FitLinear(lx, ly)
	return fit.Slope, math.Exp(fit.Intercept), fit.R2
}

// GrowthRatio returns y[last]/y[first]; a cheap scale-free check of how much
// a series grows over a sweep. Returns +Inf when y[first] == 0 and
// y[last] > 0, and 1 when both are 0.
func GrowthRatio(y []float64) float64 {
	if len(y) == 0 {
		return 1
	}
	first, last := y[0], y[len(y)-1]
	switch {
	case first == 0 && last == 0:
		return 1
	case first == 0:
		return math.Inf(1)
	default:
		return last / first
	}
}
