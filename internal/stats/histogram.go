package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram accumulates values into equal-width bins over [lo, hi).
// Values outside the range are clamped into the first/last bin so that tail
// mass remains visible. The zero value is unusable; construct with
// NewHistogram.
type Histogram struct {
	lo, hi float64
	counts []int
	total  int
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi).
// It panics if bins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: NewHistogram with bins <= 0")
	}
	if hi <= lo {
		panic("stats: NewHistogram with hi <= lo")
	}
	return &Histogram{lo: lo, hi: hi, counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	bins := len(h.counts)
	idx := int(math.Floor((x - h.lo) / (h.hi - h.lo) * float64(bins)))
	if idx < 0 {
		idx = 0
	}
	if idx >= bins {
		idx = bins - 1
	}
	h.counts[idx]++
	h.total++
}

// AddAll records each observation in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int { return h.total }

// Count returns the count in bin i.
func (h *Histogram) Count(i int) int { return h.counts[i] }

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.counts) }

// TailFraction returns the fraction of observations at or above x.
func (h *Histogram) TailFraction(x float64) float64 {
	if h.total == 0 {
		return 0
	}
	bins := len(h.counts)
	start := int(math.Ceil((x - h.lo) / (h.hi - h.lo) * float64(bins)))
	if start < 0 {
		start = 0
	}
	count := 0
	for i := start; i < bins; i++ {
		count += h.counts[i]
	}
	return float64(count) / float64(h.total)
}

// String renders an ASCII bar chart, one line per bin, scaled to maxWidth
// 50 characters.
func (h *Histogram) String() string {
	const maxWidth = 50
	peak := 0
	for _, c := range h.counts {
		if c > peak {
			peak = c
		}
	}
	var b strings.Builder
	width := (h.hi - h.lo) / float64(len(h.counts))
	for i, c := range h.counts {
		bar := 0
		if peak > 0 {
			bar = c * maxWidth / peak
		}
		fmt.Fprintf(&b, "[%8.2f, %8.2f) %6d %s\n",
			h.lo+float64(i)*width, h.lo+float64(i+1)*width, c,
			strings.Repeat("#", bar))
	}
	return b.String()
}
