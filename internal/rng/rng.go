// Package rng provides a deterministic, splittable pseudo-random number
// generator for reproducible simulations.
//
// The generator is xoshiro256** seeded through SplitMix64. Every simulation
// entity (engine, player, adversary) derives its own independent stream from
// a single master seed via Split, so a run is fully determined by one uint64
// seed regardless of scheduling or the order in which streams are consumed.
package rng

import "math/bits"

// Source is a deterministic random number stream. It is not safe for
// concurrent use; derive one Source per goroutine with Split.
type Source struct {
	seed  uint64 // the seed this stream was created from (for Split)
	state [4]uint64
}

const goldenGamma = 0x9e3779b97f4a7c15

// splitMix64 advances a SplitMix64 state and returns the next output.
func splitMix64(x *uint64) uint64 {
	*x += goldenGamma
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded deterministically from seed.
func New(seed uint64) *Source {
	s := &Source{seed: seed}
	x := seed
	for i := range s.state {
		s.state[i] = splitMix64(&x)
	}
	// xoshiro256** must not start at the all-zero state; SplitMix64 makes
	// that impossible for any seed, but guard anyway.
	if s.state[0]|s.state[1]|s.state[2]|s.state[3] == 0 {
		s.state[3] = goldenGamma
	}
	return s
}

// Split derives an independent child stream identified by label. The child
// depends only on (parent seed, label), never on how much of the parent
// stream has been consumed, so stream identities are stable across
// refactorings of draw order.
func (s *Source) Split(label uint64) *Source {
	x := s.seed
	a := splitMix64(&x)
	x = a ^ (label * goldenGamma)
	b := splitMix64(&x)
	return New(b ^ bits.RotateLeft64(label, 32))
}

// Seed returns the seed this stream was created from.
func (s *Source) Seed() uint64 { return s.seed }

// Uint64 returns the next 64 uniformly random bits.
func (s *Source) Uint64() uint64 {
	st := &s.state
	result := bits.RotateLeft64(st[1]*5, 7) * 9
	t := st[1] << 17
	st[2] ^= st[0]
	st[3] ^= st[1]
	st[1] ^= st[2]
	st[0] ^= st[3]
	st[2] ^= t
	st[3] = bits.RotateLeft64(st[3], 45)
	return result
}

// Uint64n returns a uniformly random value in [0, n). It panics if n == 0.
// Uses Lemire's multiply-shift rejection method, which is unbiased.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	x := s.Uint64()
	hi, lo := bits.Mul64(x, n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			x = s.Uint64()
			hi, lo = bits.Mul64(x, n)
		}
	}
	return hi
}

// Intn returns a uniformly random int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(s.Uint64n(uint64(n)))
}

// Float64 returns a uniformly random float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) * 0x1p-53
}

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Perm returns a uniformly random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function, via the Fisher-Yates algorithm.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Choice returns a uniformly random element of xs. It panics if xs is empty.
func (s *Source) Choice(xs []int) int {
	return xs[s.Intn(len(xs))]
}

// Sample returns k distinct elements drawn uniformly from [0, n) in random
// order. It panics if k > n or k < 0.
func (s *Source) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Sample with k out of range")
	}
	// Floyd's algorithm: O(k) expected work, O(k) memory.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := s.Intn(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	s.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
