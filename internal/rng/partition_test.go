package rng

import "testing"

// drain returns the next n outputs of a stream.
func drain(s *Source, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = s.Uint64()
	}
	return out
}

// TestSplitStreamIndependence is the property the Partition refactor rests
// on: consuming (any amount of) one split stream must not change another
// split stream's sequence, and the split itself must not depend on how far
// the parent has advanced.
func TestSplitStreamIndependence(t *testing.T) {
	const seed = 12345

	// Reference sequences: split both streams, touch nothing else.
	ref1 := drain(New(seed).Split(1), 32)
	ref2 := drain(New(seed).Split(2), 32)

	// Interleaved draws on stream 1 — including splitting stream 1 before
	// stream 2 and drawing heavily from it first — must leave stream 2's
	// sequence untouched, and vice versa.
	parent := New(seed)
	s1 := parent.Split(1)
	drain(s1, 1000) // burn stream 1
	s2 := parent.Split(2)
	if got := drain(s2, 32); !equalU64(got, ref2) {
		t.Fatalf("stream 2 perturbed by draws on stream 1:\n got %v\nwant %v", got[:4], ref2[:4])
	}

	parent = New(seed)
	s2 = parent.Split(2)
	drain(s2, 1000) // burn stream 2 first this time
	s1 = parent.Split(1)
	if got := drain(s1, 32); !equalU64(got, ref1) {
		t.Fatalf("stream 1 perturbed by draws on stream 2:\n got %v\nwant %v", got[:4], ref1[:4])
	}

	// Advancing the parent between splits must not move the children:
	// Split depends only on (parent seed, label).
	parent = New(seed)
	drain(parent, 500)
	if got := drain(parent.Split(1), 32); !equalU64(got, ref1) {
		t.Fatalf("child stream depends on parent draw position")
	}
}

// TestSplitDistinctLabels checks that nearby labels give streams that do not
// collide (a weak sanity check, not a statistical test).
func TestSplitDistinctLabels(t *testing.T) {
	parent := New(7)
	seen := make(map[uint64]uint64)
	labels := []uint64{0, 1, 2, 3, 4, 9999, StreamArrival, StreamDeparture, StreamPopularity, StreamCampaign, StreamWorld}
	for _, label := range labels {
		first := parent.Split(label).Uint64()
		if prev, dup := seen[first]; dup {
			t.Fatalf("labels %d and %d produced identical first outputs", prev, label)
		}
		seen[first] = label
	}
}

// TestPartitionMatchesSplit pins the compat contract: Partition.Stream(key)
// is byte-for-byte the stream New(seed).Split(key) — the derivation every
// existing golden test was recorded against.
func TestPartitionMatchesSplit(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 0xdeadbeef} {
		p := NewPartition(seed)
		for _, key := range []uint64{StreamProtocol, StreamAdversary, StreamMembership, StreamErrors, StreamTokens, StreamArrival, 77} {
			want := drain(New(seed).Split(key), 16)
			got := drain(p.Stream(key), 16)
			if !equalU64(got, want) {
				t.Fatalf("seed %d key %d: Partition.Stream != Split", seed, key)
			}
		}
		if p.Seed() != seed {
			t.Fatalf("Seed() = %d, want %d", p.Seed(), seed)
		}
	}
}

// TestPartitionStreamIsStateful checks that re-fetching a stream resumes it
// rather than restarting it, and that Player aliases Stream(uint64(id)).
func TestPartitionStreamIsStateful(t *testing.T) {
	p := NewPartition(99)
	ref := drain(New(99).Split(5), 8)

	first := drain(p.Stream(5), 4)
	rest := drain(p.Stream(5), 4)
	if !equalU64(append(first, rest...), ref) {
		t.Fatalf("re-fetched stream restarted instead of resuming")
	}

	if p.Player(5) != p.Stream(5) {
		t.Fatalf("Player(5) is not the same stream as Stream(5)")
	}
}

// TestPartitionScenarioKeysClearPlayerRange documents that the scenario
// subsystem keys cannot collide with per-player stream labels (player ids
// are ints well below 2^40).
func TestPartitionScenarioKeysClearPlayerRange(t *testing.T) {
	for _, key := range []uint64{StreamArrival, StreamDeparture, StreamPopularity, StreamCampaign, StreamWorld} {
		if key <= 1<<32 {
			t.Fatalf("scenario stream key %d inside the player-id range", key)
		}
	}
}

func TestPoisson(t *testing.T) {
	s := New(11)
	if got := s.Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}

	// Empirical mean within 5%% of the parameter for a small and a large
	// mean (the large mean exercises the normal-approximation branch).
	for _, mean := range []float64{3.5, 200} {
		const n = 20000
		sum := 0
		for i := 0; i < n; i++ {
			v := s.Poisson(mean)
			if v < 0 {
				t.Fatalf("Poisson(%g) returned negative %d", mean, v)
			}
			sum += v
		}
		got := float64(sum) / n
		if got < 0.95*mean || got > 1.05*mean {
			t.Fatalf("Poisson(%g) empirical mean %g outside 5%%", mean, got)
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatalf("Poisson(-1) did not panic")
		}
	}()
	s.Poisson(-1)
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
