package rng

// Stream keys name the per-subsystem random streams of a Partition. The
// numeric values are part of the determinism contract: a stream's draw
// sequence is a pure function of (seed, key), so renumbering a key silently
// re-randomizes every run that consumed it. Keys 1-4 are the compat keys —
// the exact labels the simulation engine has split off its master stream
// since the first release — and are pinned byte-identical by the golden
// end-to-end tests. StreamTokens is the historical label the distributed
// runner used for credential generation. The scenario-era keys live far
// above 2^32 so they can never collide with a per-player stream label
// (player ids double as Split labels in the dist and swarm drivers).
const (
	// StreamProtocol seeds the honest protocol's private stream.
	StreamProtocol uint64 = 1
	// StreamAdversary seeds the Byzantine strategy's stream.
	StreamAdversary uint64 = 2
	// StreamMembership seeds honest-set sampling.
	StreamMembership uint64 = 3
	// StreamErrors seeds the §4.1 erroneous-vote coin flips.
	StreamErrors uint64 = 4
	// StreamTokens seeds cluster credential generation (dist).
	StreamTokens uint64 = 9999

	// StreamArrival seeds the scenario player-arrival process.
	StreamArrival uint64 = 1<<40 + 1
	// StreamDeparture seeds the scenario player-departure process.
	StreamDeparture uint64 = 1<<40 + 2
	// StreamPopularity seeds the scenario popularity-drift process.
	StreamPopularity uint64 = 1<<40 + 3
	// StreamCampaign seeds the scenario adversary campaign (each phase
	// splits its own child off this stream).
	StreamCampaign uint64 = 1<<40 + 4
	// StreamWorld seeds scenario universe construction.
	StreamWorld uint64 = 1<<40 + 5
)

// Partition hands out independent per-subsystem random streams derived from
// one master seed. Every stream is identified by a stable key: because
// Split depends only on (seed, key) — never on how much any other stream
// has consumed — adding a subsystem, reordering initialization, or running
// subsystems in parallel cannot perturb another subsystem's draw sequence.
// This is the property the scenario engine's replayability rests on: a
// workload generator can appear, disappear, or draw more without moving a
// single byte anywhere else.
//
// Stream returns the same *Source on repeated calls with the same key, so
// a subsystem that re-fetches its stream continues where it left off. A
// Partition (and the Sources it returns) is not safe for concurrent use;
// derive one Partition per goroutine from the same seed, or hand each
// goroutine a disjoint set of keys.
type Partition struct {
	root    *Source
	streams map[uint64]*Source
}

// NewPartition returns a Partition over the given master seed.
func NewPartition(seed uint64) *Partition {
	return &Partition{root: New(seed)}
}

// Seed returns the master seed this partition derives every stream from.
func (p *Partition) Seed() uint64 { return p.root.Seed() }

// Stream returns the stream for key, creating it on first use. Repeated
// calls return the same stream, advanced by however much it has consumed.
func (p *Partition) Stream(key uint64) *Source {
	if s, ok := p.streams[key]; ok {
		return s
	}
	if p.streams == nil {
		p.streams = make(map[uint64]*Source)
	}
	s := p.root.Split(key)
	p.streams[key] = s
	return s
}

// Player returns the per-player stream for the given player id — the same
// derivation (label = player id) the distributed and swarm drivers have
// always used, exposed through the partition so player streams and
// subsystem streams share one seed without sharing state.
func (p *Partition) Player(player int) *Source {
	return p.Stream(uint64(player))
}
