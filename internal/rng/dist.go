package rng

import "math"

// ExpFloat64 returns an exponentially distributed float64 with the given
// rate (mean 1/rate). It panics if rate <= 0.
func (s *Source) ExpFloat64(rate float64) float64 {
	if rate <= 0 {
		panic("rng: ExpFloat64 with rate <= 0")
	}
	// 1-Float64() is in (0, 1], so the log is finite.
	return -math.Log(1-s.Float64()) / rate
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the Marsaglia polar method.
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q == 0 || q >= 1 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(q)/q)
	}
}

// Pareto returns a Pareto(shape)-distributed float64 with minimum xm. The
// mean is finite only for shape > 1. It panics if xm <= 0 or shape <= 0.
func (s *Source) Pareto(xm, shape float64) float64 {
	if xm <= 0 || shape <= 0 {
		panic("rng: Pareto with non-positive parameter")
	}
	return xm / math.Pow(1-s.Float64(), 1/shape)
}

// Geometric returns the number of failures before the first success in
// independent Bernoulli(p) trials (support {0, 1, 2, ...}). It panics if
// p <= 0 or p > 1.
func (s *Source) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric with p out of (0, 1]")
	}
	if p == 1 {
		return 0
	}
	u := 1 - s.Float64() // in (0, 1]
	return int(math.Floor(math.Log(u) / math.Log(1-p)))
}

// Binomial returns a Binomial(n, p)-distributed int. For small n it sums
// Bernoulli trials; for large n it uses the BG (geometric skip) method when
// p is small and trial summation otherwise. Exact in distribution either way.
func (s *Source) Binomial(n int, p float64) int {
	if n < 0 {
		panic("rng: Binomial with n < 0")
	}
	if p <= 0 || n == 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if p > 0.5 {
		return n - s.Binomial(n, 1-p)
	}
	// Geometric skip: expected work O(np), good for the sparse draws the
	// simulator makes (p is typically 1/m or a vote probability).
	if p < 0.125 {
		count := 0
		i := s.Geometric(p)
		for i < n {
			count++
			i += 1 + s.Geometric(p)
		}
		return count
	}
	count := 0
	for i := 0; i < n; i++ {
		if s.Float64() < p {
			count++
		}
	}
	return count
}

// Poisson returns a Poisson(mean)-distributed int. For small means it uses
// Knuth's product-of-uniforms method; for large means it falls back to a
// normal approximation with continuity correction, which keeps the draw O(1)
// instead of O(mean). It panics if mean < 0; mean == 0 returns 0.
func (s *Source) Poisson(mean float64) int {
	if mean < 0 || math.IsNaN(mean) {
		panic("rng: Poisson with mean < 0")
	}
	if mean == 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= s.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	// Normal approximation: Poisson(mean) ≈ N(mean, mean) for large mean.
	// Arrival processes only care about aggregate counts at this scale.
	v := math.Round(mean + math.Sqrt(mean)*s.NormFloat64())
	if v < 0 {
		return 0
	}
	return int(v)
}

// Zipf draws from a Zipf distribution over {0, ..., n-1} with exponent
// alpha > 0: P(k) proportional to 1/(k+1)^alpha. The cumulative weights are
// computed lazily per call; callers that draw many values should use
// NewZipf instead.
func (s *Source) Zipf(n int, alpha float64) int {
	z := NewZipf(n, alpha)
	return z.Draw(s)
}

// Zipfian is a precomputed Zipf sampler over {0, ..., n-1}.
type Zipfian struct {
	cum []float64 // cumulative probabilities, cum[n-1] == 1
}

// NewZipf precomputes a Zipf sampler with exponent alpha over n ranks.
// It panics if n <= 0 or alpha <= 0.
func NewZipf(n int, alpha float64) *Zipfian {
	if n <= 0 || alpha <= 0 {
		panic("rng: NewZipf with non-positive parameter")
	}
	cum := make([]float64, n)
	total := 0.0
	for k := 0; k < n; k++ {
		total += 1 / math.Pow(float64(k+1), alpha)
		cum[k] = total
	}
	for k := range cum {
		cum[k] /= total
	}
	cum[n-1] = 1
	return &Zipfian{cum: cum}
}

// Draw samples a rank from the precomputed distribution.
func (z *Zipfian) Draw(s *Source) int {
	u := s.Float64()
	// Binary search for the first cum[k] > u.
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] > u {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
