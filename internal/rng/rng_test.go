package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: streams diverged: %d != %d", i, got, want)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws out of 100", same)
	}
}

func TestSplitIndependentOfConsumption(t *testing.T) {
	a := New(7)
	b := New(7)
	for i := 0; i < 57; i++ {
		a.Uint64() // consume some of a only
	}
	ca := a.Split(3)
	cb := b.Split(3)
	for i := 0; i < 100; i++ {
		if ca.Uint64() != cb.Uint64() {
			t.Fatal("Split child depends on parent consumption")
		}
	}
}

func TestSplitLabelsDiffer(t *testing.T) {
	s := New(7)
	a := s.Split(0)
	b := s.Split(1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split labels 0 and 1 produced %d identical draws", same)
	}
}

func TestUint64nBounds(t *testing.T) {
	s := New(99)
	for _, n := range []uint64{1, 2, 3, 7, 100, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := s.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnUniformChiSquare(t *testing.T) {
	s := New(2024)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	expected := float64(draws) / n
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 9 degrees of freedom; p=0.001 critical value is 27.88.
	if chi2 > 27.88 {
		t.Fatalf("chi-square %.2f exceeds 27.88; counts %v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	s := New(5)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliMean(t *testing.T) {
	s := New(6)
	const draws = 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	mean := float64(hits) / draws
	if math.Abs(mean-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) empirical mean %.4f", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(11)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := s.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	s := New(12)
	const n, draws = 5, 50000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Perm(n)[0]]++
	}
	expected := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-expected) > 5*math.Sqrt(expected) {
			t.Fatalf("Perm first element %d appeared %d times, expected ~%.0f", v, c, expected)
		}
	}
}

func TestSampleDistinct(t *testing.T) {
	s := New(13)
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%100) + 1
		k := int(kRaw) % (n + 1)
		out := s.Sample(n, k)
		if len(out) != k {
			return false
		}
		seen := make(map[int]struct{}, k)
		for _, v := range out {
			if v < 0 || v >= n {
				return false
			}
			if _, dup := seen[v]; dup {
				return false
			}
			seen[v] = struct{}{}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleFullRange(t *testing.T) {
	s := New(14)
	out := s.Sample(10, 10)
	seen := make([]bool, 10)
	for _, v := range out {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("Sample(10,10) missing %d", i)
		}
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	s := New(15)
	xs := []int{1, 2, 2, 3, 5, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset sum: %d != %d", got, sum)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(16)
	const draws = 200000
	total := 0.0
	for i := 0; i < draws; i++ {
		v := s.ExpFloat64(2)
		if v < 0 {
			t.Fatalf("ExpFloat64 returned negative %v", v)
		}
		total += v
	}
	mean := total / draws
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("ExpFloat64(2) empirical mean %.4f, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(17)
	const draws = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < draws; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %.4f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %.4f, want ~1", variance)
	}
}

func TestParetoMinimum(t *testing.T) {
	s := New(18)
	for i := 0; i < 10000; i++ {
		if v := s.Pareto(2, 1.5); v < 2 {
			t.Fatalf("Pareto(2, 1.5) below minimum: %v", v)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(19)
	const p, draws = 0.25, 200000
	total := 0
	for i := 0; i < draws; i++ {
		total += s.Geometric(p)
	}
	mean := float64(total) / draws
	want := (1 - p) / p // mean of failures-before-success
	if math.Abs(mean-want) > 0.05 {
		t.Fatalf("Geometric(%.2f) empirical mean %.4f, want ~%.4f", p, mean, want)
	}
}

func TestGeometricOne(t *testing.T) {
	s := New(20)
	for i := 0; i < 100; i++ {
		if v := s.Geometric(1); v != 0 {
			t.Fatalf("Geometric(1) = %d, want 0", v)
		}
	}
}

func TestBinomialMatchesMean(t *testing.T) {
	s := New(21)
	cases := []struct {
		n int
		p float64
	}{
		{100, 0.01},  // sparse path
		{1000, 0.02}, // sparse path
		{50, 0.4},    // dense path
		{64, 0.9},    // complement path
	}
	for _, tc := range cases {
		const draws = 20000
		total := 0
		for i := 0; i < draws; i++ {
			v := s.Binomial(tc.n, tc.p)
			if v < 0 || v > tc.n {
				t.Fatalf("Binomial(%d,%v) out of range: %d", tc.n, tc.p, v)
			}
			total += v
		}
		mean := float64(total) / draws
		want := float64(tc.n) * tc.p
		sd := math.Sqrt(float64(tc.n) * tc.p * (1 - tc.p))
		if math.Abs(mean-want) > 5*sd/math.Sqrt(draws)+0.05 {
			t.Fatalf("Binomial(%d,%v) empirical mean %.3f, want ~%.3f", tc.n, tc.p, mean, want)
		}
	}
}

func TestBinomialEdges(t *testing.T) {
	s := New(22)
	if v := s.Binomial(0, 0.5); v != 0 {
		t.Fatalf("Binomial(0, .5) = %d", v)
	}
	if v := s.Binomial(10, 0); v != 0 {
		t.Fatalf("Binomial(10, 0) = %d", v)
	}
	if v := s.Binomial(10, 1); v != 10 {
		t.Fatalf("Binomial(10, 1) = %d", v)
	}
}

func TestZipfRangeAndMonotone(t *testing.T) {
	s := New(23)
	z := NewZipf(100, 1.2)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		k := z.Draw(s)
		if k < 0 || k >= 100 {
			t.Fatalf("Zipf out of range: %d", k)
		}
		counts[k]++
	}
	// Rank 0 should dominate rank 10 which should dominate rank 90.
	if !(counts[0] > counts[10] && counts[10] > counts[90]) {
		t.Fatalf("Zipf counts not decreasing: c0=%d c10=%d c90=%d",
			counts[0], counts[10], counts[90])
	}
}

func TestChoice(t *testing.T) {
	s := New(24)
	xs := []int{3, 1, 4}
	for i := 0; i < 100; i++ {
		v := s.Choice(xs)
		if v != 3 && v != 1 && v != 4 {
			t.Fatalf("Choice returned %d not in slice", v)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Intn(1000)
	}
}
