package core

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// AlphaGuess is the §5.1 wrapper for unknown α: it runs DISTILL^HP in
// phases i = 0, 1, 2, ..., where phase i assumes α = 2^-i and lasts exactly
// 2^i · k3 · log2(n) · (1/(βn) + 1) rounds. Once 2^-i drops below the true
// honest fraction, that phase succeeds with high probability; earlier
// phases leave only harmless after-effects (some satisfied players, some
// spent dishonest votes). Total time is at most twice the last phase, i.e.
// O(log n/(α₀βn) + log n/α₀) for the true α₀.
type AlphaGuess struct {
	params Params
	k3     float64

	setup    sim.Setup
	inner    *Distill
	phase    int // current i
	phaseEnd int // first round of the next phase
	maxPhase int
}

var _ sim.Protocol = (*AlphaGuess)(nil)

// NewAlphaGuess returns the halving wrapper. params parameterizes the inner
// DISTILL^HP; k3 scales the per-phase round budget (default 4).
func NewAlphaGuess(params Params, k3 float64) *AlphaGuess {
	if k3 <= 0 {
		k3 = 4
	}
	return &AlphaGuess{params: params, k3: k3}
}

// Name implements sim.Protocol.
func (g *AlphaGuess) Name() string { return "distill-alphaguess" }

// PrescribedRounds implements sim.Protocol.
func (g *AlphaGuess) PrescribedRounds() int { return 0 }

// Phase returns the current halving phase index i (assumed α = 2^-i).
func (g *AlphaGuess) Phase() int { return g.phase }

// Init implements sim.Protocol. The assumed α in setup is ignored — that is
// the point of the wrapper — but β must still be provided.
func (g *AlphaGuess) Init(setup sim.Setup) error {
	if setup.Beta <= 0 || setup.Beta > 1 {
		return fmt.Errorf("core: AlphaGuess needs assumed beta in (0, 1], got %v", setup.Beta)
	}
	g.setup = setup
	g.maxPhase = int(math.Ceil(math.Log2(float64(setup.N))))
	if g.maxPhase < 0 {
		g.maxPhase = 0
	}
	g.phase = -1
	g.phaseEnd = 0
	return g.startPhase(0, 0)
}

// startPhase begins halving phase i at the given round.
func (g *AlphaGuess) startPhase(i, round int) error {
	g.phase = i
	alpha := math.Pow(2, -float64(i))
	logN := math.Log2(float64(g.setup.N))
	if logN < 1 {
		logN = 1
	}
	budget := math.Pow(2, float64(i)) * g.k3 * logN *
		(1/(g.setup.Beta*float64(g.setup.N)) + 1)
	g.phaseEnd = round + int(math.Ceil(budget))

	g.inner = NewDistillHP(g.params)
	innerSetup := g.setup
	innerSetup.Alpha = alpha
	if err := g.inner.Init(innerSetup); err != nil {
		return fmt.Errorf("core: AlphaGuess phase %d: %w", i, err)
	}
	return nil
}

// Probes implements sim.Protocol.
func (g *AlphaGuess) Probes(round int, active []int, dst []sim.Probe) []sim.Probe {
	if round >= g.phaseEnd && g.phase < g.maxPhase {
		// The phase budget is spent; halve the assumed α. Errors cannot
		// occur here: the setup was validated at Init.
		if err := g.startPhase(g.phase+1, round); err != nil {
			return dst
		}
	}
	return g.inner.Probes(round, active, dst)
}
