package core

import (
	"testing"

	"repro/internal/billboard"
	"repro/internal/object"
	"repro/internal/rng"
	"repro/internal/sim"
)

// harness hand-drives a Distill protocol against a board without the
// engine, so tests can steer exactly which votes appear in which window.
type harness struct {
	t     *testing.T
	d     *Distill
	board *billboard.Board
	round int
	n     int
}

func newHarness(t *testing.T, d *Distill, n, m int, alpha, beta float64) *harness {
	t.Helper()
	board, err := billboard.New(billboard.Config{Players: n, Objects: m})
	if err != nil {
		t.Fatal(err)
	}
	u, err := object.NewUniverse(object.Config{
		Values:       goodAt(m, m-1),
		LocalTesting: true,
		Threshold:    0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Init(sim.Setup{
		N: n, Alpha: alpha, Beta: beta,
		Universe: u, Board: board, Rng: rng.New(1),
	}); err != nil {
		t.Fatal(err)
	}
	return &harness{t: t, d: d, board: board, n: n}
}

// goodAt returns m values with a single 1 at index idx.
func goodAt(m, idx int) []float64 {
	values := make([]float64, m)
	values[idx] = 1
	return values
}

// step advances one round: asks the protocol for probes (with no active
// players, so the schedule advances without posting anything), applies the
// given extra posts, and ends the round.
func (h *harness) step(posts ...billboard.Post) {
	h.t.Helper()
	h.d.Probes(h.round, nil, nil)
	for _, p := range posts {
		if err := h.board.Post(p); err != nil {
			h.t.Fatal(err)
		}
	}
	h.board.EndRound()
	h.round++
}

// stepN advances n rounds with no posts.
func (h *harness) stepN(n int) {
	for i := 0; i < n; i++ {
		h.step()
	}
}

func posVote(player, obj int) billboard.Post {
	return billboard.Post{Player: player, Object: obj, Value: 1, Positive: true}
}

func TestDistillInitValidation(t *testing.T) {
	board, err := billboard.New(billboard.Config{Players: 4, Objects: 4})
	if err != nil {
		t.Fatal(err)
	}
	u, err := object.NewUniverse(object.Config{
		Values: goodAt(4, 0), LocalTesting: true, Threshold: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := sim.Setup{N: 4, Alpha: 0.5, Beta: 0.25, Universe: u, Board: board, Rng: rng.New(1)}

	cases := []struct {
		name  string
		d     *Distill
		tweak func(*sim.Setup)
	}{
		{"alpha zero", NewDistill(Params{}), func(s *sim.Setup) { s.Alpha = 0 }},
		{"alpha above one", NewDistill(Params{}), func(s *sim.Setup) { s.Alpha = 1.5 }},
		{"beta zero", NewDistill(Params{}), func(s *sim.Setup) { s.Beta = 0 }},
		{"beta above one", NewDistill(Params{}), func(s *sim.Setup) { s.Beta = 2 }},
		{"negative k1", NewDistill(Params{K1: -1}), nil},
		{"domain out of range", NewDistill(Params{Domain: []int{9}}), nil},
		{"empty domain", NewDistill(Params{Domain: []int{}}), nil},
	}
	for _, tc := range cases {
		setup := base
		if tc.tweak != nil {
			tc.tweak(&setup)
		}
		if err := tc.d.Init(setup); err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
	}
}

func TestDistillNames(t *testing.T) {
	if NewDistill(Params{}).Name() != "distill" {
		t.Fatal("base name")
	}
	if NewDistillHP(Params{}).Name() != "distill-hp" {
		t.Fatal("hp name")
	}
	if NewNoLocalTesting(Params{}, 0).Name() != "distill-nlt" {
		t.Fatal("nlt name")
	}
	if NewAlphaGuess(Params{}, 0).Name() != "distill-alphaguess" {
		t.Fatal("alphaguess name")
	}
	if NewCostClasses(Params{}, 0).Name() != "distill-costclasses" {
		t.Fatal("costclasses name")
	}
	if NewThreePhase().Name() != "three-phase" {
		t.Fatal("threephase name")
	}
}

func TestDistillScheduleStartsInPrepare(t *testing.T) {
	d := NewDistill(Params{K1: 2, K2: 8})
	h := newHarness(t, d, 8, 16, 1, 0.5)
	st := d.DistillState()
	if st.Phase != "prepare" {
		t.Fatalf("initial phase %q", st.Phase)
	}
	if len(st.Candidates) != 16 {
		t.Fatalf("prepare candidates = %d, want all 16", len(st.Candidates))
	}
	_ = h
}

func TestDistillExploreAdviceAlternation(t *testing.T) {
	// With one active player: the explore round always yields a probe; the
	// advice round yields one only if the chosen player has a vote.
	d := NewDistill(Params{})
	n, m := 4, 8
	board, err := billboard.New(billboard.Config{Players: n, Objects: m})
	if err != nil {
		t.Fatal(err)
	}
	u, err := object.NewUniverse(object.Config{
		Values: goodAt(m, 0), LocalTesting: true, Threshold: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Init(sim.Setup{N: n, Alpha: 1, Beta: 0.5, Universe: u, Board: board, Rng: rng.New(3)}); err != nil {
		t.Fatal(err)
	}
	// Round 0 (explore): must probe.
	probes := d.Probes(0, []int{0}, nil)
	if len(probes) != 1 {
		t.Fatalf("explore round yielded %d probes", len(probes))
	}
	board.EndRound()
	// Round 1 (advice): board has no votes at all, so no probes possible.
	probes = d.Probes(1, []int{0}, nil)
	if len(probes) != 0 {
		t.Fatalf("advice round with empty board yielded %d probes", len(probes))
	}
	board.EndRound()
	// Give every player a vote for object 5; now the advice round of the
	// next invocation must always probe object 5.
	for p := 0; p < n; p++ {
		if err := board.Post(posVote(p, 5)); err != nil {
			t.Fatal(err)
		}
	}
	board.EndRound() // commits during round 2... round counting is ours here
	probes = d.Probes(2, []int{0}, nil)
	if len(probes) != 1 {
		t.Fatal("explore round must probe")
	}
	board.EndRound()
	probes = d.Probes(3, []int{0}, nil)
	if len(probes) != 1 || probes[0].Object != 5 {
		t.Fatalf("advice round should follow the unanimous vote: %+v", probes)
	}
}

func TestDistillStep12ComputesS(t *testing.T) {
	// k1=1, alpha=1, beta=1/m, n=4, m=4: reps11 = ceil(1/(1·(1/4)·4)) = 1
	// invocation = 2 rounds. Plant votes for objects 1 and 3 during step
	// 1.1; S must become {1, 3}.
	d := NewDistill(Params{K1: 1, K2: 8})
	h := newHarness(t, d, 4, 4, 1, 0.25)
	h.step(posVote(0, 1)) // round 0 explore
	h.step(posVote(1, 3)) // round 1 advice; invocation complete
	// Next Probes call transitions to refine with S = {1, 3}.
	h.d.Probes(h.round, nil, nil)
	st := d.DistillState()
	if st.Phase != "refine" {
		t.Fatalf("phase = %q, want refine", st.Phase)
	}
	if len(st.Candidates) != 2 || st.Candidates[0] != 1 || st.Candidates[1] != 3 {
		t.Fatalf("S = %v, want [1 3]", st.Candidates)
	}
	if st.VotesNeeded != 2 { // ceil(k2/4) = 2
		t.Fatalf("refine VotesNeeded = %d, want 2", st.VotesNeeded)
	}
}

func TestDistillEmptySFallsBackToDomain(t *testing.T) {
	d := NewDistill(Params{K1: 1, K2: 8})
	h := newHarness(t, d, 4, 4, 1, 0.25)
	h.stepN(2) // step 1.1 with no votes at all
	h.d.Probes(h.round, nil, nil)
	st := d.DistillState()
	if st.Phase != "refine" {
		t.Fatalf("phase = %q", st.Phase)
	}
	if len(st.Candidates) != 4 {
		t.Fatalf("fallback S = %v, want the whole domain", st.Candidates)
	}
}

func TestDistillC0ThresholdAndIteration(t *testing.T) {
	// n=8, alpha=1, k2=8: refine takes ceil(8/1)=8 invocations (16 rounds),
	// C0 threshold is ceil(8/4)=2 votes within the refine window.
	d := NewDistill(Params{K1: 1, K2: 8})
	h := newHarness(t, d, 8, 8, 1, 0.125)
	h.stepN(2) // step 1.1 (1 invocation)

	// Refine window: objects 2 gets 3 votes, 5 gets 2, 6 gets 1.
	h.step(posVote(0, 2), posVote(1, 2), posVote(2, 2))
	h.step(posVote(3, 5), posVote(4, 5))
	h.step(posVote(5, 6))
	h.stepN(13) // finish the 16-round refine step
	h.d.Probes(h.round, nil, nil)
	st := d.DistillState()
	if st.Phase != "distill" {
		t.Fatalf("phase = %q, want distill", st.Phase)
	}
	if len(st.Candidates) != 2 || st.Candidates[0] != 2 || st.Candidates[1] != 5 {
		t.Fatalf("C0 = %v, want [2 5]", st.Candidates)
	}
	// Step 2.2 threshold: > n/(4·c_t) = 8/8 = 1, so VotesNeeded = 2.
	if st.VotesNeeded != 2 {
		t.Fatalf("distill VotesNeeded = %d, want 2", st.VotesNeeded)
	}

	// Iteration window = ceil(1/alpha) = 1 invocation = 2 rounds. Object 2
	// gets 2 fresh votes (> 1); object 5 gets 1 (not > 1) and drops.
	h.step(posVote(6, 2), posVote(7, 2))
	h.step(posVote(6, 5)) // player 6 already voted; board ignores it (cap 1)
	h.d.Probes(h.round, nil, nil)
	st = d.DistillState()
	if st.Phase != "distill" {
		t.Fatalf("phase = %q", st.Phase)
	}
	if len(st.Candidates) != 1 || st.Candidates[0] != 2 {
		t.Fatalf("C1 = %v, want [2]", st.Candidates)
	}
}

func TestDistillRestartsAttemptWhenCandidatesEmpty(t *testing.T) {
	d := NewDistill(Params{K1: 1, K2: 8})
	h := newHarness(t, d, 8, 8, 1, 0.125)
	h.stepN(2)  // step 1.1, no votes
	h.stepN(16) // refine window, no votes -> C0 empty
	h.d.Probes(h.round, nil, nil)
	st := d.DistillState()
	if st.Phase != "prepare" {
		t.Fatalf("phase = %q, want prepare (fresh ATTEMPT)", st.Phase)
	}
	if d.Attempts() != 2 {
		t.Fatalf("attempts = %d, want 2", d.Attempts())
	}
}

func TestDistillIterationCountsRecorded(t *testing.T) {
	d := NewDistill(Params{K1: 1, K2: 4})
	h := newHarness(t, d, 4, 4, 1, 0.25)
	h.stepN(2) // step 1.1
	// Refine window: ceil(4/1) = 4 invocations = 8 rounds; threshold
	// ceil(4/4)=1 vote. Give object 0 one vote.
	h.step(posVote(0, 0))
	h.stepN(7)
	h.d.Probes(h.round, nil, nil)
	if st := d.DistillState(); st.Phase != "distill" {
		t.Fatalf("phase = %q", st.Phase)
	}
	// Iteration passes nothing: candidates empty -> attempt restarts with
	// one recorded iteration.
	h.stepN(2)
	h.d.Probes(h.round, nil, nil)
	// The completed attempt ran 1 iteration; the fresh attempt now in
	// progress contributes a trailing 0.
	counts := d.IterationCounts()
	if len(counts) != 2 || counts[0] != 1 || counts[1] != 0 {
		t.Fatalf("iteration counts = %v, want [1 0]", counts)
	}
}

func TestDistillDomainRestriction(t *testing.T) {
	// Domain = {0, 1, 2}; votes for object 5 (outside) must never surface
	// in candidate sets, and advice probes must skip out-of-domain votes.
	d := NewDistill(Params{K1: 1, K2: 4, Domain: []int{0, 1, 2}})
	n, m := 4, 8
	board, err := billboard.New(billboard.Config{Players: n, Objects: m})
	if err != nil {
		t.Fatal(err)
	}
	u, err := object.NewUniverse(object.Config{
		Values: goodAt(m, 0), LocalTesting: true, Threshold: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Init(sim.Setup{N: n, Alpha: 1, Beta: 0.25, Universe: u, Board: board, Rng: rng.New(5)}); err != nil {
		t.Fatal(err)
	}
	// All players vote object 5, outside the domain.
	for p := 0; p < n; p++ {
		if err := board.Post(posVote(p, 5)); err != nil {
			t.Fatal(err)
		}
	}
	board.EndRound()

	// Explore probes stay inside the domain.
	probes := d.Probes(1, []int{0, 1}, nil)
	for _, pr := range probes {
		if pr.Object > 2 {
			t.Fatalf("explore probe outside domain: %d", pr.Object)
		}
	}
	board.EndRound()
	// Advice round: every vote is out-of-domain, so no probes.
	probes = d.Probes(2, []int{0, 1}, nil)
	if len(probes) != 0 {
		t.Fatalf("advice followed out-of-domain vote: %+v", probes)
	}
	board.EndRound()
	// And S must be empty -> fallback to domain, never object 5.
	d.Probes(3, nil, nil)
	d.Probes(4, nil, nil) // ensure transition happened (invocation ended)
	st := d.DistillState()
	for _, obj := range st.Candidates {
		if obj > 2 {
			t.Fatalf("candidate outside domain: %v", st.Candidates)
		}
	}
}

func TestDistillHPScalesConstants(t *testing.T) {
	// n=256: log2 n = 8, so k2 = 4·8 = 32 and the refine threshold becomes
	// ceil(32/4) = 8.
	d := NewDistillHP(Params{})
	h := newHarness(t, d, 256, 8, 1, 0.125)
	h.stepN(2) // step 1.1 = ceil(1·8/(1·(1/8)·256)) = 1 invocation? k1=1·8=8 -> ceil(8/32)=1
	h.d.Probes(h.round, nil, nil)
	st := d.DistillState()
	if st.Phase != "refine" {
		t.Fatalf("phase = %q", st.Phase)
	}
	if st.VotesNeeded != 8 {
		t.Fatalf("HP refine VotesNeeded = %d, want 8 (k2=32)", st.VotesNeeded)
	}
}

func TestDistillEndToEndWithEngine(t *testing.T) {
	for _, alpha := range []float64{1, 0.75, 0.5, 0.25} {
		results, err := sim.Replicator{
			Reps:     8,
			BaseSeed: 17,
			Build: func(seed uint64) (*sim.Engine, error) {
				u, err := object.NewPlanted(object.Planted{M: 256, Good: 1}, rng.New(seed))
				if err != nil {
					return nil, err
				}
				return sim.NewEngine(sim.Config{
					Universe: u, Protocol: NewDistill(Params{}), N: 256,
					Alpha: alpha, Seed: seed, MaxRounds: 20000,
				})
			},
		}.Run()
		if err != nil {
			t.Fatal(err)
		}
		agg := sim.AggregateResults(results)
		if agg.SuccessRate != 1 || agg.TimedOut > 0 {
			t.Fatalf("alpha=%v: success %v timeouts %d", alpha, agg.SuccessRate, agg.TimedOut)
		}
	}
}

func TestDistillManyObjectsFewPlayers(t *testing.T) {
	// m >> n exercises Step 1.1's 1/(αβn) term.
	results, err := sim.Replicator{
		Reps:     6,
		BaseSeed: 23,
		Build: func(seed uint64) (*sim.Engine, error) {
			u, err := object.NewPlanted(object.Planted{M: 2048, Good: 16}, rng.New(seed))
			if err != nil {
				return nil, err
			}
			return sim.NewEngine(sim.Config{
				Universe: u, Protocol: NewDistill(Params{}), N: 64,
				Alpha: 0.75, Seed: seed, MaxRounds: 50000,
			})
		},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	agg := sim.AggregateResults(results)
	if agg.SuccessRate != 1 || agg.TimedOut > 0 {
		t.Fatalf("m>>n: success %v timeouts %d", agg.SuccessRate, agg.TimedOut)
	}
}

func TestDistillDeterministicSchedule(t *testing.T) {
	// Two identical harness runs produce identical state transitions.
	trace := func() []string {
		d := NewDistill(Params{K1: 1, K2: 8})
		h := newHarness(t, d, 8, 8, 1, 0.125)
		var phases []string
		for i := 0; i < 30; i++ {
			h.step(posVote(i%8, i%8))
			phases = append(phases, d.DistillState().Phase)
		}
		return phases
	}
	a, b := trace(), trace()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverged at %d: %s vs %s", i, a[i], b[i])
		}
	}
}
