package core

import (
	"testing"
	"testing/quick"

	"repro/internal/billboard"
	"repro/internal/object"
	"repro/internal/rng"
	"repro/internal/sim"
)

// TestScheduleInvariantsUnderRandomVotes drives DISTILL's shared schedule
// with arbitrary vote injections and checks the structural invariants of
// Figure 1 at every round:
//
//   - phases only move prepare → refine → distill, restarting at prepare;
//   - within the distill phase, candidate sets only shrink (C_{t+1} ⊆ C_t);
//   - the explore set is never empty;
//   - every probe the protocol emits lies in the current explore set or
//     follows some player's vote.
func TestScheduleInvariantsUnderRandomVotes(t *testing.T) {
	f := func(script []byte, k1Raw, k2Raw uint8, alphaRaw uint8) bool {
		const n, m = 8, 12
		k1 := float64(k1Raw%4)/2 + 0.5 // 0.5..2
		k2 := float64(k2Raw%8) + 1     // 1..8
		alpha := float64(alphaRaw%4+1) / 4

		board, err := billboard.New(billboard.Config{Players: n, Objects: m})
		if err != nil {
			return false
		}
		u, err := object.NewUniverse(object.Config{
			Values: goodAt(m, m-1), LocalTesting: true, Threshold: 0.5,
		})
		if err != nil {
			return false
		}
		d := NewDistill(Params{K1: k1, K2: k2})
		if err := d.Init(sim.Setup{
			N: n, Alpha: alpha, Beta: 1.0 / m,
			Universe: u, Board: board, Rng: rng.New(99),
		}); err != nil {
			return false
		}

		phaseOrder := map[string]int{"prepare": 0, "refine": 1, "distill": 2}
		prevPhase := "prepare"
		var prevCandidates map[int]bool

		for round := 0; round < 3*len(script)+6; round++ {
			probes := d.Probes(round, []int{0}, nil)
			st := d.DistillState()

			// Phase transitions are monotone modulo attempt restarts.
			if st.Phase != prevPhase {
				fromOrd, toOrd := phaseOrder[prevPhase], phaseOrder[st.Phase]
				restart := st.Phase == "prepare"
				forward := toOrd == fromOrd+1
				if !restart && !forward {
					t.Logf("illegal transition %s -> %s", prevPhase, st.Phase)
					return false
				}
				prevCandidates = nil
			}
			// Candidate shrinkage inside the distill phase.
			if st.Phase == "distill" {
				cur := make(map[int]bool, len(st.Candidates))
				for _, obj := range st.Candidates {
					cur[obj] = true
				}
				if prevCandidates != nil && prevPhase == "distill" {
					for obj := range cur {
						if !prevCandidates[obj] {
							t.Logf("candidate %d appeared from nowhere", obj)
							return false
						}
					}
				}
				prevCandidates = cur
			}
			if len(st.Candidates) == 0 {
				t.Logf("empty explore set in phase %s", st.Phase)
				return false
			}
			// Probe legality.
			for _, pr := range probes {
				if pr.Object < 0 || pr.Object >= m {
					return false
				}
			}
			prevPhase = st.Phase

			// Inject this round's scripted votes.
			if len(script) > 0 {
				b := script[round%len(script)]
				if b%3 != 0 {
					_ = board.Post(billboard.Post{
						Player:   int(b) % n,
						Object:   int(b>>2) % m,
						Value:    1,
						Positive: true,
					})
				}
			}
			board.EndRound()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestAttemptsMonotone checks that the attempt counter never decreases and
// iteration counts stay non-negative under random drive.
func TestAttemptsMonotone(t *testing.T) {
	f := func(script []byte) bool {
		const n, m = 6, 6
		board, err := billboard.New(billboard.Config{Players: n, Objects: m})
		if err != nil {
			return false
		}
		u, err := object.NewUniverse(object.Config{
			Values: goodAt(m, 0), LocalTesting: true, Threshold: 0.5,
		})
		if err != nil {
			return false
		}
		d := NewDistill(Params{K1: 0.5, K2: 2})
		if err := d.Init(sim.Setup{
			N: n, Alpha: 1, Beta: 1.0 / m,
			Universe: u, Board: board, Rng: rng.New(5),
		}); err != nil {
			return false
		}
		prevAttempts := d.Attempts()
		for round := 0; round < 2*len(script)+4; round++ {
			d.Probes(round, nil, nil)
			if a := d.Attempts(); a < prevAttempts {
				return false
			} else {
				prevAttempts = a
			}
			for _, c := range d.IterationCounts() {
				if c < 0 {
					return false
				}
			}
			if len(script) > 0 && script[round%len(script)]%2 == 0 {
				_ = board.Post(billboard.Post{
					Player:   int(script[round%len(script)]) % n,
					Object:   int(script[round%len(script)]) % m,
					Value:    1,
					Positive: true,
				})
			}
			board.EndRound()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
