package core

import "math"

// DistillState is the schedule state of DISTILL that any observer can
// derive from the public billboard and the (public) protocol code. Adaptive
// adversaries use it to play the extremal strategy of Lemma 7; this
// accessor merely saves them from re-deriving the schedule.
type DistillState struct {
	// Phase is "prepare" (Step 1.1), "refine" (Step 1.3) or "distill"
	// (Step 2).
	Phase string
	// Candidates is the current candidate set: the domain during prepare,
	// S during refine, C_t during distill.
	Candidates []int
	// WindowStart is the first round of the current vote-counting window.
	WindowStart int
	// VotesNeeded is the number of votes an object must receive within the
	// current window to survive into the next candidate set.
	VotesNeeded int
}

// DistillState reports the current shared schedule state.
func (d *Distill) DistillState() DistillState {
	st := DistillState{WindowStart: d.windowStart}
	switch d.phase {
	case phasePrepare:
		st.Phase = "prepare"
		st.Candidates = d.probeSet
		st.VotesNeeded = 1 // one vote puts an object into S (Step 1.2)
	case phaseRefine:
		st.Phase = "refine"
		st.Candidates = d.probeSet
		st.VotesNeeded = int(math.Ceil(d.k2 / 4 * d.thresholdScale())) // Step 1.4: >= k2/4
		if st.VotesNeeded < 1 {
			st.VotesNeeded = 1
		}
	case phaseDistill:
		st.Phase = "distill"
		st.Candidates = d.candidates
		ct := float64(len(d.candidates))
		// Step 2.2: > n/(4c_t) (scaled under the A3 ablation).
		st.VotesNeeded = int(math.Floor(float64(d.n)/(4*ct)*d.thresholdScale())) + 1
	}
	return st
}

// DistillState forwards to the inner DISTILL^HP of the current phase.
func (g *AlphaGuess) DistillState() DistillState { return g.inner.DistillState() }

// DistillState forwards to the inner DISTILL^HP of the current class.
func (c *CostClasses) DistillState() DistillState { return c.inner.DistillState() }
