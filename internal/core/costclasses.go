package core

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// CostClasses is the §5.2 wrapper for the general cost model (Theorem 12).
// Objects are aggregated into cost classes [2^i, 2^(i+1)) using their public
// costs; the wrapper runs DISTILL^HP on class 0 for a prescribed budget,
// then class 1, and so on, assuming β = 1/m_i within class i. A player
// halts as soon as it probes a good object, so the total cost paid is
// O(q₀ · m log n/(αn)) where q₀ is the cheapest good object's cost.
//
// Probing (including advice-following) is restricted to the current class so
// that a Byzantine vote for an expensive object cannot inflate an honest
// player's spend beyond the current class ceiling.
type CostClasses struct {
	params Params
	k3     float64

	setup    sim.Setup
	classes  [][]int // object ids per class, in increasing class order
	inner    *Distill
	classIdx int
	phaseEnd int
}

var _ sim.Protocol = (*CostClasses)(nil)

// NewCostClasses returns the cost-class wrapper. params parameterizes the
// inner DISTILL^HP (its Domain is overwritten per class); k3 scales the
// per-class round budget (default 4).
func NewCostClasses(params Params, k3 float64) *CostClasses {
	if k3 <= 0 {
		k3 = 4
	}
	return &CostClasses{params: params, k3: k3}
}

// Name implements sim.Protocol.
func (c *CostClasses) Name() string { return "distill-costclasses" }

// PrescribedRounds implements sim.Protocol.
func (c *CostClasses) PrescribedRounds() int { return 0 }

// ClassIndex returns the index (into the non-empty class list) of the class
// currently being searched.
func (c *CostClasses) ClassIndex() int { return c.classIdx }

// Init implements sim.Protocol.
func (c *CostClasses) Init(setup sim.Setup) error {
	if setup.Alpha <= 0 || setup.Alpha > 1 {
		return fmt.Errorf("core: CostClasses needs assumed alpha in (0, 1], got %v", setup.Alpha)
	}
	c.setup = setup

	// Build classes from the public costs: class index floor(log2 cost).
	byIndex := make(map[int][]int)
	maxIdx := 0
	for obj := 0; obj < setup.Universe.M(); obj++ {
		cost := setup.Universe.Cost(obj)
		if cost < 1 {
			return fmt.Errorf("core: CostClasses requires costs >= 1, object %d costs %v", obj, cost)
		}
		idx := int(math.Floor(math.Log2(cost)))
		for cost < math.Pow(2, float64(idx)) {
			idx--
		}
		for cost >= math.Pow(2, float64(idx+1)) {
			idx++
		}
		byIndex[idx] = append(byIndex[idx], obj)
		if idx > maxIdx {
			maxIdx = idx
		}
	}
	c.classes = nil
	for i := 0; i <= maxIdx; i++ {
		if objs, ok := byIndex[i]; ok {
			c.classes = append(c.classes, objs)
		}
	}
	c.classIdx = -1
	return c.startClass(0, 0)
}

// startClass begins searching class idx (wrapping around) at round.
func (c *CostClasses) startClass(idx, round int) error {
	idx %= len(c.classes)
	c.classIdx = idx
	objs := c.classes[idx]
	mi := len(objs)

	logN := math.Log2(float64(c.setup.N))
	if logN < 1 {
		logN = 1
	}
	// Per-class budget ~ log n · (m_i/(αn) + 1) rounds (proof of Thm 12).
	budget := c.k3 * logN * (float64(mi)/(c.setup.Alpha*float64(c.setup.N)) + 1)
	c.phaseEnd = round + int(math.Ceil(budget))

	params := c.params
	params.Domain = objs
	c.inner = NewDistillHP(params)
	innerSetup := c.setup
	// Minimal assumption per the proof: one good object in the class.
	innerSetup.Beta = 1 / float64(mi)
	if err := c.inner.Init(innerSetup); err != nil {
		return fmt.Errorf("core: CostClasses class %d: %w", idx, err)
	}
	return nil
}

// Probes implements sim.Protocol.
func (c *CostClasses) Probes(round int, active []int, dst []sim.Probe) []sim.Probe {
	if round >= c.phaseEnd {
		// Budget spent: move to the next class (wrapping, so that unlucky
		// runs eventually revisit earlier classes rather than stalling).
		if err := c.startClass(c.classIdx+1, round); err != nil {
			return dst
		}
	}
	return c.inner.Probes(round, active, dst)
}
