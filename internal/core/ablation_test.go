package core

import (
	"testing"

	"repro/internal/billboard"
	"repro/internal/object"
	"repro/internal/rng"
	"repro/internal/sim"
)

func TestDisableAdviceNeverFollowsVotes(t *testing.T) {
	d := NewDistill(Params{DisableAdvice: true})
	n, m := 4, 8
	board, err := billboard.New(billboard.Config{Players: n, Objects: m})
	if err != nil {
		t.Fatal(err)
	}
	u, err := object.NewUniverse(object.Config{
		Values: goodAt(m, 0), LocalTesting: true, Threshold: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Init(sim.Setup{N: n, Alpha: 1, Beta: 0.5, Universe: u, Board: board, Rng: rng.New(3)}); err != nil {
		t.Fatal(err)
	}
	// Everyone votes object 5: a normal advice round would probe it with
	// probability 1. With advice disabled the advice round becomes an
	// explore probe, which hits 5 only 1/8 of the time; over 32 advice
	// rounds at least one probe must land elsewhere.
	for p := 0; p < n; p++ {
		if err := board.Post(billboard.Post{Player: p, Object: 5, Value: 1, Positive: true}); err != nil {
			t.Fatal(err)
		}
	}
	board.EndRound()
	sawOther := false
	for round := 0; round < 64; round++ {
		probes := d.Probes(round, []int{0}, nil)
		if len(probes) != 1 {
			t.Fatalf("round %d: %d probes; explore-only mode must always probe", round, len(probes))
		}
		if round%2 == 1 && probes[0].Object != 5 {
			sawOther = true
		}
		board.EndRound()
	}
	if !sawOther {
		t.Fatal("every advice-slot probe hit the voted object; advice seems still enabled")
	}
}

func TestThresholdScaleChangesVotesNeeded(t *testing.T) {
	for _, tc := range []struct {
		scale float64
		want  int // refine VotesNeeded with k2 = 8: ceil(2 * scale)
	}{
		{0, 2}, {1, 2}, {2, 4}, {0.25, 1}, {4, 8},
	} {
		d := NewDistill(Params{K1: 1, K2: 8, ThresholdScale: tc.scale})
		h := newHarness(t, d, 8, 8, 1, 0.125)
		h.stepN(2) // finish step 1.1
		h.d.Probes(h.round, nil, nil)
		st := d.DistillState()
		if st.Phase != "refine" {
			t.Fatalf("scale %v: phase %q", tc.scale, st.Phase)
		}
		if st.VotesNeeded != tc.want {
			t.Fatalf("scale %v: VotesNeeded = %d, want %d", tc.scale, st.VotesNeeded, tc.want)
		}
	}
}

func TestCumulativeCountsKeepOldVotes(t *testing.T) {
	// Build C0 = {2}, then give object 2 no fresh votes in the iteration
	// window. Window mode drops it; cumulative mode keeps it because its
	// refine-window votes still count.
	build := func(cumulative bool) *Distill {
		d := NewDistill(Params{K1: 1, K2: 4, CumulativeCounts: cumulative})
		h := newHarness(t, d, 4, 4, 1, 0.25)
		h.stepN(2) // step 1.1
		// Refine window: ceil(4/1)=4 invocations = 8 rounds; threshold
		// ceil(4/4·1)=1 vote. Object 2 gets 2 votes.
		h.step(posVote(0, 2), posVote(1, 2))
		h.stepN(7)
		h.d.Probes(h.round, nil, nil) // -> distill with C0={2}
		if st := d.DistillState(); st.Phase != "distill" || len(st.Candidates) != 1 {
			t.Fatalf("setup failed: %+v", st)
		}
		// One iteration window (2 rounds), no fresh votes. Threshold
		// n/(4·1) = 1, so survival needs > 1 votes in the filter counts.
		h.stepN(2)
		h.d.Probes(h.round, nil, nil)
		return d
	}
	window := build(false)
	if st := window.DistillState(); st.Phase != "prepare" {
		t.Fatalf("window mode should have dropped the candidate and restarted; phase %q", st.Phase)
	}
	cumulative := build(true)
	if st := cumulative.DistillState(); st.Phase != "distill" || len(st.Candidates) != 1 {
		t.Fatalf("cumulative mode should keep the candidate: %+v", st)
	}
}

func TestPoolSizesRecorded(t *testing.T) {
	d := NewDistill(Params{K1: 1, K2: 4})
	h := newHarness(t, d, 4, 4, 1, 0.25)
	h.step(posVote(0, 1)) // vote during step 1.1
	h.stepN(1)
	h.d.Probes(h.round, nil, nil) // -> refine; |S| = 1 recorded
	s, c0, ct := d.PoolSizes()
	if len(s) != 1 || s[0] != 1 {
		t.Fatalf("sSizes = %v, want [1]", s)
	}
	if len(c0) != 0 || len(ct) != 0 {
		t.Fatalf("premature c0/ct records: %v %v", c0, ct)
	}
	// Finish refine with a vote for object 1 -> C0 = {1}.
	h.step(posVote(1, 1))
	h.stepN(7)
	h.d.Probes(h.round, nil, nil)
	_, c0, _ = d.PoolSizes()
	if len(c0) != 1 || c0[0] != 1 {
		t.Fatalf("c0Sizes = %v, want [1]", c0)
	}
	// One empty iteration -> ctSizes records a 0 and the attempt restarts.
	h.stepN(2)
	h.d.Probes(h.round, nil, nil)
	_, _, ct = d.PoolSizes()
	if len(ct) != 1 || ct[0] != 0 {
		t.Fatalf("ctSizes = %v, want [0]", ct)
	}
}

func TestFloodLiarContainedByVoteCap(t *testing.T) {
	// End-to-end: with f = 1 the flood adds at most one object per
	// dishonest player to the voted pool.
	u, err := object.NewPlanted(object.Planted{M: 512, Good: 1}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	d := NewDistill(Params{})
	e, err := sim.NewEngine(sim.Config{
		Universe: u, Protocol: d, N: 64, Alpha: 0.5, Seed: 4, MaxRounds: 20000,
		Adversary: floodAdapter{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	honest := map[int]bool{}
	for _, p := range e.Honest() {
		honest[p] = true
	}
	for p := 0; p < 64; p++ {
		if honest[p] {
			continue
		}
		if got := len(e.Board().Votes(p)); got > 1 {
			t.Fatalf("dishonest player %d holds %d votes despite f=1", p, got)
		}
	}
}

// floodAdapter avoids importing the adversary package (cycle: adversary
// imports core); it reproduces the flooding behaviour inline.
type floodAdapter struct{}

func (floodAdapter) Name() string { return "flood-inline" }
func (floodAdapter) Act(ctx *sim.AdvContext) {
	for _, p := range ctx.Dishonest {
		obj := ctx.Rng.Intn(ctx.Universe.M())
		if ctx.Universe.IsGood(obj) {
			continue
		}
		_ = ctx.Board.Post(billboard.Post{Player: p, Object: obj, Value: 1, Positive: true})
	}
}
