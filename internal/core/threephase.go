package core

import (
	"math"
	"sort"

	"repro/internal/billboard"
	"repro/internal/rng"
	"repro/internal/sim"
)

// ThreePhase is the simplified illustrative algorithm of §1.2, stated for
// m = n objects and ~√n dishonest players:
//
//	phase 1 (2 rounds): probe a random object from C₁ = all objects
//	phase 2 (2 rounds): probe a random object from C₂ = {≥ θ₂ = 1 vote}
//	phase 3 (≤3 rounds): probe the objects of C₃ = {≥ θ₃ = √n/2 votes}
//
// Candidate sets use cumulative vote counts "on the billboard at the start
// of phase i". The run is one-shot: it succeeds with constant probability
// (each honest player ends having probed a good object) and takes at most
// 4 + |C₃| rounds. The experiment harness reports the success rate; the
// full DISTILL handles the general case.
type ThreePhase struct {
	n, m  int
	src   *rng.Source
	board billboard.Reader

	c2, c3  []int
	trailer int // extra phase-3 rounds when the adversary inflates C₃
}

var _ sim.Protocol = (*ThreePhase)(nil)

// NewThreePhase returns the §1.2 three-phase algorithm.
func NewThreePhase() *ThreePhase { return &ThreePhase{} }

// Name implements sim.Protocol.
func (p *ThreePhase) Name() string { return "three-phase" }

// Init implements sim.Protocol.
func (p *ThreePhase) Init(setup sim.Setup) error {
	p.n = setup.N
	p.m = setup.Universe.M()
	p.src = setup.Rng
	p.board = setup.Board
	p.c2, p.c3 = nil, nil
	// Allow up to 3 phase-3 probes as in the paper; if the adversary pushed
	// more than 3 objects over θ₃ we probe them all (still O(√n) at most,
	// since θ₃ = √n/2 votes each from a (1-α)n ≈ √n budget allows ≤ 2).
	p.trailer = 3
	return nil
}

// PrescribedRounds implements sim.Protocol: the run is one-shot and its
// length is fixed up-front (2 + 2 + trailer rounds); the engine judges
// success from each player's best probed object.
func (p *ThreePhase) PrescribedRounds() int { return 4 + p.trailer }

// candidates returns the objects with at least threshold cumulative votes.
func (p *ThreePhase) candidates(threshold float64) []int {
	out := make([]int, 0)
	for _, obj := range p.board.VotedObjects() {
		if float64(p.board.VoteCount(obj)) >= threshold {
			out = append(out, obj)
		}
	}
	sort.Ints(out)
	return out
}

// Probes implements sim.Protocol.
func (p *ThreePhase) Probes(round int, active []int, dst []sim.Probe) []sim.Probe {
	switch {
	case round < 2: // phase 1: C₁ = all objects
		for _, player := range active {
			dst = append(dst, sim.Probe{Player: player, Object: p.src.Intn(p.m)})
		}
	case round < 4: // phase 2: C₂ = objects with ≥ 1 vote
		if round == 2 {
			p.c2 = p.candidates(1)
		}
		set := p.c2
		if len(set) == 0 {
			// Degenerate: nobody found anything in phase 1; keep exploring.
			for _, player := range active {
				dst = append(dst, sim.Probe{Player: player, Object: p.src.Intn(p.m)})
			}
			return dst
		}
		for _, player := range active {
			dst = append(dst, sim.Probe{Player: player, Object: set[p.src.Intn(len(set))]})
		}
	default: // phase 3: probe the ≤3 (typically) survivors in order
		if round == 4 {
			theta3 := math.Sqrt(float64(p.n)) / 2
			p.c3 = p.candidates(theta3)
		}
		if len(p.c3) == 0 {
			return dst // nothing to probe; the one-shot run just ends
		}
		idx := round - 4
		if idx >= len(p.c3) {
			return dst
		}
		obj := p.c3[idx]
		for _, player := range active {
			dst = append(dst, sim.Probe{Player: player, Object: obj})
		}
	}
	return dst
}
